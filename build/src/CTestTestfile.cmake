# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("sim")
subdirs("mem")
subdirs("pci")
subdirs("virtio")
subdirs("cloud")
subdirs("hw")
subdirs("guest")
subdirs("iobond")
subdirs("hv")
subdirs("vmsim")
subdirs("core")
subdirs("fleet")
subdirs("workloads")

# Empty compiler generated dependencies file for bmhive_vmsim.
# This may be replaced when dependencies are built.

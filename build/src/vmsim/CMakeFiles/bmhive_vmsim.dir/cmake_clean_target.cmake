file(REMOVE_RECURSE
  "libbmhive_vmsim.a"
)

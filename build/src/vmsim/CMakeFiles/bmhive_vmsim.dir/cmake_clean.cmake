file(REMOVE_RECURSE
  "CMakeFiles/bmhive_vmsim.dir/vm_guest.cc.o"
  "CMakeFiles/bmhive_vmsim.dir/vm_guest.cc.o.d"
  "libbmhive_vmsim.a"
  "libbmhive_vmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_vmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbmhive_pci.a"
)

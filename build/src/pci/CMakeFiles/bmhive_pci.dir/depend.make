# Empty dependencies file for bmhive_pci.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_pci.dir/config_space.cc.o"
  "CMakeFiles/bmhive_pci.dir/config_space.cc.o.d"
  "CMakeFiles/bmhive_pci.dir/pci_device.cc.o"
  "CMakeFiles/bmhive_pci.dir/pci_device.cc.o.d"
  "libbmhive_pci.a"
  "libbmhive_pci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_pci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

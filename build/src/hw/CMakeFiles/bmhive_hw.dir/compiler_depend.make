# Empty compiler generated dependencies file for bmhive_hw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbmhive_hw.a"
)

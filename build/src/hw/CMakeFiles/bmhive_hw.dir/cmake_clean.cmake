file(REMOVE_RECURSE
  "CMakeFiles/bmhive_hw.dir/compute_board.cc.o"
  "CMakeFiles/bmhive_hw.dir/compute_board.cc.o.d"
  "CMakeFiles/bmhive_hw.dir/cpu_model.cc.o"
  "CMakeFiles/bmhive_hw.dir/cpu_model.cc.o.d"
  "CMakeFiles/bmhive_hw.dir/power.cc.o"
  "CMakeFiles/bmhive_hw.dir/power.cc.o.d"
  "libbmhive_hw.a"
  "libbmhive_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

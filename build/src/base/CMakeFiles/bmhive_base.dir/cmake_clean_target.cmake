file(REMOVE_RECURSE
  "libbmhive_base.a"
)

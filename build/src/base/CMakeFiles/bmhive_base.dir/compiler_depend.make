# Empty compiler generated dependencies file for bmhive_base.
# This may be replaced when dependencies are built.

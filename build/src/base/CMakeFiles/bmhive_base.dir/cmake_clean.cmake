file(REMOVE_RECURSE
  "CMakeFiles/bmhive_base.dir/logging.cc.o"
  "CMakeFiles/bmhive_base.dir/logging.cc.o.d"
  "CMakeFiles/bmhive_base.dir/stats.cc.o"
  "CMakeFiles/bmhive_base.dir/stats.cc.o.d"
  "CMakeFiles/bmhive_base.dir/token_bucket.cc.o"
  "CMakeFiles/bmhive_base.dir/token_bucket.cc.o.d"
  "libbmhive_base.a"
  "libbmhive_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

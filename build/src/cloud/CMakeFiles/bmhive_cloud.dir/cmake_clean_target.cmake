file(REMOVE_RECURSE
  "libbmhive_cloud.a"
)

# Empty dependencies file for bmhive_cloud.
# This may be replaced when dependencies are built.

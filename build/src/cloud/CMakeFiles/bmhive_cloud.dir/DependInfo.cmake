
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/block_service.cc" "src/cloud/CMakeFiles/bmhive_cloud.dir/block_service.cc.o" "gcc" "src/cloud/CMakeFiles/bmhive_cloud.dir/block_service.cc.o.d"
  "/root/repo/src/cloud/vswitch.cc" "src/cloud/CMakeFiles/bmhive_cloud.dir/vswitch.cc.o" "gcc" "src/cloud/CMakeFiles/bmhive_cloud.dir/vswitch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/bmhive_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bmhive_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_cloud.dir/block_service.cc.o"
  "CMakeFiles/bmhive_cloud.dir/block_service.cc.o.d"
  "CMakeFiles/bmhive_cloud.dir/vswitch.cc.o"
  "CMakeFiles/bmhive_cloud.dir/vswitch.cc.o.d"
  "libbmhive_cloud.a"
  "libbmhive_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_sim.dir/eventq.cc.o"
  "CMakeFiles/bmhive_sim.dir/eventq.cc.o.d"
  "libbmhive_sim.a"
  "libbmhive_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bmhive_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbmhive_sim.a"
)

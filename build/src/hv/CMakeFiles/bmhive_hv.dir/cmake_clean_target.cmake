file(REMOVE_RECURSE
  "libbmhive_hv.a"
)

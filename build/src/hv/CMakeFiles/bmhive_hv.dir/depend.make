# Empty dependencies file for bmhive_hv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_hv.dir/bm_hypervisor.cc.o"
  "CMakeFiles/bmhive_hv.dir/bm_hypervisor.cc.o.d"
  "CMakeFiles/bmhive_hv.dir/io_service.cc.o"
  "CMakeFiles/bmhive_hv.dir/io_service.cc.o.d"
  "libbmhive_hv.a"
  "libbmhive_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bmhive_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_workloads.dir/app_server.cc.o"
  "CMakeFiles/bmhive_workloads.dir/app_server.cc.o.d"
  "CMakeFiles/bmhive_workloads.dir/fio.cc.o"
  "CMakeFiles/bmhive_workloads.dir/fio.cc.o.d"
  "CMakeFiles/bmhive_workloads.dir/net_perf.cc.o"
  "CMakeFiles/bmhive_workloads.dir/net_perf.cc.o.d"
  "CMakeFiles/bmhive_workloads.dir/spec.cc.o"
  "CMakeFiles/bmhive_workloads.dir/spec.cc.o.d"
  "libbmhive_workloads.a"
  "libbmhive_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

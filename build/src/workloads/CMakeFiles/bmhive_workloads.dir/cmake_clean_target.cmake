file(REMOVE_RECURSE
  "libbmhive_workloads.a"
)

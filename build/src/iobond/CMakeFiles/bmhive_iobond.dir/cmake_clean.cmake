file(REMOVE_RECURSE
  "CMakeFiles/bmhive_iobond.dir/iobond.cc.o"
  "CMakeFiles/bmhive_iobond.dir/iobond.cc.o.d"
  "libbmhive_iobond.a"
  "libbmhive_iobond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_iobond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

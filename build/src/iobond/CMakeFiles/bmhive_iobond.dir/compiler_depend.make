# Empty compiler generated dependencies file for bmhive_iobond.
# This may be replaced when dependencies are built.

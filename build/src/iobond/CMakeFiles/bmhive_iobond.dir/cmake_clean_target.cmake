file(REMOVE_RECURSE
  "libbmhive_iobond.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src/iobond
# Build directory: /root/repo/build/src/iobond
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "libbmhive_fleet.a"
)

# Empty dependencies file for bmhive_fleet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_fleet.dir/fleet_sim.cc.o"
  "CMakeFiles/bmhive_fleet.dir/fleet_sim.cc.o.d"
  "libbmhive_fleet.a"
  "libbmhive_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

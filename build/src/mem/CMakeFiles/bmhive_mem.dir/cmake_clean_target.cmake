file(REMOVE_RECURSE
  "libbmhive_mem.a"
)

# Empty compiler generated dependencies file for bmhive_mem.
# This may be replaced when dependencies are built.

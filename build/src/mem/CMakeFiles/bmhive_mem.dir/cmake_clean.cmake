file(REMOVE_RECURSE
  "CMakeFiles/bmhive_mem.dir/dma_engine.cc.o"
  "CMakeFiles/bmhive_mem.dir/dma_engine.cc.o.d"
  "CMakeFiles/bmhive_mem.dir/guest_memory.cc.o"
  "CMakeFiles/bmhive_mem.dir/guest_memory.cc.o.d"
  "CMakeFiles/bmhive_mem.dir/pool_allocator.cc.o"
  "CMakeFiles/bmhive_mem.dir/pool_allocator.cc.o.d"
  "libbmhive_mem.a"
  "libbmhive_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bmhive_virtio.dir/virtio_net.cc.o"
  "CMakeFiles/bmhive_virtio.dir/virtio_net.cc.o.d"
  "CMakeFiles/bmhive_virtio.dir/virtio_pci.cc.o"
  "CMakeFiles/bmhive_virtio.dir/virtio_pci.cc.o.d"
  "CMakeFiles/bmhive_virtio.dir/virtqueue.cc.o"
  "CMakeFiles/bmhive_virtio.dir/virtqueue.cc.o.d"
  "CMakeFiles/bmhive_virtio.dir/vring.cc.o"
  "CMakeFiles/bmhive_virtio.dir/vring.cc.o.d"
  "libbmhive_virtio.a"
  "libbmhive_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbmhive_virtio.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virtio/virtio_net.cc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtio_net.cc.o" "gcc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtio_net.cc.o.d"
  "/root/repo/src/virtio/virtio_pci.cc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtio_pci.cc.o" "gcc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtio_pci.cc.o.d"
  "/root/repo/src/virtio/virtqueue.cc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtqueue.cc.o" "gcc" "src/virtio/CMakeFiles/bmhive_virtio.dir/virtqueue.cc.o.d"
  "/root/repo/src/virtio/vring.cc" "src/virtio/CMakeFiles/bmhive_virtio.dir/vring.cc.o" "gcc" "src/virtio/CMakeFiles/bmhive_virtio.dir/vring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/bmhive_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pci/CMakeFiles/bmhive_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bmhive_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/bmhive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bmhive_virtio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbmhive_guest.a"
)

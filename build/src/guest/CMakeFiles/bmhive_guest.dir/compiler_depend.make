# Empty compiler generated dependencies file for bmhive_guest.
# This may be replaced when dependencies are built.

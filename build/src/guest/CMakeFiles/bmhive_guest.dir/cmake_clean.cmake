file(REMOVE_RECURSE
  "CMakeFiles/bmhive_guest.dir/blk_driver.cc.o"
  "CMakeFiles/bmhive_guest.dir/blk_driver.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/console_driver.cc.o"
  "CMakeFiles/bmhive_guest.dir/console_driver.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/firmware.cc.o"
  "CMakeFiles/bmhive_guest.dir/firmware.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/guest_os.cc.o"
  "CMakeFiles/bmhive_guest.dir/guest_os.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/net_driver.cc.o"
  "CMakeFiles/bmhive_guest.dir/net_driver.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/packet_wire.cc.o"
  "CMakeFiles/bmhive_guest.dir/packet_wire.cc.o.d"
  "CMakeFiles/bmhive_guest.dir/virtio_driver.cc.o"
  "CMakeFiles/bmhive_guest.dir/virtio_driver.cc.o.d"
  "libbmhive_guest.a"
  "libbmhive_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

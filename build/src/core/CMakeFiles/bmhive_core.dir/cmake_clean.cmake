file(REMOVE_RECURSE
  "CMakeFiles/bmhive_core.dir/bmhive_server.cc.o"
  "CMakeFiles/bmhive_core.dir/bmhive_server.cc.o.d"
  "CMakeFiles/bmhive_core.dir/cost_model.cc.o"
  "CMakeFiles/bmhive_core.dir/cost_model.cc.o.d"
  "CMakeFiles/bmhive_core.dir/instance_catalog.cc.o"
  "CMakeFiles/bmhive_core.dir/instance_catalog.cc.o.d"
  "libbmhive_core.a"
  "libbmhive_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmhive_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bmhive_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbmhive_core.a"
)

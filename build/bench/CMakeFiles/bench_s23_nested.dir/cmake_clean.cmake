file(REMOVE_RECURSE
  "CMakeFiles/bench_s23_nested.dir/bench_s23_nested.cc.o"
  "CMakeFiles/bench_s23_nested.dir/bench_s23_nested.cc.o.d"
  "bench_s23_nested"
  "bench_s23_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s23_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_s23_nested.
# This may be replaced when dependencies are built.

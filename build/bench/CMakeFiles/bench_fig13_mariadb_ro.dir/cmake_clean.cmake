file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mariadb_ro.dir/bench_fig13_mariadb_ro.cc.o"
  "CMakeFiles/bench_fig13_mariadb_ro.dir/bench_fig13_mariadb_ro.cc.o.d"
  "bench_fig13_mariadb_ro"
  "bench_fig13_mariadb_ro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mariadb_ro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

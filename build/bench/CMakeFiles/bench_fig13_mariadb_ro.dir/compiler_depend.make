# Empty compiler generated dependencies file for bench_fig13_mariadb_ro.
# This may be replaced when dependencies are built.

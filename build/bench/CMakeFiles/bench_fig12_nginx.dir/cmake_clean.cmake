file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_nginx.dir/bench_fig12_nginx.cc.o"
  "CMakeFiles/bench_fig12_nginx.dir/bench_fig12_nginx.cc.o.d"
  "bench_fig12_nginx"
  "bench_fig12_nginx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_nginx.
# This may be replaced when dependencies are built.

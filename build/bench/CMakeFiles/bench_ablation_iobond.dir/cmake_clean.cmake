file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_iobond.dir/bench_ablation_iobond.cc.o"
  "CMakeFiles/bench_ablation_iobond.dir/bench_ablation_iobond.cc.o.d"
  "bench_ablation_iobond"
  "bench_ablation_iobond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_iobond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_iobond.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_redis_datasize.dir/bench_fig16_redis_datasize.cc.o"
  "CMakeFiles/bench_fig16_redis_datasize.dir/bench_fig16_redis_datasize.cc.o.d"
  "bench_fig16_redis_datasize"
  "bench_fig16_redis_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_redis_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

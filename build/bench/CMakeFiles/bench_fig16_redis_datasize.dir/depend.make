# Empty dependencies file for bench_fig16_redis_datasize.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_services.cc" "bench/CMakeFiles/bench_table1_services.dir/bench_table1_services.cc.o" "gcc" "bench/CMakeFiles/bench_table1_services.dir/bench_table1_services.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/bmhive_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/bmhive_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vmsim/CMakeFiles/bmhive_vmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bmhive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/bmhive_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/bmhive_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/bmhive_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/iobond/CMakeFiles/bmhive_iobond.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/bmhive_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/bmhive_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bmhive_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pci/CMakeFiles/bmhive_pci.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bmhive_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/bmhive_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

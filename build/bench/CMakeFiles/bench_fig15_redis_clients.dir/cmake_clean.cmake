file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_redis_clients.dir/bench_fig15_redis_clients.cc.o"
  "CMakeFiles/bench_fig15_redis_clients.dir/bench_fig15_redis_clients.cc.o.d"
  "bench_fig15_redis_clients"
  "bench_fig15_redis_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_redis_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig15_redis_clients.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_mariadb_rw.dir/bench_fig14_mariadb_rw.cc.o"
  "CMakeFiles/bench_fig14_mariadb_rw.dir/bench_fig14_mariadb_rw.cc.o.d"
  "bench_fig14_mariadb_rw"
  "bench_fig14_mariadb_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mariadb_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_mariadb_rw.
# This may be replaced when dependencies are built.

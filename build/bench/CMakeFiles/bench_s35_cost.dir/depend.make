# Empty dependencies file for bench_s35_cost.
# This may be replaced when dependencies are built.

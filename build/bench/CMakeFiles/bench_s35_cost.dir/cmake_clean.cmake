file(REMOVE_RECURSE
  "CMakeFiles/bench_s35_cost.dir/bench_s35_cost.cc.o"
  "CMakeFiles/bench_s35_cost.dir/bench_s35_cost.cc.o.d"
  "bench_s35_cost"
  "bench_s35_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s35_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

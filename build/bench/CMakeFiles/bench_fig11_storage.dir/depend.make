# Empty dependencies file for bench_fig11_storage.
# This may be replaced when dependencies are built.

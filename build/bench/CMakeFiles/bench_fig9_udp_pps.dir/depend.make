# Empty dependencies file for bench_fig9_udp_pps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_udp_pps.dir/bench_fig9_udp_pps.cc.o"
  "CMakeFiles/bench_fig9_udp_pps.dir/bench_fig9_udp_pps.cc.o.d"
  "bench_fig9_udp_pps"
  "bench_fig9_udp_pps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_udp_pps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_s6_asic_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_vmexits.dir/bench_table2_vmexits.cc.o"
  "CMakeFiles/bench_table2_vmexits.dir/bench_table2_vmexits.cc.o.d"
  "bench_table2_vmexits"
  "bench_table2_vmexits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_vmexits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_vmexits.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig1_preemption.
# This may be replaced when dependencies are built.

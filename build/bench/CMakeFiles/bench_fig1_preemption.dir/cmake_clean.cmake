file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_preemption.dir/bench_fig1_preemption.cc.o"
  "CMakeFiles/bench_fig1_preemption.dir/bench_fig1_preemption.cc.o.d"
  "bench_fig1_preemption"
  "bench_fig1_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

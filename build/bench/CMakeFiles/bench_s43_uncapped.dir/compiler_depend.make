# Empty compiler generated dependencies file for bench_s43_uncapped.
# This may be replaced when dependencies are built.

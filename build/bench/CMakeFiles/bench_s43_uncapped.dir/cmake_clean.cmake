file(REMOVE_RECURSE
  "CMakeFiles/bench_s43_uncapped.dir/bench_s43_uncapped.cc.o"
  "CMakeFiles/bench_s43_uncapped.dir/bench_s43_uncapped.cc.o.d"
  "bench_s43_uncapped"
  "bench_s43_uncapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s43_uncapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bm_vs_vm.dir/bm_vs_vm.cc.o"
  "CMakeFiles/bm_vs_vm.dir/bm_vs_vm.cc.o.d"
  "bm_vs_vm"
  "bm_vs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_vs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bm_vs_vm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cold_migration.dir/cold_migration.cc.o"
  "CMakeFiles/cold_migration.dir/cold_migration.cc.o.d"
  "cold_migration"
  "cold_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cold_migration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hw_core_test.dir/hw_core_test.cc.o"
  "CMakeFiles/hw_core_test.dir/hw_core_test.cc.o.d"
  "hw_core_test"
  "hw_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hw_core_test.
# This may be replaced when dependencies are built.

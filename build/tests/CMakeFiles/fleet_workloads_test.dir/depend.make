# Empty dependencies file for fleet_workloads_test.
# This may be replaced when dependencies are built.

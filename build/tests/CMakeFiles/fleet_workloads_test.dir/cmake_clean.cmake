file(REMOVE_RECURSE
  "CMakeFiles/fleet_workloads_test.dir/fleet_workloads_test.cc.o"
  "CMakeFiles/fleet_workloads_test.dir/fleet_workloads_test.cc.o.d"
  "fleet_workloads_test"
  "fleet_workloads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

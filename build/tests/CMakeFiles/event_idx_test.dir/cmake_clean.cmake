file(REMOVE_RECURSE
  "CMakeFiles/event_idx_test.dir/event_idx_test.cc.o"
  "CMakeFiles/event_idx_test.dir/event_idx_test.cc.o.d"
  "event_idx_test"
  "event_idx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_idx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

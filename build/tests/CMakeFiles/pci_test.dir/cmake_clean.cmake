file(REMOVE_RECURSE
  "CMakeFiles/pci_test.dir/pci_test.cc.o"
  "CMakeFiles/pci_test.dir/pci_test.cc.o.d"
  "pci_test"
  "pci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

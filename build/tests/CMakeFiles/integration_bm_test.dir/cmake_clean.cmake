file(REMOVE_RECURSE
  "CMakeFiles/integration_bm_test.dir/integration_bm_test.cc.o"
  "CMakeFiles/integration_bm_test.dir/integration_bm_test.cc.o.d"
  "integration_bm_test"
  "integration_bm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_bm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for integration_bm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/iobond_test.dir/iobond_test.cc.o"
  "CMakeFiles/iobond_test.dir/iobond_test.cc.o.d"
  "iobond_test"
  "iobond_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iobond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

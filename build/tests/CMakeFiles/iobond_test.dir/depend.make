# Empty dependencies file for iobond_test.
# This may be replaced when dependencies are built.

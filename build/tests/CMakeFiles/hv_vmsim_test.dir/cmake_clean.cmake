file(REMOVE_RECURSE
  "CMakeFiles/hv_vmsim_test.dir/hv_vmsim_test.cc.o"
  "CMakeFiles/hv_vmsim_test.dir/hv_vmsim_test.cc.o.d"
  "hv_vmsim_test"
  "hv_vmsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_vmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

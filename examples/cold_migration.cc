/**
 * @file
 * Cold migration — the paper's interoperability requirement
 * (section 3.1): "a bm-guest can be run in a VM as well... From
 * the user perspective, they only need to provide a VM image,
 * which can be run as either a VM or a bm-guest."
 *
 * This example installs one bootable image on a cloud volume,
 * boots it inside a vm-guest, powers that guest down, provisions
 * a compute board, and boots the *same volume* as a bm-guest via
 * the virtio-aware firmware. The kernel bytes are verified on
 * both boots — the image contract really is identical.
 */

#include <cstdio>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "guest/firmware.hh"
#include "vmsim/vm_guest.hh"

using namespace bmhive;

int
main()
{
    Simulation sim(2020);
    cloud::VSwitch vswitch(sim, "vswitch");
    cloud::BlockService storage(sim, "storage");

    // One image, one volume, used by both incarnations.
    cloud::Volume &vol = storage.createVolume("user-image", 64 * MiB);
    guest::installImage(vol, /*kernel_bytes=*/512 * KiB,
                        "userimg-7.4");
    std::printf("installed image 'userimg-7.4' (512 KiB kernel) "
                "on the cloud volume\n\n");

    // --- Phase 1: boot as a vm-guest ---
    std::printf("phase 1: boot as a vm-guest\n");
    {
        vmsim::VmGuestParams p;
        p.mac = 0xF00D;
        p.volumeSectors = vol.capacity() / 512;
        vmsim::VmGuest vm(sim, "vm", p, vswitch, &storage, &vol);
        vm.bringUp();

        bool booted = false;
        std::string version;
        Tick t0 = sim.now();
        Tick t_done = t0;
        guest::VirtioBootFirmware fw(vm.os(), *vm.blk());
        fw.boot([&](bool ok, const std::string &v) {
            booted = ok;
            version = v;
            t_done = sim.now();
        });
        sim.run(sim.now() + secToTicks(5));
        std::printf("  vm-guest boot: %s, image version '%s', "
                    "%.1f ms\n",
                    booted ? "OK" : "FAILED", version.c_str(),
                    ticksToMs(t_done - t0));
        // Power down: the vm's state is only on the cloud volume;
        // its NIC address returns to the pool.
        vm.service().stop();
        vswitch.removePort(vm.port());
    }

    // --- Phase 2: the same volume boots as a bm-guest ---
    std::printf("\nphase 2: cold-migrate to a compute board\n");
    {
        core::BmServerParams sp;
        sp.maxBoards = 2;
        core::BmHiveServer server(sim, "server", vswitch, &storage,
                                  sp);
        core::BmGuest &bm = server.provision(
            core::InstanceCatalog::evaluated(), 0xF00D, &vol);
        sim.run(sim.now() + msToTicks(1));

        bool booted = false;
        std::string version;
        Tick t0 = sim.now();
        Tick t_done = t0;
        guest::VirtioBootFirmware fw(bm.os(), *bm.blk());
        fw.boot([&](bool ok, const std::string &v) {
            booted = ok;
            version = v;
            t_done = sim.now();
        });
        sim.run(sim.now() + secToTicks(5));
        std::printf("  bm-guest boot: %s, image version '%s', "
                    "%.1f ms\n",
                    booted ? "OK" : "FAILED", version.c_str(),
                    ticksToMs(t_done - t0));
        std::printf("  (EFI firmware fetched bootloader + kernel "
                    "through virtio-blk over IO-Bond:\n   %llu "
                    "chains forwarded, %llu bytes DMAd)\n",
                    (unsigned long long)bm.bond().chainsForwarded(),
                    (unsigned long long)
                        bm.bond().dma().bytesMoved());
    }

    std::printf("\nsame image, both platforms — the cold-migration "
                "contract holds.\n");
    return 0;
}

/**
 * @file
 * Multi-tenancy: a full BM-Hive server with 16 bm-guests running
 * mixed workloads concurrently — the high-density configuration
 * that motivates the paper (Table 1: "up to 16 bm-guests per
 * server"). Shows per-guest isolation: each guest saturates its
 * own rate limits without disturbing its neighbours, and a
 * hostile guest corrupting its rings hurts only itself.
 */

#include <cstdio>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "virtio/virtio_net.hh"

using namespace bmhive;

int
main()
{
    Simulation sim(7);
    cloud::VSwitch vswitch(sim, "vswitch");
    cloud::BlockService storage(sim, "storage");
    core::BmHiveServer server(sim, "server", vswitch, &storage);

    // Fill the server: 16 small-instance boards.
    const auto &type = core::InstanceCatalog::byName("ebm.xeon-e3.8");
    std::vector<core::BmGuest *> guests;
    for (unsigned i = 0; i < server.maxBoards(); ++i) {
        auto &vol = storage.createVolume(
            "vol" + std::to_string(i), 32 * MiB);
        guests.push_back(&server.provision(
            type, 0x1000 + i, &vol));
    }
    sim.run(sim.now() + msToTicks(1));
    std::printf("server hosts %u bm-guests (%s), %u free slots\n",
                server.guestCount(), type.cpu.model.c_str(),
                server.freeSlots());

    // Odd guests run network pairs; even guests run storage.
    std::vector<std::uint64_t> rx_count(guests.size(), 0);
    std::vector<std::uint64_t> io_count(guests.size(), 0);

    // Pair (0,1), (2,3), ... guests blast packets at each other.
    for (unsigned i = 0; i + 1 < guests.size(); i += 2) {
        auto *src = guests[i];
        auto *dst = guests[i + 1];
        dst->net().setRxHandler(
            [&rx_count, i](const cloud::Packet &) {
                ++rx_count[i + 1];
            });
        // A simple self-sustaining sender: 64 packets per batch.
        struct Sender
        {
            static void
            loop(Simulation &sim, core::BmGuest *src,
                 core::BmGuest *dst, Tick stop)
            {
                if (sim.now() >= stop)
                    return;
                for (int k = 0; k < 64; ++k) {
                    cloud::Packet p;
                    p.src = src->mac();
                    p.dst = dst->mac();
                    p.len = 64;
                    p.created = sim.now();
                    src->net().sendPacket(p, false,
                                          src->os().cpu(1));
                }
                src->net().kickTx(src->os().cpu(1));
                auto *ev = new OneShotEvent(
                    [&sim, src, dst, stop] {
                        loop(sim, src, dst, stop);
                    },
                    "sender.loop");
                sim.eventq().schedule(ev,
                                      sim.now() + usToTicks(50));
            }
        };
        Sender::loop(sim, src, dst, sim.now() + msToTicks(20));

        // The even guest also hammers its volume.
        struct IoLoop
        {
            static void
            go(Simulation &sim, core::BmGuest *g,
               std::uint64_t *count, Tick stop)
            {
                if (sim.now() >= stop)
                    return;
                g->blk()->read(
                    (*count * 8) % 1024, 4 * KiB, g->os().cpu(2),
                    [&sim, g, count, stop](std::uint8_t, Addr) {
                        ++*count;
                        go(sim, g, count, stop);
                    });
            }
        };
        IoLoop::go(sim, src, &io_count[i], sim.now() + msToTicks(20));
    }

    // Guest 15 (an idle-tx receiver) corrupts its own tx ring mid-run (hostile).
    auto *ev = new OneShotEvent(
        [&] {
            auto &g = *guests[15];
            auto layout = g.net().queue(virtio::NET_TXQ).layout();
            GuestMemory &m = g.os().memory();
            layout.writeDesc(m, 0,
                             {0x40, 8, virtio::VRING_DESC_F_NEXT,
                              0}); // self-loop
            std::uint16_t avail = layout.availIdx(m);
            layout.setAvailRing(m, avail % layout.size(), 0);
            layout.setAvailIdx(m, avail + 1);
            g.net().kickNow(virtio::NET_TXQ);
        },
        "hostile");
    sim.eventq().schedule(ev, sim.now() + msToTicks(10));

    // Fleet-style monitoring: one per-guest rollup (packets, block
    // I/Os, poll busy ratio) logged every 10 simulated ms.
    server.startStatsDump(msToTicks(10));

    sim.run(sim.now() + msToTicks(25));

    std::printf("\n%-8s %14s %14s %16s\n", "guest", "rx packets",
                "block IOs", "malformed chains");
    for (unsigned i = 0; i < guests.size(); ++i) {
        std::printf("%-8u %14llu %14llu %16llu\n", i,
                    (unsigned long long)rx_count[i],
                    (unsigned long long)io_count[i],
                    (unsigned long long)
                        guests[i]->bond().malformedChains());
    }
    std::printf("\nisolation: guest 15's corrupt chain was "
                "dropped by its own IO-Bond;\nevery other guest "
                "kept its full throughput.\n");

    std::printf("\nper-guest report (guest 1):\n%s\n",
                guests[1]->statsReport().c_str());
    return 0;
}

/**
 * @file
 * Quickstart: the smallest complete BM-Hive session.
 *
 * Builds one bare-metal server with cloud networking and storage,
 * provisions two bm-guests, and shows the IO-Bond datapath at
 * work: the Fig. 6 trace of a packet crossing the shadow vrings,
 * and a block read served by the cloud storage.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "bmhive.hh"

using namespace bmhive;

int
main()
{
    // Everything lives in one deterministic simulation.
    Simulation sim(/*seed=*/42);

    // The cloud substrate: a DPDK-style vSwitch and SSD-backed
    // block storage reachable over the datacenter network.
    cloud::VSwitch vswitch(sim, "vswitch");
    cloud::BlockService storage(sim, "storage");
    cloud::Volume &volume = storage.createVolume("demo-vol", 64 * MiB);

    // One BM-Hive server: base board + compute board slots.
    core::BmServerParams params;
    params.maxBoards = 4;
    core::BmHiveServer server(sim, "server", vswitch, &storage,
                              params);

    // Provision two bm-guests. provision() powers the compute
    // board, enumerates PCI, starts the virtio drivers, and
    // connects the bm-hypervisor backend.
    core::BmGuest &alice = server.provision(
        core::InstanceCatalog::evaluated(), /*mac=*/0xA11CE,
        &volume);
    core::BmGuest &bob = server.provision(
        core::InstanceCatalog::evaluated(), /*mac=*/0xB0B);
    sim.run(sim.now() + msToTicks(1)); // let rx rings settle

    std::printf("provisioned: %s (%s) and %s\n",
                alice.instance().name.c_str(),
                alice.instance().cpu.model.c_str(),
                bob.instance().name.c_str());

    // Watch the IO-Bond datapath (the 14 steps of paper Fig. 6).
    alice.bond().setTracer([&](const std::string &msg) {
        std::printf("  [%8.2f us] %s\n", ticksToUs(sim.now()),
                    msg.c_str());
    });

    // --- 1. Send a packet from alice to bob ---
    std::printf("\n== tx: alice -> bob (64B UDP) ==\n");
    bob.net().setRxHandler([&](const cloud::Packet &p) {
        std::printf("  [%8.2f us] bob received seq=%llu "
                    "(latency %.2f us)\n",
                    ticksToUs(sim.now()),
                    (unsigned long long)p.seq,
                    ticksToUs(sim.now() - p.created));
    });
    cloud::Packet pkt;
    pkt.src = 0xA11CE;
    pkt.dst = 0xB0B;
    pkt.len = cloud::udpFrameBytes(64);
    pkt.created = sim.now();
    pkt.seq = 1;
    alice.net().sendPacket(pkt, /*kick_now=*/true,
                           alice.os().cpu(0));
    sim.run(sim.now() + msToTicks(2));

    // --- 2. Read a block from the cloud volume ---
    std::printf("\n== blk: alice reads 4 KiB at sector 0 ==\n");
    Tick issued = sim.now();
    alice.blk()->read(0, 4 * KiB, alice.os().cpu(0),
                      [&](std::uint8_t status, Addr) {
                          std::printf(
                              "  [%8.2f us] read complete, "
                              "status=%u, latency %.1f us\n",
                              ticksToUs(sim.now()), status,
                              ticksToUs(sim.now() - issued));
                      });
    sim.run(sim.now() + msToTicks(5));

    std::printf("\nIO-Bond counters: %llu doorbells, %llu chains "
                "forwarded, %llu completions, %llu bytes DMAd\n",
                (unsigned long long)alice.bond().notifications(),
                (unsigned long long)alice.bond().chainsForwarded(),
                (unsigned long long)
                    alice.bond().completionsReturned(),
                (unsigned long long)alice.bond().dma().bytesMoved());
    return 0;
}

/**
 * @file
 * The paper's headline comparison as a program: the same NGINX
 * workload served by a bm-guest and by a similarly configured
 * vm-guest, using the same guest driver code on both — only the
 * platform underneath differs.
 */

#include <cstdio>
#include <string>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "vmsim/vm_guest.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::workloads;

namespace {

AppBenchResult
serveOn(GuestContext g, Simulation &sim, cloud::VSwitch &sw)
{
    AppBenchParams params;
    params.clients = 200;
    params.window = msToTicks(150);
    AppServerBench bench(sim, "ab", g, sw, 0xC11E,
                         AppProfile::nginx(), params);
    return bench.run();
}

} // namespace

int
main()
{
    std::printf("NGINX, 200 concurrent clients, KeepAlive off\n\n");

    AppBenchResult bm, vm;
    std::string stage_report;
    {
        Simulation sim(11);
        // Capture Chrome trace events and per-stage request spans
        // on the bare-metal side (paper Fig. 6 datapath).
        sim.trace().enable();
        cloud::VSwitch vswitch(sim, "vswitch");
        cloud::BlockService storage(sim, "storage");
        core::BmServerParams sp;
        sp.maxBoards = 2;
        core::BmHiveServer server(sim, "server", vswitch, &storage,
                                  sp);
        auto &g = server.provision(
            core::InstanceCatalog::evaluated(), 0xAA);
        g.hypervisor().enableIoTracing();
        sim.run(sim.now() + msToTicks(1));
        bm = serveOn(GuestContext::of(g), sim, vswitch);

        auto *tracer = g.hypervisor().netTracer();
        if (tracer && tracer->completed() > 0)
            stage_report = tracer->breakdown();
        const char *trace_path = "bm_vs_vm_trace.json";
        sim.trace().writeJson(trace_path);
        std::printf("wrote %zu trace events to %s "
                    "(open in chrome://tracing)\n\n",
                    sim.trace().size(), trace_path);
    }
    {
        Simulation sim(12);
        cloud::VSwitch vswitch(sim, "vswitch");
        vmsim::VmGuestParams p;
        p.mac = 0xAA;
        vmsim::VmGuest guest(sim, "vm0", p, vswitch);
        guest.bringUp();
        sim.run(sim.now() + msToTicks(1));
        vm = serveOn(GuestContext::of(guest), sim, vswitch);
    }

    std::printf("%-10s %12s %14s %12s\n", "platform", "req/s",
                "mean resp ms", "p99 ms");
    std::printf("%-10s %12.0f %14.2f %12.2f\n", "bm-guest",
                bm.rps, bm.avgMs, bm.p99Ms);
    std::printf("%-10s %12.0f %14.2f %12.2f\n", "vm-guest",
                vm.rps, vm.avgMs, vm.p99Ms);
    std::printf("\nbm-guest serves %.0f%% more requests per "
                "second;\nits mean response time is %.0f%% "
                "shorter.\n",
                100.0 * (bm.rps / vm.rps - 1.0),
                100.0 * (1.0 - bm.avgMs / vm.avgMs));
    std::printf("(paper section 4.4: ~50-60%% more RPS, ~30%% "
                "shorter response time)\n");
    if (!stage_report.empty()) {
        std::printf("\nbm-guest tx packet path, per IO-Bond stage "
                    "(doorbell -> completion DMA; tx MSIs are "
                    "suppressed):\n%s",
                    stage_report.c_str());
    }
    return 0;
}

/**
 * @file
 * Fig. 16: Redis requests/second with varying value sizes (4B -
 * 4KB), redis-benchmark.
 *
 * Paper result: the bm-guest processes more requests/second at
 * every size and its throughput is more stable; the vm-guest
 * fluctuates (cache effects).
 */

#include "bench/common.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

AppBenchResult
runOne(std::uint64_t seed, bool bm, Bytes value_bytes)
{
    AppBenchParams p;
    p.clients = 256;
    p.window = Session::window(msToTicks(250));
    Testbed bed(seed);
    auto g = bm ? bed.bmGuest(0xaa, 0) : bed.vmGuest(0xaa, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    AppServerBench bench(bed.sim, "redisbench", g, bed.vswitch,
                         0xc11e, AppProfile::redis(value_bytes), p);
    return bench.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 16", "Redis requests/s vs value size "
                      "(redis-benchmark, 256 clients)");

    std::printf("  %10s %12s %12s %8s\n", "value B", "bm RPS",
                "vm RPS", "bm/vm");
    for (Bytes size : {4u, 16u, 64u, 256u, 1024u, 4096u}) {
        auto bm = runOne(1700 + size, true, size);
        auto vm = runOne(1800 + size, false, size);
        std::printf("  %10llu %12.0f %12.0f %8.2f\n",
                    (unsigned long long)size, bm.rps, vm.rps,
                    bm.rps / vm.rps);
    }
    note("paper: bm faster and more stable at every size; vm "
         "fluctuates");
    return 0;
}

/**
 * @file
 * Fig. 9: UDP packet receive rate (netperf, small UDP packets)
 * between two co-resident guests, bm-guest pair vs vm-guest pair.
 *
 * Paper result: both exceed 3.2M PPS against the 4M PPS limit;
 * the vm-guest is slightly ahead with less jitter because packets
 * between two vm-guests cross one shared memory, while bm-guest
 * packets traverse three PCIe buses and two IO-Bond DMA syncs.
 */

#include "bench/common.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

PacketFloodResult
runPair(GuestContext src, GuestContext dst, Simulation &sim)
{
    PacketFloodParams p;
    p.payloadBytes = 1; // netperf: headers + one byte of data
    p.flows = 14;
    p.batch = 4; // little aggregation for 1B datagrams (no GSO)
    p.stack = NetStack::Kernel;
    p.warmup = msToTicks(5);
    p.window = Session::window(msToTicks(40));
    PacketFlood flood(sim, "flood", src, dst, p);
    return flood.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 9", "UDP packet receive rate (netperf UDP, 1B "
                     "payload, 4M PPS cap)");

    Testbed bm_bed(101);
    auto bm_a = bm_bed.bmGuest(0xaa, 0);
    auto bm_b = bm_bed.bmGuest(0xbb, 0);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
    auto bm = runPair(bm_a, bm_b, bm_bed.sim);

    Testbed vm_bed(102);
    auto vm_a = vm_bed.vmGuest(0xaa, 0);
    auto vm_b = vm_bed.vmGuest(0xbb, 0);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
    auto vm = runPair(vm_a, vm_b, vm_bed.sim);

    std::printf("  %-12s %12s %12s %10s\n", "guest", "PPS (M)",
                "sent (M)", "jitter %");
    std::printf("  %-12s %12.3f %12.3f %10.2f\n", "bm-guest",
                bm.pps / 1e6, double(bm.sent) / 1e6, bm.jitterPct);
    std::printf("  %-12s %12.3f %12.3f %10.2f\n", "vm-guest",
                vm.pps / 1e6, double(vm.sent) / 1e6, vm.jitterPct);
    note("paper: both > 3.2M PPS; vm-guest slightly ahead with "
         "less jitter");
    return 0;
}

/**
 * @file
 * Fig. 8: STREAM memory bandwidth (16 threads, 1.5 GB per array)
 * on the physical machine, the bm-guest, and the vm-guest.
 *
 * Paper result: bm-guest matches the physical machine (native
 * memory access, both near the 4-channel limit); the vm-guest
 * reaches ~98% under load.
 */

#include <cstdio>

#include "base/random.hh"
#include "bench/common.hh"
#include "workloads/spec.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 8", "STREAM bandwidth (GB/s), 16 threads, 200M x "
                     "8B per array");

    Rng rng(888);
    auto rows = streamBandwidth(rng);
    std::printf("  %-8s %10s %10s %10s %10s\n", "kernel",
                "physical", "bm-guest", "vm-guest", "vm/bm");
    for (const auto &r : rows) {
        std::printf("  %-8s %10.1f %10.1f %10.1f %10.3f\n",
                    r.kernel.c_str(), r.physicalGBs,
                    r.bareMetalGBs, r.vmGBs,
                    r.vmGBs / r.bareMetalGBs);
    }
    std::printf("  channel peak: %.1f GB/s (4x DDR4-2400)\n",
                memChannelPeakGBs);
    note("paper: bm == physical; vm best case ~98% of bm under "
         "load");
    return 0;
}

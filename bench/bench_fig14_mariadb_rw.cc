/**
 * @file
 * Fig. 14: MariaDB read/write-mixed and write-only QPS under
 * sysbench with 128 threads.
 *
 * Paper result: bm-guest ~55% faster for mixed read/write and
 * ~42% faster for write-only.
 */

#include "bench/common.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

AppBenchResult
runOne(std::uint64_t seed, bool bm, const workloads::AppProfile &prof)
{
    AppBenchParams p;
    p.clients = 128;
    p.window = msToTicks(200);
    Testbed bed(seed);
    auto g = bm ? bed.bmGuest(0xaa, 64) : bed.vmGuest(0xaa, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    AppServerBench bench(bed.sim, "sysbench", g, bed.vswitch,
                         0xc11e, prof, p);
    return bench.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 14", "MariaDB rd/wr mixed and write-only QPS "
                      "(sysbench, 128 threads)");

    std::printf("  %-14s %12s %12s %8s\n", "workload", "bm QPS",
                "vm QPS", "bm/vm");

    auto rw_bm = runOne(1401, true, AppProfile::mariadbReadWrite());
    auto rw_vm = runOne(1402, false,
                        AppProfile::mariadbReadWrite());
    std::printf("  %-14s %12.0f %12.0f %8.2f\n", "read/write",
                rw_bm.rps, rw_vm.rps, rw_bm.rps / rw_vm.rps);

    auto wr_bm = runOne(1403, true, AppProfile::mariadbWriteOnly());
    auto wr_vm = runOne(1404, false,
                        AppProfile::mariadbWriteOnly());
    std::printf("  %-14s %12.0f %12.0f %8.2f\n", "write-only",
                wr_bm.rps, wr_vm.rps, wr_bm.rps / wr_vm.rps);

    note("paper: bm ~55% faster rd/wr mixed, ~42% faster "
         "write-only");
    return 0;
}

/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulator's hot paths:
 * vring serialization, virtqueue submit/pop/complete cycles, the
 * event queue, the DMA engine, the pool allocator, and one full
 * guest-to-guest packet round trip. These measure *simulator*
 * performance (host wall time), not simulated time — they bound
 * how large an experiment the harness can run.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "mem/pool_allocator.hh"
#include "virtio/virtqueue.hh"
#include "workloads/guest_iface.hh"

using namespace bmhive;

namespace {

void
BM_VringDescReadWrite(benchmark::State &state)
{
    GuestMemory mem("m", 64 * KiB);
    auto layout = virtio::VringLayout::contiguous(256, 0);
    virtio::VringDesc d{0x1000, 512, virtio::VRING_DESC_F_NEXT, 1};
    std::uint16_t i = 0;
    for (auto _ : state) {
        layout.writeDesc(mem, i % 256, d);
        auto r = layout.readDesc(mem, i % 256);
        benchmark::DoNotOptimize(r);
        ++i;
    }
}
BENCHMARK(BM_VringDescReadWrite);

void
BM_VirtqueueCycle(benchmark::State &state)
{
    GuestMemory mem("m", 1 * MiB);
    auto layout = virtio::VringLayout::contiguous(256, 0x1000);
    virtio::VirtQueueDriver drv(mem, layout);
    virtio::VirtQueueDevice dev(mem, layout);
    for (auto _ : state) {
        auto head = drv.submit({{0x20000, 64, false}}, {}, 1);
        auto chain = dev.pop();
        dev.pushUsed(chain->head, 0);
        auto done = drv.collectUsed();
        benchmark::DoNotOptimize(head);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtqueueCycle);

void
BM_VirtqueueIndirectCycle(benchmark::State &state)
{
    GuestMemory mem("m", 1 * MiB);
    auto layout = virtio::VringLayout::contiguous(256, 0x1000);
    virtio::VirtQueueDriver drv(mem, layout, true, 0x80000);
    virtio::VirtQueueDevice dev(mem, layout);
    for (auto _ : state) {
        auto head = drv.submit(
            {{0x20000, 16, false}, {0x21000, 4096, false}},
            {{0x22000, 1, true}}, 1);
        benchmark::DoNotOptimize(head);
        auto chain = dev.pop();
        dev.pushUsed(chain->head, 1);
        auto done = drv.collectUsed();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VirtqueueIndirectCycle);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue q;
        std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
        Rng rng(1);
        for (int i = 0; i < 1000; ++i)
            evs.push_back(std::make_unique<EventFunctionWrapper>(
                [] {}, "e"));
        state.ResumeTiming();
        for (int i = 0; i < 1000; ++i)
            q.schedule(evs[i].get(),
                       Tick(rng.uniformInt(0, 1000000)));
        q.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_DmaEngineCopy4K(benchmark::State &state)
{
    Simulation sim;
    GuestMemory src("s", 1 * MiB), dst("d", 1 * MiB);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    for (auto _ : state) {
        dma.copy(src, 0, dst, 0, 4096, {});
        sim.run();
    }
    state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DmaEngineCopy4K);

void
BM_PoolAllocatorChurn(benchmark::State &state)
{
    PoolAllocator pool(0, 16 * MiB);
    std::vector<Addr> live;
    Rng rng(2);
    for (auto _ : state) {
        if (live.size() < 64 && rng.chance(0.6)) {
            Addr a = pool.alloc(rng.uniformInt(64, 8192), 16);
            if (a != PoolAllocator::nullAddr)
                live.push_back(a);
        } else if (!live.empty()) {
            std::size_t i =
                std::size_t(rng.uniformInt(0, live.size() - 1));
            pool.free(live[i]);
            live[i] = live.back();
            live.pop_back();
        }
    }
    for (Addr a : live)
        pool.free(a);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolAllocatorChurn);

void
BM_PsimWindowScaling(benchmark::State &state)
{
    // Parallel-core scaling: 8 event partitions each running a
    // self-rescheduling event chain with rng work, driven by N
    // worker threads under a generous lookahead (the chains are
    // independent, so windows are wide and the barrier cost
    // amortizes). items/sec ~= events per host second; the
    // speedup at 8 threads vs 1 is the scaling headline — bounded
    // by the machine's core count, so single-core CI shows ~1x.
    const unsigned threads = unsigned(state.range(0));
    const unsigned parts = 8;
    const Tick step = nsToTicks(500);
    std::uint64_t events = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Simulation sim(7);
        psim::Params pp;
        pp.threads = threads;
        pp.lookahead = usToTicks(100);
        sim.enablePartitions(parts, pp);
        struct Chain
        {
            EventQueue *q = nullptr;
            Rng *rng = nullptr;
            std::unique_ptr<EventFunctionWrapper> ev;
            std::uint64_t count = 0;
        };
        std::vector<Chain> chains(parts);
        for (unsigned p = 0; p < parts; ++p) {
            Chain &c = chains[p];
            c.q = &sim.partitionQueue(p + 1);
            c.rng = &sim.partitionRng(p + 1);
            c.ev = std::make_unique<EventFunctionWrapper>(
                [&c, step] {
                    c.count += 1 + c.rng->uniformInt(0, 1);
                    c.q->schedule(c.ev.get(),
                                  c.q->curTick() + step);
                },
                "chain");
            c.q->schedule(c.ev.get(), step);
        }
        state.ResumeTiming();
        sim.run(msToTicks(2.0));
        state.PauseTiming();
        for (auto &c : chains) {
            events += c.count;
            if (c.ev->scheduled())
                c.q->deschedule(c.ev.get());
        }
        state.ResumeTiming();
    }
    state.SetItemsProcessed(std::int64_t(events));
}
BENCHMARK(BM_PsimWindowScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_FullPacketRoundTrip(benchmark::State &state)
{
    // One guest-to-guest packet through the complete stack:
    // driver -> IO-Bond -> bm-hypervisor -> vSwitch -> ... -> MSI.
    bench::Testbed bed(1);
    auto a = bed.bmGuest(0xA, 0, false);
    auto b = bed.bmGuest(0xB, 0, false);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    std::uint64_t got = 0;
    b.net->setRxHandler([&](const cloud::Packet &) { ++got; });
    std::uint64_t seq = 0;
    for (auto _ : state) {
        cloud::Packet p;
        p.src = 0xA;
        p.dst = 0xB;
        p.len = 64;
        p.seq = seq++;
        a.net->sendPacket(p, true, a.cpu(1));
        bed.sim.run(bed.sim.now() + msToTicks(1));
    }
    state.SetItemsProcessed(state.iterations());
    if (got != seq)
        state.SkipWithError("packet loss in round trip");
}
BENCHMARK(BM_FullPacketRoundTrip)->Unit(benchmark::kMicrosecond);

void
BM_SimulatedPpsThroughput(benchmark::State &state)
{
    // How fast the simulator chews through a PPS experiment:
    // items/sec here ~= simulated packets per host second.
    bench::Testbed bed(2);
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    std::uint64_t delivered = 0;
    b.net->setRxHandler([&](const cloud::Packet &) { ++delivered; });
    for (auto _ : state) {
        std::uint64_t before = delivered;
        for (int i = 0; i < 32; ++i) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = 64;
            a.net->sendPacket(p, false, a.cpu(1));
        }
        a.net->kickTx(a.cpu(1));
        bed.sim.run(bed.sim.now() + usToTicks(100));
        benchmark::DoNotOptimize(delivered - before);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SimulatedPpsThroughput);

} // namespace

int
main(int argc, char **argv)
{
    // Strip our flags before google-benchmark sees (and rejects)
    // them; dumps --metrics-out on exit like every other bench.
    bmhive::bench::Session session(argc, argv);
    // --quick (bench_smoke): shrink every benchmark's sampling
    // window; results stay shaped right, just noisier.
    std::vector<char *> args(argv, argv + argc);
    char quick_min[] = "--benchmark_min_time=0.02";
    if (bmhive::bench::Session::quick)
        args.push_back(quick_min);
    args.push_back(nullptr);
    int ac = int(args.size()) - 1;
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Multi-queue scaling sweep: the Fig. 9 (small-UDP PPS) and
 * Fig. 11 (4 KiB random-read IOPS) shapes swept over the
 * negotiated queue count (1/2/4/8) in both backend modes —
 * shared DWRR scheduling of the per-queue units, and negotiated
 * passthrough (each queue 1:1 on a dedicated poller).
 *
 * Exit status is the regression gate for the PR's headline claim:
 * rc=1 unless 4-queue uncapped PPS is at least 1.5x single-queue
 * on the 4-core poll pool.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

/** Shared-pool server with @p q-queue devices on 4 poll cores. */
core::BmServerParams
mqServer(unsigned net_pairs, unsigned blk_queues, bool passthrough)
{
    core::BmServerParams p;
    p.maxBoards = 4;
    p.schedMode = core::SchedMode::Shared;
    p.pollCores = 4;
    p.netQueuePairs = net_pairs;
    p.blkQueues = blk_queues;
    p.mqPassthrough = passthrough;
    return Testbed::withSessionObs(p);
}

/** Local SSD (no fabric hop), as in the section 4.3 storage rows:
 *  fast enough that the virtio backend is the bottleneck the queue
 *  count is supposed to widen. */
cloud::BlockServiceParams
localSsd()
{
    cloud::BlockServiceParams p;
    p.networkLatency = usToTicks(2);
    p.readServiceMedian = usToTicks(45);
    p.writeServiceMedian = usToTicks(18);
    p.gcChance = 5e-4;
    p.gcPause = msToTicks(0.8);
    p.streamBandwidth = Bandwidth::gbps(6);
    return p;
}

/** Uncapped DPDK-style small-UDP blast, Fig. 9 shape. */
double
runPps(std::uint64_t seed, unsigned pairs, bool passthrough)
{
    // Uncapped run: lift the anti-storm doorbell budget along with
    // the instance rate limits — a legitimate DPDK blaster kicking
    // 4+ tx queues at full tilt is not the attack that budget is
    // sized against, and quarantining it would corrupt the sweep.
    auto sp = mqServer(pairs, 1, passthrough);
    sp.bondParams.doorbellRate = 64e6;
    sp.bondParams.doorbellBurst = 1 << 20;
    Testbed bed(seed, sp);
    auto a = bed.bmGuest(0xaa, 0, /*rate_limited=*/false);
    auto b = bed.bmGuest(0xbb, 0, /*rate_limited=*/false);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    a.svc->setPerPacketCost(nsToTicks(55)); // PMD burst mode
    b.svc->setPerPacketCost(nsToTicks(55));
    PacketFloodParams p;
    p.payloadBytes = 1;
    p.flows = 32; // multiple of every swept pair count
    p.batch = 64;
    p.stack = NetStack::Dpdk;
    p.window = Session::window(msToTicks(20));
    PacketFlood flood(bed.sim, "flood", a, b, p);
    return flood.run().pps;
}

/** 4 KiB random reads against a local SSD, Fig. 11 shape. */
FioResult
runIops(std::uint64_t seed, unsigned queues, bool passthrough)
{
    Testbed bed(seed, mqServer(1, queues, passthrough),
                localSsd());
    auto g = bed.bmGuest(0xaa, 128, /*rate_limited=*/false);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    FioParams fp;
    fp.jobs = 16; // every queue sees jobs at any swept count
    fp.window = Session::window(msToTicks(200));
    FioRunner fio(bed.sim, "fio", g, fp);
    return fio.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    const unsigned counts[] = {1, 2, 4, 8};

    banner("MQ/net", "uncapped small-UDP PPS vs negotiated queue "
                     "pairs (4 poll cores)");
    double pps[2][4] = {};
    std::printf("  %-12s %6s %12s %12s\n", "mode", "pairs",
                "PPS (M)", "vs 1q");
    for (int mode = 0; mode < 2; ++mode) {
        bool pass = (mode == 1);
        for (unsigned i = 0; i < 4; ++i) {
            pps[mode][i] = runPps(910 + counts[i], counts[i], pass);
            std::printf("  %-12s %6u %12.2f %12.2f\n",
                        pass ? "passthrough" : "shared", counts[i],
                        pps[mode][i] / 1e6,
                        pps[mode][i] / pps[mode][0]);
        }
    }

    banner("MQ/blk", "local-SSD 4K read IOPS vs negotiated blk "
                     "queues (4 poll cores)");
    std::printf("  %-12s %6s %12s %12s %10s\n", "mode", "queues",
                "IOPS", "vs 1q", "avg us");
    for (int mode = 0; mode < 2; ++mode) {
        bool pass = (mode == 1);
        double base = 0;
        for (unsigned i = 0; i < 4; ++i) {
            FioResult r =
                runIops(920 + counts[i], counts[i], pass);
            if (i == 0)
                base = r.iops;
            std::printf("  %-12s %6u %12.0f %12.2f %10.1f\n",
                        pass ? "passthrough" : "shared", counts[i],
                        r.iops, r.iops / base, r.avgUs);
        }
    }
    note("IOPS here is bounded by the SSD service time, not the "
         "backend: the queue");
    note("sweep shows MQ keeps it there (no per-queue regression) "
         "rather than a speedup.");

    // The PR's headline gate: per-queue scheduling must actually
    // buy parallel service — 4 pairs on 4 cores >= 1.5x one pair.
    double scale = pps[0][2] / pps[0][0];
    std::printf("  4q/1q shared PPS scaling = %.2fx (gate: "
                ">= 1.50x)\n", scale);
    if (scale < 1.5) {
        std::printf("  FAIL: multi-queue PPS scaling regressed\n");
        return 1;
    }
    // Passthrough removes the DWRR dispatch stage; at equal queue
    // count it should never lose to shared scheduling.
    for (unsigned i = 0; i < 4; ++i) {
        if (pps[1][i] < 0.95 * pps[0][i]) {
            std::printf("  FAIL: passthrough PPS below shared at "
                        "%u pairs (%.2fM < %.2fM)\n",
                        counts[i], pps[1][i] / 1e6,
                        pps[0][i] / 1e6);
            return 1;
        }
    }
    return 0;
}

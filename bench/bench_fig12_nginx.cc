/**
 * @file
 * Fig. 12: NGINX under the Apache HTTP benchmark (ab) with
 * KeepAlive disabled, varying the number of concurrent clients.
 *
 * Paper result: the bm-guest serves ~50-60% more requests/second
 * across client counts, and its mean response time is ~30%
 * shorter.
 */

#include "bench/common.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

AppBenchResult
runOne(GuestContext g, cloud::VSwitch &sw, Simulation &sim,
       unsigned clients)
{
    AppBenchParams p;
    p.clients = clients;
    p.window = Session::window(msToTicks(150));
    static int serial = 0;
    AppServerBench bench(sim, "ab" + std::to_string(serial),
                         g, sw, 0xc11e000 + serial, AppProfile::nginx(),
                         p);
    ++serial;
    return bench.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 12", "NGINX requests/s and response time vs "
                      "concurrent clients (ab, KeepAlive off)");

    std::printf("  %8s %12s %12s %8s %12s %12s\n", "clients",
                "bm RPS", "vm RPS", "bm/vm", "bm avg ms",
                "vm avg ms");
    for (unsigned clients : {50u, 100u, 200u, 400u, 800u}) {
        Testbed bm_bed(1200 + clients);
        auto bm_g = bm_bed.bmGuest(0xaa, 64);
        bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
        auto bm = runOne(bm_g, bm_bed.vswitch, bm_bed.sim, clients);

        Testbed vm_bed(1300 + clients);
        auto vm_g = vm_bed.vmGuest(0xaa, 64);
        vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
        auto vm = runOne(vm_g, vm_bed.vswitch, vm_bed.sim, clients);

        std::printf("  %8u %12.0f %12.0f %8.2f %12.2f %12.2f\n",
                    clients, bm.rps, vm.rps, bm.rps / vm.rps,
                    bm.avgMs, vm.avgMs);
    }
    note("paper: bm serves ~50-60% more RPS; ~30% shorter "
         "response time");
    return 0;
}

/**
 * @file
 * Fig. 7: SPEC CINT2006 on the physical machine, the bm-guest,
 * and the vm-guest (all Xeon E5-2682 v4 class).
 *
 * Paper result: all three close; bm ~4% faster than the physical
 * reference overall (different board vendors), vm ~4% slower
 * (memory virtualization; the memory-bound components lose most).
 */

#include <cstdio>

#include "base/random.hh"
#include "bench/common.hh"
#include "workloads/spec.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 7", "SPEC CINT2006: physical vs bm-guest vs "
                     "vm-guest");

    Rng rng(777);
    std::printf("  %-16s %10s %10s %10s %8s\n", "benchmark",
                "physical", "bm-guest", "vm-guest", "vm/phys");
    double gp = 1.0, gb = 1.0, gv = 1.0;
    unsigned n = 0;
    for (const auto &comp : specCint2006()) {
        double p = specScore(comp, Platform::Physical, rng);
        double b = specScore(comp, Platform::BareMetal, rng);
        double v = specScore(comp, Platform::Vm, rng);
        std::printf("  %-16s %10.1f %10.1f %10.1f %8.3f\n",
                    comp.name.c_str(), p, b, v, v / p);
        gp *= p;
        gb *= b;
        gv *= v;
        ++n;
    }
    gp = std::pow(gp, 1.0 / n);
    gb = std::pow(gb, 1.0 / n);
    gv = std::pow(gv, 1.0 / n);
    std::printf("  %-16s %10.1f %10.1f %10.1f\n", "geomean", gp,
                gb, gv);
    std::printf("  bm/physical = %.3f (paper ~1.04), "
                "vm/physical = %.3f (paper ~0.96)\n",
                gb / gp, gv / gp);
    return 0;
}

/**
 * @file
 * Shared testbed for the experiment binaries: one cloud segment
 * (vSwitch + block storage), a BM-Hive server for bm-guests, and
 * factory helpers for vm-guests — the two platforms every figure
 * compares. Also small table-printing helpers so every bench
 * prints rows in the same style as the paper's tables/figures.
 */

#ifndef BMHIVE_BENCH_COMMON_HH
#define BMHIVE_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "fault/fault_injector.hh"
#include "obs/metric_registry.hh"
#include "vmsim/vm_guest.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace bench {

/**
 * Collects the metric registries of every Testbed a bench builds —
 * including ones already destroyed, whose registries are snapshot
 * as JSON at teardown — so Session can dump them all at exit.
 */
class MetricsCapture
{
  public:
    static MetricsCapture &
    instance()
    {
        static MetricsCapture c;
        return c;
    }

    /** Track a live registry under @p label. */
    void
    attach(std::string label, obs::MetricRegistry &reg)
    {
        live_.push_back({std::move(label), &reg});
    }

    /** Snapshot and stop tracking (registry is going away). */
    void
    detach(obs::MetricRegistry &reg)
    {
        for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (it->reg == &reg) {
                snapshots_.emplace_back(it->label,
                                        reg.toJson());
                live_.erase(it);
                return;
            }
        }
    }

    /** One JSON object: {"<label>": {<metrics>}, ...}. */
    std::string
    toJson() const
    {
        std::string out = "{";
        bool first = true;
        auto add = [&](const std::string &label,
                       const std::string &body) {
            if (!first)
                out += ",";
            first = false;
            out += "\n  \"" + label + "\": " + body;
        };
        for (const auto &[label, body] : snapshots_)
            add(label, body);
        for (const auto &l : live_)
            add(l.label, l.reg->toJson());
        out += "\n}\n";
        return out;
    }

  private:
    struct Live
    {
        std::string label;
        obs::MetricRegistry *reg;
    };
    std::vector<Live> live_;
    std::vector<std::pair<std::string, std::string>> snapshots_;
};

/**
 * Per-run bookkeeping every bench main owns: parses (and strips)
 * the common command-line flags, and at exit writes the end-of-run
 * metric snapshot of every testbed when --metrics-out=<path> was
 * given. Declare it first in main() so it outlives the testbeds.
 */
class Session
{
  public:
    Session(int &argc, char **argv)
    {
        const std::string metrics_flag = "--metrics-out=";
        const std::string seed_flag = "--fault-seed=";
        const std::string plan_flag = "--fault-plan=";
        const std::string cores_flag = "--poll-cores=";
        const std::string sched_flag = "--sched=";
        const std::string obs_flag = "--obs=";
        const std::string integrity_flag = "--integrity=";
        const std::string slo_window_flag = "--slo-window-ms=";
        const std::string slo_net_flag = "--slo-net-us=";
        const std::string slo_blk_flag = "--slo-blk-us=";
        const std::string flight_ev_flag = "--flight-events=";
        const std::string flight_dir_flag = "--flight-dump-dir=";
        const std::string threads_flag = "--sim-threads=";
        int w = 1;
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--quick")
                quick = true;
            else if (a.rfind(metrics_flag, 0) == 0)
                metricsOut_ = a.substr(metrics_flag.size());
            else if (a.rfind(obs_flag, 0) == 0) {
                std::string v = a.substr(obs_flag.size());
                fatal_if(v != "on" && v != "off",
                         "--obs wants on|off, got '", v, "'");
                obsEnabled = (v == "on");
            } else if (a.rfind(integrity_flag, 0) == 0) {
                std::string v = a.substr(integrity_flag.size());
                fatal_if(v != "on" && v != "off",
                         "--integrity wants on|off, got '", v, "'");
                integrityOn = (v == "on");
            } else if (a.rfind(slo_window_flag, 0) == 0)
                sloWindowMs = std::atof(
                    a.c_str() + slo_window_flag.size());
            else if (a.rfind(slo_net_flag, 0) == 0)
                sloNetUs =
                    std::atof(a.c_str() + slo_net_flag.size());
            else if (a.rfind(slo_blk_flag, 0) == 0)
                sloBlkUs =
                    std::atof(a.c_str() + slo_blk_flag.size());
            else if (a.rfind(flight_ev_flag, 0) == 0)
                flightEvents = std::strtoul(
                    a.c_str() + flight_ev_flag.size(), nullptr, 0);
            else if (a.rfind(flight_dir_flag, 0) == 0)
                flightDumpDir = a.substr(flight_dir_flag.size());
            else if (a.rfind(threads_flag, 0) == 0)
                simThreads = unsigned(std::strtoul(
                    a.c_str() + threads_flag.size(), nullptr, 0));
            else if (a.rfind(seed_flag, 0) == 0)
                faultSeed = std::strtoull(
                    a.c_str() + seed_flag.size(), nullptr, 0);
            else if (a.rfind(plan_flag, 0) == 0)
                faultPlan = a.substr(plan_flag.size());
            else if (a.rfind(cores_flag, 0) == 0)
                pollCores = unsigned(std::strtoul(
                    a.c_str() + cores_flag.size(), nullptr, 0));
            else if (a.rfind(sched_flag, 0) == 0) {
                std::string v = a.substr(sched_flag.size());
                fatal_if(v != "dedicated" && v != "shared",
                         "--sched wants dedicated|shared, got '",
                         v, "'");
                schedShared = (v == "shared");
                schedSet = true;
            } else
                argv[w++] = argv[i];
        }
        argc = w;
        argv[argc] = nullptr;
    }

    /** --quick (the bench_smoke ctest target): benches shrink
     *  their measurement windows via window() so every binary gets
     *  exercised end to end without paying full-run duration.
     *  Numbers from quick runs are NOT paper-comparable. */
    inline static bool quick = false;

    /** Measurement window honoring --quick. */
    static Tick
    window(Tick full)
    {
        return quick ? full / 8 : full;
    }

    /** Chaos flags, visible to every Testbed the bench builds. */
    inline static std::uint64_t faultSeed = 0;
    inline static std::string faultPlan;
    /** --sim-threads=N: run the simulation core partitioned with N
     *  worker threads (0 = classic single-queue). Benches that
     *  support it call Simulation::enablePartitions; the metrics
     *  of a given seed are byte-identical for every N >= 1. */
    inline static unsigned simThreads = 0;
    /** Scheduler flags: --poll-cores=N picks the shared pool size
     *  (and implies --sched=shared unless overridden). */
    inline static unsigned pollCores = 0;
    inline static bool schedShared = false;
    inline static bool schedSet = false;

    /** --integrity=off strips the end-to-end data-integrity layer
     *  (ECRC DMA checks, DIF block tags, frame checksums, shadow
     *  scrubber) — the overhead baseline every integrity row in
     *  EXPERIMENTS.md compares against. */
    inline static bool integrityOn = true;

    /** Observability flags: --obs=off turns the per-tenant SLO
     *  monitor and flight recorder off; the --slo- and --flight-
     *  knobs override the ObsParams defaults (0/"" = keep). */
    inline static bool obsEnabled = true;
    inline static double sloWindowMs = 0.0;
    inline static double sloNetUs = 0.0;
    inline static double sloBlkUs = 0.0;
    inline static std::size_t flightEvents = 0;
    inline static std::string flightDumpDir;

    /** Where --metrics-out points ("" when not given); anomaly
     *  dumps default to landing beside it. */
    static const std::string &metricsOut() { return metricsOut_; }

    ~Session()
    {
        if (metricsOut_.empty())
            return;
        std::string json = MetricsCapture::instance().toJson();
        std::FILE *f = std::fopen(metricsOut_.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         metricsOut_.c_str());
            return;
        }
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("metrics snapshot written to %s\n",
                    metricsOut_.c_str());
    }

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

  private:
    inline static std::string metricsOut_;
};

/**
 * One experiment environment. Everything shares a Simulation, so
 * results are deterministic in the seed.
 */
class Testbed
{
  public:
    explicit Testbed(std::uint64_t seed = 20200316,
                     unsigned max_boards = 4,
                     cloud::BlockServiceParams storage_params = {})
        : sim(seed), vswitch(sim, "vswitch"),
          storage(sim, "storage", storage_params),
          server(sim, "server", vswitch, &storage,
                 smallServer(max_boards))
    {
        vswitch.setIntegrity(Session::integrityOn);
        static unsigned ordinal = 0;
        MetricsCapture::instance().attach(
            "testbed" + std::to_string(ordinal++), sim.metrics());
        if (Session::faultSeed != 0 ||
            !Session::faultPlan.empty()) {
            chaos = std::make_unique<fault::FaultInjector>(
                sim, "chaos");
            if (!Session::faultPlan.empty()) {
                fatal_if(!chaos->loadPlan(Session::faultPlan),
                         "cannot load fault plan ",
                         Session::faultPlan);
            }
        }
    }

    ~Testbed() { MetricsCapture::instance().detach(sim.metrics()); }

    /** Second ctor form: a fully explicit server configuration
     *  (density sweeps build both scheduler modes themselves). */
    Testbed(std::uint64_t seed, core::BmServerParams server_params,
            cloud::BlockServiceParams storage_params = {})
        : sim(seed), vswitch(sim, "vswitch"),
          storage(sim, "storage", storage_params),
          server(sim, "server", vswitch, &storage,
                 withSessionObs(std::move(server_params)))
    {
        vswitch.setIntegrity(Session::integrityOn);
        static unsigned ordinal = 0;
        MetricsCapture::instance().attach(
            "testbed_cfg" + std::to_string(ordinal++),
            sim.metrics());
        if (Session::faultSeed != 0 ||
            !Session::faultPlan.empty()) {
            chaos = std::make_unique<fault::FaultInjector>(
                sim, "chaos");
            if (!Session::faultPlan.empty()) {
                fatal_if(!chaos->loadPlan(Session::faultPlan),
                         "cannot load fault plan ",
                         Session::faultPlan);
            }
        }
    }

    static core::BmServerParams
    smallServer(unsigned max_boards)
    {
        core::BmServerParams p;
        p.maxBoards = max_boards;
        // Session-wide scheduler selection: --sched=shared, or
        // --poll-cores=N alone, moves every bench's server onto
        // the shared poll pool without per-bench plumbing.
        if (Session::schedShared ||
            (Session::pollCores > 0 && !Session::schedSet)) {
            p.schedMode = core::SchedMode::Shared;
            if (Session::pollCores > 0)
                p.pollCores = Session::pollCores;
        }
        return withSessionObs(p);
    }

    /** Overlay the session's --obs / --slo-* / --flight-* flags on
     *  @p p. With no explicit dump dir, anomaly dumps land next to
     *  the --metrics-out snapshot (none without one: the triggers
     *  still count, nothing is written). */
    static core::BmServerParams
    withSessionObs(core::BmServerParams p)
    {
        p.integrity.enabled = Session::integrityOn;
        p.obs.enabled = Session::obsEnabled;
        if (Session::sloWindowMs > 0)
            p.obs.slo.window = msToTicks(Session::sloWindowMs);
        if (Session::sloNetUs > 0)
            p.obs.slo.netTargetUs = Session::sloNetUs;
        if (Session::sloBlkUs > 0)
            p.obs.slo.blkTargetUs = Session::sloBlkUs;
        if (Session::flightEvents > 0)
            p.obs.flightEvents = Session::flightEvents;
        if (!Session::flightDumpDir.empty()) {
            p.obs.flightDumpDir = Session::flightDumpDir;
        } else if (p.obs.flightDumpDir.empty() &&
                   !Session::metricsOut().empty()) {
            auto slash = Session::metricsOut().rfind('/');
            p.obs.flightDumpDir =
                slash == std::string::npos
                    ? "."
                    : Session::metricsOut().substr(0, slash);
        }
        return p;
    }

    /** Provision a bm-guest (with a volume unless @p vol_mib==0).
     *  @p type defaults to the section 4 evaluated instance;
     *  density sweeps pass a 16-boards-per-server type instead. */
    workloads::GuestContext
    bmGuest(cloud::MacAddr mac, Bytes vol_mib = 64,
            bool rate_limited = true,
            const core::InstanceType *type = nullptr)
    {
        cloud::Volume *vol = nullptr;
        if (vol_mib > 0) {
            vol = &storage.createVolume(
                "bmvol" + std::to_string(mac), vol_mib * MiB);
        }
        auto &g = server.provision(
            type ? *type : core::InstanceCatalog::evaluated(), mac,
            vol, rate_limited);
        armChaos();
        return workloads::GuestContext::of(g);
    }

    /** Create and bring up a vm-guest. */
    workloads::GuestContext
    vmGuest(cloud::MacAddr mac, Bytes vol_mib = 64,
            bool rate_limited = true, bool exclusive = true,
            bool io_contention = true)
    {
        vmsim::VmGuestParams p;
        p.mac = mac;
        p.exclusive = exclusive;
        p.rateLimited = rate_limited;
        p.ioThreadContention = io_contention;
        cloud::Volume *vol = nullptr;
        if (vol_mib > 0) {
            vol = &storage.createVolume(
                "vmvol" + std::to_string(mac), vol_mib * MiB);
            p.volumeSectors = vol_mib * MiB / 512;
        }
        vms.push_back(std::make_unique<vmsim::VmGuest>(
            sim, "vm" + std::to_string(vms.size()), p, vswitch,
            vol ? &storage : nullptr, vol));
        fatal_if(!vms.back()->bringUp(),
                 "vm guest bring-up failed");
        armChaos();
        return workloads::GuestContext::of(*vms.back());
    }

    /**
     * Arm the chaos plan once guest 0's components exist and start
     * the server watchdog so hv crashes recover. --fault-plan
     * entries may target any component; --fault-seed draws a
     * random schedule over the standard bm-guest-0 targets plus the
     * shared fabric.
     */
    void
    armChaos()
    {
        if (!chaos || chaosArmed_)
            return;
        chaosArmed_ = true;
        if (Session::faultSeed != 0) {
            std::vector<fault::FaultInjector::RandomTarget> t = {
                {"server.guest0.iobond",
                 {fault::FaultKind::LinkFlap,
                  fault::FaultKind::DropDoorbell,
                  fault::FaultKind::DmaCorruptMeta}},
                {"server.guest0.iobond.dma",
                 {fault::FaultKind::DmaCorrupt,
                  fault::FaultKind::DmaFail}},
                {"server.guest0.hv",
                 {fault::FaultKind::HvStall,
                  fault::FaultKind::HvCrash}},
                {"storage",
                 {fault::FaultKind::BlockLose,
                  fault::FaultKind::BlockDelay,
                  fault::FaultKind::FabricCorrupt}},
                {"vswitch", {fault::FaultKind::PortStall,
                             fault::FaultKind::FabricCorrupt}},
            };
            chaos->randomPlan(Session::faultSeed, t,
                              msToTicks(50.0), 24);
        }
        // Chaos targets guest 0; mirror every delivery into its
        // flight recorder so anomaly dumps show the injected fault
        // alongside the datapath events it perturbed.
        if (server.guestCount() > 0 && server.guest(0).flight()) {
            auto *fr = server.guest(0).flight();
            chaos->setObserver(
                [this, fr](const fault::FaultInjector::PlanEntry &e,
                           bool accepted) {
                    fr->record(sim.now(),
                               obs::FlightEvent::FaultInject, 0, 0,
                               std::uint64_t(e.spec.kind),
                               accepted ? 1 : 0);
                });
        }
        chaos->arm();
        server.startWatchdog(msToTicks(2.0));
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
    /** Non-null when --fault-seed / --fault-plan was given. */
    std::unique_ptr<fault::FaultInjector> chaos;
    std::vector<std::unique_ptr<vmsim::VmGuest>> vms;

  private:
    bool chaosArmed_ = false;
};

/** Print a bench header in a uniform style. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==============================================="
                "=================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

} // namespace bench
} // namespace bmhive

#endif // BMHIVE_BENCH_COMMON_HH

/**
 * @file
 * Shared testbed for the experiment binaries: one cloud segment
 * (vSwitch + block storage), a BM-Hive server for bm-guests, and
 * factory helpers for vm-guests — the two platforms every figure
 * compares. Also small table-printing helpers so every bench
 * prints rows in the same style as the paper's tables/figures.
 */

#ifndef BMHIVE_BENCH_COMMON_HH
#define BMHIVE_BENCH_COMMON_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "vmsim/vm_guest.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace bench {

/**
 * One experiment environment. Everything shares a Simulation, so
 * results are deterministic in the seed.
 */
class Testbed
{
  public:
    explicit Testbed(std::uint64_t seed = 20200316,
                     unsigned max_boards = 4,
                     cloud::BlockServiceParams storage_params = {})
        : sim(seed), vswitch(sim, "vswitch"),
          storage(sim, "storage", storage_params),
          server(sim, "server", vswitch, &storage,
                 smallServer(max_boards))
    {
    }

    static core::BmServerParams
    smallServer(unsigned max_boards)
    {
        core::BmServerParams p;
        p.maxBoards = max_boards;
        return p;
    }

    /** Provision a bm-guest (with a volume unless @p vol_mib==0). */
    workloads::GuestContext
    bmGuest(cloud::MacAddr mac, Bytes vol_mib = 64,
            bool rate_limited = true)
    {
        cloud::Volume *vol = nullptr;
        if (vol_mib > 0) {
            vol = &storage.createVolume(
                "bmvol" + std::to_string(mac), vol_mib * MiB);
        }
        auto &g = server.provision(
            core::InstanceCatalog::evaluated(), mac, vol,
            rate_limited);
        return workloads::GuestContext::of(g);
    }

    /** Create and bring up a vm-guest. */
    workloads::GuestContext
    vmGuest(cloud::MacAddr mac, Bytes vol_mib = 64,
            bool rate_limited = true, bool exclusive = true,
            bool io_contention = true)
    {
        vmsim::VmGuestParams p;
        p.mac = mac;
        p.exclusive = exclusive;
        p.rateLimited = rate_limited;
        p.ioThreadContention = io_contention;
        cloud::Volume *vol = nullptr;
        if (vol_mib > 0) {
            vol = &storage.createVolume(
                "vmvol" + std::to_string(mac), vol_mib * MiB);
            p.volumeSectors = vol_mib * MiB / 512;
        }
        vms.push_back(std::make_unique<vmsim::VmGuest>(
            sim, "vm" + std::to_string(vms.size()), p, vswitch,
            vol ? &storage : nullptr, vol));
        vms.back()->bringUp();
        return workloads::GuestContext::of(*vms.back());
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
    std::vector<std::unique_ptr<vmsim::VmGuest>> vms;
};

/** Print a bench header in a uniform style. */
inline void
banner(const std::string &id, const std::string &title)
{
    std::printf("==============================================="
                "=================\n");
    std::printf("%s — %s\n", id.c_str(), title.c_str());
    std::printf("==============================================="
                "=================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

} // namespace bench
} // namespace bmhive

#endif // BMHIVE_BENCH_COMMON_HH

/**
 * @file
 * Fig. 11: cloud storage latency, fio 8 jobs x 4 KiB random
 * read/write against the SSD-backed cloud storage over the
 * 100 Gbit/s network, 25K IOPS / 300 MB/s instance limit.
 *
 * Paper result: both guests saturate the 25K IOPS cap; the
 * bm-guest is ~25% faster on average and ~3x better at the 99.9th
 * percentile (random read) because its data is DMA'd directly by
 * IO-Bond while the vm path adds CPU copies and suffers host
 * preemption spikes.
 */

#include "bench/common.hh"
#include "workloads/fio.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

FioResult
runFio(GuestContext g, Simulation &sim, bool write)
{
    FioParams p;
    p.write = write;
    p.jobs = 8;
    p.blockBytes = 4 * KiB;
    p.window = Session::window(msToTicks(2500));
    FioRunner fio(sim, "fio", g, p);
    return fio.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 11", "cloud storage latency, fio 8 jobs, 4 KiB "
                      "random, 25K IOPS cap");

    std::printf("  %-22s %10s %10s %10s %12s\n", "case", "IOPS",
                "avg us", "p99 us", "p99.9 us");
    double bm_avg_rd = 0, vm_avg_rd = 0, bm_999_rd = 0,
           vm_999_rd = 0;
    for (bool write : {false, true}) {
        Testbed bm_bed(write ? 303 : 301);
        auto bm = runFio(bm_bed.bmGuest(0xaa, 256), bm_bed.sim,
                         write);
        Testbed vm_bed(write ? 304 : 302);
        auto vm = runFio(vm_bed.vmGuest(0xaa, 256), vm_bed.sim,
                         write);
        const char *op = write ? "rand-write" : "rand-read";
        std::printf("  bm-guest %-13s %10.0f %10.1f %10.1f %12.1f\n",
                    op, bm.iops, bm.avgUs, bm.p99Us, bm.p999Us);
        std::printf("  vm-guest %-13s %10.0f %10.1f %10.1f %12.1f\n",
                    op, vm.iops, vm.avgUs, vm.p99Us, vm.p999Us);
        if (!write) {
            bm_avg_rd = bm.avgUs;
            vm_avg_rd = vm.avgUs;
            bm_999_rd = bm.p999Us;
            vm_999_rd = vm.p999Us;
        }
    }
    std::printf("  rand-read: vm/bm avg = %.2f, vm/bm p99.9 = "
                "%.2f\n",
                vm_avg_rd / bm_avg_rd, vm_999_rd / bm_999_rd);
    note("paper: both saturate 25K IOPS; bm ~25% faster avg, ~3x "
         "better p99.9 (read)");
    return 0;
}

/**
 * @file
 * Table 1: qualitative comparison of the three cloud service
 * types. The rows are backed by measurable properties of the
 * simulated system where possible (density from the catalog,
 * isolation from the architecture).
 */

#include "bench/common.hh"
#include "core/instance_catalog.hh"

using namespace bmhive;
using namespace bmhive::bench;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Table 1", "comparison of three cloud services");
    std::printf(
        "  %-14s %-26s %-26s %-30s %-22s\n", "service", "security",
        "isolation", "performance", "density");
    std::printf(
        "  %-14s %-26s %-26s %-30s %-22s\n", "VM-based",
        "side-channel + DoS risks", "weak (resource sharing)",
        "CPU/mem/I/O virt overhead", "very high");
    std::printf(
        "  %-14s %-26s %-26s %-30s %-22s\n", "single-tenant",
        "user owns whole platform", "strong but moot",
        "native", "1 user/server");
    std::printf(
        "  %-14s %-26s %-26s %-30s %-22s\n", "BM-Hive",
        "hw isolation + signed fw", "strong (hardware)",
        "native CPU/mem, pv I/O", "up to 16 guests/server");

    // Back the density cell with the actual catalog.
    unsigned max_boards = 0;
    for (const auto &row : core::InstanceCatalog::table3())
        max_boards = std::max(max_boards, row.maxBoardsPerServer);
    std::printf("\n  catalog check: max boards per server = %u "
                "(paper: %u)\n",
                max_boards, paper::maxComputeBoards);
    return max_boards == paper::maxComputeBoards ? 0 : 1;
}

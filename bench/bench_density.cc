/**
 * @file
 * Density sweep (section 3.5): the paper's economic argument is
 * that one BM-Hive server carries up to 16 bm-guests, which only
 * pays off if the base board does not need one dedicated polling
 * core per guest. This bench multiplexes N guests over a shared
 * PollScheduler pool of M cores and compares aggregate PPS / IOPS
 * / p99 against the seed's dedicated-core layout.
 *
 * Acceptance (exit code 1 on violation):
 *  - 16 guests on 4 shared poll cores stay within 10% of the
 *    16-guest dedicated aggregate throughput under the paper's
 *    per-instance rate caps;
 *  - at low load, the adaptive-poll governor cuts idle polls to
 *    less than half of the dedicated always-busy-poll baseline.
 *
 * Flags: --sched=dedicated|shared and --poll-cores=N only affect
 * the Testbed default config (the sweep builds both modes
 * explicitly); --fault-seed + --metrics-out support the
 * determinism check in the verify recipe.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/common.hh"
#include "sched/poll_scheduler.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

struct DensityRow
{
    const char *mode = "";
    unsigned guests = 0;
    unsigned cores = 0;
    double mpps = 0.0;
    double kiops = 0.0;
    double p99Us = 0.0;
    double busyRatio = 0.0; ///< shared pool only (0 for dedicated)
    /** Per-tenant doorbell->MSI p99 from the SLO monitors (net
     *  role; 0 for guests with no net window samples). */
    std::vector<double> tenantNetP99;
};

core::BmServerParams
serverParams(bool shared, unsigned cores)
{
    core::BmServerParams p;
    p.maxBoards = 16;
    if (shared) {
        p.schedMode = core::SchedMode::Shared;
        p.pollCores = cores;
    }
    return p;
}

/**
 * One cell of the sweep: @p guests bm-guests, the first two
 * running fio against their volumes, the rest paired into packet
 * floods — all concurrently, one event loop.
 */
DensityRow
runConfig(std::uint64_t seed, bool shared, unsigned guests,
          unsigned cores)
{
    Testbed bed(seed, serverParams(shared, cores));
    // Density needs the small instance that packs 16 boards per
    // server (Table 3); the evaluated E5 instance stops at 8.
    const auto &inst = core::InstanceCatalog::byName("ebm.xeon-e3.8");
    std::vector<GuestContext> g;
    for (unsigned i = 0; i < guests; ++i)
        g.push_back(bed.bmGuest(0x10 + i, i < 2 ? 64 : 0, true,
                                &inst));
    bed.sim.run(bed.sim.now() + msToTicks(1));

    FioParams fp;
    fp.jobs = 4;
    fp.warmup = msToTicks(5);
    fp.window = Session::window(msToTicks(20));
    std::vector<std::unique_ptr<FioRunner>> fios;
    for (unsigned i = 0; i < 2 && i < guests; ++i) {
        fios.push_back(std::make_unique<FioRunner>(
            bed.sim, "fio" + std::to_string(i), g[i], fp));
    }

    PacketFloodParams pp;
    pp.payloadBytes = 64;
    pp.flows = 2;
    pp.batch = 8;
    pp.stack = NetStack::Kernel;
    pp.warmup = msToTicks(5);
    pp.window = Session::window(msToTicks(20));
    std::vector<std::unique_ptr<PacketFlood>> floods;
    for (unsigned i = 2; i + 1 < guests; i += 2) {
        floods.push_back(std::make_unique<PacketFlood>(
            bed.sim, "flood" + std::to_string(i), g[i], g[i + 1],
            pp));
    }

    Tick done = bed.sim.now();
    for (auto &f : fios) {
        f->start();
        done = std::max(done, f->doneAt());
    }
    for (auto &f : floods) {
        f->start();
        done = std::max(done, f->doneAt());
    }
    bed.sim.run(done);

    DensityRow row;
    row.mode = shared ? "shared" : "dedicated";
    row.guests = guests;
    row.cores = shared ? cores : guests;
    for (auto &f : fios) {
        auto r = f->collect();
        row.kiops += r.iops / 1e3;
        row.p99Us = std::max(row.p99Us, r.p99Us);
    }
    for (auto &f : floods) {
        auto r = f->collect();
        row.mpps += r.pps / 1e6;
    }
    if (auto *s = bed.server.scheduler()) {
        for (unsigned c = 0; c < s->coreCount(); ++c)
            row.busyRatio += s->busyRatio(c) / s->coreCount();
    }
    for (unsigned i = 0; i < bed.server.guestCount(); ++i) {
        auto *slo = bed.server.guest(i).slo();
        row.tenantNetP99.push_back(
            slo && slo->windowSamples(obs::SloRole::Net) > 0
                ? slo->percentileUs(obs::SloRole::Net, 0.99)
                : 0.0);
    }
    return row;
}

/**
 * Idle polls burned over 20 ms with provisioned but quiet guests:
 * dedicated backends busy-poll at the fixed period; the shared
 * pool's governor should back off and sleep.
 */
std::uint64_t
idlePolls(std::uint64_t seed, bool shared)
{
    Testbed bed(seed, serverParams(shared, 4));
    for (unsigned i = 0; i < 4; ++i)
        bed.bmGuest(0x40 + i, 0);
    bed.sim.run(bed.sim.now() + Session::window(msToTicks(20)));
    std::uint64_t idle = 0;
    for (unsigned i = 0; i < bed.server.guestCount(); ++i) {
        auto &svc = bed.server.guest(i).hypervisor().service();
        idle += svc.pollsTotal() - svc.pollsBusy();
    }
    return idle;
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Density", "guests per poll core: shared PollScheduler "
                      "pool vs dedicated cores (section 3.5)");

    struct Cfg
    {
        bool shared;
        unsigned guests;
        unsigned cores;
    };
    const Cfg sweep[] = {
        {false, 4, 0},  {false, 16, 0}, {true, 4, 4},
        {true, 8, 4},   {true, 16, 4},
    };

    std::printf("  %-10s %7s %6s %10s %10s %9s %7s\n", "mode",
                "guests", "cores", "PPS (M)", "IOPS (k)", "p99 us",
                "busy%");
    DensityRow ded16, shr16;
    std::uint64_t seed = 701;
    for (const auto &c : sweep) {
        DensityRow r = runConfig(seed++, c.shared, c.guests,
                                 c.cores);
        std::printf("  %-10s %7u %6u %10.3f %10.1f %9.1f %7.1f\n",
                    r.mode, r.guests, r.cores, r.mpps, r.kiops,
                    r.p99Us, 100.0 * r.busyRatio);
        if (!c.shared && c.guests == 16)
            ded16 = r;
        if (c.shared && c.guests == 16)
            shr16 = r;
    }

    // Density is only honest per tenant: an aggregate PPS match
    // can hide one starved guest. The SLO monitors give the
    // per-tenant tail at both extremes of the sweep.
    auto tenant_table = [](const char *label, const DensityRow &r) {
        if (r.tenantNetP99.empty())
            return;
        std::printf("  per-tenant net p99 (%s):", label);
        for (std::size_t i = 0; i < r.tenantNetP99.size(); ++i) {
            if (i % 8 == 0)
                std::printf("\n   ");
            std::printf(" g%-2zu=%-7.1f", i, r.tenantNetP99[i]);
        }
        std::printf("\n");
    };
    tenant_table("dedicated-16", ded16);
    tenant_table("shared-16", shr16);

    std::uint64_t idle_ded = idlePolls(801, false);
    std::uint64_t idle_shr = idlePolls(801, true);
    std::printf("  idle polls over 20 ms, 4 quiet guests: "
                "dedicated=%llu shared=%llu\n",
                (unsigned long long)idle_ded,
                (unsigned long long)idle_shr);

    // The throughput acceptance is specified for the clean run
    // under the paper's rate caps; chaos runs (--fault-seed /
    // --fault-plan) use this bench for recovery and determinism
    // checks where degraded I/O is the point.
    if (Session::faultSeed != 0 || !Session::faultPlan.empty()) {
        note("fault injection armed: density acceptance skipped");
        return 0;
    }

    int rc = 0;
    if (shr16.mpps < 0.9 * ded16.mpps) {
        std::printf("  FAIL: shared-16 PPS %.3fM < 90%% of "
                    "dedicated-16 %.3fM\n",
                    shr16.mpps, ded16.mpps);
        rc = 1;
    }
    if (shr16.kiops < 0.9 * ded16.kiops) {
        std::printf("  FAIL: shared-16 IOPS %.1fk < 90%% of "
                    "dedicated-16 %.1fk\n",
                    shr16.kiops, ded16.kiops);
        rc = 1;
    }
    if (idle_shr * 2 >= idle_ded) {
        std::printf("  FAIL: governor did not halve idle polls "
                    "(shared=%llu dedicated=%llu)\n",
                    (unsigned long long)idle_shr,
                    (unsigned long long)idle_ded);
        rc = 1;
    }
    note(rc == 0
             ? "16 guests on 4 shared cores hold >=90% of dedicated "
               "throughput; governor cuts idle polls"
             : "density acceptance FAILED");
    note("paper: density is the point — one base board serves up "
         "to 16 boards (Table 3)");
    return rc;
}

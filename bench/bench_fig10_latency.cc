/**
 * @file
 * Fig. 10: 64-byte UDP and ICMP latency between two co-resident
 * guests, sockperf (kernel stack), DPDK (kernel bypass), and ping.
 *
 * Paper result: with the default kernel stack, bm-guest and
 * vm-guest latency is almost the same (software dominates); with
 * DPDK the vm-guest is slightly better because BM-Hive's longer
 * I/O path (IO-Bond PCI hops) becomes visible. Same for ICMP ping.
 *
 * Also reproduces the section 4.3 TCP throughput check: both
 * guests saturate the 10 Gbit/s rate limit (9.6 vs 9.59 Gbit/s).
 */

#include "bench/common.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

PingPongResult
lat(GuestContext a, GuestContext b, Simulation &sim, NetStack stack)
{
    PingPongParams p;
    p.payloadBytes = 64;
    p.samples = 3000;
    p.stack = stack;
    PingPong pp(sim, "pp", a, b, p);
    return pp.run();
}

PacketFloodResult
tcpThroughput(GuestContext a, GuestContext b, Simulation &sim)
{
    PacketFloodParams p;
    p.payloadBytes = 1400; // the paper's TCP segment size
    p.flows = 8;           // 64 connections multiplexed on 8 cpus
    p.batch = 16;          // TSO-style aggregation
    p.stack = NetStack::Kernel;
    p.window = msToTicks(40);
    PacketFlood flood(sim, "tcp", a, b, p);
    return flood.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 10", "64B UDP / ping latency (sockperf, DPDK, "
                      "ICMP), one-way us");

    Testbed bm_bed(201);
    auto bm_a = bm_bed.bmGuest(0xaa, 0);
    auto bm_b = bm_bed.bmGuest(0xbb, 0);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));

    Testbed vm_bed(202);
    auto vm_a = vm_bed.vmGuest(0xaa, 0);
    auto vm_b = vm_bed.vmGuest(0xbb, 0);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));

    struct Row
    {
        const char *name;
        NetStack stack;
    };
    const Row rows[] = {
        {"sockperf (kernel)", NetStack::Kernel},
        {"DPDK (bypass)", NetStack::Dpdk},
        {"ICMP ping", NetStack::Icmp},
    };

    std::printf("  %-20s %12s %12s %9s\n", "mode", "bm avg us",
                "vm avg us", "bm/vm");
    for (const auto &row : rows) {
        auto bm = lat(bm_a, bm_b, bm_bed.sim, row.stack);
        auto vm = lat(vm_a, vm_b, vm_bed.sim, row.stack);
        std::printf("  %-20s %12.2f %12.2f %9.2f\n", row.name,
                    bm.avgUs, vm.avgUs, bm.avgUs / vm.avgUs);
    }
    note("paper: kernel-stack latency almost equal; DPDK/ping "
         "slightly better on vm (longer bm path)");

    banner("Sec. 4.3", "TCP throughput, 64 conns x 1400B, two "
                       "servers over the 100G fabric, 10G cap");
    // The paper's throughput test interconnects two servers with
    // a 100 Gbit/s network: build that topology explicitly.
    Simulation xsim(205);
    cloud::VSwitch sw1(xsim, "sw1"), sw2(xsim, "sw2");
    cloud::NetFabric fabric(xsim, "fabric");
    fabric.attach(sw1);
    fabric.attach(sw2);
    cloud::BlockService xst(xsim, "xst");
    core::BmServerParams xsp;
    xsp.maxBoards = 1;
    core::BmHiveServer srv1(xsim, "srv1", sw1, &xst, xsp);
    core::BmHiveServer srv2(xsim, "srv2", sw2, &xst, xsp);
    auto &xg1 = srv1.provision(core::InstanceCatalog::evaluated(),
                               0xA9);
    auto &xg2 = srv2.provision(core::InstanceCatalog::evaluated(),
                               0xB9);
    fabric.learn(0xA9, sw1);
    fabric.learn(0xB9, sw2);
    xsim.run(xsim.now() + msToTicks(1));
    auto bm_t = tcpThroughput(GuestContext::of(xg1),
                              GuestContext::of(xg2), xsim);
    auto vm_t = tcpThroughput(vm_a, vm_b, vm_bed.sim);
    std::printf("  %-12s %10.2f Gbit/s\n", "bm-guest", bm_t.gbps);
    std::printf("  %-12s %10.2f Gbit/s\n", "vm-guest", vm_t.gbps);
    note("paper: 9.60 (bm) vs 9.59 (vm) Gbit/s — both at the "
         "limit");
    return 0;
}

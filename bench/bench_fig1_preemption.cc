/**
 * @file
 * Fig. 1: VM preemption rate (percent of CPU time taken by the
 * hypervisor / host OS) at the 99th and 99.9th percentile across
 * 20,000 VMs over 24 hours, for shared vs exclusive VMs.
 *
 * Paper result: shared p99 ~2-4%, shared p99.9 ~2-10%; exclusive
 * ~0.2% / ~0.5% and far more stable.
 */

#include <cstdio>

#include "base/random.hh"
#include "base/stats.hh"
#include "bench/common.hh"
#include "fleet/fleet_sim.hh"

using namespace bmhive;
using namespace bmhive::bench;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 1", "VM preemption p99/p99.9, 20K VMs, 24h, "
                     "shared vs exclusive");

    Rng rng(20200316);
    auto shared = fleet::measurePreemption(
        rng, fleet::PreemptionFleetParams::sharedFleet());
    auto excl = fleet::measurePreemption(
        rng, fleet::PreemptionFleetParams::exclusiveFleet());

    std::printf("  %5s %12s %13s %12s %13s\n", "hour",
                "shared p99", "shared p99.9", "excl p99",
                "excl p99.9");
    for (unsigned h = 0; h < 24; ++h) {
        std::printf("  %5u %11.2f%% %12.2f%% %11.2f%% %12.2f%%\n",
                    h, shared.p99Pct[h], shared.p999Pct[h],
                    excl.p99Pct[h], excl.p999Pct[h]);
    }

    auto minmax = [](const std::vector<double> &v) {
        SummaryStats s;
        for (double x : v)
            s.record(x);
        return std::make_pair(s.min(), s.max());
    };
    auto [s99lo, s99hi] = minmax(shared.p99Pct);
    auto [s999lo, s999hi] = minmax(shared.p999Pct);
    auto [e99lo, e99hi] = minmax(excl.p99Pct);
    auto [e999lo, e999hi] = minmax(excl.p999Pct);
    std::printf("\n  shared p99 range    %.2f%% - %.2f%%  "
                "(paper ~2-4%%)\n",
                s99lo, s99hi);
    std::printf("  shared p99.9 range  %.2f%% - %.2f%%  "
                "(paper ~2-10%%)\n",
                s999lo, s999hi);
    std::printf("  excl p99 range      %.2f%% - %.2f%%  "
                "(paper ~0.2%%)\n",
                e99lo, e99hi);
    std::printf("  excl p99.9 range    %.2f%% - %.2f%%  "
                "(paper ~0.5%%)\n",
                e999lo, e999hi);
    note("bm-guests have zero preemption by construction: no "
         "host tasks share their CPUs");
    return 0;
}

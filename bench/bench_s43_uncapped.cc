/**
 * @file
 * Section 4.3 (unrestricted): BM-Hive with the rate limits
 * lifted.
 *
 *  - Network: with the 4M PPS cap removed and a DPDK sender, the
 *    paper measures 16M PPS.
 *  - Storage: against a local SSD (no network hop) BM-Hive is 50%
 *    faster in IOPS and 100% faster in bandwidth than the
 *    vm-guest, with ~60 us average latency.
 */

#include "bench/common.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

/** Local SSD: no fabric hop, NVMe-class service times. */
cloud::BlockServiceParams
localSsd()
{
    cloud::BlockServiceParams p;
    p.networkLatency = usToTicks(2); // PCIe + driver only
    p.readServiceMedian = usToTicks(45);
    p.writeServiceMedian = usToTicks(18);
    p.gcChance = 5e-4;
    p.gcPause = msToTicks(0.8);
    p.streamBandwidth = Bandwidth::gbps(6);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Sec. 4.3", "uncapped BM-Hive: PPS without the 4M "
                       "limit (DPDK senders)");
    {
        Testbed bed(431);
        auto a = bed.bmGuest(0xaa, 0, /*rate_limited=*/false);
        auto b = bed.bmGuest(0xbb, 0, /*rate_limited=*/false);
        bed.sim.run(bed.sim.now() + msToTicks(1));
        // PMD burst mode amortizes per-packet backend work.
        a.svc->setPerPacketCost(nsToTicks(55));
        b.svc->setPerPacketCost(nsToTicks(55));
        PacketFloodParams p;
        p.payloadBytes = 1;
        p.flows = 28;       // DPDK: all cores blast
        p.batch = 64;       // PMD burst size
        p.stack = NetStack::Dpdk;
        p.window = Session::window(msToTicks(30));
        PacketFlood flood(bed.sim, "flood", a, b, p);
        auto r = flood.run();
        std::printf("  uncapped PPS: %.1fM (paper: ~16M; capped "
                    "limit was 4M)\n",
                    r.pps / 1e6);
    }

    banner("Sec. 4.3", "uncapped PPS vs negotiated queue pairs "
                       "(multi-queue, shared 4-core pool)");
    {
        // Same uncapped flood, swept over the VIRTIO_NET_F_MQ
        // pair count: per-queue scheduling units spread one
        // guest's backend over the poll pool. The full 1/2/4/8 x
        // {shared, passthrough} sweep (and the scaling gate) lives
        // in bench_mq.
        std::printf("  %6s %12s %8s\n", "pairs", "PPS (M)",
                    "vs 1q");
        double base = 0;
        for (unsigned pairs : {1u, 2u, 4u, 8u}) {
            core::BmServerParams sp;
            sp.maxBoards = 4;
            sp.schedMode = core::SchedMode::Shared;
            sp.pollCores = 4;
            sp.netQueuePairs = pairs;
            // Uncapped: the doorbell anti-storm budget is lifted
            // with the rate limits (a full-tilt DPDK blaster is
            // not the attack it is sized against).
            sp.bondParams.doorbellRate = 64e6;
            sp.bondParams.doorbellBurst = 1 << 20;
            Testbed bed(436 + pairs, Testbed::withSessionObs(sp));
            auto a = bed.bmGuest(0xaa, 0, /*rate_limited=*/false);
            auto b = bed.bmGuest(0xbb, 0, /*rate_limited=*/false);
            bed.sim.run(bed.sim.now() + msToTicks(1));
            a.svc->setPerPacketCost(nsToTicks(55));
            b.svc->setPerPacketCost(nsToTicks(55));
            PacketFloodParams p;
            p.payloadBytes = 1;
            p.flows = 32;
            p.batch = 64;
            p.stack = NetStack::Dpdk;
            p.window = Session::window(msToTicks(20));
            PacketFlood flood(bed.sim, "flood", a, b, p);
            auto r = flood.run();
            if (pairs == 1)
                base = r.pps;
            std::printf("  %6u %12.2f %8.2f\n", pairs,
                        r.pps / 1e6, r.pps / base);
        }
    }

    banner("Sec. 4.3", "local SSD (limits lifted): bm vs vm");
    {
        FioParams fp;
        fp.jobs = 8;
        fp.window = Session::window(msToTicks(800));

        Testbed bm_bed(432, 4, localSsd());
        auto bm_g = bm_bed.bmGuest(0xaa, 256, false);
        bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
        FioRunner bm_fio(bm_bed.sim, "fio_bm", bm_g, fp);
        auto bm = bm_fio.run();

        Testbed vm_bed(433, 4, localSsd());
        auto vm_g = vm_bed.vmGuest(0xaa, 256, false, true,
                                   /*io_contention=*/false);
        vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
        FioRunner vm_fio(vm_bed.sim, "fio_vm", vm_g, fp);
        auto vm = vm_fio.run();

        std::printf("  %-10s %10s %12s %12s\n", "guest", "IOPS",
                    "avg us", "MB/s");
        std::printf("  %-10s %10.0f %12.1f %12.1f\n", "bm-guest",
                    bm.iops, bm.avgUs, bm.iops * 4096 / 1e6);
        std::printf("  %-10s %10.0f %12.1f %12.1f\n", "vm-guest",
                    vm.iops, vm.avgUs, vm.iops * 4096 / 1e6);
        std::printf("  bm/vm IOPS = %.2f (paper: ~1.5); bm avg "
                    "= %.0f us (paper: ~60 us)\n",
                    bm.iops / vm.iops, bm.avgUs);

        // Large-block sequential bandwidth (128 KiB).
        FioParams bw;
        bw.jobs = 8;
        bw.blockBytes = 128 * KiB;
        bw.window = Session::window(msToTicks(800));
        Testbed bm2(434, 4, localSsd());
        auto bm2_g = bm2.bmGuest(0xaa, 256, false);
        bm2.sim.run(bm2.sim.now() + msToTicks(1));
        FioRunner bm2_fio(bm2.sim, "fio_bm_bw", bm2_g, bw);
        auto bm_bw = bm2_fio.run();
        Testbed vm2(435, 4, localSsd());
        auto vm2_g = vm2.vmGuest(0xaa, 256, false, true, false);
        vm2.sim.run(vm2.sim.now() + msToTicks(1));
        FioRunner vm2_fio(vm2.sim, "fio_vm_bw", vm2_g, bw);
        auto vm_bw = vm2_fio.run();
        double bm_mbs = bm_bw.iops * double(128 * KiB) / 1e6;
        double vm_mbs = vm_bw.iops * double(128 * KiB) / 1e6;
        std::printf("  128K seq bandwidth: bm %.0f MB/s, vm %.0f "
                    "MB/s, bm/vm = %.2f (paper: ~2.0)\n",
                    bm_mbs, vm_mbs, bm_mbs / vm_mbs);
    }
    return 0;
}

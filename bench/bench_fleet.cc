/**
 * @file
 * Rack-scale failover bench (FLT): an 8-server fleet carrying 64
 * bm-guests rides out a migration storm — at least 100 live
 * migrations, including the reactive failovers from two injected
 * base-server power losses — while every guest runs a fixed-rate
 * 4 KiB random-read workload. Reports migration blackout p50/p99
 * and the throughput of the control group (guests that never
 * migrate) during the storm relative to their own storm-free
 * baseline window.
 *
 * Exits non-zero when any invariant breaks:
 *  - any block request lost or duplicated (across every blackout,
 *    rollback, and power-loss failover);
 *  - fewer completed migrations than the target, or no failovers;
 *  - a control-group guest migrated, or the control group's storm
 *    throughput fell below 95% of its baseline.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/instance_catalog.hh"
#include "fleet/fleet_controller.hh"

using namespace bmhive;
using namespace bmhive::bench;

namespace {

/** Per-guest fixed-rate reader with per-request completion counts
 *  (0 = lost, >1 = duplicated). The driver pointers live inside
 *  the BmGuest, which travels by unique_ptr across migrations, so
 *  they stay valid through every export/adopt. */
struct GuestLoad
{
    fleet::GuestId id = fleet::invalidGuest;
    guest::BlkDriver *blk = nullptr;
    hw::CpuExecutor *cpu = nullptr;
    std::vector<unsigned> completions;
    std::uint64_t issued = 0;
    std::uint64_t finished = 0;
    bool stopped = false;

    void
    pump(Simulation &sim, Tick period)
    {
        if (!stopped) {
            std::uint64_t rid = issued++;
            completions.push_back(0);
            // A full ring mid-blackout is backpressure, not loss:
            // withdraw the slot and retry next period.
            if (!blk->read((rid % 512) * 8, 4 * KiB, *cpu,
                           [this, rid](std::uint8_t, Addr) {
                               ++completions[rid];
                               ++finished;
                           })) {
                completions.pop_back();
                --issued;
            }
        }
        if (!stopped) {
            auto *ev = new OneShotEvent(
                [this, &sim, period] { pump(sim, period); },
                "load_pump");
            sim.eventq().schedule(ev, sim.now() + period);
        }
    }

    std::uint64_t
    badRequests() const
    {
        std::uint64_t bad = 0;
        for (unsigned c : completions)
            if (c != 1)
                ++bad;
        return bad;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv);
    banner("fleet",
           "rack-scale failover: migration storm + power-loss "
           "failovers over 8 servers / 64 bm-guests");

    int rc = 0;
    auto check = [&rc](bool ok, const char *what) {
        if (!ok) {
            std::printf("  FAIL: %s\n", what);
            rc = 1;
        }
    };

    const unsigned n_servers = 8;
    const unsigned n_guests = 64;
    // Full run: >=100 completed migrations (planned + failover).
    const unsigned target_migrations = Session::quick ? 16 : 100;

    Simulation sim(20200316 + Session::faultSeed);
    // --sim-threads=N: one event partition per base server, run by
    // N workers under conservative lookahead. Same seed + any N
    // >= 1 produces byte-identical metrics; N=0 keeps the classic
    // single-queue core (note its topology differs: one shared
    // switch instead of per-server switches + fabric).
    if (Session::simThreads > 0) {
        psim::Params pp;
        pp.threads = Session::simThreads;
        sim.enablePartitions(n_servers, pp);
    }
    cloud::VSwitch vswitch(sim, "vswitch");
    // A rack's worth of guests cannot ride one 8-channel storage
    // node: 64 guests x 4k IOPS offered vs ~145k IOPS capacity
    // saturates the cluster, queueing delay dwarfs the settle
    // timeout, and every planned migration aborts. Model the
    // rack-scale cluster with proportionally more channels.
    cloud::BlockServiceParams sp;
    sp.channels = 64;
    cloud::BlockService storage(sim, "storage", sp);
    fleet::FleetParams fp;
    fp.servers = n_servers;
    // 12-slot servers leave 8x4 slots of failover headroom above
    // the 64 placed guests; the e3.8 class admits 16 per server.
    fp.server.maxBoards = 12;
    fp.server = Testbed::withSessionObs(fp.server);
    fp.perServerVswitch = Session::simThreads > 0;
    fleet::FleetController fc(sim, "fleet", vswitch, &storage, fp);
    MetricsCapture::instance().attach("fleet", sim.metrics());

    const core::InstanceType &type =
        core::InstanceCatalog::byName("ebm.xeon-e3.8");
    std::vector<GuestLoad> loads(n_guests);
    for (unsigned i = 0; i < n_guests; ++i) {
        auto &vol = storage.createVolume(
            "vol" + std::to_string(i), 8 * MiB);
        fleet::GuestId id = fc.place(type, 0x100 + i, &vol);
        fatal_if(id == fleet::invalidGuest,
                 "placement failed for guest ", i);
        loads[i].id = id;
        loads[i].blk = fc.guest(id).blk();
        loads[i].cpu = &fc.guest(id).os().cpu(0);
    }
    std::printf("  placed %u guests over %u servers "
                "(%llu placements)\n",
                n_guests, n_servers,
                (unsigned long long)fc.placements());

    // Optional extra chaos on top of the storm: --fault-seed draws
    // doorbell drops, link flaps, and backend stalls/crashes over
    // one mover guest plus fabric port stalls. Storage kinds are
    // deliberately excluded — they would throttle the control
    // group and turn the 95% floor into a storage test.
    fault::FaultInjector chaos(sim, "chaos");
    if (Session::faultSeed != 0) {
        std::vector<fault::FaultInjector::RandomTarget> t = {
            {"fleet.s0.guest0.iobond",
             {fault::FaultKind::LinkFlap,
              fault::FaultKind::DropDoorbell}},
            {"fleet.s0.guest0.hv",
             {fault::FaultKind::HvStall,
              fault::FaultKind::HvCrash}},
            {"vswitch", {fault::FaultKind::PortStall}},
        };
        chaos.randomPlan(Session::faultSeed, t, msToTicks(50.0),
                         16);
        chaos.arm();
    }

    // Wall-clock over the whole driven portion: the --sim-threads
    // scaling story in EXPERIMENTS.md compares this row across
    // thread counts at a fixed seed.
    const auto wall0 = std::chrono::steady_clock::now();
    const Tick sim0 = sim.now();

    sim.run(sim.now() + msToTicks(2.0));
    const Tick pump_period = usToTicks(250);
    for (auto &l : loads)
        l.pump(sim, pump_period);

    // Control group: every guest on the two highest servers. They
    // are never picked for planned migration and their servers
    // never lose power; immigrants land next to them mid-storm.
    const unsigned ctrl0 = n_servers - 2, ctrl1 = n_servers - 1;
    std::vector<unsigned> control, movers;
    for (unsigned i = 0; i < n_guests; ++i) {
        unsigned s = fc.serverOf(loads[i].id);
        (s == ctrl0 || s == ctrl1 ? control : movers).push_back(i);
    }

    // Storm-free baseline window for the control group.
    const Tick baseline_window = Session::window(msToTicks(16.0));
    std::vector<std::uint64_t> ctrl_snap(control.size());
    for (unsigned k = 0; k < control.size(); ++k)
        ctrl_snap[k] = loads[control[k]].finished;
    sim.run(sim.now() + baseline_window);
    std::uint64_t ctrl_base = 0;
    for (unsigned k = 0; k < control.size(); ++k)
        ctrl_base += loads[control[k]].finished - ctrl_snap[k];
    double base_rate =
        double(ctrl_base) / ticksToSec(baseline_window);

    // The storm: rotate planned migrations over the mover guests
    // (never onto the control servers), and cut power to the two
    // lowest servers at 1/3 and 2/3 of the migration target.
    unsigned next_mover = 0;
    unsigned power_cuts = 0;
    bool storm_live = true;
    std::function<void()> storm_tick = [&] {
        std::uint64_t done =
            fc.migrationsDone() + fc.migrationAborts();
        if (power_cuts == 0 &&
            done >= target_migrations / 3 && !fc.serverDead(0)) {
            ++power_cuts;
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::ServerPowerLoss;
            sim.faults().deliver("fleet.s0", spec);
        } else if (power_cuts == 1 &&
                   done >= 2 * target_migrations / 3 &&
                   !fc.serverDead(1)) {
            ++power_cuts;
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::ServerPowerLoss;
            sim.faults().deliver("fleet.s1", spec);
        } else if (done < target_migrations) {
            for (unsigned tries = 0;
                 tries < unsigned(movers.size()); ++tries) {
                GuestLoad &l =
                    loads[movers[next_mover++ % movers.size()]];
                if (!fc.alive(l.id) || fc.migrating(l.id))
                    continue;
                unsigned cur = fc.serverOf(l.id);
                unsigned best = cur;
                unsigned best_free = 0;
                for (unsigned s = 0; s < ctrl0; ++s) {
                    if (s == cur || fc.serverDead(s))
                        continue;
                    unsigned free = fc.server(s).freeSlots();
                    if (free > best_free) {
                        best_free = free;
                        best = s;
                    }
                }
                if (best != cur && fc.migrate(l.id, best))
                    break;
            }
        }
        if (storm_live &&
            (done < target_migrations || power_cuts < 2)) {
            auto *ev = new OneShotEvent(storm_tick, "storm");
            sim.eventq().schedule(ev, sim.now() + usToTicks(300));
        }
    };
    const Tick storm_start = sim.now();
    for (unsigned k = 0; k < control.size(); ++k)
        ctrl_snap[k] = loads[control[k]].finished;
    storm_tick();

    // Run until the storm reaches its target (bounded).
    const Tick storm_limit =
        sim.now() + msToTicks(Session::quick ? 200.0 : 600.0);
    while (sim.now() < storm_limit &&
           (fc.migrationsDone() + fc.migrationAborts() <
                target_migrations ||
            power_cuts < 2))
        sim.run(sim.now() + msToTicks(1.0));
    storm_live = false;
    const Tick storm_window = sim.now() - storm_start;
    std::uint64_t ctrl_storm = 0;
    for (unsigned k = 0; k < control.size(); ++k)
        ctrl_storm += loads[control[k]].finished - ctrl_snap[k];
    double storm_rate =
        double(ctrl_storm) / ticksToSec(storm_window);

    // Wind down: stop the pumps, let in-flight work settle.
    for (auto &l : loads)
        l.stopped = true;
    for (int spin = 0; spin < 300; ++spin) {
        bool quiet = true;
        for (auto &l : loads)
            quiet = quiet && l.finished >= l.issued;
        if (quiet && !fc.migrationsInFlight())
            break;
        sim.run(sim.now() + msToTicks(1.0));
    }

    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall0)
            .count();
    const double sim_ms = ticksToSec(sim.now() - sim0) * 1e3;

    // ---- report ----
    std::uint64_t lost_dup = 0, total_reqs = 0;
    unsigned migrated_controls = 0;
    for (auto &l : loads) {
        lost_dup += l.badRequests();
        total_reqs += l.issued;
    }
    for (unsigned i : control)
        if (fc.guest(loads[i].id).hypervisor().migrations() != 0)
            ++migrated_controls;
    const LatencyRecorder &b = fc.blackout();
    double ratio =
        base_rate > 0.0 ? storm_rate / base_rate : 0.0;

    std::printf("  %-26s %12s\n", "", "value");
    std::printf("  %-26s %12llu\n", "migrations completed",
                (unsigned long long)fc.migrationsDone());
    std::printf("  %-26s %12llu\n", "  of which failovers",
                (unsigned long long)fc.failovers());
    std::printf("  %-26s %12llu\n", "migration aborts",
                (unsigned long long)fc.migrationAborts());
    std::printf("  %-26s %12llu\n", "servers power-lost",
                (unsigned long long)2);
    std::printf("  %-26s %12llu\n", "guests lost",
                (unsigned long long)fc.lostGuests());
    std::printf("  %-26s %12.1f\n", "blackout p50 (us)",
                b.p50Us());
    std::printf("  %-26s %12.1f\n", "blackout p99 (us)",
                b.p99Us());
    std::printf("  %-26s %12.1f\n", "blackout max (us)",
                b.maxUs());
    std::printf("  %-26s %12llu\n", "block requests issued",
                (unsigned long long)total_reqs);
    std::printf("  %-26s %12llu\n", "lost or duplicated",
                (unsigned long long)lost_dup);
    std::printf("  %-26s %12.0f\n", "control base (req/s)",
                base_rate);
    std::printf("  %-26s %12.0f\n", "control storm (req/s)",
                storm_rate);
    std::printf("  %-26s %11.1f%%\n", "control retained",
                100.0 * ratio);
    std::printf("  %-26s %12u\n", "sim threads",
                Session::simThreads);
    std::printf("  %-26s %12.0f\n", "wall clock (ms)", wall_ms);
    std::printf("  %-26s %12.2f\n", "sim ms per wall s",
                wall_ms > 0.0 ? sim_ms / (wall_ms / 1e3) : 0.0);

    check(lost_dup == 0,
          "block requests lost or duplicated across migrations");
    check(fc.migrationsDone() >= target_migrations,
          "migration storm did not reach its target");
    check(fc.failovers() > 0 && power_cuts == 2,
          "power-loss failovers missing");
    check(fc.lostGuests() == 0, "a guest was lost in failover");
    check(migrated_controls == 0,
          "a control-group guest migrated");
    check(ratio >= 0.95,
          "control group lost >5% throughput during the storm");

    note(rc == 0 ? "all fleet invariants held"
                 : "FLEET INVARIANT VIOLATION (see FAIL lines)");
    // Snapshot for the Session exit dump before `sim` (and with it
    // the registry) is destroyed — this bench has no Testbed whose
    // teardown would do it.
    MetricsCapture::instance().detach(sim.metrics());
    return rc;
}

/**
 * @file
 * Section 6 ablation: IO-Bond as an ASIC instead of an FPGA. The
 * paper estimates a 75% reduction of the PCI response time (0.8us
 * -> 0.2us). This bench re-runs the DPDK ping-pong and shows the
 * latency the ASIC would save on every doorbell/mailbox hop.
 */

#include "bench/common.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

PingPongResult
runOne(std::uint64_t seed, iobond::IoBondParams bond)
{
    core::BmServerParams sp;
    sp.maxBoards = 4;
    sp.bondParams = bond;
    Testbed bed(seed);
    // Rebuild with the right bond timing: Testbed's default server
    // is FPGA; build a second server on the same cloud for ASIC.
    core::BmHiveServer server(bed.sim, "asic_server", bed.vswitch,
                              &bed.storage, sp);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xa1);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xb1);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    PingPongParams p;
    p.payloadBytes = 64;
    p.samples = 2000;
    p.stack = NetStack::Dpdk;
    PingPong pp(bed.sim, "pp", workloads::GuestContext::of(a),
                workloads::GuestContext::of(b), p);
    return pp.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Sec. 6", "IO-Bond FPGA vs ASIC (PCI access 0.8us -> "
                     "0.2us), DPDK 64B one-way latency");

    auto fpga = runOne(601, iobond::IoBondParams{});
    auto asic = runOne(602, iobond::IoBondParams::asic());

    std::printf("  %-8s %12s %12s\n", "impl", "avg us", "p99 us");
    std::printf("  %-8s %12.2f %12.2f\n", "FPGA", fpga.avgUs,
                fpga.p99Us);
    std::printf("  %-8s %12.2f %12.2f\n", "ASIC", asic.avgUs,
                asic.p99Us);
    std::printf("  ASIC saves %.2f us per one-way message\n",
                fpga.avgUs - asic.avgUs);
    note("paper: each PCI hop drops from 0.8 us to 0.2 us (75%)");
    return 0;
}

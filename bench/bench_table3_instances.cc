/**
 * @file
 * Table 3: the bare-metal instances available in the cloud, with
 * CPU, vCPU count, RAM, and the maximum number of compute boards
 * a single BM-Hive server carries (power/space/I/O bound).
 * A provisioning smoke test validates that the catalog's board
 * limits are enforced by the server model.
 */

#include "bench/common.hh"
#include "core/instance_catalog.hh"

using namespace bmhive;
using namespace bmhive::bench;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Table 3", "bare-metal instances available in the "
                      "cloud");

    std::printf("  %-18s %-30s %6s %8s %8s %14s\n", "instance",
                "CPU", "GHz", "vCPU", "RAM GiB", "boards/server");
    for (const auto &row : core::InstanceCatalog::table3()) {
        std::printf("  %-18s %-30s %6.1f %8u %8u %14u\n",
                    row.name.c_str(), row.cpu.model.c_str(),
                    row.cpu.baseGhz, row.vcpus, row.nominalRamGiB,
                    row.maxBoardsPerServer);
    }

    // Validate the catalog against the provisioning model: the
    // single-board 96HT instance must refuse a second board.
    Testbed bed(33, /*max_boards=*/16);
    const auto &big =
        core::InstanceCatalog::byName("ebm.xeon-e5x2.96");
    bed.server.provision(big, 0x1);
    Logger::global().setThrowOnDeath(true);
    bool refused = false;
    try {
        bed.server.provision(big, 0x2);
    } catch (const FatalError &) {
        refused = true;
    }
    Logger::global().setThrowOnDeath(false);
    std::printf("\n  provisioning check: second 96HT board "
                "refused = %s\n",
                refused ? "yes" : "NO (bug)");
    note("single-thread: E3-1240 v6 is 1.31x the E5-2682 v4 "
         "(paper section 4.2)");
    return refused ? 0 : 1;
}

/**
 * @file
 * Hostile noisy-neighbor bench: one adversarial tenant fires a
 * seeded attack stream at its own IO-Bond functions (malformed
 * rings, doorbell storms, register abuse) while honest victims
 * measure network PPS and storage IOPS on the same server.
 *
 * Claim under test: every attack is contained as a GuestFault and
 * at worst quarantines the attacker; the victims keep >= 95% of
 * their baseline throughput. The attack stream is a pure function
 * of the seed, so the whole bench is deterministic.
 */

#include <memory>

#include "bench/common.hh"
#include "workloads/adversarial.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

struct ScenarioResult
{
    double pps = 0.0;
    double iops = 0.0;
    std::uint64_t attacks = 0;
    std::uint64_t faults = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t quarantineDrops = 0;
};

ScenarioResult
runScenario(std::uint64_t seed, bool hostile)
{
    Testbed bed(seed);
    // Guest 0 is the (potential) attacker; 1..3 are the victims.
    bed.bmGuest(0x0a, 0);
    auto v1 = bed.bmGuest(0x01, 0);
    auto v2 = bed.bmGuest(0x02, 0);
    auto v3 = bed.bmGuest(0x03, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    std::unique_ptr<AdversarialGuest> adv;
    if (hostile) {
        AdversarialGuestParams ap;
        ap.seed = Session::faultSeed ? Session::faultSeed : 42;
        adv = std::make_unique<AdversarialGuest>(
            bed.sim, "attacker", bed.server.guest(0).board(), ap);
        adv->start();
    }

    ScenarioResult r;
    {
        PacketFloodParams p;
        p.warmup = msToTicks(5);
        p.window = msToTicks(40);
        PacketFlood flood(bed.sim, "flood", v1, v2, p);
        r.pps = flood.run().pps;
    }
    {
        FioParams p;
        p.warmup = msToTicks(5);
        p.window = msToTicks(40);
        FioRunner fio(bed.sim, "fio", v3, p);
        r.iops = fio.run().iops;
    }
    if (adv) {
        adv->stop();
        r.attacks = adv->attacks();
    }
    r.faults = bed.server.guest(0).bond().guestFaultsTotal();
    r.quarantines = bed.server.quarantines();
    r.quarantineDrops = bed.server.guest(0).bond().quarantineDrops();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv);
    banner("hostile", "noisy-neighbor containment: victim "
                      "throughput vs an adversarial co-tenant");

    const std::uint64_t seed = 2020;
    auto baseline = runScenario(seed, false);
    auto hostile = runScenario(seed, true);

    double pps_ret = baseline.pps > 0
                         ? 100.0 * hostile.pps / baseline.pps
                         : 0.0;
    double iops_ret = baseline.iops > 0
                          ? 100.0 * hostile.iops / baseline.iops
                          : 0.0;

    std::printf("  %-18s %14s %14s %10s\n", "scenario", "net PPS",
                "blk IOPS", "faults");
    std::printf("  %-18s %14.0f %14.0f %10llu\n", "baseline",
                baseline.pps, baseline.iops,
                (unsigned long long)baseline.faults);
    std::printf("  %-18s %14.0f %14.0f %10llu\n", "under attack",
                hostile.pps, hostile.iops,
                (unsigned long long)hostile.faults);
    std::printf("  attacker: %llu attacks -> %llu contained "
                "faults, %llu quarantines, %llu doorbells "
                "swallowed\n",
                (unsigned long long)hostile.attacks,
                (unsigned long long)hostile.faults,
                (unsigned long long)hostile.quarantines,
                (unsigned long long)hostile.quarantineDrops);
    std::printf("  victim retention: %.1f%% PPS, %.1f%% IOPS "
                "(target >= 95%%)\n",
                pps_ret, iops_ret);
    note("attacks only cost the attacker its own device; the "
         "bridge never panics");

    bool ok = pps_ret >= 95.0 && iops_ret >= 95.0 &&
              hostile.faults > 0;
    if (!ok) {
        std::printf("  FAILED: containment target missed\n");
        return 1;
    }
    return 0;
}

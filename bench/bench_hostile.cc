/**
 * @file
 * Hostile noisy-neighbor bench: one adversarial tenant fires a
 * seeded attack stream at its own IO-Bond functions (malformed
 * rings, doorbell storms, register abuse) while honest victims
 * measure network PPS and storage IOPS on the same server.
 *
 * Claim under test: every attack is contained as a GuestFault and
 * at worst quarantines the attacker; the victims keep >= 95% of
 * their baseline throughput. The attack stream is a pure function
 * of the seed, so the whole bench is deterministic.
 */

#include <memory>

#include "bench/common.hh"
#include "workloads/adversarial.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

/** One guest's SLO view at scenario end (final live window). */
struct SloRow
{
    double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
    double burn = 0.0;
    std::uint64_t samples = 0;
    core::GuestHealth health = core::GuestHealth::Healthy;
};

struct ScenarioResult
{
    double pps = 0.0;
    double iops = 0.0;
    std::uint64_t attacks = 0;
    std::uint64_t faults = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t quarantineDrops = 0;
    std::uint64_t sloBreaches = 0;
    std::uint64_t flightDumps = 0;
    /** Per guest: net-role SLO snapshot. */
    std::vector<SloRow> net;
};

ScenarioResult
runScenario(std::uint64_t seed, bool hostile)
{
    Testbed bed(seed);
    // Guest 0 is the (potential) attacker; 1..3 are the victims.
    bed.bmGuest(0x0a, 0);
    auto v1 = bed.bmGuest(0x01, 0);
    auto v2 = bed.bmGuest(0x02, 0);
    auto v3 = bed.bmGuest(0x03, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    std::unique_ptr<AdversarialGuest> adv;
    if (hostile) {
        AdversarialGuestParams ap;
        ap.seed = Session::faultSeed ? Session::faultSeed : 42;
        adv = std::make_unique<AdversarialGuest>(
            bed.sim, "attacker", bed.server.guest(0).board(), ap);
        adv->start();
    }

    ScenarioResult r;
    {
        PacketFloodParams p;
        p.warmup = msToTicks(5);
        p.window = msToTicks(40);
        PacketFlood flood(bed.sim, "flood", v1, v2, p);
        r.pps = flood.run().pps;
    }
    {
        FioParams p;
        p.warmup = msToTicks(5);
        p.window = msToTicks(40);
        FioRunner fio(bed.sim, "fio", v3, p);
        r.iops = fio.run().iops;
    }
    if (adv) {
        adv->stop();
        r.attacks = adv->attacks();
    }
    r.faults = bed.server.guest(0).bond().guestFaultsTotal();
    r.quarantines = bed.server.quarantines();
    r.quarantineDrops = bed.server.guest(0).bond().quarantineDrops();
    r.sloBreaches = bed.server.sloBreaches();
    r.flightDumps = bed.server.flightDumpTriggers();
    // Snapshot without refresh(): the stored epochs are each
    // tenant's last live window, even for roles whose traffic ended
    // earlier in the scenario.
    for (unsigned i = 0; i < bed.server.guestCount(); ++i) {
        SloRow row;
        if (auto *slo = bed.server.guest(i).slo()) {
            row.p50 = slo->percentileUs(obs::SloRole::Net, 0.50);
            row.p90 = slo->percentileUs(obs::SloRole::Net, 0.90);
            row.p99 = slo->percentileUs(obs::SloRole::Net, 0.99);
            row.p999 = slo->percentileUs(obs::SloRole::Net, 0.999);
            row.burn = slo->burnRate(obs::SloRole::Net);
            row.samples = slo->windowSamples(obs::SloRole::Net);
        }
        row.health = bed.server.guestHealth(i);
        r.net.push_back(row);
    }
    return r;
}

const char *
healthName(core::GuestHealth h)
{
    switch (h) {
      case core::GuestHealth::Healthy: return "healthy";
      case core::GuestHealth::Suspect: return "suspect";
      case core::GuestHealth::Quarantined: return "quarantined";
    }
    return "?";
}

void
printSloTable(const char *title, const ScenarioResult &r)
{
    std::printf("  per-tenant net SLO (%s, final window):\n", title);
    std::printf("  %-6s %9s %9s %9s %9s %7s %8s %s\n", "guest",
                "p50_us", "p90_us", "p99_us", "p999_us", "burn",
                "samples", "health");
    for (std::size_t i = 0; i < r.net.size(); ++i) {
        const SloRow &s = r.net[i];
        std::printf("  %-6zu %9.1f %9.1f %9.1f %9.1f %7.2f %8llu"
                    " %s%s\n",
                    i, s.p50, s.p90, s.p99, s.p999, s.burn,
                    (unsigned long long)s.samples,
                    healthName(s.health),
                    i == 0 ? " (attacker)" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Session session(argc, argv);
    banner("hostile", "noisy-neighbor containment: victim "
                      "throughput vs an adversarial co-tenant");

    const std::uint64_t seed = 2020;
    auto baseline = runScenario(seed, false);
    auto hostile = runScenario(seed, true);

    double pps_ret = baseline.pps > 0
                         ? 100.0 * hostile.pps / baseline.pps
                         : 0.0;
    double iops_ret = baseline.iops > 0
                          ? 100.0 * hostile.iops / baseline.iops
                          : 0.0;

    std::printf("  %-18s %14s %14s %10s\n", "scenario", "net PPS",
                "blk IOPS", "faults");
    std::printf("  %-18s %14.0f %14.0f %10llu\n", "baseline",
                baseline.pps, baseline.iops,
                (unsigned long long)baseline.faults);
    std::printf("  %-18s %14.0f %14.0f %10llu\n", "under attack",
                hostile.pps, hostile.iops,
                (unsigned long long)hostile.faults);
    std::printf("  attacker: %llu attacks -> %llu contained "
                "faults, %llu quarantines, %llu doorbells "
                "swallowed\n",
                (unsigned long long)hostile.attacks,
                (unsigned long long)hostile.faults,
                (unsigned long long)hostile.quarantines,
                (unsigned long long)hostile.quarantineDrops);
    std::printf("  victim retention: %.1f%% PPS, %.1f%% IOPS "
                "(target >= 95%%)\n",
                pps_ret, iops_ret);
    printSloTable("baseline", baseline);
    printSloTable("under attack", hostile);
    std::printf("  observability: %llu SLO breaches, %llu flight "
                "dump triggers\n",
                (unsigned long long)hostile.sloBreaches,
                (unsigned long long)hostile.flightDumps);
    note("attacks only cost the attacker its own device; the "
         "bridge never panics");

    // Victim-tail acceptance: guest 1 drives the packet flood in
    // both runs; its p99 under attack must stay within 10% of its
    // solo baseline (+1 us for log-bucket quantization).
    double victim_base = baseline.net[1].p99;
    double victim_hostile = hostile.net[1].p99;
    bool tail_ok = victim_base <= 0.0 ||
                   victim_hostile <= victim_base * 1.10 + 1.0;
    std::printf("  victim net p99: baseline %.1f us, under attack "
                "%.1f us (target <= +10%%)%s\n",
                victim_base, victim_hostile,
                tail_ok ? "" : "  << MISS");

    bool ok = pps_ret >= 95.0 && iops_ret >= 95.0 &&
              hostile.faults > 0 && hostile.quarantines > 0 &&
              tail_ok;
    if (!ok) {
        std::printf("  FAILED: containment target missed\n");
        return 1;
    }
    return 0;
}

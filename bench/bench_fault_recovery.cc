/**
 * @file
 * Fault-recovery sweep: fio random-read availability on a bm-guest
 * as the injected fault rate rises. Each run draws a deterministic
 * random schedule (DMA errors, link flaps, dropped doorbells, lost
 * and delayed block I/O, port stalls, bm-hypervisor stalls and
 * crashes) over the measurement window with the server watchdog
 * armed; availability is achieved IOPS relative to the fault-free
 * baseline. Recovery time (crash to respawned backend polling) is
 * reported from the watchdog's latency recorder.
 *
 * A second sweep raises the *corruption* rate (DMA bit flips,
 * shadow-vring metadata rot, fabric corruption on both the storage
 * and network legs) while every write is read back and compared
 * byte-for-byte and every delivered frame is checksum-verified.
 * Contained failures (IOERR, dropped frames) are fine; an OK
 * completion carrying wrong bytes is silent corruption and the
 * bench exits 1. Run with --integrity=off to see what the
 * integrity layer is for.
 */

#include <cstdint>
#include <functional>

#include "bench/common.hh"
#include "cloud/packet.hh"
#include "fault/fault_injector.hh"
#include "workloads/fio.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

int
main(int argc, char **argv)
{
    Session session(argc, argv);
    banner("fault-recovery",
           "I/O availability vs fault rate (fio 8 jobs, 4 KiB "
           "random read, watchdog armed)");

    std::printf("  %-10s %10s %8s %10s %7s %9s %11s\n",
                "faults/s", "IOPS", "avail%", "p99 us", "resets",
                "respawns", "rec max us");

    const Tick window = msToTicks(100.0);
    double base_iops = 0.0;
    for (unsigned events : {0u, 4u, 12u, 24u, 48u}) {
        Testbed bed(8800 + events);
        auto g = bed.bmGuest(0xaa, 64);
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

        fault::FaultInjector chaos(bed.sim, "chaos");
        if (events > 0) {
            std::vector<fault::FaultInjector::RandomTarget> t = {
                {"server.guest0.iobond",
                 {fault::FaultKind::LinkFlap,
                  fault::FaultKind::DropDoorbell}},
                {"server.guest0.iobond.dma",
                 {fault::FaultKind::DmaCorrupt,
                  fault::FaultKind::DmaFail}},
                {"server.guest0.hv",
                 {fault::FaultKind::HvStall,
                  fault::FaultKind::HvCrash}},
                {"storage",
                 {fault::FaultKind::BlockLose,
                  fault::FaultKind::BlockDelay}},
                {"vswitch", {fault::FaultKind::PortStall}},
            };
            chaos.randomPlan(1000 + events, t, window, events);
            chaos.arm();
        }
        bed.server.startWatchdog(msToTicks(1.0));

        FioParams p;
        p.jobs = 8;
        p.blockBytes = 4 * KiB;
        p.warmup = msToTicks(5.0);
        p.window = window;
        FioRunner fio(bed.sim, "fio", g, p);
        FioResult r = fio.run();
        // Drain retries and any outstanding respawn.
        bed.sim.run(bed.sim.now() + msToTicks(30.0));

        if (events == 0)
            base_iops = r.iops;
        double avail =
            base_iops > 0.0 ? 100.0 * r.iops / base_iops : 0.0;
        auto &rec = bed.sim.metrics().latency(
            "server.watchdog.recovery_ticks");
        auto &hv = bed.server.guest(0).hypervisor();
        std::uint64_t resets = bed.server.guest(0).net().resets() +
                               (bed.server.guest(0).blk()
                                    ? bed.server.guest(0)
                                          .blk()
                                          ->resets()
                                    : 0);
        std::printf(
            "  %-10.0f %10.0f %8.1f %10.1f %7llu %9u %11.1f\n",
            double(events) / ticksToSec(window), r.iops, avail,
            r.p99Us, (unsigned long long)resets, hv.respawns(),
            rec.count() > 0 ? rec.maxUs() : 0.0);
    }
    note("availability degrades gracefully with fault rate; "
         "crash recovery is bounded by the watchdog period");

    // ------------------------------------------------------------
    // Corruption-rate sweep: end-to-end verified payloads under a
    // rising rate of injected corruption across every datapath
    // layer the integrity ladder covers.
    banner("corruption-storm",
           "verified write/read pairs and checksummed frames vs "
           "corruption rate");
    std::printf("  integrity %s\n",
                Session::integrityOn ? "on" : "off");
    std::printf("  %-10s %6s %7s %6s %9s %7s %6s %7s\n",
                "corrupt/s", "pairs", "silent", "ioerr", "detected",
                "healed", "escal", "resets");

    int rc = 0;
    const Tick cwin = Session::window(msToTicks(60.0));
    const unsigned pairs = Session::quick ? 48 : 240;
    const unsigned total_pkts = Session::quick ? 100 : 400;
    for (unsigned events : {0u, 8u, 24u, 64u}) {
        Testbed bed(9900 + events);
        auto g = bed.bmGuest(0xaa, 64);
        auto peer = bed.bmGuest(0xbb, 0);
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

        fault::FaultInjector storm(bed.sim, "storm");
        if (events > 0) {
            std::vector<fault::FaultInjector::RandomTarget> t = {
                {"server.guest0.iobond.dma",
                 {fault::FaultKind::DmaCorrupt}},
                {"server.guest0.iobond",
                 {fault::FaultKind::DmaCorruptMeta}},
                {"storage", {fault::FaultKind::FabricCorrupt}},
                {"vswitch", {fault::FaultKind::FabricCorrupt}},
            };
            storm.randomPlan(3000 + events, t, cwin, events);
            storm.arm();
        }

        // Net leg: every frame that reaches the peer must verify.
        unsigned rx_bad = 0, sent = 0;
        peer.net->setRxHandler([&](const cloud::Packet &p) {
            if (!cloud::packetCsumOk(p))
                ++rx_bad;
        });
        std::function<void()> net_pump = [&] {
            for (unsigned i = 0; i < 8 && sent < total_pkts; ++i) {
                cloud::Packet p;
                p.src = 0xaa;
                p.dst = 0xbb;
                p.len = cloud::udpFrameBytes(1200);
                p.seq = sent;
                p.created = bed.sim.now();
                if (!g.net->sendPacket(p, false, g.cpu(1)))
                    break;
                ++sent;
            }
            g.net->kickTx(g.cpu(1));
            if (sent < total_pkts) {
                auto *ev = new OneShotEvent(net_pump, "net_pump");
                bed.sim.eventq().schedule(
                    ev, bed.sim.now() + usToTicks(120));
            }
        };
        net_pump();

        // Block leg: 4 jobs, each write is read back and compared.
        // A completion may report a contained IOERR; an OK read
        // with wrong bytes is silent corruption.
        unsigned silent = 0, ioerr = 0, next_id = 0, done = 0;
        std::function<void(unsigned)> issue;
        std::function<void(unsigned)> read_back;
        read_back = [&](unsigned id) {
            bool ok = g.blk->read(
                8 + id * 8, 4096, g.cpu(0),
                [&, id](std::uint8_t st, Addr data) {
                    if (st != 0) {
                        ++ioerr;
                    } else {
                        auto got =
                            g.os->memory().readBlob(data, 4096);
                        auto want = std::uint8_t(17 + id * 13);
                        for (std::uint8_t byte : got)
                            if (byte != want) {
                                ++silent;
                                break;
                            }
                    }
                    ++done;
                    if (next_id < pairs)
                        issue(next_id++);
                });
            if (!ok) {
                auto *ev = new OneShotEvent(
                    [&, id] { read_back(id); }, "rd_retry");
                bed.sim.eventq().schedule(
                    ev, bed.sim.now() + usToTicks(200));
            }
        };
        issue = [&](unsigned id) {
            std::vector<std::uint8_t> data(
                4096, std::uint8_t(17 + id * 13));
            bool ok = g.blk->write(
                8 + id * 8, 4096, &data, g.cpu(0),
                [&, id](std::uint8_t st, Addr) {
                    if (st != 0) {
                        ++ioerr;
                        ++done;
                        if (next_id < pairs)
                            issue(next_id++);
                        return;
                    }
                    read_back(id);
                });
            if (!ok) {
                auto *ev = new OneShotEvent(
                    [&, id] { issue(id); }, "wr_retry");
                bed.sim.eventq().schedule(
                    ev, bed.sim.now() + usToTicks(200));
            }
        };
        for (unsigned j = 0; j < 4 && next_id < pairs; ++j)
            issue(next_id++);

        bed.sim.run(bed.sim.now() + cwin);
        for (int spin = 0;
             spin < 400 && (done < pairs || sent < total_pkts);
             ++spin)
            bed.sim.run(bed.sim.now() + msToTicks(1.0));

        auto &bond = bed.server.guest(0).bond();
        auto &m = bed.sim.metrics();
        std::uint64_t detected =
            bond.dma().ecrcDetected() + bond.metaFaultsInjected() +
            m.counter("vswitch.integrity.frame_drops").value() +
            g.svc->difDetects() + g.net->rxCsumDrops() +
            peer.net->rxCsumDrops();
        std::uint64_t healed = bond.dma().ecrcHealed() +
                               bond.scrubRepairs() +
                               g.svc->difRetries();
        if (silent + rx_bad > 0) {
            rc = 1;
            std::printf("  silent breakdown: %u blk reads, %u rx "
                        "frames\n", silent, rx_bad);
        }
        std::printf(
            "  %-10.0f %6u %7u %6u %9llu %7llu %6llu %7llu\n",
            double(events) / ticksToSec(cwin), done,
            silent + rx_bad, ioerr, (unsigned long long)detected,
            (unsigned long long)healed,
            (unsigned long long)bed.server.integrityEscalations(),
            (unsigned long long)bond.integrityQueueResets());
    }
    if (rc)
        std::printf("  FAIL: corrupted payloads were delivered "
                    "silently\n");
    note("contained errors are allowed; silent delivery exits 1 "
         "(expected under --integrity=off)");
    return rc;
}

/**
 * @file
 * Fault-recovery sweep: fio random-read availability on a bm-guest
 * as the injected fault rate rises. Each run draws a deterministic
 * random schedule (DMA errors, link flaps, dropped doorbells, lost
 * and delayed block I/O, port stalls, bm-hypervisor stalls and
 * crashes) over the measurement window with the server watchdog
 * armed; availability is achieved IOPS relative to the fault-free
 * baseline. Recovery time (crash to respawned backend polling) is
 * reported from the watchdog's latency recorder.
 */

#include "bench/common.hh"
#include "fault/fault_injector.hh"
#include "workloads/fio.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

int
main(int argc, char **argv)
{
    Session session(argc, argv);
    banner("fault-recovery",
           "I/O availability vs fault rate (fio 8 jobs, 4 KiB "
           "random read, watchdog armed)");

    std::printf("  %-10s %10s %8s %10s %7s %9s %11s\n",
                "faults/s", "IOPS", "avail%", "p99 us", "resets",
                "respawns", "rec max us");

    const Tick window = msToTicks(100.0);
    double base_iops = 0.0;
    for (unsigned events : {0u, 4u, 12u, 24u, 48u}) {
        Testbed bed(8800 + events);
        auto g = bed.bmGuest(0xaa, 64);
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

        fault::FaultInjector chaos(bed.sim, "chaos");
        if (events > 0) {
            std::vector<fault::FaultInjector::RandomTarget> t = {
                {"server.guest0.iobond",
                 {fault::FaultKind::LinkFlap,
                  fault::FaultKind::DropDoorbell}},
                {"server.guest0.iobond.dma",
                 {fault::FaultKind::DmaCorrupt,
                  fault::FaultKind::DmaFail}},
                {"server.guest0.hv",
                 {fault::FaultKind::HvStall,
                  fault::FaultKind::HvCrash}},
                {"storage",
                 {fault::FaultKind::BlockLose,
                  fault::FaultKind::BlockDelay}},
                {"vswitch", {fault::FaultKind::PortStall}},
            };
            chaos.randomPlan(1000 + events, t, window, events);
            chaos.arm();
        }
        bed.server.startWatchdog(msToTicks(1.0));

        FioParams p;
        p.jobs = 8;
        p.blockBytes = 4 * KiB;
        p.warmup = msToTicks(5.0);
        p.window = window;
        FioRunner fio(bed.sim, "fio", g, p);
        FioResult r = fio.run();
        // Drain retries and any outstanding respawn.
        bed.sim.run(bed.sim.now() + msToTicks(30.0));

        if (events == 0)
            base_iops = r.iops;
        double avail =
            base_iops > 0.0 ? 100.0 * r.iops / base_iops : 0.0;
        auto &rec = bed.sim.metrics().latency(
            "server.watchdog.recovery_ticks");
        auto &hv = bed.server.guest(0).hypervisor();
        std::uint64_t resets = bed.server.guest(0).net().resets() +
                               (bed.server.guest(0).blk()
                                    ? bed.server.guest(0)
                                          .blk()
                                          ->resets()
                                    : 0);
        std::printf(
            "  %-10.0f %10.0f %8.1f %10.1f %7llu %9u %11.1f\n",
            double(events) / ticksToSec(window), r.iops, avail,
            r.p99Us, (unsigned long long)resets, hv.respawns(),
            rec.count() > 0 ? rec.maxUs() : 0.0);
    }
    note("availability degrades gracefully with fault rate; "
         "crash recovery is bounded by the watchdog period");
    return 0;
}

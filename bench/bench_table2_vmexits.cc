/**
 * @file
 * Table 2: the fraction of VMs whose per-vCPU VM-exit rate
 * exceeds 10K/50K/100K exits per second, counted over a 5-minute
 * window across a 300,000-VM fleet.
 *
 * Paper result: 3.82% above 10K, 0.37% above 50K, 0.13% above
 * 100K.
 */

#include <cstdio>

#include "base/random.hh"
#include "bench/common.hh"
#include "fleet/fleet_sim.hh"

using namespace bmhive;
using namespace bmhive::bench;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Table 2", "VM exits per second per vCPU across a "
                      "300K-VM fleet (5-minute count)");

    Rng rng(20200316);
    fleet::ExitRateFleetParams params;
    auto s = fleet::measureExitRates(rng, params);

    std::printf("  %-16s %12s %12s\n", "# of VM exits",
                "measured %", "paper %");
    std::printf("  %-16s %12.2f %12.2f\n", "> 10K", s.pctAbove10k,
                3.82);
    std::printf("  %-16s %12.2f %12.2f\n", "> 50K", s.pctAbove50k,
                0.37);
    std::printf("  %-16s %12.2f %12.2f\n", "> 100K",
                s.pctAbove100k, 0.13);
    std::printf("  median exit rate: %.0f exits/s/vCPU\n",
                s.medianRate);
    note("a VM above 50K exits/s spends ~50% of its CPU time in "
         "exit handling (10 us each)");
    return 0;
}

/**
 * @file
 * Ablation of the IO-Bond design constants the paper publishes
 * (section 3.4.3) — what happens to guest-visible I/O if the
 * hardware were provisioned differently:
 *
 *  1. Internal DMA bandwidth (paper: 50 Gbps): swept from 5 to
 *     100 Gbps; shows where the mirror engine starts to throttle
 *     packet rate.
 *  2. bm-hypervisor poll period (CALIBRATED: 2 us): swept from
 *     0.5 to 16 us; shows the latency the polling design trades
 *     for burning a base-board core.
 *  3. FPGA vs ASIC register timing is covered separately by
 *     bench_s6_asic_ablation.
 */

#include "bench/common.hh"
#include "workloads/net_perf.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

struct Result
{
    double pps;
    double lat_us;
};

Result
runWith(std::uint64_t seed, double dma_gbps, Tick poll_period,
        Bytes payload = 1)
{
    Testbed bed(seed);
    core::BmServerParams sp;
    sp.maxBoards = 2;
    sp.bondParams.dmaBandwidth = Bandwidth::gbps(dma_gbps);
    core::BmHiveServer server(bed.sim, "ablation", bed.vswitch,
                              &bed.storage, sp);
    auto &ga = server.provision(core::InstanceCatalog::evaluated(),
                                0xA1, nullptr, false);
    auto &gb = server.provision(core::InstanceCatalog::evaluated(),
                                0xB1, nullptr, false);
    ga.hypervisor().service().setPollPeriod(poll_period);
    gb.hypervisor().service().setPollPeriod(poll_period);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto a = GuestContext::of(ga);
    auto b = GuestContext::of(gb);

    PacketFloodParams fp;
    fp.payloadBytes = payload;
    fp.flows = 14;
    fp.batch = 16;
    fp.warmup = msToTicks(3);
    fp.window = Session::window(msToTicks(15));
    PacketFlood flood(bed.sim, "flood", a, b, fp);
    auto fr = flood.run();

    PingPongParams pp;
    pp.samples = 500;
    pp.stack = NetStack::Dpdk;
    PingPong ping(bed.sim, "pp", a, b, pp);
    auto pr = ping.run();
    return {fr.pps, pr.avgUs};
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Ablation 1", "IO-Bond internal DMA bandwidth (paper: "
                         "50 Gbps), uncapped guests");
    std::printf("  %10s %12s %12s %14s\n", "DMA Gbps", "PPS (M)",
                "Gbit/s", "DPDK lat us");
    for (double gbps : {5.0, 10.0, 25.0, 50.0, 100.0}) {
        // 1400B frames stress the mirror engine (the paper's x4
        // device links are 32 Gbps; DMA must stay ahead of them).
        auto r = runWith(9000 + unsigned(gbps), gbps,
                         paper::bmPollPeriod, 1400);
        std::printf("  %10.0f %12.2f %12.2f %14.2f\n", gbps,
                    r.pps / 1e6, r.pps * 1442 * 8 / 1e9,
                    r.lat_us);
    }
    note("below ~50 Gbps the mirror engine throttles large-frame "
         "traffic; the design point keeps it off the critical "
         "path");

    banner("Ablation 2", "bm-hypervisor poll period (model "
                         "default: 2 us)");
    std::printf("  %10s %12s %14s\n", "poll us", "PPS (M)",
                "DPDK lat us");
    for (double us : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        auto r = runWith(9100 + unsigned(us * 10), 50.0,
                         usToTicks(us));
        std::printf("  %10.1f %12.2f %14.2f\n", us, r.pps / 1e6,
                    r.lat_us);
    }
    note("latency grows ~linearly with the poll period; the "
         "dedicated-core PMD design buys the low end");

    banner("Ablation 3", "fast path (DPDK/SPDK PMD) vs slow path "
                         "(Linux tap), paper section 3.4.2");
    {
        // Fast path: the deployed configuration.
        auto fast = runWith(9300, 50.0, paper::bmPollPeriod);
        // Slow path: tap-style backend — no PMD spin loop (sleepy
        // ~30 us wakeups) and kernel-stack per-packet processing.
        Testbed bed(9301);
        core::BmServerParams sp;
        sp.maxBoards = 2;
        core::BmHiveServer server(bed.sim, "slow", bed.vswitch,
                                  &bed.storage, sp);
        auto &ga = server.provision(
            core::InstanceCatalog::evaluated(), 0xA2, nullptr,
            false);
        auto &gb = server.provision(
            core::InstanceCatalog::evaluated(), 0xB2, nullptr,
            false);
        for (auto *g : {&ga, &gb}) {
            g->hypervisor().service().setPollPeriod(usToTicks(30));
            g->hypervisor().service().setPerPacketCost(
                usToTicks(4));
        }
        bed.sim.run(bed.sim.now() + msToTicks(1));
        auto a = GuestContext::of(ga);
        auto b = GuestContext::of(gb);
        PacketFloodParams fp;
        fp.flows = 14;
        fp.batch = 16;
        fp.warmup = msToTicks(3);
        fp.window = Session::window(msToTicks(15));
        PacketFlood flood(bed.sim, "flood", a, b, fp);
        auto fr = flood.run();
        PingPongParams pp;
        pp.samples = 500;
        pp.stack = NetStack::Dpdk;
        PingPong ping(bed.sim, "pp", a, b, pp);
        auto pr = ping.run();

        std::printf("  %-10s %12s %14s\n", "path", "PPS (M)",
                    "lat us");
        std::printf("  %-10s %12.2f %14.2f\n", "fast (PMD)",
                    fast.pps / 1e6, fast.lat_us);
        std::printf("  %-10s %12.2f %14.2f\n", "slow (tap)",
                    fr.pps / 1e6, pr.avgUs);
        note("paper: slow paths exist for testing only; not "
             "deployed due to low performance");
    }
    return 0;
}

/**
 * @file
 * Fig. 15: Redis requests/second with varying client counts
 * (1,000 - 10,000), redis-benchmark, 10M keys, 1M queries.
 *
 * Paper result: bm-guest 20-40% more requests/second than the
 * vm-guest across client counts.
 */

#include "bench/common.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

namespace {

AppBenchResult
runOne(std::uint64_t seed, bool bm, unsigned clients)
{
    AppBenchParams p;
    p.clients = clients;
    p.window = Session::window(msToTicks(250));
    Testbed bed(seed);
    auto g = bm ? bed.bmGuest(0xaa, 0) : bed.vmGuest(0xaa, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    AppServerBench bench(bed.sim, "redisbench", g, bed.vswitch,
                         0xc11e, AppProfile::redis(64), p);
    return bench.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 15", "Redis requests/s vs clients "
                      "(redis-benchmark, 64B values)");

    std::printf("  %8s %12s %12s %8s\n", "clients", "bm RPS",
                "vm RPS", "bm/vm");
    for (unsigned clients : {1000u, 2000u, 4000u, 7000u, 10000u}) {
        auto bm = runOne(1500 + clients, true, clients);
        auto vm = runOne(1600 + clients, false, clients);
        std::printf("  %8u %12.0f %12.0f %8.2f\n", clients, bm.rps,
                    vm.rps, bm.rps / vm.rps);
    }
    note("paper: bm 20-40% more RPS across 1K-10K clients");
    return 0;
}

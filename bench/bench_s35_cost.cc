/**
 * @file
 * Section 3.5: cost efficiency. Sellable vCPU density per rack
 * slot (88 HT conventional vs 256 HT for an 8-board BM-Hive
 * server) and TDP watts per sellable vCPU for the
 * nearest-equivalent configurations (96HT single-board BM-Hive vs
 * the 88HT vm server).
 *
 * Paper result: 3.17 W/vCPU (BM-Hive) vs 3.06 W/vCPU (vm server);
 * bm-guests sell 10% below similarly configured vm-guests.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/cost_model.hh"

using namespace bmhive;
using namespace bmhive::bench;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Sec. 3.5", "cost efficiency: vCPU density and TDP per "
                       "vCPU");

    auto d = core::CostModel::density(paper::bmHiveBoards,
                                      paper::bmHiveHtPerBoard);
    std::printf("  sellable HT per rack slot: vm server %u, "
                "BM-Hive %u (%.2fx)\n",
                d.vmSellableHt, d.bmSellableHt, d.densityRatio);

    auto t = core::CostModel::tdpPerVcpu();
    std::printf("\n  %-22s %10s %10s %10s %8s %12s\n", "config",
                "base W", "cpu W", "fpga W", "vCPU",
                "W per vCPU");
    std::printf("  %-22s %10.0f %10.0f %10.0f %8u %12.2f\n",
                "BM-Hive (96HT board)", t.bm.baseCpuWatts,
                t.bm.boardCpuWatts, t.bm.fpgaWatts,
                t.bm.sellableThreads, t.bm.wattsPerVcpu());
    std::printf("  %-22s %10.0f %10.0f %10.0f %8u %12.2f\n",
                "vm server (88HT)", t.vm.baseCpuWatts,
                t.vm.boardCpuWatts, t.vm.fpgaWatts,
                t.vm.sellableThreads, t.vm.wattsPerVcpu());
    std::printf("\n  paper: %.2f (BM-Hive) vs %.2f (vm) W/vCPU\n",
                paper::bmHiveWattsPerVcpu,
                paper::vmServerWattsPerVcpu);
    std::printf("  bm-guest sell price: %.0f%% of an equivalent "
                "vm-guest (paper: 10%% lower)\n",
                core::CostModel::bmRelativePrice() * 100.0);
    return 0;
}

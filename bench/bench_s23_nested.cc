/**
 * @file
 * Section 2.3: nested virtualization overhead. A guest hypervisor
 * in a VM (L2 guests) amplifies every exit; the paper reports a
 * nested guest reaching ~80% of native for CPU work and ~25% for
 * I/O-intensive programs. On BM-Hive the user's hypervisor runs
 * on real hardware at 100%.
 */

#include <cstdio>

#include "bench/common.hh"
#include "vmsim/nested.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::vmsim;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Sec. 2.3", "nested virtualization: fraction of "
                       "native performance");

    double cpu_l1 = singleLevelEfficiency(cpuWorkloadExitRate);
    double cpu_l2 = nestedEfficiency(cpuWorkloadExitRate);
    double io_l1 = singleLevelEfficiency(ioWorkloadExitRate);
    double io_l2 = nestedEfficiency(ioWorkloadExitRate);

    std::printf("  %-22s %12s %12s %12s\n", "workload",
                "BM-Hive", "plain VM", "nested VM");
    std::printf("  %-22s %11.0f%% %11.1f%% %11.1f%%\n",
                "compute-bound", 100.0, 100.0 * cpu_l1,
                100.0 * cpu_l2);
    std::printf("  %-22s %11.0f%% %11.1f%% %11.1f%%\n",
                "I/O-intensive", 100.0, 100.0 * io_l1,
                100.0 * io_l2);
    std::printf("\n  paper: nested ~%.0f%% (CPU), ~%.0f%% "
                "(I/O-intensive)\n",
                100.0 * paper::nestedCpuFraction,
                100.0 * paper::nestedIoFraction);
    note("BM-Hive runs the user's hypervisor directly on the "
         "compute board: no nesting at all");
    return 0;
}

/**
 * @file
 * Fig. 13: MariaDB read-only queries per second under sysbench
 * with 128 threads against 16 tables x 1M rows.
 *
 * Paper result: bm-guest 195K QPS vs vm-guest 170K QPS (~14.7%
 * faster).
 */

#include "bench/common.hh"
#include "workloads/app_server.hh"

using namespace bmhive;
using namespace bmhive::bench;
using namespace bmhive::workloads;

int
main(int argc, char **argv)
{
    bmhive::bench::Session session(argc, argv);
    banner("Fig. 13", "MariaDB read-only QPS (sysbench, 128 "
                      "threads, 16 tables x 1M rows)");

    AppBenchParams p;
    p.clients = 128;
    p.window = msToTicks(200);

    Testbed bm_bed(1301);
    auto bm_g = bm_bed.bmGuest(0xaa, 64);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
    AppServerBench bm_bench(bm_bed.sim, "sysbench_bm", bm_g,
                            bm_bed.vswitch, 0xc11e,
                            AppProfile::mariadbReadOnly(), p);
    auto bm = bm_bench.run();

    Testbed vm_bed(1302);
    auto vm_g = vm_bed.vmGuest(0xaa, 64);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
    AppServerBench vm_bench(vm_bed.sim, "sysbench_vm", vm_g,
                            vm_bed.vswitch, 0xc11e,
                            AppProfile::mariadbReadOnly(), p);
    auto vm = vm_bench.run();

    std::printf("  %-12s %12s %12s %12s\n", "guest", "QPS",
                "avg ms", "p99 ms");
    std::printf("  %-12s %12.0f %12.2f %12.2f\n", "bm-guest",
                bm.rps, bm.avgMs, bm.p99Ms);
    std::printf("  %-12s %12.0f %12.2f %12.2f\n", "vm-guest",
                vm.rps, vm.avgMs, vm.p99Ms);
    std::printf("  bm/vm = %.3f\n", bm.rps / vm.rps);
    note("paper: 195K (bm) vs 170K (vm) QPS, bm ~14.7% faster");
    return 0;
}

#!/usr/bin/env python3
"""Validate and diff bench --metrics-out snapshots.

A snapshot is one JSON object mapping testbed labels to metric
registries:

    {"testbed0": {"schema_version": 2, "server.stats_dumps": 3, ...}}

Every registry value is one of four shapes (MetricRegistry::toJson):

    counter    number
    gauge      {"value","min","max","updates"}
    histogram  {"total","underflow","overflow",
                "p50","p90","p99","p999","buckets"}
    latency    {"count","mean_us","p50_us","p90_us","p99_us",
                "p999_us","max_us"}

Validation checks the wrapper, the schema_version of every registry,
the shape of every metric, histogram bucket ordering / count
consistency, and percentile monotonicity. Metric families with a
declared kind (the fleet controller's fleet.* names, the
end-to-end *.integrity.* family, and the simulation core's sim.*
counters) are additionally pinned: a fleet
counter that turns into a histogram is a schema break even though
both are valid shapes.

    metrics_check.py A.json [B.json ...]      validate each file
    metrics_check.py --diff A.json B.json     validate + require
                                              structural equality
                                              (the determinism check:
                                              same seed, same bytes)

Exit code 0 on success, 1 on any failure; failures are printed one
per line with a JSON-path-ish location.
"""

import json
import re
import sys

SCHEMA_VERSION = 2

GAUGE_KEYS = {"value", "min", "max", "updates"}
HISTOGRAM_KEYS = {
    "total", "underflow", "overflow", "p50", "p90", "p99", "p999",
    "buckets",
}
LATENCY_KEYS = {
    "count", "mean_us", "p50_us", "p90_us", "p99_us", "p999_us",
    "max_us",
}


# Declared-kind families: "<registry name>.<suffix>" -> kind. The
# fleet controller is instantiable under any name, so match on the
# dotted suffix. A name matching a suffix with the wrong shape is a
# schema break even when the shape itself is valid.
FLEET_KINDS = {
    "placements": "counter",
    "migration_starts": "counter",
    "migrations": "counter",
    "migration_aborts": "counter",
    "failovers": "counter",
    "fences": "counter",
    "board_failures": "counter",
    "hot_swaps": "counter",
    "lost_guests": "counter",
    "migration.blackout": "latency",
    "migration.blackout_hist_us": "histogram",
}

# End-to-end data-integrity family: every component that detects,
# heals, or escalates corruption exports under "<name>.integrity.*".
# The healed-retry latency is the one non-counter (SLO-visible).
INTEGRITY_KINDS = {
    "integrity.ecrc_checked": "counter",
    "integrity.ecrc_detected": "counter",
    "integrity.ecrc_healed": "counter",
    "integrity.ecrc_escalations": "counter",
    "integrity.retry": "latency",
    "integrity.scrub.runs": "counter",
    "integrity.scrub.checked": "counter",
    "integrity.scrub.repairs": "counter",
    "integrity.queue_resets": "counter",
    "integrity.meta_injected": "counter",
    "integrity.meta_faults": "counter",
    "integrity.dif_detects": "counter",
    "integrity.dif_retries": "counter",
    "integrity.dif_failures": "counter",
    "integrity.frames_checked": "counter",
    "integrity.frame_drops": "counter",
    "integrity.fabric_corruptions": "counter",
    "integrity.escalations": "counter",
    "integrity.server_unhealthy": "counter",
    "integrity.drains": "counter",
}


# Parallel simulation core (DESIGN.md §18): the coordinator's
# round/mailbox counters and the event-queue compaction counter.
# These are registry-level names (one simulation, no component
# prefix); a shape change is a schema break.
SIM_KINDS = {
    "sim.psim.rounds": "counter",
    "sim.psim.messages": "counter",
    "sim.eventq.compactions": "counter",
}


# Multi-queue family (DESIGN.md §17). Queue indices are part of the
# name ("...hv.mq.pass.netp0.rounds", "...sched.served.<hv>.mq.blkq3"),
# so these are pinned by pattern rather than literal suffix. All are
# counters; a shape change is a schema break.
MQ_PATTERNS = [
    (re.compile(r"\.mq\.queue_regs$"), "counter"),
    (re.compile(r"\.mq\.passthrough_binds$"), "counter"),
    (re.compile(r"\.mq\.passthrough_demotions$"), "counter"),
    (re.compile(r"\.mq\.pass\.(netp|blkq)\d+\."
                r"(rounds|busy_rounds|items|wakes)$"), "counter"),
    # Per-queue scheduling units' served counters (and the console
    # unit): "<sched>.served.<hv>.mq.{netp<i>,blkq<i>,con}".
    (re.compile(r"\.served\..*\.mq\.(netp\d+|blkq\d+|con)$"),
     "counter"),
]


def metric_kind(v):
    """Classify a metric value; None when the shape is unknown."""
    if is_num(v):
        return "counter"
    if not isinstance(v, dict):
        return None
    keys = set(v.keys())
    if keys == GAUGE_KEYS:
        return "gauge"
    if keys == HISTOGRAM_KEYS:
        return "histogram"
    if keys == LATENCY_KEYS:
        return "latency"
    return None


def declared_kind(name):
    for kinds in (FLEET_KINDS, INTEGRITY_KINDS, SIM_KINDS):
        for suffix, kind in kinds.items():
            if name == suffix or name.endswith("." + suffix):
                return kind
    for pattern, kind in MQ_PATTERNS:
        if pattern.search(name):
            return kind
    return None


def is_num(v):
    # JSON null stands for a non-finite double (appendJsonNumber).
    return v is None or isinstance(v, (int, float))


def check_percentiles(errs, path, obj, keys):
    """Percentiles must be numeric and non-decreasing."""
    prev_key, prev = None, None
    for k in keys:
        v = obj.get(k)
        if not is_num(v):
            errs.append(f"{path}.{k}: not a number: {v!r}")
            return
        if v is None:
            continue
        if prev is not None and v < prev:
            errs.append(
                f"{path}: {k}={v} below {prev_key}={prev} "
                f"(percentiles must be monotonic)")
        prev_key, prev = k, v


def check_histogram(errs, path, h):
    missing = HISTOGRAM_KEYS - h.keys()
    extra = h.keys() - HISTOGRAM_KEYS
    if missing or extra:
        errs.append(f"{path}: bad histogram keys "
                    f"(missing {sorted(missing)}, "
                    f"extra {sorted(extra)})")
        return
    for k in ("total", "underflow", "overflow"):
        if not is_num(h[k]):
            errs.append(f"{path}.{k}: not a number: {h[k]!r}")
            return
    check_percentiles(errs, path, h, ("p50", "p90", "p99", "p999"))
    buckets = h["buckets"]
    if not isinstance(buckets, list):
        errs.append(f"{path}.buckets: not a list")
        return
    in_range = 0
    prev_high = None
    for i, b in enumerate(buckets):
        bp = f"{path}.buckets[{i}]"
        if (not isinstance(b, list) or len(b) != 3
                or not all(is_num(x) for x in b)):
            errs.append(f"{bp}: want [low, high, count]")
            return
        low, high, count = b
        if low >= high:
            errs.append(f"{bp}: low {low} >= high {high}")
        if count <= 0:
            errs.append(f"{bp}: empty buckets are not emitted "
                        f"(count {count})")
        if prev_high is not None and low < prev_high:
            errs.append(f"{bp}: overlaps previous bucket "
                        f"(low {low} < prev high {prev_high})")
        prev_high = high
        in_range += count
    if in_range + h["underflow"] + h["overflow"] != h["total"]:
        errs.append(
            f"{path}: bucket sum {in_range} + under "
            f"{h['underflow']} + over {h['overflow']} != total "
            f"{h['total']}")


def check_latency(errs, path, l):
    missing = LATENCY_KEYS - l.keys()
    extra = l.keys() - LATENCY_KEYS
    if missing or extra:
        errs.append(f"{path}: bad latency keys "
                    f"(missing {sorted(missing)}, "
                    f"extra {sorted(extra)})")
        return
    for k in ("count", "mean_us", "max_us"):
        if not is_num(l[k]):
            errs.append(f"{path}.{k}: not a number: {l[k]!r}")
            return
    check_percentiles(errs, path, l,
                      ("p50_us", "p90_us", "p99_us", "p999_us"))
    if (l["count"] and l["p999_us"] is not None
            and l["max_us"] is not None
            and l["p999_us"] > l["max_us"]):
        errs.append(f"{path}: p999_us {l['p999_us']} > max_us "
                    f"{l['max_us']}")


def check_metric(errs, path, v):
    if is_num(v):
        return  # counter
    if not isinstance(v, dict):
        errs.append(f"{path}: unrecognized metric shape "
                    f"({type(v).__name__})")
        return
    keys = set(v.keys())
    if keys == GAUGE_KEYS:
        for k in GAUGE_KEYS:
            if not is_num(v[k]):
                errs.append(f"{path}.{k}: not a number: {v[k]!r}")
    elif keys == HISTOGRAM_KEYS:
        check_histogram(errs, path, v)
    elif keys == LATENCY_KEYS:
        check_latency(errs, path, v)
    else:
        errs.append(f"{path}: keys match no metric kind: "
                    f"{sorted(keys)}")


def check_registry(errs, path, reg):
    if not isinstance(reg, dict):
        errs.append(f"{path}: registry is not an object")
        return
    ver = reg.get("schema_version")
    if ver != SCHEMA_VERSION:
        errs.append(f"{path}.schema_version: want {SCHEMA_VERSION}, "
                    f"got {ver!r}")
    for name, v in reg.items():
        if name == "schema_version":
            continue
        check_metric(errs, f"{path}.{name}", v)
        want = declared_kind(name)
        if want is not None:
            got = metric_kind(v)
            if got is not None and got != want:
                errs.append(f"{path}.{name}: declared {want}, "
                            f"shaped like {got}")


def check_file(fname):
    errs = []
    try:
        with open(fname) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{fname}: {e}"], None
    if not isinstance(doc, dict) or not doc:
        return [f"{fname}: want a non-empty label->registry "
                f"object"], None
    for label, reg in doc.items():
        check_registry(errs, f"{fname}:{label}", reg)
    return errs, doc


def diff(errs, path, a, b):
    """Structural equality with a path to the first divergences."""
    if type(a) is not type(b):
        errs.append(f"{path}: type {type(a).__name__} vs "
                    f"{type(b).__name__}")
        return
    if isinstance(a, dict):
        for k in sorted(a.keys() | b.keys()):
            if k not in a:
                errs.append(f"{path}.{k}: only in second file")
            elif k not in b:
                errs.append(f"{path}.{k}: only in first file")
            else:
                diff(errs, f"{path}.{k}", a[k], b[k])
    elif isinstance(a, list):
        if len(a) != len(b):
            errs.append(f"{path}: length {len(a)} vs {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff(errs, f"{path}[{i}]", x, y)
    elif a != b:
        errs.append(f"{path}: {a!r} vs {b!r}")


def main(argv):
    args = argv[1:]
    want_diff = False
    if args and args[0] == "--diff":
        want_diff = True
        args = args[1:]
        if len(args) != 2:
            print("usage: metrics_check.py --diff A.json B.json",
                  file=sys.stderr)
            return 2
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    errs = []
    docs = []
    for fname in args:
        ferrs, doc = check_file(fname)
        errs += ferrs
        docs.append(doc)
        if not ferrs:
            n = sum(len(r) - 1 for r in doc.values()
                    if isinstance(r, dict))
            print(f"{fname}: OK ({len(doc)} testbed(s), "
                  f"{n} metrics)")

    if want_diff and all(d is not None for d in docs):
        derrs = []
        diff(derrs, "", docs[0], docs[1])
        if derrs:
            errs.append(f"{args[0]} vs {args[1]}: "
                        f"{len(derrs)} divergence(s)")
            errs += derrs[:20]
            if len(derrs) > 20:
                errs.append(f"... and {len(derrs) - 20} more")
        else:
            print(f"{args[0]} == {args[1]} (structurally identical)")

    for e in errs:
        print(f"FAIL: {e}", file=sys.stderr)
    return 1 if errs else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

/**
 * @file
 * Unit tests for the cloud substrate: vSwitch forwarding and
 * serialization, the inter-server fabric, the block service's
 * latency/content behaviour, and the dual rate limiters that
 * implement the paper's instance caps.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/rate_limiter.hh"
#include "cloud/vswitch.hh"

namespace bmhive {
namespace cloud {
namespace {

class VSwitchTest : public ::testing::Test
{
  protected:
    VSwitchTest() : sw(sim, "sw")
    {
        pa = sw.addPort(0xa, [&](const Packet &p) {
            gotA.push_back(p);
        });
        pb = sw.addPort(0xb, [&](const Packet &p) {
            gotB.push_back(p);
        });
    }

    Simulation sim;
    VSwitch sw;
    PortId pa = 0, pb = 0;
    std::vector<Packet> gotA, gotB;
};

TEST_F(VSwitchTest, ForwardsByMac)
{
    Packet p;
    p.src = 0xa;
    p.dst = 0xb;
    p.len = 100;
    p.seq = 9;
    sw.send(pa, p);
    sim.run();
    ASSERT_EQ(gotB.size(), 1u);
    EXPECT_EQ(gotB[0].seq, 9u);
    EXPECT_TRUE(gotA.empty());
    EXPECT_EQ(sw.forwarded(), 1u);
}

TEST_F(VSwitchTest, UnknownMacWithoutUplinkDrops)
{
    Packet p;
    p.src = 0xa;
    p.dst = 0xdead;
    p.len = 64;
    sw.send(pa, p);
    sim.run();
    EXPECT_EQ(sw.dropped(), 1u);
    EXPECT_TRUE(gotA.empty() && gotB.empty());
}

TEST_F(VSwitchTest, SwitchCoreSerializesPackets)
{
    // 100 packets injected at the same tick depart the switching
    // core one perPacketCost apart.
    std::vector<Tick> at;
    sw.removePort(pb);
    pb = sw.addPort(0xb2, [&](const Packet &) {
        at.push_back(sim.now());
    });
    for (int i = 0; i < 100; ++i) {
        Packet p;
        p.src = 0xa;
        p.dst = 0xb2;
        p.len = 64;
        sw.send(pa, p);
    }
    sim.run();
    ASSERT_EQ(at.size(), 100u);
    for (std::size_t i = 1; i < at.size(); ++i)
        EXPECT_EQ(at[i] - at[i - 1], nsToTicks(50));
}

TEST_F(VSwitchTest, RemovePortForgetsMacAndAllowsReuse)
{
    sw.removePort(pa);
    // Frames to the removed MAC now drop...
    Packet p;
    p.src = 0xb;
    p.dst = 0xa;
    p.len = 64;
    sw.send(pb, p);
    sim.run();
    EXPECT_TRUE(gotA.empty());
    // ...and the address can be re-registered.
    std::vector<Packet> got2;
    sw.addPort(0xa, [&](const Packet &q) { got2.push_back(q); });
    sw.send(pb, p);
    sim.run();
    EXPECT_EQ(got2.size(), 1u);
}

TEST_F(VSwitchTest, DuplicateMacPanics)
{
    Logger::global().setThrowOnDeath(true);
    EXPECT_THROW(sw.addPort(0xa, nullptr), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(NetFabricTest, RoutesBetweenSwitches)
{
    Simulation sim;
    VSwitch s1(sim, "s1"), s2(sim, "s2");
    NetFabric fabric(sim, "fabric", usToTicks(5));
    fabric.attach(s1);
    fabric.attach(s2);

    std::vector<Packet> got;
    Tick at = 0;
    PortId p1 = s1.addPort(0x1, nullptr);
    s2.addPort(0x2, [&](const Packet &p) {
        got.push_back(p);
        at = sim.now();
    });
    fabric.learn(0x1, s1);
    fabric.learn(0x2, s2);

    Packet p;
    p.src = 0x1;
    p.dst = 0x2; // not local to s1: goes via the uplink
    p.len = 1500;
    s1.send(p1, p);
    sim.run();
    ASSERT_EQ(got.size(), 1u);
    // Propagation (5 us) plus two wire times and switch costs.
    EXPECT_GE(at, usToTicks(5));
    EXPECT_LE(at, usToTicks(10));
}

class BlockServiceTest : public ::testing::Test
{
  protected:
    BlockServiceTest() : svc(sim, "svc"), vol(&svc.createVolume(
                                              "v", 16 * MiB))
    {
    }

    Tick
    oneIo(bool write, Bytes len)
    {
        Tick done = 0;
        BlockIo io;
        io.write = write;
        io.lba = 0;
        io.len = len;
        io.done = [&](bool) { done = sim.now(); };
        Tick t0 = sim.now();
        svc.submit(*vol, std::move(io));
        sim.run();
        return done - t0;
    }

    Simulation sim;
    BlockService svc;
    Volume *vol;
};

TEST_F(BlockServiceTest, ReadLatencyCoversNetworkAndService)
{
    Tick lat = oneIo(false, 4 * KiB);
    // Two network traversals at 140 us plus SSD service.
    EXPECT_GE(lat, usToTicks(280));
    EXPECT_LE(lat, msToTicks(3));
}

TEST_F(BlockServiceTest, LargeIoStreamsAtFlashBandwidth)
{
    Tick small = oneIo(false, 4 * KiB);
    Tick big = oneIo(false, 1 * MiB);
    // 1 MiB at 16 Gbps adds ~ 520 us of streaming.
    EXPECT_GT(big, small + usToTicks(300));
}

TEST_F(BlockServiceTest, VolumeContentRoundTrip)
{
    std::vector<std::uint8_t> data(2048);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 7);
    vol->writeData(10, data);
    EXPECT_EQ(vol->readData(10, 2048), data);
    // Sparse reads of never-written sectors return zeros.
    auto zeros = vol->readData(20000, 512);
    for (auto b : zeros)
        EXPECT_EQ(b, 0u);
}

TEST_F(BlockServiceTest, PartialSectorWriteZeroPads)
{
    std::vector<std::uint8_t> half(256, 0xEE);
    vol->writeData(5, half);
    auto sector = vol->readData(5, 512);
    EXPECT_EQ(sector[0], 0xEEu);
    EXPECT_EQ(sector[255], 0xEEu);
    EXPECT_EQ(sector[256], 0u);
}

TEST_F(BlockServiceTest, OutOfCapacityPanics)
{
    Logger::global().setThrowOnDeath(true);
    std::vector<std::uint8_t> data(512);
    EXPECT_THROW(vol->writeData(16 * MiB / 512, data), PanicError);
    EXPECT_THROW(vol->readData(16 * MiB / 512, 512), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST_F(BlockServiceTest, ChannelsLimitParallelism)
{
    // 64 concurrent reads on 8 channels: the last completion is
    // pushed out by channel queueing well beyond a single read.
    Tick last = 0;
    unsigned done = 0;
    for (int i = 0; i < 64; ++i) {
        BlockIo io;
        io.write = false;
        io.lba = std::uint64_t(i) * 8;
        io.len = 4 * KiB;
        io.done = [&](bool) {
            ++done;
            last = sim.now();
        };
        svc.submit(*vol, std::move(io));
    }
    sim.run();
    EXPECT_EQ(done, 64u);
    // 64 IOs / 8 channels = 8 serialized service times minimum.
    EXPECT_GE(last, usToTicks(280) + 7 * usToTicks(40));
}

TEST(DualRateLimiterTest, UnlimitedAdmitsImmediately)
{
    auto lim = DualRateLimiter::unlimited();
    EXPECT_EQ(lim.admit(123, 1 << 20), 123u);
    EXPECT_FALSE(lim.limited());
}

TEST(DualRateLimiterTest, OpsDimensionPaces)
{
    // 1000 ops/s, effectively unlimited bytes.
    DualRateLimiter lim(1000.0, 0.0, 10.0, 0.0);
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = lim.admit(0, 100);
    // 100 ops at 1000/s with burst 10: ~90 ms of pacing.
    EXPECT_NEAR(ticksToMs(last), 90.0, 2.0);
}

TEST(DualRateLimiterTest, BytesDimensionPaces)
{
    // 1 MB/s, unlimited ops.
    DualRateLimiter lim(0.0, 1e6, 0.0, 1e4);
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = lim.admit(0, 10000); // 1 MB total
    EXPECT_NEAR(ticksToMs(last), 990.0, 15.0);
}

TEST(DualRateLimiterTest, StricterDimensionWins)
{
    // Network-style: the paper's 4M PPS + 10 Gbit/s. For 1400B
    // frames, bytes bind (10G/8/1400 = 893K PPS < 4M).
    auto lim = InstanceLimits::cloudNetwork();
    Tick last = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        last = lim.admit(0, 1442);
    double pps = double(n) / ticksToSec(last);
    EXPECT_NEAR(pps, 10e9 / 8.0 / 1442.0, 5e4);

    // For 64B frames, PPS binds (measure past the 8K-op burst).
    auto lim2 = InstanceLimits::cloudNetwork();
    last = 0;
    const int m = 400000;
    for (int i = 0; i < m; ++i)
        last = lim2.admit(0, 64);
    pps = double(m) / ticksToSec(last);
    EXPECT_NEAR(pps, 4e6, 1.5e5);
}

TEST(DualRateLimiterTest, BurstDepthExhausts)
{
    // 1000 ops/s with burst 10: the bucket front-loads exactly the
    // burst depth at t=0, then the configured rate binds.
    DualRateLimiter lim(1000.0, 0.0, 10.0, 0.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(lim.admit(0, 1), 0u) << "burst op " << i;
    // The 11th op waits one full token period (1 ms at 1000/s).
    EXPECT_NEAR(ticksToMs(lim.admit(0, 1)), 1.0, 0.05);
}

TEST(DualRateLimiterTest, RefillPacesAtConfiguredRate)
{
    // Drain the burst, go idle, come back: exactly rate * idle
    // tokens are available again, and a long idle never
    // accumulates more than the burst depth.
    DualRateLimiter lim(1000.0, 0.0, 10.0, 0.0);
    for (int i = 0; i < 10; ++i)
        lim.admit(0, 1);
    Tick now = msToTicks(5); // 5 ms idle refills 5 tokens
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(lim.admit(now, 1), now) << "refilled op " << i;
    EXPECT_NEAR(ticksToMs(lim.admit(now, 1)), 6.0, 0.05);

    DualRateLimiter lim2(1000.0, 0.0, 10.0, 0.0);
    for (int i = 0; i < 10; ++i)
        lim2.admit(0, 1);
    now = secToTicks(1); // a whole second: clamped at burst depth
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(lim2.admit(now, 1), now) << "clamped op " << i;
    EXPECT_GT(lim2.admit(now, 1), now);
}

TEST(DualRateLimiterTest, LongRunRateConvergesToCap)
{
    // Property: sustained admission rate equals the configured
    // IOPS cap regardless of arrival pattern.
    Rng rng(3);
    auto lim = InstanceLimits::cloudStorage(); // 25K IOPS
    Tick now = 0;
    Tick last = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        now += Tick(rng.uniform(0, 2 * 40e6)); // bursty arrivals
        last = std::max(last, lim.admit(now, 4096));
    }
    double iops = double(n) / ticksToSec(last);
    EXPECT_LE(iops, 25e3 * 1.02);
}

} // namespace
} // namespace cloud
} // namespace bmhive

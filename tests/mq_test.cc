/**
 * @file
 * Multi-queue virtio tests (ctest label "mq"):
 *
 *  - queue-count negotiation end to end: driver, IO-Bond function,
 *    backend service and per-queue scheduling units all agree;
 *  - a guest asking for more pairs than offered is clamped and
 *    counted as a contained BadQueuePairs fault;
 *  - RSS steering is deterministic (same tuple -> same queue, same
 *    seed -> same spread) and actually spreads flows;
 *  - per-queue MSI vector routing: blk-mq completions from four
 *    vCPUs ride four submission queues and four vectors;
 *  - passthrough bind/unbind round-trip, including demotion to
 *    shared scheduling when the guest is deprioritized;
 *  - hostile out-of-range queue selectors are contained faults;
 *  - same-seed 4-queue runs produce byte-identical metrics;
 *  - doorbell-budget regression: a 4-queue guest gets the same
 *    per-function doorbell allowance as a 1-queue guest.
 */

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "core/instance_catalog.hh"
#include "fault/guest_fault.hh"
#include "mq/rss.hh"
#include "pci/config_space.hh"
#include "virtio/virtio_net.hh"
#include "virtio/virtio_pci.hh"
#include "workloads/net_perf.hh"

namespace bmhive {
namespace {

using fault::GuestFaultKind;

/** Shared-scheduler server with multi-queue devices. */
core::BmServerParams
mqParams(unsigned net_pairs, unsigned blk_queues,
         unsigned poll_cores = 2, bool passthrough = false)
{
    core::BmServerParams p;
    p.maxBoards = 4;
    p.schedMode = core::SchedMode::Shared;
    p.pollCores = poll_cores;
    p.netQueuePairs = net_pairs;
    p.blkQueues = blk_queues;
    p.mqPassthrough = passthrough;
    return p;
}

/** Programmed BAR0 of the bm-guest net function (slot 3). */
Addr
netBar(bench::Testbed &bed, unsigned guest = 0)
{
    auto &bus = bed.server.guest(guest).board().pciBus();
    return bus.configRead(3, pci::REG_BAR0, 4) &
           ~std::uint32_t(0xf);
}

/** Blast @p count packets a->b over @p flows flows; returns the
 *  number delivered to b. */
unsigned
exchange(bench::Testbed &bed, workloads::GuestContext &a,
         workloads::GuestContext &b, unsigned count,
         unsigned flows = 4)
{
    unsigned received = 0;
    b.net->setRxHandler(
        [&](const cloud::Packet &) { ++received; });
    for (unsigned i = 0; i < count; ++i) {
        cloud::Packet p;
        p.src = a.net->mac();
        p.dst = b.net->mac();
        p.len = cloud::udpFrameBytes(256);
        p.seq = i;
        p.flow = i % flows;
        p.created = bed.sim.now();
        EXPECT_TRUE(a.net->sendPacket(p, false, a.cpu(1)));
    }
    a.net->kickTx(a.cpu(1));
    bed.sim.run(bed.sim.now() + msToTicks(10));
    b.net->setRxHandler(nullptr);
    return received;
}

TEST(MqNegotiation, EveryLayerAgreesOnTheQueueCount)
{
    bench::Testbed bed(9100, mqParams(4, 4));
    auto a = bed.bmGuest(0xA0, 16);
    auto b = bed.bmGuest(0xB0, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    // Driver, IO-Bond function, backend, vSwitch RSS and the
    // scheduler's per-queue units all see the negotiated count.
    EXPECT_EQ(a.net->activeQueuePairs(), 4u);
    ASSERT_NE(a.blk, nullptr);
    EXPECT_EQ(a.blk->activeQueues(), 4u);

    auto &g = bed.server.guest(0);
    EXPECT_EQ(g.bond().function(0).activeQueuePairs(), 4u);
    EXPECT_EQ(g.hypervisor().service().netPairCount(), 4u);
    EXPECT_EQ(g.hypervisor().service().blkQueueCount(), 4u);
    EXPECT_TRUE(g.hypervisor().perQueueScheduled());
    EXPECT_EQ(bed.vswitch.portRssQueues(g.hypervisor().port()),
              4u);

    // And the negotiated device still moves real traffic.
    EXPECT_EQ(exchange(bed, a, b, 40, 8), 40u);
}

TEST(MqNegotiation, OverAskIsClampedAndCountedAsGuestFault)
{
    bench::Testbed bed(9110, mqParams(4, 1));
    bed.bmGuest(0xA1, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto &g = bed.server.guest(0);
    auto &bus = g.board().pciBus();
    Addr cfg = netBar(bed) + virtio::deviceCfgOffset;
    std::uint64_t before =
        g.bond().guestFaults(GuestFaultKind::BadQueuePairs);

    // Set-queue-pairs above the 4-pair offer: contained fault,
    // clamped to the offer (the driver trusts the read-back).
    bus.memWrite(cfg + virtio::VirtioNetConfig::currPairsOffset, 9,
                 2);
    EXPECT_EQ(g.bond().guestFaults(GuestFaultKind::BadQueuePairs),
              before + 1);
    EXPECT_EQ(g.bond().function(0).activeQueuePairs(), 4u);

    // Zero pairs is just as illegal; clamps to the single-queue
    // minimum.
    bus.memWrite(cfg + virtio::VirtioNetConfig::currPairsOffset, 0,
                 2);
    EXPECT_EQ(g.bond().guestFaults(GuestFaultKind::BadQueuePairs),
              before + 2);
    EXPECT_EQ(g.bond().function(0).activeQueuePairs(), 1u);

    // A legal re-commit needs no fault.
    bus.memWrite(cfg + virtio::VirtioNetConfig::currPairsOffset, 3,
                 2);
    EXPECT_EQ(g.bond().guestFaults(GuestFaultKind::BadQueuePairs),
              before + 2);
    EXPECT_EQ(g.bond().function(0).activeQueuePairs(), 3u);
}

TEST(MqRss, SteeringIsDeterministicAndSpreadsFlows)
{
    // Same tuple -> same queue, across calls and across instances.
    mq::RssTable t(4);
    mq::RssTable u(4);
    for (std::uint32_t flow = 0; flow < 64; ++flow) {
        unsigned q = t.queueFor(0xA0, 0xB0, flow);
        EXPECT_LT(q, 4u);
        EXPECT_EQ(q, t.queueFor(0xA0, 0xB0, flow));
        EXPECT_EQ(q, u.queueFor(0xA0, 0xB0, flow));
    }
    EXPECT_EQ(mq::toeplitzHash(1, 2, 3), mq::toeplitzHash(1, 2, 3));

    // Many flows actually spread over every queue.
    std::array<unsigned, 4> hits{};
    for (std::uint32_t flow = 0; flow < 256; ++flow)
        ++hits[t.queueFor(0xA0, 0xB0, flow)];
    for (unsigned q = 0; q < 4; ++q)
        EXPECT_GT(hits[q], 0u) << "queue " << q << " never hit";

    // Re-spreading (set-queue-pairs) keeps steering in range.
    t.resize(2);
    for (std::uint32_t flow = 0; flow < 64; ++flow)
        EXPECT_LT(t.queueFor(0xA0, 0xB0, flow), 2u);

    // The ethtool -X analog: one bucket repointed, others intact.
    mq::RssTable r(4);
    r.setEntry(0, 3);
    bool found = false;
    for (std::uint32_t flow = 0; flow < 1024 && !found; ++flow) {
        unsigned before = mq::RssTable(4).queueFor(0xC0, 0xD0, flow);
        unsigned after = r.queueFor(0xC0, 0xD0, flow);
        if (before != after) {
            EXPECT_EQ(after, 3u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(MqBlk, PerVcpuQueuesCompleteOnTheirOwnVectors)
{
    bench::Testbed bed(9120, mqParams(1, 4));
    auto g = bed.bmGuest(0xA2, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    ASSERT_EQ(g.blk->activeQueues(), 4u);

    // One write per vCPU: blk-mq maps vCPU i -> queue i, so all
    // four submission queues and all four completion vectors are
    // exercised; a mis-routed MSI would strand its callback.
    std::array<bool, 4> ok{};
    std::vector<std::uint8_t> data(512, 0x5a);
    for (unsigned cpu = 0; cpu < 4; ++cpu) {
        ASSERT_TRUE(g.blk->write(
            8 * (cpu + 1), 512, &data, g.cpu(cpu),
            [&ok, cpu](std::uint8_t st, Addr) {
                ok[cpu] = (st == virtio::VIRTIO_BLK_S_OK);
            }));
    }
    bed.sim.run(bed.sim.now() + msToTicks(30));
    for (unsigned cpu = 0; cpu < 4; ++cpu)
        EXPECT_TRUE(ok[cpu]) << "vCPU " << cpu;
    EXPECT_EQ(g.blk->errors(), 0u);

    // Every blk queue is its own scheduling unit with its own
    // served counter (DWRR schedules queues, not guests).
    std::string json = bed.sim.metrics().toJson();
    for (unsigned q = 0; q < 4; ++q) {
        EXPECT_NE(json.find(".mq.blkq" + std::to_string(q)),
                  std::string::npos)
            << "queue " << q;
    }
}

TEST(MqPassthrough, BindUnbindRoundTrip)
{
    bench::Testbed bed(9130, mqParams(2, 2, 2, true));
    auto a = bed.bmGuest(0xA3, 16);
    auto b = bed.bmGuest(0xB3, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto &hv = bed.server.guest(0).hypervisor();
    EXPECT_TRUE(hv.mqPassthrough());
    EXPECT_TRUE(hv.perQueueScheduled());
    // 2 net pairs + 2 blk queues, each 1:1 on a dedicated poller.
    EXPECT_EQ(hv.passthroughQueues(), 4u);

    // I/O flows through the passthrough pollers.
    EXPECT_EQ(exchange(bed, a, b, 20), 20u);
    bool ok = false;
    std::vector<std::uint8_t> data(512, 0xa5);
    ASSERT_TRUE(a.blk->write(8, 512, &data, a.cpu(0),
                             [&ok](std::uint8_t st, Addr) {
                                 ok = (st ==
                                       virtio::VIRTIO_BLK_S_OK);
                             }));
    bed.sim.run(bed.sim.now() + msToTicks(30));
    EXPECT_TRUE(ok);

    // Deprioritizing below full weight demotes the queues back to
    // shared DWRR (a suspect guest must not keep dedicated cores);
    // restoring full weight re-promotes them.
    hv.setPollWeight(0.25);
    EXPECT_EQ(hv.passthroughQueues(), 0u);
    EXPECT_TRUE(hv.perQueueScheduled());
    EXPECT_EQ(exchange(bed, a, b, 20), 20u);

    hv.setPollWeight(1.0);
    EXPECT_EQ(hv.passthroughQueues(), 4u);

    // Explicit unbind/bind round-trip via the mode switch.
    hv.setMqPassthrough(false);
    EXPECT_EQ(hv.passthroughQueues(), 0u);
    hv.setMqPassthrough(true);
    EXPECT_EQ(hv.passthroughQueues(), 4u);
    EXPECT_EQ(exchange(bed, a, b, 20), 20u);

    std::string json = bed.sim.metrics().toJson();
    EXPECT_NE(json.find(".mq.passthrough_binds"),
              std::string::npos);
    EXPECT_NE(json.find(".mq.passthrough_demotions"),
              std::string::npos);
}

TEST(MqHostile, OutOfRangeQueueSelectorIsContained)
{
    bench::Testbed bed(9140, mqParams(4, 1));
    auto a = bed.bmGuest(0xA4, 0);
    auto b = bed.bmGuest(0xB4, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto &bond = bed.server.guest(0).bond();
    auto &bus = bed.server.guest(0).board().pciBus();
    std::uint64_t before =
        bond.guestFaults(GuestFaultKind::BadQueueIndex);

    // 4 pairs expose queues 0..7; selectors beyond that are
    // contained guest faults, not crashes.
    bus.memWrite(netBar(bed) + virtio::notifyRegionOffset, 50, 4);
    bus.memWrite(netBar(bed) + virtio::notifyRegionOffset, 8, 4);
    EXPECT_EQ(bond.guestFaults(GuestFaultKind::BadQueueIndex),
              before + 2);

    // The guest is throttled at worst, never killed, and honest
    // traffic still flows through all four pairs.
    EXPECT_NE(bed.server.guestHealth(0),
              core::GuestHealth::Quarantined);
    EXPECT_EQ(exchange(bed, a, b, 20, 8), 20u);
}

/** One fixed 4-queue scenario; returns end-of-run metrics JSON. */
std::string
mqScenarioJson(std::uint64_t seed)
{
    Simulation sim(seed);
    cloud::VSwitch vswitch(sim, "vs");
    cloud::BlockService storage(sim, "st");
    core::BmHiveServer server(sim, "srv", vswitch, &storage,
                              mqParams(4, 2));
    auto &va = storage.createVolume("va", 8 * MiB);
    auto &vb = storage.createVolume("vb", 8 * MiB);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xa, &va);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xb, &vb);
    sim.run(sim.now() + msToTicks(1));

    workloads::PacketFloodParams fp;
    fp.flows = 8;
    fp.batch = 8;
    fp.warmup = msToTicks(1);
    fp.window = msToTicks(5);
    workloads::PacketFlood flood(
        sim, "flood", workloads::GuestContext::of(a),
        workloads::GuestContext::of(b), fp);
    auto r = flood.run();
    EXPECT_GT(r.received, 0u);
    return sim.metrics().toJson();
}

TEST(MqDeterminism, SameSeedSameMetricsWithFourQueues)
{
    // RSS steering, per-queue scheduling and per-queue wakes must
    // not perturb determinism: same seed, byte-identical snapshot.
    auto j1 = mqScenarioJson(20200316);
    auto j2 = mqScenarioJson(20200316);
    EXPECT_EQ(j1, j2);
    EXPECT_NE(j1.find(".mq.queue_regs"), std::string::npos);
    EXPECT_NE(j1.find(".mq.netp0"), std::string::npos);
}

TEST(MqDoorbell, FourQueuesShareOneDoorbellAllowance)
{
    bench::Testbed bed(9150, mqParams(4, 1));
    bed.bmGuest(0xA5, 0);
    // Idle long enough for the per-function token bucket to refill
    // to its full burst (it was nibbled during driver bring-up).
    bed.sim.run(bed.sim.now() + msToTicks(5));

    auto &bond = bed.server.guest(0).bond();
    auto &bus = bed.server.guest(0).board().pciBus();
    Addr bar = netBar(bed);

    // Hammer 5000 kicks within one tick, cycling over all four tx
    // queues. The allowance is per function, not per queue: a
    // 4-queue guest must see exactly the same accounting as the
    // 1-queue storm (hostile_test) — burst accepted, 32 storm
    // faults to quarantine, the rest swallowed. A per-queue bucket
    // would multiply the allowance by the queue count.
    const std::uint64_t kicks = 5000;
    const auto burst =
        std::uint64_t(bond.params().doorbellBurst);
    const std::array<std::uint32_t, 4> txq = {
        virtio::netTxQueue(0), virtio::netTxQueue(1),
        virtio::netTxQueue(2), virtio::netTxQueue(3)};
    for (std::uint64_t i = 0; i < kicks; ++i)
        bus.memWrite(bar + virtio::notifyRegionOffset, txq[i % 4],
                     4);

    EXPECT_EQ(bond.guestFaults(GuestFaultKind::DoorbellStorm),
              32u);
    EXPECT_EQ(bed.server.quarantines(), 1u);
    EXPECT_EQ(bed.server.guestHealth(0),
              core::GuestHealth::Quarantined);
    EXPECT_EQ(bond.quarantineDrops(), kicks - burst - 32);
}

} // namespace
} // namespace bmhive

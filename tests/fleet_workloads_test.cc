/**
 * @file
 * Unit tests for the fleet simulator (Table 2 / Fig 1 generators)
 * and the workload drivers (SPEC/STREAM models, packet workloads,
 * fio, and the application server bench).
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "fleet/fleet_sim.hh"
#include "workloads/app_server.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"
#include "workloads/spec.hh"

namespace bmhive {
namespace {

TEST(FleetTest, ExitDistributionTailOrdering)
{
    Rng rng(1);
    fleet::ExitRateFleetParams p;
    p.numVms = 100000;
    auto s = fleet::measureExitRates(rng, p);
    EXPECT_GT(s.pctAbove10k, s.pctAbove50k);
    EXPECT_GT(s.pctAbove50k, s.pctAbove100k);
    EXPECT_GT(s.pctAbove100k, 0.0);
    // Near the paper's Table 2 values.
    EXPECT_NEAR(s.pctAbove10k, 3.82, 1.0);
    EXPECT_NEAR(s.pctAbove50k, 0.37, 0.15);
    EXPECT_NEAR(s.pctAbove100k, 0.13, 0.08);
}

TEST(FleetTest, ExitDistributionDeterministicInSeed)
{
    fleet::ExitRateFleetParams p;
    p.numVms = 20000;
    Rng r1(9), r2(9);
    auto a = fleet::measureExitRates(r1, p);
    auto b = fleet::measureExitRates(r2, p);
    EXPECT_DOUBLE_EQ(a.pctAbove10k, b.pctAbove10k);
    EXPECT_DOUBLE_EQ(a.medianRate, b.medianRate);
}

TEST(FleetTest, PreemptionSharedVsExclusive)
{
    Rng rng(2);
    fleet::PreemptionFleetParams sh =
        fleet::PreemptionFleetParams::sharedFleet();
    sh.numVms = 4000;
    sh.hours = 6;
    auto s = fleet::measurePreemption(rng, sh);

    fleet::PreemptionFleetParams ex =
        fleet::PreemptionFleetParams::exclusiveFleet();
    ex.numVms = 4000;
    ex.hours = 6;
    auto e = fleet::measurePreemption(rng, ex);

    for (unsigned h = 0; h < 6; ++h) {
        EXPECT_GT(s.p99Pct[h], 5 * e.p99Pct[h]) << h;
        EXPECT_GE(s.p999Pct[h], s.p99Pct[h]) << h;
        EXPECT_GE(e.p999Pct[h], e.p99Pct[h]) << h;
    }
}

TEST(FleetTest, DiurnalLoadPeaksInTheAfternoon)
{
    EXPECT_GT(fleet::diurnalLoad(14), fleet::diurnalLoad(2));
    double sum = 0;
    for (unsigned h = 0; h < 24; ++h)
        sum += fleet::diurnalLoad(h);
    EXPECT_NEAR(sum / 24.0, 1.0, 0.02);
}

TEST(SpecModelTest, PlatformOrdering)
{
    Rng rng(3);
    for (const auto &comp : workloads::specCint2006()) {
        double ph = workloads::specScore(
            comp, workloads::Platform::Physical, rng);
        double bm = workloads::specScore(
            comp, workloads::Platform::BareMetal, rng);
        double vm = workloads::specScore(
            comp, workloads::Platform::Vm, rng);
        EXPECT_GT(bm, ph * 1.02) << comp.name;
        EXPECT_LT(vm, ph) << comp.name;
    }
}

TEST(SpecModelTest, MemoryBoundComponentsLoseMost)
{
    Rng rng(4);
    auto score_ratio = [&](const char *name) {
        for (const auto &c : workloads::specCint2006()) {
            if (c.name == name) {
                double ph = workloads::specScore(
                    c, workloads::Platform::Physical, rng);
                double vm = workloads::specScore(
                    c, workloads::Platform::Vm, rng);
                return vm / ph;
            }
        }
        return 0.0;
    };
    // mcf (memory-bound) suffers more than gobmk (core-bound).
    EXPECT_LT(score_ratio("429.mcf"), score_ratio("445.gobmk"));
}

TEST(SpecModelTest, StreamVmAtNinetyEightPercent)
{
    Rng rng(5);
    for (const auto &r : workloads::streamBandwidth(rng)) {
        EXPECT_NEAR(r.vmGBs / r.bareMetalGBs, 0.978, 0.015)
            << r.kernel;
        EXPECT_NEAR(r.bareMetalGBs / r.physicalGBs, 1.0, 0.02)
            << r.kernel;
        EXPECT_LT(r.bareMetalGBs, workloads::memChannelPeakGBs);
    }
}

TEST(WorkloadTest, PacketFloodDeliversAndMeasures)
{
    bench::Testbed bed(41);
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    workloads::PacketFloodParams p;
    p.flows = 4;
    p.batch = 8;
    p.warmup = msToTicks(2);
    p.window = msToTicks(10);
    workloads::PacketFlood flood(bed.sim, "f", a, b, p);
    auto r = flood.run();
    EXPECT_GT(r.pps, 5e5);
    EXPECT_GT(r.received, 0u);
    EXPECT_LE(r.received, r.sent);
}

TEST(WorkloadTest, PingPongLatencyConsistent)
{
    bench::Testbed bed(42);
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    workloads::PingPongParams p;
    p.samples = 200;
    workloads::PingPong pp(bed.sim, "pp", a, b, p);
    auto r = pp.run();
    EXPECT_GT(r.avgUs, 2.0);
    EXPECT_LT(r.avgUs, 50.0);
    EXPECT_GE(r.p99Us, r.p50Us);
    EXPECT_GE(r.maxUs, r.p99Us);
}

TEST(WorkloadTest, DpdkLatencyBelowKernelLatency)
{
    bench::Testbed bed(43);
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    workloads::PingPongParams pk;
    pk.samples = 200;
    pk.stack = workloads::NetStack::Kernel;
    auto kernel =
        workloads::PingPong(bed.sim, "k", a, b, pk).run();
    workloads::PingPongParams pd;
    pd.samples = 200;
    pd.stack = workloads::NetStack::Dpdk;
    auto dpdk = workloads::PingPong(bed.sim, "d", a, b, pd).run();
    EXPECT_LT(dpdk.avgUs, kernel.avgUs);
}

TEST(WorkloadTest, FioSaturatesNearTheIopsCap)
{
    bench::Testbed bed(44);
    auto g = bed.bmGuest(0xA, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    workloads::FioParams p;
    p.jobs = 8;
    p.window = msToTicks(300);
    workloads::FioRunner fio(bed.sim, "fio", g, p);
    auto r = fio.run();
    EXPECT_GT(r.iops, 15e3);
    EXPECT_LE(r.iops, 26e3);
    EXPECT_GT(r.avgUs, 250.0);
    EXPECT_GE(r.p999Us, r.p99Us);
}

TEST(WorkloadTest, AppBenchClosedLoopThroughput)
{
    bench::Testbed bed(45);
    auto g = bed.bmGuest(0xA, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    workloads::AppBenchParams p;
    p.clients = 64;
    p.window = msToTicks(60);
    workloads::AppServerBench bench(
        bed.sim, "ab", g, bed.vswitch, 0xC11E,
        workloads::AppProfile::nginx(), p);
    auto r = bench.run();
    // 8 workers at ~56 us/request ≈ 140K RPS capacity; with 64
    // clients the closed loop should get close.
    EXPECT_GT(r.rps, 8e4);
    EXPECT_LT(r.rps, 2e5);
    EXPECT_GT(r.avgMs, 0.05);
    EXPECT_EQ(r.timedOut, 0u);
}

TEST(WorkloadTest, AppProfilesExposePaperWorkloads)
{
    EXPECT_EQ(workloads::AppProfile::nginx().name, "nginx");
    EXPECT_EQ(workloads::AppProfile::mariadbReadOnly().workers,
              16u);
    EXPECT_EQ(workloads::AppProfile::redis(64).workers, 1u);
    // Redis per-request cost grows with value size.
    EXPECT_GT(workloads::AppProfile::redis(4096).cpuPerRequest,
              workloads::AppProfile::redis(4).cpuPerRequest);
    // MariaDB write paths carry block I/O.
    EXPECT_GT(
        workloads::AppProfile::mariadbWriteOnly().blkWritesPerRequest,
        0.0);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Unit tests for the guest-OS layer: PCI enumeration, the virtio
 * driver initialization state machine, the net driver's tx/rx and
 * NAPI behaviour, the blk driver's chain format, the packet wire
 * format, and the boot firmware (including failure injection).
 *
 * A vhost-style vm-guest is the harness: it exercises the same
 * driver code a bm-guest runs, against a software backend.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cloud/vswitch.hh"
#include "guest/firmware.hh"
#include "guest/packet_wire.hh"
#include "vmsim/vm_guest.hh"

namespace bmhive {
namespace {

using guest::installImage;
using guest::packPacket;
using guest::unpackPacket;
using guest::VirtioBootFirmware;

class GuestStackTest : public ::testing::Test
{
  protected:
    GuestStackTest()
        : sim(99), vswitch(sim, "vswitch"), storage(sim, "storage"),
          vol(&storage.createVolume("v", 64 * MiB))
    {
        vmsim::VmGuestParams pa;
        pa.mac = 0xA;
        pa.volumeSectors = vol->capacity() / 512;
        a = std::make_unique<vmsim::VmGuest>(sim, "a", pa, vswitch,
                                             &storage, vol);
        a->bringUp();

        vmsim::VmGuestParams pb;
        pb.mac = 0xB;
        b = std::make_unique<vmsim::VmGuest>(sim, "b", pb, vswitch);
        b->bringUp();
        sim.run(sim.now() + msToTicks(1));
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    cloud::Volume *vol;
    std::unique_ptr<vmsim::VmGuest> a, b;
};

TEST_F(GuestStackTest, EnumerationProgrammedBars)
{
    // bringUp() enumerated; both devices must decode MMIO.
    auto &bus = a->bus();
    std::uint32_t bar_net =
        bus.configRead(vmsim::VmGuest::netSlot, pci::REG_BAR0, 4);
    std::uint32_t bar_blk =
        bus.configRead(vmsim::VmGuest::blkSlot, pci::REG_BAR0, 4);
    EXPECT_NE(bar_net & ~0xfu, 0u);
    EXPECT_NE(bar_blk & ~0xfu, 0u);
    EXPECT_NE(bar_net, bar_blk);
    // Both enabled for memory + bus mastering.
    for (int slot :
         {vmsim::VmGuest::netSlot, vmsim::VmGuest::blkSlot}) {
        auto cmd = bus.configRead(slot, pci::REG_COMMAND, 2);
        EXPECT_TRUE(cmd & pci::CMD_MEM_SPACE);
        EXPECT_TRUE(cmd & pci::CMD_BUS_MASTER);
    }
}

TEST_F(GuestStackTest, DriverNegotiatedModernFeatures)
{
    EXPECT_TRUE(a->net().features() & virtio::VIRTIO_F_VERSION_1);
    EXPECT_TRUE(a->net().features() &
                virtio::VIRTIO_RING_F_INDIRECT_DESC);
    EXPECT_TRUE(a->net().features() & virtio::VIRTIO_NET_F_MAC);
    EXPECT_TRUE(a->blk()->features() & virtio::VIRTIO_F_VERSION_1);
}

TEST_F(GuestStackTest, BlkCapacityFromDeviceConfig)
{
    EXPECT_EQ(a->blk()->capacitySectors(),
              vol->capacity() / 512);
}

TEST_F(GuestStackTest, PacketRoundTripPreservesMetadata)
{
    std::vector<cloud::Packet> got;
    b->net().setRxHandler(
        [&](const cloud::Packet &p) { got.push_back(p); });
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 700;
    p.created = sim.now();
    p.seq = 0xfeedface;
    ASSERT_TRUE(a->net().sendPacket(p, true, a->os().cpu(1)));
    sim.run(sim.now() + msToTicks(2));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].seq, 0xfeedfaceu);
    EXPECT_EQ(got[0].len, 700u);
    EXPECT_EQ(got[0].src, 0xAu);
}

TEST_F(GuestStackTest, TxRingExhaustionRecovers)
{
    // Queue far more packets than the ring holds; with tx-reap on
    // send the driver recycles slots and everything gets through.
    std::uint64_t delivered = 0;
    b->net().setRxHandler(
        [&](const cloud::Packet &) { ++delivered; });
    unsigned submitted = 0;
    std::function<void()> pump = [&] {
        for (int burst = 0; burst < 64 && submitted < 2000;
             ++burst) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = 64;
            p.seq = submitted;
            if (!a->net().sendPacket(p, false, a->os().cpu(1)))
                break;
            ++submitted;
        }
        a->net().kickTx(a->os().cpu(1));
        if (submitted < 2000) {
            auto *ev = new OneShotEvent(pump, "pump");
            sim.eventq().schedule(ev, sim.now() + usToTicks(50));
        }
    };
    pump();
    sim.run(sim.now() + msToTicks(50));
    EXPECT_EQ(submitted, 2000u);
    EXPECT_EQ(delivered, 2000u);
    // With tx interrupts suppressed, completions are reaped
    // lazily in the xmit path: at most one ring's worth remains.
    EXPECT_GE(a->net().txCompleted(), 2000u - 256u);
}

TEST_F(GuestStackTest, RxSequenceIsOrdered)
{
    // Packets between one pair must arrive in order (single path,
    // FIFO at every stage).
    std::vector<std::uint64_t> seqs;
    b->net().setRxHandler(
        [&](const cloud::Packet &p) { seqs.push_back(p.seq); });
    for (unsigned i = 0; i < 300; ++i) {
        cloud::Packet p;
        p.src = 0xA;
        p.dst = 0xB;
        p.len = 64;
        p.seq = i;
        while (!a->net().sendPacket(p, true, a->os().cpu(1)))
            sim.run(sim.now() + usToTicks(20));
    }
    sim.run(sim.now() + msToTicks(20));
    ASSERT_EQ(seqs.size(), 300u);
    for (unsigned i = 0; i < 300; ++i)
        ASSERT_EQ(seqs[i], i);
}

TEST_F(GuestStackTest, BlkWriteReadDataIntegrity)
{
    std::vector<std::uint8_t> data(8192);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t((i * 13) ^ (i >> 7));

    bool wrote = false, read = false;
    a->blk()->write(64, 8192, &data, a->os().cpu(1),
                    [&](std::uint8_t st, Addr) {
                        EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
                        wrote = true;
                    });
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(wrote);

    a->blk()->read(64, 8192, a->os().cpu(1),
                   [&](std::uint8_t st, Addr addr) {
                       EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
                       EXPECT_EQ(a->os().memory().readBlob(addr,
                                                           8192),
                                 data);
                       read = true;
                   });
    sim.run(sim.now() + msToTicks(30));
    EXPECT_TRUE(read);
    EXPECT_EQ(a->blk()->errors(), 0u);
    // And the volume itself holds the bytes.
    EXPECT_EQ(vol->readData(64, 8192), data);
}

TEST_F(GuestStackTest, ManyConcurrentBlockIos)
{
    unsigned done = 0;
    for (unsigned i = 0; i < 48; ++i) {
        ASSERT_TRUE(a->blk()->read(
            i * 8, 4 * KiB, a->os().cpu(1 + i % 8),
            [&](std::uint8_t st, Addr) {
                EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
                ++done;
            }));
    }
    sim.run(sim.now() + msToTicks(100));
    EXPECT_EQ(done, 48u);
}

TEST_F(GuestStackTest, UnalignedIoPanics)
{
    Logger::global().setThrowOnDeath(true);
    EXPECT_THROW(a->blk()->read(0, 1000, a->os().cpu(0),
                                [](std::uint8_t, Addr) {}),
                 PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST_F(GuestStackTest, BootFromInstalledImage)
{
    installImage(*vol, 128 * KiB, "test-image");
    bool ok = false;
    std::string ver;
    VirtioBootFirmware fw(a->os(), *a->blk());
    fw.boot([&](bool b, const std::string &v) {
        ok = b;
        ver = v;
    });
    sim.run(sim.now() + secToTicks(2));
    EXPECT_TRUE(ok);
    EXPECT_EQ(ver, "test-image");
}

TEST_F(GuestStackTest, BootRejectsMissingImage)
{
    // No image installed on this fresh volume: bad magic.
    bool called = false, ok = true;
    VirtioBootFirmware fw(a->os(), *a->blk());
    fw.boot([&](bool b, const std::string &) {
        called = true;
        ok = b;
    });
    sim.run(sim.now() + secToTicks(1));
    EXPECT_TRUE(called);
    EXPECT_FALSE(ok);
}

TEST_F(GuestStackTest, BootDetectsCorruptKernel)
{
    installImage(*vol, 128 * KiB, "test-image");
    // Flip bytes in the middle of the kernel.
    std::vector<std::uint8_t> garbage(512, 0x00);
    vol->writeData(guest::ImageLayout::kernelSector + 100, garbage);
    bool ok = true;
    VirtioBootFirmware fw(a->os(), *a->blk());
    fw.boot([&](bool b, const std::string &) { ok = b; });
    sim.run(sim.now() + secToTicks(2));
    EXPECT_FALSE(ok);
}

TEST(PacketWireTest, PackUnpackRoundTrip)
{
    GuestMemory m("m", 256);
    cloud::Packet p;
    p.src = 0x112233445566ull;
    p.dst = 0xaabbccddeeffull;
    p.len = 1442;
    p.created = 0x123456789abcull;
    p.seq = 42;
    packPacket(m, 16, p);
    cloud::Packet q = unpackPacket(m, 16);
    EXPECT_EQ(q.src, p.src);
    EXPECT_EQ(q.dst, p.dst);
    EXPECT_EQ(q.len, p.len);
    EXPECT_EQ(q.created, p.created);
    EXPECT_EQ(q.seq, p.seq);
}

TEST(PacketWireTest, RxChainTooSmallRejected)
{
    GuestMemory m("m", 4096);
    virtio::DescChain chain;
    chain.segs.push_back({0x100, 16, true}); // smaller than hdr+meta
    cloud::Packet p;
    p.len = 64;
    EXPECT_EQ(guest::writePacketToRxChain(m, chain, p), 0u);
}

TEST(PacketWireTest, TxChainSkipsWritableSegs)
{
    GuestMemory m("m", 4096);
    cloud::Packet p;
    p.seq = 7;
    p.len = 64;
    packPacket(m, 0x100 + virtio::VirtioNetHdr::wireSize, p);
    virtio::DescChain chain;
    chain.segs.push_back({0x800, 128, true}); // writable: skip
    chain.segs.push_back({0x100, 128, false});
    auto ext = guest::readPacketFromTxChain(m, chain);
    ASSERT_TRUE(ext.ok);
    EXPECT_EQ(ext.pkt.seq, 7u);
}

} // namespace
} // namespace bmhive

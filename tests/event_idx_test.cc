/**
 * @file
 * Tests for VIRTIO_RING_F_EVENT_IDX: the spec's crossing predicate
 * (section 2.4.7.2), kick suppression seen by the driver,
 * interrupt suppression seen by the device, end-to-end behaviour
 * through IO-Bond (which must honor the guest's used_event), and
 * the interrupt-count advantage over flag-based suppression under
 * a completion burst.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "hw/compute_board.hh"
#include "iobond/iobond.hh"
#include "virtio/virtio_net.hh"
#include "virtio/virtqueue.hh"

namespace bmhive {
namespace virtio {
namespace {

TEST(VringNeedEventTest, SpecPredicate)
{
    // Crossing: old < event+1 <= new (mod 2^16).
    EXPECT_TRUE(vringNeedEvent(5, 6, 5));   // just crossed
    EXPECT_FALSE(vringNeedEvent(5, 5, 4));  // not yet at event+1
    EXPECT_TRUE(vringNeedEvent(5, 8, 3));   // crossed inside batch
    EXPECT_FALSE(vringNeedEvent(5, 9, 7));  // crossed earlier
    // Wraparound cases.
    EXPECT_TRUE(vringNeedEvent(0xffff, 0, 0xffff));
    EXPECT_TRUE(vringNeedEvent(1, 3, 0xfffe));
    EXPECT_FALSE(vringNeedEvent(0x8000, 2, 1));
}

class EventIdxPairTest : public ::testing::Test
{
  protected:
    EventIdxPairTest()
        : mem("m", 1 * MiB),
          layout(VringLayout::contiguous(8, 0x1000)),
          drv(mem, layout, false, 0, /*event_idx=*/true),
          dev(mem, layout, /*event_idx=*/true)
    {
    }

    GuestMemory mem;
    VringLayout layout;
    VirtQueueDriver drv;
    VirtQueueDevice dev;
};

TEST_F(EventIdxPairTest, DeviceRearmGovernsKicks)
{
    // Initially avail_event = 0, nothing published yet: the first
    // publication (avail 0 -> 1) crosses event 0.
    drv.submit({{0x100, 8, false}}, {}, 1);
    EXPECT_TRUE(drv.shouldKick());
    // Re-checking without new publications: no kick needed.
    drv.submit({{0x100, 8, false}}, {}, 2);
    drv.submit({{0x100, 8, false}}, {}, 3);
    // Device hasn't re-armed yet: suppressed.
    EXPECT_FALSE(drv.shouldKick());

    // Device drains and re-arms on each pop; the next publication
    // crosses again.
    while (dev.pop())
        ;
    drv.submit({{0x100, 8, false}}, {}, 4);
    EXPECT_TRUE(drv.shouldKick());
}

TEST_F(EventIdxPairTest, DeviceSuppressionParksEvent)
{
    dev.setNoNotify(true);
    for (int i = 0; i < 6; ++i) {
        drv.submit({{0x100, 8, false}}, {}, std::uint64_t(i));
        EXPECT_FALSE(drv.shouldKick()) << i;
    }
    // The event-idx re-arm race (virtio 1.0 section 2.4.7.1): a
    // device re-enabling notifications must re-check the ring for
    // entries published while suppressed — no kick will come for
    // them.
    dev.setNoNotify(false);
    EXPECT_TRUE(dev.hasWork());
    while (dev.pop())
        ;
    // From a drained, re-armed ring the next publication kicks.
    drv.submit({{0x100, 8, false}}, {}, 99);
    EXPECT_TRUE(drv.shouldKick());
}

TEST_F(EventIdxPairTest, InterruptOnlyOnUsedEventCrossing)
{
    // The driver re-arms used_event when it reaps; completions
    // before the next reap raise exactly one interrupt request.
    for (int i = 0; i < 4; ++i)
        drv.submit({{0x100, 8, false}}, {}, std::uint64_t(i));
    unsigned irqs = 0;
    for (int i = 0; i < 4; ++i) {
        auto c = dev.pop();
        ASSERT_TRUE(c.has_value());
        dev.pushUsed(c->head, 0);
        if (dev.shouldInterrupt())
            ++irqs;
    }
    // used_event was 0: the first completion crosses, later ones
    // do not (driver hasn't re-armed).
    EXPECT_EQ(irqs, 1u);

    // After the driver reaps, the next completion crosses again.
    EXPECT_EQ(drv.collectUsed().size(), 4u);
    drv.submit({{0x100, 8, false}}, {}, 9);
    auto c = dev.pop();
    dev.pushUsed(c->head, 0);
    EXPECT_TRUE(dev.shouldInterrupt());
}

TEST_F(EventIdxPairTest, DriverSuppressionParksUsedEvent)
{
    drv.setNoInterrupt(true);
    drv.submit({{0x100, 8, false}}, {}, 1);
    auto c = dev.pop();
    dev.pushUsed(c->head, 0);
    EXPECT_FALSE(dev.shouldInterrupt());
    // Mirror of the re-arm race on the interrupt side: the driver
    // re-enabling interrupts must reap completions that landed
    // while suppressed (collectUsed also re-arms used_event).
    drv.setNoInterrupt(false);
    EXPECT_EQ(drv.collectUsed().size(), 1u);
    drv.submit({{0x100, 8, false}}, {}, 2);
    c = dev.pop();
    dev.pushUsed(c->head, 0);
    EXPECT_TRUE(dev.shouldInterrupt());
}

/**
 * End-to-end through IO-Bond: a guest driver that negotiated
 * EVENT_IDX gets interrupt moderation from the hardware bridge.
 */
class IoBondEventIdxTest : public ::testing::Test
{
  protected:
    IoBondEventIdxTest()
        : sim(7),
          board(sim, "board", hw::CpuCatalog::xeonE5_2682v4(),
                32 * MiB, paper::ioBondPciAccess),
          baseMem("base", 64 * MiB),
          bond(sim, "bond", board, baseMem, 0)
    {
        bond.addNetFunction(3, 0xAB);
        auto &bus = board.pciBus();
        bus.configWrite(3, pci::REG_BAR0, 0xe0000000u, 4);
        bus.configWrite(3, pci::REG_COMMAND,
                        pci::CMD_MEM_SPACE | pci::CMD_BUS_MASTER,
                        2);
        // Negotiate VERSION_1 + EVENT_IDX.
        wr(COMMON_GFSELECT, 0, 4);
        wr(COMMON_GF, std::uint32_t(VIRTIO_RING_F_EVENT_IDX), 4);
        wr(COMMON_GFSELECT, 1, 4);
        wr(COMMON_GF, std::uint32_t(VIRTIO_F_VERSION_1 >> 32), 4);
        for (unsigned q = 0; q < 2; ++q) {
            wr(COMMON_Q_SELECT, q, 2);
            wr(COMMON_Q_SIZE, 8, 2);
            layouts[q] =
                VringLayout::contiguous(8, 0x10000 + q * 0x1000);
            wr(COMMON_Q_DESCLO,
               std::uint32_t(layouts[q].descAddr()), 4);
            wr(COMMON_Q_AVAILLO,
               std::uint32_t(layouts[q].availAddr()), 4);
            wr(COMMON_Q_USEDLO,
               std::uint32_t(layouts[q].usedAddr()), 4);
            wr(COMMON_Q_MSIX, q, 2);
            wr(COMMON_Q_ENABLE, 1, 2);
        }
        wr(COMMON_STATUS,
           STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_DRIVER_OK,
           1);
        drv = std::make_unique<VirtQueueDriver>(
            board.memory(), layouts[NET_TXQ], false, 0,
            /*event_idx=*/true);
        board.pciBus().setMsiHandler(
            [this](int, unsigned) { ++msis; });
    }

    void
    wr(Addr off, std::uint32_t v, unsigned size)
    {
        board.pciBus().memWrite(0xe0000000u + off, v, size);
    }

    Simulation sim;
    hw::ComputeBoard board;
    GuestMemory baseMem;
    iobond::IoBond bond;
    VringLayout layouts[2];
    std::unique_ptr<VirtQueueDriver> drv;
    unsigned msis = 0;
};

TEST_F(IoBondEventIdxTest, FeatureNegotiated)
{
    EXPECT_TRUE(bond.function(0).featureNegotiated(
        VIRTIO_RING_F_EVENT_IDX));
}

TEST_F(IoBondEventIdxTest, MsiOnlyOnUsedEventCrossing)
{
    // Publish 4 chains, kick once; the backend completes all 4.
    for (int i = 0; i < 4; ++i)
        drv->submit({{0x20000, 64, false}}, {},
                    std::uint64_t(i));
    wr(notifyRegionOffset, NET_TXQ, 4);
    sim.run(sim.now() + msToTicks(1));

    VirtQueueDevice dev(baseMem, bond.shadowLayout(0, NET_TXQ));
    while (auto c = dev.pop())
        dev.pushUsed(c->head, 0);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));
    // used_event was 0: exactly one crossing, one MSI.
    EXPECT_EQ(msis, 1u);
    EXPECT_EQ(drv->collectUsed().size(), 4u);

    // The reap re-armed used_event: the next completion interrupts
    // again.
    drv->submit({{0x20000, 64, false}}, {}, 5);
    wr(notifyRegionOffset, NET_TXQ, 4);
    sim.run(sim.now() + msToTicks(1));
    auto c = dev.pop();
    ASSERT_TRUE(c.has_value());
    dev.pushUsed(c->head, 0);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(msis, 2u);
}

TEST_F(IoBondEventIdxTest, ParkedUsedEventSilencesIoBond)
{
    drv->setNoInterrupt(true);
    drv->submit({{0x20000, 64, false}}, {}, 1);
    wr(notifyRegionOffset, NET_TXQ, 4);
    sim.run(sim.now() + msToTicks(1));
    VirtQueueDevice dev(baseMem, bond.shadowLayout(0, NET_TXQ));
    auto c = dev.pop();
    ASSERT_TRUE(c.has_value());
    dev.pushUsed(c->head, 0);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(msis, 0u);
    // Data still arrived.
    EXPECT_EQ(drv->collectUsed().size(), 1u);
}

} // namespace
} // namespace virtio
} // namespace bmhive

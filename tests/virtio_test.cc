/**
 * @file
 * Unit tests for the virtio substrate: the split-ring byte layout
 * against hand-computed offsets from the virtio 1.0 spec, the
 * driver/device queue views, malformed-chain robustness, and the
 * virtio-pci transport.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "mem/guest_memory.hh"
#include "sim/sim_object.hh"
#include "virtio/virtio_blk.hh"
#include "virtio/virtio_net.hh"
#include "virtio/virtio_pci.hh"
#include "virtio/virtqueue.hh"
#include "virtio/vring.hh"

namespace bmhive {
namespace virtio {
namespace {

TEST(VringLayoutTest, SpecOffsets)
{
    // virtio 1.0 section 2.4: desc 16B each; avail = flags(2) +
    // idx(2) + ring(2*N) + used_event(2); used = flags(2) + idx(2)
    // + ring(8*N) + avail_event(2).
    VringLayout l = VringLayout::contiguous(8, 0);
    EXPECT_EQ(l.descAddr(), 0u);
    EXPECT_EQ(l.availAddr(), 8u * 16u);
    // avail ends at 128 + 4 + 16 + 2 = 150; used aligns to 4.
    EXPECT_EQ(l.usedAddr(), 152u);
    EXPECT_EQ(l.descBytes(), 128u);
    EXPECT_EQ(l.availBytes(), 22u);
    EXPECT_EQ(l.usedBytes(), 70u);
    EXPECT_EQ(VringLayout::bytesNeeded(8), 152u + 70u);
}

TEST(VringLayoutTest, DescRoundTripAtExactOffsets)
{
    GuestMemory m("m", 4096);
    VringLayout l = VringLayout::contiguous(4, 0x100);
    VringDesc d{0x123456789abcdef0ull, 0xcafebabe,
                VRING_DESC_F_NEXT | VRING_DESC_F_WRITE, 3};
    l.writeDesc(m, 2, d);
    // Raw bytes at descAddr + 2*16.
    Addr a = l.descAddr() + 32;
    EXPECT_EQ(m.read64(a), d.addr);
    EXPECT_EQ(m.read32(a + 8), d.len);
    EXPECT_EQ(m.read16(a + 12), d.flags);
    EXPECT_EQ(m.read16(a + 14), d.next);
    VringDesc r = l.readDesc(m, 2);
    EXPECT_EQ(r.addr, d.addr);
    EXPECT_EQ(r.len, d.len);
    EXPECT_EQ(r.flags, d.flags);
    EXPECT_EQ(r.next, d.next);
}

TEST(VringLayoutTest, AvailUsedFieldsIndependent)
{
    GuestMemory m("m", 4096);
    VringLayout l = VringLayout::contiguous(4, 0);
    l.setAvailFlags(m, 1);
    l.setAvailIdx(m, 7);
    l.setAvailRing(m, 3, 2);
    l.setUsedEvent(m, 5);
    l.setUsedFlags(m, 1);
    l.setUsedIdx(m, 9);
    l.setUsedRing(m, 0, {2, 100});
    l.setAvailEvent(m, 6);
    EXPECT_EQ(l.availFlags(m), 1u);
    EXPECT_EQ(l.availIdx(m), 7u);
    EXPECT_EQ(l.availRing(m, 3), 2u);
    EXPECT_EQ(l.usedEvent(m), 5u);
    EXPECT_EQ(l.usedFlags(m), 1u);
    EXPECT_EQ(l.usedIdx(m), 9u);
    EXPECT_EQ(l.usedRing(m, 0).id, 2u);
    EXPECT_EQ(l.usedRing(m, 0).len, 100u);
    EXPECT_EQ(l.availEvent(m), 6u);
}

TEST(VringLayoutTest, NonPowerOfTwoSizePanics)
{
    Logger::global().setThrowOnDeath(true);
    EXPECT_THROW(VringLayout::contiguous(6, 0), PanicError);
    EXPECT_THROW(VringLayout::contiguous(0, 0), PanicError);
    Logger::global().setThrowOnDeath(false);
}

class QueuePairTest : public ::testing::TestWithParam<bool>
{
  protected:
    QueuePairTest()
        : mem("m", 1 * MiB),
          layout(VringLayout::contiguous(8, 0x1000)),
          drv(mem, layout, GetParam(), 0x8000),
          dev(mem, layout)
    {
    }

    GuestMemory mem;
    VringLayout layout;
    VirtQueueDriver drv;
    VirtQueueDevice dev;
};

TEST_P(QueuePairTest, SubmitPopCompleteCollect)
{
    // Driver posts [out 100B @0x20000][in 50B @0x21000].
    auto head = drv.submit({{0x20000, 100, false}},
                           {{0x21000, 50, true}}, 0x77);
    ASSERT_TRUE(head.has_value());
    EXPECT_TRUE(dev.hasWork());

    auto chain = dev.pop();
    ASSERT_TRUE(chain.has_value());
    ASSERT_EQ(chain->segs.size(), 2u);
    EXPECT_EQ(chain->segs[0].addr, 0x20000u);
    EXPECT_EQ(chain->segs[0].len, 100u);
    EXPECT_FALSE(chain->segs[0].deviceWrites);
    EXPECT_EQ(chain->segs[1].addr, 0x21000u);
    EXPECT_TRUE(chain->segs[1].deviceWrites);
    EXPECT_EQ(chain->readLen(), 100u);
    EXPECT_EQ(chain->writeLen(), 50u);
    EXPECT_FALSE(dev.hasWork());

    dev.pushUsed(chain->head, 50);
    auto done = drv.collectUsed();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].cookie, 0x77u);
    EXPECT_EQ(done[0].len, 50u);
    EXPECT_EQ(drv.freeDescs(), 8u);
}

TEST_P(QueuePairTest, RingFillsAndRecovers)
{
    // With direct descriptors a 2-seg request takes 2 descs (4
    // requests fill the ring); with indirect each takes 1.
    std::vector<std::uint16_t> heads;
    int submitted = 0;
    while (true) {
        auto h = drv.submit({{0x20000, 10, false}},
                            {{0x21000, 10, true}},
                            std::uint64_t(submitted));
        if (!h)
            break;
        ++submitted;
        ASSERT_LT(submitted, 100);
    }
    EXPECT_EQ(submitted, GetParam() ? 8 : 4);

    while (auto c = dev.pop())
        dev.pushUsed(c->head, 10);
    auto done = drv.collectUsed();
    EXPECT_EQ(int(done.size()), submitted);
    EXPECT_EQ(drv.freeDescs(), 8u);

    // The ring is usable again (indices wrapped correctly).
    auto h2 = drv.submit({{0x20000, 10, false}}, {}, 999);
    ASSERT_TRUE(h2.has_value());
    auto c2 = dev.pop();
    ASSERT_TRUE(c2.has_value());
    dev.pushUsed(c2->head, 0);
    EXPECT_EQ(drv.collectUsed().at(0).cookie, 999u);
}

TEST_P(QueuePairTest, IndexWrapAround16Bit)
{
    // Push enough traffic through an 8-entry ring to wrap the
    // 16-bit indices several times.
    for (int round = 0; round < 20000; ++round) {
        auto h = drv.submit({{0x20000, 8, false}}, {},
                            std::uint64_t(round));
        ASSERT_TRUE(h.has_value()) << round;
        auto c = dev.pop();
        ASSERT_TRUE(c.has_value()) << round;
        dev.pushUsed(c->head, 0);
        auto done = drv.collectUsed();
        ASSERT_EQ(done.size(), 1u);
        ASSERT_EQ(done[0].cookie, std::uint64_t(round));
    }
}

INSTANTIATE_TEST_SUITE_P(DirectAndIndirect, QueuePairTest,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "Indirect"
                                               : "Direct";
                         });

TEST(VirtQueueDeviceTest, MalformedLoopDropsChain)
{
    GuestMemory mem("m", 64 * KiB);
    VringLayout l = VringLayout::contiguous(4, 0);
    VirtQueueDevice dev(mem, l);

    // Hand-craft a looping chain: 0 -> 1 -> 0.
    l.writeDesc(mem, 0, {0x100, 8, VRING_DESC_F_NEXT, 1});
    l.writeDesc(mem, 1, {0x200, 8, VRING_DESC_F_NEXT, 0});
    l.setAvailRing(mem, 0, 0);
    l.setAvailIdx(mem, 1);

    EXPECT_FALSE(dev.pop().has_value());
    EXPECT_EQ(dev.badChains(), 1u);
    // The chain was completed back with len 0, not leaked.
    EXPECT_EQ(l.usedIdx(mem), 1u);
    EXPECT_EQ(l.usedRing(mem, 0).id, 0u);
    EXPECT_EQ(l.usedRing(mem, 0).len, 0u);
}

TEST(VirtQueueDeviceTest, OutOfRangeIndexDropsChain)
{
    GuestMemory mem("m", 64 * KiB);
    VringLayout l = VringLayout::contiguous(4, 0);
    VirtQueueDevice dev(mem, l);
    l.setAvailRing(mem, 0, 9); // head out of range
    l.setAvailIdx(mem, 1);
    EXPECT_FALSE(dev.pop().has_value());
    EXPECT_EQ(dev.badChains(), 1u);
}

TEST(VirtQueueDeviceTest, NestedIndirectRejected)
{
    GuestMemory mem("m", 64 * KiB);
    VringLayout l = VringLayout::contiguous(4, 0);
    VirtQueueDevice dev(mem, l);
    // Indirect table whose entry is itself indirect.
    Addr tbl = 0x4000;
    mem.write64(tbl, 0x5000);
    mem.write32(tbl + 8, 16);
    mem.write16(tbl + 12, VRING_DESC_F_INDIRECT);
    mem.write16(tbl + 14, 0);
    l.writeDesc(mem, 0, {tbl, 16, VRING_DESC_F_INDIRECT, 0});
    l.setAvailRing(mem, 0, 0);
    l.setAvailIdx(mem, 1);
    EXPECT_FALSE(dev.pop().has_value());
    EXPECT_EQ(dev.badChains(), 1u);
}

TEST(VirtQueueDeviceTest, NotifySuppressionFlags)
{
    GuestMemory mem("m", 64 * KiB);
    VringLayout l = VringLayout::contiguous(4, 0);
    VirtQueueDriver drv(mem, l);
    VirtQueueDevice dev(mem, l);

    EXPECT_TRUE(drv.deviceWantsKick());
    dev.setNoNotify(true);
    EXPECT_FALSE(drv.deviceWantsKick());

    EXPECT_TRUE(dev.driverWantsInterrupt());
    drv.setNoInterrupt(true);
    EXPECT_FALSE(dev.driverWantsInterrupt());
    drv.setNoInterrupt(false);
    EXPECT_TRUE(dev.driverWantsInterrupt());
}

TEST(WalkDescChainTest, ReportsPathAndIndirectInfo)
{
    GuestMemory mem("m", 64 * KiB);
    VringLayout l = VringLayout::contiguous(8, 0);
    VirtQueueDriver drv(mem, l, true, 0x8000);
    drv.submit({{0x100, 10, false}, {0x200, 20, false}},
               {{0x300, 30, true}}, 1);
    // Indirect: head descriptor points at a 3-entry table.
    ChainWalk w = walkDescChain(mem, l, 0);
    ASSERT_TRUE(w.ok);
    EXPECT_TRUE(w.indirect);
    EXPECT_EQ(w.indirectCount, 3u);
    EXPECT_EQ(w.path.size(), 1u);
    ASSERT_EQ(w.chain.segs.size(), 3u);
    EXPECT_EQ(w.chain.segs[2].len, 30u);
    EXPECT_TRUE(w.chain.segs[2].deviceWrites);
}

// --- virtio-pci transport ---

class TestVirtioDevice : public VirtioPciDevice
{
  public:
    using VirtioPciDevice::VirtioPciDevice;
    unsigned notifies = 0;
    unsigned lastQueue = 0;
    bool ready = false;

  protected:
    void
    onQueueNotify(unsigned q) override
    {
        ++notifies;
        lastQueue = q;
    }
    void onDriverOk() override { ready = true; }
};

class VirtioPciTest : public ::testing::Test
{
  protected:
    VirtioPciTest()
        : bus(sim, "bus", nsToTicks(100), Bandwidth::gbps(32)),
          dev(sim, "dev", DeviceType::Net, 2,
              VIRTIO_NET_F_MAC | VIRTIO_RING_F_INDIRECT_DESC)
    {
        bus.attach(dev, 3);
        // Program BAR0 and enable memory decoding.
        bus.configWrite(3, pci::REG_BAR0, 0xe0000000u, 4);
        bus.configWrite(3, pci::REG_COMMAND,
                        pci::CMD_MEM_SPACE | pci::CMD_BUS_MASTER, 2);
    }

    std::uint32_t
    rd(Addr off, unsigned size)
    {
        return bus.memRead(0xe0000000u + off, size);
    }
    void
    wr(Addr off, std::uint32_t v, unsigned size)
    {
        bus.memWrite(0xe0000000u + off, v, size);
    }

    Simulation sim;
    pci::PciBus bus;
    TestVirtioDevice dev;
};

TEST_F(VirtioPciTest, IdsAndBarProbing)
{
    EXPECT_EQ(bus.configRead(3, pci::REG_VENDOR_ID, 2), 0x1af4u);
    EXPECT_EQ(bus.configRead(3, pci::REG_DEVICE_ID, 2), 0x1041u);
    // Probing an absent slot returns all-ones.
    EXPECT_EQ(bus.configRead(9, pci::REG_VENDOR_ID, 2), 0xffffu);
    // Capability list present.
    EXPECT_NE(bus.configRead(3, pci::REG_CAP_PTR, 1), 0u);
}

TEST_F(VirtioPciTest, FeatureNegotiationMasksOffer)
{
    wr(COMMON_DFSELECT, 0, 4);
    std::uint64_t offered = rd(COMMON_DF, 4);
    wr(COMMON_DFSELECT, 1, 4);
    offered |= std::uint64_t(rd(COMMON_DF, 4)) << 32;
    EXPECT_TRUE(offered & VIRTIO_F_VERSION_1);
    EXPECT_TRUE(offered & VIRTIO_NET_F_MAC);

    // Ask for something not offered: it must be masked away.
    wr(COMMON_GFSELECT, 0, 4);
    wr(COMMON_GF, 0xffffffffu, 4);
    wr(COMMON_GFSELECT, 1, 4);
    wr(COMMON_GF, 0xffffffffu, 4);
    EXPECT_EQ(dev.negotiatedFeatures(), offered);
}

TEST_F(VirtioPciTest, QueueProgrammingAndNotify)
{
    EXPECT_EQ(rd(COMMON_NUMQ, 2), 2u);
    wr(COMMON_Q_SELECT, 1, 2);
    wr(COMMON_Q_SIZE, 64, 2);
    wr(COMMON_Q_DESCLO, 0x10000, 4);
    wr(COMMON_Q_AVAILLO, 0x10400, 4);
    wr(COMMON_Q_USEDLO, 0x10500, 4);
    wr(COMMON_Q_ENABLE, 1, 2);
    const QueueState &qs = dev.queueState(1);
    EXPECT_TRUE(qs.enabled);
    EXPECT_EQ(qs.size, 64u);
    EXPECT_EQ(qs.descAddr, 0x10000u);

    wr(COMMON_STATUS,
       STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_DRIVER_OK, 1);
    EXPECT_TRUE(dev.ready);

    wr(notifyRegionOffset, 1, 4);
    EXPECT_EQ(dev.notifies, 1u);
    EXPECT_EQ(dev.lastQueue, 1u);
    // Notify on a disabled queue is ignored.
    wr(notifyRegionOffset, 0, 4);
    EXPECT_EQ(dev.notifies, 1u);
}

TEST_F(VirtioPciTest, InvalidQueueSizeRejected)
{
    wr(COMMON_Q_SELECT, 0, 2);
    std::uint32_t max = rd(COMMON_Q_SIZE, 2);
    wr(COMMON_Q_SIZE, 48, 2); // not a power of two
    EXPECT_EQ(rd(COMMON_Q_SIZE, 2), max);
    wr(COMMON_Q_SIZE, 4096, 2); // above max
    EXPECT_EQ(rd(COMMON_Q_SIZE, 2), max);
}

TEST_F(VirtioPciTest, ResetClearsState)
{
    wr(COMMON_Q_SELECT, 0, 2);
    wr(COMMON_Q_ENABLE, 1, 2);
    wr(COMMON_GFSELECT, 0, 4);
    wr(COMMON_GF, 0xff, 4);
    wr(COMMON_STATUS, 0, 1); // reset
    EXPECT_EQ(dev.status(), 0u);
    EXPECT_EQ(dev.negotiatedFeatures(), 0u);
    EXPECT_FALSE(dev.queueState(0).enabled);
}

TEST_F(VirtioPciTest, IsrReadToAck)
{
    wr(COMMON_Q_SELECT, 0, 2);
    wr(COMMON_Q_ENABLE, 1, 2);
    dev.notifyGuest(0);
    EXPECT_EQ(rd(isrOffset, 1), 1u);
    EXPECT_EQ(rd(isrOffset, 1), 0u); // cleared by the read
    sim.run(); // drain the pending MSI event
}

TEST(VirtioWireTest, NetHdrRoundTrip)
{
    GuestMemory m("m", 64);
    VirtioNetHdr h;
    h.flags = 1;
    h.gsoType = 2;
    h.hdrLen = 34;
    h.numBuffers = 3;
    h.writeTo(m, 4);
    VirtioNetHdr r = VirtioNetHdr::readFrom(m, 4);
    EXPECT_EQ(r.flags, 1u);
    EXPECT_EQ(r.gsoType, 2u);
    EXPECT_EQ(r.hdrLen, 34u);
    EXPECT_EQ(r.numBuffers, 3u);
    EXPECT_EQ(VirtioNetHdr::wireSize, 12u);
}

TEST(VirtioWireTest, BlkReqHdrRoundTrip)
{
    GuestMemory m("m", 64);
    VirtioBlkReqHdr h;
    h.type = VIRTIO_BLK_T_OUT;
    h.sector = 0x123456789aull;
    h.writeTo(m, 0);
    auto r = VirtioBlkReqHdr::readFrom(m, 0);
    EXPECT_EQ(r.type, VIRTIO_BLK_T_OUT);
    EXPECT_EQ(r.sector, 0x123456789aull);
    EXPECT_EQ(VirtioBlkReqHdr::wireSize, 16u);
}

} // namespace
} // namespace virtio
} // namespace bmhive

/**
 * @file
 * Unit tests for simulated memory, the DMA engine, and the pool
 * allocator IO-Bond uses for shadow buffers.
 */

#include <gtest/gtest.h>

#include <map>

#include "base/logging.hh"
#include "base/random.hh"
#include "fault/fault.hh"
#include "mem/dma_engine.hh"
#include "mem/guest_memory.hh"
#include "mem/pool_allocator.hh"

namespace bmhive {
namespace {

TEST(GuestMemoryTest, TypedAccessorsLittleEndian)
{
    GuestMemory m("m", 64);
    m.write32(0, 0x12345678u);
    EXPECT_EQ(m.read8(0), 0x78u);
    EXPECT_EQ(m.read8(3), 0x12u);
    EXPECT_EQ(m.read16(0), 0x5678u);
    m.write64(8, 0x1122334455667788ull);
    EXPECT_EQ(m.read32(8), 0x55667788u);
    EXPECT_EQ(m.read32(12), 0x11223344u);
}

TEST(GuestMemoryTest, BlobRoundTrip)
{
    GuestMemory m("m", 1024);
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 3);
    m.writeBlob(10, data);
    EXPECT_EQ(m.readBlob(10, 100), data);
}

TEST(GuestMemoryTest, OutOfBoundsPanics)
{
    Logger::global().setThrowOnDeath(true);
    GuestMemory m("m", 16);
    EXPECT_THROW(m.read32(14), PanicError);
    EXPECT_THROW(m.write8(16, 0), PanicError);
    EXPECT_NO_THROW(m.write8(15, 0));
    Logger::global().setThrowOnDeath(false);
}

TEST(GuestMemoryTest, SeparateMemoriesDoNotAlias)
{
    // The property IO-Bond exists to solve: board and base memory
    // are distinct.
    GuestMemory a("a", 64), b("b", 64);
    a.write64(0, 0xdeadbeef);
    EXPECT_EQ(b.read64(0), 0u);
}

TEST(BumpAllocatorTest, AlignsAndAdvances)
{
    GuestMemory m("m", 16384);
    BumpAllocator alloc(m, 0x10);
    Addr a = alloc.alloc(10, 16);
    Addr b = alloc.alloc(10, 16);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GE(b, a + 10);
    Addr c = alloc.alloc(1, 4096);
    EXPECT_EQ(c % 4096, 0u);
}

TEST(BumpAllocatorTest, ExhaustionPanics)
{
    Logger::global().setThrowOnDeath(true);
    GuestMemory m("m", 128);
    BumpAllocator alloc(m, 0);
    EXPECT_THROW(alloc.alloc(256), PanicError);
    Logger::global().setThrowOnDeath(false);
}

class DmaEngineTest : public ::testing::Test
{
  protected:
    Simulation sim;
};

TEST_F(DmaEngineTest, CopyMovesDataAfterTransferTime)
{
    GuestMemory src("src", 64 * KiB), dst("dst", 64 * KiB);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    std::vector<std::uint8_t> data(4096, 0xab);
    src.writeBlob(0, data);

    bool done = false;
    Tick done_at = 0;
    dma.copy(src, 0, dst, 100, 4096, [&] {
        done = true;
        done_at = sim.now();
    });
    EXPECT_FALSE(done);
    sim.run();
    EXPECT_TRUE(done);
    // 4096 B at 50 Gbps = 655.36 ns.
    EXPECT_NEAR(double(done_at), 655360.0, 2.0);
    EXPECT_EQ(dst.readBlob(100, 4096), data);
    EXPECT_EQ(dma.bytesMoved(), 4096u);
}

TEST_F(DmaEngineTest, TransfersSerializeFifo)
{
    GuestMemory src("src", 64 * KiB), dst("dst", 64 * KiB);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8)); // 1 B/ns
    std::vector<Tick> done_at;
    for (int i = 0; i < 3; ++i) {
        dma.copy(src, 0, dst, 0, 1000,
                 [&] { done_at.push_back(sim.now()); });
    }
    sim.run();
    ASSERT_EQ(done_at.size(), 3u);
    // Each 1000 B transfer takes 1000 ns; strictly serialized.
    EXPECT_NEAR(double(done_at[0]), 1.0e6, 10.0);
    EXPECT_NEAR(double(done_at[1]), 2.0e6, 10.0);
    EXPECT_NEAR(double(done_at[2]), 3.0e6, 10.0);
    EXPECT_EQ(dma.transfers(), 3u);
}

TEST_F(DmaEngineTest, StartupLatencyAdds)
{
    GuestMemory src("src", 4096), dst("dst", 4096);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8), nsToTicks(500));
    Tick done_at = 0;
    dma.copy(src, 0, dst, 0, 1000, [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(double(done_at), 1.5e6, 10.0);
}

TEST_F(DmaEngineTest, AccountOnlyTakesTimeWithoutData)
{
    GuestMemory dst("dst", 64);
    dst.write8(0, 7);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8));
    bool done = false;
    dma.accountOnly(1000, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(dst.read8(0), 7u); // untouched
    EXPECT_EQ(dma.bytesMoved(), 1000u);
}

TEST_F(DmaEngineTest, CompletionOrderPreservedMixedOps)
{
    // Ordering property IO-Bond relies on: a metadata account
    // enqueued after a payload copy completes after it.
    GuestMemory src("src", 8192), dst("dst", 8192);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    std::vector<int> order;
    dma.copy(src, 0, dst, 0, 4096, [&] { order.push_back(1); });
    dma.accountOnly(34, [&] { order.push_back(2); });
    dma.copy(src, 0, dst, 4096, 128, [&] { order.push_back(3); });
    dma.accountOnly(8, [&] { order.push_back(4); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_F(DmaEngineTest, CallbacksChainNewCopiesFifo)
{
    // Submissions from inside a completion callback are
    // well-defined: they queue behind anything already queued and
    // run strictly after the current completion unwinds.
    GuestMemory src("src", 8192), dst("dst", 8192);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8));
    std::vector<int> order;
    dma.copy(src, 0, dst, 0, 100, [&] {
        order.push_back(1);
        dma.copy(src, 0, dst, 200, 100, [&] {
            order.push_back(3);
            dma.copy(src, 0, dst, 400, 100,
                     [&] { order.push_back(4); });
        });
    });
    dma.copy(src, 0, dst, 100, 100, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(dma.transfers(), 4u);
}

TEST_F(DmaEngineTest, RetryFromCallbackWaitsForErrorHandler)
{
    // Regression: the engine used to start the next queued
    // transfer before running the completed transfer's callbacks,
    // so a retry issued from `done` was already in flight when the
    // error handler observed the failure — the handler could no
    // longer tell the failed transfer from the retry.
    GuestMemory src("src", 4096), dst("dst", 4096);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50), nsToTicks(100));
    std::vector<std::string> order;
    dma.setErrorHandler([&] {
        order.push_back(dma.busy() ? "error-after-retry-started"
                                   : "error-before-retry");
    });
    sim.faults().deliver(
        "dma", fault::FaultSpec{fault::FaultKind::DmaFail, 1, 0, 0.0});
    dma.copy(src, 0, dst, 0, 512, [&] {
        order.push_back("done");
        dma.copy(src, 0, dst, 1024, 512,
                 [&] { order.push_back("retry-done"); });
    });
    sim.run();
    EXPECT_EQ(order,
              (std::vector<std::string>{"done", "error-before-retry",
                                        "retry-done"}));
}

TEST_F(DmaEngineTest, CopyvMovesSegmentsAsOneTransfer)
{
    GuestMemory src("src", 8192), dst("dst", 8192);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8), nsToTicks(500));
    std::vector<std::uint8_t> a(1000, 0x11), b(500, 0x22);
    src.writeBlob(0, a);
    src.writeBlob(2048, b);

    Tick done_at = 0;
    dma.copyv({{&src, 0, &dst, 0, 1000},
               {&src, 2048, &dst, 4096, 500},
               {nullptr, 0, nullptr, 0, 100}}, // account-only meta
              [&] { done_at = sim.now(); });
    sim.run();
    // One startup cost over the whole batch: 500 ns + 1600 B at
    // 1 B/ns.
    EXPECT_NEAR(double(done_at), 2.1e6, 10.0);
    EXPECT_EQ(dst.readBlob(0, 1000), a);
    EXPECT_EQ(dst.readBlob(4096, 500), b);
    EXPECT_EQ(dma.transfers(), 1u);
    EXPECT_EQ(dma.bytesMoved(), 1600u);
    EXPECT_EQ(dma.batchedSegments(), 3u);
}

TEST_F(DmaEngineTest, CopyvFaultConsumesWholeTransfer)
{
    // An injected DmaFail drops the whole scatter-gather transfer
    // (hardware descriptors complete or abort as a unit), and
    // consumes exactly one budget unit for it.
    GuestMemory src("src", 4096), dst("dst", 4096);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    src.write8(0, 0x5a);
    src.write8(100, 0xa5);
    sim.faults().deliver(
        "dma", fault::FaultSpec{fault::FaultKind::DmaFail, 1, 0, 0.0});
    unsigned errors = 0;
    dma.setErrorHandler([&] { ++errors; });
    dma.copyv({{&src, 0, &dst, 0, 64}, {&src, 100, &dst, 100, 64}},
              {});
    dma.copy(src, 0, dst, 200, 64, {});
    sim.run();
    EXPECT_EQ(dst.read8(0), 0u);   // dropped as a unit
    EXPECT_EQ(dst.read8(100), 0u);
    EXPECT_EQ(dst.read8(200), 0x5a); // budget spent; next copy lands
    EXPECT_EQ(errors, 1u);
    EXPECT_EQ(dma.faultsInjected(), 1u);
}

TEST(PoolAllocatorTest, AllocFreeReuse)
{
    PoolAllocator pool(0x1000, 4096);
    Addr a = pool.alloc(1000);
    Addr b = pool.alloc(1000);
    ASSERT_NE(a, PoolAllocator::nullAddr);
    ASSERT_NE(b, PoolAllocator::nullAddr);
    EXPECT_NE(a, b);
    pool.free(a);
    Addr c = pool.alloc(900);
    EXPECT_EQ(c, a); // first fit reuses the hole
}

TEST(PoolAllocatorTest, ExhaustionReturnsNull)
{
    PoolAllocator pool(0, 1024);
    EXPECT_NE(pool.alloc(1024), PoolAllocator::nullAddr);
    EXPECT_EQ(pool.alloc(1), PoolAllocator::nullAddr);
}

TEST(PoolAllocatorTest, CoalescingRestoresFullExtent)
{
    PoolAllocator pool(0, 3072);
    Addr a = pool.alloc(1024);
    Addr b = pool.alloc(1024);
    Addr c = pool.alloc(1024);
    ASSERT_NE(c, PoolAllocator::nullAddr);
    pool.free(a);
    pool.free(c);
    pool.free(b); // middle free must merge all three
    EXPECT_EQ(pool.bytesFree(), 3072u);
    EXPECT_NE(pool.alloc(3072), PoolAllocator::nullAddr);
}

TEST(PoolAllocatorTest, AlignmentHonored)
{
    PoolAllocator pool(1, 8192); // deliberately misaligned base
    Addr a = pool.alloc(100, 512);
    ASSERT_NE(a, PoolAllocator::nullAddr);
    EXPECT_EQ(a % 512, 0u);
    pool.free(a);
}

TEST(PoolAllocatorTest, RandomAllocFreeStress)
{
    // Property: no overlap between live blocks; all bytes
    // recovered at the end.
    Rng rng(23);
    PoolAllocator pool(0, 1 * MiB);
    std::map<Addr, Bytes> live;
    for (int i = 0; i < 5000; ++i) {
        if (live.size() < 40 && rng.chance(0.6)) {
            Bytes len = rng.uniformInt(1, 32 * 1024);
            Addr a = pool.alloc(len, 16);
            if (a == PoolAllocator::nullAddr)
                continue;
            // Overlap check against all live blocks.
            for (const auto &[la, ll] : live) {
                ASSERT_TRUE(a + len <= la || la + ll <= a)
                    << "overlap at iteration " << i;
            }
            live[a] = len;
        } else if (!live.empty()) {
            auto it = live.begin();
            std::advance(it,
                         long(rng.uniformInt(0, live.size() - 1)));
            pool.free(it->first);
            live.erase(it);
        }
    }
    for (const auto &[a, l] : live)
        pool.free(a);
    EXPECT_EQ(pool.bytesFree(), 1 * MiB);
    EXPECT_EQ(pool.liveAllocations(), 0u);
}

TEST(PoolAllocatorTest, DoubleFreePanics)
{
    Logger::global().setThrowOnDeath(true);
    PoolAllocator pool(0, 1024);
    Addr a = pool.alloc(64);
    pool.free(a);
    EXPECT_THROW(pool.free(a), PanicError);
    Logger::global().setThrowOnDeath(false);
}

} // namespace
} // namespace bmhive

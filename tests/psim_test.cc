/**
 * @file
 * Tests for the partitioned simulation core (sim/partition.hh):
 *
 *  - partition affinity is captured at construction, either
 *    directly or through a shared per-guest cell that re-homes a
 *    whole object group with one write (migration);
 *  - the windowed round loop advances every queue exactly to the
 *    run limit, including idle partitions;
 *  - the cross-partition mailbox delivers in (when, priority,
 *    source, sequence) order, so event histories — and the RNG
 *    shards they consume — are identical for any thread count;
 *  - the conservative-lookahead contract is enforced (a post
 *    inside the parallel phase below the horizon panics), as are
 *    the enablePartitions() preconditions;
 *  - a small partitioned fleet (per-server switches + fabric,
 *    cross-server block and network traffic, one live migration)
 *    produces byte-identical metrics JSON at 1, 2 and 4 threads —
 *    the same determinism gate bench_fleet runs at scale.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/instance_catalog.hh"
#include "fleet/fleet_controller.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace {

struct Obj : SimObject
{
    using SimObject::SimObject;
};

TEST(PsimScope, PartitionAffinityCapturedAtConstruction)
{
    Simulation sim;
    sim.enablePartitions(3);
    Obj ctl(sim, "ctl");
    EXPECT_EQ(ctl.partition(), 0u);
    EXPECT_EQ(&ctl.eventq(), &sim.partitionQueue(0));

    std::unique_ptr<Obj> o2;
    {
        psim::PartitionScope scope(sim, 2);
        EXPECT_EQ(sim.currentPartition(), 2u);
        o2 = std::make_unique<Obj>(sim, "o2");
    }
    // The scope is gone; the captured affinity is not.
    EXPECT_EQ(sim.currentPartition(), 0u);
    EXPECT_EQ(o2->partition(), 2u);
    EXPECT_EQ(&o2->eventq(), &sim.partitionQueue(2));
    EXPECT_EQ(&o2->rng(), &sim.partitionRng(2));
    EXPECT_NE(&sim.partitionRng(2), &sim.rng());
}

TEST(PsimScope, SharedCellReHomesObjectGroup)
{
    Simulation sim;
    sim.enablePartitions(3);
    unsigned cell = 1;
    std::unique_ptr<Obj> a, b;
    {
        psim::PartitionScope scope(sim, &cell, 0);
        a = std::make_unique<Obj>(sim, "a");
        b = std::make_unique<Obj>(sim, "b");
    }
    EXPECT_EQ(a->partition(), 1u);
    EXPECT_EQ(b->partition(), 1u);
    // One write re-homes the whole group — the migration path.
    cell = 3;
    EXPECT_EQ(a->partition(), 3u);
    EXPECT_EQ(b->partition(), 3u);
    EXPECT_EQ(&a->eventq(), &sim.partitionQueue(3));
}

TEST(PsimRun, WindowedRunAdvancesAllQueuesToLimit)
{
    Simulation sim;
    psim::Params pp;
    pp.lookahead = usToTicks(1);
    sim.enablePartitions(2, pp); // threads=1: phases run inline
    std::vector<std::pair<unsigned, Tick>> fired;
    EventFunctionWrapper c(
        [&] { fired.push_back({0, sim.partitionTick(0)}); }, "c");
    EventFunctionWrapper s1(
        [&] { fired.push_back({1, sim.partitionTick(1)}); }, "s1");
    EventFunctionWrapper s2(
        [&] { fired.push_back({2, sim.partitionTick(2)}); }, "s2");
    sim.partitionQueue(0).schedule(&c, usToTicks(3));
    sim.partitionQueue(1).schedule(&s1, usToTicks(5));
    sim.partitionQueue(2).schedule(&s2, usToTicks(9));
    // Outside any parallel phase, post() degenerates to a direct
    // (deterministic, single-threaded) schedule.
    Tick posted_at = 0;
    sim.post(2, usToTicks(4), [&] { posted_at = sim.now(); });

    const Tick limit = usToTicks(20);
    sim.run(limit);

    EXPECT_EQ(fired, (std::vector<std::pair<unsigned, Tick>>{
                         {0, usToTicks(3)},
                         {1, usToTicks(5)},
                         {2, usToTicks(9)},
                     }));
    EXPECT_EQ(posted_at, usToTicks(4));
    // Every queue — including ones that went idle early — is
    // parked exactly at the limit (the run-to-drain fix, applied
    // per partition by the coordinator's final park loop).
    for (unsigned p = 0; p < sim.partitions(); ++p)
        EXPECT_EQ(sim.partitionTick(p), limit) << "partition " << p;
    // One round per distinct next-event tick: 3, 4, 5, 9 us.
    EXPECT_EQ(sim.metrics().counter("sim.psim.rounds").value(), 4u);
    EXPECT_EQ(sim.metrics().counter("sim.psim.messages").value(),
              0u);
}

/** One run of the mailbox ping scenario: every server partition
 *  runs a periodic chain that draws from its RNG shard and posts a
 *  ping to the next partition at exactly the lookahead horizon.
 *  Each partition's log is touched only by its own executing
 *  thread; the logs (and the round/message counters) must replay
 *  identically for any worker count. */
struct MailboxRun
{
    std::vector<std::vector<std::pair<Tick, unsigned>>> logs;
    std::uint64_t rounds = 0;
    std::uint64_t messages = 0;
};

MailboxRun
runMailboxScenario(unsigned threads)
{
    const unsigned parts = 4;
    Simulation sim(99);
    psim::Params pp;
    pp.threads = threads;
    sim.enablePartitions(parts, pp);
    const Tick step = nsToTicks(300);
    const Tick horizon = sim.lookahead();

    MailboxRun out;
    out.logs.resize(parts + 1);
    std::vector<std::unique_ptr<EventFunctionWrapper>> chains(parts);
    for (unsigned p = 1; p <= parts; ++p) {
        EventQueue &q = sim.partitionQueue(p);
        const unsigned dst = (p % parts) + 1;
        auto *slot = &chains[p - 1];
        *slot = std::make_unique<EventFunctionWrapper>(
            [&sim, &q, &out, p, dst, step, horizon, slot] {
                out.logs[p].push_back(
                    {q.curTick(),
                     unsigned(sim.partitionRng(p).uniformInt(
                         0, 1000))});
                sim.post(dst, q.curTick() + horizon,
                         [&sim, &out, dst, p] {
                             out.logs[dst].push_back(
                                 {sim.now(), 10000 + p});
                         },
                         Event::defaultPri, "ping");
                q.schedule(slot->get(), q.curTick() + step);
            },
            "chain");
        q.schedule(slot->get(), step);
    }
    sim.run(usToTicks(50));
    for (unsigned p = 1; p <= parts; ++p)
        if (chains[p - 1]->scheduled())
            sim.partitionQueue(p).deschedule(chains[p - 1].get());
    out.rounds = sim.metrics().counter("sim.psim.rounds").value();
    out.messages =
        sim.metrics().counter("sim.psim.messages").value();
    return out;
}

TEST(PsimMailbox, OrderingDeterministicAcrossThreadCounts)
{
    MailboxRun base = runMailboxScenario(1);
    EXPECT_GT(base.messages, 0u);
    EXPECT_GT(base.rounds, 0u);
    for (unsigned p = 1; p <= 4; ++p)
        EXPECT_FALSE(base.logs[p].empty()) << "partition " << p;
    for (unsigned threads : {2u, 4u, 8u}) {
        MailboxRun r = runMailboxScenario(threads);
        EXPECT_EQ(r.logs, base.logs) << "threads=" << threads;
        EXPECT_EQ(r.rounds, base.rounds) << "threads=" << threads;
        EXPECT_EQ(r.messages, base.messages)
            << "threads=" << threads;
    }
}

TEST(PsimRun, LookaheadViolationPanics)
{
    Logger::global().setThrowOnDeath(true);
    {
        Simulation sim;
        sim.enablePartitions(2); // threads=1: phase B is inline
        // A cross-partition send from inside the parallel phase
        // below curTick + lookahead would let the destination miss
        // an event it should already have processed.
        EventFunctionWrapper bad(
            [&] { sim.post(2, sim.now() + 1, [] {}); }, "bad");
        sim.partitionQueue(1).schedule(&bad, usToTicks(2));
        EXPECT_THROW(sim.run(usToTicks(10)), PanicError);
    }
    {
        Simulation sim;
        sim.enablePartitions(2);
        EXPECT_THROW(sim.post(7, 0, [] {}), PanicError);
    }
    Logger::global().setThrowOnDeath(false);
}

TEST(PsimRun, EnablePartitionsRequiresPristineSimulation)
{
    Logger::global().setThrowOnDeath(true);
    {
        Simulation sim;
        auto *ev = new OneShotEvent([] {}, "tick");
        sim.eventq().schedule(ev, 10);
        sim.run();
        EXPECT_THROW(sim.enablePartitions(2), PanicError);
    }
    {
        Simulation sim;
        sim.enablePartitions(2);
        EXPECT_THROW(sim.enablePartitions(2), PanicError);
    }
    Logger::global().setThrowOnDeath(false);
}

/** Result of one partitioned fleet run; everything here must be
 *  identical for any thread count. */
struct FleetRun
{
    std::string metrics;
    std::uint64_t rx = 0;
    unsigned finished = 0;
    bool exactly_once = true;
    unsigned migrations = 0;
};

FleetRun
runPartitionedFleet(unsigned threads)
{
    const unsigned servers = 3;
    Simulation sim(77);
    psim::Params pp;
    pp.threads = threads;
    sim.enablePartitions(servers, pp);
    // Constructed after enablePartitions, like bench_fleet: the
    // uplink switch and storage backend live in control partition
    // 0; the controller builds per-server switches and the fabric
    // under per-server partition scopes.
    cloud::VSwitch uplink(sim, "uplink");
    cloud::BlockService storage(sim, "storage", {});
    fleet::FleetParams fp;
    fp.servers = servers;
    fp.server.maxBoards = 2;
    fp.perServerVswitch = true;
    fleet::FleetController fleet(sim, "fleet", uplink, &storage,
                                 fp);

    std::vector<fleet::GuestId> ids;
    for (unsigned i = 0; i < 4; ++i) {
        auto &vol = storage.createVolume("v" + std::to_string(i),
                                         8 * MiB);
        ids.push_back(
            fleet.place(core::InstanceCatalog::evaluated(),
                        0xA0 + i, &vol));
        EXPECT_NE(ids.back(), fleet::invalidGuest);
    }
    sim.run(sim.now() + msToTicks(1));

    FleetRun res;
    // Touched only by the receiving guest's partition thread.
    fleet.guest(ids[1]).net().setRxHandler(
        [&res](const cloud::Packet &) { ++res.rx; });

    // Per-request completion slots: each is written only by the
    // owning guest's partition; the vector grows only between runs.
    std::vector<unsigned> completions;
    unsigned issued = 0;
    std::uint64_t tx_seq = 0;
    auto pump = [&] {
        for (auto id : ids) {
            if (!fleet.alive(id) || fleet.migrating(id))
                continue;
            auto &g = fleet.guest(id);
            for (int k = 0; k < 2; ++k) {
                unsigned rid = issued;
                completions.push_back(0);
                bool ok = g.blk()->read(
                    (rid % 64) * 8, 4 * KiB, g.os().cpu(0),
                    [&completions, rid](std::uint8_t, Addr) {
                        ++completions[rid];
                    });
                if (ok) {
                    ++issued;
                } else {
                    completions.pop_back();
                }
            }
        }
        // Cross-server traffic: guest0's server differs from
        // guest1's (spread placement), so these frames cross the
        // rack fabric between per-server switches.
        if (fleet.alive(ids[0]) && !fleet.migrating(ids[0])) {
            auto &src = fleet.guest(ids[0]);
            for (int k = 0; k < 4; ++k) {
                cloud::Packet p;
                p.src = 0xA0;
                p.dst = 0xA1;
                p.len = 128;
                p.seq = tx_seq++;
                src.net().sendPacket(p, true, src.os().cpu(0));
            }
        }
    };

    bool mig_started = false;
    for (int iter = 0; iter < 12; ++iter) {
        pump();
        if (iter == 5) {
            unsigned from = fleet.serverOf(ids[1]);
            for (unsigned d = 1; d < servers && !mig_started; ++d)
                mig_started =
                    fleet.migrate(ids[1], (from + d) % servers);
            EXPECT_TRUE(mig_started);
        }
        sim.run(sim.now() + usToTicks(500));
    }
    sim.run(sim.now() + msToTicks(10));

    res.migrations = unsigned(fleet.migrationsDone());
    for (unsigned c : completions) {
        res.finished += c;
        if (c != 1)
            res.exactly_once = false;
    }
    EXPECT_EQ(res.finished, issued);
    res.metrics = sim.metrics().toJson();
    return res;
}

TEST(PsimFleet, MetricsByteIdenticalAcrossThreadCounts)
{
    FleetRun base = runPartitionedFleet(1);
    EXPECT_TRUE(base.exactly_once);
    EXPECT_GT(base.finished, 0u);
    EXPECT_GT(base.rx, 0u);
    EXPECT_EQ(base.migrations, 1u);
    for (unsigned threads : {2u, 4u}) {
        FleetRun r = runPartitionedFleet(threads);
        // The determinism gate: the merged metric export is
        // byte-identical, not merely statistically close.
        EXPECT_EQ(r.metrics, base.metrics)
            << "threads=" << threads;
        EXPECT_EQ(r.rx, base.rx) << "threads=" << threads;
        EXPECT_EQ(r.finished, base.finished)
            << "threads=" << threads;
        EXPECT_TRUE(r.exactly_once) << "threads=" << threads;
    }
}

} // namespace
} // namespace bmhive

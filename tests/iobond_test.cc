/**
 * @file
 * Unit tests for IO-Bond, the paper's core hardware contribution:
 * shadow-vring mirroring (direct and indirect chains), the timing
 * of the doorbell -> mailbox -> DMA pipeline, completion
 * write-back, interrupt moderation and suppression, arena
 * accounting across load, reset behaviour, and the ASIC timing
 * variant.
 *
 * The tests drive IO-Bond directly, playing both the guest driver
 * (via a real VirtQueueDriver on the compute board) and the
 * bm-hypervisor backend (via a VirtQueueDevice on the shadow
 * ring) — no service loop in between, so every step is observable.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "fault/fault.hh"
#include "hw/compute_board.hh"
#include "iobond/iobond.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace iobond {
namespace {

using namespace virtio;

class IoBondTest : public ::testing::Test
{
  protected:
    IoBondTest()
        : sim(5),
          board(sim, "board", hw::CpuCatalog::xeonE5_2682v4(),
                32 * MiB, paper::ioBondPciAccess),
          baseMem("base", 64 * MiB),
          bond(sim, "bond", board, baseMem, 0)
    {
        fn = &bond.addNetFunction(3, 0xAB);
        // Guest-side bring-up: program BAR, negotiate, set queues.
        auto &bus = board.pciBus();
        bus.configWrite(3, pci::REG_BAR0, 0xe0000000u, 4);
        bus.configWrite(3, pci::REG_COMMAND,
                        pci::CMD_MEM_SPACE | pci::CMD_BUS_MASTER,
                        2);
        wr(COMMON_GFSELECT, 1, 4);
        wr(COMMON_GF, std::uint32_t(VIRTIO_F_VERSION_1 >> 32), 4);
        for (unsigned q = 0; q < 2; ++q) {
            wr(COMMON_Q_SELECT, q, 2);
            wr(COMMON_Q_SIZE, 8, 2);
            Addr base = 0x10000 + q * 0x1000;
            layouts[q] = VringLayout::contiguous(8, base);
            wr(COMMON_Q_DESCLO,
               std::uint32_t(layouts[q].descAddr()), 4);
            wr(COMMON_Q_AVAILLO,
               std::uint32_t(layouts[q].availAddr()), 4);
            wr(COMMON_Q_USEDLO,
               std::uint32_t(layouts[q].usedAddr()), 4);
            wr(COMMON_Q_MSIX, q, 2);
            wr(COMMON_Q_ENABLE, 1, 2);
        }
        wr(COMMON_STATUS,
           STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_DRIVER_OK,
           1);
        driver = std::make_unique<VirtQueueDriver>(
            board.memory(), layouts[NET_TXQ], /*indirect=*/false);
    }

    void
    wr(Addr off, std::uint32_t v, unsigned size)
    {
        board.pciBus().memWrite(0xe0000000u + off, v, size);
    }

    /** Ring the tx doorbell (functional). */
    void
    kick()
    {
        wr(notifyRegionOffset, NET_TXQ, 4);
    }

    /** Backend view of the tx shadow ring. */
    VirtQueueDevice
    shadowDev()
    {
        return VirtQueueDevice(baseMem,
                               bond.shadowLayout(0, NET_TXQ));
    }

    Simulation sim;
    hw::ComputeBoard board;
    GuestMemory baseMem;
    IoBond bond;
    IoBondFunction *fn = nullptr;
    VringLayout layouts[2];
    std::unique_ptr<VirtQueueDriver> driver;
};

TEST_F(IoBondTest, ShadowRingsCreatedOnDriverOk)
{
    EXPECT_TRUE(bond.shadowReady(0, NET_RXQ));
    EXPECT_TRUE(bond.shadowReady(0, NET_TXQ));
    // Shadow rings live in base memory with their own addresses.
    auto l = bond.shadowLayout(0, NET_TXQ);
    EXPECT_EQ(l.size(), 8u);
    EXPECT_NE(l.descAddr(), layouts[NET_TXQ].descAddr());
    EXPECT_EQ(l.usedIdx(baseMem), 0u);
}

TEST_F(IoBondTest, DirectChainMirroredWithPayload)
{
    // Guest fills a buffer and posts a 2-segment chain.
    GuestMemory &gmem = board.memory();
    std::vector<std::uint8_t> payload(300);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = std::uint8_t(i);
    gmem.writeBlob(0x20000, payload);

    auto head = driver->submit({{0x20000, 300, false}},
                               {{0x21000, 100, true}}, 1);
    ASSERT_TRUE(head.has_value());
    kick();
    sim.run(sim.now() + msToTicks(1));

    // The backend pops the mirrored chain from base memory.
    auto dev = shadowDev();
    auto chain = dev.pop();
    ASSERT_TRUE(chain.has_value());
    ASSERT_EQ(chain->segs.size(), 2u);
    EXPECT_EQ(chain->segs[0].len, 300u);
    EXPECT_FALSE(chain->segs[0].deviceWrites);
    EXPECT_TRUE(chain->segs[1].deviceWrites);
    // Shadow addresses are in base memory and hold the payload.
    EXPECT_EQ(baseMem.readBlob(chain->segs[0].addr, 300), payload);
    EXPECT_EQ(bond.chainsForwarded(), 1u);
}

TEST_F(IoBondTest, IndirectChainMirrored)
{
    VirtQueueDriver ind(board.memory(), layouts[NET_TXQ],
                        /*indirect=*/true, 0x40000);
    board.memory().write64(0x22000, 0x1122334455667788ull);
    auto head = ind.submit({{0x22000, 64, false},
                            {0x23000, 32, false}},
                           {{0x24000, 16, true}}, 2);
    ASSERT_TRUE(head.has_value());
    kick();
    sim.run(sim.now() + msToTicks(1));

    auto dev = shadowDev();
    auto chain = dev.pop();
    ASSERT_TRUE(chain.has_value());
    ASSERT_EQ(chain->segs.size(), 3u);
    EXPECT_EQ(baseMem.read64(chain->segs[0].addr),
              0x1122334455667788ull);
}

TEST_F(IoBondTest, DoorbellToShadowTimingMatchesPaper)
{
    driver->submit({{0x20000, 64, false}}, {}, 1);
    Tick t0 = sim.now();
    kick();
    // Not visible before the mailbox hop + DMA complete.
    sim.run(t0 + paper::ioBondMailboxAccess - 1);
    EXPECT_FALSE(shadowDev().hasWork());
    sim.run(t0 + usToTicks(3));
    EXPECT_TRUE(shadowDev().hasWork());
}

TEST_F(IoBondTest, CompletionWritesBackDataAndRaisesMsi)
{
    // Register an MSI observer on the board bus.
    unsigned msis = 0;
    board.pciBus().setMsiHandler(
        [&](int, unsigned) { ++msis; });

    auto head = driver->submit({{0x20000, 64, false}},
                               {{0x21000, 128, true}}, 7);
    ASSERT_TRUE(head.has_value());
    kick();
    sim.run(sim.now() + msToTicks(1));

    auto dev = shadowDev();
    auto chain = dev.pop();
    ASSERT_TRUE(chain.has_value());
    // Backend writes a reply into the writable shadow segment.
    std::vector<std::uint8_t> reply(128);
    for (std::size_t i = 0; i < reply.size(); ++i)
        reply[i] = std::uint8_t(0xF0 | (i & 0xf));
    baseMem.writeBlob(chain->segs[1].addr, reply);
    dev.pushUsed(chain->head, 64 + 128);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));

    // The guest sees the completion, the data, and one MSI.
    auto done = driver->collectUsed();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].cookie, 7u);
    EXPECT_EQ(done[0].len, 64u + 128u);
    // Write-back budget: only elem.len bytes flow, read seg (64)
    // consumed first, so all 128 writable bytes landed.
    EXPECT_EQ(board.memory().readBlob(0x21000, 128), reply);
    EXPECT_EQ(msis, 1u);
    EXPECT_EQ(bond.completionsReturned(), 1u);
}

TEST_F(IoBondTest, InterruptModerationOneMsiPerBatch)
{
    unsigned msis = 0;
    board.pciBus().setMsiHandler(
        [&](int, unsigned) { ++msis; });
    for (int i = 0; i < 4; ++i)
        driver->submit({{0x20000u + Addr(i) * 256, 64, false}}, {},
                       std::uint64_t(i));
    kick();
    sim.run(sim.now() + msToTicks(1));
    auto dev = shadowDev();
    unsigned popped = 0;
    while (auto c = dev.pop()) {
        dev.pushUsed(c->head, 0);
        ++popped;
    }
    EXPECT_EQ(popped, 4u);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(driver->collectUsed().size(), 4u);
    EXPECT_EQ(msis, 1u); // one MSI for the whole batch
}

TEST_F(IoBondTest, InterruptSuppressionHonored)
{
    unsigned msis = 0;
    board.pciBus().setMsiHandler(
        [&](int, unsigned) { ++msis; });
    driver->setNoInterrupt(true);
    driver->submit({{0x20000, 64, false}}, {}, 1);
    kick();
    sim.run(sim.now() + msToTicks(1));
    auto dev = shadowDev();
    auto c = dev.pop();
    ASSERT_TRUE(c.has_value());
    dev.pushUsed(c->head, 0);
    bond.backendCompleted(0, NET_TXQ);
    sim.run(sim.now() + msToTicks(1));
    // Data/used still returned, but silently.
    EXPECT_EQ(driver->collectUsed().size(), 1u);
    EXPECT_EQ(msis, 0u);
}

TEST_F(IoBondTest, MalformedGuestChainDroppedAndCompleted)
{
    // Craft a loop directly in guest memory.
    GuestMemory &gmem = board.memory();
    auto &l = layouts[NET_TXQ];
    l.writeDesc(gmem, 4, {0x100, 8, VRING_DESC_F_NEXT, 5});
    l.writeDesc(gmem, 5, {0x200, 8, VRING_DESC_F_NEXT, 4});
    std::uint16_t avail = l.availIdx(gmem);
    l.setAvailRing(gmem, avail % l.size(), 4);
    l.setAvailIdx(gmem, avail + 1);
    kick();
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(bond.malformedChains(), 1u);
    EXPECT_FALSE(shadowDev().hasWork());
    // Completed back to the guest with len 0 (not leaked).
    EXPECT_EQ(l.usedIdx(gmem), 1u);
    EXPECT_EQ(l.usedRing(gmem, 0).len, 0u);
}

TEST_F(IoBondTest, ArenaAccountingBalancedUnderLoad)
{
    // Push many chains through; after everything completes the
    // pool must be back to empty (no leaked shadow buffers).
    auto dev = std::make_unique<VirtQueueDevice>(
        baseMem, bond.shadowLayout(0, NET_TXQ));
    unsigned completed = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 6; ++i) {
            driver->submit({{0x20000u + Addr(i) * 512, 256, false}},
                           {}, std::uint64_t(i));
        }
        kick();
        sim.run(sim.now() + msToTicks(1));
        while (auto c = dev->pop()) {
            dev->pushUsed(c->head, 0);
            ++completed;
        }
        bond.backendCompleted(0, NET_TXQ);
        sim.run(sim.now() + msToTicks(1));
        driver->collectUsed();
    }
    EXPECT_EQ(completed, 300u);
    EXPECT_EQ(bond.chainsForwarded(), 300u);
    EXPECT_EQ(bond.completionsReturned(), 300u);
    // DMA moved every payload byte at least once.
    EXPECT_GE(bond.dma().bytesMoved(), 300u * 256u);
}

TEST_F(IoBondTest, ResetDropsInflightAndStopsSync)
{
    driver->submit({{0x20000, 64, false}}, {}, 1);
    kick();
    sim.run(sim.now() + msToTicks(1));
    ASSERT_TRUE(shadowDev().hasWork());

    // Guest resets the device (status = 0).
    wr(COMMON_STATUS, 0, 1);
    EXPECT_FALSE(bond.shadowReady(0, NET_TXQ));
    // Doorbells after reset are ignored (queue disabled).
    kick();
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(bond.malformedChains(), 0u);
}

TEST_F(IoBondTest, AsicParamsCutPciTiming)
{
    IoBondParams asic = IoBondParams::asic();
    EXPECT_EQ(asic.pciAccess, paper::ioBondAsicPciAccess);
    EXPECT_EQ(asic.mailboxAccess, paper::ioBondAsicPciAccess);
    EXPECT_EQ(asic.pciAccess * 4, paper::ioBondPciAccess);
}

TEST_F(IoBondTest, TracerObservesDatapath)
{
    std::vector<std::string> events;
    bond.setTracer([&](const std::string &m) {
        events.push_back(m);
    });
    driver->submit({{0x20000, 64, false}}, {}, 1);
    kick();
    sim.run(sim.now() + msToTicks(1));
    ASSERT_GE(events.size(), 2u);
    EXPECT_NE(events[0].find("doorbell"), std::string::npos);
    EXPECT_NE(events[1].find("published on shadow vring"),
              std::string::npos);
}

TEST_F(IoBondTest, DeviceConfigExposesMac)
{
    // MAC bytes are readable through the device-config window.
    std::uint32_t lo =
        board.pciBus().memRead(0xe0000000u + deviceCfgOffset, 4);
    EXPECT_EQ(lo & 0xff, 0xABu);
}

TEST_F(IoBondTest, BatchedDoorbellIsOneDoorbell)
{
    // A driver batching many chains behind one notify must look
    // like exactly one doorbell to the storm throttle: repeated
    // full-ring bursts must forward everything and classify zero
    // DoorbellStorm faults.
    GuestMemory &gmem = board.memory();
    auto dev = shadowDev();
    unsigned forwarded = 0;
    for (unsigned round = 0; round < 200; ++round) {
        for (unsigned i = 0; i < 8; ++i) {
            auto h = driver->submit(
                {{0x20000u + Addr(i) * 256, 64, false}}, {},
                round * 8 + i);
            ASSERT_TRUE(h.has_value());
        }
        kick(); // one doorbell for the whole burst
        sim.run(sim.now() + usToTicks(50));
        while (auto c = dev.pop()) {
            dev.pushUsed(c->head, 0);
            ++forwarded;
        }
        bond.backendCompleted(0, NET_TXQ);
        sim.run(sim.now() + usToTicks(50));
        for (const auto &c : driver->collectUsed())
            (void)c;
    }
    EXPECT_EQ(forwarded, 1600u);
    EXPECT_EQ(bond.guestFaults(fault::GuestFaultKind::DoorbellStorm),
              0u);
    EXPECT_EQ(bond.chainsForwarded(), 1600u);
    EXPECT_EQ(bond.completionsReturned(), 1600u);
}

/**
 * Regression rig for 16-bit ring-index wraparound: negotiates
 * VIRTIO_RING_F_EVENT_IDX (the fixture's bring-up does not), then
 * pushes far more than 65536 chains through a size-8 queue so
 * every shadow-side cursor and the guest-facing avail_event cross
 * the index wrap several times, with dropped-doorbell faults and
 * crash-recovery sweeps in the hottest region.
 *
 * On the pre-fix logic the device half never advanced the guest's
 * avail_event, so an event-idx driver stopped kicking as soon as
 * its avail index left the first 2^16 window — the queue wedged on
 * round one.
 */
TEST(IoBondWrapTest, EventIdxSurvivesIndexWrapUnderFaults)
{
    Simulation sim(5);
    hw::ComputeBoard board(sim, "board",
                           hw::CpuCatalog::xeonE5_2682v4(), 32 * MiB,
                           paper::ioBondPciAccess);
    GuestMemory baseMem("base", 64 * MiB);
    IoBond bond(sim, "bond", board, baseMem, 0);
    bond.addNetFunction(3, 0xAB);

    auto &bus = board.pciBus();
    auto wr = [&](Addr off, std::uint32_t v, unsigned size) {
        bus.memWrite(0xe0000000u + off, v, size);
    };
    bus.configWrite(3, pci::REG_BAR0, 0xe0000000u, 4);
    bus.configWrite(3, pci::REG_COMMAND,
                    pci::CMD_MEM_SPACE | pci::CMD_BUS_MASTER, 2);
    wr(COMMON_GFSELECT, 0, 4);
    wr(COMMON_GF, std::uint32_t(VIRTIO_RING_F_EVENT_IDX), 4);
    wr(COMMON_GFSELECT, 1, 4);
    wr(COMMON_GF, std::uint32_t(VIRTIO_F_VERSION_1 >> 32), 4);
    VringLayout layouts[2];
    for (unsigned q = 0; q < 2; ++q) {
        wr(COMMON_Q_SELECT, q, 2);
        wr(COMMON_Q_SIZE, 8, 2);
        layouts[q] =
            VringLayout::contiguous(8, 0x10000 + q * 0x1000);
        wr(COMMON_Q_DESCLO, std::uint32_t(layouts[q].descAddr()), 4);
        wr(COMMON_Q_AVAILLO, std::uint32_t(layouts[q].availAddr()),
           4);
        wr(COMMON_Q_USEDLO, std::uint32_t(layouts[q].usedAddr()), 4);
        wr(COMMON_Q_MSIX, q, 2);
        wr(COMMON_Q_ENABLE, 1, 2);
    }
    wr(COMMON_STATUS,
       STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_DRIVER_OK, 1);
    VirtQueueDriver driver(board.memory(), layouts[NET_TXQ],
                           /*indirect=*/false, 0,
                           /*event_idx=*/true);

    auto dev = std::make_unique<VirtQueueDevice>(
        baseMem, bond.shadowLayout(0, NET_TXQ));

    const unsigned kPerRound = 8;
    const unsigned kRounds = 8400; // 67200 chains > 65536
    std::uint64_t nextCookie = 0, expect = 0, completed = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        for (unsigned i = 0; i < kPerRound; ++i) {
            auto h = driver.submit(
                {{0x20000u + Addr(i) * 256, 64, false}}, {},
                nextCookie);
            ASSERT_TRUE(h.has_value()) << "round " << round;
            ++nextCookie;
        }
        bool fault_round = (round % 1024) == 1000;
        if (fault_round) {
            // Lose the doorbell; the resync sweep picks the work
            // up once the injected loss budget is spent.
            sim.faults().deliver(
                "bond",
                fault::FaultSpec{fault::FaultKind::DropDoorbell, 1,
                                 0, 0.0});
        }
        if (driver.shouldKick())
            wr(notifyRegionOffset, NET_TXQ, 4);
        sim.run(sim.now() +
                (fault_round ? usToTicks(200) : usToTicks(50)));
        // Crash-recovery sweeps right around the wrap region.
        if (round >= 8190 && round <= 8194) {
            dev = std::make_unique<VirtQueueDevice>(
                baseMem, bond.shadowLayout(0, NET_TXQ));
            bond.recoverQueue(0, NET_TXQ);
            sim.run(sim.now() + usToTicks(50));
        }
        unsigned got = 0;
        while (auto c = dev->pop()) {
            dev->pushUsed(c->head, 0);
            ++got;
        }
        ASSERT_EQ(got, kPerRound)
            << "round " << round << " avail="
            << layouts[NET_TXQ].availIdx(board.memory());
        bond.backendCompleted(0, NET_TXQ);
        sim.run(sim.now() + usToTicks(50));
        for (const auto &c : driver.collectUsed()) {
            // In-order, exactly-once completion across the wrap.
            ASSERT_EQ(c.cookie, expect) << "round " << round;
            ++expect;
            ++completed;
        }
    }
    EXPECT_EQ(completed, nextCookie);
    EXPECT_EQ(bond.chainsForwarded(), std::uint64_t(completed));
    EXPECT_EQ(bond.completionsReturned(), std::uint64_t(completed));
}

} // namespace
} // namespace iobond
} // namespace bmhive

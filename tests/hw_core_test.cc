/**
 * @file
 * Unit tests for the hardware and core layers: CpuExecutor
 * serialization and speed factors, firmware signing policy, the
 * TDP/cost models, the instance catalog, and BmHiveServer
 * provisioning rules.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/bmhive_server.hh"
#include "core/cost_model.hh"
#include "core/instance_catalog.hh"
#include "hw/compute_board.hh"
#include "hw/cpu_executor.hh"
#include "hw/power.hh"

namespace bmhive {
namespace {

TEST(CpuExecutorTest, SerializesWork)
{
    Simulation sim;
    hw::CpuExecutor cpu(sim, "cpu");
    std::vector<Tick> at;
    for (int i = 0; i < 3; ++i)
        cpu.run(usToTicks(10), [&] { at.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(at.size(), 3u);
    EXPECT_EQ(at[0], usToTicks(10));
    EXPECT_EQ(at[1], usToTicks(20));
    EXPECT_EQ(at[2], usToTicks(30));
    EXPECT_EQ(cpu.busyUntil(), usToTicks(30));
}

TEST(CpuExecutorTest, SpeedFactorScalesWork)
{
    Simulation sim;
    // The paper's E3-1240 v6: 1.31x single-thread vs E5-2682 v4.
    hw::CpuExecutor fast(sim, "fast", 1.31);
    hw::CpuExecutor base(sim, "base", 1.00);
    Tick t_fast = 0, t_base = 0;
    fast.run(usToTicks(131), [&] { t_fast = sim.now(); });
    base.run(usToTicks(131), [&] { t_base = sim.now(); });
    sim.run();
    EXPECT_NEAR(double(t_fast), double(usToTicks(100)), 2000.0);
    EXPECT_EQ(t_base, usToTicks(131));
}

TEST(CpuExecutorTest, UtilizationTracksBusyTime)
{
    Simulation sim;
    hw::CpuExecutor cpu(sim, "cpu");
    cpu.charge(usToTicks(30));
    EventFunctionWrapper marker([] {}, "marker");
    sim.eventq().schedule(&marker, usToTicks(100));
    sim.run();
    EXPECT_NEAR(cpu.utilization(), 0.3, 0.01);
}

TEST(FirmwareTest, SignatureVerification)
{
    const std::uint64_t key = 0xa11baba;
    hw::FirmwareImage good;
    good.version = "2.0";
    good.payloadDigest = 0x1234;
    good.signature = hw::FirmwareImage::sign(0x1234, key);
    EXPECT_TRUE(good.verify(key));
    EXPECT_FALSE(good.verify(key + 1)); // wrong key

    hw::FirmwareImage tampered = good;
    tampered.payloadDigest = 0x9999; // payload swapped
    EXPECT_FALSE(tampered.verify(key));
}

TEST(ComputeBoardTest, FirmwareUpdatePolicy)
{
    Simulation sim;
    hw::ComputeBoard board(sim, "b", hw::CpuCatalog::xeonE3_1240v6(),
                           16 * MiB, usToTicks(0.8));
    EXPECT_EQ(board.firmware().version, "factory-1.0");

    hw::FirmwareImage forged;
    forged.version = "evil";
    forged.payloadDigest = 1;
    forged.signature = 42;
    EXPECT_FALSE(board.updateFirmware(forged, 0xa11baba));
    EXPECT_EQ(board.firmware().version, "factory-1.0");

    hw::FirmwareImage ok;
    ok.version = "2.0";
    ok.payloadDigest = 7;
    ok.signature = hw::FirmwareImage::sign(7, 0xa11baba);
    EXPECT_TRUE(board.updateFirmware(ok, 0xa11baba));
    EXPECT_EQ(board.firmware().version, "2.0");
}

TEST(ComputeBoardTest, ThreadCountMatchesSku)
{
    Simulation sim;
    hw::ComputeBoard board(sim, "b", hw::CpuCatalog::xeonE5_2682v4(),
                           16 * MiB, usToTicks(0.8));
    EXPECT_EQ(board.threadCount(), 32u);
    EXPECT_DOUBLE_EQ(board.thread(0).speedFactor(), 1.0);
    EXPECT_EQ(board.powerState(), hw::BoardPower::Off);
    board.powerOn();
    EXPECT_EQ(board.powerState(), hw::BoardPower::On);
}

TEST(PowerModelTest, Section35Numbers)
{
    auto t = core::CostModel::tdpPerVcpu();
    EXPECT_NEAR(t.bm.wattsPerVcpu(), paper::bmHiveWattsPerVcpu,
                0.12);
    EXPECT_NEAR(t.vm.wattsPerVcpu(), paper::vmServerWattsPerVcpu,
                0.12);
    // BM-Hive pays slightly more per vCPU (FPGA + base CPU)...
    EXPECT_GT(t.bm.wattsPerVcpu(), t.vm.wattsPerVcpu());
    // ...but sells nearly 3x the threads per rack slot.
    auto d = core::CostModel::density(paper::bmHiveBoards,
                                      paper::bmHiveHtPerBoard);
    EXPECT_EQ(d.bmSellableHt, 256u);
    EXPECT_EQ(d.vmSellableHt, 88u);
    EXPECT_NEAR(d.densityRatio, 2.91, 0.01);
}

TEST(InstanceCatalogTest, Table3Invariants)
{
    const auto &rows = core::InstanceCatalog::table3();
    ASSERT_GE(rows.size(), 4u);
    for (const auto &row : rows) {
        EXPECT_FALSE(row.name.empty());
        EXPECT_GT(row.vcpus, 0u);
        EXPECT_GE(row.maxBoardsPerServer, 1u);
        EXPECT_LE(row.maxBoardsPerServer, paper::maxComputeBoards);
        EXPECT_EQ(row.vcpus, row.cpu.threads);
    }
    // The evaluated instance is the Xeon E5-2682 v4 (section 4.1).
    EXPECT_EQ(core::InstanceCatalog::evaluated().cpu.model,
              "Xeon E5-2682 v4");
}

TEST(InstanceCatalogTest, UnknownNameIsFatal)
{
    Logger::global().setThrowOnDeath(true);
    EXPECT_THROW(core::InstanceCatalog::byName("nope"), FatalError);
    Logger::global().setThrowOnDeath(false);
}

class ServerTest : public ::testing::Test
{
  protected:
    ServerTest()
        : sim(3), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, params())
    {
    }

    static core::BmServerParams
    params()
    {
        core::BmServerParams p;
        p.maxBoards = 4;
        return p;
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(ServerTest, GuestGetsDedicatedBoardAndHypervisor)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0x1);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0x2);
    // Physically separate CPUs and memories (the isolation story).
    EXPECT_NE(&a.board(), &b.board());
    EXPECT_NE(&a.board().memory(), &b.board().memory());
    EXPECT_NE(&a.hypervisor(), &b.hypervisor());
    // One bm-hypervisor process per guest, each with its own
    // vSwitch port.
    EXPECT_NE(a.hypervisor().port(), b.hypervisor().port());
}

TEST_F(ServerTest, InstanceCpuIsUsed)
{
    auto &g = server.provision(
        core::InstanceCatalog::byName("ebm.i7.8"), 0x7);
    EXPECT_EQ(g.board().cpu().model, "Core i7-7700K");
    EXPECT_EQ(g.board().threadCount(), 8u);
    EXPECT_GT(g.board().thread(0).speedFactor(), 1.3);
}

TEST_F(ServerTest, ReleaseAllowsReprovision)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0x1);
    server.release(g);
    vswitch.removePort(g.hypervisor().port());
    // The slot (and the MAC) can be reused.
    auto &g2 = server.provision(core::InstanceCatalog::evaluated(),
                                0x1);
    EXPECT_EQ(g2.board().powerState(), hw::BoardPower::On);
}

TEST_F(ServerTest, ShadowRegionsDoNotOverlap)
{
    // Provision several guests with storage and verify each one's
    // I/O works — overlapping shadow regions would corrupt rings.
    std::vector<core::BmGuest *> gs;
    for (unsigned i = 0; i < 4; ++i) {
        auto &vol = storage.createVolume("v" + std::to_string(i),
                                         8 * MiB);
        gs.push_back(&server.provision(
            core::InstanceCatalog::evaluated(), 0x10 + i, &vol));
    }
    sim.run(sim.now() + msToTicks(1));
    unsigned done = 0;
    for (unsigned i = 0; i < 4; ++i) {
        std::vector<std::uint8_t> data(512,
                                       std::uint8_t(0x30 + i));
        gs[i]->blk()->write(
            8, 512, &data, gs[i]->os().cpu(1),
            [&done](std::uint8_t st, Addr) {
                EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
                ++done;
            });
    }
    sim.run(sim.now() + msToTicks(30));
    EXPECT_EQ(done, 4u);
    // Each guest's volume got its own byte pattern.
    for (unsigned i = 0; i < 4; ++i) {
        auto blob = storage.createVolume("probe" + std::to_string(i),
                                         512); // placeholder
        (void)blob;
    }
}

TEST_F(ServerTest, TooManyBoardsIsFatal)
{
    Logger::global().setThrowOnDeath(true);
    for (int i = 0; i < 4; ++i)
        server.provision(core::InstanceCatalog::evaluated(),
                         0x20 + i);
    EXPECT_THROW(server.provision(
                     core::InstanceCatalog::evaluated(), 0x99),
                 FatalError);
    Logger::global().setThrowOnDeath(false);
}

TEST(ServerParamTest, RejectsMoreThan16Boards)
{
    Logger::global().setThrowOnDeath(true);
    Simulation sim;
    cloud::VSwitch vs(sim, "vs");
    core::BmServerParams p;
    p.maxBoards = 17;
    EXPECT_THROW(core::BmHiveServer(sim, "srv", vs, nullptr, p),
                 FatalError);
    Logger::global().setThrowOnDeath(false);
}

} // namespace
} // namespace bmhive

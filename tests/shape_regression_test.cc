/**
 * @file
 * Shape-regression tests: fast (seconds-scale) versions of the
 * headline experiments, asserting that the paper's qualitative
 * results still hold after any model change. The full-length
 * regenerations live in bench/; these are the tripwires.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "core/cost_model.hh"
#include "vmsim/nested.hh"
#include "workloads/app_server.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"
#include "workloads/spec.hh"

namespace bmhive {
namespace {

using namespace workloads;

TEST(ShapeRegression, NginxBmBeatsVmByPaperFactor)
{
    AppBenchParams p;
    p.clients = 100;
    p.window = msToTicks(60);

    bench::Testbed bm_bed(7001);
    auto bm_g = bm_bed.bmGuest(0xA, 0);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
    AppServerBench bm_bench(bm_bed.sim, "ab", bm_g,
                            bm_bed.vswitch, 0xC11E,
                            AppProfile::nginx(), p);
    auto bm = bm_bench.run();

    bench::Testbed vm_bed(7002);
    auto vm_g = vm_bed.vmGuest(0xA, 0);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
    AppServerBench vm_bench(vm_bed.sim, "ab", vm_g,
                            vm_bed.vswitch, 0xC11E,
                            AppProfile::nginx(), p);
    auto vm = vm_bench.run();

    double ratio = bm.rps / vm.rps;
    EXPECT_GE(ratio, 1.40) << bm.rps << " vs " << vm.rps;
    EXPECT_LE(ratio, 1.75);
    // Response time ~30% shorter on bm.
    EXPECT_LT(bm.avgMs, vm.avgMs * 0.80);
}

TEST(ShapeRegression, UdpPpsBothAboveThreePointTwoMillion)
{
    auto run_pair = [](bool bm) {
        bench::Testbed bed(bm ? 7003 : 7004);
        auto a = bm ? bed.bmGuest(0xA, 0) : bed.vmGuest(0xA, 0);
        auto b = bm ? bed.bmGuest(0xB, 0) : bed.vmGuest(0xB, 0);
        bed.sim.run(bed.sim.now() + msToTicks(1));
        PacketFloodParams p;
        p.flows = 14;
        p.batch = 4;
        p.warmup = msToTicks(3);
        p.window = msToTicks(15);
        PacketFlood flood(bed.sim, "f", a, b, p);
        return flood.run().pps;
    };
    double bm = run_pair(true);
    double vm = run_pair(false);
    EXPECT_GT(bm, 3.2e6);
    EXPECT_GT(vm, 3.2e6);
    // vm slightly ahead (suppressed doorbells).
    EXPECT_GT(vm, bm * 0.98);
}

TEST(ShapeRegression, StorageVmSlowerWithHeavierTail)
{
    FioParams p;
    p.jobs = 8;
    p.window = msToTicks(600);

    bench::Testbed bm_bed(7005);
    auto bm_g = bm_bed.bmGuest(0xA, 128);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
    FioRunner bm_fio(bm_bed.sim, "fio", bm_g, p);
    auto bm = bm_fio.run();

    bench::Testbed vm_bed(7006);
    auto vm_g = vm_bed.vmGuest(0xA, 128);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
    FioRunner vm_fio(vm_bed.sim, "fio", vm_g, p);
    auto vm = vm_fio.run();

    EXPECT_GT(vm.avgUs, bm.avgUs * 1.08);
    EXPECT_LT(vm.avgUs, bm.avgUs * 1.45);
    EXPECT_GT(vm.p999Us, bm.p999Us * 1.8);
    EXPECT_GT(bm.iops, 20e3);
}

TEST(ShapeRegression, DpdkLatencyVmBelowBm)
{
    bench::Testbed bm_bed(7007);
    auto a = bm_bed.bmGuest(0xA, 0);
    auto b = bm_bed.bmGuest(0xB, 0);
    bm_bed.sim.run(bm_bed.sim.now() + msToTicks(1));
    PingPongParams p;
    p.samples = 300;
    p.stack = NetStack::Dpdk;
    auto bm = PingPong(bm_bed.sim, "pp", a, b, p).run();

    bench::Testbed vm_bed(7008);
    auto va = vm_bed.vmGuest(0xA, 0);
    auto vb = vm_bed.vmGuest(0xB, 0);
    vm_bed.sim.run(vm_bed.sim.now() + msToTicks(1));
    auto vm = PingPong(vm_bed.sim, "pp", va, vb, p).run();

    // The IO-Bond register hops show up under kernel bypass.
    EXPECT_GT(bm.avgUs, vm.avgUs);
    EXPECT_LT(bm.avgUs - vm.avgUs, 5.0);
}

TEST(ShapeRegression, SpecAndStreamBands)
{
    Rng rng(7009);
    double gp = 1, gb = 1, gv = 1;
    unsigned n = 0;
    for (const auto &c : specCint2006()) {
        gp *= specScore(c, Platform::Physical, rng);
        gb *= specScore(c, Platform::BareMetal, rng);
        gv *= specScore(c, Platform::Vm, rng);
        ++n;
    }
    gp = std::pow(gp, 1.0 / n);
    gb = std::pow(gb, 1.0 / n);
    gv = std::pow(gv, 1.0 / n);
    EXPECT_NEAR(gb / gp, 1.04, 0.015);
    EXPECT_NEAR(gv / gp, 0.96, 0.015);
    for (const auto &r : streamBandwidth(rng))
        EXPECT_NEAR(r.vmGBs / r.bareMetalGBs, 0.978, 0.02);
}

TEST(ShapeRegression, NestedVirtBands)
{
    EXPECT_NEAR(vmsim::nestedEfficiency(
                    vmsim::cpuWorkloadExitRate),
                0.80, 0.04);
    EXPECT_NEAR(vmsim::nestedEfficiency(
                    vmsim::ioWorkloadExitRate),
                0.25, 0.04);
}

TEST(ShapeRegression, CostModelBands)
{
    auto t = core::CostModel::tdpPerVcpu();
    EXPECT_NEAR(t.bm.wattsPerVcpu(), 3.17, 0.1);
    EXPECT_NEAR(t.vm.wattsPerVcpu(), 3.06, 0.1);
}

} // namespace
} // namespace bmhive

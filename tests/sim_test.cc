/**
 * @file
 * Unit tests for the discrete-event core: ordering, priorities,
 * rescheduling, one-shot events, and SimObject plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/logging.hh"
#include "sim/eventq.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper e1([&] { order.push_back(1); }, "e1");
    EventFunctionWrapper e2([&] { order.push_back(2); }, "e2");
    EventFunctionWrapper e3([&] { order.push_back(3); }, "e3");
    q.schedule(&e2, 200);
    q.schedule(&e1, 100);
    q.schedule(&e3, 300);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.schedule(&c, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, PriorityOrdersSameTick)
{
    EventQueue q;
    std::vector<char> order;
    EventFunctionWrapper poll([&] { order.push_back('p'); }, "poll",
                              Event::pollPri);
    EventFunctionWrapper stats([&] { order.push_back('s'); },
                               "stats", Event::statsPri);
    EventFunctionWrapper norm([&] { order.push_back('n'); }, "norm");
    q.schedule(&stats, 10);
    q.schedule(&poll, 10);
    q.schedule(&norm, 10);
    q.run();
    EXPECT_EQ(order, (std::vector<char>{'n', 'p', 's'}));
}

TEST(EventQueueTest, DescheduleRemovesEvent)
{
    EventQueue q;
    bool ran = false;
    EventFunctionWrapper e([&] { ran = true; }, "e");
    q.schedule(&e, 10);
    q.deschedule(&e);
    EXPECT_FALSE(e.scheduled());
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

// A descheduled event may be destroyed immediately, even though
// its stale entry is still in the heap; the queue must drop that
// entry without touching the dead event. This is how a demoted
// passthrough poller tears down mid-simulation (ASan catches any
// regression here as a use-after-free).
TEST(EventQueueTest, DescheduledEventCanBeDestroyedBeforePop)
{
    EventQueue q;
    bool ran = false;
    EventFunctionWrapper keep([&] { ran = true; }, "keep");
    q.schedule(&keep, 20);
    {
        EventFunctionWrapper doomed([] { FAIL(); }, "doomed");
        q.schedule(&doomed, 10);
        q.deschedule(&doomed);
    } // doomed destroyed; its heap entry is still pending
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.processedCount(), 1u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = q.curTick(); }, "e");
    q.schedule(&e, 100);
    q.reschedule(&e, 500);
    q.run();
    EXPECT_EQ(fired, 500u);
}

TEST(EventQueueTest, RescheduleEarlierWorks)
{
    EventQueue q;
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = q.curTick(); }, "e");
    q.schedule(&e, 500);
    q.reschedule(&e, 100);
    q.run();
    EXPECT_EQ(fired, 100u);
    EXPECT_EQ(q.processedCount(), 1u);
}

TEST(EventQueueTest, RunWithLimitStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper e1([&] { ++count; }, "e1");
    EventFunctionWrapper e2([&] { ++count; }, "e2");
    q.schedule(&e1, 100);
    q.schedule(&e2, 2000);
    q.run(1000);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.curTick(), 1000u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(count, 2);
}

// Regression for the drained-queue fix: run(limit) must land
// curTick exactly on the limit even when the queue empties first.
// Fixed-window callers (fleet pumps, partition rounds) read curTick
// after the window and would otherwise observe the tick of whatever
// event happened to run last — or no advance at all on an idle
// window. The pre-fix run() returned as soon as the heap drained.
TEST(EventQueueTest, RunAdvancesToLimitWhenDrained)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper e([&] { ++count; }, "e");
    q.schedule(&e, 100);
    q.run(1000);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.curTick(), 1000u);
    // An already-empty queue owes the caller the window too.
    q.run(2500);
    EXPECT_EQ(q.curTick(), 2500u);
    // Run-to-drain (no limit) must NOT teleport time to maxTick.
    q.run();
    EXPECT_EQ(q.curTick(), 2500u);
    // And events scheduled after an idle window run normally.
    EventFunctionWrapper e2([&] { ++count; }, "e2");
    q.schedule(&e2, 3000);
    q.run(4000);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.curTick(), 4000u);
}

// Regression for the lazy-deletion bloat fix: a reschedule-heavy
// timer (the adaptive poll governor re-arms constantly) leaves one
// stale heap entry per move. Entries buried below the top survive
// skim(), so without compaction the heap and the stale-sequence set
// grow linearly with reschedules while only one event is live.
TEST(EventQueueTest, CompactionBoundsHeap)
{
    EventQueue q;
    EventFunctionWrapper timer([] {}, "timer");
    EventFunctionWrapper sentinel([] {}, "sentinel");
    q.schedule(&sentinel, 1'000'000);
    q.schedule(&timer, 1);
    const int moves = 10000;
    for (int i = 2; i <= moves; ++i)
        q.reschedule(&timer, Tick(i));
    EXPECT_EQ(q.size(), 2u);
    // Pre-fix: heapSize() ~= moves. With compaction at >50% stale
    // the heap never holds more than the live events plus one
    // sub-threshold batch of stale entries.
    EXPECT_LE(q.heapSize(),
              q.size() + 2 * EventQueue::compactMinStale);
    EXPECT_GT(q.compactions(), 0u);
    // The surviving entries are the right ones.
    Tick fired = 0;
    q.deschedule(&sentinel);
    EventFunctionWrapper probe([&] { fired = q.curTick(); }, "probe");
    q.reschedule(&timer, Tick(moves)); // no-op move keeps it live
    q.schedule(&probe, Tick(moves) + 1);
    q.run();
    EXPECT_EQ(fired, Tick(moves) + 1);
    EXPECT_TRUE(q.empty());
}

TEST(SimulationTest, CompactionCounterExported)
{
    // The queue's compaction hook feeds sim.eventq.compactions.
    Simulation sim;
    EventFunctionWrapper timer([] {}, "timer");
    sim.eventq().schedule(&timer, 1);
    for (int i = 2; i <= 2000; ++i)
        sim.eventq().reschedule(&timer, Tick(i));
    sim.eventq().deschedule(&timer);
    EXPECT_EQ(sim.metrics().counter("sim.eventq.compactions").value(),
              sim.eventq().compactions());
    EXPECT_GT(sim.eventq().compactions(), 0u);
}

TEST(EventQueueTest, ScheduleAtCurTickFromProcess)
{
    // A handler may schedule work at the very tick being processed;
    // it runs later within the same tick, in insertion order, and
    // time does not advance in between.
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper tail(
        [&] {
            order.push_back(2);
            EXPECT_EQ(q.curTick(), 100u);
        },
        "tail");
    EventFunctionWrapper head(
        [&] {
            order.push_back(1);
            q.schedule(&tail, q.curTick());
        },
        "head");
    q.schedule(&head, 100);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.curTick(), 100u);
}

TEST(EventQueueTest, DescheduleSameTickPendingMidRun)
{
    // A handler cancels a sibling already pending at the same tick:
    // the sibling's stale entry must be skimmed, never executed,
    // and the queue keeps running events behind it.
    EventQueue q;
    bool victim_ran = false;
    bool later_ran = false;
    EventFunctionWrapper victim([&] { victim_ran = true; },
                                "victim");
    EventFunctionWrapper killer([&] { q.deschedule(&victim); },
                                "killer");
    EventFunctionWrapper later([&] { later_ran = true; }, "later");
    q.schedule(&killer, 10);
    q.schedule(&victim, 10);
    q.schedule(&later, 20);
    q.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_FALSE(victim.scheduled());
    EXPECT_TRUE(later_ran);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.processedCount(), 2u);
}

TEST(EventQueueTest, NextTickSkimsStaleEntriesThroughConstRef)
{
    // The coordinator's window negotiation calls nextTick() on
    // const queues; it must see through stale front entries (and
    // physically shed them) rather than report a cancelled event.
    EventQueue q;
    EventFunctionWrapper a([] {}, "a"), b([] {}, "b");
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    const EventQueue &cq = q;
    EXPECT_EQ(cq.nextTick(), 20u);
    EXPECT_EQ(cq.heapSize(), 1u);
    q.deschedule(&b);
    EXPECT_EQ(cq.nextTick(), maxTick);
    EXPECT_TRUE(cq.empty());
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    EventFunctionWrapper second(
        [&] { times.push_back(q.curTick()); }, "second");
    EventFunctionWrapper first(
        [&] {
            times.push_back(q.curTick());
            q.schedule(&second, q.curTick() + 50);
        },
        "first");
    q.schedule(&first, 100);
    q.run();
    EXPECT_EQ(times, (std::vector<Tick>{100, 150}));
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    Logger::global().setThrowOnDeath(true);
    EventQueue q;
    EventFunctionWrapper mover([] {}, "mover");
    EventFunctionWrapper late([] {}, "late");
    q.schedule(&mover, 100);
    q.run();
    EXPECT_THROW(q.schedule(&late, 50), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(EventQueueTest, DoubleSchedulePanics)
{
    Logger::global().setThrowOnDeath(true);
    EventQueue q;
    EventFunctionWrapper e([] {}, "e");
    q.schedule(&e, 10);
    EXPECT_THROW(q.schedule(&e, 20), PanicError);
    q.deschedule(&e);
    Logger::global().setThrowOnDeath(false);
}

TEST(EventQueueTest, OneShotSelfDeletes)
{
    EventQueue q;
    int runs = 0;
    auto *ev = new OneShotEvent([&] { ++runs; }, "oneshot");
    q.schedule(ev, 10);
    q.run();
    EXPECT_EQ(runs, 1);
    // No leak checker here, but ASAN builds catch a double free /
    // leak; the event must not be touched again.
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    // Property: with random schedule times, execution times are
    // monotonically non-decreasing.
    EventQueue q;
    Rng rng(11);
    std::vector<Tick> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 2000; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] { fired.push_back(q.curTick()); }, "e"));
        q.schedule(events.back().get(),
                   Tick(rng.uniformInt(0, 1000000)));
    }
    q.run();
    ASSERT_EQ(fired.size(), 2000u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1], fired[i]);
}

TEST(SimulationTest, SeedReproducibility)
{
    auto run_once = [](std::uint64_t seed) {
        Simulation sim(seed);
        std::vector<double> vals;
        for (int i = 0; i < 50; ++i)
            vals.push_back(sim.rng().uniform());
        return vals;
    };
    EXPECT_EQ(run_once(3), run_once(3));
    EXPECT_NE(run_once(3), run_once(4));
}

TEST(SimObjectTest, ScheduleInUsesRelativeDelay)
{
    Simulation sim;
    struct Obj : SimObject
    {
        using SimObject::SimObject;
    } obj(sim, "obj");
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = sim.now(); }, "e");
    obj.scheduleIn(&e, 250);
    sim.run();
    EXPECT_EQ(fired, 250u);
    EXPECT_EQ(obj.name(), "obj");
}

} // namespace
} // namespace bmhive

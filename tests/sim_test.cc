/**
 * @file
 * Unit tests for the discrete-event core: ordering, priorities,
 * rescheduling, one-shot events, and SimObject plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/logging.hh"
#include "sim/eventq.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper e1([&] { order.push_back(1); }, "e1");
    EventFunctionWrapper e2([&] { order.push_back(2); }, "e2");
    EventFunctionWrapper e3([&] { order.push_back(3); }, "e3");
    q.schedule(&e2, 200);
    q.schedule(&e1, 100);
    q.schedule(&e3, 300);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 300u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.schedule(&c, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, PriorityOrdersSameTick)
{
    EventQueue q;
    std::vector<char> order;
    EventFunctionWrapper poll([&] { order.push_back('p'); }, "poll",
                              Event::pollPri);
    EventFunctionWrapper stats([&] { order.push_back('s'); },
                               "stats", Event::statsPri);
    EventFunctionWrapper norm([&] { order.push_back('n'); }, "norm");
    q.schedule(&stats, 10);
    q.schedule(&poll, 10);
    q.schedule(&norm, 10);
    q.run();
    EXPECT_EQ(order, (std::vector<char>{'n', 'p', 's'}));
}

TEST(EventQueueTest, DescheduleRemovesEvent)
{
    EventQueue q;
    bool ran = false;
    EventFunctionWrapper e([&] { ran = true; }, "e");
    q.schedule(&e, 10);
    q.deschedule(&e);
    EXPECT_FALSE(e.scheduled());
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(q.empty());
}

// A descheduled event may be destroyed immediately, even though
// its stale entry is still in the heap; the queue must drop that
// entry without touching the dead event. This is how a demoted
// passthrough poller tears down mid-simulation (ASan catches any
// regression here as a use-after-free).
TEST(EventQueueTest, DescheduledEventCanBeDestroyedBeforePop)
{
    EventQueue q;
    bool ran = false;
    EventFunctionWrapper keep([&] { ran = true; }, "keep");
    q.schedule(&keep, 20);
    {
        EventFunctionWrapper doomed([] { FAIL(); }, "doomed");
        q.schedule(&doomed, 10);
        q.deschedule(&doomed);
    } // doomed destroyed; its heap entry is still pending
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.processedCount(), 1u);
}

TEST(EventQueueTest, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = q.curTick(); }, "e");
    q.schedule(&e, 100);
    q.reschedule(&e, 500);
    q.run();
    EXPECT_EQ(fired, 500u);
}

TEST(EventQueueTest, RescheduleEarlierWorks)
{
    EventQueue q;
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = q.curTick(); }, "e");
    q.schedule(&e, 500);
    q.reschedule(&e, 100);
    q.run();
    EXPECT_EQ(fired, 100u);
    EXPECT_EQ(q.processedCount(), 1u);
}

TEST(EventQueueTest, RunWithLimitStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    EventFunctionWrapper e1([&] { ++count; }, "e1");
    EventFunctionWrapper e2([&] { ++count; }, "e2");
    q.schedule(&e1, 100);
    q.schedule(&e2, 2000);
    q.run(1000);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.curTick(), 1000u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> times;
    EventFunctionWrapper second(
        [&] { times.push_back(q.curTick()); }, "second");
    EventFunctionWrapper first(
        [&] {
            times.push_back(q.curTick());
            q.schedule(&second, q.curTick() + 50);
        },
        "first");
    q.schedule(&first, 100);
    q.run();
    EXPECT_EQ(times, (std::vector<Tick>{100, 150}));
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    Logger::global().setThrowOnDeath(true);
    EventQueue q;
    EventFunctionWrapper mover([] {}, "mover");
    EventFunctionWrapper late([] {}, "late");
    q.schedule(&mover, 100);
    q.run();
    EXPECT_THROW(q.schedule(&late, 50), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(EventQueueTest, DoubleSchedulePanics)
{
    Logger::global().setThrowOnDeath(true);
    EventQueue q;
    EventFunctionWrapper e([] {}, "e");
    q.schedule(&e, 10);
    EXPECT_THROW(q.schedule(&e, 20), PanicError);
    q.deschedule(&e);
    Logger::global().setThrowOnDeath(false);
}

TEST(EventQueueTest, OneShotSelfDeletes)
{
    EventQueue q;
    int runs = 0;
    auto *ev = new OneShotEvent([&] { ++runs; }, "oneshot");
    q.schedule(ev, 10);
    q.run();
    EXPECT_EQ(runs, 1);
    // No leak checker here, but ASAN builds catch a double free /
    // leak; the event must not be touched again.
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    // Property: with random schedule times, execution times are
    // monotonically non-decreasing.
    EventQueue q;
    Rng rng(11);
    std::vector<Tick> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 2000; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&] { fired.push_back(q.curTick()); }, "e"));
        q.schedule(events.back().get(),
                   Tick(rng.uniformInt(0, 1000000)));
    }
    q.run();
    ASSERT_EQ(fired.size(), 2000u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1], fired[i]);
}

TEST(SimulationTest, SeedReproducibility)
{
    auto run_once = [](std::uint64_t seed) {
        Simulation sim(seed);
        std::vector<double> vals;
        for (int i = 0; i < 50; ++i)
            vals.push_back(sim.rng().uniform());
        return vals;
    };
    EXPECT_EQ(run_once(3), run_once(3));
    EXPECT_NE(run_once(3), run_once(4));
}

TEST(SimObjectTest, ScheduleInUsesRelativeDelay)
{
    Simulation sim;
    struct Obj : SimObject
    {
        using SimObject::SimObject;
    } obj(sim, "obj");
    Tick fired = 0;
    EventFunctionWrapper e([&] { fired = sim.now(); }, "e");
    obj.scheduleIn(&e, 250);
    sim.run();
    EXPECT_EQ(fired, 250u);
    EXPECT_EQ(obj.name(), "obj");
}

} // namespace
} // namespace bmhive

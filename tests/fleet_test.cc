/**
 * @file
 * Rack-scale fleet controller tests:
 *
 *  - placement spreads guests across servers (free slots dominate,
 *    same-class anti-affinity breaks ties);
 *  - live migration moves a loaded guest between base servers with
 *    every block request completing exactly once (requests in
 *    flight at drain, deferred during the blackout, and issued
 *    after resume all included);
 *  - the watchdog/drain race: a backend crash mid-migration aborts
 *    and rolls back cleanly (this test FAILS if the watchdog's
 *    migration guard is removed — the respawn path would swallow
 *    the crash and no abort would happen), and the unguarded
 *    behaviour is demonstrated via the test hook;
 *  - reactive failover on base-server power loss and on fabric
 *    partitions past the fencing threshold (with the heal-in-time
 *    no-op counterpart);
 *  - planned board hot-swap;
 *  - flight-dump filenames are distinct across servers hosting the
 *    same guest slot index (the shared-dump-dir collision fix).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/instance_catalog.hh"
#include "fleet/fleet_controller.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace {

using core::InstanceCatalog;
using fleet::FleetController;
using fleet::FleetParams;
using fleet::GuestId;
using fleet::invalidGuest;

/** A cloud segment plus an N-server fleet sharing it. */
struct FleetBed
{
    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    std::unique_ptr<FleetController> fleet;

    explicit FleetBed(std::uint64_t seed, unsigned servers = 2,
                      unsigned boards = 2, FleetParams fp = {})
        : sim(seed), vswitch(sim, "vswitch"),
          storage(sim, "storage", {})
    {
        fp.servers = servers;
        fp.server.maxBoards = boards;
        fleet = std::make_unique<FleetController>(
            sim, "fleet", vswitch, &storage, fp);
    }

    GuestId
    addGuest(cloud::MacAddr mac, Bytes vol_mib = 8)
    {
        cloud::Volume *vol = nullptr;
        if (vol_mib > 0)
            vol = &storage.createVolume(
                "vol" + std::to_string(mac), vol_mib * MiB);
        return fleet->place(InstanceCatalog::evaluated(), mac,
                            vol);
    }

    void
    runFor(double us)
    {
        sim.run(sim.now() + usToTicks(us));
    }
};

/** Issues block reads and counts completions per request, so a
 *  lost request shows as 0 and a duplicated one as >1. */
struct BlkLoad
{
    std::vector<unsigned> completions;
    unsigned issued = 0;
    unsigned finished = 0;

    void
    issue(core::BmGuest &g, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            unsigned id = issued++;
            completions.push_back(0);
            bool ok = g.blk()->read(
                (id % 64) * 8, 4096, g.os().cpu(0),
                [this, id](std::uint8_t, Addr) {
                    ++completions[id];
                    ++finished;
                });
            ASSERT_TRUE(ok);
        }
    }

    /** Every issued request completed exactly once. */
    void
    expectExactlyOnce() const
    {
        EXPECT_EQ(finished, issued);
        for (unsigned i = 0; i < completions.size(); ++i)
            EXPECT_EQ(completions[i], 1u)
                << "request " << i << " completed "
                << completions[i] << " times";
    }
};

TEST(FleetPlacement, SpreadsAcrossServers)
{
    FleetBed bed(101, 3, 2);
    GuestId a = bed.addGuest(0xA1, 0);
    GuestId b = bed.addGuest(0xA2, 0);
    GuestId c = bed.addGuest(0xA3, 0);
    ASSERT_NE(a, invalidGuest);
    ASSERT_NE(b, invalidGuest);
    ASSERT_NE(c, invalidGuest);
    // Same class, equal free slots: anti-affinity spreads them
    // one per server before any server takes a second guest.
    EXPECT_NE(bed.fleet->serverOf(a), bed.fleet->serverOf(b));
    EXPECT_NE(bed.fleet->serverOf(a), bed.fleet->serverOf(c));
    EXPECT_NE(bed.fleet->serverOf(b), bed.fleet->serverOf(c));
    EXPECT_EQ(bed.fleet->placements(), 3u);

    // Fill up: 6 slots total, 3 more placements land, then none.
    EXPECT_NE(bed.addGuest(0xA4, 0), invalidGuest);
    EXPECT_NE(bed.addGuest(0xA5, 0), invalidGuest);
    EXPECT_NE(bed.addGuest(0xA6, 0), invalidGuest);
    EXPECT_EQ(bed.addGuest(0xA7, 0), invalidGuest);
}

TEST(FleetMigration, LiveMigrationExactlyOnce)
{
    FleetBed bed(202, 2, 2);
    GuestId id = bed.addGuest(0xB1);
    ASSERT_NE(id, invalidGuest);
    ASSERT_EQ(bed.fleet->serverOf(id), 0u);
    bed.runFor(1000);

    BlkLoad load;
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(50); // a real in-flight window at drain time

    bool called = false, ok = false;
    ASSERT_TRUE(bed.fleet->migrate(id, 1, [&](bool r) {
        called = true;
        ok = r;
    }));
    EXPECT_TRUE(bed.fleet->migrating(id));
    // Requests issued during the blackout: doorbells deferred,
    // swept into the rebased rings at resume.
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(5000);

    EXPECT_TRUE(called);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(bed.fleet->migrating(id));
    EXPECT_EQ(bed.fleet->serverOf(id), 1u);
    EXPECT_EQ(bed.fleet->migrationsDone(), 1u);
    EXPECT_EQ(bed.fleet->blackout().count(), 1u);
    EXPECT_GT(bed.fleet->blackout().maxUs(), 0.0);

    // The guest is fully serviceable on the target.
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(5000);
    load.expectExactlyOnce();
    EXPECT_EQ(
        bed.fleet->guest(id).hypervisor().migrations(), 1u);
}

/** The satellite-1 regression: a backend crash while the drain is
 *  in flight must abort the migration and roll back — never let
 *  the watchdog respawn (republishing the in-flight window on the
 *  source) while the target is about to replay the same window.
 *  Removing the migration guard from BmHiveServer::watchdogCheck
 *  makes this test fail: the respawn swallows the crash and the
 *  abort below never happens. */
TEST(FleetMigration, WatchdogRaceAbortsCleanly)
{
    FleetParams fp;
    // Watchdog (100us default) strictly faster than the settle
    // poll, so the watchdog is the first observer of the crash.
    fp.settleRetry = usToTicks(400);
    FleetBed bed(303, 2, 2, fp);
    GuestId id = bed.addGuest(0xC1);
    ASSERT_NE(id, invalidGuest);
    bed.runFor(1000);

    BlkLoad load;
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(20); // block I/O now genuinely in flight

    bool called = false, ok = true;
    hv::BmHypervisor &hv = bed.fleet->guest(id).hypervisor();
    ASSERT_TRUE(bed.fleet->migrate(id, 1, [&](bool r) {
        called = true;
        ok = r;
    }));
    ASSERT_TRUE(bed.fleet->migrating(id));
    auto *crash = new OneShotEvent([&hv] { hv.crash(); },
                                   "test.crash");
    bed.sim.eventq().schedule(crash,
                              bed.sim.now() + usToTicks(10));
    bed.runFor(5000);

    EXPECT_TRUE(called);
    EXPECT_FALSE(ok);
    EXPECT_EQ(bed.fleet->migrationAborts(), 1u);
    EXPECT_EQ(bed.fleet->migrationsDone(), 0u);
    EXPECT_FALSE(bed.fleet->migrating(id));
    EXPECT_EQ(bed.fleet->serverOf(id), 0u);
    // The rollback respawned the backend exactly once — via the
    // abort path, not via a racing watchdog respawn.
    EXPECT_EQ(hv.respawns(), 1u);
    EXPECT_EQ(bed.fleet->server(0).watchdogRespawns(), 0u);

    // Clean rollback: the crashed window was re-served and new
    // work flows; nothing lost, nothing duplicated.
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(5000);
    load.expectExactlyOnce();
}

/** Companion to the regression above: with the guard disabled (the
 *  test hook models reverting the fix), the watchdog respawns the
 *  mid-drain guest instead of signalling an abort. */
TEST(FleetMigration, UnguardedWatchdogRespawnsInsteadOfAborting)
{
    FleetParams fp;
    fp.settleRetry = usToTicks(400);
    FleetBed bed(303, 2, 2, fp); // same seed as the guarded run
    GuestId id = bed.addGuest(0xC1);
    ASSERT_NE(id, invalidGuest);
    bed.runFor(1000);
    bed.fleet->server(0).setMigrationWatchdogGuard(false);

    BlkLoad load;
    load.issue(bed.fleet->guest(id), 16);
    bed.runFor(20);

    hv::BmHypervisor &hv = bed.fleet->guest(id).hypervisor();
    ASSERT_TRUE(bed.fleet->migrate(id, 1, nullptr));
    auto *crash = new OneShotEvent([&hv] { hv.crash(); },
                                   "test.crash");
    bed.sim.eventq().schedule(crash,
                              bed.sim.now() + usToTicks(10));
    bed.runFor(5000);

    // The double-adoption hazard: the watchdog adopted the guest's
    // shadow state on the source while the migration machinery was
    // entitled to replay it on the target. No clean abort happened.
    EXPECT_GE(bed.fleet->server(0).watchdogRespawns(), 1u);
    EXPECT_EQ(bed.fleet->migrationAborts(), 0u);
}

TEST(FleetFailover, PowerLossMovesGuests)
{
    FleetBed bed(404, 2, 2);
    GuestId a = bed.addGuest(0xD1);
    GuestId b = bed.addGuest(0xD2);
    ASSERT_NE(a, invalidGuest);
    ASSERT_NE(b, invalidGuest);
    // Anti-affinity put them apart; force both onto server 0 for
    // a two-guest failover.
    if (bed.fleet->serverOf(b) != bed.fleet->serverOf(a)) {
        unsigned src = bed.fleet->serverOf(b);
        unsigned dst = bed.fleet->serverOf(a);
        ASSERT_TRUE(bed.fleet->migrate(b, dst));
        bed.runFor(5000);
        ASSERT_EQ(bed.fleet->serverOf(b), dst);
        (void)src;
    }
    unsigned lost = bed.fleet->serverOf(a);
    bed.runFor(1000);

    BlkLoad la, lb;
    la.issue(bed.fleet->guest(a), 8);
    lb.issue(bed.fleet->guest(b), 8);
    bed.runFor(50);

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::ServerPowerLoss;
    ASSERT_TRUE(bed.sim.faults().deliver(
        "fleet.s" + std::to_string(lost), spec));
    bed.runFor(10000);

    EXPECT_TRUE(bed.fleet->serverDead(lost));
    EXPECT_EQ(bed.fleet->failovers(), 2u);
    EXPECT_EQ(bed.fleet->migrationsDone(), 3u); // 1 planned + 2
    EXPECT_NE(bed.fleet->serverOf(a), lost);
    EXPECT_NE(bed.fleet->serverOf(b), lost);

    // Both guests serve I/O on the surviving server; the requests
    // the power cut stranded were re-served by the rebase replay,
    // exactly once.
    la.issue(bed.fleet->guest(a), 8);
    lb.issue(bed.fleet->guest(b), 8);
    bed.runFor(5000);
    la.expectExactlyOnce();
    lb.expectExactlyOnce();
}

TEST(FleetFailover, PartitionPastThresholdFences)
{
    FleetParams fp;
    fp.healthPeriod = usToTicks(100);
    fp.missedBeatsToFence = 3;
    FleetBed bed(505, 2, 2, fp);
    GuestId id = bed.addGuest(0xE1);
    ASSERT_NE(id, invalidGuest);
    unsigned src = bed.fleet->serverOf(id);
    bed.runFor(1000);

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::FabricPartition;
    spec.duration = usToTicks(1000); // 10 sweeps > threshold
    ASSERT_TRUE(bed.sim.faults().deliver(
        "fleet.s" + std::to_string(src), spec));
    bed.runFor(10000);

    EXPECT_EQ(bed.fleet->fences(), 1u);
    EXPECT_TRUE(bed.fleet->serverDead(src));
    EXPECT_EQ(bed.fleet->failovers(), 1u);
    EXPECT_NE(bed.fleet->serverOf(id), src);

    BlkLoad load;
    load.issue(bed.fleet->guest(id), 8);
    bed.runFor(5000);
    load.expectExactlyOnce();
}

TEST(FleetFailover, PartitionHealingBeforeThresholdIsNoOp)
{
    FleetParams fp;
    fp.healthPeriod = usToTicks(100);
    fp.missedBeatsToFence = 3;
    FleetBed bed(606, 2, 2, fp);
    GuestId id = bed.addGuest(0xE2);
    ASSERT_NE(id, invalidGuest);
    unsigned src = bed.fleet->serverOf(id);
    bed.runFor(1000);

    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::FabricPartition;
    spec.duration = usToTicks(150); // heals after 1-2 sweeps
    ASSERT_TRUE(bed.sim.faults().deliver(
        "fleet.s" + std::to_string(src), spec));
    bed.runFor(10000);

    EXPECT_EQ(bed.fleet->fences(), 0u);
    EXPECT_FALSE(bed.fleet->serverDead(src));
    EXPECT_EQ(bed.fleet->serverOf(id), src);
}

TEST(FleetMaintenance, BoardHotSwap)
{
    FleetBed bed(707, 2, 2);
    GuestId id = bed.addGuest(0xF1);
    ASSERT_NE(id, invalidGuest);
    unsigned src = bed.fleet->serverOf(id);
    bed.runFor(1000);

    BlkLoad load;
    load.issue(bed.fleet->guest(id), 8);
    bed.runFor(50);

    bool ok = false;
    ASSERT_TRUE(
        bed.fleet->hotSwapBoard(id, [&](bool r) { ok = r; }));
    bed.runFor(5000);

    EXPECT_TRUE(ok);
    EXPECT_EQ(bed.fleet->hotSwaps(), 1u);
    EXPECT_NE(bed.fleet->serverOf(id), src);
    // The swapped-out server is healthy and a placement target
    // again (a hot-swap is maintenance, not a failure).
    EXPECT_FALSE(bed.fleet->serverDead(src));

    load.issue(bed.fleet->guest(id), 8);
    bed.runFor(5000);
    load.expectExactlyOnce();
}

TEST(FleetMaintenance, DrainServerMovesEveryGuest)
{
    FleetBed bed(808, 3, 2);
    GuestId a = bed.addGuest(0x11, 0);
    GuestId b = bed.addGuest(0x12, 0);
    ASSERT_NE(a, invalidGuest);
    ASSERT_NE(b, invalidGuest);
    bed.runFor(1000);
    // Consolidate both onto server 0.
    if (bed.fleet->serverOf(a) != 0)
        ASSERT_TRUE(bed.fleet->migrate(a, 0));
    if (bed.fleet->serverOf(b) != 0)
        ASSERT_TRUE(bed.fleet->migrate(b, 0));
    bed.runFor(5000);
    ASSERT_EQ(bed.fleet->serverOf(a), 0u);
    ASSERT_EQ(bed.fleet->serverOf(b), 0u);

    EXPECT_EQ(bed.fleet->drainServer(0), 2u);
    bed.runFor(5000);
    EXPECT_NE(bed.fleet->serverOf(a), 0u);
    EXPECT_NE(bed.fleet->serverOf(b), 0u);
    EXPECT_EQ(bed.fleet->server(0).freeSlots(), 2u);
}

/** Two servers, one guest each, both at slot index 0: their
 *  anomaly dumps into the shared directory must not collide (the
 *  filename carries the server name since the fleet fix). */
TEST(FleetObs, DumpFilenamesDistinctAcrossServers)
{
    std::string dir = ::testing::TempDir() + "fleet_dumps";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    FleetParams fp;
    fp.server.obs.flightDumpDir = dir;
    fp.server.obs.flightDumpCooldown = 0;
    FleetBed bed(909, 2, 1, fp);
    GuestId a = bed.addGuest(0x21, 0);
    GuestId b = bed.addGuest(0x22, 0);
    ASSERT_NE(a, invalidGuest);
    ASSERT_NE(b, invalidGuest);
    ASSERT_NE(bed.fleet->serverOf(a), bed.fleet->serverOf(b));
    ASSERT_EQ(bed.fleet->indexOf(a), 0u);
    ASSERT_EQ(bed.fleet->indexOf(b), 0u);
    bed.runFor(1000);

    bed.fleet->server(0).triggerFlightDump(0, "collision");
    std::string p0 = bed.fleet->server(0).lastFlightDumpPath();
    bed.fleet->server(1).triggerFlightDump(0, "collision");
    std::string p1 = bed.fleet->server(1).lastFlightDumpPath();
    ASSERT_FALSE(p0.empty());
    ASSERT_FALSE(p1.empty());
    EXPECT_NE(p0, p1);
    EXPECT_NE(p0.find("fleet_s0"), std::string::npos);
    EXPECT_NE(p1.find("fleet_s1"), std::string::npos);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Tests for the observability subsystem: the MetricRegistry
 * (get-or-create handles, exporters), the Chrome trace sink ring,
 * the RequestTracer's flow accounting, and — end to end — one net
 * packet and one block request traced through every layer of the
 * BM-Hive datapath with per-stage spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "obs/metric_registry.hh"
#include "obs/request_tracer.hh"
#include "obs/trace.hh"
#include "virtio/virtio_blk.hh"

namespace bmhive {
namespace {

using obs::MetricRegistry;
using obs::RequestTracer;
using obs::Stage;
using obs::TraceSink;

TEST(MetricRegistryTest, HandlesAreGetOrCreate)
{
    MetricRegistry reg;
    Counter &a = reg.counter("x.pkts");
    Counter &b = reg.counter("x.pkts");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.has("x.pkts"));
    EXPECT_FALSE(reg.has("x.other"));
}

TEST(MetricRegistryTest, KindMismatchPanics)
{
    Logger::global().setThrowOnDeath(true);
    MetricRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), PanicError);
    EXPECT_THROW(reg.latency("x"), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(MetricRegistryTest, JsonCarriesEveryKind)
{
    MetricRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", 0, 10, 5).record(3.0);
    reg.latency("l").record(usToTicks(12));
    std::string json = reg.toJson();
    EXPECT_NE(json.find("\"c\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"g\""), std::string::npos);
    EXPECT_NE(json.find("\"value\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_us\""), std::string::npos);
    // Balanced braces — cheap structural sanity check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(MetricRegistryTest, ResetAllClearsValues)
{
    MetricRegistry reg;
    Counter &c = reg.counter("c");
    c.inc(5);
    LatencyRecorder &l = reg.latency("l");
    l.record(usToTicks(3));
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(l.count(), 0u);
}

TEST(TraceSinkTest, DisabledSinkRecordsNothing)
{
    TraceSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.recordComplete("n", "c", 0, 10, sink.lane("l"));
    EXPECT_EQ(sink.size(), 0u);
}

#if BMHIVE_TRACING
TEST(TraceSinkTest, RecordsAndExportsChromeJson)
{
    TraceSink sink;
    sink.enable(16);
    std::uint32_t lane = sink.lane("guest0.net");
    sink.recordComplete("shadow_sync", "iobond", usToTicks(1),
                        usToTicks(2), lane, 42);
    sink.recordInstant("doorbell", "iobond", usToTicks(1), lane);
    EXPECT_EQ(sink.size(), 2u);
    std::string json = sink.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"shadow_sync\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("guest0.net"), std::string::npos);
}

TEST(TraceSinkTest, RingOverwritesOldestAndCountsDrops)
{
    TraceSink sink;
    sink.enable(4);
    for (int i = 0; i < 10; ++i) {
        sink.recordInstant("e" + std::to_string(i), "t", Tick(i),
                           0);
    }
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first unwrap: the survivors are e6..e9.
    EXPECT_EQ(events.front().name, "e6");
    EXPECT_EQ(events.back().name, "e9");
}
#endif // BMHIVE_TRACING

TEST(RequestTracerTest, StampsPartitionEndToEndLatency)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    std::uint64_t key = RequestTracer::flowKey(0, 1, 7);
    tracer.stamp(key, Stage::GuestPost, usToTicks(10));
    tracer.stamp(key, Stage::ShadowSync, usToTicks(14));
    tracer.stamp(key, Stage::PollPickup, usToTicks(19));
    tracer.stamp(key, Stage::Service, usToTicks(21));
    tracer.stamp(key, Stage::CompleteDma, usToTicks(27));
    tracer.stamp(key, Stage::GuestIrq, usToTicks(30));

    EXPECT_EQ(tracer.started(), 1u);
    EXPECT_EQ(tracer.completed(), 1u);
    EXPECT_EQ(tracer.openFlows(), 0u);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::ShadowSync).meanUs(), 4.0);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::PollPickup).meanUs(), 5.0);
    EXPECT_DOUBLE_EQ(tracer.stageLatency(Stage::Service).meanUs(),
                     2.0);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::CompleteDma).meanUs(), 6.0);
    EXPECT_DOUBLE_EQ(tracer.stageLatency(Stage::GuestIrq).meanUs(),
                     3.0);
    // Stage deltas sum to the end-to-end latency by construction.
    EXPECT_DOUBLE_EQ(tracer.totalLatency().meanUs(), 20.0);
    // Metrics registered under the tracer's path.
    EXPECT_TRUE(reg.has("g0.net.stage.shadow_sync"));
    EXPECT_TRUE(reg.has("g0.net.stage.total"));
    std::string report = tracer.breakdown();
    EXPECT_NE(report.find("end-to-end"), std::string::npos);
}

TEST(RequestTracerTest, UnmatchedStampsAreCountedNotRecorded)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    // Backend-initiated completion with no opened flow.
    tracer.stamp(RequestTracer::flowKey(0, 0, 3),
                 Stage::CompleteDma, usToTicks(5));
    EXPECT_EQ(tracer.unmatched(), 1u);
    EXPECT_EQ(tracer.started(), 0u);
    EXPECT_EQ(tracer.stageLatency(Stage::CompleteDma).count(), 0u);
}

TEST(RequestTracerTest, RecentKeepsCompletedFlowRecords)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.blk", reg);
    for (std::uint16_t h = 0; h < 3; ++h) {
        std::uint64_t key = RequestTracer::flowKey(1, 0, h);
        tracer.stamp(key, Stage::GuestPost, usToTicks(h * 100));
        tracer.stamp(key, Stage::GuestIrq,
                     usToTicks(h * 100 + 50));
    }
    ASSERT_EQ(tracer.recent().size(), 3u);
    const auto &rec = tracer.recent().back();
    EXPECT_EQ(rec.key, RequestTracer::flowKey(1, 0, 2));
    EXPECT_TRUE(rec.stageSeen &
                (1u << unsigned(Stage::GuestPost)));
    EXPECT_TRUE(rec.stageSeen & (1u << unsigned(Stage::GuestIrq)));
    EXPECT_FALSE(rec.stageSeen &
                 (1u << unsigned(Stage::ShadowSync)));
}

TEST(RequestTracerTest, NonMonotonicStampPanics)
{
    Logger::global().setThrowOnDeath(true);
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    std::uint64_t key = RequestTracer::flowKey(0, 1, 0);
    tracer.stamp(key, Stage::GuestPost, usToTicks(10));
    tracer.stamp(key, Stage::ShadowSync, usToTicks(12));
    EXPECT_THROW(
        tracer.stamp(key, Stage::PollPickup, usToTicks(11)),
        PanicError);
    Logger::global().setThrowOnDeath(false);
}

/** Full-stack tracing over a provisioned BM-Hive server. */
class ObsIntegrationTest : public ::testing::Test
{
  protected:
    ObsIntegrationTest()
        : sim(97), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, params())
    {
    }

    static core::BmServerParams
    params()
    {
        core::BmServerParams p;
        p.maxBoards = 2;
        return p;
    }

    static void
    expectCompleteMonotonicFlow(const RequestTracer &tracer)
    {
        ASSERT_EQ(tracer.completed(), 1u);
        ASSERT_EQ(tracer.recent().size(), 1u);
        const auto &rec = tracer.recent().front();
        unsigned last = unsigned(tracer.finalStage());
        // Every span of the Fig. 6 path up to the flow's final
        // stage, exactly once — except SchedDelay, which is
        // zero-width (skipped) under dedicated busy polling.
        unsigned sched_bit = 1u << unsigned(Stage::SchedDelay);
        EXPECT_EQ(rec.stageSeen | sched_bit,
                  (1u << (last + 1)) - 1);
        // ...with non-decreasing timestamps along the path.
        Tick prev = rec.at[0];
        for (unsigned s = 1; s <= last; ++s) {
            if (!(rec.stageSeen & (1u << s)))
                continue;
            EXPECT_GE(rec.at[s], prev)
                << "stage " << s << " precedes its predecessor";
            prev = rec.at[s];
        }
        // The doorbell really is earlier than the closing event.
        EXPECT_GT(rec.at[last], rec.at[unsigned(Stage::GuestPost)]);
        // Per-stage recorders saw exactly this one flow.
        EXPECT_EQ(tracer.stageLatency(Stage::ShadowSync).count(),
                  1u);
        EXPECT_EQ(tracer.stageLatency(Stage(last)).count(), 1u);
        EXPECT_EQ(tracer.totalLatency().count(), 1u);
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(ObsIntegrationTest, OneNetPacketYieldsEverySpanOnce)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));
    a.hypervisor().enableIoTracing();

    unsigned delivered = 0;
    b.net().setRxHandler(
        [&](const cloud::Packet &) { ++delivered; });
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 256;
    ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
    sim.run(sim.now() + msToTicks(5));
    ASSERT_EQ(delivered, 1u);

    auto *tracer = a.hypervisor().netTracer();
    ASSERT_NE(tracer, nullptr);
    // Tx completion MSIs are suppressed by the driver, so the flow
    // ends at the completion DMA.
    EXPECT_EQ(tracer->finalStage(), Stage::CompleteDma);
    expectCompleteMonotonicFlow(*tracer);
    // The tx flow matched; nothing leaked onto other queues.
    EXPECT_EQ(tracer->openFlows(), 0u);
}

TEST_F(ObsIntegrationTest, OneBlockRequestYieldsEverySpanOnce)
{
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));
    g.hypervisor().enableIoTracing();

    bool done = false;
    ASSERT_TRUE(g.blk()->read(
        0, 4 * KiB, g.os().cpu(1), [&](std::uint8_t st, Addr) {
            EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
            done = true;
        }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);

    auto *tracer = g.hypervisor().blkTracer();
    ASSERT_NE(tracer, nullptr);
    // Block completions raise a real MSI: all six spans appear.
    EXPECT_EQ(tracer->finalStage(), Stage::GuestIrq);
    expectCompleteMonotonicFlow(*tracer);
    // The Service stage covers the storage round trip: two fabric
    // crossings plus SSD service time dominate it.
    EXPECT_GT(tracer->stageLatency(Stage::Service).meanUs(),
              2.0 * ticksToUs(
                        cloud::BlockServiceParams{}.networkLatency));
}

TEST_F(ObsIntegrationTest, PollLoopUtilizationIsAccounted)
{
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(2));

    auto &svc = g.hypervisor().service();
    // A mostly idle guest: the PMD spins, almost always empty.
    EXPECT_GT(svc.pollsTotal(), 100u);
    std::uint64_t busy_before = svc.pollsBusy();
    EXPECT_LT(svc.pollBusyRatio(), 0.5);

    bool done = false;
    ASSERT_TRUE(g.blk()->read(0, 4 * KiB, g.os().cpu(1),
                              [&](std::uint8_t, Addr) {
                                  done = true;
                              }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);
    EXPECT_GT(svc.pollsBusy(), busy_before);
    // The poll metrics live in the registry under the service name.
    EXPECT_TRUE(sim.metrics().has(svc.name() + ".poll.total"));
    EXPECT_TRUE(sim.metrics().has(svc.name() + ".poll.batch"));
}

TEST_F(ObsIntegrationTest, PeriodicStatsDumpFiresUntilStopped)
{
    server.provision(core::InstanceCatalog::evaluated(), 0xA);
    // The rollup goes to the log; capture it rather than spamming
    // the test output.
    std::ostringstream captured;
    Logger::global().setStream(&captured);
    server.startStatsDump(msToTicks(1));
    sim.run(sim.now() + msToTicks(5) + usToTicks(10));
    Logger::global().setStream(nullptr);
    EXPECT_GE(server.statsDumps(), 5u);
    EXPECT_NE(captured.str().find("guest0"), std::string::npos);
    EXPECT_NE(captured.str().find("polls="), std::string::npos);

    server.stopStatsDump();
    std::uint64_t n = server.statsDumps();
    sim.run(sim.now() + msToTicks(3));
    EXPECT_EQ(server.statsDumps(), n);
}

TEST_F(ObsIntegrationTest, ComponentCountersLiveInTheRegistry)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));
    b.net().setRxHandler([](const cloud::Packet &) {});
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 64;
    ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
    sim.run(sim.now() + msToTicks(5));

    // Accessor and registry handle are the same cell.
    EXPECT_EQ(vswitch.forwarded(),
              sim.metrics().counter("vs.forwarded").value());
    EXPECT_GE(vswitch.forwarded(), 1u);
    EXPECT_EQ(
        a.hypervisor().service().txPackets(),
        sim.metrics()
            .counter(a.hypervisor().service().name() + ".tx_pkts")
            .value());
    EXPECT_EQ(a.bond().chainsForwarded(),
              sim.metrics()
                  .counter(a.bond().name() + ".chains")
                  .value());
}

#if BMHIVE_TRACING
TEST_F(ObsIntegrationTest, TracedRunEmitsChromeSpans)
{
    sim.trace().enable();
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));
    g.hypervisor().enableIoTracing();

    bool done = false;
    ASSERT_TRUE(g.blk()->read(0, 4 * KiB, g.os().cpu(1),
                              [&](std::uint8_t, Addr) {
                                  done = true;
                              }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);

    EXPECT_GT(sim.trace().size(), 0u);
    std::string json = sim.trace().toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("shadow_sync"), std::string::npos);
    EXPECT_NE(json.find("guest_irq"), std::string::npos);
}
#else
TEST_F(ObsIntegrationTest, TracingCompiledOutIsInert)
{
    sim.trace().enable();
    EXPECT_FALSE(sim.trace().enabled());
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    g.hypervisor().enableIoTracing();
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(sim.trace().size(), 0u);
}
#endif // BMHIVE_TRACING

} // namespace
} // namespace bmhive

/**
 * @file
 * Tests for the observability subsystem: the MetricRegistry
 * (get-or-create handles, exporters), the Chrome trace sink ring,
 * the RequestTracer's flow accounting, and — end to end — one net
 * packet and one block request traced through every layer of the
 * BM-Hive datapath with per-stage spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "obs/flight_recorder.hh"
#include "obs/metric_registry.hh"
#include "obs/request_tracer.hh"
#include "obs/slo_monitor.hh"
#include "obs/trace.hh"
#include "virtio/virtio_blk.hh"

namespace bmhive {
namespace {

using obs::MetricRegistry;
using obs::RequestTracer;
using obs::Stage;
using obs::TraceSink;

TEST(MetricRegistryTest, HandlesAreGetOrCreate)
{
    MetricRegistry reg;
    Counter &a = reg.counter("x.pkts");
    Counter &b = reg.counter("x.pkts");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_TRUE(reg.has("x.pkts"));
    EXPECT_FALSE(reg.has("x.other"));
}

TEST(MetricRegistryTest, KindMismatchPanics)
{
    Logger::global().setThrowOnDeath(true);
    MetricRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), PanicError);
    EXPECT_THROW(reg.latency("x"), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(MetricRegistryTest, JsonCarriesEveryKind)
{
    MetricRegistry reg;
    reg.counter("c").inc(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", 0, 10, 5).record(3.0);
    reg.latency("l").record(usToTicks(12));
    std::string json = reg.toJson();
    EXPECT_NE(json.find("\"c\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"g\""), std::string::npos);
    EXPECT_NE(json.find("\"value\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_us\""), std::string::npos);
    // Balanced braces — cheap structural sanity check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(MetricRegistryTest, ResetAllClearsValues)
{
    MetricRegistry reg;
    Counter &c = reg.counter("c");
    c.inc(5);
    LatencyRecorder &l = reg.latency("l");
    l.record(usToTicks(3));
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(l.count(), 0u);
}

TEST(TraceSinkTest, DisabledSinkRecordsNothing)
{
    TraceSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.recordComplete("n", "c", 0, 10, sink.lane("l"));
    EXPECT_EQ(sink.size(), 0u);
}

#if BMHIVE_TRACING
TEST(TraceSinkTest, RecordsAndExportsChromeJson)
{
    TraceSink sink;
    sink.enable(16);
    std::uint32_t lane = sink.lane("guest0.net");
    sink.recordComplete("shadow_sync", "iobond", usToTicks(1),
                        usToTicks(2), lane, 42);
    sink.recordInstant("doorbell", "iobond", usToTicks(1), lane);
    EXPECT_EQ(sink.size(), 2u);
    std::string json = sink.toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"shadow_sync\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("guest0.net"), std::string::npos);
}

TEST(TraceSinkTest, RingOverwritesOldestAndCountsDrops)
{
    TraceSink sink;
    sink.enable(4);
    for (int i = 0; i < 10; ++i) {
        sink.recordInstant("e" + std::to_string(i), "t", Tick(i),
                           0);
    }
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first unwrap: the survivors are e6..e9.
    EXPECT_EQ(events.front().name, "e6");
    EXPECT_EQ(events.back().name, "e9");
}
#endif // BMHIVE_TRACING

TEST(RequestTracerTest, StampsPartitionEndToEndLatency)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    std::uint64_t key = RequestTracer::flowKey(0, 1, 7);
    tracer.stamp(key, Stage::GuestPost, usToTicks(10));
    tracer.stamp(key, Stage::ShadowSync, usToTicks(14));
    tracer.stamp(key, Stage::PollPickup, usToTicks(19));
    tracer.stamp(key, Stage::Service, usToTicks(21));
    tracer.stamp(key, Stage::CompleteDma, usToTicks(27));
    tracer.stamp(key, Stage::GuestIrq, usToTicks(30));

    EXPECT_EQ(tracer.started(), 1u);
    EXPECT_EQ(tracer.completed(), 1u);
    EXPECT_EQ(tracer.openFlows(), 0u);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::ShadowSync).meanUs(), 4.0);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::PollPickup).meanUs(), 5.0);
    EXPECT_DOUBLE_EQ(tracer.stageLatency(Stage::Service).meanUs(),
                     2.0);
    EXPECT_DOUBLE_EQ(
        tracer.stageLatency(Stage::CompleteDma).meanUs(), 6.0);
    EXPECT_DOUBLE_EQ(tracer.stageLatency(Stage::GuestIrq).meanUs(),
                     3.0);
    // Stage deltas sum to the end-to-end latency by construction.
    EXPECT_DOUBLE_EQ(tracer.totalLatency().meanUs(), 20.0);
    // Metrics registered under the tracer's path.
    EXPECT_TRUE(reg.has("g0.net.stage.shadow_sync"));
    EXPECT_TRUE(reg.has("g0.net.stage.total"));
    std::string report = tracer.breakdown();
    EXPECT_NE(report.find("end-to-end"), std::string::npos);
}

TEST(RequestTracerTest, UnmatchedStampsAreCountedNotRecorded)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    // Backend-initiated completion with no opened flow.
    tracer.stamp(RequestTracer::flowKey(0, 0, 3),
                 Stage::CompleteDma, usToTicks(5));
    EXPECT_EQ(tracer.unmatched(), 1u);
    EXPECT_EQ(tracer.started(), 0u);
    EXPECT_EQ(tracer.stageLatency(Stage::CompleteDma).count(), 0u);
}

TEST(RequestTracerTest, RecentKeepsCompletedFlowRecords)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.blk", reg);
    for (std::uint16_t h = 0; h < 3; ++h) {
        std::uint64_t key = RequestTracer::flowKey(1, 0, h);
        tracer.stamp(key, Stage::GuestPost, usToTicks(h * 100));
        tracer.stamp(key, Stage::GuestIrq,
                     usToTicks(h * 100 + 50));
    }
    ASSERT_EQ(tracer.recent().size(), 3u);
    const auto &rec = tracer.recent().back();
    EXPECT_EQ(rec.key, RequestTracer::flowKey(1, 0, 2));
    EXPECT_TRUE(rec.stageSeen &
                (1u << unsigned(Stage::GuestPost)));
    EXPECT_TRUE(rec.stageSeen & (1u << unsigned(Stage::GuestIrq)));
    EXPECT_FALSE(rec.stageSeen &
                 (1u << unsigned(Stage::ShadowSync)));
}

TEST(RequestTracerTest, NonMonotonicStampPanics)
{
    Logger::global().setThrowOnDeath(true);
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    std::uint64_t key = RequestTracer::flowKey(0, 1, 0);
    tracer.stamp(key, Stage::GuestPost, usToTicks(10));
    tracer.stamp(key, Stage::ShadowSync, usToTicks(12));
    EXPECT_THROW(
        tracer.stamp(key, Stage::PollPickup, usToTicks(11)),
        PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST(RequestTracerTest, CloseHookSeesEndToEndLatency)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.blk", reg);
    Tick e2e = 0, closed_at = 0;
    unsigned closes = 0;
    tracer.setCloseHook([&](Tick lat, Tick now) {
        e2e = lat;
        closed_at = now;
        ++closes;
    });
    std::uint64_t key = RequestTracer::flowKey(1, 0, 3);
    tracer.stamp(key, Stage::GuestPost, usToTicks(10));
    tracer.stamp(key, Stage::GuestIrq, usToTicks(35));
    EXPECT_EQ(closes, 1u);
    EXPECT_EQ(e2e, usToTicks(25));
    EXPECT_EQ(closed_at, usToTicks(35));
}

TEST(RequestTracerTest, OpenFlowTableIsBoundedByEviction)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    tracer.setMaxOpen(4);
    // Ten flows open and never close (e.g. a wedged backend).
    for (std::uint16_t h = 0; h < 10; ++h) {
        tracer.stamp(RequestTracer::flowKey(0, 1, h),
                     Stage::GuestPost, usToTicks(h + 1));
    }
    EXPECT_EQ(tracer.openFlows(), 4u);
    EXPECT_EQ(tracer.evicted(), 6u);
    // Evictions also land on the registry-wide leak detector.
    EXPECT_EQ(reg.counter("obs.tracer.evicted_flows").value(), 6u);
    // Oldest evicted first: the survivors (heads 6..9) still close.
    for (std::uint16_t h = 6; h < 10; ++h) {
        tracer.stamp(RequestTracer::flowKey(0, 1, h),
                     Stage::GuestIrq, usToTicks(100 + h));
    }
    EXPECT_EQ(tracer.completed(), 4u);
    EXPECT_EQ(tracer.openFlows(), 0u);
}

TEST(RequestTracerTest, EvictionSkipsFlowsThatAlreadyClosed)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    tracer.setMaxOpen(2);
    // Two flows open and close normally...
    for (std::uint16_t h = 0; h < 2; ++h) {
        std::uint64_t key = RequestTracer::flowKey(0, 1, h);
        tracer.stamp(key, Stage::GuestPost, usToTicks(h + 1));
        tracer.stamp(key, Stage::GuestIrq, usToTicks(h + 10));
    }
    // ...so two fresh opens fit without evicting anything.
    for (std::uint16_t h = 2; h < 4; ++h) {
        tracer.stamp(RequestTracer::flowKey(0, 1, h),
                     Stage::GuestPost, usToTicks(h + 10));
    }
    EXPECT_EQ(tracer.openFlows(), 2u);
    EXPECT_EQ(tracer.evicted(), 0u);
}

TEST(RequestTracerTest, DropOpenAbortsOneQueueOnly)
{
    MetricRegistry reg;
    RequestTracer tracer("g0.net", reg);
    tracer.stamp(RequestTracer::flowKey(2, 0, 1), Stage::GuestPost,
                 usToTicks(1));
    tracer.stamp(RequestTracer::flowKey(2, 0, 2), Stage::GuestPost,
                 usToTicks(2));
    tracer.stamp(RequestTracer::flowKey(2, 1, 1), Stage::GuestPost,
                 usToTicks(3));
    unsigned closes = 0;
    tracer.setCloseHook([&](Tick, Tick) { ++closes; });
    tracer.dropOpen(2, 0);
    // Queue 0's flows aborted without closing; queue 1 untouched.
    EXPECT_EQ(tracer.openFlows(), 1u);
    EXPECT_EQ(tracer.aborted(), 2u);
    EXPECT_EQ(tracer.completed(), 0u);
    EXPECT_EQ(closes, 0u);
    tracer.stamp(RequestTracer::flowKey(2, 1, 1), Stage::GuestIrq,
                 usToTicks(9));
    EXPECT_EQ(tracer.completed(), 1u);
}

TEST(HistogramTest, PercentileIsNearestRankUpperEdge)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.record(10.0 * i + 5.0); // one sample per bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.10), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.00), 100.0);
    // Underflow samples pin low quantiles to the low edge.
    h.record(-1.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 0.0);
    // Empty histogram: 0 by convention.
    Histogram e(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(e.percentile(0.5), 0.0);
}

TEST(MetricRegistryTest, JsonLeadsWithSchemaVersionAndPercentiles)
{
    MetricRegistry reg;
    reg.histogram("h", 0, 10, 5).record(3.0);
    reg.latency("l").record(usToTicks(12));
    std::string json = reg.toJson();
    EXPECT_EQ(json.rfind("{\n  \"schema_version\": 2", 0), 0u);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"p999\""), std::string::npos);
    EXPECT_NE(json.find("\"p90_us\""), std::string::npos);
    EXPECT_NE(json.find("\"p999_us\""), std::string::npos);
}

// --- SloMonitor ---

using obs::SloMonitor;
using obs::SloParams;
using obs::SloRole;

SloParams
tightSlo()
{
    SloParams p;
    p.window = usToTicks(100);
    p.epochs = 5; // 20 us epochs
    p.netTargetUs = 10.0;
    p.blkTargetUs = 10.0;
    p.errorBudget = 0.01;
    p.breachBurn = 1.0;
    p.minWindowSamples = 4;
    return p;
}

TEST(SloMonitorTest, LogBucketsAreMonotonicAndConservative)
{
    unsigned prev = 0;
    for (Tick us = 1; us <= 100000; us *= 3) {
        Tick lat = usToTicks(double(us));
        unsigned b = SloMonitor::bucketOf(lat);
        EXPECT_GE(b, prev);
        prev = b;
        double upper = SloMonitor::bucketUpperUs(b);
        // Upper edge covers the value and over-reports by at most
        // one sub-bucket (4/octave => <= 25%).
        EXPECT_GE(upper, double(us));
        EXPECT_LE(upper, double(us) * 1.26);
    }
}

TEST(SloMonitorTest, PercentilesTrackTheDistribution)
{
    obs::MetricRegistry reg;
    SloMonitor slo("slo", reg, tightSlo());
    for (int i = 1; i <= 100; ++i)
        slo.record(SloRole::Net, usToTicks(double(i)), usToTicks(1));
    EXPECT_EQ(slo.windowSamples(SloRole::Net), 100u);
    double p50 = slo.percentileUs(SloRole::Net, 0.50);
    double p99 = slo.percentileUs(SloRole::Net, 0.99);
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 50.0 * 1.26);
    EXPECT_GE(p99, 99.0);
    EXPECT_LE(p99, 99.0 * 1.26);
    EXPECT_LE(p50, p99);
    // Roles are independent: blk saw nothing.
    EXPECT_EQ(slo.windowSamples(SloRole::Blk), 0u);
    // Exported gauges registered under the monitor's path.
    EXPECT_TRUE(reg.has("slo.net.p99_us"));
    EXPECT_TRUE(reg.has("slo.net.burn_rate"));
    EXPECT_TRUE(reg.has("slo.blk.p50_us"));
}

TEST(SloMonitorTest, WindowRotationForgetsOldEpochs)
{
    obs::MetricRegistry reg;
    SloMonitor slo("slo", reg, tightSlo());
    for (int i = 0; i < 10; ++i)
        slo.record(SloRole::Net, usToTicks(1.0), usToTicks(2));
    EXPECT_EQ(slo.windowSamples(SloRole::Net), 10u);
    // One epoch later the samples are still in the window...
    slo.record(SloRole::Net, usToTicks(1.0), usToTicks(25));
    EXPECT_EQ(slo.windowSamples(SloRole::Net), 11u);
    EXPECT_GE(slo.rotations(), 1u);
    // ...a full window later they are gone; totals persist.
    slo.refresh(usToTicks(500));
    EXPECT_EQ(slo.windowSamples(SloRole::Net), 0u);
    EXPECT_EQ(slo.totalSamples(SloRole::Net), 11u);
}

TEST(SloMonitorTest, BurnAboveThresholdRaisesBreach)
{
    obs::MetricRegistry reg;
    SloMonitor slo("slo", reg, tightSlo());
    SloRole breached = SloRole::Blk;
    double burn_seen = 0.0;
    unsigned fired = 0;
    slo.setBreachCallback([&](SloRole r, double burn) {
        breached = r;
        burn_seen = burn;
        ++fired;
    });
    // Every sample violates the 10 us target; burn = 1/0.01 = 100.
    for (int i = 0; i < 10; ++i)
        slo.record(SloRole::Net, usToTicks(50.0), usToTicks(2));
    EXPECT_EQ(slo.violations(SloRole::Net), 10u);
    EXPECT_EQ(fired, 0u); // no rotation yet
    slo.refresh(usToTicks(25)); // crosses an epoch boundary
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(breached, SloRole::Net);
    EXPECT_GE(burn_seen, 99.0);
    EXPECT_EQ(slo.breaches(SloRole::Net), 1u);
}

TEST(SloMonitorTest, FewSamplesNeverBreach)
{
    obs::MetricRegistry reg;
    SloMonitor slo("slo", reg, tightSlo()); // minWindowSamples = 4
    unsigned fired = 0;
    slo.setBreachCallback([&](SloRole, double) { ++fired; });
    for (int i = 0; i < 3; ++i)
        slo.record(SloRole::Net, usToTicks(50.0), usToTicks(2));
    slo.refresh(usToTicks(25));
    EXPECT_EQ(fired, 0u);
    EXPECT_EQ(slo.breaches(SloRole::Net), 0u);
}

// --- FlightRecorder ---

using obs::FlightEvent;
using obs::FlightRecorder;

TEST(FlightRecorderTest, RingWrapsAndKeepsTheTail)
{
    obs::MetricRegistry reg;
    FlightRecorder fr("g0.flight", reg, 8);
    for (unsigned i = 0; i < 20; ++i)
        fr.record(Tick(i) * 1000, FlightEvent::DoorbellAccept, 3, 0,
                  i);
    EXPECT_EQ(fr.size(), 8u);
    EXPECT_EQ(fr.recorded(), 20u);
    EXPECT_EQ(fr.overwritten(), 12u);
    EXPECT_EQ(reg.counter("g0.flight.events").value(), 20u);
    auto events = fr.lastEvents();
    ASSERT_EQ(events.size(), 8u);
    // Oldest-first unwrap: survivors are events 12..19.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(events[i].a, 12u + i);
    // A bounded slice takes the newest n.
    auto tail = fr.lastEvents(3);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.front().a, 17u);
    EXPECT_EQ(tail.back().a, 19u);
}

TEST(FlightRecorderTest, ChromeJsonCarriesTriggerAndEvents)
{
    obs::MetricRegistry reg;
    FlightRecorder fr("g0.flight", reg, 8);
    fr.record(usToTicks(5), FlightEvent::DoorbellAccept, 3, 1);
    fr.record(usToTicks(6), FlightEvent::Msi, 3, 1, 42);
    std::string json = fr.toChromeJson(0, "quarantine");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"trigger\":\"quarantine\""),
              std::string::npos);
    EXPECT_NE(json.find("\"doorbell_accept\""), std::string::npos);
    EXPECT_NE(json.find("\"msi\""), std::string::npos);
    EXPECT_NE(json.find("g0.flight"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    std::string path =
        ::testing::TempDir() + "/fr_unit_dump.json";
    ASSERT_TRUE(fr.writeChromeJson(path, 0, "unit"));
    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_EQ(body.str(), fr.toChromeJson(0, "unit"));
}

/** Full-stack tracing over a provisioned BM-Hive server. */
class ObsIntegrationTest : public ::testing::Test
{
  protected:
    ObsIntegrationTest()
        : sim(97), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, params())
    {
    }

    static core::BmServerParams
    params()
    {
        core::BmServerParams p;
        p.maxBoards = 2;
        return p;
    }

    static void
    expectCompleteMonotonicFlow(const RequestTracer &tracer)
    {
        ASSERT_EQ(tracer.completed(), 1u);
        ASSERT_EQ(tracer.recent().size(), 1u);
        const auto &rec = tracer.recent().front();
        unsigned last = unsigned(tracer.finalStage());
        // Every span of the Fig. 6 path up to the flow's final
        // stage, exactly once — except SchedDelay, which is
        // zero-width (skipped) under dedicated busy polling.
        unsigned sched_bit = 1u << unsigned(Stage::SchedDelay);
        EXPECT_EQ(rec.stageSeen | sched_bit,
                  (1u << (last + 1)) - 1);
        // ...with non-decreasing timestamps along the path.
        Tick prev = rec.at[0];
        for (unsigned s = 1; s <= last; ++s) {
            if (!(rec.stageSeen & (1u << s)))
                continue;
            EXPECT_GE(rec.at[s], prev)
                << "stage " << s << " precedes its predecessor";
            prev = rec.at[s];
        }
        // The doorbell really is earlier than the closing event.
        EXPECT_GT(rec.at[last], rec.at[unsigned(Stage::GuestPost)]);
        // Per-stage recorders saw exactly this one flow.
        EXPECT_EQ(tracer.stageLatency(Stage::ShadowSync).count(),
                  1u);
        EXPECT_EQ(tracer.stageLatency(Stage(last)).count(), 1u);
        EXPECT_EQ(tracer.totalLatency().count(), 1u);
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(ObsIntegrationTest, OneNetPacketYieldsEverySpanOnce)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));
    a.hypervisor().enableIoTracing();

    unsigned delivered = 0;
    b.net().setRxHandler(
        [&](const cloud::Packet &) { ++delivered; });
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 256;
    ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
    sim.run(sim.now() + msToTicks(5));
    ASSERT_EQ(delivered, 1u);

    auto *tracer = a.hypervisor().netTracer();
    ASSERT_NE(tracer, nullptr);
    // Tx completion MSIs are suppressed by the driver, so the flow
    // ends at the completion DMA.
    EXPECT_EQ(tracer->finalStage(), Stage::CompleteDma);
    expectCompleteMonotonicFlow(*tracer);
    // The tx flow matched; nothing leaked onto other queues.
    EXPECT_EQ(tracer->openFlows(), 0u);
}

TEST_F(ObsIntegrationTest, OneBlockRequestYieldsEverySpanOnce)
{
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));
    g.hypervisor().enableIoTracing();

    bool done = false;
    ASSERT_TRUE(g.blk()->read(
        0, 4 * KiB, g.os().cpu(1), [&](std::uint8_t st, Addr) {
            EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
            done = true;
        }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);

    auto *tracer = g.hypervisor().blkTracer();
    ASSERT_NE(tracer, nullptr);
    // Block completions raise a real MSI: all six spans appear.
    EXPECT_EQ(tracer->finalStage(), Stage::GuestIrq);
    expectCompleteMonotonicFlow(*tracer);
    // The Service stage covers the storage round trip: two fabric
    // crossings plus SSD service time dominate it.
    EXPECT_GT(tracer->stageLatency(Stage::Service).meanUs(),
              2.0 * ticksToUs(
                        cloud::BlockServiceParams{}.networkLatency));
}

TEST_F(ObsIntegrationTest, PollLoopUtilizationIsAccounted)
{
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(2));

    auto &svc = g.hypervisor().service();
    // A mostly idle guest: the PMD spins, almost always empty.
    EXPECT_GT(svc.pollsTotal(), 100u);
    std::uint64_t busy_before = svc.pollsBusy();
    EXPECT_LT(svc.pollBusyRatio(), 0.5);

    bool done = false;
    ASSERT_TRUE(g.blk()->read(0, 4 * KiB, g.os().cpu(1),
                              [&](std::uint8_t, Addr) {
                                  done = true;
                              }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);
    EXPECT_GT(svc.pollsBusy(), busy_before);
    // The poll metrics live in the registry under the service name.
    EXPECT_TRUE(sim.metrics().has(svc.name() + ".poll.total"));
    EXPECT_TRUE(sim.metrics().has(svc.name() + ".poll.batch"));
}

TEST_F(ObsIntegrationTest, PeriodicStatsDumpFiresUntilStopped)
{
    server.provision(core::InstanceCatalog::evaluated(), 0xA);
    // The rollup goes to the log; capture it rather than spamming
    // the test output.
    std::ostringstream captured;
    Logger::global().setStream(&captured);
    server.startStatsDump(msToTicks(1));
    sim.run(sim.now() + msToTicks(5) + usToTicks(10));
    Logger::global().setStream(nullptr);
    EXPECT_GE(server.statsDumps(), 5u);
    EXPECT_NE(captured.str().find("guest0"), std::string::npos);
    EXPECT_NE(captured.str().find("polls="), std::string::npos);

    server.stopStatsDump();
    std::uint64_t n = server.statsDumps();
    sim.run(sim.now() + msToTicks(3));
    EXPECT_EQ(server.statsDumps(), n);
}

TEST_F(ObsIntegrationTest, ComponentCountersLiveInTheRegistry)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));
    b.net().setRxHandler([](const cloud::Packet &) {});
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 64;
    ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
    sim.run(sim.now() + msToTicks(5));

    // Accessor and registry handle are the same cell.
    EXPECT_EQ(vswitch.forwarded(),
              sim.metrics().counter("vs.forwarded").value());
    EXPECT_GE(vswitch.forwarded(), 1u);
    EXPECT_EQ(
        a.hypervisor().service().txPackets(),
        sim.metrics()
            .counter(a.hypervisor().service().name() + ".tx_pkts")
            .value());
    EXPECT_EQ(a.bond().chainsForwarded(),
              sim.metrics()
                  .counter(a.bond().name() + ".chains")
                  .value());
}

#if BMHIVE_TRACING
TEST_F(ObsIntegrationTest, TracedRunEmitsChromeSpans)
{
    sim.trace().enable();
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));
    g.hypervisor().enableIoTracing();

    bool done = false;
    ASSERT_TRUE(g.blk()->read(0, 4 * KiB, g.os().cpu(1),
                              [&](std::uint8_t, Addr) {
                                  done = true;
                              }));
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);

    EXPECT_GT(sim.trace().size(), 0u);
    std::string json = sim.trace().toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("shadow_sync"), std::string::npos);
    EXPECT_NE(json.find("guest_irq"), std::string::npos);
}
#else
TEST_F(ObsIntegrationTest, TracingCompiledOutIsInert)
{
    sim.trace().enable();
    EXPECT_FALSE(sim.trace().enabled());
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    g.hypervisor().enableIoTracing();
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(sim.trace().size(), 0u);
}
#endif // BMHIVE_TRACING

// --- Anomaly-triggered flight dumps ---

namespace fs = std::filesystem;

/** Dump files under @p dir, sorted by name. */
std::vector<std::string>
dumpFiles(const std::string &dir)
{
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dir))
        names.push_back(e.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    return body.str();
}

/** A server whose anomaly dumps land in a per-test temp dir. */
class FlightDumpTest : public ::testing::Test
{
  protected:
    FlightDumpTest()
        : dir(::testing::TempDir() + "/flight_dumps_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()),
          sim(7), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, params(dir))
    {
    }

    static core::BmServerParams
    params(const std::string &dir)
    {
        fs::remove_all(dir);
        fs::create_directories(dir);
        core::BmServerParams p;
        p.maxBoards = 2;
        p.obs.flightDumpDir = dir;
        return p;
    }

    std::string dir;
    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(FlightDumpTest, QuarantineEntryDumpsTheAttackerOnce)
{
    auto &atk = server.provision(core::InstanceCatalog::evaluated(),
                                 0xA);
    auto &vic = server.provision(core::InstanceCatalog::evaluated(),
                                 0xB);
    sim.run(sim.now() + msToTicks(1));
    ASSERT_NE(atk.flight(), nullptr);
    ASSERT_NE(atk.slo(), nullptr);

    // Put real datapath events in the attacker's ring first.
    vic.net().setRxHandler([](const cloud::Packet &) {});
    cloud::Packet pkt;
    pkt.src = 0xA;
    pkt.dst = 0xB;
    pkt.len = 128;
    ASSERT_TRUE(atk.net().sendPacket(pkt, true, atk.os().cpu(1)));
    sim.run(sim.now() + msToTicks(1));
    ASSERT_GT(atk.flight()->size(), 0u);

    server.quarantineGuest(0);
    EXPECT_EQ(server.flightDumps(), 1u);
    auto files = dumpFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    EXPECT_NE(files[0].find("flight_srv_guest0_quarantine"),
              std::string::npos);
    EXPECT_EQ(server.lastFlightDumpPath(), dir + "/" + files[0]);

    // The dump is the attacker's black box, not the victim's.
    std::string body = slurp(server.lastFlightDumpPath());
    EXPECT_NE(body.find("\"trigger\":\"quarantine\""),
              std::string::npos);
    EXPECT_NE(body.find("srv.guest0.flight"), std::string::npos);
    EXPECT_EQ(body.find("srv.guest1.flight"), std::string::npos);
    EXPECT_NE(body.find("\"doorbell_accept\""), std::string::npos);
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));

    // Quarantine release resets every function; those resets are
    // cleanup, not anomalies — still exactly one dump afterwards.
    sim.run(sim.now() + msToTicks(10));
    EXPECT_EQ(server.flightDumps(), 1u);
    EXPECT_EQ(dumpFiles(dir).size(), 1u);
}

TEST_F(FlightDumpTest, WatchdogRespawnDumps)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));
    server.startWatchdog(msToTicks(2));
    g.hypervisor().crash();
    sim.run(sim.now() + msToTicks(5));
    EXPECT_GE(server.watchdogRespawns(), 1u);
    ASSERT_GE(server.flightDumps(), 1u);
    auto files = dumpFiles(dir);
    ASSERT_GE(files.size(), 1u);
    EXPECT_NE(files[0].find("flight_srv_guest0_watchdog"),
              std::string::npos);
    std::string body = slurp(dir + "/" + files[0]);
    EXPECT_NE(body.find("\"trigger\":\"watchdog\""),
              std::string::npos);
}

TEST_F(FlightDumpTest, DeviceResetDumps)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));
    // An infrastructure-side function failure on a healthy guest:
    // DEVICE_NEEDS_RESET propagates and the dump explains it.
    // (Function 0 is the NIC; indices are per-bond, not PCI slots.)
    g.bond().failFunction(0);
    EXPECT_EQ(server.flightDumps(), 1u);
    auto files = dumpFiles(dir);
    ASSERT_EQ(files.size(), 1u);
    EXPECT_NE(files[0].find("flight_srv_guest0_reset"),
              std::string::npos);
    std::string body = slurp(dir + "/" + files[0]);
    EXPECT_NE(body.find("\"trigger\":\"reset\""),
              std::string::npos);
    // The Reset event itself is in the ring, on the failed fn.
    EXPECT_NE(body.find("\"reset\""), std::string::npos);
}

TEST_F(FlightDumpTest, CooldownSuppressesDumpStorms)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));
    g.bond().failFunction(0);
    g.bond().failFunction(1); // same tick: within cooldown
    EXPECT_EQ(server.flightDumpTriggers(), 2u);
    EXPECT_EQ(server.flightDumps(), 1u);
    EXPECT_EQ(dumpFiles(dir).size(), 1u);
}

TEST(FlightDumpSloTest, SloBreachDumpsAndCounts)
{
    std::string dir = ::testing::TempDir() + "/flight_dumps_slo";
    fs::remove_all(dir);
    fs::create_directories(dir);
    Simulation sim(7);
    cloud::VSwitch vswitch(sim, "vs");
    cloud::BlockService storage(sim, "st");
    core::BmServerParams pp;
    pp.maxBoards = 2;
    pp.obs.flightDumpDir = dir;
    // An unmeetable 1 ns target: every request violates, so the
    // first rotation with enough window samples breaches.
    pp.obs.slo.netTargetUs = 0.001;
    pp.obs.slo.window = msToTicks(1.0);
    pp.obs.slo.minWindowSamples = 8;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, pp);

    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));
    b.net().setRxHandler([](const cloud::Packet &) {});

    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 128;
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
        sim.run(sim.now() + usToTicks(100));
    }
    EXPECT_GE(server.sloBreaches(), 1u);
    EXPECT_GE(a.slo()->breaches(obs::SloRole::Net), 1u);
    auto files = dumpFiles(dir);
    ASSERT_GE(files.size(), 1u);
    bool breach_dump = false;
    for (const auto &f : files)
        breach_dump |= f.find("slo_breach") != std::string::npos;
    EXPECT_TRUE(breach_dump);
    // The breach landed in the guest's own ring too.
    std::string body = slurp(server.lastFlightDumpPath());
    EXPECT_NE(body.find("\"slo_breach\""), std::string::npos);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Unit tests for the hypervisor layers: the poll-mode
 * VirtioIoService (both flavours), BmHypervisor lifecycle, the
 * VmExecutionModel (exit charging, EPT stretch, wall-clock stall
 * windows), and the vm-guest's interrupt-injection pricing.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "vmsim/nested.hh"
#include "vmsim/vm_guest.hh"

namespace bmhive {
namespace {

TEST(VmExecModelTest, ExitChargingIsLinear)
{
    Rng rng(1);
    vmsim::VmExecParams p;
    p.preemptRatePerSec = 0; // isolate exit accounting
    p.backgroundExitsPerSec = 0;
    p.memStretch = 1.0;
    vmsim::VmExecutionModel m(rng, p);
    EXPECT_EQ(m.stretch(0, usToTicks(100), 0), usToTicks(100));
    EXPECT_EQ(m.stretch(0, usToTicks(100), 3),
              usToTicks(100) + 3 * paper::vmExitCost);
}

TEST(VmExecModelTest, BackgroundExitsScaleWithDuration)
{
    Rng rng(1);
    vmsim::VmExecParams p;
    p.preemptRatePerSec = 0;
    p.backgroundExitsPerSec = 1000.0;
    p.memStretch = 1.0;
    vmsim::VmExecutionModel m(rng, p);
    // 1 ms of work sees ~1 background exit: +10 us.
    Tick d = m.stretch(0, msToTicks(1), 0);
    EXPECT_EQ(d, msToTicks(1) + paper::vmExitCost);
}

TEST(VmExecModelTest, MemStretchMultiplies)
{
    Rng rng(1);
    vmsim::VmExecParams p;
    p.preemptRatePerSec = 0;
    p.backgroundExitsPerSec = 0;
    p.memStretch = 1.02;
    vmsim::VmExecutionModel m(rng, p);
    EXPECT_EQ(m.stretch(0, 1000000, 0), 1020000u);
}

TEST(VmExecModelTest, WallClockStallsStealExpectedFraction)
{
    // Property: total stolen time over a long busy run converges
    // to rate x mean duration.
    Rng rng(17);
    vmsim::VmExecParams p;
    p.backgroundExitsPerSec = 0;
    p.memStretch = 1.0;
    p.preemptRatePerSec = 50.0;
    p.preemptMeanDuration = usToTicks(500);
    vmsim::VmExecutionModel m(rng, p);

    Tick cursor = 0;
    Tick busy = 0;
    const Tick slice = usToTicks(100);
    for (int i = 0; i < 200000; ++i) {
        Tick d = m.stretch(cursor, slice, 0);
        cursor += d;
        busy += slice;
    }
    double stolen_frac = 1.0 - double(busy) / double(cursor);
    // Expected: 50/s * 500us = 2.5% of wall time.
    EXPECT_NEAR(stolen_frac, 0.025, 0.005);
}

TEST(VmExecModelTest, IdleThreadStillHitsStalls)
{
    // The regression the wall-clock model fixes: a thread that
    // runs tiny work items infrequently must still land in stall
    // windows with the wall-time probability.
    Rng rng(23);
    vmsim::VmExecParams p;
    p.backgroundExitsPerSec = 0;
    p.memStretch = 1.0;
    p.preemptRatePerSec = 100.0;
    p.preemptMeanDuration = msToTicks(1);
    vmsim::VmExecutionModel m(rng, p);

    unsigned hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Tick start = Tick(i) * usToTicks(50); // sparse 2us work
        Tick d = m.stretch(start, usToTicks(2), 0);
        if (d > usToTicks(10))
            ++hits;
    }
    // ~10% of wall time is stalled; sparse arrivals should hit
    // roughly that often.
    EXPECT_NEAR(double(hits) / n, 0.10, 0.03);
}

TEST(VmExecModelTest, SharedWorseThanExclusive)
{
    Rng rng(5);
    auto sh = vmsim::VmExecParams::shared();
    auto ex = vmsim::VmExecParams::exclusive();
    EXPECT_GT(sh.preemptRatePerSec * double(sh.preemptMeanDuration),
              10 * ex.preemptRatePerSec *
                  double(ex.preemptMeanDuration));
}

TEST(NestedTest, EfficienciesMatchPaperBands)
{
    double cpu = vmsim::nestedEfficiency(
        vmsim::cpuWorkloadExitRate);
    double io = vmsim::nestedEfficiency(vmsim::ioWorkloadExitRate);
    EXPECT_NEAR(cpu, paper::nestedCpuFraction, 0.05);
    EXPECT_NEAR(io, paper::nestedIoFraction, 0.05);
    // Nesting is always worse than one level.
    EXPECT_LT(cpu, vmsim::singleLevelEfficiency(
                       vmsim::cpuWorkloadExitRate));
    EXPECT_LT(io, vmsim::singleLevelEfficiency(
                      vmsim::ioWorkloadExitRate));
}

class ServiceTest : public ::testing::Test
{
  protected:
    ServiceTest()
        : sim(31), vswitch(sim, "vswitch"), storage(sim, "storage")
    {
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
};

TEST_F(ServiceTest, VmKicksAreSuppressedBmKicksAreNot)
{
    // vm: vhost polls, guest sees NO_NOTIFY and skips doorbells.
    vmsim::VmGuestParams p;
    p.mac = 0x1;
    vmsim::VmGuest vm(sim, "vm", p, vswitch);
    vm.bringUp();
    EXPECT_FALSE(
        vm.net().queue(virtio::NET_TXQ).deviceWantsKick());

    // bm: IO-Bond is hardware; the doorbell is required.
    core::BmServerParams sp;
    sp.maxBoards = 1;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0x2);
    EXPECT_TRUE(g.net().queue(virtio::NET_TXQ).deviceWantsKick());
}

TEST_F(ServiceTest, RateLimitedGuestIsPaced)
{
    core::BmServerParams sp;
    sp.maxBoards = 2;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));

    // Blast 1400B frames for 10 ms; goodput must respect the
    // 10 Gbit/s cap (plus the small burst allowance).
    std::uint64_t bytes = 0;
    b.net().setRxHandler([&](const cloud::Packet &pk) {
        bytes += pk.len;
    });
    Tick t0 = sim.now();
    std::function<void()> pump = [&] {
        if (sim.now() > t0 + msToTicks(10))
            return;
        for (int i = 0; i < 32; ++i) {
            cloud::Packet pk;
            pk.src = 0xA;
            pk.dst = 0xB;
            pk.len = 1442;
            a.net().sendPacket(pk, false, a.os().cpu(1));
        }
        a.net().kickTx(a.os().cpu(1));
        auto *ev = new OneShotEvent(pump, "pump");
        sim.eventq().schedule(ev, sim.now() + usToTicks(20));
    };
    pump();
    sim.run(t0 + msToTicks(12));
    double gbps = double(bytes) * 8.0 / ticksToSec(msToTicks(12)) /
                  1e9;
    EXPECT_LE(gbps, 11.0);
    EXPECT_GE(gbps, 7.0);
}

TEST_F(ServiceTest, UnlimitedGuestExceedsTheCap)
{
    core::BmServerParams sp;
    sp.maxBoards = 2;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, nullptr, /*rate_limited=*/false);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB, nullptr, false);
    sim.run(sim.now() + msToTicks(1));

    std::uint64_t bytes = 0;
    b.net().setRxHandler([&](const cloud::Packet &pk) {
        bytes += pk.len;
    });
    Tick t0 = sim.now();
    std::function<void()> pump = [&] {
        if (sim.now() > t0 + msToTicks(10))
            return;
        for (int i = 0; i < 64; ++i) {
            cloud::Packet pk;
            pk.src = 0xA;
            pk.dst = 0xB;
            pk.len = 8192; // jumbo-ish to stress bandwidth
            a.net().sendPacket(pk, false, a.os().cpu(1));
        }
        a.net().kickTx(a.os().cpu(1));
        auto *ev = new OneShotEvent(pump, "pump");
        sim.eventq().schedule(ev, sim.now() + usToTicks(15));
    };
    pump();
    sim.run(t0 + msToTicks(12));
    double gbps = double(bytes) * 8.0 / ticksToSec(msToTicks(12)) /
                  1e9;
    EXPECT_GT(gbps, 12.0); // well past the 10G instance cap
}

TEST_F(ServiceTest, BackendCountersTrackTraffic)
{
    core::BmServerParams sp;
    sp.maxBoards = 2;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &vol = storage.createVolume("v", 16 * MiB);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));

    for (int i = 0; i < 10; ++i) {
        cloud::Packet pk;
        pk.src = 0xA;
        pk.dst = 0xB;
        pk.len = 64;
        a.net().sendPacket(pk, true, a.os().cpu(1));
    }
    bool io_done = false;
    a.blk()->read(0, 4 * KiB, a.os().cpu(2),
                  [&](std::uint8_t, Addr) { io_done = true; });
    sim.run(sim.now() + msToTicks(20));

    EXPECT_TRUE(io_done);
    EXPECT_EQ(a.hypervisor().service().txPackets(), 10u);
    EXPECT_EQ(b.hypervisor().service().rxPackets(), 10u);
    EXPECT_EQ(a.hypervisor().service().blkIos(), 1u);
}

TEST_F(ServiceTest, RxBacklogOverflowDropsAndCounts)
{
    core::BmServerParams sp;
    sp.maxBoards = 2;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, nullptr, false);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB, nullptr, false);
    sim.run(sim.now() + msToTicks(1));

    // Shrink the victim's backlog, then stop its service so the
    // backlog cannot drain while the burst arrives.
    b.hypervisor().service().setRxBacklog(32);
    b.hypervisor().service().stop();
    for (int i = 0; i < 200; ++i) {
        cloud::Packet pk;
        pk.src = 0xA;
        pk.dst = 0xB;
        pk.len = 64;
        a.net().sendPacket(pk, false, a.os().cpu(1));
    }
    a.net().kickTx(a.os().cpu(1));
    sim.run(sim.now() + msToTicks(5));
    EXPECT_GT(b.hypervisor().service().rxDropped(), 0u);
}

TEST_F(ServiceTest, PowerOffStopsBackend)
{
    core::BmServerParams sp;
    sp.maxBoards = 1;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));
    g.hypervisor().powerOffGuest();
    EXPECT_EQ(g.board().powerState(), hw::BoardPower::Off);
    EXPECT_FALSE(g.hypervisor().connected());
    // The event loop drains without the poll loop re-arming.
    Tick before = sim.now();
    sim.run(before + msToTicks(5));
    EXPECT_GE(sim.now(), before);
}

TEST_F(ServiceTest, VmInterruptCostExceedsBmCost)
{
    vmsim::VmGuestParams p;
    p.mac = 0x9;
    vmsim::VmGuest vm(sim, "vm", p, vswitch);
    vm.bringUp();

    core::BmServerParams sp;
    sp.maxBoards = 1;
    core::BmHiveServer server(sim, "srv", vswitch, &storage, sp);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0x8);

    EXPECT_GT(vm.os().irqCost(), g.os().irqCost());
    EXPECT_GT(vm.bus().msiLatency(),
              g.board().pciBus().msiLatency());
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Unit tests for the PCI substrate: config space semantics (BAR
 * sizing protocol, capability lists, read-only regions), bus
 * address decoding, MSI delivery timing, and latency accounting.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "pci/config_space.hh"
#include "pci/pci_device.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace pci {
namespace {

TEST(ConfigSpaceTest, IdsAndClassCode)
{
    ConfigSpace cs;
    cs.setIds(0x1af4, 0x1041, 0x1af4, 0x0001, 0x020000, 3);
    EXPECT_EQ(cs.read(REG_VENDOR_ID, 2), 0x1af4u);
    EXPECT_EQ(cs.read(REG_DEVICE_ID, 2), 0x1041u);
    EXPECT_EQ(cs.read(REG_REVISION, 1), 3u);
    // Class code 0x02 (network) in the top byte of dword 0x08.
    EXPECT_EQ(cs.read(0x0b, 1), 0x02u);
    EXPECT_EQ(cs.read(REG_SUBSYS_ID, 2), 0x0001u);
}

TEST(ConfigSpaceTest, IdsAreReadOnly)
{
    ConfigSpace cs;
    cs.setIds(0x1af4, 0x1041, 0, 0, 0, 0);
    cs.write(REG_VENDOR_ID, 0xdead, 2);
    EXPECT_EQ(cs.read(REG_VENDOR_ID, 2), 0x1af4u);
}

TEST(ConfigSpaceTest, BarSizingProtocol)
{
    ConfigSpace cs;
    cs.addMemBar(0, 0x4000);
    // Standard probe: write all ones, read back the size mask.
    cs.write(REG_BAR0, 0xffffffffu, 4);
    EXPECT_EQ(cs.read(REG_BAR0, 4), ~std::uint32_t(0x4000 - 1));
    // Program a base; low bits are masked off.
    cs.write(REG_BAR0, 0xe0001234u, 4);
    EXPECT_EQ(cs.barBase(0), 0xe0000000u);
    EXPECT_EQ(cs.barSize(0), 0x4000u);
}

TEST(ConfigSpaceTest, UnimplementedBarIsHardwiredZero)
{
    ConfigSpace cs;
    cs.write(REG_BAR2, 0xffffffffu, 4);
    EXPECT_EQ(cs.read(REG_BAR2, 4), 0u);
    EXPECT_EQ(cs.barSize(2), 0u);
}

TEST(ConfigSpaceTest, BadBarSizePanics)
{
    Logger::global().setThrowOnDeath(true);
    ConfigSpace cs;
    EXPECT_THROW(cs.addMemBar(0, 100), PanicError);  // not pow2
    EXPECT_THROW(cs.addMemBar(1, 8), PanicError);    // too small
    EXPECT_THROW(cs.addMemBar(6, 4096), PanicError); // bad index
    Logger::global().setThrowOnDeath(false);
}

TEST(ConfigSpaceTest, CapabilityListChains)
{
    ConfigSpace cs;
    EXPECT_EQ(cs.read(REG_CAP_PTR, 1), 0u);
    EXPECT_FALSE(cs.read(REG_STATUS, 2) & STATUS_CAP_LIST);

    std::uint8_t c1 = cs.addCapability(CAP_ID_VENDOR, 16);
    std::uint8_t c2 = cs.addCapability(CAP_ID_MSI, 12);

    EXPECT_TRUE(cs.read(REG_STATUS, 2) & STATUS_CAP_LIST);
    EXPECT_EQ(cs.read(REG_CAP_PTR, 1), c1);
    // Walk the list: c1 -> c2 -> end.
    EXPECT_EQ(cs.read(c1, 1), CAP_ID_VENDOR);
    EXPECT_EQ(cs.read(std::uint16_t(c1 + 1), 1), c2);
    EXPECT_EQ(cs.read(c2, 1), CAP_ID_MSI);
    EXPECT_EQ(cs.read(std::uint16_t(c2 + 1), 1), 0u);
}

TEST(ConfigSpaceTest, CommandBitsControlDecoding)
{
    ConfigSpace cs;
    cs.addMemBar(0, 0x1000);
    cs.write(REG_BAR0, 0xe0000000u, 4);
    EXPECT_FALSE(cs.memEnabled());
    EXPECT_FALSE(cs.busMasterEnabled());
    cs.write(REG_COMMAND, CMD_MEM_SPACE | CMD_BUS_MASTER, 2);
    EXPECT_TRUE(cs.memEnabled());
    EXPECT_TRUE(cs.busMasterEnabled());
}

/** Minimal device: a single BAR of registers backed by an array. */
class ScratchDevice : public PciDevice
{
  public:
    ScratchDevice(Simulation &sim, std::string name, Bytes bar_size)
        : PciDevice(sim, std::move(name)), regs_(bar_size / 4, 0)
    {
        config().setIds(0x1234, 0x5678, 0, 0, 0xff0000, 1);
        config().addMemBar(0, bar_size);
    }

    std::uint32_t
    barRead(int bar, Addr offset, unsigned size) override
    {
        (void)size;
        if (bar != 0 || offset / 4 >= regs_.size())
            return 0xffffffffu;
        return regs_[offset / 4];
    }

    void
    barWrite(int bar, Addr offset, std::uint32_t value,
             unsigned size) override
    {
        (void)size;
        if (bar == 0 && offset / 4 < regs_.size())
            regs_[offset / 4] = value;
    }

  private:
    std::vector<std::uint32_t> regs_;
};

class PciBusTest : public ::testing::Test
{
  protected:
    PciBusTest()
        : bus(sim, "bus", usToTicks(0.8), Bandwidth::gbps(32)),
          devA(sim, "devA", 0x1000), devB(sim, "devB", 0x1000)
    {
        bus.attach(devA, 0);
        bus.attach(devB, 5);
        // Program non-overlapping BARs and enable decoding.
        bus.configWrite(0, REG_BAR0, 0xe0000000u, 4);
        bus.configWrite(5, REG_BAR0, 0xe0001000u, 4);
        for (int slot : {0, 5})
            bus.configWrite(slot, REG_COMMAND,
                            CMD_MEM_SPACE | CMD_BUS_MASTER, 2);
    }

    Simulation sim;
    PciBus bus;
    ScratchDevice devA, devB;
};

TEST_F(PciBusTest, DecodesByProgrammedBars)
{
    bus.memWrite(0xe0000010u, 0xaaaa, 4);
    bus.memWrite(0xe0001010u, 0xbbbb, 4);
    EXPECT_EQ(bus.memRead(0xe0000010u, 4), 0xaaaau);
    EXPECT_EQ(bus.memRead(0xe0001010u, 4), 0xbbbbu);
    // Unclaimed address reads all-ones (PCI master abort).
    EXPECT_EQ(bus.memRead(0xd0000000u, 4), 0xffffffffu);
}

TEST_F(PciBusTest, DisabledDecodingIgnoresAccess)
{
    bus.configWrite(0, REG_COMMAND, 0, 2);
    bus.memWrite(0xe0000010u, 0x1234, 4);
    EXPECT_EQ(bus.memRead(0xe0000010u, 4), 0xffffffffu);
}

TEST_F(PciBusTest, EmptySlotConfigReadsAllOnes)
{
    EXPECT_EQ(bus.configRead(9, REG_VENDOR_ID, 2), 0xffffu);
    EXPECT_EQ(bus.configRead(31, REG_BAR0, 4), 0xffffffffu);
    // Config write to an empty slot is harmless.
    bus.configWrite(9, REG_COMMAND, 0xffff, 2);
}

TEST_F(PciBusTest, DoubleAttachPanics)
{
    Logger::global().setThrowOnDeath(true);
    ScratchDevice other(sim, "other", 0x1000);
    EXPECT_THROW(bus.attach(other, 0), PanicError);
    EXPECT_THROW(bus.attach(other, 99), PanicError);
    Logger::global().setThrowOnDeath(false);
}

TEST_F(PciBusTest, MsiDeliveredAfterLatency)
{
    int got_slot = -1;
    unsigned got_vec = 0;
    Tick at = 0;
    bus.setMsiHandler([&](int slot, unsigned vec) {
        got_slot = slot;
        got_vec = vec;
        at = sim.now();
    });
    devB.raiseMsi(3);
    EXPECT_EQ(got_slot, -1); // asynchronous
    sim.run();
    EXPECT_EQ(got_slot, 5);
    EXPECT_EQ(got_vec, 3u);
    EXPECT_EQ(at, nsToTicks(200)); // default MSI latency
    EXPECT_EQ(bus.msiCount(), 1u);
}

TEST_F(PciBusTest, MsiLatencyIsConfigurable)
{
    Tick at = 0;
    bus.setMsiHandler([&](int, unsigned) { at = sim.now(); });
    bus.setMsiLatency(usToTicks(2));
    devA.raiseMsi(0);
    sim.run();
    EXPECT_EQ(at, usToTicks(2));
}

TEST_F(PciBusTest, AccessLatencyMatchesIoBondFpga)
{
    EXPECT_EQ(bus.accessLatency(), usToTicks(0.8));
    std::uint64_t before = bus.accessCount();
    bus.memRead(0xe0000000u, 4);
    bus.configRead(0, REG_VENDOR_ID, 2);
    EXPECT_EQ(bus.accessCount(), before + 2);
}

TEST(PciDeviceTest, RaiseMsiWhileDetachedPanics)
{
    Logger::global().setThrowOnDeath(true);
    Simulation sim;
    ScratchDevice dev(sim, "lonely", 0x1000);
    EXPECT_THROW(dev.raiseMsi(0), PanicError);
    Logger::global().setThrowOnDeath(false);
}

} // namespace
} // namespace pci
} // namespace bmhive

/**
 * @file
 * Property-based tests (parameterized sweeps + randomized fuzz
 * with reference models):
 *
 *  - virtqueue fuzz against an oracle queue across ring sizes and
 *    descriptor modes;
 *  - IO-Bond mirror fidelity for random chains and payloads;
 *  - token-bucket long-run rate across a rate sweep;
 *  - end-to-end exactly-once, in-order, content-intact delivery
 *    for random packet schedules;
 *  - rack-scale: exactly-once and in-order across repeated live
 *    migrations under a seeded chaos schedule, with same-seed
 *    fleet runs byte-identical in their metrics snapshots.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <deque>

#include "base/logging.hh"
#include "bench/common.hh"
#include "core/instance_catalog.hh"
#include "fleet/fleet_controller.hh"
#include "hw/compute_board.hh"
#include "iobond/iobond.hh"
#include "virtio/virtqueue.hh"
#include "workloads/adversarial.hh"

namespace bmhive {
namespace {

using namespace virtio;

struct RingParam
{
    std::uint16_t size;
    bool indirect;
    bool eventIdx;
};

class VirtqueueFuzz : public ::testing::TestWithParam<RingParam>
{
};

TEST_P(VirtqueueFuzz, RandomSubmitCompleteAgainstOracle)
{
    const RingParam p = GetParam();
    GuestMemory mem("m", 4 * MiB);
    auto layout = VringLayout::contiguous(p.size, 0x1000);
    VirtQueueDriver drv(mem, layout, p.indirect, 0x100000,
                        p.eventIdx);
    VirtQueueDevice dev(mem, layout, p.eventIdx);
    Rng rng(1000 + p.size + (p.indirect ? 1 : 0));

    // Oracle: FIFO of (cookie, expected write length).
    std::deque<std::pair<std::uint64_t, std::uint32_t>> oracle;
    std::uint64_t next_cookie = 1;
    std::uint64_t completed = 0;

    for (int step = 0; step < 20000; ++step) {
        double dice = rng.uniform();
        if (dice < 0.5) {
            // Submit a random chain shape.
            unsigned n_out = unsigned(rng.uniformInt(0, 3));
            unsigned n_in = unsigned(rng.uniformInt(0, 3));
            if (n_out + n_in == 0)
                n_out = 1;
            std::vector<Segment> out, in;
            std::uint32_t wlen = 0;
            for (unsigned i = 0; i < n_out; ++i)
                out.push_back(
                    {0x200000 + 4096 * i,
                     std::uint32_t(rng.uniformInt(1, 512)),
                     false});
            for (unsigned i = 0; i < n_in; ++i) {
                auto len =
                    std::uint32_t(rng.uniformInt(1, 512));
                in.push_back(
                    {0x280000 + 4096 * i, len, true});
                wlen += len;
            }
            auto head = drv.submit(out, in, next_cookie);
            if (head)
                oracle.push_back({next_cookie++, wlen});
        } else if (dice < 0.8) {
            // Device: pop one and complete it in FIFO order.
            if (auto chain = dev.pop()) {
                ASSERT_FALSE(oracle.empty());
                dev.pushUsed(chain->head, chain->writeLen());
            }
        } else {
            // Driver: reap everything completed.
            for (const auto &c : drv.collectUsed()) {
                ASSERT_FALSE(oracle.empty());
                auto [cookie, wlen] = oracle.front();
                // Device completes in pop order == submit order.
                if (c.cookie == cookie) {
                    EXPECT_EQ(c.len, wlen);
                    oracle.pop_front();
                    ++completed;
                }
            }
        }
    }
    // Drain.
    while (auto chain = dev.pop())
        dev.pushUsed(chain->head, chain->writeLen());
    for (const auto &c : drv.collectUsed()) {
        ASSERT_FALSE(oracle.empty());
        EXPECT_EQ(c.cookie, oracle.front().first);
        EXPECT_EQ(c.len, oracle.front().second);
        oracle.pop_front();
        ++completed;
    }
    EXPECT_TRUE(oracle.empty());
    EXPECT_GT(completed, 1000u);
    EXPECT_EQ(dev.badChains(), 0u);
    EXPECT_EQ(drv.freeDescs(), p.size);
}

INSTANTIATE_TEST_SUITE_P(
    Rings, VirtqueueFuzz,
    ::testing::Values(RingParam{2, false, false},
                      RingParam{4, false, false},
                      RingParam{8, true, false},
                      RingParam{64, false, true},
                      RingParam{256, true, false},
                      RingParam{256, true, true},
                      RingParam{1024, false, false}),
    [](const auto &info) {
        return "sz" + std::to_string(info.param.size) +
               (info.param.indirect ? "_ind" : "_dir") +
               (info.param.eventIdx ? "_evt" : "_flag");
    });

class IoBondMirrorFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(IoBondMirrorFuzz, RandomChainsMirroredByteExact)
{
    Simulation sim(GetParam());
    hw::ComputeBoard board(sim, "board",
                           hw::CpuCatalog::xeonE5_2682v4(),
                           32 * MiB, paper::ioBondPciAccess);
    GuestMemory baseMem("base", 64 * MiB);
    iobond::IoBond bond(sim, "bond", board, baseMem, 0);
    bond.addNetFunction(3, 0x1);
    auto &bus = board.pciBus();
    bus.configWrite(3, pci::REG_BAR0, 0xe0000000u, 4);
    bus.configWrite(3, pci::REG_COMMAND,
                    pci::CMD_MEM_SPACE | pci::CMD_BUS_MASTER, 2);
    auto wr = [&](Addr off, std::uint32_t v, unsigned size) {
        bus.memWrite(0xe0000000u + off, v, size);
    };
    auto layout = VringLayout::contiguous(64, 0x10000);
    wr(COMMON_Q_SELECT, NET_TXQ, 2);
    wr(COMMON_Q_SIZE, 64, 2);
    wr(COMMON_Q_DESCLO, std::uint32_t(layout.descAddr()), 4);
    wr(COMMON_Q_AVAILLO, std::uint32_t(layout.availAddr()), 4);
    wr(COMMON_Q_USEDLO, std::uint32_t(layout.usedAddr()), 4);
    wr(COMMON_Q_ENABLE, 1, 2);
    wr(COMMON_STATUS,
       STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_DRIVER_OK, 1);

    bool use_indirect = GetParam() % 2 == 0;
    VirtQueueDriver drv(board.memory(), layout, use_indirect,
                        0x40000);
    VirtQueueDevice dev(baseMem, bond.shadowLayout(0, NET_TXQ));
    Rng &rng = sim.rng();

    for (int round = 0; round < 60; ++round) {
        // Random payload in random guest location.
        Bytes len = rng.uniformInt(1, 2000);
        Addr src = 0x100000 + rng.uniformInt(0, 64) * 4096;
        std::vector<std::uint8_t> payload(len);
        for (auto &b : payload)
            b = std::uint8_t(rng.uniformInt(0, 255));
        board.memory().writeBlob(src, payload);

        unsigned parts = unsigned(rng.uniformInt(1, 3));
        std::vector<Segment> out;
        Bytes off = 0;
        for (unsigned i = 0; i < parts; ++i) {
            Bytes n = (i + 1 == parts)
                          ? len - off
                          : std::min<Bytes>(
                                len - off,
                                rng.uniformInt(0, len / parts) + 1);
            if (n == 0)
                continue;
            out.push_back({src + off, std::uint32_t(n), false});
            off += n;
        }
        auto head = drv.submit(out, {}, round);
        ASSERT_TRUE(head.has_value());
        wr(notifyRegionOffset, NET_TXQ, 4);
        sim.run(sim.now() + msToTicks(1));

        auto chain = dev.pop();
        ASSERT_TRUE(chain.has_value()) << round;
        // Reassemble from shadow memory: must match byte for byte.
        std::vector<std::uint8_t> got;
        for (const auto &seg : chain->segs) {
            auto blob = baseMem.readBlob(seg.addr, seg.len);
            got.insert(got.end(), blob.begin(), blob.end());
        }
        ASSERT_EQ(got, payload) << round;
        dev.pushUsed(chain->head, 0);
        bond.backendCompleted(0, NET_TXQ);
        sim.run(sim.now() + msToTicks(1));
        drv.collectUsed();
    }
    EXPECT_EQ(bond.malformedChains(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoBondMirrorFuzz,
                         ::testing::Values(1, 2, 3, 4));

class TokenBucketRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(TokenBucketRateSweep, LongRunRateMatchesConfig)
{
    double rate = GetParam();
    // Burst must cover the arrival quantization or a drop-style
    // consumer loses tokens to the cap (not a pacing bug).
    TokenBucket b(rate, std::max(rate / 100.0, 8.0));
    Rng rng(7);
    Tick now = 0;
    std::uint64_t admitted = 0;
    // Offer at ~3x the configured rate with random gaps; bound the
    // iteration count so high rates stay fast.
    double secs = std::min(20.0, 2e6 / (3.0 * rate));
    Tick horizon = secToTicks(secs);
    double offer_gap_sec = 1.0 / (3.0 * rate);
    while (now < horizon) {
        now += Tick(rng.exponential(offer_gap_sec * tickSec));
        if (b.tryConsume(now, 1.0))
            ++admitted;
    }
    double measured = double(admitted) / ticksToSec(now);
    // The initial burst allowance drains once; account for it.
    double expected = rate + b.burst() / ticksToSec(now);
    EXPECT_NEAR(measured, expected, rate * 0.04);
}

INSTANTIATE_TEST_SUITE_P(Rates, TokenBucketRateSweep,
                         ::testing::Values(100.0, 5000.0, 250000.0,
                                           4.0e6),
                         [](const auto &info) {
                             return "r" + std::to_string(
                                              long(info.param));
                         });

class EndToEndDelivery : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EndToEndDelivery, ExactlyOnceInOrderContentIntact)
{
    bench::Testbed bed(500 + GetParam());
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    Rng &rng = bed.sim.rng();
    std::vector<std::uint64_t> seqs;
    std::uint64_t bad_fields = 0;
    b.net->setRxHandler([&](const cloud::Packet &p) {
        seqs.push_back(p.seq);
        if (p.src != 0xA || p.dst != 0xB)
            ++bad_fields;
    });

    const unsigned total = 500;
    unsigned sent = 0;
    std::function<void()> pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 24));
        for (unsigned i = 0; i < burst && sent < total; ++i) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = cloud::udpFrameBytes(rng.uniformInt(1, 1300));
            p.seq = sent;
            p.created = bed.sim.now();
            if (!a.net->sendPacket(p, false, a.cpu(1)))
                break;
            ++sent;
        }
        a.net->kickTx(a.cpu(1));
        if (sent < total) {
            auto *ev = new OneShotEvent(pump, "pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(1000, 200000)));
        }
    };
    pump();
    bed.sim.run(bed.sim.now() + msToTicks(100));

    ASSERT_EQ(sent, total);
    ASSERT_EQ(seqs.size(), total);
    for (unsigned i = 0; i < total; ++i)
        ASSERT_EQ(seqs[i], i);
    EXPECT_EQ(bad_fields, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndDelivery,
                         ::testing::Values(1u, 2u, 3u));

class FaultScheduleFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FaultScheduleFuzz, TokensConservedIndicesMonotonic)
{
    bench::Testbed bed(900 + GetParam());
    auto g = bed.bmGuest(0xC, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    fault::FaultInjector chaos(bed.sim, "chaos");
    std::vector<fault::FaultInjector::RandomTarget> targets = {
        {"server.guest0.iobond",
         {fault::FaultKind::LinkFlap,
          fault::FaultKind::DropDoorbell}},
        {"server.guest0.iobond.dma",
         {fault::FaultKind::DmaCorrupt,
          fault::FaultKind::DmaFail}},
        {"server.guest0.hv",
         {fault::FaultKind::HvStall, fault::FaultKind::HvCrash}},
        {"storage",
         {fault::FaultKind::BlockLose,
          fault::FaultKind::BlockDelay}},
        {"vswitch", {fault::FaultKind::PortStall}},
    };
    chaos.randomPlan(GetParam(), targets, msToTicks(30.0), 14);
    chaos.arm();
    bed.server.startWatchdog(msToTicks(1.0));

    // Token conservation: every block request issued must complete
    // exactly once — OK or IOERR — no matter what the schedule
    // injects (losses retry, crashes respawn, resets fail-fast).
    const unsigned total = 160;
    std::vector<unsigned> completions(total, 0);
    unsigned issued = 0, finished = 0;
    Rng rng(77 + GetParam());
    std::function<void()> pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 6));
        for (unsigned i = 0; i < burst && issued < total; ++i) {
            unsigned id = issued;
            bool ok = g.blk->read(
                rng.uniformInt(0, 1000) * 8, 4096, g.cpu(0),
                [&completions, &finished, id](std::uint8_t,
                                              Addr) {
                    ++completions[id];
                    ++finished;
                });
            if (!ok)
                break;
            ++issued;
        }
        if (issued < total) {
            auto *ev = new OneShotEvent(pump, "pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(10000, 400000)));
        }
    };
    pump();

    // Index monotonicity: the guest-visible avail and used indices
    // of the blk ring only move forward (mod 2^16) within a device
    // generation; a DEVICE_NEEDS_RESET reinit legitimately starts
    // a fresh ring at zero.
    const Tick stop_at = bed.sim.now() + msToTicks(40.0);
    std::uint16_t last_avail = 0, last_used = 0;
    std::uint64_t last_gen = ~std::uint64_t(0);
    std::uint64_t violations = 0;
    std::function<void()> sample = [&] {
        if (g.blk->initialized()) {
            if (g.blk->resets() != last_gen) {
                last_gen = g.blk->resets();
                last_avail = 0;
                last_used = 0;
            }
            GuestMemory &m = g.os->memory();
            const auto &lay = g.blk->queue(0).layout();
            std::uint16_t a = lay.availIdx(m);
            std::uint16_t u = lay.usedIdx(m);
            if (std::uint16_t(a - last_avail) >= 0x8000)
                ++violations;
            if (std::uint16_t(u - last_used) >= 0x8000)
                ++violations;
            last_avail = a;
            last_used = u;
        }
        if (bed.sim.now() < stop_at) {
            auto *ev = new OneShotEvent(sample, "sample");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() + usToTicks(20.0));
        }
    };
    sample();

    bed.sim.run(stop_at);
    // Let retries, watchdog respawns, and reset recovery settle.
    for (int spin = 0; spin < 200 && finished < issued; ++spin)
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

    EXPECT_EQ(issued, total);
    EXPECT_EQ(finished, issued);
    for (unsigned i = 0; i < issued; ++i)
        EXPECT_EQ(completions[i], 1u) << "request " << i;
    EXPECT_EQ(violations, 0u);
    EXPECT_GT(chaos.injected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScheduleFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u));

class HostileNeighbor : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HostileNeighbor, HonestTenantsKeepTheirInvariants)
{
    // One adversarial tenant, three honest ones. The attacker may
    // cost itself its own devices (quarantine, resets); the honest
    // guests' exactly-once and in-order invariants must hold as if
    // it were not there.
    bench::Testbed bed(700 + GetParam());
    bed.bmGuest(0xE, 0); // attacker, guest 0
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    auto c = bed.bmGuest(0xC, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    ASSERT_NE(c.blk, nullptr);

    workloads::AdversarialGuestParams ap;
    ap.seed = 40 + GetParam();
    ap.period = usToTicks(1.0);
    workloads::AdversarialGuest adv(
        bed.sim, "adv", bed.server.guest(0).board(), ap);
    adv.start();

    // Honest net pair: exactly-once, in-order a -> b.
    Rng rng(33 + GetParam());
    std::vector<std::uint64_t> seqs;
    b.net->setRxHandler(
        [&](const cloud::Packet &p) { seqs.push_back(p.seq); });
    const unsigned total_pkts = 300;
    unsigned sent = 0;
    std::function<void()> net_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 16));
        for (unsigned i = 0; i < burst && sent < total_pkts; ++i) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = cloud::udpFrameBytes(rng.uniformInt(1, 1300));
            p.seq = sent;
            p.created = bed.sim.now();
            if (!a.net->sendPacket(p, false, a.cpu(1)))
                break;
            ++sent;
        }
        a.net->kickTx(a.cpu(1));
        if (sent < total_pkts) {
            auto *ev = new OneShotEvent(net_pump, "net_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(1000, 100000)));
        }
    };
    net_pump();

    // Honest blk tenant: every request completes exactly once.
    const unsigned total_reqs = 120;
    std::vector<unsigned> completions(total_reqs, 0);
    unsigned issued = 0, finished = 0;
    std::function<void()> blk_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 6));
        for (unsigned i = 0; i < burst && issued < total_reqs;
             ++i) {
            unsigned id = issued;
            bool ok = c.blk->read(
                rng.uniformInt(0, 1000) * 8, 4096, c.cpu(0),
                [&completions, &finished, id](std::uint8_t,
                                              Addr) {
                    ++completions[id];
                    ++finished;
                });
            if (!ok)
                break;
            ++issued;
        }
        if (issued < total_reqs) {
            auto *ev = new OneShotEvent(blk_pump, "blk_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(10000, 300000)));
        }
    };
    blk_pump();

    bed.sim.run(bed.sim.now() + msToTicks(20.0));
    adv.stop();
    for (int spin = 0; spin < 200 && finished < issued; ++spin)
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

    // The attacker was actually attacking, and was contained.
    EXPECT_GT(adv.attacks(), 1000u);
    EXPECT_GT(bed.server.guest(0).bond().guestFaultsTotal(), 0u);

    // Honest invariants, unharmed.
    ASSERT_EQ(sent, total_pkts);
    ASSERT_EQ(seqs.size(), total_pkts);
    for (unsigned i = 0; i < total_pkts; ++i)
        ASSERT_EQ(seqs[i], i);
    EXPECT_EQ(issued, total_reqs);
    EXPECT_EQ(finished, issued);
    for (unsigned i = 0; i < issued; ++i)
        EXPECT_EQ(completions[i], 1u) << "request " << i;
    // Containment never touched the honest guests' devices.
    EXPECT_EQ(a.net->resets(), 0u);
    EXPECT_EQ(b.net->resets(), 0u);
    EXPECT_EQ(c.net->resets(), 0u);
    EXPECT_EQ(c.blk->resets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileNeighbor,
                         ::testing::Values(1u, 2u));

class MultiQueueChaos : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MultiQueueChaos, PerFlowOrderAndExactlyOnceAcrossQueues)
{
    // A 4-pair/2-queue guest under a doorbell-drop + link-flap
    // chaos schedule: RSS spreads the flows over the rx queues and
    // blk-mq spreads requests over the submission queues, yet every
    // flow stays in order and every block request completes exactly
    // once — multi-queue must not weaken the single-queue delivery
    // invariants.
    core::BmServerParams sp;
    sp.maxBoards = 4;
    sp.schedMode = core::SchedMode::Shared;
    sp.pollCores = 2;
    sp.netQueuePairs = 4;
    sp.blkQueues = 2;
    bench::Testbed bed(900 + GetParam(), sp);
    auto a = bed.bmGuest(0xA, 16);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));
    ASSERT_EQ(a.net->activeQueuePairs(), 4u);
    ASSERT_NE(a.blk, nullptr);
    ASSERT_EQ(a.blk->activeQueues(), 2u);

    fault::FaultInjector chaos(bed.sim, "chaos");
    std::vector<fault::FaultInjector::RandomTarget> targets = {
        {"server.guest0.iobond",
         {fault::FaultKind::LinkFlap,
          fault::FaultKind::DropDoorbell}},
    };
    chaos.randomPlan(40 + GetParam(), targets, msToTicks(30.0),
                     16);
    chaos.arm();
    bed.server.startWatchdog(msToTicks(2.0));

    // Multi-flow net pump: per-flow sequence numbers; XPS on tx
    // and RSS on rx steer each flow onto its own queue pair.
    constexpr unsigned flows = 8;
    constexpr unsigned per_flow = 60;
    Rng rng(50 + GetParam());
    std::array<std::uint64_t, flows> next_seq{};
    std::array<std::vector<std::uint64_t>, flows> got;
    unsigned sent = 0;
    b.net->setRxHandler([&](const cloud::Packet &p) {
        ASSERT_LT(p.flow, flows);
        got[p.flow].push_back(p.seq);
    });
    std::function<void()> net_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 16));
        for (unsigned i = 0;
             i < burst && sent < flows * per_flow; ++i) {
            unsigned flow = unsigned(rng.uniformInt(0, flows - 1));
            if (next_seq[flow] >= per_flow)
                continue; // this flow is done; burst slot forfeited
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = cloud::udpFrameBytes(rng.uniformInt(1, 1300));
            p.flow = flow;
            p.seq = next_seq[flow];
            p.created = bed.sim.now();
            if (!a.net->sendPacket(p, false, a.cpu(1 + flow % 4)))
                break;
            ++next_seq[flow];
            ++sent;
        }
        a.net->kickTx(a.cpu(1));
        if (sent < flows * per_flow) {
            auto *ev = new OneShotEvent(net_pump, "net_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(1000, 100000)));
        }
    };
    net_pump();

    // blk-mq pump: requests issued from four vCPUs ride both
    // submission queues; each must complete exactly once.
    const unsigned total_reqs = 200;
    std::vector<unsigned> completions(total_reqs, 0);
    unsigned issued = 0, finished = 0;
    std::function<void()> blk_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 6));
        for (unsigned i = 0; i < burst && issued < total_reqs;
             ++i) {
            unsigned id = issued;
            bool ok = a.blk->read(
                rng.uniformInt(0, 1000) * 8, 4096,
                a.cpu(id % 4),
                [&completions, &finished, id](std::uint8_t,
                                              Addr) {
                    ++completions[id];
                    ++finished;
                });
            if (!ok)
                break; // ring full mid-drain: retry next pump
            ++issued;
        }
        if (issued < total_reqs) {
            auto *ev = new OneShotEvent(blk_pump, "blk_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(10000, 300000)));
        }
    };
    blk_pump();

    bed.sim.run(bed.sim.now() + msToTicks(40.0));
    std::uint64_t received = 0;
    auto tally = [&] {
        received = 0;
        for (const auto &g : got)
            received += g.size();
    };
    tally();
    for (int spin = 0;
         spin < 300 && (finished < issued ||
                        issued < total_reqs ||
                        sent < flows * per_flow ||
                        received < flows * per_flow);
         ++spin) {
        bed.sim.run(bed.sim.now() + msToTicks(1.0));
        tally();
    }

    EXPECT_GT(chaos.injected(), 0u);

    // Exactly-once, in-order within every flow. Cross-flow order
    // is deliberately unconstrained — that is what RSS trades away.
    ASSERT_EQ(sent, flows * per_flow);
    for (unsigned f = 0; f < flows; ++f) {
        ASSERT_EQ(got[f].size(), per_flow) << "flow " << f;
        for (unsigned i = 0; i < per_flow; ++i) {
            ASSERT_EQ(got[f][i], i)
                << "flow " << f << " packet " << i;
        }
    }

    // Exactly-once for every block request on every queue.
    EXPECT_EQ(issued, total_reqs);
    EXPECT_EQ(finished, issued);
    for (unsigned i = 0; i < issued; ++i)
        EXPECT_EQ(completions[i], 1u) << "request " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiQueueChaos,
                         ::testing::Values(1u, 2u));

/** One seeded fleet scenario: a loaded guest ping-pongs between
 *  base servers while a chaos schedule (doorbell drops, link
 *  flaps, backend stalls/crashes, storage delays/losses, port
 *  stalls) fires around it. Returns the end-of-run metrics
 *  snapshot so same-seed runs can be compared byte for byte. */
struct FleetChaosOutcome
{
    std::uint64_t migrations = 0;
    std::uint64_t aborts = 0;
    std::string metricsJson;
};

FleetChaosOutcome
runFleetChaos(unsigned seed)
{
    FleetChaosOutcome out;
    Simulation sim(seed);
    cloud::VSwitch vswitch(sim, "vswitch");
    cloud::BlockService storage(sim, "storage");
    fleet::FleetParams fp;
    fp.servers = 3;
    fp.server.maxBoards = 2;
    fleet::FleetController fc(sim, "fleet", vswitch, &storage,
                              fp);
    auto &vol = storage.createVolume("v", 16 * MiB);
    fleet::GuestId mover =
        fc.place(core::InstanceCatalog::evaluated(), 0xA, &vol);
    fleet::GuestId sink =
        fc.place(core::InstanceCatalog::evaluated(), 0xB);
    EXPECT_NE(mover, fleet::invalidGuest);
    EXPECT_NE(sink, fleet::invalidGuest);
    if (mover == fleet::invalidGuest || sink == fleet::invalidGuest)
        return out;
    EXPECT_EQ(fc.serverOf(mover), 0u); // chaos targets assume s0
    sim.run(sim.now() + msToTicks(1));

    // The driver objects live inside the BmGuest, which travels by
    // unique_ptr across export/adopt: these pointers stay valid
    // through every migration (unlike FleetController::guest(),
    // which panics inside the export->adopt window).
    guest::BlkDriver *blk = fc.guest(mover).blk();
    guest::NetDriver *net = &fc.guest(mover).net();
    guest::NetDriver *rx = &fc.guest(sink).net();
    hw::CpuExecutor &blk_cpu = fc.guest(mover).os().cpu(0);
    hw::CpuExecutor &net_cpu = fc.guest(mover).os().cpu(1);

    fault::FaultInjector chaos(sim, "chaos");
    std::vector<fault::FaultInjector::RandomTarget> targets = {
        {"fleet.s0.guest0.iobond",
         {fault::FaultKind::LinkFlap,
          fault::FaultKind::DropDoorbell}},
        {"fleet.s0.guest0.hv",
         {fault::FaultKind::HvStall, fault::FaultKind::HvCrash}},
        {"storage",
         {fault::FaultKind::BlockLose,
          fault::FaultKind::BlockDelay}},
        {"vswitch", {fault::FaultKind::PortStall}},
    };
    chaos.randomPlan(seed, targets, msToTicks(50.0), 12);
    chaos.arm();

    Rng rng(40 + seed);
    std::vector<std::uint64_t> seqs;
    rx->setRxHandler(
        [&](const cloud::Packet &p) { seqs.push_back(p.seq); });

    const unsigned total_reqs = 1000;
    std::vector<unsigned> completions(total_reqs, 0);
    unsigned issued = 0, finished = 0;
    std::function<void()> blk_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 8));
        for (unsigned i = 0; i < burst && issued < total_reqs;
             ++i) {
            unsigned id = issued;
            bool ok = blk->read(
                rng.uniformInt(0, 1000) * 8, 4096, blk_cpu,
                [&completions, &finished, id](std::uint8_t,
                                              Addr) {
                    ++completions[id];
                    ++finished;
                });
            if (!ok)
                break; // ring full mid-drain: retry next pump
            ++issued;
        }
        if (issued < total_reqs) {
            auto *ev = new OneShotEvent(blk_pump, "blk_pump");
            sim.eventq().schedule(
                ev, sim.now() +
                        Tick(rng.uniformInt(50000, 300000)));
        }
    };
    blk_pump();

    const unsigned total_pkts = 600;
    unsigned sent = 0;
    std::function<void()> net_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 16));
        for (unsigned i = 0; i < burst && sent < total_pkts;
             ++i) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = cloud::udpFrameBytes(rng.uniformInt(1, 1300));
            p.seq = sent;
            p.created = sim.now();
            if (!net->sendPacket(p, false, net_cpu))
                break;
            ++sent;
        }
        net->kickTx(net_cpu);
        if (sent < total_pkts) {
            auto *ev = new OneShotEvent(net_pump, "net_pump");
            sim.eventq().schedule(
                ev, sim.now() +
                        Tick(rng.uniformInt(20000, 200000)));
        }
    };
    net_pump();

    // Ping-pong the loaded guest between servers for the whole
    // run; a tick that catches it mid-migration just skips.
    bool workload_live = true;
    std::function<void()> mig_tick = [&] {
        if (fc.alive(mover) && !fc.migrating(mover)) {
            unsigned cur = fc.serverOf(mover);
            for (unsigned k = 1; k < fc.serverCount(); ++k) {
                unsigned t = (cur + k) % fc.serverCount();
                if (fc.serverDead(t))
                    continue;
                fc.migrate(mover, t);
                break;
            }
        }
        if (workload_live) {
            auto *ev = new OneShotEvent(mig_tick, "mig_tick");
            sim.eventq().schedule(ev,
                                  sim.now() + usToTicks(1200));
        }
    };
    mig_tick();

    sim.run(sim.now() + msToTicks(60.0));
    workload_live = false;
    for (int spin = 0;
         spin < 300 && (finished < issued || issued < total_reqs ||
                        sent < total_pkts ||
                        seqs.size() < total_pkts ||
                        fc.migrating(mover));
         ++spin)
        sim.run(sim.now() + msToTicks(1.0));

    // Exactly-once for every block request, across every blackout,
    // rollback, and respawn the schedule produced.
    EXPECT_EQ(issued, total_reqs);
    EXPECT_EQ(finished, issued);
    for (unsigned i = 0; i < issued; ++i)
        EXPECT_EQ(completions[i], 1u) << "request " << i;

    // Exactly-once, in-order for the packet flood.
    EXPECT_EQ(sent, total_pkts);
    EXPECT_EQ(seqs.size(), total_pkts);
    for (unsigned i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(seqs[i], i) << "packet " << i;
        if (seqs[i] != i)
            break; // one report; the rest would cascade
    }

    // The run actually migrated under load, repeatedly.
    EXPECT_GE(fc.migrationsDone(), 5u);
    EXPECT_GT(chaos.injected(), 0u);

    out.migrations = fc.migrationsDone();
    out.aborts = fc.migrationAborts();
    out.metricsJson = sim.metrics().toJson();
    return out;
}

class FleetMigrationChaos
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FleetMigrationChaos, MigrationExactlyOnce)
{
    FleetChaosOutcome first = runFleetChaos(GetParam());
    if (::testing::Test::HasFatalFailure())
        return;
    // Determinism: the whole fleet — placement, migrations,
    // chaos, failovers — replays bit-exact from the seed; the
    // metrics snapshots (every counter, histogram bucket, and
    // latency percentile) must match byte for byte.
    FleetChaosOutcome second = runFleetChaos(GetParam());
    EXPECT_EQ(first.migrations, second.migrations);
    EXPECT_EQ(first.aborts, second.aborts);
    EXPECT_EQ(first.metricsJson, second.metricsJson);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetMigrationChaos,
                         ::testing::Values(1u, 2u));

/** One seeded corruption storm: randomized corruption-only chaos
 *  (DMA payload flips, shadow-metadata rot, storage- and
 *  net-fabric flips) over concurrent fio and a packet flood. The
 *  integrity layer may drop or delay — it must never deliver a
 *  corrupted byte, complete a block request other than exactly
 *  once, or reorder the honest packet stream. */
struct IntegrityChaosOutcome
{
    std::uint64_t detections = 0;
    std::string metricsJson;
};

IntegrityChaosOutcome
runIntegrityChaos(unsigned seed)
{
    IntegrityChaosOutcome out;
    bench::Testbed bed(8800 + seed);
    auto a = bed.bmGuest(0xA, 16);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    EXPECT_NE(a.blk, nullptr);
    if (!a.blk)
        return out;

    // Corruption in every layer the integrity ladder covers; the
    // schedule is drawn from the seed, independent of the
    // workload's random stream.
    fault::FaultInjector chaos(bed.sim, "chaos");
    chaos.randomPlan(
        9100 + seed,
        {{"server.guest0.iobond.dma",
          {fault::FaultKind::DmaCorrupt}},
         {"server.guest0.iobond",
          {fault::FaultKind::DmaCorruptMeta}},
         {"storage", {fault::FaultKind::FabricCorrupt}},
         {"vswitch", {fault::FaultKind::FabricCorrupt}}},
        msToTicks(25.0), 14);
    chaos.arm();

    Rng rng(40 + seed);

    // Packet flood a -> b. Corrupted frames may be dropped by the
    // fabric or the receiver; whatever arrives must verify and
    // stay in order with no duplicates.
    std::int64_t last_seq = -1;
    unsigned rx_bad = 0, rx_misorder = 0, rxn = 0;
    b.net->setRxHandler([&](const cloud::Packet &p) {
        ++rxn;
        if (!cloud::packetCsumOk(p))
            ++rx_bad;
        if (std::int64_t(p.seq) <= last_seq)
            ++rx_misorder;
        last_seq = std::int64_t(p.seq);
    });
    const unsigned total_pkts = 300;
    unsigned sent = 0;
    std::function<void()> net_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 16));
        for (unsigned i = 0; i < burst && sent < total_pkts; ++i) {
            cloud::Packet p;
            p.src = 0xA;
            p.dst = 0xB;
            p.len = cloud::udpFrameBytes(rng.uniformInt(1, 1300));
            p.seq = sent;
            p.created = bed.sim.now();
            if (!a.net->sendPacket(p, false, a.cpu(1)))
                break;
            ++sent;
        }
        a.net->kickTx(a.cpu(1));
        if (sent < total_pkts) {
            auto *ev = new OneShotEvent(net_pump, "net_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(10000, 150000)));
        }
    };
    net_pump();

    // fio: write a known pattern, then read it back. A completion
    // may report a contained error (IOERR), but an OK read must
    // return exactly the written bytes — anything else is silent
    // corruption, the one thing this layer exists to prevent.
    const unsigned pairs = 60;
    std::vector<unsigned> wcomp(pairs, 0), rcomp(pairs, 0);
    unsigned wissued = 0, wdone = 0;
    unsigned rstarted = 0, rdone = 0;
    unsigned silent = 0;
    std::function<void(unsigned)> start_read;
    start_read = [&](unsigned id) {
        bool ok = a.blk->read(
            8 + id * 8, 4096, a.cpu(0),
            [&, id](std::uint8_t st, Addr data) {
                ++rcomp[id];
                ++rdone;
                if (st != 0)
                    return; // contained failure: allowed
                auto got = a.os->memory().readBlob(data, 4096);
                auto want = std::uint8_t(131 + id * 7);
                for (std::uint8_t byte : got) {
                    if (byte != want) {
                        ++silent;
                        break;
                    }
                }
            });
        if (ok) {
            ++rstarted;
        } else {
            // Ring full or device mid-reset: try again shortly.
            auto *ev = new OneShotEvent([&, id] { start_read(id); },
                                        "rd_retry");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() + usToTicks(200));
        }
    };
    std::function<void()> blk_pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 4));
        for (unsigned i = 0; i < burst && wissued < pairs; ++i) {
            unsigned id = wissued;
            std::vector<std::uint8_t> data(
                4096, std::uint8_t(131 + id * 7));
            bool ok = a.blk->write(
                8 + id * 8, 4096, &data, a.cpu(0),
                [&, id](std::uint8_t st, Addr) {
                    ++wcomp[id];
                    ++wdone;
                    if (st == 0)
                        start_read(id);
                });
            if (!ok)
                break;
            ++wissued;
        }
        if (wissued < pairs) {
            auto *ev = new OneShotEvent(blk_pump, "blk_pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(20000, 200000)));
        }
    };
    blk_pump();

    bed.sim.run(bed.sim.now() + msToTicks(45.0));
    for (int spin = 0;
         spin < 300 &&
         (wissued < pairs || wdone < wissued || sent < total_pkts ||
          rdone < rstarted);
         ++spin)
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

    // The storm actually fired, and at least one layer detected it.
    EXPECT_GT(chaos.injected(), 0u);
    auto &m = bed.sim.metrics();
    out.detections =
        m.counter("server.guest0.iobond.dma.integrity.ecrc_detected")
            .value() +
        bed.server.guest(0).bond().metaFaultsInjected() +
        m.counter("vswitch.integrity.frame_drops").value() +
        a.svc->difDetects() + a.net->rxCsumDrops() +
        b.net->rxCsumDrops();
    EXPECT_GT(out.detections, 0u);

    // Zero corrupted payloads delivered, anywhere.
    EXPECT_EQ(silent, 0u);
    EXPECT_EQ(rx_bad, 0u);
    EXPECT_EQ(rx_misorder, 0u);

    // Exactly-once for every block completion.
    EXPECT_EQ(wissued, pairs);
    EXPECT_EQ(wdone, pairs);
    EXPECT_EQ(rdone, rstarted);
    for (unsigned i = 0; i < pairs; ++i) {
        EXPECT_EQ(wcomp[i], 1u) << "write " << i;
        EXPECT_LE(rcomp[i], 1u) << "read " << i;
    }
    EXPECT_EQ(sent, total_pkts);
    EXPECT_LE(rxn, total_pkts);

    out.metricsJson = m.toJson();
    return out;
}

class IntegrityChaos : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IntegrityChaos, NoSilentCorruptionExactlyOnce)
{
    IntegrityChaosOutcome first = runIntegrityChaos(GetParam());
    if (::testing::Test::HasFatalFailure())
        return;
    // Determinism: the same seed replays the same storm and the
    // same containment, byte for byte in the metrics snapshot.
    IntegrityChaosOutcome second = runIntegrityChaos(GetParam());
    EXPECT_EQ(first.detections, second.detections);
    EXPECT_EQ(first.metricsJson, second.metricsJson);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrityChaos,
                         ::testing::Values(1u, 2u));

} // namespace
} // namespace bmhive

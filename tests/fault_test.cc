/**
 * @file
 * Fault-injection and recovery tests:
 *
 *  - plan parsing and kind-name round trips;
 *  - hostile indirect descriptor tables (cyclic, self-referencing,
 *    out-of-table next pointers) terminate and drop, never hang;
 *  - a scripted chaos schedule (DMA errors, lost/delayed block
 *    I/O, link flaps, dropped doorbells, a port stall, and one
 *    bm-hypervisor crash) under concurrent PacketFlood and fio:
 *    the simulation finishes, every tracked block request
 *    completes exactly once, the guest driver observes
 *    DEVICE_NEEDS_RESET and reinitializes, the watchdog respawns
 *    the crashed process within a bounded time;
 *  - determinism: same seed + same plan => identical metrics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench/common.hh"
#include "fault/fault_injector.hh"
#include "virtio/virtqueue.hh"
#include "workloads/fio.hh"
#include "workloads/net_perf.hh"

namespace bmhive {
namespace {

using namespace virtio;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSpec;

FaultSpec
spec(FaultKind k, unsigned count = 1, Tick dur = 0,
     double mag = 0.0)
{
    FaultSpec s;
    s.kind = k;
    s.count = count;
    s.duration = dur;
    s.magnitude = mag;
    return s;
}

TEST(FaultPlanTest, KindNamesRoundTrip)
{
    for (auto k :
         {FaultKind::DmaCorrupt, FaultKind::DmaFail,
          FaultKind::LinkFlap, FaultKind::DropDoorbell,
          FaultKind::FunctionFail, FaultKind::BlockLose,
          FaultKind::BlockDelay, FaultKind::PortStall,
          FaultKind::HvStall, FaultKind::HvCrash}) {
        auto back = FaultInjector::kindFromName(
            FaultInjector::kindName(k));
        ASSERT_TRUE(back.has_value())
            << FaultInjector::kindName(k);
        EXPECT_EQ(*back, k);
    }
    EXPECT_FALSE(
        FaultInjector::kindFromName("no_such_kind").has_value());
}

TEST(FaultPlanTest, LoadPlanParsesAndRejectsAtomically)
{
    const char *path = "/tmp/bmhive_fault_plan_ok.txt";
    std::FILE *f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment line\n"
               "1500 server.guest0.iobond link_flap dur_us=80\n"
               "\n"
               "2000 storage block_lose count=3\n"
               "2500 vswitch port_stall dur_us=50 mag=1\n",
               f);
    std::fclose(f);

    Simulation sim(1);
    FaultInjector inj(sim, "inj");
    ASSERT_TRUE(inj.loadPlan(path));
    ASSERT_EQ(inj.plan().size(), 3u);
    EXPECT_EQ(inj.plan()[0].at, usToTicks(1500));
    EXPECT_EQ(inj.plan()[0].target, "server.guest0.iobond");
    EXPECT_EQ(inj.plan()[0].spec.kind, FaultKind::LinkFlap);
    EXPECT_EQ(inj.plan()[0].spec.duration, usToTicks(80));
    EXPECT_EQ(inj.plan()[1].spec.count, 3u);
    EXPECT_DOUBLE_EQ(inj.plan()[2].spec.magnitude, 1.0);

    const char *bad = "/tmp/bmhive_fault_plan_bad.txt";
    f = std::fopen(bad, "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1000 storage block_lose\n"
               "2000 storage no_such_kind\n",
               f);
    std::fclose(f);
    // One malformed line rejects the whole file, atomically.
    EXPECT_FALSE(inj.loadPlan(bad));
    EXPECT_EQ(inj.plan().size(), 3u);
    EXPECT_FALSE(inj.loadPlan("/nonexistent/plan"));
}

TEST(FaultPlanTest, UnmatchedTargetCountedNotFatal)
{
    Simulation sim(2);
    FaultInjector inj(sim, "inj");
    inj.at(usToTicks(10), "no.such.component",
           spec(FaultKind::LinkFlap));
    inj.arm();
    sim.run(usToTicks(20));
    EXPECT_EQ(inj.injected(), 0u);
    EXPECT_EQ(inj.unmatched(), 1u);
}

// --- Hostile indirect descriptor tables (satellite: walkDescChain
// hardening). Each shape must terminate, count a bad chain, and
// complete the head with len 0 so the driver's descriptors are
// not leaked.

class HostileIndirect : public ::testing::Test
{
  protected:
    HostileIndirect()
        : mem("m", 64 * KiB),
          l(VringLayout::contiguous(4, 0)), dev(mem, l)
    {
    }

    void
    writeIndirect(unsigned i, std::uint64_t addr,
                  std::uint32_t len, std::uint16_t flags,
                  std::uint16_t next)
    {
        Addr a = tbl + Addr(i) * vringDescSize;
        mem.write64(a, addr);
        mem.write32(a + 8, len);
        mem.write16(a + 12, flags);
        mem.write16(a + 14, next);
    }

    void
    publishHead(std::uint32_t table_len)
    {
        l.writeDesc(mem, 0,
                    {tbl, table_len, VRING_DESC_F_INDIRECT, 0});
        l.setAvailRing(mem, 0, 0);
        l.setAvailIdx(mem, 1);
    }

    void
    expectDropped()
    {
        EXPECT_FALSE(dev.pop().has_value());
        EXPECT_EQ(dev.badChains(), 1u);
        EXPECT_EQ(l.usedIdx(mem), 1u);
        EXPECT_EQ(l.usedRing(mem, 0).len, 0u);
    }

    GuestMemory mem;
    VringLayout l;
    VirtQueueDevice dev;
    static constexpr Addr tbl = 0x4000;
};

TEST_F(HostileIndirect, CyclicTableTerminates)
{
    writeIndirect(0, 0x100, 8, VRING_DESC_F_NEXT, 1);
    writeIndirect(1, 0x200, 8, VRING_DESC_F_NEXT, 0); // cycle
    publishHead(2 * vringDescSize);
    expectDropped();
}

TEST_F(HostileIndirect, SelfReferencingEntryTerminates)
{
    writeIndirect(0, 0x100, 8, VRING_DESC_F_NEXT, 0); // self
    publishHead(vringDescSize);
    expectDropped();
}

TEST_F(HostileIndirect, NextOutsideTableDropped)
{
    writeIndirect(0, 0x100, 8, VRING_DESC_F_NEXT, 7);
    writeIndirect(1, 0x200, 8, 0, 0);
    publishHead(2 * vringDescSize);
    expectDropped();
}

TEST_F(HostileIndirect, LongCycleInLargeTableTerminates)
{
    // 0 -> 1 -> 2 -> 3 -> 1: the cycle does not include the entry
    // point, so only the step bound can catch it.
    writeIndirect(0, 0x100, 8, VRING_DESC_F_NEXT, 1);
    writeIndirect(1, 0x110, 8, VRING_DESC_F_NEXT, 2);
    writeIndirect(2, 0x120, 8, VRING_DESC_F_NEXT, 3);
    writeIndirect(3, 0x130, 8, VRING_DESC_F_NEXT, 1);
    publishHead(4 * vringDescSize);
    expectDropped();
}

// --- Scripted chaos under live workloads.

TEST(ChaosTest, ScriptedFaultsRecoverExactlyOnce)
{
    bench::Testbed bed(7);
    auto a = bed.bmGuest(0xA, 64);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));

    hv::BmHypervisor &hv = bed.server.guest(0).hypervisor();
    FaultInjector chaos(bed.sim, "chaos");
    Tick t0 = bed.sim.now();
    chaos.at(t0 + msToTicks(2.0), "storage",
             spec(FaultKind::BlockLose, 4));
    chaos.at(t0 + msToTicks(3.0), "storage",
             spec(FaultKind::BlockDelay, 4, usToTicks(300)));
    chaos.at(t0 + msToTicks(4.0), "server.guest0.iobond.dma",
             spec(FaultKind::DmaFail));
    // Function 1 is guest 0's blk function: the guest's BlkDriver
    // must observe DEVICE_NEEDS_RESET and reinitialize.
    chaos.at(t0 + msToTicks(5.0), "server.guest0.iobond",
             spec(FaultKind::FunctionFail, 1, 0, 1.0));
    chaos.at(t0 + msToTicks(6.0), "server.guest0.iobond",
             spec(FaultKind::LinkFlap, 1, usToTicks(100)));
    chaos.at(t0 + usToTicks(6500), "server.guest0.iobond",
             spec(FaultKind::DropDoorbell, 2));
    chaos.at(t0 + msToTicks(7.0), "vswitch",
             spec(FaultKind::PortStall, 1, usToTicks(200), 1.0));
    chaos.at(t0 + msToTicks(8.0), "server.guest0.hv",
             spec(FaultKind::HvCrash));
    chaos.arm();
    bed.server.startWatchdog(usToTicks(500));

    // Tracked block requests: exactly-once delivery is asserted
    // per request id, across losses, resets, and the crash.
    const unsigned total = 120;
    std::vector<unsigned> completions(total, 0);
    unsigned issued = 0, finished = 0;
    Rng rng(123);
    std::function<void()> pump = [&] {
        unsigned burst = unsigned(rng.uniformInt(1, 4));
        for (unsigned i = 0; i < burst && issued < total; ++i) {
            unsigned id = issued;
            bool ok = a.blk->read(
                rng.uniformInt(0, 1000) * 8, 4096, a.cpu(0),
                [&completions, &finished, id](std::uint8_t,
                                              Addr) {
                    ++completions[id];
                    ++finished;
                });
            if (!ok)
                break;
            ++issued;
        }
        if (issued < total) {
            auto *ev = new OneShotEvent(pump, "pump");
            bed.sim.eventq().schedule(
                ev, bed.sim.now() +
                        Tick(rng.uniformInt(20000, 300000)));
        }
    };
    pump();

    // PacketFlood A->B runs nested inside fio's event loop.
    workloads::PacketFloodParams fp;
    fp.flows = 2;
    fp.batch = 16;
    fp.warmup = msToTicks(1.0);
    fp.window = msToTicks(25.0);
    workloads::PacketFlood flood(bed.sim, "flood", a, b, fp);
    workloads::PacketFloodResult fr;
    auto *flood_ev = new OneShotEvent(
        [&] { fr = flood.run(); }, "flood.start");
    bed.sim.eventq().schedule(flood_ev,
                              bed.sim.now() + usToTicks(100));

    workloads::FioParams fpp;
    fpp.jobs = 4;
    fpp.warmup = msToTicks(1.0);
    fpp.window = msToTicks(28.0);
    workloads::FioRunner fio(bed.sim, "fio", a, fpp);
    auto res = fio.run();

    // Let retries, resets, and the respawn settle out.
    for (int s = 0; s < 300 && finished < issued; ++s)
        bed.sim.run(bed.sim.now() + msToTicks(1.0));

    // The system stayed available through the schedule.
    EXPECT_GT(res.completed, 0u);
    EXPECT_GT(fr.received, 0u);

    // Every fault found its component.
    EXPECT_EQ(chaos.unmatched(), 0u);
    EXPECT_GE(chaos.injected(), 6u);

    // Exactly-once block completion.
    EXPECT_EQ(issued, total);
    EXPECT_EQ(finished, issued);
    for (unsigned i = 0; i < issued; ++i)
        EXPECT_EQ(completions[i], 1u) << "request " << i;

    // The guest saw DEVICE_NEEDS_RESET and reinitialized.
    EXPECT_GE(a.blk->resets(), 1u);

    // The watchdog respawned the crashed process and the recovery
    // time is exported and bounded (crash-to-respawn is at most a
    // couple of watchdog periods).
    EXPECT_GE(hv.respawns(), 1u);
    EXPECT_GE(bed.server.watchdogRespawns(), 1u);
    auto &lat = bed.sim.metrics().latency(
        "server.watchdog.recovery_ticks");
    ASSERT_GE(lat.count(), 1u);
    EXPECT_LT(lat.maxUs(), 5000.0);
}

TEST(ChaosTest, RespawnAloneRecoversInflightIo)
{
    bench::Testbed bed(11);
    auto a = bed.bmGuest(0xA, 64);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    hv::BmHypervisor &hv = bed.server.guest(0).hypervisor();

    unsigned done = 0;
    const unsigned total = 24;
    for (unsigned i = 0; i < total; ++i) {
        ASSERT_TRUE(a.blk->read(
            8 * i, 4096, a.cpu(0),
            [&done](std::uint8_t st, Addr) {
                EXPECT_EQ(st, VIRTIO_BLK_S_OK);
                ++done;
            }));
    }
    // Crash while all of it is in flight; no watchdog — respawn
    // directly, as a management action would.
    hv.crash();
    EXPECT_TRUE(hv.crashed());
    bed.sim.run(bed.sim.now() + usToTicks(50));
    hv.respawn();
    EXPECT_FALSE(hv.crashed());
    for (int s = 0; s < 100 && done < total; ++s)
        bed.sim.run(bed.sim.now() + msToTicks(1.0));
    // The republished shadow-ring window was re-served: every
    // request completed successfully, none twice (the callback
    // count can only reach `total` if each fired exactly once).
    EXPECT_EQ(done, total);
    EXPECT_EQ(hv.respawns(), 1u);
}

TEST(ChaosTest, DeterministicGivenSeedAndPlan)
{
    auto run_once = [](std::uint64_t &completed,
                       std::string &json) {
        bench::Testbed bed(42);
        auto a = bed.bmGuest(0xA, 64);
        bed.sim.run(bed.sim.now() + msToTicks(1.0));
        FaultInjector chaos(bed.sim, "chaos");
        std::vector<FaultInjector::RandomTarget> targets = {
            {"server.guest0.iobond",
             {FaultKind::LinkFlap, FaultKind::DropDoorbell}},
            {"server.guest0.iobond.dma",
             {FaultKind::DmaCorrupt, FaultKind::DmaFail}},
            {"server.guest0.hv",
             {FaultKind::HvStall, FaultKind::HvCrash}},
            {"storage",
             {FaultKind::BlockLose, FaultKind::BlockDelay}},
            {"vswitch", {FaultKind::PortStall}},
        };
        chaos.randomPlan(9, targets, msToTicks(15.0), 10);
        chaos.arm();
        bed.server.startWatchdog(msToTicks(1.0));
        workloads::FioParams p;
        p.jobs = 4;
        p.warmup = msToTicks(1.0);
        p.window = msToTicks(15.0);
        workloads::FioRunner fio(bed.sim, "fio", a, p);
        completed = fio.run().completed;
        bed.sim.run(bed.sim.now() + msToTicks(20.0));
        json = bed.sim.metrics().toJson();
    };
    std::uint64_t c1 = 0, c2 = 0;
    std::string j1, j2;
    run_once(c1, j1);
    run_once(c2, j2);
    EXPECT_GT(c1, 0u);
    EXPECT_EQ(c1, c2);
    // Same seed + same plan => identical trace, down to every
    // counter and latency percentile in the registry.
    EXPECT_EQ(j1, j2);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Adversarial-tenant containment tests:
 *
 *  - every GuestFault kind triggered individually, with exact
 *    counter assertions;
 *  - doorbell-storm throttling and the containment state machine
 *    (healthy -> suspect -> quarantined -> released);
 *  - quarantine round-trip: the guest is parked, drained, reset
 *    and fully functional again after release;
 *  - seeded adversarial fuzz: 10k attack steps never panic and
 *    every contained violation lands in a .guest.faults.* counter;
 *  - determinism: two same-seed fuzz runs produce byte-identical
 *    metric snapshots.
 */

#include <gtest/gtest.h>

#include <string>

#include "bench/common.hh"
#include "fault/guest_fault.hh"
#include "pci/config_space.hh"
#include "virtio/virtio_pci.hh"
#include "workloads/adversarial.hh"

namespace bmhive {
namespace {

using fault::GuestFaultKind;
using workloads::AdversarialGuest;
using workloads::AdversarialGuestParams;

/** Programmed BAR0 of the bm-guest net function (slot 3). */
Addr
netBar(bench::Testbed &bed)
{
    auto &bus = bed.server.guest(0).board().pciBus();
    return bus.configRead(3, pci::REG_BAR0, 4) &
           ~std::uint32_t(0xf);
}

struct KindCase
{
    unsigned attack;        ///< AdversarialGuest catalogue index
    GuestFaultKind expect;  ///< counter that must move
    std::uint64_t delta;    ///< by exactly this much
};

class GuestFaultKinds : public ::testing::TestWithParam<KindCase>
{
};

TEST_P(GuestFaultKinds, EachKindContainedAndCounted)
{
    const KindCase c = GetParam();
    bench::Testbed bed(3000 + c.attack);
    bed.bmGuest(0xA0, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto &bond = bed.server.guest(0).bond();
    AdversarialGuest adv(bed.sim, "adv",
                         bed.server.guest(0).board(), {});

    std::uint64_t before = bond.guestFaults(c.expect);
    std::uint64_t total_before = bond.guestFaultsTotal();
    adv.attack(c.attack);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    EXPECT_EQ(bond.guestFaults(c.expect) - before, c.delta)
        << "fault kind " << fault::guestFaultName(c.expect);
    // The violation is counted, never fatal: the server and the
    // honest machinery are still standing.
    EXPECT_GE(bond.guestFaultsTotal() - total_before, c.delta);
    EXPECT_EQ(bed.server.guestFaultEvents(),
              bond.guestFaultsTotal());
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, GuestFaultKinds,
    ::testing::Values(
        KindCase{0, GuestFaultKind::BadQueueIndex, 1},
        KindCase{2, GuestFaultKind::AvailIdxJump, 1},
        KindCase{3, GuestFaultKind::DescIndexRange, 1},
        KindCase{4, GuestFaultKind::DescAddrRange, 1},
        KindCase{5, GuestFaultKind::DescLenZero, 1},
        KindCase{6, GuestFaultKind::DescLoop, 1},
        KindCase{7, GuestFaultKind::DescWriteOrder, 1},
        KindCase{8, GuestFaultKind::IndirectMalformed, 1},
        KindCase{9, GuestFaultKind::DescLenOversized, 1},
        KindCase{10, GuestFaultKind::BadMsiVector, 1},
        KindCase{11, GuestFaultKind::BadQueueIndex, 1},
        KindCase{12, GuestFaultKind::BadFeatureWrite, 1},
        KindCase{13, GuestFaultKind::BadConfigAccess, 3},
        KindCase{14, GuestFaultKind::BadRingAddress, 1}));

TEST(DoorbellStorm, ThrottledCountedThenQuarantined)
{
    bench::Testbed bed(3100);
    bed.bmGuest(0xA1, 0);
    // Idle long enough for the per-queue token bucket to refill to
    // its full burst (it was nibbled during driver bring-up).
    bed.sim.run(bed.sim.now() + msToTicks(5));

    auto &bond = bed.server.guest(0).bond();
    auto &bus = bed.server.guest(0).board().pciBus();
    Addr bar = netBar(bed);

    // Hammer one valid doorbell 5000 times within a single tick.
    // The bucket holds exactly `doorbellBurst` tokens, so kicks
    // beyond it are storm faults until the containment score
    // (quarantine at 32) parks the guest; the rest are swallowed.
    const std::uint64_t kicks = 5000;
    const auto burst =
        std::uint64_t(bed.server.guest(0).bond().params()
                          .doorbellBurst);
    for (std::uint64_t i = 0; i < kicks; ++i)
        bus.memWrite(bar + virtio::notifyRegionOffset, 1, 4);

    EXPECT_EQ(bond.guestFaults(GuestFaultKind::DoorbellStorm), 32u);
    EXPECT_EQ(bed.server.quarantines(), 1u);
    EXPECT_EQ(bed.server.guestHealth(0),
              core::GuestHealth::Quarantined);
    EXPECT_EQ(bond.quarantineDrops(), kicks - burst - 32);
}

TEST(Quarantine, RoundTripGuestFunctionalAfterRelease)
{
    bench::Testbed bed(3200);
    auto a = bed.bmGuest(0xA, 0);
    auto b = bed.bmGuest(0xB, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    auto &bond = bed.server.guest(0).bond();
    ASSERT_EQ(bed.server.guestHealth(0), core::GuestHealth::Healthy);

    bed.server.quarantineGuest(0);
    EXPECT_EQ(bed.server.guestHealth(0),
              core::GuestHealth::Quarantined);
    EXPECT_TRUE(bond.quarantined());

    // Doorbells are swallowed while parked.
    auto &bus = bed.server.guest(0).board().pciBus();
    std::uint64_t drops = bond.quarantineDrops();
    bus.memWrite(netBar(bed) + virtio::notifyRegionOffset, 1, 4);
    EXPECT_EQ(bond.quarantineDrops(), drops + 1);

    // The dwell expires on its own; functions are reset so the
    // driver renegotiates onto clean rings.
    std::uint64_t resets = a.net->resets();
    bed.sim.run(bed.sim.now() + msToTicks(5));
    EXPECT_EQ(bed.server.guestHealth(0), core::GuestHealth::Healthy);
    EXPECT_FALSE(bond.quarantined());
    EXPECT_GT(a.net->resets(), resets);
    EXPECT_EQ(bed.server.quarantines(), 1u);

    // And the guest is genuinely back: traffic flows end to end.
    unsigned received = 0;
    b.net->setRxHandler(
        [&](const cloud::Packet &) { ++received; });
    for (unsigned i = 0; i < 20; ++i) {
        cloud::Packet p;
        p.src = 0xA;
        p.dst = 0xB;
        p.len = cloud::udpFrameBytes(256);
        p.seq = i;
        p.created = bed.sim.now();
        ASSERT_TRUE(a.net->sendPacket(p, false, a.cpu(1)));
    }
    a.net->kickTx(a.cpu(1));
    bed.sim.run(bed.sim.now() + msToTicks(10));
    EXPECT_EQ(received, 20u);
}

TEST(AdversarialFuzz, TenThousandStepsNeverFatal)
{
    bench::Testbed bed(3300);
    bed.bmGuest(0xA0, 0);
    auto victim = bed.bmGuest(0xB0, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    AdversarialGuestParams ap;
    ap.seed = bench::Session::faultSeed ? bench::Session::faultSeed
                                        : 0xfeed;
    ap.iterations = 10000;
    AdversarialGuest adv(bed.sim, "adv",
                         bed.server.guest(0).board(), ap);
    adv.start();
    bed.sim.run(bed.sim.now() + msToTicks(30));

    EXPECT_TRUE(adv.done());
    EXPECT_EQ(adv.steps(), 10000u);
    auto &bond = bed.server.guest(0).bond();
    EXPECT_GT(bond.guestFaultsTotal(), 0u);
    EXPECT_GT(bed.server.quarantines(), 0u);
    // Every contained violation is attributed to a specific kind:
    // the per-kind counters sum to the total.
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < fault::guestFaultKinds; ++k)
        sum += bond.guestFaults(GuestFaultKind(k));
    EXPECT_EQ(sum, bond.guestFaultsTotal());
    // The honest neighbour never saw a device failure.
    EXPECT_EQ(victim.net->resets(), 0u);
}

std::string
fuzzMetricsSnapshot(std::uint64_t seed)
{
    bench::Testbed bed(4000);
    bed.bmGuest(0xA0, 0);
    bed.bmGuest(0xB0, 0);
    bed.sim.run(bed.sim.now() + msToTicks(1));

    AdversarialGuestParams ap;
    ap.seed = seed;
    ap.iterations = 2000;
    AdversarialGuest adv(bed.sim, "adv",
                         bed.server.guest(0).board(), ap);
    adv.start();
    bed.sim.run(bed.sim.now() + msToTicks(10));
    return bed.sim.metrics().toJson();
}

TEST(AdversarialFuzz, SameSeedByteIdenticalMetrics)
{
    std::string one = fuzzMetricsSnapshot(99);
    std::string two = fuzzMetricsSnapshot(99);
    EXPECT_EQ(one, two);
    // And the attack stream really is a function of the seed.
    std::string other = fuzzMetricsSnapshot(100);
    EXPECT_NE(one, other);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Unit tests for the base module: logging, units, statistics,
 * token buckets, and the deterministic random source.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/paper_constants.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/token_bucket.hh"
#include "base/units.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace {

class DeathAsThrow : public ::testing::Test
{
  protected:
    void SetUp() override { Logger::global().setThrowOnDeath(true); }
    void TearDown() override
    {
        Logger::global().setThrowOnDeath(false);
    }
};

using LoggingTest = DeathAsThrow;

TEST_F(LoggingTest, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST_F(LoggingTest, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST_F(LoggingTest, PanicIfHonorsCondition)
{
    EXPECT_NO_THROW(panic_if(false, "not reached"));
    EXPECT_THROW(panic_if(true, "reached"), PanicError);
}

TEST_F(LoggingTest, MessageContainsFileAndValues)
{
    try {
        panic("value=", 7, " name=", "x");
        FAIL() << "should have thrown";
    } catch (const PanicError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("value=7 name=x"), std::string::npos);
        EXPECT_NE(what.find("base_test.cc"), std::string::npos);
    }
}

TEST(UnitsTest, TickConversionsRoundTrip)
{
    EXPECT_EQ(usToTicks(1.0), 1000000u);
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_DOUBLE_EQ(ticksToUs(usToTicks(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(ticksToSec(tickSec), 1.0);
}

TEST(UnitsTest, PaperIoBondConstants)
{
    EXPECT_EQ(paper::ioBondPciAccess, usToTicks(0.8));
    EXPECT_EQ(paper::ioBondEmulatedAccess, usToTicks(1.6));
    EXPECT_EQ(paper::vmExitCost, usToTicks(10));
}

TEST(UnitsTest, BandwidthTransferTime)
{
    Bandwidth b = Bandwidth::gbps(50);
    // 4 KiB at 50 Gbps = 4096*8/50e9 s = 655.36 ns.
    Tick t = b.transferTime(4096);
    EXPECT_NEAR(double(t), 655360.0, 1.0);
    EXPECT_EQ(Bandwidth().transferTime(1), maxTick);
}

TEST(UnitsTest, MinBandwidthPicksBottleneck)
{
    Bandwidth a = Bandwidth::gbps(32);
    Bandwidth b = Bandwidth::gbps(50);
    EXPECT_DOUBLE_EQ(minBandwidth(a, b).gbitsPerSec(), 32.0);
}

TEST(SummaryStatsTest, MeanVarianceMinMax)
{
    SummaryStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.record(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, ExactPercentiles)
{
    SampleSet s;
    for (int i = 1; i <= 1000; ++i)
        s.record(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 500.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.99), 990.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.999), 999.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 1000.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 1000.0);
}

TEST(SampleSetTest, PercentileMatchesSortReference)
{
    Rng rng(7);
    SampleSet s;
    std::vector<double> ref;
    for (int i = 0; i < 5000; ++i) {
        double v = rng.lognormal(0.0, 1.0);
        s.record(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        std::size_t rank = std::size_t(std::ceil(q * ref.size()));
        EXPECT_DOUBLE_EQ(s.percentile(q), ref[rank - 1])
            << "q=" << q;
    }
}

TEST(SampleSetTest, RecordAfterSortStaysCorrect)
{
    SampleSet s;
    s.record(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
    s.record(1.0); // after a sorted query
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.record(-1.0);
    h.record(0.0);
    h.record(9.999);
    h.record(10.0);
    h.record(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(5), 6.0);
}

TEST(TokenBucketTest, UnlimitedAlwaysAdmits)
{
    TokenBucket b = TokenBucket::unlimited();
    EXPECT_TRUE(b.tryConsume(0, 1e12));
    EXPECT_EQ(b.nextAvailable(123, 1e12), 123u);
}

TEST(TokenBucketTest, BurstThenPaced)
{
    // 1000 tokens/s, burst of 10.
    TokenBucket b(1000.0, 10.0);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(b.tryConsume(0, 1.0)) << i;
    EXPECT_FALSE(b.tryConsume(0, 1.0));
    // One token refills after 1 ms.
    Tick next = b.nextAvailable(0, 1.0);
    EXPECT_NEAR(double(next), double(msToTicks(1)), 2000.0);
    EXPECT_TRUE(b.tryConsume(msToTicks(1) + 10, 1.0));
}

TEST(TokenBucketTest, RefillCapsAtBurst)
{
    TokenBucket b(1000.0, 10.0);
    EXPECT_TRUE(b.tryConsume(0, 10.0));
    // After 1 s the bucket holds at most 10 again, not 1000.
    EXPECT_NEAR(b.level(tickSec), 10.0, 1e-9);
}

TEST(TokenBucketTest, ForceConsumeCreatesDebt)
{
    TokenBucket b(1000.0, 10.0);
    b.forceConsume(0, 30.0);
    EXPECT_LT(b.level(0), 0.0);
    // The 20-token debt plus one token takes 21 ms to clear.
    Tick next = b.nextAvailable(0, 1.0);
    EXPECT_NEAR(double(next), double(msToTicks(21)), 3000.0);
}

TEST(TokenBucketTest, ConservationUnderRandomLoad)
{
    // Property: tokens consumed <= burst + rate * elapsed.
    Rng rng(42);
    TokenBucket b(5000.0, 100.0);
    double consumed = 0.0;
    Tick now = 0;
    for (int i = 0; i < 10000; ++i) {
        now += Tick(rng.uniform(0, 2e6)); // up to 2 us steps
        double want = rng.uniform(0.5, 3.0);
        if (b.tryConsume(now, want))
            consumed += want;
    }
    double bound = 100.0 + 5000.0 * ticksToSec(now) + 1e-6;
    EXPECT_LE(consumed, bound);
    // And the bucket was not pathologically idle either.
    EXPECT_GT(consumed, 0.5 * bound);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, SeedChangesStream)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(RngTest, DistributionsAreSane)
{
    Rng r(5);
    SummaryStats normal, expo, pareto;
    for (int i = 0; i < 20000; ++i) {
        normal.record(r.normal(10.0, 2.0));
        expo.record(r.exponential(4.0));
        pareto.record(r.pareto(1.0, 3.0));
    }
    EXPECT_NEAR(normal.mean(), 10.0, 0.1);
    EXPECT_NEAR(normal.stddev(), 2.0, 0.1);
    EXPECT_NEAR(expo.mean(), 4.0, 0.15);
    // Pareto(xm=1, alpha=3) mean = alpha/(alpha-1) = 1.5.
    EXPECT_NEAR(pareto.mean(), 1.5, 0.1);
    EXPECT_GE(pareto.min(), 1.0);
}

TEST(GaugeTest, TracksLevelAndWatermarks)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_EQ(g.updates(), 0u);
    g.set(4.0);
    g.add(2.0);
    g.add(-5.0);
    EXPECT_EQ(g.value(), 1.0);
    EXPECT_EQ(g.minWatermark(), 1.0);
    EXPECT_EQ(g.maxWatermark(), 6.0);
    EXPECT_EQ(g.updates(), 3u);
}

TEST(GaugeTest, ResetKeepsLevelRestartsWatermarks)
{
    Gauge g;
    g.set(10.0);
    g.set(2.0);
    g.reset();
    // The queue is still 2 deep; only the extremes restart.
    EXPECT_EQ(g.value(), 2.0);
    EXPECT_EQ(g.minWatermark(), 2.0);
    EXPECT_EQ(g.maxWatermark(), 2.0);
    g.set(3.0);
    EXPECT_EQ(g.maxWatermark(), 3.0);
    EXPECT_EQ(g.minWatermark(), 2.0);
}

TEST(TimeWeightedAverageTest, WeightsByDuration)
{
    TimeWeightedAverage a;
    // 1.0 for 10 ticks, then 3.0 for 30 ticks:
    // (1*10 + 3*30) / 40 = 2.5.
    a.record(1.0, 100);
    a.record(3.0, 110);
    EXPECT_DOUBLE_EQ(a.average(140), 2.5);
    EXPECT_DOUBLE_EQ(a.current(), 3.0);
}

TEST(TimeWeightedAverageTest, DegenerateCases)
{
    TimeWeightedAverage a;
    EXPECT_DOUBLE_EQ(a.average(50), 0.0); // nothing recorded
    a.record(7.0, 20);
    // Zero elapsed time: the average is the held value.
    EXPECT_DOUBLE_EQ(a.average(20), 7.0);
    EXPECT_DOUBLE_EQ(a.average(30), 7.0);
}

TEST_F(DeathAsThrow, TimeWeightedAverageRejectsTimeTravel)
{
    TimeWeightedAverage a;
    a.record(1.0, 100);
    EXPECT_THROW(a.record(2.0, 99), PanicError);
}

/** Captures log output and restores the logger's state. */
class LogCaptureTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::global().setStream(&captured);
    }

    void
    TearDown() override
    {
        Logger::global().setStream(nullptr);
        Logger::global().debugClear();
        Logger::global().clearTickSource(this);
        Logger::global().setVerbosity(LogLevel::Inform);
    }

    std::string text() const { return captured.str(); }

    std::ostringstream captured;
};

TEST_F(LogCaptureTest, LinesCarryTickAndComponentPrefix)
{
    Tick now = 12345;
    Logger::global().setTickSource([&] { return now; }, this);
    Logger::global().print(LogLevel::Inform, "srv.guest0.iobond",
                           "chain published");
    EXPECT_EQ(text(),
              "info: [12345] srv.guest0.iobond: chain published\n");
}

TEST_F(LogCaptureTest, SimulationInstallsItsClockOnTheLogger)
{
    Simulation sim(1);
    auto *ev = new OneShotEvent([] { inform("tick check"); }, "e");
    sim.eventq().schedule(ev, nsToTicks(500));
    sim.run();
    EXPECT_NE(text().find("[" + std::to_string(nsToTicks(500)) +
                          "] "),
              std::string::npos);
}

TEST_F(LogCaptureTest, DebugHonorsPerComponentEnableSet)
{
    Logger::global().debugEnable("srv.guest0");
    debug("srv.guest0", "direct hit");
    debug("srv.guest0.iobond", "child of enabled subtree");
    debug("srv.guest1", "other guest, filtered");
    debug("srv.guest01", "prefix but not dot boundary");
    std::string out = text();
    EXPECT_NE(out.find("direct hit"), std::string::npos);
    EXPECT_NE(out.find("child of enabled subtree"),
              std::string::npos);
    EXPECT_EQ(out.find("filtered"), std::string::npos);
    EXPECT_EQ(out.find("dot boundary"), std::string::npos);
}

TEST_F(LogCaptureTest, DebugFallsBackToVerbosityWhenSetIsEmpty)
{
    debug("any.component", "too quiet"); // default: Inform
    EXPECT_EQ(text(), "");
    Logger::global().setVerbosity(LogLevel::Debug);
    debug("any.component", "now audible");
    EXPECT_NE(text().find("now audible"), std::string::npos);
}

TEST_F(LogCaptureTest, DebugDisableAndWildcard)
{
    Logger::global().debugEnable("a.b");
    Logger::global().debugDisable("a.b");
    // Set is empty again: back to the verbosity gate (Inform).
    debug("a.b", "gone");
    EXPECT_EQ(text(), "");
    Logger::global().debugEnable("");
    debug("anything.at.all", "wildcard on");
    EXPECT_NE(text().find("wildcard on"), std::string::npos);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * PollScheduler tests: DWRR fairness and batching, the adaptive
 * poll governor (busy -> backoff -> sleep and bounded-latency
 * wake), containment weights, per-pollable wedge detection — plus
 * shared-mode BmHiveServer integration: end-to-end I/O on a
 * 2-core pool, scheduler-level quarantine starvation, and
 * same-seed determinism of the metrics snapshot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "core/instance_catalog.hh"
#include "sched/poll_scheduler.hh"
#include "workloads/guest_iface.hh"
#include "workloads/net_perf.hh"

namespace bmhive {
namespace {

using sched::PollScheduler;
using sched::PollSchedulerParams;

class FakePollable : public sched::Pollable
{
  public:
    explicit FakePollable(std::string name, Simulation *sim = nullptr)
        : name_(std::move(name)), sim_(sim)
    {
    }

    unsigned
    servicePoll(unsigned budget) override
    {
        ++polls_;
        lastBudget_ = budget;
        if (sim_)
            lastPollAt_ = sim_->now();
        auto n = std::min<std::uint64_t>(budget, pending_);
        if (n > 0 && served_ == 0 && sim_)
            firstServedAt_ = sim_->now();
        pending_ -= n;
        served_ += n;
        return unsigned(n);
    }

    bool pollAlive() const override { return alive_; }
    Tick pollBlockedUntil() const override { return blockedUntil_; }
    const std::string &pollableName() const override { return name_; }

    std::string name_;
    Simulation *sim_ = nullptr;
    std::uint64_t pending_ = 0;
    std::uint64_t polls_ = 0;
    std::uint64_t served_ = 0;
    unsigned lastBudget_ = 0;
    Tick lastPollAt_ = 0;
    Tick firstServedAt_ = 0; ///< first poll that found the work
    bool alive_ = true;
    Tick blockedUntil_ = 0;
};

class SchedTest : public ::testing::Test
{
  protected:
    SchedTest() : sim(7)
    {
        for (int i = 0; i < 2; ++i) {
            cpus.push_back(std::make_unique<hw::CpuExecutor>(
                sim, "cpu" + std::to_string(i)));
        }
    }

    PollScheduler &
    make(PollSchedulerParams p = {})
    {
        sched = std::make_unique<PollScheduler>(
            sim, "sched",
            std::vector<hw::CpuExecutor *>{cpus[0].get(),
                                           cpus[1].get()},
            p);
        return *sched;
    }

    Simulation sim;
    std::vector<std::unique_ptr<hw::CpuExecutor>> cpus;
    std::unique_ptr<PollScheduler> sched;
};

TEST_F(SchedTest, DwrrSharesFollowWeights)
{
    auto &s = make();
    FakePollable a("a"), b("b");
    a.pending_ = b.pending_ = 1u << 30; // always backlogged
    s.add(0, a, 1.0);
    s.add(0, b, 0.25);
    sim.run(sim.now() + msToTicks(2));
    ASSERT_GT(b.served_, 0u);
    double ratio = double(a.served_) / double(b.served_);
    // Weight 1.0 vs 0.25: the heavy guest gets ~4x the items.
    EXPECT_NEAR(ratio, 4.0, 0.4);
    // Per-round budget is capped at one quantum of credit.
    EXPECT_EQ(a.lastBudget_, s.params().quantum);
}

TEST_F(SchedTest, DryRunForfeitsDeficit)
{
    auto &s = make();
    FakePollable a("a");
    auto h = s.add(0, a, 1.0);
    a.pending_ = 3; // runs dry on the first round
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(a.served_, 3u);
    // The unused deficit was forfeited: when work reappears the
    // budget restarts at one quantum, not at the hoarded credit.
    a.pending_ = 1u << 20;
    s.wake(h);
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(a.lastBudget_, s.params().quantum);
}

TEST_F(SchedTest, GovernorBacksOffAndSleeps)
{
    auto &s = make();
    FakePollable a("a");
    s.add(0, a, 1.0); // registered but idle
    sim.run(sim.now() + msToTicks(2));
    // Busy-polling 2 ms at the 2 us period would be ~1000 rounds;
    // the governor backs off exponentially and then sleeps.
    EXPECT_GE(s.sleeps(0), 1u);
    EXPECT_LT(s.rounds(0), 60u);
    auto settled = s.rounds(0);
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(s.rounds(0), settled); // asleep: no rounds at all
}

TEST_F(SchedTest, WakeResumesWithinBoundedLatency)
{
    auto &s = make();
    FakePollable a("a", &sim);
    auto h = s.add(0, a, 1.0);
    sim.run(sim.now() + msToTicks(2)); // drift into sleep
    ASSERT_GE(s.sleeps(0), 1u);

    Tick posted = sim.now();
    a.pending_ = 8;
    s.wake(h); // the IO-Bond doorbell path
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(a.served_, 8u);
    EXPECT_GE(a.firstServedAt_, posted);
    EXPECT_LE(a.firstServedAt_ - posted, s.params().wakeLatency);
    EXPECT_GE(s.wakes(0), 1u);
    EXPECT_GE(s.wakeToPoll(0).count(), 1u);
}

TEST_F(SchedTest, WeightZeroStarvesUntilRestored)
{
    auto &s = make();
    FakePollable a("a");
    auto h = s.add(0, a, 1.0);
    s.setWeight(h, 0.0);
    a.pending_ = 100;
    s.wake(h); // a starved guest's doorbell must not buy service
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(a.served_, 0u);

    s.setWeight(h, 1.0); // restoration picks the posted work up
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(a.served_, 100u);
}

TEST_F(SchedTest, WedgedSeesStalledNotIdleOrStarved)
{
    auto &s = make();
    FakePollable stalled("stalled"), idle("idle"),
        starved("starved");
    stalled.blockedUntil_ = secToTicks(10); // e.g. hv stall fault
    stalled.pending_ = 5;
    auto hs = s.add(0, stalled, 1.0);
    auto hi = s.add(0, idle, 1.0);
    auto hz = s.add(1, starved, 1.0);
    s.setWeight(hz, 0.0);
    starved.pending_ = 5;
    s.wake(hs);
    s.wake(hz);
    sim.run(sim.now() + msToTicks(4));
    Tick window = msToTicks(2);
    EXPECT_TRUE(s.wedged(hs, window));  // posted, never visited
    EXPECT_FALSE(s.wedged(hi, window)); // never posted: just idle
    EXPECT_FALSE(s.wedged(hz, window)); // starvation is deliberate
    EXPECT_EQ(s.serviceVisits(hs), 0u);
}

TEST_F(SchedTest, PlacementPicksLeastLoadedCore)
{
    auto &s = make();
    FakePollable a("a"), b("b"), c("c");
    EXPECT_EQ(s.leastLoadedCore(), 0u);
    auto ha = s.add(0, a, 1.0);
    EXPECT_EQ(s.leastLoadedCore(), 1u);
    s.add(1, b, 1.0);
    EXPECT_EQ(s.leastLoadedCore(), 0u);
    s.add(0, c, 1.0);
    EXPECT_EQ(s.pollablesOn(0), 2u);
    s.remove(ha);
    EXPECT_EQ(s.pollablesOn(0), 1u);
}

TEST_F(SchedTest, AddKicksASleepingCore)
{
    auto &s = make();
    sim.run(sim.now() + msToTicks(1)); // both cores asleep, empty
    FakePollable a("a");
    a.pending_ = 4;
    s.add(0, a, 1.0); // registration alone must discover the work
    sim.run(sim.now() + msToTicks(1));
    EXPECT_EQ(a.served_, 4u);
}

// --- Shared-mode server integration ---

core::BmServerParams
sharedParams(unsigned poll_cores)
{
    core::BmServerParams p;
    p.maxBoards = 4;
    p.schedMode = core::SchedMode::Shared;
    p.pollCores = poll_cores;
    return p;
}

class SharedServerTest : public ::testing::Test
{
  protected:
    SharedServerTest()
        : sim(11), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, sharedParams(2))
    {
    }

    core::BmGuest &
    guestWithVolume(cloud::MacAddr mac)
    {
        auto &vol = storage.createVolume("v" + std::to_string(mac),
                                         8 * MiB);
        return server.provision(core::InstanceCatalog::evaluated(),
                                mac, &vol);
    }

    bool
    writeOk(core::BmGuest &g)
    {
        bool ok = false;
        std::vector<std::uint8_t> data(512, 0x5a);
        g.blk()->write(8, 512, &data, g.os().cpu(1),
                       [&ok](std::uint8_t st, Addr) {
                           ok = (st == virtio::VIRTIO_BLK_S_OK);
                       });
        sim.run(sim.now() + msToTicks(30));
        return ok;
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(SharedServerTest, FourGuestsOnTwoCoresDoIo)
{
    std::vector<core::BmGuest *> gs;
    for (unsigned i = 0; i < 4; ++i)
        gs.push_back(&guestWithVolume(0x10 + i));
    ASSERT_NE(server.scheduler(), nullptr);
    EXPECT_EQ(server.scheduler()->coreCount(), 2u);
    EXPECT_EQ(server.scheduler()->pollablesOn(0), 2u);
    EXPECT_EQ(server.scheduler()->pollablesOn(1), 2u);
    sim.run(sim.now() + msToTicks(1));
    for (auto *g : gs)
        EXPECT_TRUE(writeOk(*g));
}

TEST_F(SharedServerTest, QuarantineStarvesAtTheScheduler)
{
    auto &g0 = guestWithVolume(0x20);
    auto &g1 = guestWithVolume(0x21);
    sim.run(sim.now() + msToTicks(1));
    ASSERT_TRUE(writeOk(g0));

    server.quarantineGuest(0);
    auto polls = g0.hypervisor().service().pollsTotal();
    sim.run(sim.now() + msToTicks(1)); // within the 2 ms dwell
    // Weight 0: the scheduler never visits the quarantined guest's
    // backend, while its neighbor keeps doing I/O.
    EXPECT_EQ(g0.hypervisor().service().pollsTotal(), polls);
    EXPECT_TRUE(writeOk(g1));

    // Dwell expiry releases the quarantine; a fresh write works
    // again through the reset functions.
    sim.run(sim.now() + msToTicks(4));
    EXPECT_EQ(server.guestHealth(0), core::GuestHealth::Healthy);
    EXPECT_TRUE(writeOk(g0));
}

/** One fixed scenario; returns the end-of-run metrics JSON. */
std::string
sharedScenarioJson(std::uint64_t seed)
{
    Simulation sim(seed);
    cloud::VSwitch vswitch(sim, "vs");
    cloud::BlockService storage(sim, "st");
    core::BmHiveServer server(sim, "srv", vswitch, &storage,
                              sharedParams(2));
    auto &va = storage.createVolume("va", 8 * MiB);
    auto &vb = storage.createVolume("vb", 8 * MiB);
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xa, &va);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xb, &vb);
    sim.run(sim.now() + msToTicks(1));

    workloads::PacketFloodParams fp;
    fp.flows = 2;
    fp.batch = 8;
    fp.warmup = msToTicks(1);
    fp.window = msToTicks(5);
    workloads::PacketFlood flood(
        sim, "flood", workloads::GuestContext::of(a),
        workloads::GuestContext::of(b), fp);
    auto r = flood.run();
    EXPECT_GT(r.received, 0u);
    return sim.metrics().toJson();
}

TEST(SharedSchedDeterminism, SameSeedSameMetrics)
{
    // The shared pool must not perturb determinism: two identical
    // runs produce byte-identical metric snapshots (scheduler
    // counters, wake latencies, traces and all).
    auto j1 = sharedScenarioJson(20200316);
    auto j2 = sharedScenarioJson(20200316);
    EXPECT_EQ(j1, j2);
    EXPECT_NE(j1.find("srv.sched.core0.rounds"), std::string::npos);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Integration tests across the whole BM-Hive stack: provision
 * bm-guests on a server, move packets guest-to-guest through
 * vrings -> IO-Bond shadow vrings -> bm-hypervisor -> vSwitch and
 * back, run block I/O against cloud storage, boot a guest from a
 * cloud image over virtio-blk, and exercise the security
 * properties (hostile rings, firmware signing).
 */

#include <gtest/gtest.h>

#include "base/paper_constants.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"
#include "guest/firmware.hh"

namespace bmhive {
namespace {

using core::BmGuest;
using core::BmHiveServer;
using core::InstanceCatalog;

class BmIntegrationTest : public ::testing::Test
{
  protected:
    BmIntegrationTest()
        : sim(1234), vswitch(sim, "vswitch"),
          storage(sim, "storage"), server(sim, "server", vswitch,
                                          &storage)
    {
    }

    /** Provision a guest with a fresh volume. */
    BmGuest &
    newGuest(cloud::MacAddr mac, bool rate_limited = true)
    {
        auto &vol = storage.createVolume(
            "vol" + std::to_string(mac), 64 * MiB);
        return server.provision(InstanceCatalog::evaluated(), mac,
                                &vol, rate_limited);
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    BmHiveServer server;
};

TEST_F(BmIntegrationTest, ProvisionBringsUpDriversAndBackend)
{
    BmGuest &g = newGuest(0xaa);
    EXPECT_EQ(g.board().powerState(), hw::BoardPower::On);
    EXPECT_TRUE(g.net().initialized());
    ASSERT_NE(g.blk(), nullptr);
    EXPECT_TRUE(g.blk()->initialized());
    EXPECT_TRUE(g.hypervisor().connected());
    EXPECT_EQ(server.guestCount(), 1u);
    EXPECT_EQ(server.freeSlots(), server.maxBoards() - 1);
    // Drivers negotiated VERSION_1 + indirect descriptors.
    EXPECT_TRUE(g.net().features() & virtio::VIRTIO_F_VERSION_1);
    EXPECT_TRUE(g.net().features() &
                virtio::VIRTIO_RING_F_INDIRECT_DESC);
}

TEST_F(BmIntegrationTest, GuestToGuestPacketDeliveredIntact)
{
    BmGuest &a = newGuest(0xaa);
    BmGuest &b = newGuest(0xbb);
    sim.run(msToTicks(1)); // let rx rings settle

    std::vector<cloud::Packet> received;
    b.net().setRxHandler(
        [&](const cloud::Packet &p) { received.push_back(p); });

    cloud::Packet pkt;
    pkt.src = 0xaa;
    pkt.dst = 0xbb;
    pkt.len = cloud::udpFrameBytes(64);
    pkt.created = sim.now();
    pkt.seq = 424242;
    ASSERT_TRUE(a.net().sendPacket(pkt, true, a.os().cpu(0)));

    sim.run(sim.now() + msToTicks(5));
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].seq, 424242u);
    EXPECT_EQ(received[0].src, 0xaau);
    EXPECT_EQ(received[0].dst, 0xbbu);
    EXPECT_EQ(received[0].len, pkt.len);

    // The payload crossed both IO-Bonds.
    EXPECT_GE(a.bond().chainsForwarded(), 1u);
    EXPECT_GE(b.bond().completionsReturned(), 1u);
    EXPECT_GE(vswitch.forwarded(), 1u);
}

TEST_F(BmIntegrationTest, PacketLatencyReflectsIoBondPath)
{
    BmGuest &a = newGuest(0xaa, /*rate_limited=*/false);
    BmGuest &b = newGuest(0xbb, /*rate_limited=*/false);
    sim.run(msToTicks(1));

    Tick received_at = 0;
    Tick sent_at = 0;
    cloud::Packet pkt;
    b.net().setRxHandler([&](const cloud::Packet &) {
        received_at = sim.now();
    });
    pkt.src = 0xaa;
    pkt.dst = 0xbb;
    pkt.len = 64;
    sent_at = sim.now();
    ASSERT_TRUE(a.net().sendPacket(pkt, true, a.os().cpu(0)));
    sim.run(sim.now() + msToTicks(5));

    ASSERT_GT(received_at, 0u);
    Tick latency = received_at - sent_at;
    // Lower bound: doorbell (0.8) + mailbox (0.8) on the tx side
    // plus the completion mailbox hop on the rx side.
    EXPECT_GE(latency, usToTicks(2.4));
    // And it should still be a few tens of microseconds at most.
    EXPECT_LE(latency, usToTicks(60));
}

TEST_F(BmIntegrationTest, BlockWriteReadRoundTrip)
{
    BmGuest &g = newGuest(0xaa);
    sim.run(msToTicks(1));

    // Write a recognizable pattern at sector 100.
    std::vector<std::uint8_t> data(4096);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i ^ (i >> 8));

    bool write_done = false;
    ASSERT_TRUE(g.blk()->write(
        100, 4096, &data, g.os().cpu(0),
        [&](std::uint8_t status, Addr) {
            EXPECT_EQ(status, virtio::VIRTIO_BLK_S_OK);
            write_done = true;
        }));
    sim.run(sim.now() + msToTicks(20));
    ASSERT_TRUE(write_done);

    bool read_done = false;
    ASSERT_TRUE(g.blk()->read(
        100, 4096, g.os().cpu(0),
        [&](std::uint8_t status, Addr addr) {
            EXPECT_EQ(status, virtio::VIRTIO_BLK_S_OK);
            auto got = g.os().memory().readBlob(addr, 4096);
            EXPECT_EQ(got, data);
            read_done = true;
        }));
    sim.run(sim.now() + msToTicks(20));
    ASSERT_TRUE(read_done);
    EXPECT_EQ(g.blk()->errors(), 0u);
}

TEST_F(BmIntegrationTest, StorageLatencyIsPlausible)
{
    BmGuest &g = newGuest(0xaa);
    sim.run(msToTicks(1));

    Tick t0 = sim.now();
    Tick done_at = 0;
    ASSERT_TRUE(g.blk()->read(0, 4096, g.os().cpu(0),
                              [&](std::uint8_t, Addr) {
                                  done_at = sim.now();
                              }));
    sim.run(sim.now() + msToTicks(50));
    ASSERT_GT(done_at, 0u);
    Tick latency = done_at - t0;
    // Two fabric traversals (2x30 us) + SSD service at minimum.
    EXPECT_GE(latency, usToTicks(80));
    EXPECT_LE(latency, msToTicks(5));
}

TEST_F(BmIntegrationTest, BootFromCloudImageOverVirtio)
{
    auto &vol = storage.createVolume("bootvol", 64 * MiB);
    guest::installImage(vol, 256 * KiB, "centos-7.4");
    BmGuest &g = server.provision(InstanceCatalog::evaluated(),
                                  0xcc, &vol);
    sim.run(msToTicks(1));

    bool booted = false;
    std::string version;
    guest::VirtioBootFirmware fw(g.os(), *g.blk());
    fw.boot([&](bool ok, const std::string &v) {
        booted = ok;
        version = v;
    });
    sim.run(sim.now() + secToTicks(2));
    EXPECT_TRUE(booted);
    EXPECT_EQ(version, "centos-7.4");
}

TEST_F(BmIntegrationTest, HostileRingCannotWedgeBackend)
{
    BmGuest &g = newGuest(0xaa);
    BmGuest &peer = newGuest(0xbb);
    sim.run(msToTicks(1));

    // The "guest" writes a corrupt chain directly into its own
    // ring memory: a loop between descriptors 0 and 1 on the tx
    // queue, published via the avail ring.
    auto &txq = g.net().queue(virtio::NET_TXQ);
    auto layout = txq.layout();
    GuestMemory &m = g.os().memory();
    layout.writeDesc(m, 0,
                     {0x100, 8, virtio::VRING_DESC_F_NEXT, 1});
    layout.writeDesc(m, 1,
                     {0x200, 8, virtio::VRING_DESC_F_NEXT, 0});
    std::uint16_t avail = layout.availIdx(m);
    layout.setAvailRing(m, avail % layout.size(), 0);
    layout.setAvailIdx(m, avail + 1);
    g.net().kickNow(virtio::NET_TXQ);

    sim.run(sim.now() + msToTicks(5));
    EXPECT_GE(g.bond().malformedChains(), 1u);

    // The backend and the rest of the server still work: the peer
    // can still receive traffic from this guest via a fresh, sane
    // packet (driver state was not corrupted by desc 0/1 reuse —
    // use the peer to send instead).
    std::vector<cloud::Packet> got;
    g.net().setRxHandler(
        [&](const cloud::Packet &p) { got.push_back(p); });
    cloud::Packet pkt;
    pkt.src = 0xbb;
    pkt.dst = 0xaa;
    pkt.len = 64;
    pkt.seq = 7;
    ASSERT_TRUE(peer.net().sendPacket(pkt, true, peer.os().cpu(0)));
    sim.run(sim.now() + msToTicks(5));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].seq, 7u);
}

TEST_F(BmIntegrationTest, FirmwareUpdateRequiresValidSignature)
{
    BmGuest &g = newGuest(0xaa);

    hw::FirmwareImage evil;
    evil.version = "evil-2.0";
    evil.payloadDigest = 0xbadf00d;
    evil.signature = 0x12345678; // forged
    EXPECT_FALSE(g.hypervisor().updateGuestFirmware(evil));
    EXPECT_EQ(g.board().firmware().version, "factory-1.0");

    hw::FirmwareImage good;
    good.version = "signed-2.0";
    good.payloadDigest = 0x2000;
    good.signature = hw::FirmwareImage::sign(
        0x2000, hv::BmHypervisor::providerKey);
    EXPECT_TRUE(g.hypervisor().updateGuestFirmware(good));
    EXPECT_EQ(g.board().firmware().version, "signed-2.0");
}

TEST_F(BmIntegrationTest, SixteenGuestsCoReside)
{
    for (unsigned i = 0; i < 16; ++i) {
        // The evaluated 32HT instance allows only 8 per server;
        // use the smaller E3 instance for a full house.
        auto &vol = storage.createVolume(
            "v" + std::to_string(i), 16 * MiB);
        server.provision(InstanceCatalog::byName("ebm.xeon-e3.8"),
                         0x100 + i, &vol);
    }
    EXPECT_EQ(server.guestCount(), 16u);
    EXPECT_EQ(server.freeSlots(), 0u);
    Logger::global().setThrowOnDeath(true);
    auto &vol = storage.createVolume("overflow", 16 * MiB);
    EXPECT_THROW(server.provision(
                     InstanceCatalog::byName("ebm.xeon-e3.8"),
                     0x999, &vol),
                 FatalError);
    Logger::global().setThrowOnDeath(false);
}

TEST_F(BmIntegrationTest, ReleaseFreesSlotAndStopsService)
{
    BmGuest &g = newGuest(0xaa);
    EXPECT_EQ(server.freeSlots(), server.maxBoards() - 1);
    server.release(g);
    EXPECT_EQ(server.freeSlots(), server.maxBoards());
    EXPECT_EQ(g.board().powerState(), hw::BoardPower::Off);
}

TEST_F(BmIntegrationTest, DeterministicAcrossRuns)
{
    auto run_once = [](std::uint64_t seed) {
        Simulation sim(seed);
        cloud::VSwitch vs(sim, "vs");
        cloud::BlockService st(sim, "st");
        BmHiveServer srv(sim, "srv", vs, &st);
        auto &vol = st.createVolume("v", 16 * MiB);
        BmGuest &a = srv.provision(InstanceCatalog::evaluated(),
                                   0xaa, &vol);
        BmGuest &b = srv.provision(InstanceCatalog::evaluated(),
                                   0xbb, nullptr);
        sim.run(msToTicks(1));
        Tick recv = 0;
        b.net().setRxHandler(
            [&](const cloud::Packet &) { recv = sim.now(); });
        cloud::Packet p;
        p.src = 0xaa;
        p.dst = 0xbb;
        p.len = 64;
        a.net().sendPacket(p, true, a.os().cpu(0));
        sim.run(sim.now() + msToTicks(10));
        return recv;
    };
    Tick r1 = run_once(77);
    Tick r2 = run_once(77);
    EXPECT_EQ(r1, r2);
    EXPECT_GT(r1, 0u);
}

} // namespace
} // namespace bmhive

/**
 * @file
 * Tests for the section 3.4.2 / section 6 features: the guest
 * console device (demonstrating IO-Bond's extension to a third
 * virtio device type with zero bridge changes) and the
 * Orthus-style live upgrade of the bm-hypervisor process.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/bmhive_server.hh"

namespace bmhive {
namespace {

class FeatureTest : public ::testing::Test
{
  protected:
    FeatureTest()
        : sim(61), vswitch(sim, "vs"), storage(sim, "st"),
          server(sim, "srv", vswitch, &storage, params())
    {
    }

    static core::BmServerParams
    params()
    {
        core::BmServerParams p;
        p.maxBoards = 2;
        return p;
    }

    Simulation sim;
    cloud::VSwitch vswitch;
    cloud::BlockService storage;
    core::BmHiveServer server;
};

TEST_F(FeatureTest, ConsoleOutputReachesHypervisor)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));

    std::string captured;
    g.hypervisor().setConsoleSink(
        [&](const std::string &s) { captured += s; });

    EXPECT_TRUE(g.console().write("Linux version 3.10.0-514\n",
                                  g.os().cpu(0)));
    EXPECT_TRUE(g.console().write("login: ", g.os().cpu(0)));
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(captured, "Linux version 3.10.0-514\nlogin: ");
    EXPECT_EQ(g.console().bytesWritten(), captured.size());
}

TEST_F(FeatureTest, ConsoleInputReachesGuest)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));

    std::string seen;
    g.console().setInputHandler(
        [&](const std::string &s) { seen += s; });
    g.hypervisor().consoleInput("root\n");
    g.hypervisor().consoleInput("ls -l\n");
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(seen, "root\nls -l\n");
    EXPECT_EQ(g.console().bytesRead(), seen.size());
}

TEST_F(FeatureTest, ConsoleEchoLoop)
{
    // A shell-like loop: hypervisor input is echoed back by the
    // guest, exercising both directions through the shadow rings.
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));

    std::string echoed;
    g.hypervisor().setConsoleSink(
        [&](const std::string &s) { echoed += s; });
    g.console().setInputHandler([&](const std::string &s) {
        g.console().write("echo: " + s, g.os().cpu(0));
    });
    g.hypervisor().consoleInput("hello");
    sim.run(sim.now() + msToTicks(3));
    EXPECT_EQ(echoed, "echo: hello");
}

TEST_F(FeatureTest, LiveUpgradeSwapsServiceQuickly)
{
    auto &vol = storage.createVolume("v", 32 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));

    auto *old_svc = &g.hypervisor().service();
    bool done = false;
    Tick downtime = 0;
    g.hypervisor().liveUpgrade([&](Tick d) {
        done = true;
        downtime = d;
    });
    sim.run(sim.now() + msToTicks(10));
    ASSERT_TRUE(done);
    EXPECT_NE(&g.hypervisor().service(), old_svc);
    EXPECT_EQ(g.hypervisor().upgrades(), 1u);
    // With an idle guest the swap is nearly instantaneous.
    EXPECT_LT(downtime, msToTicks(1));
}

TEST_F(FeatureTest, LiveUpgradeWaitsForInflightIo)
{
    auto &vol = storage.createVolume("v", 32 * MiB);
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA, &vol);
    sim.run(sim.now() + msToTicks(1));

    // Put several block I/Os in flight, then upgrade immediately.
    unsigned completed = 0;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(g.blk()->read(
            std::uint64_t(i) * 8, 4 * KiB, g.os().cpu(1),
            [&](std::uint8_t st, Addr) {
                EXPECT_EQ(st, virtio::VIRTIO_BLK_S_OK);
                ++completed;
            }));
    }
    sim.run(sim.now() + usToTicks(50)); // I/Os now in flight

    Tick downtime = 0;
    bool done = false;
    g.hypervisor().liveUpgrade([&](Tick d) {
        done = true;
        downtime = d;
    });
    sim.run(sim.now() + msToTicks(30));
    ASSERT_TRUE(done);
    // Quiesce had to wait for storage round trips: real downtime.
    EXPECT_GT(downtime, usToTicks(100));
    EXPECT_EQ(completed, 8u); // nothing lost

    // The upgraded service keeps serving I/O.
    bool after = false;
    ASSERT_TRUE(g.blk()->read(0, 4 * KiB, g.os().cpu(1),
                              [&](std::uint8_t st, Addr) {
                                  EXPECT_EQ(
                                      st, virtio::VIRTIO_BLK_S_OK);
                                  after = true;
                              }));
    sim.run(sim.now() + msToTicks(30));
    EXPECT_TRUE(after);
}

TEST_F(FeatureTest, LiveUpgradePreservesNetworking)
{
    auto &a = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    auto &b = server.provision(core::InstanceCatalog::evaluated(),
                               0xB);
    sim.run(sim.now() + msToTicks(1));

    std::vector<std::uint64_t> seqs;
    b.net().setRxHandler(
        [&](const cloud::Packet &p) { seqs.push_back(p.seq); });

    auto send = [&](std::uint64_t seq) {
        cloud::Packet p;
        p.src = 0xA;
        p.dst = 0xB;
        p.len = 64;
        p.seq = seq;
        ASSERT_TRUE(a.net().sendPacket(p, true, a.os().cpu(1)));
    };

    send(1);
    sim.run(sim.now() + msToTicks(2));
    // Upgrade BOTH ends mid-conversation.
    a.hypervisor().liveUpgrade(nullptr);
    b.hypervisor().liveUpgrade(nullptr);
    sim.run(sim.now() + msToTicks(2));
    send(2);
    send(3);
    sim.run(sim.now() + msToTicks(5));

    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(a.hypervisor().upgrades(), 1u);
}

TEST_F(FeatureTest, RepeatedUpgradesAccumulate)
{
    auto &g = server.provision(core::InstanceCatalog::evaluated(),
                               0xA);
    sim.run(sim.now() + msToTicks(1));
    for (int i = 0; i < 5; ++i) {
        g.hypervisor().liveUpgrade(nullptr);
        sim.run(sim.now() + msToTicks(1));
    }
    EXPECT_EQ(g.hypervisor().upgrades(), 5u);
    // Console still works after five generations.
    std::string out;
    g.hypervisor().setConsoleSink(
        [&](const std::string &s) { out += s; });
    g.console().write("alive\n", g.os().cpu(0));
    sim.run(sim.now() + msToTicks(2));
    EXPECT_EQ(out, "alive\n");
}

} // namespace
} // namespace bmhive

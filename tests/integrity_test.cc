/**
 * @file
 * End-to-end data-integrity tests (detect, contain, heal):
 *
 *  - checksum primitives (CRC32C, T10-DIF CRC16) and the DIF
 *    tag/verify helpers, including wrong-LBA and truncation;
 *  - frame checksums: sealed packets verify, mutations don't,
 *    unsealed legacy frames pass;
 *  - DmaEngine ECRC arithmetic: a single corruption is detected
 *    and healed by replay (never delivered), exhausted retries
 *    escalate exactly once through the integrity handler, and
 *    account-only transfers never burn a corruption budget;
 *  - escalation ordering: a mirror transfer whose ECRC replays are
 *    exhausted completes data-less, and IO-Bond must not publish
 *    the unwritten chains — a guest write is never acked OK unless
 *    its bytes are durable (the false-ack regression);
 *  - the IO-Bond shadow-metadata scrubber: injected metadata rot
 *    is repaired in place; dirt on consecutive passes escalates
 *    to a queue reset, and the configured escalation threshold
 *    marks the whole server unhealthy exactly once;
 *  - guest-invisible DIF healing: a fabric-corrupted read is
 *    resubmitted by the backend before the guest sees anything;
 *  - rack scale: an integrity-unhealthy server is proactively
 *    drained by the fleet controller (live migration);
 *  - ring-metadata fault accounting: a scribbled chain link is
 *    counted under integrity.meta_faults, not just logged.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/checksum.hh"
#include "bench/common.hh"
#include "cloud/dif.hh"
#include "cloud/packet.hh"
#include "fault/fault_injector.hh"
#include "fleet/fleet_controller.hh"
#include "mem/dma_engine.hh"
#include "virtio/virtqueue.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace {

using namespace virtio;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSpec;

FaultSpec
spec(FaultKind k, unsigned count = 1)
{
    FaultSpec s;
    s.kind = k;
    s.count = count;
    return s;
}

// --- Checksum primitives ---

TEST(ChecksumTest, Crc32cKnownAnswerAndChaining)
{
    const std::uint8_t msg[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
    // The CRC32C check value every implementation agrees on.
    EXPECT_EQ(crc32c(msg, sizeof(msg)), 0xE3069283u);
    // Seedable chaining over a split buffer.
    EXPECT_EQ(crc32c(msg + 4, 5, crc32c(msg, 4)),
              crc32c(msg, sizeof(msg)));
    // Word folding matches the byte-serial form.
    std::uint8_t le[8];
    std::uint64_t w = 0x1122334455667788ull;
    for (int i = 0; i < 8; ++i)
        le[i] = std::uint8_t(w >> (8 * i));
    EXPECT_EQ(crc32cWord(w), crc32c(le, 8));
}

TEST(ChecksumTest, Crc16T10DifDetectsSingleBitFlips)
{
    std::vector<std::uint8_t> sector(512);
    for (std::size_t i = 0; i < sector.size(); ++i)
        sector[i] = std::uint8_t(i * 7);
    std::uint16_t clean = crc16T10dif(sector.data(), sector.size());
    for (std::size_t i = 0; i < sector.size(); i += 61) {
        sector[i] ^= 1;
        EXPECT_NE(crc16T10dif(sector.data(), sector.size()), clean)
            << "flip at " << i;
        sector[i] ^= 1;
    }
    EXPECT_EQ(crc16T10dif(sector.data(), sector.size()), clean);
}

// --- DIF tag helpers ---

TEST(DifTest, WireLengthRoundTrip)
{
    using namespace cloud;
    EXPECT_EQ(difWireBytes(512), 520u);
    EXPECT_EQ(difWireBytes(4096), 4096u + 8 * 8);
    EXPECT_EQ(difPayloadBytes(difWireBytes(4096)), 4096u);
    EXPECT_EQ(difPayloadBytes(difWireBytes(128 * KiB)), 128 * KiB);
    // 65 untagged sectors and 64 tagged ones are the same number
    // of wire bytes — length alone cannot say whether a buffer
    // carries tags, which is why both ends negotiate the mode.
    EXPECT_EQ(65 * difSectorBytes, 64 * difProtectedSectorBytes);
}

TEST(DifTest, BuildCheckDetectsCorruptionAndWrongLba)
{
    using namespace cloud;
    std::vector<std::uint8_t> payload(3 * difSectorBytes);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = std::uint8_t(i * 13 + 1);
    const std::uint64_t lba = 4242;

    std::vector<std::uint8_t> buf = payload;
    auto tags = difBuildTags(payload, lba);
    ASSERT_EQ(tags.size(), 3 * difTagBytes);
    buf.insert(buf.end(), tags.begin(), tags.end());

    EXPECT_EQ(difCheck(buf, lba), -1);
    // A payload flip in sector 1 is caught at sector 1.
    buf[difSectorBytes + 100] ^= 0x40;
    EXPECT_EQ(difCheck(buf, lba), 1);
    buf[difSectorBytes + 100] ^= 0x40;
    // A guard-tag flip is just as fatal.
    buf[3 * difSectorBytes + 2 * difTagBytes] ^= 0x01;
    EXPECT_EQ(difCheck(buf, lba), 2);
    buf[3 * difSectorBytes + 2 * difTagBytes] ^= 0x01;
    // Misdirected I/O: right bytes, wrong LBA.
    EXPECT_EQ(difCheck(buf, lba + 1), 0);
    // Truncation cannot pass as a whole protected buffer.
    std::vector<std::uint8_t> cut(buf.begin(), buf.end() - 1);
    EXPECT_EQ(difCheck(cut, lba), 0);
}

// --- Frame checksums ---

TEST(PacketCsumTest, SealedFramesVerifyMutationsDoNot)
{
    cloud::Packet p;
    p.src = 0xA;
    p.dst = 0xB;
    p.len = 1200;
    p.seq = 7;
    p.created = 123456;
    // Unsealed legacy frame: csum 0 passes (nothing to verify).
    EXPECT_TRUE(cloud::packetCsumOk(p));
    cloud::sealPacket(p);
    EXPECT_NE(p.csum, 0u);
    EXPECT_TRUE(cloud::packetCsumOk(p));
    cloud::Packet q = p;
    q.created ^= 0xA5A5; // the FabricCorrupt mutation
    EXPECT_FALSE(cloud::packetCsumOk(q));
    q = p;
    q.seq += 1;
    EXPECT_FALSE(cloud::packetCsumOk(q));
    q = p;
    q.len -= 1;
    EXPECT_FALSE(cloud::packetCsumOk(q));
}

// --- DmaEngine ECRC arithmetic ---

TEST(DmaEcrcTest, SingleCorruptionHealedByReplayNeverDelivered)
{
    Simulation sim(1);
    GuestMemory src("src", 64 * KiB), dst("dst", 64 * KiB);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    dma.setIntegrity(true);
    std::vector<std::uint8_t> pattern(4096);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = std::uint8_t(i * 3 + 1);
    src.writeBlob(0x1000, pattern);

    FaultInjector inj(sim, "inj");
    inj.at(nsToTicks(1), "dma", spec(FaultKind::DmaCorrupt, 1));
    inj.arm();

    bool done = false;
    dma.copy(src, 0x1000, dst, 0x2000, pattern.size(),
             [&] { done = true; });
    sim.run(usToTicks(50));

    ASSERT_TRUE(done);
    EXPECT_EQ(dst.readBlob(0x2000, pattern.size()), pattern);
    EXPECT_EQ(dma.ecrcDetected(), 1u);
    EXPECT_EQ(dma.ecrcHealed(), 1u);
    EXPECT_EQ(dma.ecrcEscalations(), 0u);
    // The healed retry's latency is recorded (SLO-visible).
    EXPECT_EQ(
        sim.metrics().latency("dma.integrity.retry").count(), 1u);
}

TEST(DmaEcrcTest, ExhaustedRetriesEscalateOnceWithoutDelivering)
{
    Simulation sim(2);
    GuestMemory src("src", 64 * KiB), dst("dst", 64 * KiB);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(50));
    dma.setIntegrity(true);
    std::vector<std::uint8_t> pattern(4096, 0x5A);
    src.writeBlob(0x1000, pattern);

    // Budget outlasts the replays: initial attempt + 2 retries all
    // corrupt, so the ladder must escalate, exactly once.
    FaultInjector inj(sim, "inj");
    inj.at(nsToTicks(1), "dma", spec(FaultKind::DmaCorrupt, 8));
    inj.arm();

    unsigned escalations = 0;
    dma.setIntegrityHandler([&] { ++escalations; });
    bool done = false;
    dma.copy(src, 0x1000, dst, 0x2000, pattern.size(),
             [&] { done = true; });
    sim.run(usToTicks(50));

    ASSERT_TRUE(done); // data-less completion, like DmaFail
    EXPECT_EQ(escalations, 1u);
    EXPECT_EQ(dma.ecrcEscalations(), 1u);
    EXPECT_EQ(dma.ecrcDetected(), 3u); // attempt + 2 replays
    EXPECT_EQ(dma.ecrcHealed(), 0u);
    // Corrupted bytes never landed: the destination is untouched.
    EXPECT_EQ(dst.readBlob(0x2000, pattern.size()),
              std::vector<std::uint8_t>(pattern.size(), 0));
}

TEST(DmaEcrcTest, AccountOnlyTransfersNeverBurnCorruptBudget)
{
    Simulation sim(3);
    GuestMemory src("src", 4096), dst("dst", 4096);
    DmaEngine dma(sim, "dma", Bandwidth::gbps(8));
    dma.setIntegrity(true);
    std::vector<std::uint8_t> pattern(256, 0x11);
    src.writeBlob(0, pattern);

    FaultInjector inj(sim, "inj");
    inj.at(nsToTicks(1), "dma", spec(FaultKind::DmaCorrupt, 1));
    inj.arm();

    // Pure bookkeeping transfers (null src), including a copyv
    // whose only segments are account-only, must leave the budget
    // armed for the next transfer that actually moves bytes.
    dma.accountOnly(512, nullptr);
    dma.copyv({DmaEngine::CopySeg{nullptr, 0, nullptr, 0, 64},
               DmaEngine::CopySeg{nullptr, 0, nullptr, 0, 8}},
              nullptr);
    sim.run(usToTicks(10));
    EXPECT_EQ(dma.faultsInjected(), 0u);

    bool done = false;
    dma.copy(src, 0, dst, 0, pattern.size(), [&] { done = true; });
    sim.run(sim.now() + usToTicks(10));
    ASSERT_TRUE(done);
    EXPECT_EQ(dma.faultsInjected(), 1u);
    EXPECT_EQ(dma.ecrcDetected(), 1u);
    EXPECT_EQ(dma.ecrcHealed(), 1u);
    EXPECT_EQ(dst.readBlob(0, pattern.size()), pattern);
}

TEST(DmaEcrcTest, EscalatedMirrorTransferNeverFalselyAcksWrite)
{
    bench::Testbed bed(16);
    auto g = bed.bmGuest(0xA, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    // Exactly the attempt + 2 replays corrupt: the write's mirror
    // transfer exhausts its ECRC budget and completes data-less.
    // Before the publish callback checked lastDelivered(), those
    // zero-filled chains reached the backend, parsed as reads, and
    // the guest's write came back OK with nothing persisted.
    FaultInjector inj(bed.sim, "inj");
    inj.at(bed.sim.now(), "server.guest0.iobond.dma",
           spec(FaultKind::DmaCorrupt, 3));
    inj.arm();

    std::vector<std::uint8_t> pattern(4096, 0x5A);
    unsigned completions = 0;
    std::uint8_t wr_status = 0xEE;
    ASSERT_TRUE(g.blk->write(64, pattern.size(), &pattern, g.cpu(0),
                             [&](std::uint8_t st, Addr) {
                                 ++completions;
                                 wr_status = st;
                             }));
    bed.sim.run(bed.sim.now() + msToTicks(10.0));
    ASSERT_EQ(completions, 1u);

    iobond::IoBond &bond = bed.server.guest(0).bond();
    EXPECT_GE(bond.dma().ecrcEscalations(), 1u);
    EXPECT_GE(bond.integrityQueueResets(), 1u);

    // The ladder may contain (IOERR back to the caller) or heal
    // (reset + caller retry); what it must never do is ack OK
    // without the bytes being readable. The budget is spent, so
    // this read-back rides a clean fabric.
    unsigned reads = 0;
    ASSERT_TRUE(g.blk->read(
        64, pattern.size(), g.cpu(0),
        [&](std::uint8_t st, Addr data) {
            ++reads;
            ASSERT_EQ(st, 0);
            auto got =
                g.os->memory().readBlob(data, pattern.size());
            if (wr_status == 0) {
                EXPECT_EQ(got, pattern)
                    << "write acked OK but bytes not durable";
            }
        }));
    bed.sim.run(bed.sim.now() + msToTicks(10.0));
    EXPECT_EQ(reads, 1u);
}

// --- Shadow-vring scrubber + the server escalation ladder ---

/** Issue @p n background reads so blk chains sit in flight at the
 *  (deliberately slow) storage backend while the scrubber runs. */
unsigned
pumpReads(workloads::GuestContext &g, unsigned n,
          unsigned *completed)
{
    unsigned issued = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!g.blk->read(i * 8, 4096, g.cpu(0),
                         [completed](std::uint8_t, Addr) {
                             ++*completed;
                         }))
            break;
        ++issued;
    }
    return issued;
}

TEST(ScrubberTest, RepairsInjectedMetadataRot)
{
    bench::Testbed bed(11);
    auto g = bed.bmGuest(0xA, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    unsigned completed = 0;
    unsigned issued = pumpReads(g, 8, &completed);
    ASSERT_GT(issued, 0u);
    // Let the chains reach the storage backend (they stay in
    // flight for a ~300 us round trip), then rot their shadow
    // metadata once.
    bed.sim.run(bed.sim.now() + usToTicks(20));
    FaultInjector inj(bed.sim, "inj");
    inj.at(bed.sim.now(), "server.guest0.iobond",
           spec(FaultKind::DmaCorruptMeta, 2));
    inj.arm();
    bed.sim.run(bed.sim.now() + msToTicks(2.0));

    iobond::IoBond &bond = bed.server.guest(0).bond();
    EXPECT_EQ(inj.injected(), 1u);
    EXPECT_EQ(bond.metaFaultsInjected(), 2u);
    // One dirty pass: repaired in place, no escalation, and every
    // read still completes (the repair IS the heal for metadata).
    EXPECT_GE(bond.scrubRepairs(), 2u);
    EXPECT_GE(bond.scrubRuns(), 1u);
    EXPECT_EQ(bond.integrityQueueResets(), 0u);
    EXPECT_EQ(bed.server.integrityEscalations(), 0u);
    EXPECT_EQ(completed, issued);
    EXPECT_EQ(g.blk->resets(), 0u);
}

TEST(ScrubberTest, PersistentRotEscalatesToQueueReset)
{
    bench::Testbed bed(12);
    auto g = bed.bmGuest(0xA, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    unsigned completed = 0;
    pumpReads(g, 8, &completed);
    bed.sim.run(bed.sim.now() + usToTicks(20));

    // Re-rot live chains faster than the scrub period: every pass
    // is dirty, and the second consecutive strike must reset the
    // function instead of repairing forever.
    FaultInjector inj(bed.sim, "inj");
    for (int burst = 0; burst < 8; ++burst) {
        inj.at(bed.sim.now(), "server.guest0.iobond",
               spec(FaultKind::DmaCorruptMeta, 1));
        inj.arm();
        bed.sim.run(bed.sim.now() + usToTicks(40));
    }
    bed.sim.run(bed.sim.now() + msToTicks(5.0));

    iobond::IoBond &bond = bed.server.guest(0).bond();
    EXPECT_GE(bond.scrubRepairs(), 2u);
    EXPECT_GE(bond.integrityQueueResets(), 1u);
    EXPECT_GE(bed.server.integrityEscalations(), 1u);
    // Below the server-unhealthy threshold (3 by default), the
    // escalation stays contained to the function.
    EXPECT_FALSE(bed.server.integrityUnhealthy());
}

TEST(ScrubberTest, ThresholdMarksServerUnhealthyOnce)
{
    core::BmServerParams sp;
    sp.maxBoards = 4;
    sp.integrity.serverUnhealthyThreshold = 1;
    bench::Testbed bed(13, sp);
    auto g = bed.bmGuest(0xA, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    unsigned unhealthy_cb = 0;
    bed.server.setServerUnhealthyCallback([&] { ++unhealthy_cb; });

    unsigned completed = 0;
    pumpReads(g, 8, &completed);
    bed.sim.run(bed.sim.now() + usToTicks(20));
    FaultInjector inj(bed.sim, "inj");
    for (int burst = 0; burst < 12; ++burst) {
        inj.at(bed.sim.now(), "server.guest0.iobond",
               spec(FaultKind::DmaCorruptMeta, 1));
        inj.arm();
        bed.sim.run(bed.sim.now() + usToTicks(40));
    }
    bed.sim.run(bed.sim.now() + msToTicks(5.0));

    EXPECT_GE(bed.server.integrityEscalations(), 1u);
    EXPECT_TRUE(bed.server.integrityUnhealthy());
    // The ladder's top fires exactly once, however many further
    // escalations arrive.
    EXPECT_EQ(unhealthy_cb, 1u);
    EXPECT_EQ(
        bed.sim.metrics()
            .counter("server.integrity.server_unhealthy")
            .value(),
        1u);
}

// --- Guest-invisible DIF healing on the read path ---

TEST(DifHealTest, FabricCorruptedReadIsRetriedNotDelivered)
{
    bench::Testbed bed(14);
    auto g = bed.bmGuest(0xA, 16);
    bed.sim.run(bed.sim.now() + msToTicks(1.0));
    ASSERT_NE(g.blk, nullptr);

    // Seed known content.
    std::vector<std::uint8_t> pattern(4096);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = std::uint8_t(i * 11 + 3);
    bool wrote = false;
    ASSERT_TRUE(g.blk->write(64, pattern.size(), &pattern, g.cpu(0),
                             [&](std::uint8_t st, Addr) {
                                 EXPECT_EQ(st, 0);
                                 wrote = true;
                             }));
    bed.sim.run(bed.sim.now() + msToTicks(2.0));
    ASSERT_TRUE(wrote);

    // The storage fabric corrupts the next read's payload; the
    // backend's DIF check must catch it and resubmit, so the guest
    // sees clean bytes, exactly once, just later.
    FaultInjector inj(bed.sim, "inj");
    inj.at(bed.sim.now(), "storage",
           spec(FaultKind::FabricCorrupt, 1));
    inj.arm();
    unsigned completions = 0;
    ASSERT_TRUE(g.blk->read(
        64, pattern.size(), g.cpu(0),
        [&](std::uint8_t st, Addr data) {
            ++completions;
            EXPECT_EQ(st, 0);
            EXPECT_EQ(g.os->memory().readBlob(data, pattern.size()),
                      pattern);
        }));
    bed.sim.run(bed.sim.now() + msToTicks(5.0));

    EXPECT_EQ(completions, 1u);
    EXPECT_EQ(bed.storage.fabricCorruptions(), 1u);
    ASSERT_NE(g.svc, nullptr);
    EXPECT_GE(g.svc->difDetects(), 1u);
    EXPECT_GE(g.svc->difRetries(), 1u);
    EXPECT_EQ(g.svc->difFailures(), 0u);
    EXPECT_EQ(g.blk->errors(), 0u);
}

// --- Fleet: integrity-unhealthy servers are drained ---

TEST(FleetIntegrityTest, UnhealthyServerDrainedByLiveMigration)
{
    Simulation sim(15);
    cloud::VSwitch vswitch(sim, "vswitch");
    cloud::BlockService storage(sim, "storage");
    fleet::FleetParams fp;
    fp.servers = 2;
    fp.server.maxBoards = 2;
    fp.server.integrity.serverUnhealthyThreshold = 1;
    fleet::FleetController fc(sim, "fleet", vswitch, &storage, fp);
    auto &vol = storage.createVolume("v", 16 * MiB);
    fleet::GuestId id =
        fc.place(core::InstanceCatalog::evaluated(), 0xA, &vol);
    ASSERT_NE(id, fleet::invalidGuest);
    ASSERT_EQ(fc.serverOf(id), 0u);
    sim.run(sim.now() + msToTicks(1.0));

    auto g = workloads::GuestContext::of(fc.guest(id));
    unsigned completed = 0;
    pumpReads(g, 8, &completed);
    sim.run(sim.now() + usToTicks(20));

    // Persistent corruption on s0's bond: with the threshold at 1,
    // the first scrubber escalation declares s0 unhealthy and the
    // fleet controller drains it. Stop injecting the moment the
    // drain starts — further rot would just race the export.
    FaultInjector inj(sim, "inj");
    for (int burst = 0; burst < 12 && fc.integrityDrains() == 0;
         ++burst) {
        inj.at(sim.now(), "fleet.s0.guest0.iobond",
               spec(FaultKind::DmaCorruptMeta, 1));
        inj.arm();
        sim.run(sim.now() + usToTicks(40));
    }

    for (int spin = 0; spin < 100; ++spin) {
        sim.run(sim.now() + msToTicks(1.0));
        if (fc.integrityDrains() > 0 && !fc.migrating(id))
            break;
    }
    EXPECT_GE(fc.integrityDrains(), 1u);
    EXPECT_GE(fc.migrationsDone(), 1u);
    ASSERT_TRUE(fc.alive(id));
    EXPECT_EQ(fc.serverOf(id), 1u);
    EXPECT_TRUE(fc.server(0).integrityUnhealthy());
}

// --- Ring-metadata fault accounting (integrity.meta_faults) ---

TEST(MetaFaultCounterTest, ScribbledChainLinkCounted)
{
    GuestMemory mem("m", 1 * MiB);
    auto layout = VringLayout::contiguous(8, 0x1000);
    VirtQueueDriver drv(mem, layout, false, 0, false);
    VirtQueueDevice dev(mem, layout);
    Counter meta;
    drv.setMetaFaultCounter(&meta);

    auto head = drv.submit({{0x10000, 64, false}},
                           {{0x20000, 64, true}}, 1);
    ASSERT_TRUE(head.has_value());
    // Scribble the head descriptor's next link out of range after
    // submission; the device completes the head regardless (real
    // backends snapshot the chain at pop time), and the driver's
    // reap must contain the bad link and count it.
    VringDesc d = layout.readDesc(mem, *head);
    ASSERT_TRUE(d.flags & VRING_DESC_F_NEXT);
    d.next = 999;
    layout.writeDesc(mem, *head, d);

    dev.pushUsed(*head, 64);
    auto done = drv.collectUsed();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(meta.value(), 1u);
}

} // namespace
} // namespace bmhive

#include "sched/poll_scheduler.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace sched {

PollScheduler::PollScheduler(Simulation &sim, std::string name,
                             std::vector<hw::CpuExecutor *> cores,
                             PollSchedulerParams params)
    : SimObject(sim, std::move(name)), params_(params)
{
    fatal_if(cores.empty(), this->name(),
             ": a poll scheduler needs at least one core");
    fatal_if(params_.quantum == 0, this->name(),
             ": DWRR quantum must be positive");
    cores_.resize(cores.size());
    for (unsigned i = 0; i < cores.size(); ++i) {
        Core &c = cores_[i];
        c.exec = cores[i];
        c.period = params_.pollPeriod;
        std::string base =
            this->name() + ".core" + std::to_string(i);
        c.rounds = &metrics().counter(base + ".rounds");
        c.busy = &metrics().counter(base + ".busy_rounds");
        c.items = &metrics().counter(base + ".items");
        c.wakes = &metrics().counter(base + ".wakes");
        c.sleeps = &metrics().counter(base + ".sleeps");
        c.pollables = &metrics().gauge(base + ".pollables");
        c.roundItems =
            &metrics().histogram(base + ".round_items", 0, 1024, 32);
        c.wakeToPoll = &metrics().latency(base + ".wake_to_poll");
        c.roundEvent = std::make_unique<EventFunctionWrapper>(
            [this, i] { runRound(i); }, base + ".round",
            Event::pollPri);
    }
}

PollScheduler::~PollScheduler()
{
    for (Core &c : cores_) {
        if (c.roundEvent->scheduled())
            eventq().deschedule(c.roundEvent.get());
    }
}

hw::CpuExecutor &
PollScheduler::coreExecutor(unsigned i)
{
    panic_if(i >= cores_.size(), name(), ": bad core ", i);
    return *cores_[i].exec;
}

unsigned
PollScheduler::leastLoadedCore() const
{
    unsigned best = 0;
    for (unsigned i = 1; i < cores_.size(); ++i) {
        if (cores_[i].members.size() <
            cores_[best].members.size())
            best = i;
    }
    return best;
}

PollScheduler::Handle
PollScheduler::add(unsigned core, Pollable &p, double weight)
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    Core &c = cores_[core];
    Member m;
    m.id = nextId_++;
    m.pollable = &p;
    m.weight = weight;
    m.served =
        &metrics().counter(name() + ".served." + p.pollableName());
    c.members.push_back(m);
    c.pollables->set(double(c.members.size()));
    // Kick the core: work queued before registration (bring-up,
    // recovery republish) has no doorbell left to post a wake.
    if (c.state == CoreState::Sleep) {
        c.state = CoreState::Busy;
        c.period = params_.pollPeriod;
        c.idleRounds = 0;
    }
    kick(core, curTick() + params_.wakeLatency);
    return Handle{core, m.id};
}

void
PollScheduler::remove(Handle h)
{
    if (!h.valid())
        return;
    Core &c = cores_[h.core];
    for (auto it = c.members.begin(); it != c.members.end(); ++it) {
        if (it->id == h.id) {
            c.members.erase(it);
            c.pollables->set(double(c.members.size()));
            return;
        }
    }
}

void
PollScheduler::setWeight(Handle h, double w)
{
    Member *m = find(h);
    if (!m)
        return;
    m->weight = w;
    if (w <= 0.0) {
        // Starved: forfeit accumulated credit so a restored guest
        // restarts from a clean share.
        m->deficit = 0.0;
        return;
    }
    // Work posted while starved or deprioritized waits for the
    // weight to come back; the restore is its wake.
    if (m->wakePending)
        expedite(h.core, true);
}

void
PollScheduler::setFlightRecorder(Handle h, obs::FlightRecorder *fr)
{
    Member *m = find(h);
    if (m)
        m->flight = fr;
}

void
PollScheduler::wake(Handle h)
{
    Member *m = find(h);
    if (!m || !m->pollable->pollAlive())
        return;
    if (!m->wakePending) {
        m->wakePending = true;
        m->postedAt = curTick();
    }
    if (m->weight <= 0.0)
        return; // starved by containment: no wake for you
    expedite(h.core, true);
}

void
PollScheduler::expedite(unsigned ci, bool count_wake)
{
    Core &c = cores_[ci];
    Tick at = curTick() + params_.wakeLatency;
    bool resting = c.state != CoreState::Busy ||
                   !c.roundEvent->scheduled() ||
                   c.roundEvent->when() > at;
    if (!resting)
        return; // already polling at least as fast as the bound
    if (count_wake &&
        (c.state == CoreState::Sleep ||
         !c.roundEvent->scheduled() ||
         c.roundEvent->when() > at))
        c.wakes->inc();
    c.state = CoreState::Busy;
    c.period = params_.pollPeriod;
    c.idleRounds = 0;
    kick(ci, at);
}

void
PollScheduler::kick(unsigned ci, Tick at)
{
    Core &c = cores_[ci];
    if (c.roundEvent->scheduled()) {
        if (c.roundEvent->when() <= at)
            return;
        eventq().reschedule(c.roundEvent.get(), at);
    } else {
        eventq().schedule(c.roundEvent.get(), at);
    }
}

void
PollScheduler::runRound(unsigned ci)
{
    Core &c = cores_[ci];
    const Tick now = curTick();
    c.rounds->inc();
    unsigned total = 0;
    Tick next_blocked = maxTick;
    for (std::size_t i = 0; i < c.members.size(); ++i) {
        Member &m = c.members[i];
        if (!m.pollable->pollAlive())
            continue;
        if (m.weight <= 0.0)
            continue; // quarantined: starved at the scheduler
        Tick blocked = m.pollable->pollBlockedUntil();
        if (blocked > now) {
            next_blocked = std::min(next_blocked, blocked);
            continue;
        }
        // DWRR: earn quantum*weight credit, service up to the
        // accumulated deficit, forfeit the remainder on running
        // dry so idle rounds never bank future bursts.
        m.deficit += double(params_.quantum) * m.weight;
        auto budget = unsigned(m.deficit);
        if (budget == 0)
            continue; // fractional weight, still accruing credit
        if (m.wakePending) {
            c.wakeToPoll->record(now - m.postedAt);
            m.wakePending = false;
        }
        unsigned served = m.pollable->servicePoll(budget);
        ++m.visits;
        m.lastServiced = now;
        if (served < budget)
            m.deficit = 0.0;
        else
            m.deficit -= double(served);
        if (served > 0) {
            m.served->inc(served);
            if (m.flight)
                m.flight->record(now, obs::FlightEvent::SchedVisit,
                                 0, 0, served);
        }
        total += served;
    }
    c.items->inc(total);
    c.roundItems->record(double(total));
    if (total > 0)
        c.busy->inc();

    // Adaptive-poll governor: busy-poll -> backoff -> sleep.
    if (total > 0) {
        c.state = CoreState::Busy;
        c.period = params_.pollPeriod;
        c.idleRounds = 0;
    } else {
        ++c.idleRounds;
        if (c.state == CoreState::Busy) {
            if (c.idleRounds >= params_.idleRoundsBeforeBackoff) {
                c.state = CoreState::Backoff;
                c.period =
                    std::min(c.period * 2, params_.maxBackoff);
            }
        } else if (c.state == CoreState::Backoff) {
            if (c.period >= params_.maxBackoff)
                c.state = CoreState::Sleep; // ceiling and still dry
            else
                c.period =
                    std::min(c.period * 2, params_.maxBackoff);
        }
    }

    if (c.state == CoreState::Sleep) {
        if (next_blocked != maxTick) {
            // A stalled pollable exists; resume when it unblocks
            // instead of waiting for a doorbell it already rang.
            c.state = CoreState::Backoff;
            c.period = params_.maxBackoff;
            kick(ci, std::max(next_blocked,
                              now + params_.pollPeriod));
        } else {
            c.sleeps->inc(); // no events until a wake
        }
        return;
    }
    Tick at = now + c.period;
    if (c.exec->busyUntil() > at)
        at = c.exec->busyUntil();
    kick(ci, at);
}

PollScheduler::Member *
PollScheduler::find(Handle h)
{
    if (!h.valid() || h.core >= cores_.size())
        return nullptr;
    for (Member &m : cores_[h.core].members) {
        if (m.id == h.id)
            return &m;
    }
    return nullptr;
}

const PollScheduler::Member *
PollScheduler::find(Handle h) const
{
    return const_cast<PollScheduler *>(this)->find(h);
}

std::uint64_t
PollScheduler::serviceVisits(Handle h) const
{
    const Member *m = find(h);
    return m ? m->visits : 0;
}

bool
PollScheduler::wedged(Handle h, Tick window) const
{
    const Member *m = find(h);
    if (!m || m->weight <= 0.0 || !m->pollable->pollAlive())
        return false;
    return m->wakePending && curTick() - m->postedAt > window;
}

std::uint64_t
PollScheduler::rounds(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return cores_[core].rounds->value();
}

std::uint64_t
PollScheduler::busyRounds(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return cores_[core].busy->value();
}

std::uint64_t
PollScheduler::wakes(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return cores_[core].wakes->value();
}

std::uint64_t
PollScheduler::sleeps(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return cores_[core].sleeps->value();
}

unsigned
PollScheduler::pollablesOn(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return unsigned(cores_[core].members.size());
}

double
PollScheduler::busyRatio(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    std::uint64_t r = cores_[core].rounds->value();
    return r ? double(cores_[core].busy->value()) / double(r) : 0.0;
}

std::uint64_t
PollScheduler::totalRounds() const
{
    std::uint64_t sum = 0;
    for (const Core &c : cores_)
        sum += c.rounds->value();
    return sum;
}

const LatencyRecorder &
PollScheduler::wakeToPoll(unsigned core) const
{
    panic_if(core >= cores_.size(), name(), ": bad core ", core);
    return *cores_[core].wakeToPoll;
}

} // namespace sched
} // namespace bmhive

/**
 * @file
 * PollScheduler: multiplex N poll-mode backends over M base-board
 * cores. The seed design pins one always-busy-polling bm-hypervisor
 * per core, capping density at one guest per core; this subsystem
 * is the shared alternative (cf. the paper's section 3.5 density
 * economics).
 *
 * Each core runs a scheduler round that services its registered
 * pollables with deficit-weighted round-robin: every round a ready
 * pollable earns quantum*weight items of deficit, is serviced up to
 * its accumulated deficit, and loses the unused remainder when it
 * runs dry (classic DWRR, so a backlogged guest cannot hoard credit
 * and an active one gets cross-guest batching within the round).
 *
 * An adaptive-poll governor walks each core busy-poll -> backoff ->
 * sleep as its pollables run dry: rounds with work keep the
 * busy-poll period, an idle streak doubles the period up to a
 * ceiling, and one more idle round at the ceiling stops scheduling
 * rounds entirely. IO-Bond doorbell writes (and backend rx/console
 * input) post a wake; a sleeping core resumes within a bounded
 * wake latency, modeled in ticks.
 *
 * Containment hooks: per-pollable weights. Suspect guests get a
 * fractional weight (deprioritized but serviced), quarantined
 * guests weight 0 (starved at the scheduler, not just at the
 * doorbell). The watchdog asks wedged(): work posted a full window
 * ago with no service visit since — per-pollable progress, not
 * per-process liveness.
 */

#ifndef BMHIVE_SCHED_POLL_SCHEDULER_HH
#define BMHIVE_SCHED_POLL_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/paper_constants.hh"
#include "base/stats.hh"
#include "hw/cpu_executor.hh"
#include "obs/flight_recorder.hh"
#include "sched/pollable.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace sched {

struct PollSchedulerParams
{
    /** Round period while busy (the PMD spin granularity). */
    Tick pollPeriod = paper::bmPollPeriod;
    /** Work items one unit of weight earns per round. */
    unsigned quantum = paper::schedQuantum;
    /** Idle rounds before the governor starts backing off. */
    unsigned idleRoundsBeforeBackoff =
        paper::schedIdleRoundsBeforeBackoff;
    /** Backoff ceiling; idle there sends the core to sleep. */
    Tick maxBackoff = paper::schedMaxBackoff;
    /** Doorbell-to-first-poll latency of a sleeping core. */
    Tick wakeLatency = paper::schedWakeLatency;
};

class PollScheduler : public SimObject
{
  public:
    /** Opaque registration handle; id 0 is "never registered". */
    struct Handle
    {
        unsigned core = 0;
        std::uint64_t id = 0;

        bool valid() const { return id != 0; }
    };

    PollScheduler(Simulation &sim, std::string name,
                  std::vector<hw::CpuExecutor *> cores,
                  PollSchedulerParams params = {});
    ~PollScheduler() override;

    unsigned coreCount() const { return unsigned(cores_.size()); }
    hw::CpuExecutor &coreExecutor(unsigned i);

    /** Core with the fewest registered pollables (placement). */
    unsigned leastLoadedCore() const;

    /**
     * Register @p p on @p core with @p weight. The core is kicked
     * so queued bring-up work is discovered without a doorbell.
     */
    Handle add(unsigned core, Pollable &p, double weight = 1.0);
    void remove(Handle h);

    /**
     * Containment lever: 1.0 = normal share, fractions
     * deprioritize, 0 starves (the pollable keeps its slot but is
     * never serviced until the weight comes back).
     */
    void setWeight(Handle h, double w);

    /** Attach @p h's guest flight recorder: each serviced round
     *  records SchedVisit (a = items served). */
    void setFlightRecorder(Handle h, obs::FlightRecorder *fr);

    /**
     * Work was posted for @p h (doorbell, backend rx, console
     * input): wake a sleeping/backed-off core so it polls within
     * wakeLatency.
     */
    void wake(Handle h);

    // --- Watchdog interface (per-pollable progress) ---

    /** Scheduler visits (serviced rounds) of @p h. */
    std::uint64_t serviceVisits(Handle h) const;
    /**
     * True when @p h had work posted more than @p window ago and
     * has not been visited since: the pollable is wedged, not
     * merely idle (an idle guest posts nothing, a starved weight-0
     * guest is deliberate and reported as not wedged).
     */
    bool wedged(Handle h, Tick window) const;

    // --- Observability ---

    std::uint64_t rounds(unsigned core) const;
    std::uint64_t busyRounds(unsigned core) const;
    std::uint64_t wakes(unsigned core) const;
    std::uint64_t sleeps(unsigned core) const;
    unsigned pollablesOn(unsigned core) const;
    double busyRatio(unsigned core) const;
    /** Scheduler rounds across every core (idle-poll accounting). */
    std::uint64_t totalRounds() const;
    const LatencyRecorder &wakeToPoll(unsigned core) const;

    const PollSchedulerParams &params() const { return params_; }

  private:
    enum class CoreState { Busy, Backoff, Sleep };

    struct Member
    {
        std::uint64_t id = 0;
        Pollable *pollable = nullptr;
        double weight = 1.0;
        double deficit = 0.0;
        std::uint64_t visits = 0;
        Tick lastServiced = 0;
        /** Posted work not yet followed by a service visit. */
        bool wakePending = false;
        Tick postedAt = 0;
        /** Items serviced, attributed per guest backend. */
        Counter *served = nullptr;
        /** Owning guest's flight recorder, when attached. */
        obs::FlightRecorder *flight = nullptr;
    };

    struct Core
    {
        hw::CpuExecutor *exec = nullptr;
        std::vector<Member> members;
        CoreState state = CoreState::Sleep;
        Tick period = 0;
        unsigned idleRounds = 0;
        std::unique_ptr<EventFunctionWrapper> roundEvent;
        Counter *rounds = nullptr;
        Counter *busy = nullptr;
        Counter *items = nullptr;
        Counter *wakes = nullptr;
        Counter *sleeps = nullptr;
        Gauge *pollables = nullptr;
        Histogram *roundItems = nullptr;
        LatencyRecorder *wakeToPoll = nullptr;
    };

    void runRound(unsigned ci);
    /** Resume busy polling on @p ci within wakeLatency. */
    void expedite(unsigned ci, bool count_wake);
    /** Schedule (or expedite) core @p ci's next round at @p at. */
    void kick(unsigned ci, Tick at);
    Member *find(Handle h);
    const Member *find(Handle h) const;

    PollSchedulerParams params_;
    std::vector<Core> cores_;
    std::uint64_t nextId_ = 1;
};

} // namespace sched
} // namespace bmhive

#endif // BMHIVE_SCHED_POLL_SCHEDULER_HH

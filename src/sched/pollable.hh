/**
 * @file
 * Pollable: the contract between a poll-mode backend and the
 * shared PollScheduler. One pollable per bm-hypervisor IoService;
 * the scheduler round-robins servicePoll() over every pollable
 * bound to a poll core, so the interface deliberately carries no
 * timing or platform state of its own.
 */

#ifndef BMHIVE_SCHED_POLLABLE_HH
#define BMHIVE_SCHED_POLLABLE_HH

#include <string>

#include "base/units.hh"

namespace bmhive {
namespace sched {

class Pollable
{
  public:
    virtual ~Pollable() = default;

    /**
     * Service up to @p budget work items (packets, block requests,
     * console lines) and return how many were actually serviced.
     * Called only while pollAlive() and not blocked; CPU costs are
     * the pollable's own to charge against its executor.
     */
    virtual unsigned servicePoll(unsigned budget) = 0;

    /** False once the backing process stopped or died; the
     *  scheduler skips dead pollables entirely. */
    virtual bool pollAlive() const = 0;

    /**
     * Tick before which this pollable must not be serviced (an
     * injected stall, a preempted process). 0 / past ticks mean
     * ready now. The scheduler resumes it when the time passes.
     */
    virtual Tick pollBlockedUntil() const = 0;

    /** Stable name for per-pollable metrics. */
    virtual const std::string &pollableName() const = 0;
};

} // namespace sched
} // namespace bmhive

#endif // BMHIVE_SCHED_POLLABLE_HH

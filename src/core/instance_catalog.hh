/**
 * @file
 * The bare-metal instance catalog (paper Table 3). The paper's
 * table lists the instances publicly available in the cloud with
 * their CPU, size, and the maximum number of compute boards a
 * single BM-Hive server carries (bounded by power supply, internal
 * space, and I/O capacity). The exact cell values are
 * reconstructed from the prose (sections 3.3, 3.5, 4.1/4.2):
 * E5-2682 v4 and E3-1240 v6 instances are evaluated, i7 boards
 * exist, one large dual-socket board sells 96HT, and a server
 * hosts at most 16 boards.
 */

#ifndef BMHIVE_CORE_INSTANCE_CATALOG_HH
#define BMHIVE_CORE_INSTANCE_CATALOG_HH

#include <string>
#include <vector>

#include "base/units.hh"
#include "hw/cpu_model.hh"

namespace bmhive {
namespace core {

struct InstanceType
{
    std::string name;
    hw::CpuModel cpu;
    unsigned vcpus = 0;        ///< HT threads sold
    unsigned nominalRamGiB = 0;
    unsigned maxBoardsPerServer = 0;
    /** Simulation backing store for the guest's memory (the
     *  nominal size is for display; rings and buffers fit here). */
    Bytes simMemBytes = 32 * MiB;
};

class InstanceCatalog
{
  public:
    /** All rows of Table 3. */
    static const std::vector<InstanceType> &table3();

    /** Lookup by name; fatal if absent. */
    static const InstanceType &byName(const std::string &name);

    /** The instance evaluated throughout section 4. */
    static const InstanceType &evaluated();
};

} // namespace core
} // namespace bmhive

#endif // BMHIVE_CORE_INSTANCE_CATALOG_HH

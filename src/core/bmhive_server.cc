#include "core/bmhive_server.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "base/paper_constants.hh"

namespace bmhive {
namespace core {

std::string
BmGuest::statsReport() const
{
    std::ostringstream os;
    os << instance_.name << " mac=0x" << std::hex << mac_
       << std::dec << "\n";
    os << "  net: tx=" << net_->txCompleted()
       << " rx=" << net_->rxDelivered()
       << " backend_tx=" << hv_->service().txPackets()
       << " backend_rx=" << hv_->service().rxPackets()
       << " rx_dropped=" << hv_->service().rxDropped() << "\n";
    if (blk_) {
        os << "  blk: completed=" << blk_->completed()
           << " errors=" << blk_->errors()
           << " backend_ios=" << hv_->service().blkIos() << "\n";
    }
    os << "  iobond: doorbells=" << bond_->notifications()
       << " chains=" << bond_->chainsForwarded()
       << " completions=" << bond_->completionsReturned()
       << " malformed=" << bond_->malformedChains()
       << " dma_bytes=" << bond_->dma().bytesMoved() << "\n";
    if (bond_->guestFaultsTotal() > 0 ||
        bond_->quarantineDrops() > 0) {
        os << "  containment: guest_faults="
           << bond_->guestFaultsTotal()
           << " quarantine_drops=" << bond_->quarantineDrops()
           << (bond_->quarantined() ? " [QUARANTINED]" : "")
           << "\n";
    }
    std::uint64_t polls = hv_->service().pollsTotal();
    os << "  backend: polls=" << polls
       << " busy=" << hv_->service().pollsBusy();
    if (polls > 0) {
        os << " (" << std::fixed << std::setprecision(1)
           << 100.0 * hv_->service().pollBusyRatio() << "% busy)";
        os.unsetf(std::ios::fixed);
    }
    os << "\n";
    os << "  irqs=" << os_->irqsTaken()
       << " hv_upgrades=" << hv_->upgrades();
    // Per-stage latency rollup, present once tracing is enabled.
    auto *net = hv_->netTracer();
    auto *blk = hv_->blkTracer();
    if (net && net->completed() > 0)
        os << "\n  net stages:\n" << net->breakdown();
    if (blk && blk->completed() > 0)
        os << "\n  blk stages:\n" << blk->breakdown();
    return os.str();
}

BmHiveServer::BmHiveServer(Simulation &sim, std::string name,
                           cloud::VSwitch &vswitch,
                           cloud::BlockService *storage,
                           BmServerParams params)
    : SimObject(sim, std::move(name)), params_(params),
      vswitch_(vswitch), storage_(storage),
      statsDumps_(metrics().counter(this->name() + ".stats_dumps")),
      watchdogChecks_(
          metrics().counter(this->name() + ".watchdog.checks")),
      watchdogRespawns_(
          metrics().counter(this->name() + ".watchdog.respawns")),
      provisionFailures_(
          metrics().counter(this->name() + ".provision_failures")),
      guestFaultEvents_(
          metrics().counter(this->name() + ".guest.fault_events")),
      suspects_(metrics().counter(this->name() + ".guest.suspects")),
      quarantines_(
          metrics().counter(this->name() + ".guest.quarantines")),
      obsDumpTriggers_(
          metrics().counter(this->name() + ".obs.dump_triggers")),
      obsDumps_(metrics().counter(this->name() + ".obs.dumps")),
      obsDumpSuppressed_(
          metrics().counter(this->name() + ".obs.dumps_suppressed")),
      sloBreaches_(
          metrics().counter(this->name() + ".obs.slo_breaches")),
      integrityEscalations_(metrics().counter(
          this->name() + ".integrity.escalations")),
      serverUnhealthy_(metrics().counter(
          this->name() + ".integrity.server_unhealthy")),
      recoveryTicks_(metrics().latency(
          this->name() + ".watchdog.recovery_ticks")),
      quarantineDwell_(metrics().latency(
          this->name() + ".guest.quarantine_dwell")),
      statsEvent_([this] { dumpStats(); },
                  this->name() + ".stats_dump"),
      watchdogEvent_([this] { watchdogCheck(); },
                     this->name() + ".watchdog")
{
    fatal_if(params_.maxBoards == 0 ||
                 params_.maxBoards > paper::maxComputeBoards,
             "a BM-Hive server carries 1..",
             paper::maxComputeBoards, " boards, got ",
             params_.maxBoards);
    // The server-level integrity switch governs every layer a
    // guest provisions with: the bond's ECRC+scrubber, the DIF
    // block path, and the sealed net frames.
    params_.bondParams.integrity = params_.integrity.enabled;
    Bytes base_mem =
        Bytes(params_.maxBoards) * params_.shadowRegionPerGuest +
        16 * MiB;
    base_ = std::make_unique<hw::BaseBoard>(
        sim, this->name() + ".base", hw::CpuCatalog::baseBoardE5(),
        base_mem, paper::ioBondMailboxAccess);
    if (params_.schedMode == SchedMode::Shared) {
        fatal_if(params_.pollCores == 0 ||
                     params_.pollCores > base_->coreCount(),
                 this->name(), ": shared mode needs 1..",
                 base_->coreCount(), " poll cores, got ",
                 params_.pollCores);
        std::vector<hw::CpuExecutor *> pool;
        for (unsigned i = 0; i < params_.pollCores; ++i)
            pool.push_back(&base_->core(i));
        sched_ = std::make_unique<sched::PollScheduler>(
            sim, this->name() + ".sched", std::move(pool),
            params_.schedParams);
    }
}

BmHiveServer::~BmHiveServer()
{
    if (statsEvent_.scheduled())
        eventq().deschedule(&statsEvent_);
    if (watchdogEvent_.scheduled())
        eventq().deschedule(&watchdogEvent_);
}

void
BmHiveServer::startWatchdog(Tick period)
{
    panic_if(period == 0, name(), ": watchdog needs a period");
    watchdogPeriod_ = period;
    eventq().reschedule(&watchdogEvent_, curTick() + period);
}

void
BmHiveServer::stopWatchdog()
{
    watchdogPeriod_ = 0;
    if (watchdogEvent_.scheduled())
        eventq().deschedule(&watchdogEvent_);
}

void
BmHiveServer::watchdogCheck()
{
    watchdogChecks_.inc();
    heartbeat_.resize(guests_.size(), 0);
    migrating_.resize(guests_.size(), false);
    for (unsigned i = 0; i < guests_.size(); ++i) {
        if (!guests_[i]) {
            heartbeat_[i] = 0; // tombstone: exported or released
            continue;
        }
        hv::BmHypervisor &hv = guests_[i]->hypervisor();
        if (!hv.connected()) {
            heartbeat_[i] = 0;
            continue;
        }
        if (migrating_[i] && migrationWatchdogGuard_) {
            // Mid-migration the backend is *deliberately* quiet (the
            // drain stopped its service), so "no poll progress" is
            // not a failure. Worse, a respawn here would republish
            // the in-flight window on the source while the target's
            // rebase replays the same window — every chain would
            // complete twice. A real crash during the drain is the
            // fleet controller's cue to abort and roll back instead.
            if (hv.crashed() && migrationAbortCb_)
                migrationAbortCb_(i);
            continue;
        }
        if (sched_) {
            // Shared mode: an idle backend legitimately stops
            // being visited once its core sleeps, so the signal is
            // per-pollable progress — work posted a whole period
            // ago with no scheduler visit since — not a raw poll
            // count.
            if (hv.crashed() || hv.pollWedged(watchdogPeriod_)) {
                Tick down_since = hv.crashed()
                                      ? hv.crashedAt()
                                      : curTick() - watchdogPeriod_;
                warn(name(), ": guest", i,
                     " backend made no poll progress; respawning");
                hv.respawn();
                watchdogRespawns_.inc();
                recoveryTicks_.record(curTick() - down_since);
                flightDump(i, "watchdog");
            }
            continue;
        }
        std::uint64_t beat = hv.service().pollsTotal();
        // The poll loop runs every few microseconds when healthy,
        // so an unchanged counter over a whole watchdog period
        // means the process is dead or wedged.
        if (hv.crashed() || beat == heartbeat_[i]) {
            Tick down_since = hv.crashed()
                                  ? hv.crashedAt()
                                  : curTick() - watchdogPeriod_;
            warn(name(), ": guest", i,
                 " backend heartbeat lost; respawning");
            hv.respawn();
            watchdogRespawns_.inc();
            recoveryTicks_.record(curTick() - down_since);
            flightDump(i, "watchdog");
        }
        // Snapshot the (possibly fresh) service's counter.
        heartbeat_[i] = hv.service().pollsTotal();
    }
    if (watchdogPeriod_ > 0)
        scheduleIn(&watchdogEvent_, watchdogPeriod_);
}

void
BmHiveServer::startStatsDump(Tick period)
{
    panic_if(period == 0, name(), ": stats dump needs a period");
    statsPeriod_ = period;
    eventq().reschedule(&statsEvent_, curTick() + period);
}

void
BmHiveServer::stopStatsDump()
{
    statsPeriod_ = 0;
    if (statsEvent_.scheduled())
        eventq().deschedule(&statsEvent_);
}

void
BmHiveServer::dumpStats()
{
    statsDumps_.inc();
    for (unsigned i = 0; i < guests_.size(); ++i) {
        if (!guests_[i])
            continue;
        inform(name(), ": guest", i, " ",
               guests_[i]->statsReport());
    }
    if (statsPeriod_ > 0)
        scheduleIn(&statsEvent_, statsPeriod_);
}

unsigned
BmHiveServer::freeSlots() const
{
    return params_.maxBoards - usedSlots_;
}

BmGuest &
BmHiveServer::provision(const InstanceType &type, cloud::MacAddr mac,
                        cloud::Volume *vol, bool rate_limited)
{
    BmGuest *g = tryProvision(type, mac, vol, rate_limited);
    fatal_if(g == nullptr, name(), ": backend connection failed");
    return *g;
}

BmGuest *
BmHiveServer::tryProvision(const InstanceType &type,
                           cloud::MacAddr mac, cloud::Volume *vol,
                           bool rate_limited)
{
    fatal_if(usedSlots_ >= params_.maxBoards,
             name(), ": no free board slots");
    fatal_if(usedSlots_ >= type.maxBoardsPerServer,
             name(), ": instance type '", type.name,
             "' allows at most ", type.maxBoardsPerServer,
             " boards per server");

    auto g = std::make_unique<BmGuest>();
    g->instance_ = type;
    g->mac_ = mac;
    // Slot: reuse the first tombstone, else append. Object names
    // never reuse an index — a migrated-away guest keeps its
    // original names (SimObject, metrics, fault-hook paths) and a
    // later tenant of its old slot must not collide with them.
    unsigned idx = unsigned(guests_.size());
    for (unsigned i = 0; i < guests_.size(); ++i) {
        if (!guests_[i]) {
            idx = i;
            break;
        }
    }
    std::string base_name =
        name() + ".guest" + std::to_string(nextGuestName_++);

    // The whole guest assembly homes in this server's partition
    // through a shared affinity cell: every SimObject built below
    // captures the cell, so a later adoption re-homes them all
    // with one write (adoptGuest).
    g->partitionCell_ = std::make_unique<unsigned>(partition());
    psim::PartitionScope pscope(sim_, g->partitionCell_.get(),
                                partition());

    // The compute board: dedicated CPU and memory, own PCIe bus.
    g->board_ = std::make_unique<hw::ComputeBoard>(
        sim_, base_name + ".board", type.cpu, type.simMemBytes,
        params_.bondParams.pciAccess);

    // IO-Bond bridges the board to a region of base memory.
    fatal_if(params_.shadowRegionPerGuest <
                 4 * MiB + params_.bondParams.shadowArenaBytes,
             name(), ": shadow region smaller than ring+arena");
    g->regionBase_ = allocRegion();
    g->bond_ = std::make_unique<iobond::IoBond>(
        sim_, base_name + ".iobond", *g->board_, base_->memory(),
        g->regionBase_, params_.bondParams);
    // Containment scoring: every fault the bridge classifies feeds
    // this guest's leaky bucket. Faults fired before the guest is
    // committed (rollback path) are ignored by the idx guard in
    // onGuestFault.
    g->bond_->setGuestFaultCallback(
        [this, idx](fault::GuestFaultKind k) {
            onGuestFault(idx, k);
        });
    // Escalation-ladder top: a bond that resets a queue over
    // persistent corruption reports here, and enough of those
    // marks the whole server unhealthy.
    g->bond_->setIntegrityEscalationCallback(
        [this, idx](unsigned fn) {
            onIntegrityEscalation(idx, fn);
        });

    // Emulated virtio functions on the board's bus. Every guest
    // gets a console (the paper's VGA-equivalent access path).
    g->bond_->addNetFunction(3, mac, params_.netQueuePairs);
    if (vol != nullptr)
        g->bond_->addBlkFunction(4, vol->capacity() / 512,
                                 params_.blkQueues);
    g->bond_->addConsoleFunction(5);

    // One bm-hypervisor process: a dedicated base core, or a slot
    // on the shared poll-core pool (least-loaded placement).
    unsigned sched_core = 0;
    hw::CpuExecutor *core = nullptr;
    if (sched_) {
        sched_core = sched_->leastLoadedCore();
        core = &sched_->coreExecutor(sched_core);
    } else {
        core = &base_->core(nextCore_ % base_->coreCount());
        ++nextCore_;
    }
    g->hv_ = std::make_unique<hv::BmHypervisor>(
        sim_, base_name + ".hv", *g->board_, *g->bond_, *core,
        vswitch_, mac, vol != nullptr ? storage_ : nullptr, vol,
        rate_limited);
    if (sched_) {
        g->hv_->useScheduler(*sched_, sched_core);
        g->hv_->setMqPassthrough(params_.mqPassthrough);
    }

    // Power on; firmware enumerates PCI; drivers come up.
    g->hv_->powerOnGuest();
    std::vector<hw::CpuExecutor *> cpus;
    for (unsigned t = 0; t < g->board_->threadCount(); ++t)
        cpus.push_back(&g->board_->thread(t));
    g->os_ = std::make_unique<guest::GuestOs>(
        sim_, base_name + ".os", g->board_->memory(),
        g->board_->pciBus(), std::move(cpus));
    g->os_->enumeratePci();

    bool integrity = params_.integrity.enabled;
    g->hv_->setBlkIntegrity(integrity);
    g->net_ = std::make_unique<guest::NetDriver>(*g->os_, 3, mac);
    g->net_->setIntegrity(integrity);
    g->net_->start();
    if (vol != nullptr) {
        g->blk_ = std::make_unique<guest::BlkDriver>(*g->os_, 4);
        g->blk_->setIntegrity(integrity);
        g->blk_->start();
    }
    g->console_ = std::make_unique<guest::ConsoleDriver>(*g->os_, 5);
    g->console_->start();

    if (!g->hv_->connectBackends()) {
        // No shadow vring came up (driver never reached DRIVER_OK,
        // or the function list is empty): recoverable. Roll the
        // partial bring-up back so the slot can be reused.
        warn(name(), ": backend connection failed for mac 0x",
             std::hex, mac, std::dec, "; rolling back");
        vswitch_.removePort(g->hv_->port());
        g->hv_->powerOffGuest();
        freeRegions_.push_back(g->regionBase_);
        provisionFailures_.inc();
        return nullptr;
    }

    ++usedSlots_;
    // A full bucket is a clean guest; faults force-consume points
    // that refill at the leak rate.
    Containment c;
    c.bucket = TokenBucket(params_.containment.leakPerMs * 1e3,
                           params_.containment.quarantineScore);
    if (idx == guests_.size()) {
        guests_.push_back(std::move(g));
        containment_.push_back(c);
        lastDumpAt_.push_back(maxTick);
        dumpSeq_.push_back(0);
    } else {
        guests_[idx] = std::move(g);
        containment_[idx] = c;
        lastDumpAt_[idx] = maxTick;
        dumpSeq_[idx] = 0;
        if (idx < heartbeat_.size())
            heartbeat_[idx] = 0;
        if (idx < migrating_.size())
            migrating_[idx] = false;
    }

    BmGuest &gg = *guests_[idx];
    if (params_.obs.enabled) {
        // Always-on black box: every datapath touch of this guest
        // lands in its ring, dumped on anomaly by flightDump().
        gg.flight_ = std::make_unique<obs::FlightRecorder>(
            base_name + ".flight", metrics(),
            params_.obs.flightEvents);
        gg.bond_->setFlightRecorder(gg.flight_.get());
        gg.bond_->setResetCallback([this, idx](unsigned fn) {
            onDeviceReset(idx, fn);
        });
        gg.hv_->setFlightRecorder(gg.flight_.get());
        // The SLO monitor rides the request tracers' flow closes,
        // so per-tenant SLIs come up with the guest whether or not
        // a bench asked for stage breakdowns.
        gg.hv_->enableIoTracing();
        gg.slo_ = std::make_unique<obs::SloMonitor>(
            base_name + ".slo", metrics(), params_.obs.slo);
        gg.slo_->setBreachCallback(
            [this, idx](obs::SloRole role, double burn) {
                onSloBreach(idx, role, burn);
            });
        auto *slo = gg.slo_.get();
        gg.hv_->netTracer()->setCloseHook([slo](Tick e2e, Tick now) {
            slo->record(obs::SloRole::Net, e2e, now);
        });
        gg.hv_->blkTracer()->setCloseHook([slo](Tick e2e, Tick now) {
            slo->record(obs::SloRole::Blk, e2e, now);
        });
    }
    return guests_[idx].get();
}

Addr
BmHiveServer::allocRegion()
{
    if (!freeRegions_.empty()) {
        Addr r = freeRegions_.back();
        freeRegions_.pop_back();
        return r;
    }
    Addr r = nextShadowRegion_;
    nextShadowRegion_ += params_.shadowRegionPerGuest;
    return r;
}

void
BmHiveServer::setMigrating(unsigned i, bool on)
{
    panic_if(i >= guests_.size() || !guests_[i],
             name(), ": bad guest ", i);
    if (migrating_.size() < guests_.size())
        migrating_.resize(guests_.size(), false);
    migrating_[i] = on;
}

BmHiveServer::ExportedGuest
BmHiveServer::exportGuest(unsigned i)
{
    panic_if(i >= guests_.size() || !guests_[i],
             name(), ": bad guest ", i);
    ExportedGuest out;
    out.guest = std::move(guests_[i]); // the slot becomes a tombstone
    out.containment = containment_[i];
    out.lastDumpAt = lastDumpAt_[i];
    out.dumpSeq = dumpSeq_[i];
    // Orphaned per-slot state: a quarantine-release timer or fault
    // callback still holding this index must see a clean slot.
    containment_[i] = Containment{};
    if (i < migrating_.size())
        migrating_[i] = false;
    freeRegions_.push_back(out.guest->regionBase_);
    --usedSlots_;
    logDebug("guest", i, " exported (", out.guest->instance_.name,
             ")");
    return out;
}

unsigned
BmHiveServer::adoptGuest(ExportedGuest eg,
                         std::function<void(unsigned)> done)
{
    fatal_if(usedSlots_ >= params_.maxBoards,
             name(), ": no free board slots to adopt into");
    panic_if(!eg.guest, name(), ": adopting an empty export");
    unsigned idx = unsigned(guests_.size());
    for (unsigned i = 0; i < guests_.size(); ++i) {
        if (!guests_[i]) {
            idx = i;
            break;
        }
    }
    if (idx == guests_.size()) {
        guests_.emplace_back();
        containment_.emplace_back();
        lastDumpAt_.push_back(maxTick);
        dumpSeq_.push_back(0);
    }
    guests_[idx] = std::move(eg.guest);
    containment_[idx] = eg.containment;
    lastDumpAt_[idx] = eg.lastDumpAt;
    dumpSeq_[idx] = eg.dumpSeq;
    if (idx < heartbeat_.size())
        heartbeat_[idx] = 0;
    if (idx < migrating_.size())
        migrating_[idx] = false;
    ++usedSlots_;

    BmGuest &g = *guests_[idx];
    g.regionBase_ = allocRegion();

    // Re-home the guest's event partition: the whole assembly
    // shares one affinity cell, so this single write moves every
    // SimObject that travelled with the export. The NIC port moves
    // onto this server's switch with it; RSS is re-established by
    // the migrateTo below once the rebase replay lands.
    if (g.partitionCell_)
        *g.partitionCell_ = partition();
    // A scrub pass armed on the source is still scheduled in the
    // old partition's queue; it must die there rather than touch
    // bond state that now runs here.
    g.bond_->retireScrub();
    g.hv_->rebindVSwitch(vswitch_);

    // The guest's containment and obs signals now belong to this
    // server: re-wire every [server, index] capture.
    g.bond_->setGuestFaultCallback(
        [this, idx](fault::GuestFaultKind k) {
            onGuestFault(idx, k);
        });
    g.bond_->setIntegrityEscalationCallback(
        [this, idx](unsigned fn) {
            onIntegrityEscalation(idx, fn);
        });
    if (g.flight_) {
        g.bond_->setResetCallback([this, idx](unsigned fn) {
            onDeviceReset(idx, fn);
        });
    }
    if (g.slo_) {
        g.slo_->setBreachCallback(
            [this, idx](obs::SloRole role, double burn) {
                onSloBreach(idx, role, burn);
            });
    }
    // The source's quarantine-release timer died with the export;
    // restart the dwell here so a quarantined adoptee still gets
    // its release-and-reset.
    if (containment_[idx].state == GuestHealth::Quarantined) {
        containment_[idx].quarantinedAt = curTick();
        auto *ev = new OneShotEvent(
            [this, idx] { releaseQuarantine(idx); },
            name() + ".quarantine_release");
        scheduleIn(ev, params_.containment.quarantineDwell);
    }

    // Target core for the re-homed PMD: same placement policy as a
    // fresh provision.
    unsigned sched_core = 0;
    hw::CpuExecutor *core = nullptr;
    if (sched_) {
        sched_core = sched_->leastLoadedCore();
        core = &sched_->coreExecutor(sched_core);
    } else {
        core = &base_->core(nextCore_ % base_->coreCount());
        ++nextCore_;
    }

    // Re-home the bond's base-memory side (replaying the in-flight
    // window into this server's memory), then re-home the PMD and
    // re-apply the travelled containment state at the scheduler.
    g.bond_->rebase(
        base_->memory(), g.regionBase_,
        [this, idx, core, sched_core, done = std::move(done)] {
            if (idx >= guests_.size() || !guests_[idx]) {
                if (done)
                    done(idx);
                return;
            }
            BmGuest &gg = *guests_[idx];
            gg.hv_->migrateTo(*core, sched_.get(), sched_core);
            double w = 1.0;
            if (containment_[idx].state == GuestHealth::Suspect)
                w = params_.containment.suspectPollWeight;
            else if (containment_[idx].state ==
                     GuestHealth::Quarantined)
                w = 0.0;
            gg.hv_->setPollWeight(w);
            if (done)
                done(idx);
        });
    return idx;
}

void
BmHiveServer::flightDump(unsigned i, const char *trigger)
{
    obsDumpTriggers_.inc();
    if (i >= guests_.size() || !guests_[i] || !guests_[i]->flight_)
        return;
    Tick now = curTick();
    if (lastDumpAt_[i] != maxTick &&
        now - lastDumpAt_[i] < params_.obs.flightDumpCooldown) {
        obsDumpSuppressed_.inc();
        return;
    }
    lastDumpAt_[i] = now;
    unsigned seq = dumpSeq_[i]++;
    if (params_.obs.flightDumpDir.empty())
        return;
    // Prefix with this server's (sanitized) name: in a fleet, two
    // servers can host a guest with the same slot index, and their
    // dumps must not clobber each other in a shared dump dir.
    std::string who = name();
    std::replace(who.begin(), who.end(), '.', '_');
    std::string path = params_.obs.flightDumpDir + "/flight_" + who +
                       "_guest" + std::to_string(i) + "_" + trigger +
                       "_" + std::to_string(seq) + ".json";
    if (guests_[i]->flight_->writeChromeJson(
            path, params_.obs.flightDumpLast, trigger)) {
        obsDumps_.inc();
        lastFlightDumpPath_ = path;
        inform(name(), ": guest", i, " flight dump (", trigger,
               ") -> ", path);
    } else {
        warn(name(), ": guest", i, " flight dump failed: ", path);
    }
}

void
BmHiveServer::onDeviceReset(unsigned idx, unsigned fn)
{
    if (idx >= guests_.size() || !guests_[idx])
        return;
    // Quarantine release resets every function by design; those
    // resets belong to the quarantine story already dumped at
    // entry, not a fresh anomaly.
    if (idx < containment_.size() &&
        containment_[idx].state == GuestHealth::Quarantined)
        return;
    logDebug("guest", idx, " fn", fn, " DEVICE_NEEDS_RESET");
    flightDump(idx, "reset");
}

void
BmHiveServer::onIntegrityEscalation(unsigned idx, unsigned fn)
{
    if (idx >= guests_.size() || !guests_[idx])
        return;
    integrityEscalations_.inc();
    if (guests_[idx]->flight_)
        guests_[idx]->flight_->record(
            curTick(), obs::FlightEvent::IntegrityEscalate, int(fn),
            0, idx, 0);
    warn(name(), ": guest", idx, " fn", fn,
         " persistent corruption escalated past reset");
    flightDump(idx, "integrity_escalation");
    // Repeated escalations point at the board or its IO-Bond, not
    // one unlucky transfer: declare the server unhealthy once so
    // the fleet controller can proactively migrate guests away.
    if (!integrityUnhealthy_ &&
        integrityEscalations_.value() >=
            params_.integrity.serverUnhealthyThreshold) {
        integrityUnhealthy_ = true;
        serverUnhealthy_.inc();
        warn(name(), ": integrity escalations reached ",
             params_.integrity.serverUnhealthyThreshold,
             "; marking server unhealthy");
        if (serverUnhealthyCb_)
            serverUnhealthyCb_();
    }
}

void
BmHiveServer::onSloBreach(unsigned idx, obs::SloRole role,
                          double burn)
{
    sloBreaches_.inc();
    if (idx < guests_.size() && guests_[idx] &&
        guests_[idx]->flight_) {
        guests_[idx]->flight_->record(
            curTick(), obs::FlightEvent::SloBreach, 0, 0,
            std::uint64_t(role), std::uint64_t(burn * 100.0));
    }
    warn(name(), ": guest", idx, " ", obs::sloRoleName(role),
         " SLO breach (burn rate ", burn, ")");
    flightDump(idx, "slo_breach");
}

GuestHealth
BmHiveServer::guestHealth(unsigned i) const
{
    panic_if(i >= containment_.size(), name(), ": bad guest ", i);
    return containment_[i].state;
}

double
BmHiveServer::guestScore(unsigned i) const
{
    panic_if(i >= containment_.size(), name(), ": bad guest ", i);
    const Containment &c = containment_[i];
    return std::max(0.0, params_.containment.quarantineScore -
                             c.bucket.level(curTick()));
}

void
BmHiveServer::onGuestFault(unsigned idx, fault::GuestFaultKind k)
{
    guestFaultEvents_.inc();
    // Out-of-range or tombstone index: a fault fired during a
    // rolled-back provision, or from a bond whose guest has since
    // been exported to another server.
    if (!params_.containment.enabled || idx >= containment_.size() ||
        idx >= guests_.size() || !guests_[idx])
        return;
    Containment &c = containment_[idx];
    if (c.state == GuestHealth::Quarantined)
        return; // already parked; drops are counted at the bridge
    // Leaky bucket: clean time refills the bucket (draining the
    // score) before the new fault takes its point, so sporadic
    // faults never escalate.
    if (c.state == GuestHealth::Suspect &&
        guestScore(idx) <= params_.containment.suspectScore / 2) {
        c.state = GuestHealth::Healthy;
        guests_[idx]->hypervisor().setPollWeight(1.0);
        if (guests_[idx]->flight_)
            guests_[idx]->flight_->record(
                curTick(), obs::FlightEvent::Containment, 0, 0, 0);
    }
    c.bucket.forceConsume(curTick(), 1.0);
    double score = guestScore(idx);
    if (score >= params_.containment.quarantineScore) {
        warn(name(), ": guest", idx, " containment score ",
             score, " after ", fault::guestFaultName(k),
             "; quarantining");
        quarantineGuest(idx);
    } else if (score >= params_.containment.suspectScore &&
               c.state == GuestHealth::Healthy) {
        c.state = GuestHealth::Suspect;
        suspects_.inc();
        if (guests_[idx]->flight_)
            guests_[idx]->flight_->record(
                curTick(), obs::FlightEvent::Containment, 0, 0, 1);
        // Under shared polling a Suspect also loses scheduler
        // share; under dedicated polling this is a no-op.
        guests_[idx]->hypervisor().setPollWeight(
            params_.containment.suspectPollWeight);
        warn(name(), ": guest", idx, " suspect (score ", score,
             ", last fault ", fault::guestFaultName(k), ")");
    }
}

void
BmHiveServer::quarantineGuest(unsigned i)
{
    panic_if(i >= guests_.size(), name(), ": bad guest ", i);
    if (!guests_[i])
        return; // exported mid-escalation
    Containment &c = containment_[i];
    if (c.state == GuestHealth::Quarantined)
        return;
    c.state = GuestHealth::Quarantined;
    c.quarantinedAt = curTick();
    guests_[i]->bond().setQuarantined(true);
    // Starve the guest at the scheduler too: quarantine means no
    // poll service, not merely swallowed doorbells.
    guests_[i]->hypervisor().setPollWeight(0.0);
    quarantines_.inc();
    if (guests_[i]->flight_)
        guests_[i]->flight_->record(
            curTick(), obs::FlightEvent::Containment, 0, 0, 2);
    flightDump(i, "quarantine");
    auto *ev = new OneShotEvent(
        [this, i] { releaseQuarantine(i); },
        name() + ".quarantine_release");
    scheduleIn(ev, params_.containment.quarantineDwell);
}

void
BmHiveServer::releaseQuarantine(unsigned i)
{
    if (i >= guests_.size() || !guests_[i])
        return; // exported while parked; the target restarts dwell
    Containment &c = containment_[i];
    if (c.state != GuestHealth::Quarantined)
        return;
    quarantineDwell_.record(curTick() - c.quarantinedAt);
    iobond::IoBond &bond = guests_[i]->bond();
    // The guest re-enters service through a clean reinit: reset
    // every function while the doorbells are still swallowed, then
    // lift the quarantine — the driver's recovery (MSI-driven, so
    // strictly after this call) renegotiates onto fresh rings.
    for (unsigned fn = 0; fn < bond.numFunctions(); ++fn)
        bond.failFunction(fn);
    bond.setQuarantined(false);
    c.state = GuestHealth::Healthy;
    if (guests_[i]->flight_)
        guests_[i]->flight_->record(
            curTick(), obs::FlightEvent::Containment, 0, 0, 0);
    c.bucket = TokenBucket(params_.containment.leakPerMs * 1e3,
                           params_.containment.quarantineScore);
    guests_[i]->hypervisor().setPollWeight(1.0);
    inform(name(), ": guest", i, " quarantine released");
}

void
BmHiveServer::release(BmGuest &g)
{
    panic_if(usedSlots_ == 0, name(), ": release with no guests");
    g.hypervisor().powerOffGuest();
    freeRegions_.push_back(g.regionBase_);
    --usedSlots_;
}

BmGuest &
BmHiveServer::guest(unsigned i)
{
    panic_if(i >= guests_.size() || !guests_[i],
             name(), ": bad guest ", i,
             guests_.size() > i ? " (migrated away)" : "");
    return *guests_[i];
}

} // namespace core
} // namespace bmhive

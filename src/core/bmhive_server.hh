/**
 * @file
 * BmHiveServer: the top-level public API — one bare-metal server
 * assembling the base board, up to 16 compute boards with their
 * IO-Bond bridges, and one bm-hypervisor process per guest,
 * integrated with the cloud vSwitch and block storage (paper
 * Fig. 3).
 *
 * provision() performs the full "use scenario" of section 3.2:
 * pick an idle board, power it on via PCIe, let the (virtio-aware)
 * firmware find its devices, start the guest drivers, and connect
 * the backend — after which the guest does cloud network and
 * storage I/O exactly as a VM would.
 */

#ifndef BMHIVE_CORE_BMHIVE_SERVER_HH
#define BMHIVE_CORE_BMHIVE_SERVER_HH

#include <memory>
#include <string>
#include <vector>

#include "base/token_bucket.hh"
#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "core/instance_catalog.hh"
#include "guest/blk_driver.hh"
#include "guest/console_driver.hh"
#include "guest/firmware.hh"
#include "guest/guest_os.hh"
#include "guest/net_driver.hh"
#include "hv/bm_hypervisor.hh"
#include "hw/compute_board.hh"
#include "iobond/iobond.hh"
#include "obs/flight_recorder.hh"
#include "obs/slo_monitor.hh"
#include "sched/poll_scheduler.hh"

namespace bmhive {
namespace core {

/**
 * Adversarial-tenant containment policy (leaky-bucket scoring).
 * Every contained guest fault IO-Bond classifies adds one point; a
 * clean guest's score drains at @c leakPerMs. Crossing
 * @c suspectScore flags the guest; crossing @c quarantineScore
 * parks it off the bridge for @c quarantineDwell, after which it
 * re-enters service through a full function reset and reinit.
 */
struct ContainmentParams
{
    bool enabled = true;
    double suspectScore = 8.0;
    double quarantineScore = 32.0;
    double leakPerMs = 100.0;
    Tick quarantineDwell = msToTicks(2.0);
    /** Scheduler share of a Suspect guest under shared polling
     *  (1.0 = normal; Quarantined guests are starved outright). */
    double suspectPollWeight = 0.25;
};

/**
 * Per-tenant observability policy: the SLO monitor and flight
 * recorder every provisioned guest carries. Always on by default —
 * both are O(1) per event with zero steady-state allocation, so
 * there is nothing to gate. Anomaly triggers (quarantine entry,
 * watchdog respawn, DEVICE_NEEDS_RESET propagation, SLO breach)
 * dump the implicated guest's last flightDumpLast events as a
 * Chrome-trace JSON into flightDumpDir; an empty dir records the
 * trigger in the metric registry but writes no file.
 */
struct ObsParams
{
    bool enabled = true;
    /** Latency-SLO policy fed from RequestTracer flow closes. */
    obs::SloParams slo = {};
    /** Flight-recorder ring slots per guest. */
    std::size_t flightEvents = 1024;
    /** Events per anomaly dump (0 = everything live). */
    std::size_t flightDumpLast = 256;
    /** Where dumps land ("" = triggers counted, no files). */
    std::string flightDumpDir;
    /** Per-guest floor between dumps; a flapping guest produces
     *  one dump per cooldown, not one per anomaly. */
    Tick flightDumpCooldown = msToTicks(1.0);
};

/**
 * End-to-end data-integrity policy: DMA ECRC + shadow-ring
 * scrubbing in IO-Bond, DIF tags on the block path, and frame
 * checksums on the net path. Detection feeds a graduated ladder:
 * mismatch -> targeted retry; repeated mismatch on one queue ->
 * DEVICE_NEEDS_RESET for that function; @c serverUnhealthyThreshold
 * function-level escalations on one server -> the server is
 * declared unhealthy and the fleet controller drains it.
 */
struct IntegrityParams
{
    bool enabled = true;
    /** Bond-level integrity escalations (queue resets) before the
     *  whole server is reported unhealthy. */
    unsigned serverUnhealthyThreshold = 3;
};

/** How bm-hypervisor PMDs map onto base-board cores. */
enum class SchedMode {
    /** One always-busy-polling process per core (seed behavior). */
    Dedicated,
    /** N processes multiplexed over a PollScheduler core pool. */
    Shared,
};

/** Containment state of one provisioned guest. */
enum class GuestHealth { Healthy, Suspect, Quarantined };

struct BmServerParams
{
    /** Physical board slots (paper: at most 16). */
    unsigned maxBoards = 16;
    /** Base-memory region reserved per IO-Bond (rings + arena). */
    Bytes shadowRegionPerGuest = 24 * MiB;
    /** IO-Bond timing (FPGA by default; asic() for section 6). */
    iobond::IoBondParams bondParams = {};
    /** Hostile-tenant escalation policy. */
    ContainmentParams containment = {};
    /** Backend-to-core mapping (Dedicated is seed-equivalent). */
    SchedMode schedMode = SchedMode::Dedicated;
    /** Base cores in the shared poll pool (Shared mode only). */
    unsigned pollCores = 4;
    /** Rx/tx queue pairs offered per guest NIC (> 1 offers
     *  VIRTIO_NET_F_MQ; the guest driver commits to a count). */
    unsigned netQueuePairs = 1;
    /** Submission queues per guest disk (> 1 offers
     *  VIRTIO_BLK_F_MQ; one per vCPU is the classic shape). */
    unsigned blkQueues = 1;
    /** Bind MQ queue units 1:1 to dedicated passthrough pollers
     *  instead of the shared DWRR stage (Shared mode only;
     *  containment demotes a misbehaving guest back to shared). */
    bool mqPassthrough = false;
    /** DWRR / governor tuning of the shared pool. */
    sched::PollSchedulerParams schedParams = {};
    /** Per-tenant SLO + flight-recorder policy. */
    ObsParams obs = {};
    /** End-to-end data-integrity policy. */
    IntegrityParams integrity = {};
};

/** Everything belonging to one provisioned bm-guest. */
class BmGuest
{
  public:
    hw::ComputeBoard &board() { return *board_; }
    iobond::IoBond &bond() { return *bond_; }
    hv::BmHypervisor &hypervisor() { return *hv_; }
    guest::GuestOs &os() { return *os_; }
    guest::NetDriver &net() { return *net_; }
    guest::BlkDriver *blk() { return blk_.get(); }
    guest::ConsoleDriver &console() { return *console_; }
    const InstanceType &instance() const { return instance_; }
    cloud::MacAddr mac() const { return mac_; }

    /** Always-on black box / SLI view; null when obs disabled. */
    obs::FlightRecorder *flight() { return flight_.get(); }
    obs::SloMonitor *slo() { return slo_.get(); }

    /** Event partition this guest's assembly currently homes in
     *  (0 in a classic, unpartitioned simulation). */
    unsigned partition() const
    {
        return partitionCell_ ? *partitionCell_ : 0;
    }

    /** One-paragraph operational report (counters snapshot). */
    std::string statsReport() const;

  private:
    friend class BmHiveServer;

    InstanceType instance_;
    cloud::MacAddr mac_ = 0;
    /** Partition-affinity cell shared by every SimObject in this
     *  guest's assembly (board, bond, hypervisor, drivers, service
     *  generations): one write re-homes the whole guest, which is
     *  exactly what adoptGuest does on migration. */
    std::unique_ptr<unsigned> partitionCell_;
    /** Base-memory shadow region currently backing the bond; owned
     *  by whichever server hosts the guest (freed on release or
     *  export, allocated afresh on adoption). */
    Addr regionBase_ = 0;
    std::unique_ptr<hw::ComputeBoard> board_;
    std::unique_ptr<iobond::IoBond> bond_;
    std::unique_ptr<hv::BmHypervisor> hv_;
    std::unique_ptr<guest::GuestOs> os_;
    std::unique_ptr<guest::NetDriver> net_;
    std::unique_ptr<guest::BlkDriver> blk_;
    std::unique_ptr<guest::ConsoleDriver> console_;
    std::unique_ptr<obs::FlightRecorder> flight_;
    std::unique_ptr<obs::SloMonitor> slo_;
};

class BmHiveServer : public SimObject
{
  public:
    BmHiveServer(Simulation &sim, std::string name,
                 cloud::VSwitch &vswitch,
                 cloud::BlockService *storage = nullptr,
                 BmServerParams params = {});
    ~BmHiveServer() override;

    /**
     * Provision a bm-guest of @p type with NIC address @p mac and
     * (optionally) cloud volume @p vol. The guest comes back with
     * drivers initialized and the backend connected.
     * @param rate_limited  apply the section 4.1 instance limits
     */
    BmGuest &provision(const InstanceType &type, cloud::MacAddr mac,
                       cloud::Volume *vol = nullptr,
                       bool rate_limited = true);

    /**
     * Like provision(), but a backend-connection failure is
     * recoverable: the board is powered back off, the vSwitch port
     * released, and nullptr returned (counted under
     * "<name>.provision_failures") so a fleet controller can retry
     * or place the guest elsewhere.
     */
    BmGuest *tryProvision(const InstanceType &type,
                          cloud::MacAddr mac,
                          cloud::Volume *vol = nullptr,
                          bool rate_limited = true);

    /** Power a guest off and release its board slot (and the
     *  guest's shadow region back to the server's free list). */
    void release(BmGuest &g);

    /** Slot count including tombstones of exported/released
     *  guests; guest(i) panics on a tombstone — use hasGuest(). */
    unsigned guestCount() const { return unsigned(guests_.size()); }
    BmGuest &guest(unsigned i);
    bool hasGuest(unsigned i) const
    {
        return i < guests_.size() && guests_[i] != nullptr;
    }

    hw::BaseBoard &base() { return *base_; }
    cloud::VSwitch &vswitch() { return vswitch_; }
    unsigned freeSlots() const;

    /** The shared poll-core pool; null under Dedicated mode. */
    sched::PollScheduler *scheduler() { return sched_.get(); }
    SchedMode schedMode() const { return params_.schedMode; }

    /** Compute boards the PSU/space/I/O budget allows (Table 3). */
    unsigned maxBoards() const { return params_.maxBoards; }

    /**
     * Log every guest's statsReport() every @p period, like a
     * management daemon scraping the fleet. Counted under
     * "<name>.stats_dumps" in the metric registry.
     */
    void startStatsDump(Tick period);
    void stopStatsDump();
    std::uint64_t statsDumps() const { return statsDumps_.value(); }

    /**
     * Watch every guest's backend poll loop: the poll counter is
     * the process heartbeat. A guest whose hypervisor crashed, or
     * whose heartbeat did not advance over a whole period, is
     * respawned and its shadow-vring state re-adopted. The outage
     * duration (crash until the replacement is polling) lands in
     * "<name>.watchdog.recovery_ticks".
     */
    void startWatchdog(Tick period);
    void stopWatchdog();
    std::uint64_t
    watchdogRespawns() const
    {
        return watchdogRespawns_.value();
    }
    std::uint64_t
    provisionFailures() const
    {
        return provisionFailures_.value();
    }

    // --- Live migration (fleet controller interface) ---

    /**
     * Leaky-bucket containment score of one guest, backed by the
     * repo-wide TokenBucket: the bucket holds quarantineScore
     * tokens and refills at leakPerMs; each fault force-consumes
     * one, so score = quarantineScore - level (a full bucket is a
     * clean guest).
     */
    struct Containment
    {
        GuestHealth state = GuestHealth::Healthy;
        TokenBucket bucket = TokenBucket::unlimited();
        Tick quarantinedAt = 0;
    };

    /** A guest detached from its source server mid-migration: the
     *  full board+bond+hv assembly plus the per-guest server state
     *  (containment score, dump cooldown) that travels with it. */
    struct ExportedGuest
    {
        std::unique_ptr<BmGuest> guest;
        Containment containment;
        Tick lastDumpAt = maxTick;
        unsigned dumpSeq = 0;
    };

    /**
     * The migration commit point: detach guest @p i from this
     * server. Its slot becomes a tombstone (watchdog, stats, and
     * containment callbacks all skip it), its shadow region
     * returns to the free list, and the caller owns the guest.
     * The bond must already be drained and settled.
     */
    ExportedGuest exportGuest(unsigned i);

    /**
     * Adopt a previously exported guest: allocate a slot and a
     * shadow region, re-wire the containment/obs callbacks onto
     * this server, rebase the bond into this server's base memory
     * (replaying the in-flight window), and re-home the
     * bm-hypervisor onto a local core. @p done fires with the new
     * guest index once the replay DMA has landed and the backend
     * is polling again; the caller lifts the drain after that.
     */
    unsigned adoptGuest(ExportedGuest g,
                        std::function<void(unsigned)> done);

    /**
     * Mark guest @p i as mid-migration: the watchdog must not
     * respawn it (a respawn would republish the in-flight window
     * on the source while the rebase replays it on the target —
     * every chain would complete twice). A crash observed while
     * the flag is set is reported through the abort callback so
     * the fleet controller rolls the migration back instead.
     */
    void setMigrating(unsigned i, bool on);
    bool migrating(unsigned i) const
    {
        return i < migrating_.size() && migrating_[i];
    }
    /** Test hook: disable the guard to demonstrate the
     *  double-adoption race it prevents. */
    void setMigrationWatchdogGuard(bool on)
    {
        migrationWatchdogGuard_ = on;
    }
    void setMigrationAbortCallback(std::function<void(unsigned)> cb)
    {
        migrationAbortCb_ = std::move(cb);
    }

    /** External anomaly trigger (e.g. a fleet migration abort);
     *  honors the per-guest dump cooldown. */
    void triggerFlightDump(unsigned i, const char *trigger)
    {
        flightDump(i, trigger);
    }

    // --- Adversarial-tenant containment ---

    /** Containment state of guest @p i. */
    GuestHealth guestHealth(unsigned i) const;
    /** Current containment score of guest @p i (decayed lazily). */
    double guestScore(unsigned i) const;

    /**
     * Park guest @p i off the bridge: IO-Bond swallows its
     * doorbells until releaseQuarantine(). Scheduled automatically
     * when the score crosses the policy threshold; public so an
     * operator action can do the same.
     */
    void quarantineGuest(unsigned i);
    /**
     * Lift the quarantine of guest @p i: its functions are reset
     * (the driver renegotiates onto clean rings) and the dwell
     * time lands in "<name>.guest.quarantine_dwell".
     */
    void releaseQuarantine(unsigned i);

    std::uint64_t quarantines() const { return quarantines_.value(); }
    std::uint64_t suspects() const { return suspects_.value(); }
    std::uint64_t
    guestFaultEvents() const
    {
        return guestFaultEvents_.value();
    }

    // --- End-to-end integrity (escalation ladder top) ---

    /**
     * Fires when the bond-level escalation count crosses the
     * integrity threshold: persistent corruption localized to this
     * server's hardware. A fleet controller responds by draining
     * the server (proactive live migration of every guest).
     */
    void setServerUnhealthyCallback(std::function<void()> cb)
    {
        serverUnhealthyCb_ = std::move(cb);
    }

    /** Bond-level integrity escalations (queue resets) observed. */
    std::uint64_t
    integrityEscalations() const
    {
        return integrityEscalations_.value();
    }
    /** True once the threshold was crossed. */
    bool integrityUnhealthy() const { return integrityUnhealthy_; }

    // --- Per-tenant observability (flight recorder + SLO) ---

    /** Anomaly dumps actually written to disk. */
    std::uint64_t flightDumps() const { return obsDumps_.value(); }
    /** Dump triggers seen (includes cooldown-suppressed ones). */
    std::uint64_t
    flightDumpTriggers() const
    {
        return obsDumpTriggers_.value();
    }
    /** SLO breach signals across all guests and roles. */
    std::uint64_t sloBreaches() const { return sloBreaches_.value(); }
    /** Path of the most recent dump ("" before the first). */
    const std::string &
    lastFlightDumpPath() const
    {
        return lastFlightDumpPath_;
    }

  private:
    /** One periodic rollup over all provisioned guests. */
    void dumpStats();

    /** One watchdog sweep over all provisioned guests. */
    void watchdogCheck();

    /** Next shadow region: free-list first, then fresh. Bounded by
     *  the usedSlots_ < maxBoards admission checks. */
    Addr allocRegion();

    /** IO-Bond classified one contained fault of guest @p idx. */
    void onGuestFault(unsigned idx, fault::GuestFaultKind k);

    /** Guest @p idx's bond reset function @p fn over persistent
     *  corruption; counts toward server health. */
    void onIntegrityEscalation(unsigned idx, unsigned fn);

    /**
     * Dump guest @p i's flight-recorder tail as a Chrome trace,
     * labelled @p trigger. Honors the per-guest cooldown and does
     * nothing but count when no dump dir is configured.
     */
    void flightDump(unsigned i, const char *trigger);
    /** IO-Bond pushed DEVICE_NEEDS_RESET to guest @p idx fn @p fn. */
    void onDeviceReset(unsigned idx, unsigned fn);
    /** Guest @p idx's SLO monitor latched a breach. */
    void onSloBreach(unsigned idx, obs::SloRole role, double burn);

    BmServerParams params_;
    cloud::VSwitch &vswitch_;
    cloud::BlockService *storage_;
    std::unique_ptr<hw::BaseBoard> base_;
    /** Declared before guests_ so their hypervisors can
     *  deregister from it during destruction. */
    std::unique_ptr<sched::PollScheduler> sched_;
    /** Slots; a null entry is the tombstone of an exported or
     *  released guest (indices stay stable for callbacks). */
    std::vector<std::unique_ptr<BmGuest>> guests_;
    unsigned usedSlots_ = 0;
    Addr nextShadowRegion_ = 0;
    /** Shadow regions of released/exported guests, ready for
     *  reuse — without this, repeated adoptions would walk the
     *  bump cursor off the end of base memory. */
    std::vector<Addr> freeRegions_;
    /** Monotonic: guest object names never reuse an index, so a
     *  migrated-away guest's SimObject/metric/fault-hook names
     *  cannot collide with a later tenant of its old slot. */
    unsigned nextGuestName_ = 0;
    unsigned nextCore_ = 0;
    Tick statsPeriod_ = 0; ///< 0: periodic dump disabled
    Tick watchdogPeriod_ = 0; ///< 0: watchdog disabled
    std::vector<std::uint64_t> heartbeat_;
    std::vector<Containment> containment_;
    std::vector<bool> migrating_;
    bool migrationWatchdogGuard_ = true;
    bool integrityUnhealthy_ = false;
    std::function<void(unsigned)> migrationAbortCb_;
    std::function<void()> serverUnhealthyCb_;
    Counter &statsDumps_;
    Counter &watchdogChecks_;
    Counter &watchdogRespawns_;
    Counter &provisionFailures_;
    Counter &guestFaultEvents_;
    Counter &suspects_;
    Counter &quarantines_;
    Counter &obsDumpTriggers_;
    Counter &obsDumps_;
    Counter &obsDumpSuppressed_;
    Counter &sloBreaches_;
    Counter &integrityEscalations_;
    Counter &serverUnhealthy_;
    LatencyRecorder &recoveryTicks_;
    LatencyRecorder &quarantineDwell_;
    /** Per-guest tick of the last dump (maxTick = never). */
    std::vector<Tick> lastDumpAt_;
    std::vector<unsigned> dumpSeq_;
    std::string lastFlightDumpPath_;
    EventFunctionWrapper statsEvent_;
    EventFunctionWrapper watchdogEvent_;
};

} // namespace core
} // namespace bmhive

#endif // BMHIVE_CORE_BMHIVE_SERVER_HH

#include "core/cost_model.hh"

#include "base/paper_constants.hh"

namespace bmhive {
namespace core {

DensityComparison
CostModel::density(unsigned boards, unsigned ht_per_board)
{
    DensityComparison d;
    d.vmSellableHt = paper::vmServerSellableHt;
    d.bmSellableHt = boards * ht_per_board;
    d.densityRatio =
        double(d.bmSellableHt) / double(d.vmSellableHt);
    return d;
}

TdpComparison
CostModel::tdpPerVcpu()
{
    TdpComparison t;
    // BM-Hive: base CPU + one dual-socket 96HT compute board +
    // one IO-Bond FPGA.
    hw::CpuModel big_board = {"2x Xeon E5 (dual-socket board)", 2.5,
                              48, 96, 1.0, 240};
    t.bm = hw::bmHivePower(hw::CpuCatalog::baseBoardE5(),
                           {big_board});
    // Conventional: two 24-core sockets, 8 HT reserved.
    hw::CpuModel vm_cpu = {"Xeon E5 24c", 2.5, 24, 48, 1.0, 135};
    t.vm = hw::vmServerPower(vm_cpu, paper::vmServerReservedHt);
    return t;
}

} // namespace core
} // namespace bmhive

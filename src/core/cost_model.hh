/**
 * @file
 * Section 3.5 cost-efficiency model: sellable vCPU density per
 * rack slot, TDP watts per vCPU, and the sell-price relation
 * between bm-guests and vm-guests.
 */

#ifndef BMHIVE_CORE_COST_MODEL_HH
#define BMHIVE_CORE_COST_MODEL_HH

#include <vector>

#include "hw/cpu_model.hh"
#include "hw/power.hh"

namespace bmhive {
namespace core {

struct DensityComparison
{
    unsigned vmSellableHt = 0;
    unsigned bmSellableHt = 0;
    double densityRatio = 0.0; ///< bm / vm
};

struct TdpComparison
{
    hw::PowerBreakdown bm;
    hw::PowerBreakdown vm;
};

class CostModel
{
  public:
    /**
     * Density per rack slot: a conventional server sells 88 HT
     * (2x48 minus 8 reserved); the same space fits a BM-Hive
     * server with @p boards boards of @p ht_per_board threads.
     */
    static DensityComparison density(unsigned boards,
                                     unsigned ht_per_board);

    /**
     * TDP watts per sellable vCPU for the nearest-equivalent
     * configurations (the paper uses one 96HT compute board vs the
     * 88HT vm server).
     */
    static TdpComparison tdpPerVcpu();

    /**
     * Relative sell price of a bm-guest for a vm-guest priced at
     * 1.0 (paper: 10% lower).
     */
    static double bmRelativePrice() { return 0.90; }
};

} // namespace core
} // namespace bmhive

#endif // BMHIVE_CORE_COST_MODEL_HH

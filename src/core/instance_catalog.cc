#include "core/instance_catalog.hh"

#include "base/logging.hh"

namespace bmhive {
namespace core {

const std::vector<InstanceType> &
InstanceCatalog::table3()
{
    static const std::vector<InstanceType> rows = {
        {"ebm.xeon-e5.32", hw::CpuCatalog::xeonE5_2682v4(), 32, 64,
         8, 32 * MiB},
        {"ebm.xeon-e3.8", hw::CpuCatalog::xeonE3_1240v6(), 8, 32,
         16, 32 * MiB},
        {"ebm.i7.8", hw::CpuCatalog::corei7_7700k(), 8, 32, 16,
         32 * MiB},
        {"ebm.atom.12", hw::CpuCatalog::atomC3850(), 12, 32, 16,
         32 * MiB},
        {"ebm.xeon-e5x2.96",
         {"2x Xeon E5 (dual-socket board)", 2.5, 48, 96, 1.0, 240},
         96, 384, 1, 48 * MiB},
    };
    return rows;
}

const InstanceType &
InstanceCatalog::byName(const std::string &name)
{
    for (const auto &row : table3())
        if (row.name == name)
            return row;
    fatal("unknown instance type: ", name);
}

const InstanceType &
InstanceCatalog::evaluated()
{
    return byName("ebm.xeon-e5.32");
}

} // namespace core
} // namespace bmhive

#include "hw/compute_board.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace hw {

ComputeBoard::ComputeBoard(Simulation &sim, std::string name,
                           const CpuModel &cpu, Bytes mem_size,
                           Tick pci_access_latency)
    : SimObject(sim, std::move(name)), cpu_(cpu),
      mem_(this->name() + ".mem", mem_size),
      bus_(sim, this->name() + ".pci", pci_access_latency,
           Bandwidth::gbps(32) /* PCIe x4 per virtio device */),
      firmware_{"factory-1.0", 0x1000,
                FirmwareImage::sign(0x1000, 0xa11baba)}
{
    threads_.reserve(cpu.threads);
    for (unsigned i = 0; i < cpu.threads; ++i) {
        threads_.push_back(std::make_unique<CpuExecutor>(
            sim, this->name() + ".t" + std::to_string(i),
            cpu.singleThreadFactor));
    }
}

CpuExecutor &
ComputeBoard::thread(unsigned i)
{
    panic_if(i >= threads_.size(), name(), ": bad thread ", i);
    return *threads_[i];
}

void
ComputeBoard::setExecutionModel(ExecutionModel *exec)
{
    // Boards get their model before any work runs; recreate the
    // executors bound to it.
    for (auto &t : threads_) {
        panic_if(t->busyUntil() > curTick(),
                 name(), ": changing execution model while busy");
    }
    for (unsigned i = 0; i < threads_.size(); ++i) {
        threads_[i] = std::make_unique<CpuExecutor>(
            sim_, name() + ".t" + std::to_string(i),
            cpu_.singleThreadFactor, exec);
    }
}

void
ComputeBoard::powerOff()
{
    power_ = BoardPower::Off;
}

bool
ComputeBoard::updateFirmware(const FirmwareImage &fw,
                             std::uint64_t provider_key)
{
    if (!fw.verify(provider_key)) {
        warn(name(), ": rejected unsigned firmware '", fw.version,
             "'");
        return false;
    }
    firmware_ = fw;
    return true;
}

BaseBoard::BaseBoard(Simulation &sim, std::string name,
                     const CpuModel &cpu, Bytes mem_size,
                     Tick pci_access_latency)
    : SimObject(sim, std::move(name)), cpu_(cpu),
      mem_(this->name() + ".mem", mem_size),
      bus_(sim, this->name() + ".pci", pci_access_latency,
           Bandwidth::gbps(64) /* PCIe x8 toward IO-Bond */)
{
    cores_.reserve(cpu.threads);
    for (unsigned i = 0; i < cpu.threads; ++i) {
        cores_.push_back(std::make_unique<CpuExecutor>(
            sim, this->name() + ".c" + std::to_string(i),
            cpu.singleThreadFactor));
    }
}

CpuExecutor &
BaseBoard::core(unsigned i)
{
    panic_if(i >= cores_.size(), name(), ": bad core ", i);
    return *cores_[i];
}

} // namespace hw
} // namespace bmhive

#include "hw/cpu_model.hh"

namespace bmhive {
namespace hw {

CpuModel
CpuCatalog::baseBoardE5()
{
    return {"Xeon E5 (base board)", 2.2, 16, 16, 0.95, 45};
}

CpuModel
CpuCatalog::xeonE5_2682v4()
{
    return {"Xeon E5-2682 v4", 2.5, 16, 32, 1.00, 120};
}

CpuModel
CpuCatalog::xeonE3_1240v6()
{
    // 31% faster single-thread than E5-2682 v4 (paper section 4.2).
    return {"Xeon E3-1240 v6", 3.7, 4, 8, 1.31, 72};
}

CpuModel
CpuCatalog::corei7_7700k()
{
    return {"Core i7-7700K", 4.2, 4, 8, 1.45, 91};
}

CpuModel
CpuCatalog::atomC3850()
{
    return {"Atom C3850", 2.1, 12, 12, 0.45, 25};
}

CpuModel
CpuCatalog::physicalTwoSocketE5()
{
    return {"2x Xeon E5-2682 v4 (physical)", 2.5, 32, 64, 1.00, 240};
}

const std::vector<CpuModel> &
CpuCatalog::all()
{
    static const std::vector<CpuModel> skus = {
        baseBoardE5(),       xeonE5_2682v4(), xeonE3_1240v6(),
        corei7_7700k(),      atomC3850(),     physicalTwoSocketE5(),
    };
    return skus;
}

} // namespace hw
} // namespace bmhive

/**
 * @file
 * ComputeBoard and BaseBoard: the two hardware halves of a BM-Hive
 * server (paper section 3.3).
 *
 * A compute board is a PCIe extension board carrying a dedicated
 * CPU, dedicated memory, its own PCIe bus, and signed firmware. A
 * bm-guest runs on it natively. The base board is a simplified
 * 16-core Xeon server that hosts the bm-hypervisor processes and
 * the I/O backends.
 */

#ifndef BMHIVE_HW_COMPUTE_BOARD_HH
#define BMHIVE_HW_COMPUTE_BOARD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cpu_executor.hh"
#include "hw/cpu_model.hh"
#include "mem/guest_memory.hh"
#include "pci/pci_device.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace hw {

/**
 * Signed firmware image. The bm-hypervisor only applies updates
 * whose signature verifies against the provider key (paper
 * section 1: "the firmware of the compute board is properly
 * signed, and can only be updated if the signature of the new
 * firmware passes the verification").
 */
struct FirmwareImage
{
    std::string version;
    std::uint64_t payloadDigest = 0;
    std::uint64_t signature = 0;

    /** Provider signing: signature = digest mixed with the key. */
    static std::uint64_t
    sign(std::uint64_t digest, std::uint64_t provider_key)
    {
        // Placeholder cryptography: a keyed mix. The *policy* —
        // update only on verified signature — is what the model
        // tests, not the cipher.
        std::uint64_t x = digest ^ (provider_key * 0x9e3779b97f4a7c15ull);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return x;
    }

    bool
    verify(std::uint64_t provider_key) const
    {
        return signature == sign(payloadDigest, provider_key);
    }
};

/** Power states of a compute board. */
enum class BoardPower { Off, On };

class ComputeBoard : public SimObject
{
  public:
    /**
     * @param cpu     processor fitted to this board
     * @param mem_size  board-local RAM
     * @param pci_access_latency  cost of one access on the board's
     *        PCIe bus toward IO-Bond (paper: 0.8 us on the FPGA)
     */
    ComputeBoard(Simulation &sim, std::string name,
                 const CpuModel &cpu, Bytes mem_size,
                 Tick pci_access_latency);

    const CpuModel &cpu() const { return cpu_; }
    GuestMemory &memory() { return mem_; }
    pci::PciBus &pciBus() { return bus_; }

    /** One executor per hardware thread. */
    CpuExecutor &thread(unsigned i);
    unsigned threadCount() const { return unsigned(threads_.size()); }

    /** Set the execution model on all threads (native for bm). */
    void setExecutionModel(ExecutionModel *exec);

    BoardPower powerState() const { return power_; }
    void powerOn() { power_ = BoardPower::On; }
    void powerOff();

    const FirmwareImage &firmware() const { return firmware_; }

    /**
     * Apply a firmware update; rejected unless the signature
     * verifies against @p provider_key.
     * @return true if applied.
     */
    bool updateFirmware(const FirmwareImage &fw,
                        std::uint64_t provider_key);

  private:
    CpuModel cpu_;
    GuestMemory mem_;
    pci::PciBus bus_;
    std::vector<std::unique_ptr<CpuExecutor>> threads_;
    BoardPower power_ = BoardPower::Off;
    FirmwareImage firmware_;
};

class BaseBoard : public SimObject
{
  public:
    /**
     * @param cpu  the base CPU (16-core E5 in the paper)
     * @param mem_size  base (hypervisor) RAM
     * @param pci_access_latency  base-side PCIe access cost toward
     *        IO-Bond mailbox registers (paper: 0.8 us)
     */
    BaseBoard(Simulation &sim, std::string name, const CpuModel &cpu,
              Bytes mem_size, Tick pci_access_latency);

    const CpuModel &cpu() const { return cpu_; }
    GuestMemory &memory() { return mem_; }
    pci::PciBus &pciBus() { return bus_; }

    CpuExecutor &core(unsigned i);
    unsigned coreCount() const { return unsigned(cores_.size()); }

  private:
    CpuModel cpu_;
    GuestMemory mem_;
    pci::PciBus bus_;
    std::vector<std::unique_ptr<CpuExecutor>> cores_;
};

} // namespace hw
} // namespace bmhive

#endif // BMHIVE_HW_COMPUTE_BOARD_HH

/**
 * @file
 * CpuExecutor: one hardware thread (or vCPU) as a serialized work
 * timeline. Guest drivers and workloads run closures with explicit
 * CPU costs; the executor serializes them, applies the CPU's
 * single-thread speed factor, and lets a platform hook *stretch*
 * work — the mechanism by which the KVM baseline charges VM exits,
 * EPT-lengthened walks, and host preemption (paper section 2.1),
 * while a bm-guest executes at native speed.
 */

#ifndef BMHIVE_HW_CPU_EXECUTOR_HH
#define BMHIVE_HW_CPU_EXECUTOR_HH

#include <functional>
#include <string>
#include <utility>

#include "base/stats.hh"
#include "base/units.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace hw {

/**
 * Platform-dependent execution overhead. Given a nominal work
 * duration and its start tick, returns the stretched duration on
 * this platform. The default is the identity (bare metal).
 */
class ExecutionModel
{
  public:
    virtual ~ExecutionModel() = default;

    /**
     * @param start   tick at which the work begins
     * @param nominal native duration of the work
     * @param exits   VM-exit-triggering events in the work (MSR
     *                writes, IPIs, MMIO, ...); ignored on bare metal
     * @return actual duration on this platform
     */
    virtual Tick
    stretch(Tick start, Tick nominal, unsigned exits)
    {
        (void)start;
        (void)exits;
        return nominal;
    }
};

class CpuExecutor : public SimObject
{
  public:
    /**
     * @param speed_factor  single-thread performance factor
     * @param exec          overhead model; nullptr = native
     */
    CpuExecutor(Simulation &sim, std::string name,
                double speed_factor = 1.0,
                ExecutionModel *exec = nullptr)
        : SimObject(sim, std::move(name)),
          speedFactor_(speed_factor), exec_(exec) {}

    /**
     * Run @p fn after @p nominal_cost of CPU work (at native speed
     * on this SKU), serialized after previously queued work.
     * @param exits  number of exit-causing events within the work
     * @return tick at which the work completes
     */
    Tick
    run(Tick nominal_cost, std::function<void()> fn,
        unsigned exits = 0)
    {
        Tick start = busyUntil_ > curTick() ? busyUntil_ : curTick();
        Tick scaled = Tick(double(nominal_cost) / speedFactor_);
        Tick dur = exec_ ? exec_->stretch(start, scaled, exits)
                         : scaled;
        Tick end = start + dur;
        busyUntil_ = end;
        busyTime_ += dur;
        auto *ev = new OneShotEvent(std::move(fn),
                                    name() + ".work");
        eventq().schedule(ev, end);
        return end;
    }

    /** Account work with no completion callback. */
    Tick
    charge(Tick nominal_cost, unsigned exits = 0)
    {
        return run(nominal_cost, [] {}, exits);
    }

    /** When this CPU thread next becomes idle. */
    Tick busyUntil() const { return busyUntil_; }

    /** Utilization over [0, now]. */
    double
    utilization() const
    {
        Tick now = curTick();
        return now == 0 ? 0.0
                        : double(busyTime_) / double(now);
    }

    double speedFactor() const { return speedFactor_; }
    ExecutionModel *executionModel() const { return exec_; }

  private:
    double speedFactor_;
    ExecutionModel *exec_;
    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
};

} // namespace hw
} // namespace bmhive

#endif // BMHIVE_HW_CPU_EXECUTOR_HH

/**
 * @file
 * CPU SKU catalog. The paper's Table 3 lists the processors used
 * by bare-metal instances (Xeon E5-2682 v4, E3-1240 v6, Core
 * i7-7700K, ...); section 1 quotes CPU Mark single-thread ratios
 * (e.g. Core i7-8086K = 1.6x Xeon E5-2699 v4, E3-1240 v6 = 1.31x
 * E5-2682 v4). Relative single-thread performance and TDP feed the
 * application benchmarks and the section 3.5 cost model.
 */

#ifndef BMHIVE_HW_CPU_MODEL_HH
#define BMHIVE_HW_CPU_MODEL_HH

#include <string>
#include <vector>

#include "base/units.hh"

namespace bmhive {
namespace hw {

struct CpuModel
{
    std::string model;
    double baseGhz = 0.0;
    unsigned cores = 0;
    unsigned threads = 0; ///< hardware threads (HT)
    /** Single-thread performance relative to Xeon E5-2682 v4. */
    double singleThreadFactor = 1.0;
    double tdpWatts = 0.0;

    /** Seconds of wall time to execute @p work normalized units. */
    double
    secondsFor(double work) const
    {
        return work / singleThreadFactor;
    }
};

/** The SKUs appearing in the paper. */
struct CpuCatalog
{
    /** Base-board CPU: 16-core E5 (paper section 3.3). */
    static CpuModel baseBoardE5();
    /** Xeon E5-2682 v4: the evaluated instance (section 4.1). */
    static CpuModel xeonE5_2682v4();
    /** Xeon E3-1240 v6: +31% single-thread (section 4.2). */
    static CpuModel xeonE3_1240v6();
    /** Core i7-7700K: high single-thread desktop part. */
    static CpuModel corei7_7700k();
    /** Intel Atom C3850-class low-power board. */
    static CpuModel atomC3850();
    /** Dual-socket E5-2682 v4 physical server (Fig. 7 baseline). */
    static CpuModel physicalTwoSocketE5();

    static const std::vector<CpuModel> &all();
};

} // namespace hw
} // namespace bmhive

#endif // BMHIVE_HW_CPU_MODEL_HH

/**
 * @file
 * TDP-based power model for the section 3.5 cost-efficiency
 * analysis: watts per sellable vCPU for a BM-Hive server versus a
 * conventional virtualization server.
 */

#ifndef BMHIVE_HW_POWER_HH
#define BMHIVE_HW_POWER_HH

#include <vector>

#include "hw/cpu_model.hh"

namespace bmhive {
namespace hw {

struct PowerBreakdown
{
    double baseCpuWatts = 0.0;
    double boardCpuWatts = 0.0;
    double fpgaWatts = 0.0;
    unsigned sellableThreads = 0;

    double
    totalWatts() const
    {
        return baseCpuWatts + boardCpuWatts + fpgaWatts;
    }

    double
    wattsPerVcpu() const
    {
        return sellableThreads == 0
                   ? 0.0
                   : totalWatts() / double(sellableThreads);
    }
};

/** TDP of one IO-Bond FPGA (Intel Arria low-cost part). */
constexpr double ioBondFpgaWatts = 20.0;

/**
 * Power of a BM-Hive server with the given compute boards; every
 * board thread is sellable (no hypervisor reservation on the
 * boards themselves).
 */
PowerBreakdown bmHivePower(const CpuModel &base_cpu,
                           const std::vector<CpuModel> &boards);

/**
 * Power of a conventional virtualization server: two sockets of
 * @p cpu, with @p reserved_threads HT kept for the hypervisor and
 * the host kernel (8 in the paper).
 */
PowerBreakdown vmServerPower(const CpuModel &cpu,
                             unsigned reserved_threads);

} // namespace hw
} // namespace bmhive

#endif // BMHIVE_HW_POWER_HH

#include "hw/power.hh"

namespace bmhive {
namespace hw {

PowerBreakdown
bmHivePower(const CpuModel &base_cpu,
            const std::vector<CpuModel> &boards)
{
    PowerBreakdown p;
    p.baseCpuWatts = base_cpu.tdpWatts;
    for (const auto &b : boards) {
        p.boardCpuWatts += b.tdpWatts;
        p.fpgaWatts += ioBondFpgaWatts;
        p.sellableThreads += b.threads;
    }
    return p;
}

PowerBreakdown
vmServerPower(const CpuModel &cpu, unsigned reserved_threads)
{
    PowerBreakdown p;
    p.boardCpuWatts = 2.0 * cpu.tdpWatts; // two sockets
    unsigned total = 2 * cpu.threads;
    p.sellableThreads =
        total > reserved_threads ? total - reserved_threads : 0;
    return p;
}

} // namespace hw
} // namespace bmhive

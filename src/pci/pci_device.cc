#include "pci/pci_device.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace pci {

PciDevice::PciDevice(Simulation &sim, std::string name)
    : SimObject(sim, std::move(name))
{
}

void
PciDevice::attached(PciBus &bus, int slot)
{
    bus_ = &bus;
    slot_ = slot;
}

void
PciDevice::raiseMsi(unsigned vec)
{
    panic_if(bus_ == nullptr,
             name(), ": raising MSI while detached");
    bus_->deliverMsi(slot_, vec);
}

PciBus::PciBus(Simulation &sim, std::string name, Tick access_latency,
               Bandwidth link, Tick msi_latency)
    : SimObject(sim, std::move(name)), accessLatency_(access_latency),
      link_(link), msiLatency_(msi_latency)
{
}

void
PciBus::attach(PciDevice &dev, int slot)
{
    panic_if(slot < 0 || slot > 31, "invalid PCI slot: ", slot);
    panic_if(devices_.count(slot),
             name(), ": slot ", slot, " already occupied");
    devices_[slot] = &dev;
    dev.attached(*this, slot);
}

PciDevice *
PciBus::deviceAt(int slot) const
{
    auto it = devices_.find(slot);
    return it == devices_.end() ? nullptr : it->second;
}

std::uint32_t
PciBus::configRead(int slot, std::uint16_t offset, unsigned size)
{
    accesses_.inc();
    PciDevice *dev = deviceAt(slot);
    if (dev == nullptr)
        return size == 4 ? 0xffffffffu
                         : (size == 2 ? 0xffffu : 0xffu);
    return dev->config().read(offset, size);
}

void
PciBus::configWrite(int slot, std::uint16_t offset, std::uint32_t value,
                    unsigned size)
{
    accesses_.inc();
    PciDevice *dev = deviceAt(slot);
    if (dev != nullptr)
        dev->config().write(offset, value, size);
}

PciDevice *
PciBus::decode(Addr addr, int &bar, Addr &offset)
{
    for (auto &[slot, dev] : devices_) {
        if (!dev->config().memEnabled())
            continue;
        for (int b = 0; b < 6; ++b) {
            Bytes sz = dev->config().barSize(b);
            if (sz == 0)
                continue;
            Addr base = dev->config().barBase(b);
            if (base == 0)
                continue;
            if (addr >= base && addr < base + sz) {
                bar = b;
                offset = addr - base;
                return dev;
            }
        }
    }
    return nullptr;
}

std::uint32_t
PciBus::memRead(Addr addr, unsigned size)
{
    accesses_.inc();
    int bar;
    Addr offset;
    PciDevice *dev = decode(addr, bar, offset);
    if (dev == nullptr)
        return size == 4 ? 0xffffffffu
                         : (size == 2 ? 0xffffu : 0xffu);
    return dev->barRead(bar, offset, size);
}

void
PciBus::memWrite(Addr addr, std::uint32_t value, unsigned size)
{
    accesses_.inc();
    int bar;
    Addr offset;
    PciDevice *dev = decode(addr, bar, offset);
    if (dev != nullptr)
        dev->barWrite(bar, offset, value, size);
}

void
PciBus::deliverMsi(int slot, unsigned vec)
{
    msis_.inc();
    if (!msiHandler_)
        return;
    // Deliver after the interrupt latency via a self-deleting event.
    auto *ev = new OneShotEvent(
        [this, slot, vec] {
            if (msiHandler_)
                msiHandler_(slot, vec);
        },
        name() + ".msi");
    scheduleIn(ev, msiLatency_);
}

} // namespace pci
} // namespace bmhive

#include "pci/config_space.hh"

#include "base/logging.hh"

namespace bmhive {
namespace pci {

ConfigSpace::ConfigSpace()
{
    setWord(REG_VENDOR_ID, 0xffff);
    setByte(REG_HEADER_TYPE, 0x00);
}

void
ConfigSpace::setIds(std::uint16_t vendor, std::uint16_t device,
                    std::uint16_t subsys_vendor, std::uint16_t subsys,
                    std::uint32_t class_code, std::uint8_t revision)
{
    setWord(REG_VENDOR_ID, vendor);
    setWord(REG_DEVICE_ID, device);
    setWord(REG_SUBSYS_VENDOR_ID, subsys_vendor);
    setWord(REG_SUBSYS_ID, subsys);
    setByte(REG_REVISION, revision);
    // Class code occupies the top three bytes of dword 0x08.
    setByte(0x09, std::uint8_t(class_code & 0xff));         // prog-if
    setByte(0x0a, std::uint8_t((class_code >> 8) & 0xff));  // subclass
    setByte(0x0b, std::uint8_t((class_code >> 16) & 0xff)); // class
}

int
ConfigSpace::addMemBar(int bar, Bytes size)
{
    panic_if(bar < 0 || bar > 5, "invalid BAR index: ", bar);
    panic_if(size < 16 || (size & (size - 1)) != 0,
             "BAR size must be a power of two >= 16, got ", size);
    panic_if(barSize_[bar] != 0, "BAR ", bar, " already declared");
    barSize_[bar] = size;
    // Memory BAR, 32-bit, non-prefetchable: low bits are zero.
    setDword(std::uint16_t(REG_BAR0 + 4 * bar), 0);
    return bar;
}

std::uint8_t
ConfigSpace::addCapability(std::uint8_t cap_id, std::uint8_t len)
{
    panic_if(len < 2, "capability too short");
    panic_if(capNext_ + len > 0x100 - 1,
             "config space capability area exhausted");
    std::uint8_t off = capNext_;
    // Align next capability to 4 bytes.
    capNext_ = std::uint8_t((capNext_ + len + 3) & ~3);

    setByte(off, cap_id);
    setByte(std::uint8_t(off + 1), 0); // next = end of list

    if (capTail_ == 0) {
        setByte(REG_CAP_PTR, off);
        setWord(REG_STATUS, std::uint16_t(word(REG_STATUS) |
                                          STATUS_CAP_LIST));
    } else {
        setByte(std::uint8_t(capTail_ + 1), off);
    }
    capTail_ = off;
    return off;
}

std::uint32_t
ConfigSpace::read(std::uint16_t offset, unsigned size) const
{
    if ((size != 1 && size != 2 && size != 4) ||
        offset + size > data_.size()) {
        if (violation_)
            violation_();
        return 0xffffffffu; // master abort: all-ones
    }
    std::uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= std::uint32_t(data_[offset + i]) << (8 * i);
    return v;
}

void
ConfigSpace::write(std::uint16_t offset, std::uint32_t value,
                   unsigned size)
{
    if ((size != 1 && size != 2 && size != 4) ||
        offset + size > data_.size()) {
        if (violation_)
            violation_();
        return; // dropped, like a write to nowhere
    }

    // BAR writes: implement size probing. A 32-bit write of
    // 0xffffffff returns the size mask on the next read.
    if (size == 4 && offset >= REG_BAR0 && offset < REG_BAR0 + 24 &&
        (offset & 3) == 0) {
        int bar = (offset - REG_BAR0) / 4;
        if (barSize_[bar] == 0)
            return; // unimplemented BAR: hardwired zero
        Bytes sz = barSize_[bar];
        std::uint32_t mask = ~std::uint32_t(sz - 1);
        std::uint32_t v = (value == 0xffffffffu)
                              ? mask
                              : (value & mask);
        setDword(offset, v);
        return;
    }

    // Read-only identification area (except command/status/BARs/
    // cache line/latency/interrupt line).
    bool writable =
        offset == REG_COMMAND || offset == REG_COMMAND + 1 ||
        offset == REG_INTERRUPT_LINE ||
        (offset >= 0x40); // capability area writable by default
    if (!writable)
        return;

    for (unsigned i = 0; i < size; ++i)
        data_[offset + i] = std::uint8_t(value >> (8 * i));
}

Addr
ConfigSpace::barBase(int bar) const
{
    panic_if(bar < 0 || bar > 5, "invalid BAR index: ", bar);
    std::uint32_t raw = dword(std::uint16_t(REG_BAR0 + 4 * bar));
    return raw & ~std::uint32_t(0xf);
}

bool
ConfigSpace::memEnabled() const
{
    return word(REG_COMMAND) & CMD_MEM_SPACE;
}

bool
ConfigSpace::busMasterEnabled() const
{
    return word(REG_COMMAND) & CMD_BUS_MASTER;
}

void
ConfigSpace::setWord(std::uint16_t offset, std::uint16_t v)
{
    data_[offset] = std::uint8_t(v & 0xff);
    data_[offset + 1] = std::uint8_t(v >> 8);
}

void
ConfigSpace::setDword(std::uint16_t offset, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        data_[offset + i] = std::uint8_t(v >> (8 * i));
}

std::uint16_t
ConfigSpace::word(std::uint16_t offset) const
{
    return std::uint16_t(data_[offset]) |
           std::uint16_t(data_[offset + 1]) << 8;
}

std::uint32_t
ConfigSpace::dword(std::uint16_t offset) const
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= std::uint32_t(data_[offset + i]) << (8 * i);
    return v;
}

} // namespace pci
} // namespace bmhive

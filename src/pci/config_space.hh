/**
 * @file
 * PCI configuration space model: the standard type-0 header plus a
 * capability list. IO-Bond emulates one PCI function per virtio
 * device toward the compute board (paper section 3.4.1): config
 * space, BAR0/BAR1, and PCIe capabilities — exactly the structures
 * modelled here.
 */

#ifndef BMHIVE_PCI_CONFIG_SPACE_HH
#define BMHIVE_PCI_CONFIG_SPACE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/units.hh"

namespace bmhive {
namespace pci {

/** Standard config-space register offsets (type-0 header). */
enum ConfigReg : std::uint16_t {
    REG_VENDOR_ID = 0x00,
    REG_DEVICE_ID = 0x02,
    REG_COMMAND = 0x04,
    REG_STATUS = 0x06,
    REG_REVISION = 0x08,
    REG_CLASS_CODE = 0x09, // 3 bytes: prog-if, subclass, class
    REG_HEADER_TYPE = 0x0e,
    REG_BAR0 = 0x10,
    REG_BAR1 = 0x14,
    REG_BAR2 = 0x18,
    REG_BAR3 = 0x1c,
    REG_BAR4 = 0x20,
    REG_BAR5 = 0x24,
    REG_SUBSYS_VENDOR_ID = 0x2c,
    REG_SUBSYS_ID = 0x2e,
    REG_CAP_PTR = 0x34,
    REG_INTERRUPT_LINE = 0x3c,
    REG_INTERRUPT_PIN = 0x3d,
};

/** COMMAND register bits. */
enum CommandBits : std::uint16_t {
    CMD_IO_SPACE = 1 << 0,
    CMD_MEM_SPACE = 1 << 1,
    CMD_BUS_MASTER = 1 << 2,
    CMD_INTX_DISABLE = 1 << 10,
};

/** STATUS register bits. */
enum StatusBits : std::uint16_t {
    STATUS_CAP_LIST = 1 << 4,
};

/** Capability IDs used by the model. */
enum CapabilityId : std::uint8_t {
    CAP_ID_MSI = 0x05,
    CAP_ID_VENDOR = 0x09, ///< vendor-specific; virtio uses this
    CAP_ID_PCIE = 0x10,
};

/**
 * 256-byte configuration space with capability-list management.
 * BAR sizing (write all-ones, read back the mask) is implemented so
 * a guest firmware model can probe BAR sizes the standard way.
 */
class ConfigSpace
{
  public:
    ConfigSpace();

    /** Set identification registers. */
    void setIds(std::uint16_t vendor, std::uint16_t device,
                std::uint16_t subsys_vendor, std::uint16_t subsys,
                std::uint32_t class_code, std::uint8_t revision);

    /**
     * Declare a memory BAR of @p size bytes (power of two, >= 16).
     * @return the BAR index passed in, for chaining.
     */
    int addMemBar(int bar, Bytes size);

    /**
     * Append a capability of @p len bytes (header included).
     * @return config-space offset of the capability header.
     */
    std::uint8_t addCapability(std::uint8_t cap_id, std::uint8_t len);

    /**
     * Config accesses; @p size in {1, 2, 4}. Accesses with a bad
     * size or crossing the 256-byte boundary are contained, not
     * fatal — the initiator is the (untrusted) guest: reads return
     * all-ones like a master abort, writes are dropped, and the
     * violation handler (if any) is told.
     */
    std::uint32_t read(std::uint16_t offset, unsigned size) const;
    void write(std::uint16_t offset, std::uint32_t value, unsigned size);

    /** Observe malformed config accesses (guest-fault accounting). */
    void
    setViolationHandler(std::function<void()> h)
    {
        violation_ = std::move(h);
    }

    /** Programmed base address of a BAR (masked to its size). */
    Addr barBase(int bar) const;
    /** Declared size of a BAR; 0 if not present. */
    Bytes barSize(int bar) const { return barSize_[bar]; }

    /** True if memory decoding is enabled via COMMAND. */
    bool memEnabled() const;
    /** True if bus mastering (DMA) is enabled. */
    bool busMasterEnabled() const;

    /** Raw byte view for capability implementations. */
    std::uint8_t byte(std::uint16_t offset) const { return data_[offset]; }
    void setByte(std::uint16_t offset, std::uint8_t v) { data_[offset] = v; }
    void setWord(std::uint16_t offset, std::uint16_t v);
    void setDword(std::uint16_t offset, std::uint32_t v);
    std::uint16_t word(std::uint16_t offset) const;
    std::uint32_t dword(std::uint16_t offset) const;

  private:
    std::array<std::uint8_t, 256> data_{};
    std::array<Bytes, 6> barSize_{};
    std::function<void()> violation_;
    std::uint8_t capTail_ = 0;   ///< offset of last capability header
    std::uint8_t capNext_ = 0x40; ///< next free capability offset
};

} // namespace pci
} // namespace bmhive

#endif // BMHIVE_PCI_CONFIG_SPACE_HH

/**
 * @file
 * PciDevice and PciBus.
 *
 * The bus models a point of attachment with a fixed per-access
 * latency and a link bandwidth. Register (config/MMIO) accesses are
 * functionally immediate; callers that model timing read the bus's
 * accessLatency() and schedule continuations accordingly — this
 * keeps driver code linear while preserving the paper's 0.8 µs
 * per-PCI-access cost on IO-Bond's FPGA (section 3.4.3).
 *
 * MSI delivery is asynchronous with a small configurable latency.
 */

#ifndef BMHIVE_PCI_PCI_DEVICE_HH
#define BMHIVE_PCI_PCI_DEVICE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "pci/config_space.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace pci {

class PciBus;

/**
 * A PCI function attached to a PciBus. Subclasses implement BAR
 * (MMIO) register behaviour.
 */
class PciDevice : public SimObject
{
  public:
    PciDevice(Simulation &sim, std::string name);

    ConfigSpace &config() { return config_; }
    const ConfigSpace &config() const { return config_; }

    /** MMIO access within BAR @p bar at @p offset. */
    virtual std::uint32_t barRead(int bar, Addr offset,
                                  unsigned size) = 0;
    virtual void barWrite(int bar, Addr offset, std::uint32_t value,
                          unsigned size) = 0;

    /** Called when the device is attached to a bus. */
    virtual void attached(PciBus &bus, int slot);

    PciBus *bus() const { return bus_; }
    int slot() const { return slot_; }

    /** Raise MSI vector @p vec toward the bus's interrupt target. */
    void raiseMsi(unsigned vec);

  private:
    ConfigSpace config_;
    PciBus *bus_ = nullptr;
    int slot_ = -1;
};

/**
 * A PCI segment: a set of slots, an address map of programmed
 * BARs, per-access latency, link bandwidth, and an MSI sink.
 */
class PciBus : public SimObject
{
  public:
    /** Receives (slot, vector) for each delivered MSI. */
    using MsiHandler = std::function<void(int, unsigned)>;

    /**
     * @param access_latency  time for one config/MMIO access (one
     *                        non-posted TLP round trip)
     * @param link            link bandwidth for bulk data
     */
    PciBus(Simulation &sim, std::string name, Tick access_latency,
           Bandwidth link, Tick msi_latency = nsToTicks(200));

    /** Attach @p dev at @p slot (0-31). */
    void attach(PciDevice &dev, int slot);

    PciDevice *deviceAt(int slot) const;
    std::size_t deviceCount() const { return devices_.size(); }

    /** Config space access by slot. */
    std::uint32_t configRead(int slot, std::uint16_t offset,
                             unsigned size);
    void configWrite(int slot, std::uint16_t offset,
                     std::uint32_t value, unsigned size);

    /**
     * Memory-space access routed by programmed BAR ranges.
     * Unclaimed reads return all-ones like real PCI.
     */
    std::uint32_t memRead(Addr addr, unsigned size);
    void memWrite(Addr addr, std::uint32_t value, unsigned size);

    /** Cost of one register access (caller-accounted). */
    Tick accessLatency() const { return accessLatency_; }
    Bandwidth linkBandwidth() const { return link_; }

    /** Register the MSI sink (e.g. the guest's LAPIC model). */
    void setMsiHandler(MsiHandler h) { msiHandler_ = std::move(h); }

    /** Interrupt delivery latency (injection vs hardware MSI). */
    void setMsiLatency(Tick t) { msiLatency_ = t; }
    Tick msiLatency() const { return msiLatency_; }

    /** Called by devices; delivers after msi_latency. */
    void deliverMsi(int slot, unsigned vec);

    /** Register accesses performed (for latency accounting checks). */
    std::uint64_t accessCount() const { return accesses_.value(); }
    std::uint64_t msiCount() const { return msis_.value(); }

  private:
    /** Find the device+BAR claiming @p addr, or nullptr. */
    PciDevice *decode(Addr addr, int &bar, Addr &offset);

    std::map<int, PciDevice *> devices_;
    Tick accessLatency_;
    Bandwidth link_;
    Tick msiLatency_;
    MsiHandler msiHandler_;
    Counter accesses_;
    Counter msis_;

    /** Pending MSI deliveries (self-deleting events). */
    struct PendingMsi;
};

} // namespace pci
} // namespace bmhive

#endif // BMHIVE_PCI_PCI_DEVICE_HH

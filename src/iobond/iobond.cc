#include "iobond/iobond.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "virtio/virtio_blk.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace iobond {

using namespace virtio;

IoBondFunction::IoBondFunction(Simulation &sim, std::string name,
                               IoBond &owner, unsigned index,
                               DeviceType type, unsigned num_queues,
                               std::uint64_t features)
    : VirtioPciDevice(sim, std::move(name), type, num_queues,
                      features),
      owner_(owner), index_(index)
{
}

void
IoBondFunction::setDeviceCfgBytes(std::vector<std::uint8_t> bytes)
{
    devCfg_ = std::move(bytes);
}

std::uint32_t
IoBondFunction::deviceCfgRead(Addr offset, unsigned size)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr idx = offset + i;
        std::uint8_t b =
            idx < devCfg_.size() ? devCfg_[idx] : 0;
        v |= std::uint32_t(b) << (8 * i);
    }
    return v;
}

void
IoBondFunction::deviceCfgWrite(Addr offset, std::uint32_t value,
                               unsigned size)
{
    // The only writable device-config field is the virtio-net
    // multi-queue curr_pairs word — our ctrl-vq-less stand-in for
    // VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET. Everything else in the
    // device config is read-only; stray writes are ignored (probes
    // are legitimate), but a set-queue-pairs outside [1, offered]
    // is a contained guest fault and clamps.
    if (deviceType() != DeviceType::Net ||
        offset != VirtioNetConfig::currPairsOffset || size != 2)
        return;
    if (!featureNegotiated(VIRTIO_NET_F_MQ))
        return; // not offered or not accepted: field is RO
    unsigned pairs = value & 0xffff;
    if (pairs < 1 || pairs > maxPairs_) {
        reportGuestFault(fault::GuestFaultKind::BadQueuePairs);
        pairs = std::clamp(pairs, 1u, maxPairs_);
    }
    currPairs_ = pairs;
    if (devCfg_.size() >= VirtioNetConfig::currPairsOffset + 2) {
        devCfg_[VirtioNetConfig::currPairsOffset] =
            std::uint8_t(pairs);
        devCfg_[VirtioNetConfig::currPairsOffset + 1] =
            std::uint8_t(pairs >> 8);
    }
    owner_.queuePairsSet(*this, pairs);
}

void
IoBondFunction::onQueueNotify(unsigned q)
{
    owner_.guestNotified(*this, q);
}

void
IoBondFunction::onDriverOk()
{
    owner_.driverReady(*this);
}

void
IoBondFunction::onReset()
{
    // Reset rewinds the committed pair count to the single-queue
    // default; the re-initializing driver negotiates again.
    currPairs_ = 1;
    if (deviceType() == DeviceType::Net &&
        devCfg_.size() >= VirtioNetConfig::currPairsOffset + 2) {
        devCfg_[VirtioNetConfig::currPairsOffset] = 1;
        devCfg_[VirtioNetConfig::currPairsOffset + 1] = 0;
    }
    owner_.functionReset(*this);
}

IoBond::IoBond(Simulation &sim, std::string name,
               hw::ComputeBoard &board, GuestMemory &base_memory,
               Addr shadow_region_base, IoBondParams params)
    : SimObject(sim, std::move(name)), board_(board),
      baseMem_(&base_memory), params_(params),
      dma_(sim, this->name() + ".dma", params.dmaBandwidth),
      pool_(shadow_region_base + 4 * MiB, params.shadowArenaBytes),
      shadowRings_(base_memory, shadow_region_base),
      notifies_(metrics().counter(this->name() + ".notifies")),
      chains_(metrics().counter(this->name() + ".chains")),
      completions_(metrics().counter(this->name() + ".completions")),
      bad_(metrics().counter(this->name() + ".malformed")),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      faultRecovered_(
          metrics().counter(this->name() + ".fault.recovered")),
      droppedDoorbells_(metrics().counter(
          this->name() + ".fault.dropped_doorbells")),
      drainDeferred_(metrics().counter(
          this->name() + ".drain.deferred_doorbells")),
      guestFaultsTotal_(metrics().counter(
          this->name() + ".guest.faults_total")),
      quarantineDrops_(metrics().counter(
          this->name() + ".guest.quarantine_drops")),
      scrubRuns_(metrics().counter(
          this->name() + ".integrity.scrub.runs")),
      scrubChecked_(metrics().counter(
          this->name() + ".integrity.scrub.checked")),
      scrubRepairs_(metrics().counter(
          this->name() + ".integrity.scrub.repairs")),
      metaInjected_(metrics().counter(
          this->name() + ".integrity.meta_injected")),
      queueResets_(metrics().counter(
          this->name() + ".integrity.queue_resets"))
{
    panic_if(shadow_region_base + 4 * MiB +
                     params.shadowArenaBytes >
                 base_memory.size(),
             this->name(), ": shadow region exceeds base memory");
    for (std::size_t k = 0; k < fault::guestFaultKinds; ++k)
        guestFaultCounters_[k] = &metrics().counter(
            this->name() + ".guest.faults." +
            fault::guestFaultName(fault::GuestFaultKind(k)));
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
    dma_.setErrorHandler([this] { onDmaError(); });
    dma_.setIntegrityHandler([this] { onIntegrityEscalation(); });
    integrity_ = params.integrity;
    dma_.setIntegrity(integrity_);
}

IoBond::~IoBond() { sim_.faults().remove(name()); }

bool
IoBond::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::LinkFlap: {
        Tick dur = spec.duration ? spec.duration : usToTicks(50);
        Tick until = curTick() + dur;
        if (until > linkDownUntil_)
            linkDownUntil_ = until;
        faultInjected_.inc();
        if (flight_)
            flight_->record(curTick(), obs::FlightEvent::FaultInject,
                            0, 0, std::uint64_t(spec.kind));
        trace(name() + ": PCIe link down for " +
              std::to_string(ticksToUs(dur)) + "us");
        // When the link comes back, sweep every ready queue: any
        // doorbell lost during the outage is recovered here.
        auto *ev = new OneShotEvent(
            [this] {
                if (curTick() >= linkDownUntil_)
                    rescanReady();
            },
            name() + ".linkup");
        eventq().schedule(ev, linkDownUntil_);
        return true;
      }
      case fault::FaultKind::DropDoorbell: {
        dropDoorbells_ += spec.count ? spec.count : 1;
        faultInjected_.inc();
        if (flight_)
            flight_->record(curTick(), obs::FlightEvent::FaultInject,
                            0, 0, std::uint64_t(spec.kind));
        // The mailbox-timeout resync sweep bounds how long a lost
        // notification can strand queued work.
        auto *ev = new OneShotEvent([this] { rescanReady(); },
                                    name() + ".resync");
        scheduleIn(ev, spec.duration ? spec.duration
                                     : usToTicks(100));
        return true;
      }
      case fault::FaultKind::DmaCorruptMeta: {
        std::uint64_t budget = spec.count ? spec.count : 1;
        faultInjected_.inc();
        if (flight_)
            flight_->record(curTick(), obs::FlightEvent::FaultInject,
                            0, 0, std::uint64_t(spec.kind));
        // Rot metadata of chains live right now; any leftover
        // budget lands in the next mirrored chains, so every armed
        // unit ends up in bytes the scrubber must catch.
        for (unsigned fi = 0;
             budget > 0 && fi < functions_.size(); ++fi) {
            for (unsigned q = 0;
                 budget > 0 && q < shadow_[fi].size(); ++q) {
                ShadowQueue &sq = shadow_[fi][q];
                if (!sq.ready)
                    continue;
                for (auto &[head, cs] : sq.inflight) {
                    if (budget == 0)
                        break;
                    corruptShadowMeta(sq, head, cs);
                    --budget;
                }
            }
        }
        metaCorruptBudget_ += budget;
        return true;
      }
      case fault::FaultKind::FunctionFail: {
        auto fn = unsigned(spec.magnitude);
        if (fn >= functions_.size())
            return false;
        faultInjected_.inc();
        if (flight_)
            flight_->record(curTick(), obs::FlightEvent::FaultInject,
                            fn, 0, std::uint64_t(spec.kind));
        failFunction(fn);
        return true;
      }
      default:
        return false;
    }
}

void
IoBond::onDmaError()
{
    // The engine is shared by all functions; attribute the failed
    // transfer to the one most recently active on the datapath.
    if (lastActiveFn_ >= 0 &&
        unsigned(lastActiveFn_) < functions_.size())
        failFunction(unsigned(lastActiveFn_));
}

void
IoBond::setIntegrity(bool on)
{
    integrity_ = on;
    dma_.setIntegrity(on);
    if (on && inflightChains() > 0)
        scheduleScrub();
}

void
IoBond::onIntegrityEscalation()
{
    // Containment-ladder rung two: the DMA engine saw the same
    // transfer mismatch through every replay, so corruption on
    // this path is persistent — reset the active function's queues
    // rather than retry forever.
    queueResets_.inc();
    if (lastActiveFn_ < 0 ||
        unsigned(lastActiveFn_) >= functions_.size())
        return;
    unsigned fn = unsigned(lastActiveFn_);
    trace(name() + ": ECRC retries exhausted, resetting fn=" +
          std::to_string(fn));
    failFunction(fn);
    if (integrityEscalationCb_)
        integrityEscalationCb_(fn);
}

void
IoBond::corruptShadowMeta(ShadowQueue &sq, std::uint16_t head,
                          const ChainShadow &cs)
{
    metaInjected_.inc();
    if (cs.indirectBlock != PoolAllocator::nullAddr) {
        // Rot the len field of the first indirect-table entry.
        Addr a = cs.indirectBlock + 8;
        baseMem_->write32(a, baseMem_->read32(a) ^ 0xA5);
    } else if (!cs.path.empty()) {
        VringDesc d =
            sq.shadowLayout.readDesc(*baseMem_, cs.path[0]);
        d.len ^= 0xA5;
        sq.shadowLayout.writeDesc(*baseMem_, cs.path[0], d);
    }
    (void)head;
}

void
IoBond::scheduleScrub()
{
    if (!integrity_ || scrubScheduled_)
        return;
    scrubScheduled_ = true;
    // The epoch capture kills passes armed before a migration: the
    // one-shot stays behind in the source partition's queue after
    // the guest re-homes, and must not touch bond state that now
    // runs in another partition (retireScrub bumps the epoch).
    auto *ev = new OneShotEvent(
        [this, epoch = scrubEpoch_] {
            if (epoch == scrubEpoch_)
                scrubPass();
        },
        name() + ".scrub");
    scheduleIn(ev, params_.scrubPeriod);
}

void
IoBond::retireScrub()
{
    ++scrubEpoch_;
    scrubScheduled_ = false;
}

void
IoBond::scrubPass()
{
    scrubScheduled_ = false;
    if (!integrity_)
        return;
    scrubRuns_.inc();
    std::vector<unsigned> escalate;
    for (unsigned fi = 0; fi < functions_.size(); ++fi) {
        for (unsigned q = 0; q < shadow_[fi].size(); ++q) {
            ShadowQueue &sq = shadow_[fi][q];
            if (!sq.ready) {
                sq.scrubStrikes = 0;
                continue;
            }
            unsigned repairs = scrubQueue(fi, q);
            if (repairs == 0) {
                sq.scrubStrikes = 0;
                continue;
            }
            scrubRepairs_.inc(repairs);
            if (flight_)
                flight_->record(curTick(),
                                obs::FlightEvent::IntegrityDetect,
                                fi, q, /*where=*/1, repairs);
            trace(name() + ": scrub repaired " +
                  std::to_string(repairs) +
                  " shadow-metadata fields fn=" +
                  std::to_string(fi) + " q=" + std::to_string(q));
            // A repair IS the heal for metadata: the chain keeps
            // flowing on the corrected descriptors. Repeated dirt
            // on one queue escalates to a reset instead.
            if (++sq.scrubStrikes >= params_.scrubEscalateAfter) {
                sq.scrubStrikes = 0;
                if (std::find(escalate.begin(), escalate.end(),
                              fi) == escalate.end())
                    escalate.push_back(fi);
            }
        }
    }
    for (unsigned fn : escalate) {
        queueResets_.inc();
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::IntegrityEscalate, fn,
                            0, /*where=*/1);
        trace(name() + ": persistent metadata corruption, " +
              "resetting fn=" + std::to_string(fn));
        failFunction(fn);
        if (integrityEscalationCb_)
            integrityEscalationCb_(fn);
    }
    if (inflightChains() > 0)
        scheduleScrub();
}

unsigned
IoBond::scrubQueue(unsigned fn, unsigned q)
{
    ShadowQueue &sq = shadow_[fn][q];
    unsigned repairs = 0;
    for (auto &[head, cs] : sq.inflight) {
        scrubChecked_.inc();
        if (cs.indirectBlock != PoolAllocator::nullAddr) {
            // Head descriptor pointing at the indirect table.
            VringDesc want;
            want.addr = cs.indirectBlock;
            want.len = std::uint32_t(cs.segs.size()) *
                       std::uint32_t(vringDescSize);
            want.flags = VRING_DESC_F_INDIRECT;
            want.next = 0;
            VringDesc got =
                sq.shadowLayout.readDesc(*baseMem_, head);
            if (got.addr != want.addr || got.len != want.len ||
                got.flags != want.flags || got.next != want.next) {
                sq.shadowLayout.writeDesc(*baseMem_, head, want);
                ++repairs;
            }
            // Indirect-table entries, re-derived from the layout
            // recorded at mirror time.
            for (std::size_t i = 0; i < cs.segs.size(); ++i) {
                const auto &seg = cs.segs[i];
                Addr a = cs.indirectBlock + Addr(i) * vringDescSize;
                bool last = i + 1 >= cs.segs.size();
                std::uint16_t flags = std::uint16_t(
                    (seg.write ? VRING_DESC_F_WRITE : 0) |
                    (last ? 0 : VRING_DESC_F_NEXT));
                std::uint16_t next =
                    std::uint16_t(last ? 0 : i + 1);
                if (baseMem_->read64(a) != seg.shadowAddr) {
                    baseMem_->write64(a, seg.shadowAddr);
                    ++repairs;
                }
                if (baseMem_->read32(a + 8) !=
                    std::uint32_t(seg.len)) {
                    baseMem_->write32(a + 8,
                                      std::uint32_t(seg.len));
                    ++repairs;
                }
                if (baseMem_->read16(a + 12) != flags) {
                    baseMem_->write16(a + 12, flags);
                    ++repairs;
                }
                if (baseMem_->read16(a + 14) != next) {
                    baseMem_->write16(a + 14, next);
                    ++repairs;
                }
            }
        } else {
            for (std::size_t i = 0; i < cs.path.size(); ++i) {
                const auto &seg = cs.segs[i];
                VringDesc want;
                want.addr = seg.shadowAddr;
                want.len = std::uint32_t(seg.len);
                want.flags = std::uint16_t(
                    (seg.write ? VRING_DESC_F_WRITE : 0) |
                    (i + 1 < cs.path.size() ? VRING_DESC_F_NEXT
                                            : 0));
                want.next = std::uint16_t(
                    i + 1 < cs.path.size() ? cs.path[i + 1] : 0);
                VringDesc got = sq.shadowLayout.readDesc(
                    *baseMem_, cs.path[i]);
                if (got.addr != want.addr || got.len != want.len ||
                    got.flags != want.flags ||
                    got.next != want.next) {
                    sq.shadowLayout.writeDesc(*baseMem_, cs.path[i],
                                              want);
                    ++repairs;
                }
            }
        }
    }
    // Avail-ring audit. Chains complete out of order (blk), so ring
    // positions cannot be paired with the inflight table sorted by
    // seq — each chain records the cursor its publish DMA actually
    // landed at, and only that slot is checked. A slot whose cursor
    // has since lapped the ring belongs to a newer chain; skip it.
    for (auto &[head, cs] : sq.inflight) {
        if (!cs.published ||
            std::uint16_t(sq.shadowAvail - cs.availPos) >=
                sq.shadowLayout.size())
            continue;
        std::uint16_t pos = cs.availPos % sq.shadowLayout.size();
        if (sq.shadowLayout.availRing(*baseMem_, pos) != head) {
            sq.shadowLayout.setAvailRing(*baseMem_, pos, head);
            ++repairs;
        }
    }
    if (sq.shadowLayout.availIdx(*baseMem_) != sq.shadowAvail) {
        sq.shadowLayout.setAvailIdx(*baseMem_, sq.shadowAvail);
        ++repairs;
    }
    return repairs;
}

void
IoBond::failFunction(unsigned fn)
{
    panic_if(fn >= functions_.size(), name(), ": bad function ", fn);
    trace(name() + ": function " + std::to_string(fn) +
          " failed, raising DEVICE_NEEDS_RESET");
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::Reset, fn);
    functionReset(*functions_[fn]);
    functions_[fn]->markNeedsReset();
    if (resetCb_)
        resetCb_(fn);
}

void
IoBond::guestFault(fault::GuestFaultKind k)
{
    guestFaultCounters_[std::size_t(k)]->inc();
    guestFaultsTotal_.inc();
    trace(name() + ": guest fault " + fault::guestFaultName(k));
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::GuestFault,
                        lastActiveFn_ >= 0 ? unsigned(lastActiveFn_)
                                           : 0,
                        0, std::uint64_t(k));
    if (guestFaultCb_)
        guestFaultCb_(k);
}

void
IoBond::setQuarantined(bool on)
{
    if (quarantined_ == on)
        return;
    quarantined_ = on;
    trace(name() + (on ? ": quarantined"
                       : ": quarantine released"));
    // On release, sweep the ready queues: doorbells swallowed
    // during the quarantine must not strand queued work forever.
    if (!on)
        rescanReady();
}

void
IoBond::setDrained(bool on)
{
    if (drained_ == on)
        return;
    drained_ = on;
    trace(name() + (on ? ": drained (doorbells deferred)"
                       : ": drain lifted"));
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::Drain, 0, 0,
                        on ? 1 : 0);
    // Lifting the drain sweeps up every doorbell deferred while it
    // held — on the target server after a migration, or back on
    // the source after an abort.
    if (!on)
        rescanReady();
}

void
IoBond::drainCompletions()
{
    for (unsigned fi = 0; fi < functions_.size(); ++fi)
        for (unsigned q = 0; q < shadow_[fi].size(); ++q)
            if (shadow_[fi][q].ready)
                backendCompleted(fi, q);
}

std::size_t
IoBond::inflightChains() const
{
    std::size_t n = 0;
    for (const auto &fn : shadow_)
        for (const auto &sq : fn)
            n += sq.inflight.size();
    return n;
}

void
IoBond::rebase(GuestMemory &new_base, Addr region_base,
               std::function<void()> done)
{
    panic_if(!drained_, name(), ": rebase requires a drained bond");
    panic_if(!dmaIdle(), name(),
             ": rebase requires an idle DMA engine");
    panic_if(region_base + 4 * MiB + params_.shadowArenaBytes >
                 new_base.size(),
             name(), ": shadow region exceeds target base memory");
    baseMem_ = &new_base;
    pool_ = PoolAllocator(region_base + 4 * MiB,
                          params_.shadowArenaBytes);
    shadowRings_.reseat(new_base, region_base);

    // Rebuild every shadow ring in the new memory and replay the
    // published-but-unfinished window. The guest-facing cursors
    // carry over untouched: the guest never notices its I/O moved
    // to a different base server.
    std::vector<DmaEngine::CopySeg> segs;
    Bytes meta = 0;
    struct QueueFinish
    {
        unsigned fn;
        unsigned q;
        std::uint16_t avail;
        std::uint64_t epoch;
    };
    std::vector<QueueFinish> finish;
    unsigned replayed = 0;
    for (unsigned fi = 0; fi < functions_.size(); ++fi) {
        for (unsigned q = 0; q < shadow_[fi].size(); ++q) {
            ShadowQueue &sq = shadow_[fi][q];
            if (!sq.ringAllocated)
                continue;
            sq.ringBlock = shadowRings_.alloc(
                VringLayout::bytesNeeded(
                    functions_[fi]->queueState(q).sizeMax),
                4096);
            if (!sq.ready)
                continue;
            sq.shadowLayout = VringLayout::contiguous(
                sq.shadowLayout.size(), sq.ringBlock);
            sq.shadowLayout.setAvailFlags(*baseMem_, 0);
            sq.shadowLayout.setUsedFlags(*baseMem_, 0);
            // The fresh ring starts exactly where the old one
            // stopped so the cursor arithmetic in
            // backendCompleted stays seamless.
            sq.shadowLayout.setAvailIdx(*baseMem_, sq.syncedUsed);
            sq.shadowLayout.setUsedIdx(*baseMem_, sq.syncedUsed);
            // Orphan anything still referencing the old server's
            // rings (there should be nothing — DMA was idle).
            ++sq.epoch;
            // Re-mirror in original submission order: descriptors
            // of an unfinished chain are device-owned until its
            // used element lands, so guest memory still holds them
            // verbatim — the same replay recoverQueue does after a
            // backend crash.
            auto old = std::move(sq.inflight);
            sq.inflight.clear();
            std::vector<std::pair<std::uint64_t, std::uint16_t>>
                order;
            for (const auto &[head, cs] : old)
                order.emplace_back(cs.seq, head);
            std::sort(order.begin(), order.end());
            std::uint16_t window =
                std::uint16_t(sq.shadowAvail - sq.syncedUsed);
            if (order.size() != window)
                warn(name(), ": rebase found ", order.size(),
                     " inflight chains for a ", window,
                     "-entry window");
            std::uint16_t pos = sq.syncedUsed;
            for (const auto &[seq, head] : order) {
                if (!mirrorChain(fi, q, head, segs, meta))
                    continue; // contained; completed as failed
                sq.shadowLayout.setAvailRing(
                    *baseMem_, pos % sq.shadowLayout.size(), head);
                ChainShadow &ncs = sq.inflight.at(head);
                ncs.availPos = pos;
                ncs.published = true;
                ++pos;
            }
            replayed += unsigned(std::uint16_t(pos - sq.syncedUsed));
            sq.shadowAvail = pos;
            finish.push_back({fi, q, pos, sq.epoch});
        }
    }

    // The replay travels as one scatter-gather transfer; the avail
    // windows publish only once every payload byte has landed in
    // the new memory, exactly like a live sync burst.
    segs.push_back(DmaEngine::CopySeg{nullptr, 0, nullptr, 0,
                                      meta > 0 ? meta : 1});
    if (replayed > 0)
        faultRecovered_.inc(replayed);
    trace(name() + ": rebased onto " + new_base.name() + ", " +
          std::to_string(replayed) + " chains replayed");
    dma_.copyv(
        std::move(segs),
        [this, finish = std::move(finish),
         done = std::move(done)] {
            for (const auto &f : finish) {
                ShadowQueue &s = shadow_[f.fn][f.q];
                if (!s.ready || s.epoch != f.epoch)
                    continue; // reset raced with the replay
                s.shadowLayout.setAvailIdx(*baseMem_, f.avail);
            }
            if (done)
                done();
        });
}

void
IoBond::rescanReady()
{
    if (quarantined_ || drained_)
        return; // swept again at release / drain lift
    unsigned recovered = 0;
    for (unsigned fi = 0; fi < functions_.size(); ++fi)
        for (unsigned q = 0; q < shadow_[fi].size(); ++q)
            if (shadow_[fi][q].ready)
                recovered += syncAvail(fi, q);
    if (recovered > 0) {
        faultRecovered_.inc(recovered);
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::FaultRecover, 0, 0,
                            recovered);
    }
}

IoBondFunction &
IoBond::addNetFunction(int guest_slot, std::uint64_t mac,
                       unsigned queue_pairs)
{
    panic_if(queue_pairs == 0, name(), ": need >= 1 queue pair");
    auto idx = unsigned(functions_.size());
    std::uint64_t features =
        VIRTIO_NET_F_CSUM | VIRTIO_NET_F_MAC | VIRTIO_NET_F_STATUS |
        VIRTIO_RING_F_INDIRECT_DESC | VIRTIO_RING_F_EVENT_IDX;
    if (queue_pairs > 1)
        features |= VIRTIO_NET_F_MQ;
    auto fn = std::make_unique<IoBondFunction>(
        sim_, name() + ".net" + std::to_string(idx), *this, idx,
        DeviceType::Net, 2 * queue_pairs, features);
    std::vector<std::uint8_t> cfg(12, 0);
    for (int i = 0; i < 6; ++i)
        cfg[i] = std::uint8_t(mac >> (8 * i));
    cfg[6] = 1; // VIRTIO_NET_S_LINK_UP
    cfg[VirtioNetConfig::maxPairsOffset] =
        std::uint8_t(queue_pairs);
    cfg[VirtioNetConfig::maxPairsOffset + 1] =
        std::uint8_t(queue_pairs >> 8);
    cfg[VirtioNetConfig::currPairsOffset] = 1;
    fn->maxPairs_ = queue_pairs;
    fn->setDeviceCfgBytes(std::move(cfg));
    fn->setGuestFaultHandler(
        [this](fault::GuestFaultKind k) { guestFault(k); });
    board_.pciBus().attach(*fn, guest_slot);
    functions_.push_back(std::move(fn));
    shadow_.emplace_back(2 * queue_pairs);
    fnDoorbells_.push_back(TokenBucket::unlimited());
    return *functions_.back();
}

IoBondFunction &
IoBond::addBlkFunction(int guest_slot, std::uint64_t capacity_sectors,
                       unsigned num_queues)
{
    panic_if(num_queues == 0, name(), ": need >= 1 blk queue");
    auto idx = unsigned(functions_.size());
    std::uint64_t features =
        VIRTIO_BLK_F_SEG_MAX | VIRTIO_BLK_F_BLK_SIZE |
        VIRTIO_BLK_F_FLUSH | VIRTIO_RING_F_INDIRECT_DESC |
        VIRTIO_RING_F_EVENT_IDX;
    if (num_queues > 1)
        features |= VIRTIO_BLK_F_MQ;
    auto fn = std::make_unique<IoBondFunction>(
        sim_, name() + ".blk" + std::to_string(idx), *this, idx,
        DeviceType::Block, num_queues, features);
    std::vector<std::uint8_t> cfg(10, 0);
    for (int i = 0; i < 8; ++i)
        cfg[i] = std::uint8_t(capacity_sectors >> (8 * i));
    cfg[VirtioBlkConfig::numQueuesOffset] =
        std::uint8_t(num_queues);
    cfg[VirtioBlkConfig::numQueuesOffset + 1] =
        std::uint8_t(num_queues >> 8);
    fn->maxPairs_ = num_queues;
    fn->currPairs_ = num_queues; // blk queues are all active
    fn->setDeviceCfgBytes(std::move(cfg));
    fn->setGuestFaultHandler(
        [this](fault::GuestFaultKind k) { guestFault(k); });
    board_.pciBus().attach(*fn, guest_slot);
    functions_.push_back(std::move(fn));
    shadow_.emplace_back(num_queues);
    fnDoorbells_.push_back(TokenBucket::unlimited());
    return *functions_.back();
}

IoBondFunction &
IoBond::addConsoleFunction(int guest_slot)
{
    auto idx = unsigned(functions_.size());
    auto fn = std::make_unique<IoBondFunction>(
        sim_, name() + ".console" + std::to_string(idx), *this, idx,
        DeviceType::Console, 2, VIRTIO_RING_F_INDIRECT_DESC);
    fn->setGuestFaultHandler(
        [this](fault::GuestFaultKind k) { guestFault(k); });
    board_.pciBus().attach(*fn, guest_slot);
    functions_.push_back(std::move(fn));
    shadow_.emplace_back(2);
    fnDoorbells_.push_back(TokenBucket::unlimited());
    return *functions_.back();
}

IoBondFunction &
IoBond::function(unsigned i)
{
    panic_if(i >= functions_.size(), name(), ": bad function ", i);
    return *functions_[i];
}

bool
IoBond::shadowReady(unsigned fn, unsigned q) const
{
    if (fn >= shadow_.size() || q >= shadow_[fn].size())
        return false;
    return shadow_[fn][q].ready;
}

VringLayout
IoBond::shadowLayout(unsigned fn, unsigned q) const
{
    panic_if(!shadowReady(fn, q),
             name(), ": shadow (", fn, ",", q, ") not ready");
    return shadow_[fn][q].shadowLayout;
}

void
IoBond::driverReady(IoBondFunction &fn)
{
    unsigned fi = fn.index();
    bool any_ready = false;
    // One doorbell budget per function, shared by all its queues:
    // arming per queue would let a multi-queue guest multiply its
    // allowance by the queue count.
    fnDoorbells_[fi] =
        TokenBucket(params_.doorbellRate, params_.doorbellBurst);
    for (unsigned q = 0; q < fn.numQueues(); ++q) {
        const QueueState &qs = fn.queueState(q);
        if (!qs.enabled)
            continue;
        ShadowQueue &sq = shadow_[fi][q];
        sq.guestLayout = qs.layout();
        // The ring areas are guest-programmed addresses in guest
        // memory; a layout pointing outside it is a contained
        // fault, not a bridge crash — the queue simply never
        // becomes ready and the driver is told to reset.
        if (!sq.guestLayout.fitsIn(board_.memory().size())) {
            sq.ready = false;
            guestFault(fault::GuestFaultKind::BadRingAddress);
            fn.markNeedsReset();
            continue;
        }
        // One shadow-ring block per queue, sized for the device
        // maximum: a guest renegotiating in a loop must reuse its
        // block, not bleed the bump arena dry.
        if (!sq.ringAllocated) {
            sq.ringBlock = shadowRings_.alloc(
                VringLayout::bytesNeeded(qs.sizeMax), 4096);
            sq.ringAllocated = true;
        }
        sq.shadowLayout =
            VringLayout::contiguous(qs.size, sq.ringBlock);
        sq.shadowLayout.setAvailFlags(*baseMem_, 0);
        sq.shadowLayout.setAvailIdx(*baseMem_, 0);
        sq.shadowLayout.setUsedFlags(*baseMem_, 0);
        sq.shadowLayout.setUsedIdx(*baseMem_, 0);
        sq.syncedAvail = sq.shadowAvail = 0;
        sq.syncedUsed = sq.guestUsed = 0;
        sq.nextSeq = 0;
        sq.scrubStrikes = 0;
        sq.stormResync = false;
        ++sq.epoch; // orphan any completion still in the DMA queue
        // With F_EVENT_IDX the device owns avail_event in the
        // guest used ring; a stale value from a previous driver
        // life would suppress every kick after re-init.
        if (fn.featureNegotiated(VIRTIO_RING_F_EVENT_IDX))
            sq.guestLayout.setAvailEvent(board_.memory(), 0);
        sq.ready = true;
        any_ready = true;
        trace(name() + ": shadow vring ready fn=" +
              std::to_string(fi) + " q=" + std::to_string(q));
    }
    if (any_ready && readyCb_)
        readyCb_(fi);
}

void
IoBond::functionReset(IoBondFunction &fn)
{
    unsigned fi = fn.index();
    for (unsigned q = 0; q < shadow_[fi].size(); ++q) {
        ShadowQueue &sq = shadow_[fi][q];
        // Open traced flows on this queue will never see an MSI:
        // drop them so a resetting guest cannot pin tracer state.
        if (sq.reqTracer)
            sq.reqTracer->dropOpen(fi, q);
        for (auto &[head, cs] : sq.inflight) {
            if (cs.bufBlock != PoolAllocator::nullAddr)
                pool_.free(cs.bufBlock);
            if (cs.indirectBlock != PoolAllocator::nullAddr)
                pool_.free(cs.indirectBlock);
        }
        sq.inflight.clear();
        sq.ready = false;
        // In-flight DMA completions for this queue must not touch
        // the rings (or re-free the blocks just released above).
        ++sq.epoch;
    }
}

void
IoBond::queuePairsSet(IoBondFunction &fn, unsigned pairs)
{
    trace(name() + ": fn=" + std::to_string(fn.index()) +
          " set-queue-pairs -> " + std::to_string(pairs));
    if (queuePairsCb_)
        queuePairsCb_(fn.index(), pairs);
}

void
IoBond::setQueueTracer(unsigned fn, unsigned q,
                       obs::RequestTracer *t)
{
    panic_if(fn >= shadow_.size() || q >= shadow_[fn].size(),
             name(), ": bad shadow queue (", fn, ",", q, ")");
    shadow_[fn][q].reqTracer = t;
}

void
IoBond::guestNotified(IoBondFunction &fn, unsigned q)
{
    notifies_.inc();
    unsigned fi = fn.index();
    ShadowQueue &sq = shadow_[fi][q];
    sq.lastDoorbell = curTick();
    lastActiveFn_ = int(fi);
    if (quarantined_) {
        // Containment: the bridge swallows the doorbell entirely.
        // Queued work is swept up at release.
        quarantineDrops_.inc();
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::DoorbellDrop, fi, q,
                            1);
        return;
    }
    if (drained_) {
        // Migration drain: the doorbell is deferred, not lost —
        // the rescan sweep at drain-lift picks its work up on
        // whichever base server the bond lands on.
        drainDeferred_.inc();
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::DoorbellDrop, fi, q,
                            3);
        return;
    }
    if (curTick() < linkDownUntil_ || dropDoorbells_ > 0) {
        // Injected loss: the notification never crosses the link.
        // The flap-end / resync sweep picks the work up later.
        if (dropDoorbells_ > 0)
            --dropDoorbells_;
        droppedDoorbells_.inc();
        trace(name() + ": doorbell fn=" + std::to_string(fi) +
              " q=" + std::to_string(q) + " dropped (fault)");
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::DoorbellDrop, fi, q,
                            2);
        return;
    }
    if (!fnDoorbells_[fi].tryConsume(curTick(), 1.0)) {
        // Doorbell storm: the notification is dropped, but queued
        // work is not lost — one deferred sweep per throttle
        // window picks it up when tokens return.
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::DoorbellThrottle, fi,
                            q);
        guestFault(fault::GuestFaultKind::DoorbellStorm);
        if (!sq.stormResync) {
            sq.stormResync = true;
            Tick at = std::max<Tick>(
                fnDoorbells_[fi].nextAvailable(curTick(), 1.0),
                curTick() + 1);
            auto *ev = new OneShotEvent(
                [this, fi, q] {
                    ShadowQueue &s = shadow_[fi][q];
                    s.stormResync = false;
                    if (!quarantined_ && !drained_ && s.ready &&
                        fnDoorbells_[fi].tryConsume(curTick(), 1.0))
                        syncAvail(fi, q);
                },
                name() + ".storm_resync");
            eventq().schedule(ev, at);
        }
        return;
    }
    trace(name() + ": doorbell fn=" + std::to_string(fi) +
          " q=" + std::to_string(q));
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::DoorbellAccept,
                        fi, q);
    // An accepted mailbox write is what a sleeping poll core
    // observes; the per-queue hook carries the queue identity so
    // only that queue's pollable is woken.
    if (queueWake_)
        queueWake_(fi, q);
    else if (doorbellWake_)
        doorbellWake_();
    // The notification crosses to the mailbox side of the FPGA
    // before descriptor fetch begins.
    auto *ev = new OneShotEvent(
        [this, fi, q] { syncAvail(fi, q); }, name() + ".mailbox");
    scheduleIn(ev, params_.mailboxAccess);
}

unsigned
IoBond::syncAvail(unsigned fn, unsigned q)
{
    ShadowQueue &sq = shadow_[fn][q];
    if (!sq.ready)
        return 0;
    GuestMemory &gmem = board_.memory();
    std::uint16_t gavail = sq.guestLayout.availIdx(gmem);
    // The avail index is guest-authored. A jump wider than the
    // ring cannot describe real work (at most `size` chains can
    // be outstanding) — it would make the mirror loop walk
    // garbage ring slots. Contain it and force a reinit.
    std::uint16_t pending = std::uint16_t(gavail - sq.syncedAvail);
    if (pending > sq.guestLayout.size()) {
        guestFault(fault::GuestFaultKind::AvailIdxJump);
        failFunction(fn);
        return 0;
    }
    // Coalesce the whole burst: every chain's descriptor-table
    // read and payload copy rides one scatter-gather DMA transfer
    // (one startup cost over the batch, paper section 3.4.3), and
    // one head-register bump publishes every chain at once.
    unsigned picked = 0;
    std::vector<DmaEngine::CopySeg> segs;
    std::vector<std::uint16_t> heads;
    Bytes meta = 0;
    while (sq.syncedAvail != gavail) {
        std::uint16_t head = sq.guestLayout.availRing(
            gmem, sq.syncedAvail % sq.guestLayout.size());
        ++sq.syncedAvail;
        ++picked;
        if (mirrorChain(fn, q, head, segs, meta))
            heads.push_back(head);
    }
    if (picked > 0 &&
        functions_[fn]->featureNegotiated(VIRTIO_RING_F_EVENT_IDX)) {
        // Re-arm the guest-facing avail_event: with F_EVENT_IDX the
        // driver kicks again only once its avail index passes this
        // value, so a device that never advances it wedges the
        // queue after the first 2^16 window of the index space.
        sq.guestLayout.setAvailEvent(gmem, sq.syncedAvail);
    }
    if (heads.empty())
        return picked;

    // Ring metadata follows the payloads through the DMA engine;
    // the burst is published on the shadow ring (and the head
    // register bumped, once) only when everything has landed.
    segs.push_back(DmaEngine::CopySeg{nullptr, 0, nullptr, 0, meta});
    std::uint64_t epoch = sq.epoch;
    dma_.copyv(
        std::move(segs),
        [this, fn, q, heads = std::move(heads), epoch] {
            ShadowQueue &s = shadow_[fn][q];
            if (!s.ready || s.epoch != epoch)
                return; // reset or crash recovery raced with the sync
            if (!dma_.lastDelivered()) {
                // The mirror copy never landed (DmaFail drop or
                // exhausted ECRC replay): the shadow bounce still
                // holds stale bytes, and the shadow descriptors for
                // these heads describe data that was never written.
                // Publishing would hand the backend zero-filled
                // headers it would happily complete OK — a silently
                // corrupted acknowledgement. Leave the burst
                // unpublished and pin the blame on this function so
                // the engine's error/integrity handler (which runs
                // right after this callback) resets *us*, not
                // whichever function touched the datapath last.
                lastActiveFn_ = int(fn);
                return;
            }
            for (std::uint16_t head : heads) {
                s.shadowLayout.setAvailRing(
                    *baseMem_, s.shadowAvail % s.shadowLayout.size(),
                    head);
                auto ci = s.inflight.find(head);
                if (ci != s.inflight.end()) {
                    ci->second.availPos = s.shadowAvail;
                    ci->second.published = true;
                }
                ++s.shadowAvail;
                if (s.reqTracer)
                    s.reqTracer->stamp(
                        obs::RequestTracer::flowKey(fn, q, head),
                        obs::Stage::ShadowSync, curTick());
            }
            s.shadowLayout.setAvailIdx(*baseMem_, s.shadowAvail);
            chains_.inc(heads.size());
            if (flight_)
                flight_->record(curTick(),
                                obs::FlightEvent::AvailSync, fn, q,
                                heads.size(), s.shadowAvail);
            trace(name() + ": burst of " +
                  std::to_string(heads.size()) +
                  " chains published on shadow vring, head " +
                  "register -> " + std::to_string(s.shadowAvail));
            // Resync sweeps (storm throttle, link flap, recovery)
            // publish work without a fresh doorbell; wake here too
            // so swept-up chains never wait on a sleeping core.
            if (queueWake_)
                queueWake_(fn, q);
            else if (doorbellWake_)
                doorbellWake_();
        });
    return picked;
}

bool
IoBond::mirrorChain(unsigned fn, unsigned q, std::uint16_t head,
                    std::vector<DmaEngine::CopySeg> &segs,
                    Bytes &meta)
{
    ShadowQueue &sq = shadow_[fn][q];
    GuestMemory &gmem = board_.memory();
    ChainWalk walk = walkDescChain(gmem, sq.guestLayout, head);

    auto fail_chain = [&] {
        bad_.inc();
        // Complete toward the guest with zero length so its
        // descriptors are reclaimed; a hostile guest cannot wedge
        // the bridge.
        VringUsedElem elem{head, 0};
        std::uint64_t epoch = sq.epoch;
        dma_.accountOnly(8, [this, fn, q, elem, epoch] {
            ShadowQueue &s = shadow_[fn][q];
            if (s.epoch != epoch)
                return; // reset raced with the completion
            GuestMemory &gm = board_.memory();
            s.guestLayout.setUsedRing(
                gm, s.guestUsed % s.guestLayout.size(), elem);
            ++s.guestUsed;
            s.guestLayout.setUsedIdx(gm, s.guestUsed);
            functions_[fn]->notifyGuest(q);
        });
        return false;
    };

    if (!walk.ok) {
        guestFault(walk.fault);
        return fail_chain();
    }

    Bytes total = 0;
    for (const auto &s : walk.chain.segs)
        total += s.len;
    if (total > params_.maxChainBytes) {
        // Arithmetically valid but absurd: one chain must not pin
        // a neighbour-starving share of the shadow arena.
        guestFault(fault::GuestFaultKind::DescLenOversized);
        return fail_chain();
    }

    ChainShadow cs;
    if (total > 0) {
        cs.bufBlock = pool_.alloc(total, 16);
        if (cs.bufBlock == PoolAllocator::nullAddr) {
            warn(name(), ": shadow arena exhausted");
            return fail_chain();
        }
    }

    // Lay segments out back to back within the block; the
    // device-readable ones join the burst's scatter-gather DMA
    // once every allocation for this chain has succeeded.
    Addr cursor = cs.bufBlock;
    for (const auto &s : walk.chain.segs) {
        cs.segs.push_back({s.addr, cursor, s.len, s.deviceWrites});
        cursor += s.len;
    }

    // Materialize shadow descriptors.
    std::uint16_t desc_count = 0;
    if (walk.indirect) {
        cs.indirectBlock =
            pool_.alloc(Bytes(walk.indirectCount) * vringDescSize,
                        16);
        if (cs.indirectBlock == PoolAllocator::nullAddr) {
            pool_.free(cs.bufBlock);
            warn(name(), ": shadow arena exhausted (indirect)");
            return fail_chain();
        }
        for (std::uint16_t i = 0; i < walk.indirectCount; ++i) {
            const auto &seg = cs.segs[i];
            Addr a = cs.indirectBlock + Addr(i) * vringDescSize;
            baseMem_->write64(a, seg.shadowAddr);
            baseMem_->write32(a + 8, std::uint32_t(seg.len));
            std::uint16_t flags = std::uint16_t(
                (seg.write ? VRING_DESC_F_WRITE : 0) |
                (i + 1 < walk.indirectCount ? VRING_DESC_F_NEXT
                                            : 0));
            baseMem_->write16(a + 12, flags);
            baseMem_->write16(a + 14,
                             std::uint16_t(i + 1 < walk.indirectCount
                                               ? i + 1
                                               : 0));
        }
        VringDesc d;
        d.addr = cs.indirectBlock;
        d.len = std::uint32_t(walk.indirectCount) *
                std::uint32_t(vringDescSize);
        d.flags = VRING_DESC_F_INDIRECT;
        d.next = 0;
        sq.shadowLayout.writeDesc(*baseMem_, head, d);
        desc_count = std::uint16_t(walk.indirectCount + 1);
    } else {
        for (std::size_t i = 0; i < walk.path.size(); ++i) {
            const auto &seg = cs.segs[i];
            VringDesc d;
            d.addr = seg.shadowAddr;
            d.len = std::uint32_t(seg.len);
            d.flags = std::uint16_t(
                (seg.write ? VRING_DESC_F_WRITE : 0) |
                (i + 1 < walk.path.size() ? VRING_DESC_F_NEXT : 0));
            d.next = std::uint16_t(
                i + 1 < walk.path.size() ? walk.path[i + 1] : 0);
            sq.shadowLayout.writeDesc(*baseMem_, walk.path[i], d);
        }
        desc_count = std::uint16_t(walk.path.size());
        cs.path = walk.path;
    }

    // Everything allocated: the chain joins the burst. Payload
    // copies and the per-chain ring metadata (descriptor reads +
    // avail-ring entry) accumulate into the caller's transfer.
    for (const auto &seg : cs.segs) {
        if (!seg.write && seg.len > 0)
            segs.push_back(DmaEngine::CopySeg{
                &gmem, seg.guestAddr, baseMem_, seg.shadowAddr,
                seg.len});
    }
    meta += Bytes(desc_count) * vringDescSize + 2;

    cs.seq = sq.nextSeq++;
    sq.inflight[head] = std::move(cs);

    // A DmaCorruptMeta armed while no chain was live lands in the
    // freshly-written descriptors; the scrubber (armed below) is
    // what must catch it.
    if (metaCorruptBudget_ > 0) {
        --metaCorruptBudget_;
        corruptShadowMeta(sq, head, sq.inflight[head]);
    }
    if (integrity_)
        scheduleScrub();

    // The request's life begins at the doorbell that announced it,
    // not at descriptor fetch; stamp with the earlier tick.
    if (sq.reqTracer)
        sq.reqTracer->stamp(obs::RequestTracer::flowKey(fn, q, head),
                            obs::Stage::GuestPost, sq.lastDoorbell);
    return true;
}

void
IoBond::backendCompleted(unsigned fn, unsigned q)
{
    panic_if(fn >= shadow_.size() || q >= shadow_[fn].size(),
             name(), ": bad shadow queue (", fn, ",", q, ")");
    ShadowQueue &sq = shadow_[fn][q];
    if (!sq.ready)
        return;
    std::uint16_t sused = sq.shadowLayout.usedIdx(*baseMem_);
    if (sq.syncedUsed == sused)
        return;
    lastActiveFn_ = int(fn);
    GuestMemory &gmem = board_.memory();

    // One tail-register write closes the whole batch: collect
    // every newly-used element, group all device-written data and
    // the used elements into one scatter-gather DMA, and decide on
    // one MSI when it lands (interrupt moderation: the hardware
    // raises it after the last DMA).
    std::vector<ReturnedChain> batch;
    std::vector<DmaEngine::CopySeg> segs;
    while (sq.syncedUsed != sused) {
        VringUsedElem elem = sq.shadowLayout.usedRing(
            *baseMem_, sq.syncedUsed % sq.shadowLayout.size());
        ++sq.syncedUsed;
        auto it = sq.inflight.find(std::uint16_t(elem.id));
        if (it == sq.inflight.end()) {
            warn(name(), ": backend completed unknown head ",
                 elem.id);
            continue;
        }
        ChainShadow &cs = it->second;
        // Device-written data flows back to guest memory — only
        // the bytes the used element reports, not whole buffers.
        Bytes budget = elem.len;
        for (const auto &seg : cs.segs) {
            if (!seg.write || seg.len == 0)
                continue;
            Bytes n = std::min<Bytes>(seg.len, budget);
            if (n == 0)
                break;
            segs.push_back(DmaEngine::CopySeg{
                baseMem_, seg.shadowAddr, &gmem, seg.guestAddr,
                n});
            budget -= n;
        }
        batch.push_back({elem, cs.bufBlock, cs.indirectBlock});
        sq.inflight.erase(it);
    }
    if (batch.empty())
        return;

    // The used elements follow the data; on arrival the guest ring
    // is updated once, shadow resources are freed, and the MSI
    // fires.
    segs.push_back(DmaEngine::CopySeg{nullptr, 0, nullptr, 0,
                                      Bytes(batch.size()) * 8});
    std::uint64_t epoch = sq.epoch;
    dma_.copyv(
        std::move(segs),
        [this, fn, q, batch = std::move(batch), epoch] {
            ShadowQueue &s = shadow_[fn][q];
            GuestMemory &gm = board_.memory();
            // The chains left `inflight` above, so a racing reset
            // did not free their blocks; always release them here.
            for (const auto &r : batch) {
                if (r.bufBlock != PoolAllocator::nullAddr)
                    pool_.free(r.bufBlock);
                if (r.indirectBlock != PoolAllocator::nullAddr)
                    pool_.free(r.indirectBlock);
            }
            if (s.epoch != epoch)
                return; // function reset/re-init while in flight
            if (!dma_.lastDelivered()) {
                // The completion copy never landed: device-written
                // payloads (read data, RX frames) are still only in
                // the shadow bounce, so the guest buffers hold
                // stale bytes. Pushing these used elements would
                // present them as fresh completions. Drop the batch
                // unpublished and pin the blame here — the engine's
                // handler resets this function and the guest driver
                // re-issues everything that was in flight.
                lastActiveFn_ = int(fn);
                return;
            }
            std::uint16_t before = s.guestUsed;
            for (const auto &r : batch) {
                s.guestLayout.setUsedRing(
                    gm, s.guestUsed % s.guestLayout.size(), r.elem);
                ++s.guestUsed;
                if (s.reqTracer)
                    s.reqTracer->stamp(
                        obs::RequestTracer::flowKey(
                            fn, q, std::uint16_t(r.elem.id)),
                        obs::Stage::CompleteDma, curTick());
            }
            s.guestLayout.setUsedIdx(gm, s.guestUsed);
            completions_.inc(batch.size());
            if (flight_)
                flight_->record(curTick(),
                                obs::FlightEvent::UsedPublish, fn,
                                q, batch.size(), s.guestUsed);
            trace(name() + ": batch of " +
                  std::to_string(batch.size()) +
                  " completions returned to guest");
            // Respect the driver's interrupt suppression: flag bit
            // in classic mode, used_event crossing anywhere inside
            // the batch span with F_EVENT_IDX (all arithmetic
            // modulo 2^16 — the span straddles the index wrap).
            bool wants;
            if (functions_[fn]->featureNegotiated(
                    VIRTIO_RING_F_EVENT_IDX)) {
                wants = vringNeedEvent(
                    s.guestLayout.usedEvent(gm), s.guestUsed,
                    before);
            } else {
                wants = !(s.guestLayout.availFlags(gm) &
                          VRING_AVAIL_F_NO_INTERRUPT);
            }
            if (wants)
                s.irqPending = true;
            if (s.irqPending) {
                s.irqPending = false;
                // The MSI closes the batch; only its final chain's
                // flow completes end-to-end (interrupt moderation).
                if (s.reqTracer)
                    s.reqTracer->stamp(
                        obs::RequestTracer::flowKey(
                            fn, q,
                            std::uint16_t(batch.back().elem.id)),
                        obs::Stage::GuestIrq, curTick());
                if (flight_)
                    flight_->record(curTick(),
                                    obs::FlightEvent::Msi, fn, q,
                                    batch.back().elem.id);
                functions_[fn]->notifyGuest(q);
            }
        });
}

unsigned
IoBond::recoverQueue(unsigned fn, unsigned q)
{
    panic_if(fn >= shadow_.size() || q >= shadow_[fn].size(),
             name(), ": bad shadow queue (", fn, ",", q, ")");
    ShadowQueue &sq = shadow_[fn][q];
    if (!sq.ready)
        return 0;

    // Completions the dead backend already pushed survive in the
    // shadow used ring: return them to the guest first.
    backendCompleted(fn, q);

    // The shadow avail ring's window [syncedUsed, shadowAvail)
    // holds the published-but-unfinished chains. Rewrite it from
    // the inflight table in submission order, so the window is
    // exactly right even if a crashed write half-landed; chains
    // whose publish DMA is still queued will append after it.
    std::uint16_t window =
        std::uint16_t(sq.shadowAvail - sq.syncedUsed);
    std::vector<std::pair<std::uint64_t, std::uint16_t>> order;
    for (const auto &[head, cs] : sq.inflight)
        order.emplace_back(cs.seq, head);
    std::sort(order.begin(), order.end());
    if (order.size() < window) {
        warn(name(), ": recovery found ", order.size(),
             " inflight chains for a ", window, "-entry window");
        window = std::uint16_t(order.size());
    }
    for (std::uint16_t i = 0; i < window; ++i) {
        auto pos = std::uint16_t(sq.syncedUsed + i);
        sq.shadowLayout.setAvailRing(
            *baseMem_, pos % sq.shadowLayout.size(),
            order[i].second);
        ChainShadow &cs = sq.inflight.at(order[i].second);
        cs.availPos = pos;
        cs.published = true;
    }
    sq.shadowLayout.setAvailIdx(*baseMem_, sq.shadowAvail);
    if (window > 0)
        faultRecovered_.inc(window);
    trace(name() + ": recovered fn=" + std::to_string(fn) +
          " q=" + std::to_string(q) + ", " +
          std::to_string(window) + " chains republished");
    return window;
}

void
IoBond::trace(const std::string &msg)
{
    if (tracer_)
        tracer_(msg);
}

} // namespace iobond
} // namespace bmhive

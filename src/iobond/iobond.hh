/**
 * @file
 * IO-Bond: the FPGA bridge between a compute board and the base
 * board (paper section 3.4) — the paper's core hardware
 * contribution.
 *
 * Toward the compute board it emulates virtio PCI functions
 * (config space, BAR0, notification doorbell, MSI). Toward the
 * base board it maintains one *shadow vring* per guest virtqueue
 * in base memory plus mailbox and head/tail registers the
 * bm-hypervisor polls. An internal DMA engine (~50 Gbps) shuttles
 * descriptors and data between the two memories, which do not
 * share an address space.
 *
 * Tx/Rx workflow (paper Fig. 6):
 *   1. guest writes buffers + avail ring in its own memory
 *   2. guest writes the virtio notification register (0.8 us)
 *   3. IO-Bond fetches desc/avail updates via DMA
 *   4. IO-Bond copies device-readable payloads into shadow buffers
 *   5. IO-Bond publishes the chain on the shadow vring and bumps
 *      its head register (0.8 us mailbox hop)
 *   6. bm-hypervisor's poll thread pops the shadow chain, executes
 *      the I/O, pushes a used element, writes the tail register
 *   7. IO-Bond DMAs device-written data + the used element back to
 *      guest memory and raises an MSI toward the guest
 */

#ifndef BMHIVE_IOBOND_IOBOND_HH
#define BMHIVE_IOBOND_IOBOND_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/paper_constants.hh"
#include "base/stats.hh"
#include "base/token_bucket.hh"
#include "fault/guest_fault.hh"
#include "hw/compute_board.hh"
#include "mem/dma_engine.hh"
#include "mem/pool_allocator.hh"
#include "obs/flight_recorder.hh"
#include "obs/request_tracer.hh"
#include "virtio/virtio_pci.hh"
#include "virtio/virtqueue.hh"

namespace bmhive {
namespace iobond {

class IoBond;

/** Timing/sizing parameters of one IO-Bond instance. */
struct IoBondParams
{
    /** Cost of one guest PCI access to the front-end. */
    Tick pciAccess = paper::ioBondPciAccess;
    /** The second hop: front-end to the mailbox registers. */
    Tick mailboxAccess = paper::ioBondMailboxAccess;
    /** Internal DMA engine throughput. */
    Bandwidth dmaBandwidth = Bandwidth::gbps(paper::ioBondDmaGbps);
    /** Shadow buffer arena carved from base memory. */
    Bytes shadowArenaBytes = 16 * MiB;

    /**
     * Doorbell-storm throttle, per virtqueue: a hostile guest
     * hammering the notify register must not monopolize the
     * FPGA's mailbox path. ~2M doorbells/s is an order of
     * magnitude above what an honest driver generates through a
     * 0.8 us PCI access; the burst absorbs legitimate batches.
     */
    double doorbellRate = 2.0e6;
    double doorbellBurst = 4096;

    /**
     * Upper bound on the payload bytes one chain may pin in the
     * shadow arena. A guest describing absurd buffers gets a
     * contained DescLenOversized fault instead of starving its
     * neighbours' arena allocations.
     */
    Bytes maxChainBytes = 4 * MiB;

    /**
     * End-to-end integrity: ECRC verification on every internal
     * DMA transfer plus a periodic scrubber that audits the shadow
     * vring metadata of every in-flight chain against the content
     * recorded at mirror time and repairs silent flips in place.
     */
    bool integrity = true;
    /** Scrub cadence while chains are in flight. */
    Tick scrubPeriod = usToTicks(50);
    /** Consecutive dirty scrub passes on one queue before the
     *  function is reset (containment-ladder rung two). */
    unsigned scrubEscalateAfter = 2;

    /** FPGA timing (default). ASIC variant for the section 6
     *  ablation: both hops drop to 0.2 us. */
    static IoBondParams
    asic()
    {
        IoBondParams p;
        p.pciAccess = paper::ioBondAsicPciAccess;
        p.mailboxAccess = paper::ioBondAsicPciAccess;
        return p;
    }
};

/**
 * One emulated virtio PCI function on the compute-board bus.
 */
class IoBondFunction : public virtio::VirtioPciDevice
{
  public:
    IoBondFunction(Simulation &sim, std::string name, IoBond &owner,
                   unsigned index, virtio::DeviceType type,
                   unsigned num_queues, std::uint64_t features);

    /** Device-specific config contents (MAC, capacity, ...). */
    void setDeviceCfgBytes(std::vector<std::uint8_t> bytes);

    unsigned index() const { return index_; }

    /**
     * Queue pairs the guest driver has committed to via the
     * config-space set-queue-pairs write (net) — 1 until the
     * driver raises it, never above what the device offered.
     * Blk reports its fixed submission-queue count.
     */
    unsigned activeQueuePairs() const { return currPairs_; }
    /** Queue pairs (net) / submission queues (blk) offered. */
    unsigned maxQueuePairs() const { return maxPairs_; }

  protected:
    std::uint32_t deviceCfgRead(Addr offset, unsigned size) override;
    void deviceCfgWrite(Addr offset, std::uint32_t value,
                        unsigned size) override;
    void onQueueNotify(unsigned q) override;
    void onDriverOk() override;
    void onReset() override;

  private:
    friend class IoBond;

    IoBond &owner_;
    unsigned index_;
    std::vector<std::uint8_t> devCfg_;
    unsigned maxPairs_ = 1;  ///< pairs/queues offered
    unsigned currPairs_ = 1; ///< pairs the driver committed to
};

class IoBond : public SimObject
{
  public:
    using Tracer = std::function<void(const std::string &)>;

    IoBond(Simulation &sim, std::string name, hw::ComputeBoard &board,
           GuestMemory &base_memory, Addr shadow_region_base,
           IoBondParams params = {});
    ~IoBond() override;

    /** Add a virtio-net function at @p guest_slot on the board.
     *  @p queue_pairs > 1 offers VIRTIO_NET_F_MQ with that many
     *  rx/tx pairs (queue layout rx0,tx0,rx1,tx1,...). */
    IoBondFunction &addNetFunction(int guest_slot,
                                   std::uint64_t mac,
                                   unsigned queue_pairs = 1);
    /** Add a virtio-blk function at @p guest_slot on the board.
     *  @p num_queues > 1 offers VIRTIO_BLK_F_MQ with that many
     *  submission queues. */
    IoBondFunction &addBlkFunction(int guest_slot,
                                   std::uint64_t capacity_sectors,
                                   unsigned num_queues = 1);
    /** Add a virtio-console function (the paper's guest console;
     *  section 3.3: new devices need only a new PCI function — the
     *  shadow-vring machinery is reused untouched). */
    IoBondFunction &addConsoleFunction(int guest_slot);

    unsigned numFunctions() const
    {
        return unsigned(functions_.size());
    }
    IoBondFunction &function(unsigned i);

    // --- Backend (bm-hypervisor) interface ---

    /** True once the guest driver enabled the queue. */
    bool shadowReady(unsigned fn, unsigned q) const;

    /** Layout of the shadow vring in base memory. */
    virtio::VringLayout shadowLayout(unsigned fn, unsigned q) const;

    /**
     * The backend pushed used elements on the shadow ring and
     * writes the tail register: sync completions back to the
     * guest. The 0.8 us register-write cost is the caller's.
     */
    void backendCompleted(unsigned fn, unsigned q);

    /**
     * Re-adopt shadow-vring state after a backend crash: drain
     * completions that already landed on the shadow used ring,
     * then republish every still-inflight chain (in original
     * submission order) so a freshly attached backend re-executes
     * exactly the work the dead one had picked up but not
     * finished. Returns the number of chains republished.
     */
    unsigned recoverQueue(unsigned fn, unsigned q);

    /**
     * Invoked (with the function index) whenever a guest driver
     * finishes feature negotiation and the function's shadow
     * vrings become ready — the hook the hypervisor uses to
     * re-attach a function after DEVICE_NEEDS_RESET recovery.
     */
    void setReadyCallback(std::function<void(unsigned)> cb)
    {
        readyCb_ = std::move(cb);
    }

    /**
     * Invoked when an accepted doorbell (or a resync sweep)
     * publishes guest work toward the backend — the mailbox write
     * a shared poll scheduler uses to wake a sleeping poll core.
     * Quarantined, dropped, and storm-throttled doorbells post no
     * wake: a contained guest cannot spin a core back up.
     */
    void setDoorbellWake(std::function<void()> hook)
    {
        doorbellWake_ = std::move(hook);
    }

    /**
     * Per-queue variant of setDoorbellWake for multi-queue
     * backends: the wake carries (fn, q) so the scheduler can wake
     * exactly the pollable registered for that queue. When set it
     * replaces the coarse hook.
     */
    void setQueueWake(std::function<void(unsigned, unsigned)> hook)
    {
        queueWake_ = std::move(hook);
    }

    /**
     * Invoked (with function index and the committed pair count)
     * when a guest driver performs the config-space
     * set-queue-pairs write — the hypervisor rebuilds its RSS
     * indirection and per-queue registrations from here.
     */
    void setQueuePairsCallback(
        std::function<void(unsigned, unsigned)> cb)
    {
        queuePairsCb_ = std::move(cb);
    }

    /**
     * Unrecoverable function error: drop its in-flight chains,
     * mark the shadow vrings not-ready, and raise
     * DEVICE_NEEDS_RESET toward the guest driver.
     */
    void failFunction(unsigned fn);

    /** The guest requested a device reset while chains were in
     *  flight; the backend acknowledges via this. */
    GuestMemory &baseMemory() { return *baseMem_; }
    DmaEngine &dma() { return dma_; }
    const IoBondParams &params() const { return params_; }

    // --- Live migration (drain / rebase) ---

    /**
     * Drain: doorbells are deferred at the bridge (counted in
     * .drain.deferred_doorbells) and resync sweeps stand down, so
     * no *new* guest work enters the shadow path while the bond's
     * base-memory side is being re-homed. Work already accepted
     * keeps flowing; queued-but-deferred work is swept up when the
     * drain lifts. The guest itself never stops running.
     */
    void setDrained(bool on);
    bool drained() const { return drained_; }

    /**
     * Invalidate any armed scrub pass. Called when the guest
     * re-homes to another event partition (migration adoption):
     * the pending one-shot stays behind in the old partition's
     * queue and must die there instead of racing the new home.
     */
    void retireScrub();

    /** No transfer in flight and none queued — the settle
     *  condition a migration waits for before snapshotting. */
    bool dmaIdle() const
    {
        return !dma_.busy() && dma_.queued() == 0;
    }

    /** Sweep completions the (possibly dead) backend already
     *  pushed on every shadow used ring back to the guest. */
    void drainCompletions();

    /** Published-but-unfinished chains across all queues. */
    std::size_t inflightChains() const;

    /**
     * Re-home the bond's base-memory side onto @p new_base at
     * @p region_base — the heart of live migration. The bond (it
     * rides the compute board) keeps its guest-facing state;
     * shadow rings and the buffer arena are rebuilt in the new
     * memory and every published-but-unfinished chain is
     * re-mirrored from guest memory (descriptors are device-owned
     * until used, so the guest cannot have touched them) in
     * original submission order — the same replay recoverQueue
     * performs after a backend crash, aimed at a different server.
     * Requires a drained bond and an idle DMA engine; @p done
     * fires once the replay DMA has landed and the shadow avail
     * windows are published for the target's backend.
     */
    void rebase(GuestMemory &new_base, Addr region_base,
                std::function<void()> done);

    std::uint64_t drainDeferredDoorbells() const
    {
        return drainDeferred_.value();
    }

    /** Observe the datapath (used by the quickstart example). */
    void setTracer(Tracer t) { tracer_ = std::move(t); }

    /**
     * Stamp request spans for chains of (fn, q): GuestPost at the
     * doorbell, ShadowSync when the chain is published on the
     * shadow vring, CompleteDma when the used element lands back
     * in guest memory, GuestIrq when the MSI fires. Trace only
     * guest-initiated directions (net tx, blk); rx buffer
     * turnaround would drown request latencies.
     */
    void setQueueTracer(unsigned fn, unsigned q,
                        obs::RequestTracer *t);

    /**
     * Attach the owning guest's flight recorder: the bridge records
     * every doorbell outcome, avail-sync burst, used publish, MSI,
     * fault, and reset, and forwards the recorder to the internal
     * DMA engine for copyv submit/complete events.
     */
    void setFlightRecorder(obs::FlightRecorder *fr)
    {
        flight_ = fr;
        dma_.setFlightRecorder(fr);
    }

    /**
     * Invoked (with the function index) when failFunction raises
     * DEVICE_NEEDS_RESET — the anomaly trigger BmHiveServer turns
     * into a flight-recorder dump. Driver-initiated resets
     * (bring-up, renegotiation) do not fire it.
     */
    void setResetCallback(std::function<void(unsigned)> cb)
    {
        resetCb_ = std::move(cb);
    }

    std::uint64_t notifications() const { return notifies_.value(); }
    std::uint64_t chainsForwarded() const { return chains_.value(); }
    std::uint64_t completionsReturned() const
    {
        return completions_.value();
    }
    std::uint64_t malformedChains() const { return bad_.value(); }

    // --- Adversarial-tenant containment ---

    /**
     * Observe classified guest faults (the containment state
     * machine in BmHiveServer scores and escalates them).
     */
    using GuestFaultCallback =
        std::function<void(fault::GuestFaultKind)>;
    void setGuestFaultCallback(GuestFaultCallback cb)
    {
        guestFaultCb_ = std::move(cb);
    }

    /**
     * Quarantine: every guest doorbell is swallowed at the bridge
     * (counted in .guest.quarantine_drops) until released. Shadow
     * state and in-flight work are untouched — release plus a
     * function reset restores service.
     */
    void setQuarantined(bool on);
    bool quarantined() const { return quarantined_; }

    /** Per-kind and total contained-guest-fault counts. */
    std::uint64_t
    guestFaults(fault::GuestFaultKind k) const
    {
        return guestFaultCounters_[std::size_t(k)]->value();
    }
    std::uint64_t guestFaultsTotal() const
    {
        return guestFaultsTotal_.value();
    }
    std::uint64_t quarantineDrops() const
    {
        return quarantineDrops_.value();
    }

    // --- End-to-end integrity ---

    /**
     * Enable/disable the integrity layer at runtime: ECRC on the
     * internal DMA engine plus the shadow-metadata scrubber. Off,
     * an injected corruption is delivered silently (the pre-PR-8
     * behaviour benches compare against with --integrity=off).
     */
    void setIntegrity(bool on);
    bool integrityEnabled() const { return integrity_; }

    /**
     * Invoked (with the function index) whenever the integrity
     * ladder escalates to a queue reset — ECRC retries exhausted or
     * repeated scrub repairs on one queue. BmHiveServer scores
     * these per server; a persistent pattern marks the whole
     * server unhealthy and triggers a proactive migration.
     */
    void setIntegrityEscalationCallback(std::function<void(unsigned)> cb)
    {
        integrityEscalationCb_ = std::move(cb);
    }

    std::uint64_t scrubRepairs() const
    {
        return scrubRepairs_.value();
    }
    std::uint64_t scrubRuns() const { return scrubRuns_.value(); }
    std::uint64_t integrityQueueResets() const
    {
        return queueResets_.value();
    }
    std::uint64_t metaFaultsInjected() const
    {
        return metaInjected_.value();
    }

  private:
    friend class IoBondFunction;

    struct ChainShadow
    {
        /** (guest addr, shadow addr, len, device-writes). */
        struct Seg
        {
            Addr guestAddr;
            Addr shadowAddr;
            Bytes len;
            bool write;
        };
        std::vector<Seg> segs;
        Addr bufBlock = PoolAllocator::nullAddr;
        Addr indirectBlock = PoolAllocator::nullAddr;
        /** Direct shadow descriptor ids written at mirror time
         *  (empty for indirect chains) — the scrubber re-derives
         *  the expected descriptor bytes from segs + path, never
         *  from guest memory a hostile tenant could rewrite. */
        std::vector<std::uint16_t> path;
        /** Submission order, for crash-recovery replay. */
        std::uint64_t seq = 0;
        /** Absolute avail cursor this chain was published at, once
         *  its publish DMA landed. Chains complete out of order,
         *  so the scrubber can only audit the avail slot through
         *  this recorded position — never by pairing sorted
         *  inflight entries with ring positions. */
        std::uint16_t availPos = 0;
        bool published = false;
    };

    /** One completed chain travelling back to the guest as part of
     *  a batched writeback. */
    struct ReturnedChain
    {
        virtio::VringUsedElem elem;
        Addr bufBlock = PoolAllocator::nullAddr;
        Addr indirectBlock = PoolAllocator::nullAddr;
    };

    struct ShadowQueue
    {
        bool ready = false;
        virtio::VringLayout guestLayout;
        virtio::VringLayout shadowLayout;
        std::uint16_t syncedAvail = 0; ///< guest entries mirrored
        std::uint16_t shadowAvail = 0; ///< published on shadow ring
        std::uint16_t syncedUsed = 0;  ///< shadow used returned
        std::uint16_t guestUsed = 0;   ///< published to the guest
        bool irqPending = false;       ///< batch needs an MSI
        Tick lastDoorbell = 0;         ///< latest guest notify
        /** A post-throttle resync sweep is already scheduled. */
        bool stormResync = false;
        /** Shadow-ring block, allocated once per queue at the
         *  device maximum so renegotiation cannot exhaust the
         *  bump arena. */
        Addr ringBlock = 0;
        bool ringAllocated = false;
        /** Bumped on reset/recovery; DMA completions scheduled
         *  under an older epoch must not touch the rings. */
        std::uint64_t epoch = 0;
        std::uint64_t nextSeq = 0; ///< next ChainShadow::seq
        /** Consecutive scrub passes that found (and repaired)
         *  corrupted shadow metadata on this queue. */
        unsigned scrubStrikes = 0;
        obs::RequestTracer *reqTracer = nullptr;
        std::map<std::uint16_t, ChainShadow> inflight;
    };

    /** Front-end hooks. */
    void guestNotified(IoBondFunction &fn, unsigned q);
    void driverReady(IoBondFunction &fn);
    void functionReset(IoBondFunction &fn);
    /** Guest committed a queue-pair count (set-queue-pairs). */
    void queuePairsSet(IoBondFunction &fn, unsigned pairs);

    /** Mirror new avail entries of (fn, q) into the shadow ring;
     *  returns how many chains were picked up. The whole burst —
     *  payload copies and ring metadata — travels as one
     *  scatter-gather DMA transfer and publishes together. */
    unsigned syncAvail(unsigned fn, unsigned q);
    /** Mirror one chain's descriptors into shadow memory and
     *  append its readable payload segments to the burst's
     *  scatter-gather list; false if malformed or out of arena. */
    bool mirrorChain(unsigned fn, unsigned q, std::uint16_t head,
                     std::vector<DmaEngine::CopySeg> &segs,
                     Bytes &meta);

    /** Fault hook: link flaps, dropped doorbells, function death. */
    bool injectFault(const fault::FaultSpec &spec);
    /** DMA engine dropped a transfer: fail the active function. */
    void onDmaError();
    /** DMA ECRC retries exhausted: reset the active function. */
    void onIntegrityEscalation();
    /** Re-scan every ready queue (post-flap / resync sweep). */
    void rescanReady();

    /** Flip the len field of one shadow descriptor of @p cs (the
     *  DmaCorruptMeta payload: metadata rot the scrubber must
     *  catch, distinct from payload corruption). */
    void corruptShadowMeta(ShadowQueue &sq, std::uint16_t head,
                           const ChainShadow &cs);
    /** Arm the next scrub pass (lazily: only while chains are in
     *  flight, so an idle bond schedules nothing). */
    void scheduleScrub();
    /** One scrub pass over every ready queue. */
    void scrubPass();
    /** Audit one queue's in-flight chains + avail window; returns
     *  the number of fields repaired. */
    unsigned scrubQueue(unsigned fn, unsigned q);

    /** Count + trace + escalate one contained guest fault. */
    void guestFault(fault::GuestFaultKind k);

    void trace(const std::string &msg);

    hw::ComputeBoard &board_;
    /** Pointer, not reference: rebase() re-homes the bond onto a
     *  different base server's memory. */
    GuestMemory *baseMem_;
    IoBondParams params_;
    DmaEngine dma_;
    PoolAllocator pool_;
    BumpAllocator shadowRings_;
    std::vector<std::unique_ptr<IoBondFunction>> functions_;
    /** [fn][q] shadow state. */
    std::vector<std::vector<ShadowQueue>> shadow_;
    /**
     * Doorbell-storm throttle, one bucket per *function* (armed at
     * driver-ready): the budget covers the sum of a function's
     * queues, so a multi-queue guest cannot multiply its doorbell
     * allowance by spreading the storm across queue selectors.
     */
    std::vector<TokenBucket> fnDoorbells_;
    Tracer tracer_;
    std::function<void(unsigned)> readyCb_;
    std::function<void()> doorbellWake_;
    std::function<void(unsigned, unsigned)> queueWake_;
    std::function<void(unsigned, unsigned)> queuePairsCb_;
    std::function<void(unsigned)> resetCb_;
    obs::FlightRecorder *flight_ = nullptr;
    /** Injected PCIe link outage: doorbells are lost until then. */
    Tick linkDownUntil_ = 0;
    /** Injected doorbell-loss budget. */
    std::uint64_t dropDoorbells_ = 0;
    /** Injected shadow-metadata corruption budget (applied to the
     *  next mirrored chains when no chain is live at delivery). */
    std::uint64_t metaCorruptBudget_ = 0;
    bool integrity_ = true;
    bool scrubScheduled_ = false;
    /** Bumped by retireScrub(); armed passes from older epochs
     *  fire as no-ops in whatever queue still holds them. */
    std::uint64_t scrubEpoch_ = 0;
    std::function<void(unsigned)> integrityEscalationCb_;
    /** Function of the most recent guest/backend activity — the
     *  one a failed internal DMA transfer is attributed to. */
    int lastActiveFn_ = -1;
    /** Registry-backed: accessors and exports read the same cell. */
    Counter &notifies_;
    Counter &chains_;
    Counter &completions_;
    Counter &bad_;
    Counter &faultInjected_;
    Counter &faultRecovered_;
    Counter &droppedDoorbells_;
    Counter &drainDeferred_;
    /** One counter per GuestFaultKind (".guest.faults.<kind>"). */
    std::array<Counter *, fault::guestFaultKinds> guestFaultCounters_{};
    Counter &guestFaultsTotal_;
    Counter &quarantineDrops_;
    Counter &scrubRuns_;
    Counter &scrubChecked_;
    Counter &scrubRepairs_;
    Counter &metaInjected_;
    Counter &queueResets_;
    GuestFaultCallback guestFaultCb_;
    bool quarantined_ = false;
    bool drained_ = false;
};

} // namespace iobond
} // namespace bmhive

#endif // BMHIVE_IOBOND_IOBOND_HH

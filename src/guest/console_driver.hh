/**
 * @file
 * Guest virtio-console driver. The paper's BM-Hive supports a
 * console device for users to reach their bm-guest (section
 * 3.4.2); section 3.3 notes IO-Bond extends to additional virtio
 * devices "with only minor changes" because the device logic lives
 * in the front- and back-ends — this driver plus the backend
 * console role are exactly those two ends; IO-Bond itself only
 * contributes one more emulated PCI function.
 *
 * Queue 0 receives host-to-guest input; queue 1 transmits
 * guest-to-host output (the virtio-console port-0 convention).
 */

#ifndef BMHIVE_GUEST_CONSOLE_DRIVER_HH
#define BMHIVE_GUEST_CONSOLE_DRIVER_HH

#include <functional>
#include <string>

#include "guest/virtio_driver.hh"

namespace bmhive {
namespace guest {

class ConsoleDriver : public VirtioDriver
{
  public:
    using InputHandler = std::function<void(const std::string &)>;

    ConsoleDriver(GuestOs &os, int slot);

    /** Initialize and post input buffers. */
    void start(std::uint16_t queue_size = 64);

    /**
     * Write @p text to the console (guest -> hypervisor).
     * @return false if the output ring is full.
     */
    bool write(const std::string &text, hw::CpuExecutor &cpu_ctx);

    /** Host input (hypervisor -> guest) is delivered to @p fn. */
    void setInputHandler(InputHandler fn)
    {
        inputHandler_ = std::move(fn);
    }

    std::uint64_t bytesWritten() const { return txBytes_.value(); }
    std::uint64_t bytesRead() const { return rxBytes_.value(); }

  private:
    void fillRx();
    void txInterrupt();
    void rxInterrupt();

    Addr txArena_ = 0;
    Addr rxArena_ = 0;
    std::vector<std::uint16_t> txFree_;
    std::vector<std::uint16_t> txSlotOfHead_;
    InputHandler inputHandler_;
    Counter txBytes_;
    Counter rxBytes_;

    static constexpr Bytes bufBytes = 256;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_CONSOLE_DRIVER_HH

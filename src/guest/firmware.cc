#include "guest/firmware.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

void
installImage(cloud::Volume &vol, Bytes kernel_bytes,
             const std::string &version)
{
    // Header: magic, version (fixed 16 bytes), kernel sectors.
    std::vector<std::uint8_t> hdr(512, 0);
    for (int i = 0; i < 8; ++i)
        hdr[i] = std::uint8_t(ImageLayout::magic >> (8 * i));
    for (std::size_t i = 0; i < 16 && i < version.size(); ++i)
        hdr[8 + i] = std::uint8_t(version[i]);
    std::uint64_t ksec = (kernel_bytes + 511) / 512;
    for (int i = 0; i < 8; ++i)
        hdr[24 + i] = std::uint8_t(ksec >> (8 * i));
    vol.writeData(ImageLayout::headerSector, hdr);

    // Bootloader: 8 sectors of a fixed pattern.
    std::vector<std::uint8_t> bl(8 * 512, 0xb0);
    vol.writeData(ImageLayout::bootloaderSector, bl);

    // Kernel: deterministic pattern, verified by the firmware.
    std::vector<std::uint8_t> kernel(ksec * 512, 0);
    for (std::uint64_t i = 0; i < kernel_bytes; ++i)
        kernel[i] = kernelByte(i);
    vol.writeData(ImageLayout::kernelSector, kernel);
}

void
VirtioBootFirmware::boot(BootCallback cb)
{
    cb_ = std::move(cb);
    readHeader();
}

void
VirtioBootFirmware::readHeader()
{
    bool ok = blk_.read(
        ImageLayout::headerSector, 512, os_.cpu(0),
        [this](std::uint8_t status, Addr data) {
            if (status != virtio::VIRTIO_BLK_S_OK) {
                finish(false);
                return;
            }
            GuestMemory &m = os_.memory();
            std::uint64_t magic = m.read64(data);
            if (magic != ImageLayout::magic) {
                warn("firmware: bad image magic");
                finish(false);
                return;
            }
            version_.clear();
            for (int i = 0; i < 16; ++i) {
                char c = char(m.read8(data + 8 + Addr(i)));
                if (c)
                    version_.push_back(c);
            }
            kernelSectors_ = m.read64(data + 24);
            // Fetch the bootloader, then stream the kernel.
            blk_.read(ImageLayout::bootloaderSector, 8 * 512,
                      os_.cpu(0),
                      [this](std::uint8_t st, Addr) {
                          if (st != virtio::VIRTIO_BLK_S_OK) {
                              finish(false);
                              return;
                          }
                          fetched_ = 0;
                          readKernelChunk();
                      });
        });
    if (!ok)
        finish(false);
}

void
VirtioBootFirmware::readKernelChunk()
{
    if (fetched_ >= kernelSectors_) {
        finish(contentOk_);
        return;
    }
    std::uint64_t chunk =
        std::min<std::uint64_t>(64, kernelSectors_ - fetched_);
    std::uint64_t at = ImageLayout::kernelSector + fetched_;
    std::uint64_t base_off = fetched_ * 512;
    bool ok = blk_.read(
        at, chunk * 512, os_.cpu(0),
        [this, chunk, base_off](std::uint8_t status, Addr data) {
            if (status != virtio::VIRTIO_BLK_S_OK) {
                finish(false);
                return;
            }
            // Verify a sample of the chunk's bytes.
            GuestMemory &m = os_.memory();
            for (std::uint64_t i = 0; i < chunk * 512; i += 509) {
                if (m.read8(data + i) != kernelByte(base_off + i)) {
                    contentOk_ = false;
                    break;
                }
            }
            fetched_ += chunk;
            readKernelChunk();
        });
    if (!ok)
        finish(false);
}

void
VirtioBootFirmware::finish(bool ok)
{
    if (cb_) {
        auto cb = std::move(cb_);
        cb_ = nullptr;
        cb(ok, version_);
    }
}

} // namespace guest
} // namespace bmhive

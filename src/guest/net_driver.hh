/**
 * @file
 * Guest virtio-net driver: tx with optional kick batching (the
 * standard virtio optimization: publish several buffers, ring the
 * doorbell once) and an rx path that keeps the receive ring
 * replenished and delivers packets to the guest network stack.
 */

#ifndef BMHIVE_GUEST_NET_DRIVER_HH
#define BMHIVE_GUEST_NET_DRIVER_HH

#include <functional>

#include "base/stats.hh"
#include "cloud/packet.hh"
#include "guest/packet_wire.hh"
#include "guest/virtio_driver.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace guest {

class NetDriver : public VirtioDriver
{
  public:
    using RxHandler = std::function<void(const cloud::Packet &)>;

    NetDriver(GuestOs &os, int slot, cloud::MacAddr mac);

    /** Initialize the device and fill the rx ring. */
    void start(std::uint16_t queue_size = 256);

    cloud::MacAddr mac() const { return mac_; }

    /**
     * Queue one packet for transmission.
     * @param kick_now  ring the doorbell immediately; otherwise the
     *        caller batches and calls kickTx() later
     * @param cpu_ctx   vCPU doing the send (charged the doorbell)
     * @return false if the tx ring is full (caller retries after
     *         completions).
     */
    bool sendPacket(const cloud::Packet &pkt, bool kick_now,
                    hw::CpuExecutor &cpu_ctx);

    /** Ring the tx doorbell (after a batch of sendPacket calls). */
    void kickTx(hw::CpuExecutor &cpu_ctx);

    /** Packets are delivered to @p fn as they arrive. */
    void setRxHandler(RxHandler fn) { rxHandler_ = std::move(fn); }

    /**
     * Model the guest network stack's receive work: each packet
     * costs @p per_packet on one of @p workers vCPU contexts
     * (round-robin), and the handler runs after that work. With
     * cost 0 (default) packets are delivered inline from the IRQ.
     */
    void
    setRxProcessing(Tick per_packet, unsigned workers)
    {
        rxCost_ = per_packet;
        rxWorkers_ = workers ? workers : 1;
    }

    /** Free tx slots right now. */
    std::uint16_t txSpace() const;

    std::uint64_t txCompleted() const { return txDone_.value(); }
    std::uint64_t rxDelivered() const { return rxDone_.value(); }
    std::uint64_t resets() const { return resets_.value(); }
    /** Received frames discarded for a bad checksum. */
    std::uint64_t rxCsumDrops() const { return rxCsumDrops_.value(); }

    /**
     * Seal every transmitted frame and verify every received one
     * (drop + count on mismatch). On by default; off restores the
     * pre-integrity wire format semantics for A/B benchmarks.
     */
    void setIntegrity(bool on) { integrity_ = on; }
    bool integrityEnabled() const { return integrity_; }

  private:
    void fillRx();
    void txInterrupt();
    void rxInterrupt();
    void napiPoll();

    /** Slot bookkeeping + rx ring fill, shared by start and reset. */
    void setupRings();

    /**
     * DEVICE_NEEDS_RESET recovery: in-flight tx frames and posted
     * rx buffers died with the old rings; reinitialize on fresh
     * rings (arenas are reused — the ring sizes match) and refill
     * rx. Lost frames are the network's problem, as on real NICs.
     */
    void resetAndReinit();

    /** Per-descriptor-slot buffer base (2 KiB each). */
    Addr txBuf(std::uint16_t slot) const;
    Addr rxBuf(std::uint16_t slot) const;

    cloud::MacAddr mac_;
    RxHandler rxHandler_;
    Addr txArena_ = 0;
    Addr rxArena_ = 0;
    std::vector<std::uint16_t> txFreeSlots_;
    std::vector<std::uint16_t> txSlotOfHead_;
    std::vector<std::uint16_t> rxSlotOfHead_;
    Counter txDone_;
    Counter rxDone_;
    Counter resets_;
    Counter rxCsumDrops_;
    bool integrity_ = true;
    std::uint64_t wanted_ = 0;
    std::uint16_t queueSize_ = 0;
    Tick rxCost_ = 0;
    unsigned rxWorkers_ = 1;
    unsigned rxNext_ = 0;
    bool napiActive_ = false;

    static constexpr Bytes bufBytes = 2048;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_NET_DRIVER_HH

/**
 * @file
 * Guest virtio-net driver: tx with optional kick batching (the
 * standard virtio optimization: publish several buffers, ring the
 * doorbell once) and an rx path that keeps the receive ring
 * replenished and delivers packets to the guest network stack.
 *
 * With VIRTIO_NET_F_MQ negotiated the driver runs several rx/tx
 * queue pairs: tx is spread XPS-style by flow id (a flow always
 * uses the same pair, keeping per-flow order), each pair has its
 * own buffer arenas, MSI vector, and NAPI state, and the committed
 * pair count is written through the device's curr_pairs config
 * field (the ctrl-style set-queue-pairs command). The driver
 * writes its *requested* count raw — a request above the offered
 * maximum is the device's to clamp and count as a guest fault —
 * and then trusts the device's read-back.
 */

#ifndef BMHIVE_GUEST_NET_DRIVER_HH
#define BMHIVE_GUEST_NET_DRIVER_HH

#include <functional>

#include "base/stats.hh"
#include "cloud/packet.hh"
#include "guest/packet_wire.hh"
#include "guest/virtio_driver.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace guest {

class NetDriver : public VirtioDriver
{
  public:
    using RxHandler = std::function<void(const cloud::Packet &)>;

    NetDriver(GuestOs &os, int slot, cloud::MacAddr mac);

    /**
     * Initialize the device and fill the rx ring(s).
     * @param queue_size  ring size to program
     * @param queue_pairs pairs to request: 0 = everything the
     *        device offers; a count above the offer is written
     *        anyway and the device clamps it (contained fault).
     */
    void start(std::uint16_t queue_size = 256,
               unsigned queue_pairs = 0);

    cloud::MacAddr mac() const { return mac_; }

    /** Pair count actually in effect after negotiation. */
    unsigned activeQueuePairs() const { return activePairs_; }

    /**
     * Queue one packet for transmission on the pair its flow id
     * steers to (XPS analog: flow % active pairs).
     * @param kick_now  ring the doorbell immediately; otherwise the
     *        caller batches and calls kickTx() later
     * @param cpu_ctx   vCPU doing the send (charged the doorbell)
     * @return false if that pair's tx ring is full (caller retries
     *         after completions).
     */
    bool sendPacket(const cloud::Packet &pkt, bool kick_now,
                    hw::CpuExecutor &cpu_ctx);

    /** Ring every pending tx doorbell (after a sendPacket batch). */
    void kickTx(hw::CpuExecutor &cpu_ctx);

    /** Packets are delivered to @p fn as they arrive. */
    void setRxHandler(RxHandler fn) { rxHandler_ = std::move(fn); }

    /**
     * Model the guest network stack's receive work: each packet
     * costs @p per_packet on one of @p workers vCPU contexts
     * (round-robin), and the handler runs after that work. With
     * cost 0 (default) packets are delivered inline from the IRQ.
     */
    void
    setRxProcessing(Tick per_packet, unsigned workers)
    {
        rxCost_ = per_packet;
        rxWorkers_ = workers ? workers : 1;
    }

    /** Free tx slots right now (summed over the active pairs). */
    std::uint16_t txSpace() const;

    std::uint64_t txCompleted() const { return txDone_.value(); }
    std::uint64_t rxDelivered() const { return rxDone_.value(); }
    std::uint64_t resets() const { return resets_.value(); }
    /** Received frames discarded for a bad checksum. */
    std::uint64_t rxCsumDrops() const { return rxCsumDrops_.value(); }

    /**
     * Seal every transmitted frame and verify every received one
     * (drop + count on mismatch). On by default; off restores the
     * pre-integrity wire format semantics for A/B benchmarks.
     */
    void setIntegrity(bool on) { integrity_ = on; }
    bool integrityEnabled() const { return integrity_; }

  private:
    /** Per-pair rings, arenas, and NAPI state. */
    struct PairState
    {
        Addr txArena = 0;
        Addr rxArena = 0;
        std::vector<std::uint16_t> txFreeSlots;
        std::vector<std::uint16_t> txSlotOfHead;
        std::vector<std::uint16_t> rxSlotOfHead;
        bool napiActive = false;
    };

    void fillRx(unsigned pair);
    void txInterrupt(unsigned pair);
    void rxInterrupt(unsigned pair);
    void napiPoll(unsigned pair);

    /** Commit the pair count, then slots + rx fill per pair. */
    void setupRings();

    /**
     * DEVICE_NEEDS_RESET recovery: in-flight tx frames and posted
     * rx buffers died with the old rings; reinitialize on fresh
     * rings (arenas are reused — the ring sizes match) and refill
     * rx. Lost frames are the network's problem, as on real NICs.
     */
    void resetAndReinit();

    /** Per-descriptor-slot buffer base (2 KiB each). */
    Addr txBuf(unsigned pair, std::uint16_t slot) const;
    Addr rxBuf(unsigned pair, std::uint16_t slot) const;

    cloud::MacAddr mac_;
    RxHandler rxHandler_;
    std::vector<PairState> pairs_;
    unsigned activePairs_ = 1;
    unsigned requestedPairs_ = 0;
    Counter txDone_;
    Counter rxDone_;
    Counter resets_;
    Counter rxCsumDrops_;
    bool integrity_ = true;
    std::uint64_t wanted_ = 0;
    std::uint16_t queueSize_ = 0;
    Tick rxCost_ = 0;
    unsigned rxWorkers_ = 1;
    unsigned rxNext_ = 0;

    static constexpr Bytes bufBytes = 2048;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_NET_DRIVER_HH

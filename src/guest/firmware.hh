/**
 * @file
 * Boot firmware model. The paper extends the compute board's
 * EFI-based firmware to drive virtio during boot (section 3.2):
 * the bootloader and kernel live in the remote cloud volume and
 * are fetched through virtio-blk before the kernel starts. The
 * same image boots a vm-guest — the cold-migration contract.
 */

#ifndef BMHIVE_GUEST_FIRMWARE_HH
#define BMHIVE_GUEST_FIRMWARE_HH

#include <functional>
#include <string>

#include "cloud/block_service.hh"
#include "guest/blk_driver.hh"
#include "guest/guest_os.hh"

namespace bmhive {
namespace guest {

/** On-disk image layout constants. */
struct ImageLayout
{
    static constexpr std::uint64_t magic = 0x424d484956454947ull;
    static constexpr std::uint64_t headerSector = 0;
    static constexpr std::uint64_t bootloaderSector = 1;
    static constexpr std::uint64_t kernelSector = 9;
};

/**
 * Write a bootable image onto @p vol: header with magic and
 * kernel size, a bootloader, and @p kernel_bytes of "kernel" whose
 * contents are a deterministic pattern the firmware verifies.
 */
void installImage(cloud::Volume &vol, Bytes kernel_bytes,
                  const std::string &version);

/**
 * EFI-like boot flow over a started BlkDriver: read the header,
 * verify the magic, fetch the bootloader, then stream the kernel,
 * verifying contents. Asynchronous; completion via callback.
 */
class VirtioBootFirmware
{
  public:
    using BootCallback =
        std::function<void(bool ok, const std::string &version)>;

    VirtioBootFirmware(GuestOs &os, BlkDriver &blk)
        : os_(os), blk_(blk) {}

    /** Begin the boot sequence. */
    void boot(BootCallback cb);

  private:
    void readHeader();
    void readKernelChunk();
    void finish(bool ok);

    GuestOs &os_;
    BlkDriver &blk_;
    BootCallback cb_;
    std::string version_;
    std::uint64_t kernelSectors_ = 0;
    std::uint64_t fetched_ = 0;
    bool contentOk_ = true;
};

/** Deterministic kernel byte at offset @p i. */
constexpr std::uint8_t
kernelByte(std::uint64_t i)
{
    return std::uint8_t((i * 131) ^ (i >> 8));
}

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_FIRMWARE_HH

#include "guest/console_driver.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

ConsoleDriver::ConsoleDriver(GuestOs &os, int slot)
    : VirtioDriver(os, slot)
{
}

void
ConsoleDriver::start(std::uint16_t queue_size)
{
    initialize(VIRTIO_RING_F_INDIRECT_DESC, queue_size);
    panic_if(numQueues() < 2, "virtio-console needs rx+tx queues");

    std::uint16_t rxn = queue(0).layout().size();
    std::uint16_t txn = queue(1).layout().size();
    rxArena_ = os_.allocator().alloc(Bytes(rxn) * bufBytes, 256);
    txArena_ = os_.allocator().alloc(Bytes(txn) * bufBytes, 256);
    txSlotOfHead_.assign(txn, 0);
    for (std::uint16_t i = 0; i < txn; ++i)
        txFree_.push_back(i);

    onQueueInterrupt(0, [this] { rxInterrupt(); });
    onQueueInterrupt(1, [this] { txInterrupt(); });

    fillRx();
    kickNow(0);
}

void
ConsoleDriver::fillRx()
{
    auto &rxq = queue(0);
    while (rxq.freeDescs() > 0) {
        auto head = rxq.submit(
            {}, {{0, std::uint32_t(bufBytes), true}}, 0);
        if (!head)
            break;
        VringDesc d = rxq.layout().readDesc(os_.memory(), *head);
        d.addr = rxArena_ + Addr(*head) * bufBytes;
        rxq.layout().writeDesc(os_.memory(), *head, d);
    }
}

bool
ConsoleDriver::write(const std::string &text,
                     hw::CpuExecutor &cpu_ctx)
{
    panic_if(text.size() > bufBytes, "console write too long");
    auto &txq = queue(1);
    if (txFree_.empty())
        txInterrupt(); // opportunistic reap
    if (txFree_.empty())
        return false;
    std::uint16_t slot = txFree_.back();
    Addr buf = txArena_ + Addr(slot) * bufBytes;
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    os_.memory().writeBlob(buf, bytes);
    auto head = txq.submit(
        {{buf, std::uint32_t(text.size()), false}}, {}, slot);
    if (!head)
        return false;
    txFree_.pop_back();
    txSlotOfHead_[*head] = slot;
    txBytes_.inc(text.size());
    if (txq.shouldKick())
        kick(1, cpu_ctx);
    return true;
}

void
ConsoleDriver::txInterrupt()
{
    for (const auto &c : queue(1).collectUsed())
        txFree_.push_back(txSlotOfHead_[c.head]);
}

void
ConsoleDriver::rxInterrupt()
{
    auto &rxq = queue(0);
    bool got = false;
    for (const auto &c : rxq.collectUsed()) {
        Addr buf = rxArena_ + Addr(c.head) * bufBytes;
        auto blob = os_.memory().readBlob(buf, c.len);
        rxBytes_.inc(c.len);
        if (inputHandler_)
            inputHandler_(std::string(blob.begin(), blob.end()));
        got = true;
    }
    if (got) {
        fillRx();
        kickNow(0);
    }
}

} // namespace guest
} // namespace bmhive

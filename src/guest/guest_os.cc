#include "guest/guest_os.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

GuestOs::GuestOs(Simulation &sim, std::string name, GuestMemory &mem,
                 pci::PciBus &bus,
                 std::vector<hw::CpuExecutor *> cpus)
    : SimObject(sim, std::move(name)), mem_(mem), bus_(bus),
      alloc_(mem, 0x1000), cpus_(std::move(cpus))
{
    panic_if(cpus_.empty(), this->name(), ": needs >= 1 vCPU");
    bus_.setMsiHandler(
        [this](int slot, unsigned vec) { handleMsi(slot, vec); });
}

hw::CpuExecutor &
GuestOs::cpu(unsigned i)
{
    panic_if(i >= cpus_.size(), name(), ": bad cpu ", i);
    return *cpus_[i];
}

std::vector<int>
GuestOs::enumeratePci(Addr mmio_base)
{
    std::vector<int> found;
    Addr next = mmio_base;
    for (int slot = 0; slot < 32; ++slot) {
        std::uint32_t vendor =
            bus_.configRead(slot, pci::REG_VENDOR_ID, 2);
        if (vendor == 0xffffu)
            continue;
        found.push_back(slot);
        for (int bar = 0; bar < 6; ++bar) {
            auto reg = std::uint16_t(pci::REG_BAR0 + 4 * bar);
            bus_.configWrite(slot, reg, 0xffffffffu, 4);
            std::uint32_t mask = bus_.configRead(slot, reg, 4);
            if (mask == 0)
                continue; // unimplemented BAR
            Bytes size = Bytes(~(mask & ~0xfu)) + 1;
            next = (next + size - 1) & ~(size - 1); // align
            bus_.configWrite(slot, reg, std::uint32_t(next), 4);
            next += size;
        }
        std::uint32_t cmd =
            bus_.configRead(slot, pci::REG_COMMAND, 2);
        bus_.configWrite(slot, pci::REG_COMMAND,
                         cmd | pci::CMD_MEM_SPACE |
                             pci::CMD_BUS_MASTER,
                         2);
    }
    return found;
}

void
GuestOs::registerIrq(int slot, unsigned vec, std::function<void()> fn)
{
    irqTable_[{slot, vec}] = std::move(fn);
}

void
GuestOs::handleMsi(int slot, unsigned vec)
{
    auto it = irqTable_.find({slot, vec});
    if (it == irqTable_.end()) {
        warn(name(), ": spurious MSI slot=", slot, " vec=", vec);
        return;
    }
    irqs_.inc();
    // Interrupt entry + handler dispatch is CPU work on vCPU 0.
    auto fn = it->second;
    cpu(0).run(irqCost_, std::move(fn));
}

} // namespace guest
} // namespace bmhive

/**
 * @file
 * Generic guest-side virtio-pci driver: device initialization
 * (the virtio 1.0 status dance, feature negotiation, queue
 * programming) and the notify doorbell. Net and blk drivers build
 * on this.
 */

#ifndef BMHIVE_GUEST_VIRTIO_DRIVER_HH
#define BMHIVE_GUEST_VIRTIO_DRIVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "guest/guest_os.hh"
#include "virtio/virtio_pci.hh"
#include "virtio/virtqueue.hh"

namespace bmhive {
namespace guest {

class VirtioDriver
{
  public:
    /**
     * @param os    the guest OS this driver runs in
     * @param slot  PCI slot of the device (after enumeratePci)
     */
    VirtioDriver(GuestOs &os, int slot);
    virtual ~VirtioDriver() = default;

    /**
     * Full virtio 1.0 initialization: reset, ACKNOWLEDGE, DRIVER,
     * feature negotiation, queue allocation in guest memory,
     * FEATURES_OK / DRIVER_OK. Performed functionally; the
     * aggregate register-access cost is charged to vCPU 0.
     *
     * @param wanted     driver feature wishlist (masked by offer)
     * @param queue_size ring size to program (<= device max)
     */
    void initialize(std::uint64_t wanted, std::uint16_t queue_size);

    bool initialized() const { return !queues_.empty(); }
    std::uint64_t features() const { return features_; }
    unsigned numQueues() const { return unsigned(queues_.size()); }

    virtio::VirtQueueDriver &queue(unsigned q);

    /**
     * Ring the doorbell for queue @p q on @p cpu_ctx: one MMIO
     * write whose cost is the platform bus's access latency. The
     * write reaches the device when the CPU completes it.
     */
    void kick(unsigned q, hw::CpuExecutor &cpu_ctx);

    /** Functional kick without CPU accounting (tests, firmware). */
    void kickNow(unsigned q);

    /** Register a handler run when queue @p q's MSI fires. */
    void onQueueInterrupt(unsigned q, std::function<void()> fn);

    /**
     * DEVICE_NEEDS_RESET is set: the device hit an unrecoverable
     * error and is dead until the driver resets and reinitializes
     * it. Interrupt handlers check this before touching rings.
     */
    bool deviceNeedsReset();

    int slot() const { return slot_; }
    Addr bar0() const { return bar0_; }

  protected:
    /**
     * Drop all queue state so initialize() can run again after
     * DEVICE_NEEDS_RESET. Old ring/indirect arenas stay allocated
     * in the bump-allocated guest heap (bounded by reset count);
     * a real guest would return pages to its allocator.
     */
    void teardownForReset() { queues_.clear(); }

    std::uint32_t cfgRead(Addr off, unsigned size);
    void cfgWrite(Addr off, std::uint32_t v, unsigned size);

    GuestOs &os_;
    int slot_;
    Addr bar0_ = 0;
    std::uint64_t features_ = 0;
    std::vector<std::unique_ptr<virtio::VirtQueueDriver>> queues_;
    unsigned regAccesses_ = 0; ///< accesses made during init
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_VIRTIO_DRIVER_HH

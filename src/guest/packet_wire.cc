#include "guest/packet_wire.hh"

#include "virtio/virtio_net.hh"

namespace bmhive {
namespace guest {

void
packPacket(GuestMemory &m, Addr a, const cloud::Packet &p)
{
    m.write64(a + 0, p.src);
    m.write64(a + 8, p.dst);
    m.write64(a + 16, p.len);
    m.write64(a + 24, p.created);
    m.write64(a + 32, p.seq);
    // Flow identity and checksum share the last word: both are
    // 32-bit, and growing the 48-byte wire format would outgrow
    // the rx buffers guests already post.
    m.write64(a + 40,
              std::uint64_t(p.csum) | (std::uint64_t(p.flow) << 32));
}

cloud::Packet
unpackPacket(const GuestMemory &m, Addr a)
{
    cloud::Packet p;
    p.src = m.read64(a + 0);
    p.dst = m.read64(a + 8);
    p.len = m.read64(a + 16);
    p.created = m.read64(a + 24);
    p.seq = m.read64(a + 32);
    std::uint64_t w = m.read64(a + 40);
    p.csum = std::uint32_t(w);
    p.flow = std::uint32_t(w >> 32);
    return p;
}

std::uint32_t
writePacketToRxChain(GuestMemory &m, const virtio::DescChain &chain,
                     const cloud::Packet &p)
{
    // The device needs hdr + metadata contiguously in the first
    // writable segment (our guests post single-segment rx buffers).
    for (const auto &seg : chain.segs) {
        if (!seg.deviceWrites)
            continue;
        Bytes need = virtio::VirtioNetHdr::wireSize + packetWireBytes;
        if (seg.len < need)
            return 0;
        virtio::VirtioNetHdr hdr;
        hdr.numBuffers = 1;
        hdr.writeTo(m, seg.addr);
        packPacket(m, seg.addr + virtio::VirtioNetHdr::wireSize, p);
        return std::uint32_t(virtio::VirtioNetHdr::wireSize +
                             p.len);
    }
    return 0;
}

TxExtract
readPacketFromTxChain(const GuestMemory &m,
                      const virtio::DescChain &chain)
{
    TxExtract out;
    for (const auto &seg : chain.segs) {
        if (seg.deviceWrites)
            continue;
        Bytes need = virtio::VirtioNetHdr::wireSize + packetWireBytes;
        if (seg.len < need)
            return out;
        out.pkt = unpackPacket(
            m, seg.addr + virtio::VirtioNetHdr::wireSize);
        out.ok = true;
        return out;
    }
    return out;
}

} // namespace guest
} // namespace bmhive

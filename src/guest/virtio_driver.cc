#include "guest/virtio_driver.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

VirtioDriver::VirtioDriver(GuestOs &os, int slot)
    : os_(os), slot_(slot)
{
    bar0_ = Addr(os_.bus().configRead(slot, pci::REG_BAR0, 4)) &
            ~Addr(0xf);
    fatal_if(bar0_ == 0,
             "virtio driver on slot ", slot,
             ": BAR0 not programmed (run enumeratePci first)");
}

std::uint32_t
VirtioDriver::cfgRead(Addr off, unsigned size)
{
    ++regAccesses_;
    return os_.bus().memRead(bar0_ + off, size);
}

void
VirtioDriver::cfgWrite(Addr off, std::uint32_t v, unsigned size)
{
    ++regAccesses_;
    os_.bus().memWrite(bar0_ + off, v, size);
}

void
VirtioDriver::initialize(std::uint64_t wanted,
                         std::uint16_t queue_size)
{
    panic_if(initialized(), "driver initialized twice");
    regAccesses_ = 0;

    // Reset, then acknowledge the device and announce a driver.
    cfgWrite(COMMON_STATUS, 0, 1);
    cfgWrite(COMMON_STATUS, STATUS_ACKNOWLEDGE, 1);
    cfgWrite(COMMON_STATUS, STATUS_ACKNOWLEDGE | STATUS_DRIVER, 1);

    // Read the 64-bit device feature space.
    cfgWrite(COMMON_DFSELECT, 0, 4);
    std::uint64_t offered = cfgRead(COMMON_DF, 4);
    cfgWrite(COMMON_DFSELECT, 1, 4);
    offered |= std::uint64_t(cfgRead(COMMON_DF, 4)) << 32;

    fatal_if(!(offered & VIRTIO_F_VERSION_1),
             "device does not offer VIRTIO_F_VERSION_1");
    features_ = (wanted | VIRTIO_F_VERSION_1) & offered;

    cfgWrite(COMMON_GFSELECT, 0, 4);
    cfgWrite(COMMON_GF, std::uint32_t(features_), 4);
    cfgWrite(COMMON_GFSELECT, 1, 4);
    cfgWrite(COMMON_GF, std::uint32_t(features_ >> 32), 4);

    cfgWrite(COMMON_STATUS,
             STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK,
             1);
    fatal_if(!(cfgRead(COMMON_STATUS, 1) & STATUS_FEATURES_OK),
             "device rejected the negotiated features");

    bool indirect = features_ & VIRTIO_RING_F_INDIRECT_DESC;
    bool event_idx = features_ & VIRTIO_RING_F_EVENT_IDX;

    // Program every queue the device exposes.
    unsigned nq = cfgRead(COMMON_NUMQ, 2);
    for (unsigned q = 0; q < nq; ++q) {
        cfgWrite(COMMON_Q_SELECT, q, 2);
        auto max = std::uint16_t(cfgRead(COMMON_Q_SIZE, 2));
        std::uint16_t size = std::min(queue_size, max);
        cfgWrite(COMMON_Q_SIZE, size, 2);
        cfgWrite(COMMON_Q_MSIX, q, 2);

        // Allocate the ring (and an indirect-table arena) in guest
        // memory and hand the addresses to the device.
        Addr base = os_.allocator().alloc(
            VringLayout::bytesNeeded(size), 4096);
        VringLayout layout = VringLayout::contiguous(size, base);
        Addr ind = 0;
        if (indirect) {
            ind = os_.allocator().alloc(
                Bytes(size) * 16 * vringDescSize, 16);
        }

        cfgWrite(COMMON_Q_DESCLO, std::uint32_t(layout.descAddr()),
                 4);
        cfgWrite(COMMON_Q_DESCHI,
                 std::uint32_t(layout.descAddr() >> 32), 4);
        cfgWrite(COMMON_Q_AVAILLO,
                 std::uint32_t(layout.availAddr()), 4);
        cfgWrite(COMMON_Q_AVAILHI,
                 std::uint32_t(layout.availAddr() >> 32), 4);
        cfgWrite(COMMON_Q_USEDLO, std::uint32_t(layout.usedAddr()),
                 4);
        cfgWrite(COMMON_Q_USEDHI,
                 std::uint32_t(layout.usedAddr() >> 32), 4);
        cfgWrite(COMMON_Q_ENABLE, 1, 2);

        queues_.push_back(std::make_unique<VirtQueueDriver>(
            os_.memory(), layout, indirect, ind, event_idx));
        // Ring-metadata corruption the driver detects while
        // reaping (scribbled chain links) lands in a per-device
        // counter rather than the log alone.
        queues_.back()->setMetaFaultCounter(
            &os_.metrics().counter(os_.name() + ".virtio" +
                                   std::to_string(slot_) +
                                   ".integrity.meta_faults"));
    }

    cfgWrite(COMMON_STATUS,
             STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK |
                 STATUS_DRIVER_OK,
             1);

    // Charge the whole init conversation to vCPU 0 in one lump.
    os_.cpu(0).charge(Tick(regAccesses_) *
                      os_.bus().accessLatency());
}

VirtQueueDriver &
VirtioDriver::queue(unsigned q)
{
    panic_if(q >= queues_.size(), "bad queue index ", q);
    return *queues_[q];
}

void
VirtioDriver::kick(unsigned q, hw::CpuExecutor &cpu_ctx)
{
    panic_if(q >= queues_.size(), "kick on bad queue ", q);
    // The doorbell write occupies the CPU for one bus access; the
    // device sees it when the write completes.
    cpu_ctx.run(os_.bus().accessLatency(),
                [this, q] { kickNow(q); });
}

void
VirtioDriver::kickNow(unsigned q)
{
    os_.bus().memWrite(bar0_ + notifyRegionOffset, q, 4);
}

void
VirtioDriver::onQueueInterrupt(unsigned q, std::function<void()> fn)
{
    os_.registerIrq(slot_, q, std::move(fn));
}

bool
VirtioDriver::deviceNeedsReset()
{
    return cfgRead(COMMON_STATUS, 1) & STATUS_NEEDS_RESET;
}

} // namespace guest
} // namespace bmhive

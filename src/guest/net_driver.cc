#include "guest/net_driver.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

NetDriver::NetDriver(GuestOs &os, int slot, cloud::MacAddr mac)
    : VirtioDriver(os, slot), mac_(mac)
{
}

void
NetDriver::start(std::uint16_t queue_size, unsigned queue_pairs)
{
    wanted_ = VIRTIO_NET_F_MAC | VIRTIO_NET_F_STATUS |
              VIRTIO_NET_F_MQ | VIRTIO_RING_F_INDIRECT_DESC;
    queueSize_ = queue_size;
    requestedPairs_ = queue_pairs;
    initialize(wanted_, queue_size);
    panic_if(numQueues() < 2, "virtio-net needs rx+tx queues");
    setupRings();
}

void
NetDriver::setupRings()
{
    // Commit the pair count through device config (the ctrl-style
    // set-queue-pairs). The requested count is written raw: asking
    // for more than the offer is the device's to clamp (and count
    // as a contained guest fault); what the device reads back is
    // what the driver runs with.
    activePairs_ = 1;
    if (features_ & VIRTIO_NET_F_MQ) {
        unsigned max_pairs = cfgRead(
            deviceCfgOffset + VirtioNetConfig::maxPairsOffset, 2);
        unsigned want = requestedPairs_ ? requestedPairs_
                                        : max_pairs;
        if (want != 1) {
            cfgWrite(deviceCfgOffset +
                         VirtioNetConfig::currPairsOffset,
                     want, 2);
        }
        activePairs_ = cfgRead(
            deviceCfgOffset + VirtioNetConfig::currPairsOffset, 2);
        if (activePairs_ < 1)
            activePairs_ = 1;
    }
    panic_if(numQueues() < 2 * activePairs_,
             "virtio-net device exposes fewer queues than pairs");

    if (pairs_.size() < activePairs_)
        pairs_.resize(activePairs_);
    for (unsigned p = 0; p < activePairs_; ++p) {
        PairState &ps = pairs_[p];
        auto &rxq = queue(netRxQueue(p));
        auto &txq = queue(netTxQueue(p));
        // Arenas are allocated once per pair and survive resets:
        // the ring sizes match across reinitializations.
        if (ps.rxArena == 0) {
            ps.rxArena = os_.allocator().alloc(
                Bytes(rxq.layout().size()) * bufBytes, 4096);
            ps.txArena = os_.allocator().alloc(
                Bytes(txq.layout().size()) * bufBytes, 4096);
            onQueueInterrupt(netRxQueue(p),
                             [this, p] { rxInterrupt(p); });
            onQueueInterrupt(netTxQueue(p),
                             [this, p] { txInterrupt(p); });
        }
        ps.napiActive = false;
        ps.txSlotOfHead.assign(txq.layout().size(), 0);
        ps.rxSlotOfHead.assign(rxq.layout().size(), 0);
        ps.txFreeSlots.clear();
        for (std::uint16_t i = 0; i < ps.txSlotOfHead.size(); ++i)
            ps.txFreeSlots.push_back(i);
        // Like Linux virtio-net, run tx without completion
        // interrupts: buffers are reaped in the xmit path.
        txq.setNoInterrupt(true);

        fillRx(p);
        kickNow(netRxQueue(p));
    }
}

void
NetDriver::resetAndReinit()
{
    teardownForReset();
    initialize(wanted_, queueSize_);
    resets_.inc();
    setupRings();
}

Addr
NetDriver::txBuf(unsigned pair, std::uint16_t slot) const
{
    return pairs_[pair].txArena + Addr(slot) * bufBytes;
}

Addr
NetDriver::rxBuf(unsigned pair, std::uint16_t slot) const
{
    return pairs_[pair].rxArena + Addr(slot) * bufBytes;
}

void
NetDriver::fillRx(unsigned pair)
{
    auto &rxq = queue(netRxQueue(pair));
    PairState &ps = pairs_[pair];
    // Post one 2 KiB writable buffer per free descriptor; slot
    // number mirrors the chosen head (single-desc chains).
    while (rxq.freeDescs() > 0) {
        // Peek which head will be used: submit and record after.
        std::vector<Segment> in = {{0, std::uint32_t(bufBytes),
                                    true}};
        // Address depends on head; reserve a throwaway, then fix.
        auto head = rxq.submit({}, in, /*cookie=*/0);
        if (!head)
            break;
        // Rewrite the descriptor with the slot-specific address.
        std::uint16_t slot = *head;
        VringDesc d = rxq.layout().readDesc(os_.memory(), slot);
        d.addr = rxBuf(pair, slot);
        rxq.layout().writeDesc(os_.memory(), slot, d);
        ps.rxSlotOfHead[*head] = slot;
    }
}

bool
NetDriver::sendPacket(const cloud::Packet &pkt, bool kick_now,
                      hw::CpuExecutor &cpu_ctx)
{
    // XPS analog: a flow sticks to one pair, preserving per-flow
    // order while different flows spread over the pairs.
    unsigned pair =
        activePairs_ > 1 ? pkt.flow % activePairs_ : 0;
    PairState &ps = pairs_[pair];
    auto &txq = queue(netTxQueue(pair));
    // Opportunistic reap, as virtio-net does in its xmit path:
    // completed tx buffers are recycled without an interrupt.
    if (ps.txFreeSlots.empty())
        txInterrupt(pair);
    if (ps.txFreeSlots.empty())
        return false;
    std::uint16_t slot = ps.txFreeSlots.back();

    Addr buf = txBuf(pair, slot);
    VirtioNetHdr hdr;
    hdr.writeTo(os_.memory(), buf);
    cloud::Packet sealed = pkt;
    if (integrity_)
        cloud::sealPacket(sealed);
    packPacket(os_.memory(), buf + VirtioNetHdr::wireSize, sealed);

    Bytes payload = VirtioNetHdr::wireSize + packetWireBytes;
    Bytes claim = VirtioNetHdr::wireSize + pkt.len;
    // The descriptor claims the full frame length so bandwidth
    // models see real sizes; metadata occupies the head of it.
    std::vector<Segment> out = {
        {buf, std::uint32_t(std::max(payload, claim)), false}};
    auto head = txq.submit(out, {}, slot);
    if (!head)
        return false;
    ps.txFreeSlots.pop_back();
    ps.txSlotOfHead[*head] = slot;

    if (kick_now && txq.shouldKick())
        kick(netTxQueue(pair), cpu_ctx);
    return true;
}

void
NetDriver::kickTx(hw::CpuExecutor &cpu_ctx)
{
    for (unsigned p = 0; p < activePairs_; ++p) {
        if (queue(netTxQueue(p)).shouldKick())
            kick(netTxQueue(p), cpu_ctx);
    }
}

std::uint16_t
NetDriver::txSpace() const
{
    std::size_t space = 0;
    for (unsigned p = 0; p < activePairs_; ++p)
        space += pairs_[p].txFreeSlots.size();
    return std::uint16_t(space);
}

void
NetDriver::txInterrupt(unsigned pair)
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    PairState &ps = pairs_[pair];
    for (const auto &c : queue(netTxQueue(pair)).collectUsed()) {
        ps.txFreeSlots.push_back(std::uint16_t(c.cookie));
        txDone_.inc();
    }
}

void
NetDriver::rxInterrupt(unsigned pair)
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    // NAPI: mask further rx interrupts and switch to polling until
    // the ring runs dry; one interrupt can serve a long burst.
    // Each pair runs its own NAPI instance, as Linux does.
    PairState &ps = pairs_[pair];
    if (ps.napiActive)
        return;
    ps.napiActive = true;
    queue(netRxQueue(pair)).setNoInterrupt(true);
    napiPoll(pair);
}

void
NetDriver::napiPoll(unsigned pair)
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    if (pair >= activePairs_)
        return; // pair count shrank across a reset
    PairState &ps = pairs_[pair];
    auto &rxq = queue(netRxQueue(pair));
    unsigned drained = 0;
    for (const auto &c : rxq.collectUsed()) {
        std::uint16_t slot = ps.rxSlotOfHead[c.head];
        Addr buf = rxBuf(pair, slot);
        cloud::Packet pkt = unpackPacket(
            os_.memory(), buf + VirtioNetHdr::wireSize);
        if (integrity_ && !cloud::packetCsumOk(pkt)) {
            // Corrupted on the memory path between the backend and
            // us: drop like a NIC discarding a bad-FCS frame. The
            // buffer is recycled by the fillRx below.
            rxCsumDrops_.inc();
            ++drained;
            continue;
        }
        rxDone_.inc();
        if (rxHandler_) {
            if (rxCost_ == 0) {
                rxHandler_(pkt);
            } else {
                // Stack processing on a worker context; the
                // handler observes the packet when it completes.
                unsigned w = 1 + (rxNext_++ % rxWorkers_);
                os_.cpu(w % os_.cpuCount())
                    .run(rxCost_, [this, pkt] {
                        if (rxHandler_)
                            rxHandler_(pkt);
                    });
            }
        }
        ++drained;
    }
    if (drained > 0) {
        fillRx(pair);
        kickNow(netRxQueue(pair));
        // Stay in polling mode: softirq re-poll after a budgetary
        // slice (charged to the interrupt CPU).
        os_.cpu(0).charge(nsToTicks(300));
        auto *ev = new OneShotEvent([this, pair] { napiPoll(pair); },
                                    "napi.repoll");
        os_.eventq().schedule(ev, os_.curTick() + usToTicks(2));
        return;
    }
    // Ring dry: unmask interrupts and close the race window. The
    // comparison must use the queue's own consumption cursor, not
    // a delivered-packet count: a faulty device completion (bad
    // id, unowned head) advances used->idx without delivering a
    // packet, and counting deliveries would re-arm forever.
    ps.napiActive = false;
    rxq.setNoInterrupt(false);
    if (rxq.layout().usedIdx(os_.memory()) != rxq.usedIdxSeen()) {
        rxInterrupt(pair);
    }
}

} // namespace guest
} // namespace bmhive

#include "guest/net_driver.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

NetDriver::NetDriver(GuestOs &os, int slot, cloud::MacAddr mac)
    : VirtioDriver(os, slot), mac_(mac)
{
}

void
NetDriver::start(std::uint16_t queue_size)
{
    wanted_ = VIRTIO_NET_F_MAC | VIRTIO_NET_F_STATUS |
              VIRTIO_RING_F_INDIRECT_DESC;
    queueSize_ = queue_size;
    initialize(wanted_, queue_size);
    panic_if(numQueues() < 2, "virtio-net needs rx+tx queues");

    std::uint16_t rxn = queue(NET_RXQ).layout().size();
    std::uint16_t txn = queue(NET_TXQ).layout().size();
    rxArena_ = os_.allocator().alloc(Bytes(rxn) * bufBytes, 4096);
    txArena_ = os_.allocator().alloc(Bytes(txn) * bufBytes, 4096);

    onQueueInterrupt(NET_RXQ, [this] { rxInterrupt(); });
    onQueueInterrupt(NET_TXQ, [this] { txInterrupt(); });

    setupRings();
}

void
NetDriver::setupRings()
{
    txSlotOfHead_.assign(queue(NET_TXQ).layout().size(), 0);
    rxSlotOfHead_.assign(queue(NET_RXQ).layout().size(), 0);
    txFreeSlots_.clear();
    for (std::uint16_t i = 0; i < txSlotOfHead_.size(); ++i)
        txFreeSlots_.push_back(i);
    // Like Linux virtio-net, run tx without completion interrupts:
    // buffers are reaped opportunistically in the xmit path.
    queue(NET_TXQ).setNoInterrupt(true);

    fillRx();
    kickNow(NET_RXQ);
}

void
NetDriver::resetAndReinit()
{
    napiActive_ = false;
    teardownForReset();
    initialize(wanted_, queueSize_);
    resets_.inc();
    setupRings();
}

Addr
NetDriver::txBuf(std::uint16_t slot) const
{
    return txArena_ + Addr(slot) * bufBytes;
}

Addr
NetDriver::rxBuf(std::uint16_t slot) const
{
    return rxArena_ + Addr(slot) * bufBytes;
}

void
NetDriver::fillRx()
{
    auto &rxq = queue(NET_RXQ);
    // Post one 2 KiB writable buffer per free descriptor; slot
    // number mirrors the chosen head (single-desc chains).
    while (rxq.freeDescs() > 0) {
        // Peek which head will be used: submit and record after.
        std::vector<Segment> in = {{0, std::uint32_t(bufBytes),
                                    true}};
        // Address depends on head; reserve a throwaway, then fix.
        auto head = rxq.submit({}, in, /*cookie=*/0);
        if (!head)
            break;
        // Rewrite the descriptor with the slot-specific address.
        std::uint16_t slot = *head;
        VringDesc d = rxq.layout().readDesc(os_.memory(), slot);
        d.addr = rxBuf(slot);
        rxq.layout().writeDesc(os_.memory(), slot, d);
        rxSlotOfHead_[*head] = slot;
    }
}

bool
NetDriver::sendPacket(const cloud::Packet &pkt, bool kick_now,
                      hw::CpuExecutor &cpu_ctx)
{
    auto &txq = queue(NET_TXQ);
    // Opportunistic reap, as virtio-net does in its xmit path:
    // completed tx buffers are recycled without an interrupt.
    if (txFreeSlots_.empty())
        txInterrupt();
    if (txFreeSlots_.empty())
        return false;
    std::uint16_t slot = txFreeSlots_.back();

    Addr buf = txBuf(slot);
    VirtioNetHdr hdr;
    hdr.writeTo(os_.memory(), buf);
    cloud::Packet sealed = pkt;
    if (integrity_)
        cloud::sealPacket(sealed);
    packPacket(os_.memory(), buf + VirtioNetHdr::wireSize, sealed);

    Bytes payload = VirtioNetHdr::wireSize + packetWireBytes;
    Bytes claim = VirtioNetHdr::wireSize + pkt.len;
    // The descriptor claims the full frame length so bandwidth
    // models see real sizes; metadata occupies the head of it.
    std::vector<Segment> out = {
        {buf, std::uint32_t(std::max(payload, claim)), false}};
    auto head = txq.submit(out, {}, slot);
    if (!head)
        return false;
    txFreeSlots_.pop_back();
    txSlotOfHead_[*head] = slot;

    if (kick_now && txq.shouldKick())
        kick(NET_TXQ, cpu_ctx);
    return true;
}

void
NetDriver::kickTx(hw::CpuExecutor &cpu_ctx)
{
    if (queue(NET_TXQ).shouldKick())
        kick(NET_TXQ, cpu_ctx);
}

std::uint16_t
NetDriver::txSpace() const
{
    return std::uint16_t(txFreeSlots_.size());
}

void
NetDriver::txInterrupt()
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    for (const auto &c : queue(NET_TXQ).collectUsed()) {
        txFreeSlots_.push_back(std::uint16_t(c.cookie));
        txDone_.inc();
    }
}

void
NetDriver::rxInterrupt()
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    // NAPI: mask further rx interrupts and switch to polling until
    // the ring runs dry; one interrupt can serve a long burst.
    if (napiActive_)
        return;
    napiActive_ = true;
    queue(NET_RXQ).setNoInterrupt(true);
    napiPoll();
}

void
NetDriver::napiPoll()
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    auto &rxq = queue(NET_RXQ);
    unsigned drained = 0;
    for (const auto &c : rxq.collectUsed()) {
        std::uint16_t slot = rxSlotOfHead_[c.head];
        Addr buf = rxBuf(slot);
        cloud::Packet pkt = unpackPacket(
            os_.memory(), buf + VirtioNetHdr::wireSize);
        if (integrity_ && !cloud::packetCsumOk(pkt)) {
            // Corrupted on the memory path between the backend and
            // us: drop like a NIC discarding a bad-FCS frame. The
            // buffer is recycled by the fillRx below.
            rxCsumDrops_.inc();
            ++drained;
            continue;
        }
        rxDone_.inc();
        if (rxHandler_) {
            if (rxCost_ == 0) {
                rxHandler_(pkt);
            } else {
                // Stack processing on a worker context; the
                // handler observes the packet when it completes.
                unsigned w = 1 + (rxNext_++ % rxWorkers_);
                os_.cpu(w % os_.cpuCount())
                    .run(rxCost_, [this, pkt] {
                        if (rxHandler_)
                            rxHandler_(pkt);
                    });
            }
        }
        ++drained;
    }
    if (drained > 0) {
        fillRx();
        kickNow(NET_RXQ);
        // Stay in polling mode: softirq re-poll after a budgetary
        // slice (charged to the interrupt CPU).
        os_.cpu(0).charge(nsToTicks(300));
        auto *ev = new OneShotEvent([this] { napiPoll(); },
                                    "napi.repoll");
        os_.eventq().schedule(ev, os_.curTick() + usToTicks(2));
        return;
    }
    // Ring dry: unmask interrupts and close the race window. The
    // comparison must use the queue's own consumption cursor, not
    // a delivered-packet count: a faulty device completion (bad
    // id, unowned head) advances used->idx without delivering a
    // packet, and counting deliveries would re-arm forever.
    napiActive_ = false;
    queue(NET_RXQ).setNoInterrupt(false);
    if (rxq.layout().usedIdx(os_.memory()) != rxq.usedIdxSeen()) {
        rxInterrupt();
    }
}

} // namespace guest
} // namespace bmhive

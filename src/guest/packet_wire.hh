/**
 * @file
 * On-the-wire serialization of cloud::Packet metadata into guest
 * buffers, plus helpers backends use to move packets through
 * descriptor chains. The metadata really travels through simulated
 * memory — through vrings, IO-Bond DMA syncs, and backend copies —
 * so a corrupted path shows up as a corrupted packet in tests.
 */

#ifndef BMHIVE_GUEST_PACKET_WIRE_HH
#define BMHIVE_GUEST_PACKET_WIRE_HH

#include "cloud/packet.hh"
#include "mem/guest_memory.hh"
#include "virtio/virtqueue.hh"

namespace bmhive {
namespace guest {

/** Serialized packet metadata size (fits any frame >= 64B). The
 *  frame checksum travels with the metadata, so a corruption
 *  anywhere on the memory path lands in verifiable bytes. */
constexpr Bytes packetWireBytes = 48;

/** Write packet metadata at @p a. */
void packPacket(GuestMemory &m, Addr a, const cloud::Packet &p);

/** Read packet metadata from @p a. */
cloud::Packet unpackPacket(const GuestMemory &m, Addr a);

/**
 * Device-side helper: place a received packet into the writable
 * segments of an rx chain, preceded by a virtio_net_hdr.
 * @return bytes written, or 0 if the chain is too small.
 */
std::uint32_t writePacketToRxChain(GuestMemory &m,
                                   const virtio::DescChain &chain,
                                   const cloud::Packet &p);

/**
 * Device-side helper: extract the packet from a tx chain (skipping
 * the leading virtio_net_hdr).
 * @return the packet; ok=false if malformed.
 */
struct TxExtract
{
    bool ok = false;
    cloud::Packet pkt;
};
TxExtract readPacketFromTxChain(const GuestMemory &m,
                                const virtio::DescChain &chain);

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_PACKET_WIRE_HH

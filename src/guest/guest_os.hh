/**
 * @file
 * GuestOs: the guest-side software stack shared by bm-guests and
 * vm-guests — exactly the paper's interoperability story (section
 * 3.1): the same VM image, kernel, and virtio drivers run on either
 * platform; only the transport underneath differs (IO-Bond vs. a
 * virtual PCI bus).
 *
 * GuestOs owns the guest memory allocator, enumerates the PCI bus
 * the platform provides, dispatches MSIs to driver handlers, and
 * exposes the vCPU executors the workloads run on.
 */

#ifndef BMHIVE_GUEST_GUEST_OS_HH
#define BMHIVE_GUEST_GUEST_OS_HH

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/paper_constants.hh"
#include "hw/cpu_executor.hh"
#include "mem/guest_memory.hh"
#include "pci/pci_device.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace guest {

class GuestOs : public SimObject
{
  public:
    GuestOs(Simulation &sim, std::string name, GuestMemory &mem,
            pci::PciBus &bus, std::vector<hw::CpuExecutor *> cpus);

    GuestMemory &memory() { return mem_; }
    BumpAllocator &allocator() { return alloc_; }
    pci::PciBus &bus() { return bus_; }

    hw::CpuExecutor &cpu(unsigned i);
    unsigned cpuCount() const { return unsigned(cpus_.size()); }

    /**
     * Enumerate the PCI bus: probe every slot, size the BARs, and
     * assign MMIO addresses from @p mmio_base upward; enable
     * memory decoding and bus mastering. Returns occupied slots.
     */
    std::vector<int> enumeratePci(Addr mmio_base = 0xe0000000);

    /** Route MSIs of (slot, vector) to @p fn. */
    void registerIrq(int slot, unsigned vec,
                     std::function<void()> fn);

    /**
     * Cost charged to cpu(0) for taking one interrupt. Native MSI
     * on a bm-guest; injection via the hypervisor on a vm-guest.
     */
    void setIrqCost(Tick cost) { irqCost_ = cost; }
    Tick irqCost() const { return irqCost_; }

    std::uint64_t irqsTaken() const { return irqs_.value(); }

  private:
    void handleMsi(int slot, unsigned vec);

    GuestMemory &mem_;
    pci::PciBus &bus_;
    BumpAllocator alloc_;
    std::vector<hw::CpuExecutor *> cpus_;
    std::map<std::pair<int, unsigned>, std::function<void()>>
        irqTable_;
    Tick irqCost_ = paper::guestIrqCost;
    Counter irqs_;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_GUEST_OS_HH

/**
 * @file
 * Guest virtio-blk driver: read/write/flush requests built as
 * [header (device-reads)] + [data segments] + [status byte
 * (device-writes)] chains, completion callbacks on MSI. The
 * firmware boot path (boot-over-virtio-blk, paper section 3.2) and
 * the fio workload both drive this driver.
 */

#ifndef BMHIVE_GUEST_BLK_DRIVER_HH
#define BMHIVE_GUEST_BLK_DRIVER_HH

#include <functional>

#include "base/stats.hh"
#include "guest/virtio_driver.hh"
#include "virtio/virtio_blk.hh"

namespace bmhive {
namespace guest {

class BlkDriver : public VirtioDriver
{
  public:
    /** status, guest-visible data address (reads), request tick. */
    using IoCallback =
        std::function<void(std::uint8_t status, Addr data)>;

    BlkDriver(GuestOs &os, int slot);

    /** Initialize and size the request arena. */
    void start(std::uint16_t queue_size = 256,
               Bytes max_io = 128 * KiB);

    /** Device capacity in 512-byte sectors (from device config). */
    std::uint64_t capacitySectors();

    /**
     * Issue a read of @p len bytes at @p sector. Data lands in a
     * driver-owned bounce buffer whose address is passed to @p cb.
     * @param cpu_ctx  vCPU issuing the request
     * @return false if the ring or arena is exhausted.
     */
    bool read(std::uint64_t sector, Bytes len,
              hw::CpuExecutor &cpu_ctx, IoCallback cb);

    /**
     * Issue a write of @p len bytes at @p sector. If @p data is
     * non-null it is copied into the bounce buffer first.
     */
    bool write(std::uint64_t sector, Bytes len,
               const std::vector<std::uint8_t> *data,
               hw::CpuExecutor &cpu_ctx, IoCallback cb);

    std::uint64_t completed() const { return done_.value(); }
    std::uint64_t errors() const { return errors_.value(); }
    std::uint64_t resets() const { return resets_.value(); }

  private:
    struct Slot
    {
        Addr hdr;    ///< 16-byte request header
        Addr data;   ///< bounce buffer (max_io bytes)
        Addr status; ///< 1-byte status
        IoCallback cb;
    };

    bool submitIo(std::uint32_t type, std::uint64_t sector,
                  Bytes len, const std::vector<std::uint8_t> *data,
                  hw::CpuExecutor &cpu_ctx, IoCallback cb);
    void completionInterrupt();

    /**
     * DEVICE_NEEDS_RESET recovery: fail every outstanding request
     * with VIRTIO_BLK_S_IOERR (each callback fires exactly once)
     * and bring the device back up through the full virtio init
     * dance on fresh rings. The bounce arenas are reused.
     */
    void resetAndReinit();

    std::vector<Slot> slots_;
    std::vector<std::uint16_t> freeSlots_;
    std::vector<std::uint16_t> slotOfHead_;
    Bytes maxIo_ = 0;
    std::uint64_t wanted_ = 0;
    std::uint16_t queueSize_ = 0;
    Counter done_;
    Counter errors_;
    Counter resets_;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_BLK_DRIVER_HH

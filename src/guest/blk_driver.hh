/**
 * @file
 * Guest virtio-blk driver: read/write/flush requests built as
 * [header (device-reads)] + [data segments] + [status byte
 * (device-writes)] chains, completion callbacks on MSI. The
 * firmware boot path (boot-over-virtio-blk, paper section 3.2) and
 * the fio workload both drive this driver.
 *
 * With VIRTIO_BLK_F_MQ negotiated the driver uses every submission
 * queue the device exposes, blk-mq style: the issuing vCPU selects
 * the queue (vCPU index modulo queue count), so I/O from different
 * vCPUs never contends on one ring, and each queue has its own MSI
 * vector. Request slots are shared across queues; each remembers
 * the queue it was submitted on so retries stay on it.
 */

#ifndef BMHIVE_GUEST_BLK_DRIVER_HH
#define BMHIVE_GUEST_BLK_DRIVER_HH

#include <functional>

#include "base/stats.hh"
#include "guest/virtio_driver.hh"
#include "virtio/virtio_blk.hh"

namespace bmhive {
namespace guest {

class BlkDriver : public VirtioDriver
{
  public:
    /** status, guest-visible data address (reads), request tick. */
    using IoCallback =
        std::function<void(std::uint8_t status, Addr data)>;

    BlkDriver(GuestOs &os, int slot);

    /** Initialize and size the request arena. */
    void start(std::uint16_t queue_size = 256,
               Bytes max_io = 128 * KiB);

    /** Device capacity in 512-byte sectors (from device config). */
    std::uint64_t capacitySectors();

    /**
     * Issue a read of @p len bytes at @p sector. Data lands in a
     * driver-owned bounce buffer whose address is passed to @p cb.
     * @param cpu_ctx  vCPU issuing the request
     * @return false if the ring or arena is exhausted.
     */
    bool read(std::uint64_t sector, Bytes len,
              hw::CpuExecutor &cpu_ctx, IoCallback cb);

    /**
     * Issue a write of @p len bytes at @p sector. If @p data is
     * non-null it is copied into the bounce buffer first.
     */
    bool write(std::uint64_t sector, Bytes len,
               const std::vector<std::uint8_t> *data,
               hw::CpuExecutor &cpu_ctx, IoCallback cb);

    std::uint64_t completed() const { return done_.value(); }
    std::uint64_t errors() const { return errors_.value(); }
    std::uint64_t resets() const { return resets_.value(); }

    /** Submission queues in use after negotiation. */
    unsigned activeQueues() const { return activeQueues_; }

    /**
     * T10-DIF protection: writes carry per-sector tags after the
     * payload, reads are verified on completion, and a failed
     * request is resubmitted (bounded) before its error reaches
     * the caller. Set before issuing I/O; must match the backend.
     */
    void setIntegrity(bool on) { integrity_ = on; }
    bool integrityEnabled() const { return integrity_; }

    /** Read completions whose DIF tags failed verification. */
    std::uint64_t integrityDetects() const
    {
        return difDetects_.value();
    }
    /** Requests resubmitted by the integrity layer. */
    std::uint64_t integrityRetries() const
    {
        return difRetries_.value();
    }

  private:
    struct Slot
    {
        Addr hdr;    ///< 16-byte request header
        Addr data;   ///< bounce buffer (max_io bytes + DIF tags)
        Addr status; ///< 1-byte status
        IoCallback cb;
        /** Request shape, kept for integrity resubmission. */
        std::uint32_t type = 0;
        std::uint64_t sector = 0;
        Bytes len = 0;
        unsigned retries = 0;
        unsigned q = 0; ///< submission queue this request rides
    };

    /** Integrity resubmissions before the error reaches the
     *  caller; each resubmit re-DMAs from the pristine bounce
     *  buffer (writes) or re-fetches from storage (reads). */
    static constexpr unsigned maxIntegrityRetries = 2;

    /** Sentinel written to the status byte before every submit: a
     *  completion that still carries it means the device never
     *  wrote status, so it must be treated as an I/O error rather
     *  than a stale VIRTIO_BLK_S_OK. No real status uses 0xFF. */
    static constexpr std::uint8_t statusUnwritten = 0xFF;

    bool submitIo(std::uint32_t type, std::uint64_t sector,
                  Bytes len, const std::vector<std::uint8_t> *data,
                  hw::CpuExecutor &cpu_ctx, IoCallback cb);
    void completionInterrupt(unsigned q);
    /** Re-queue the request parked in @p slot (on its queue). */
    bool resubmit(std::uint16_t slot);
    /** blk-mq map: the issuing vCPU picks the queue. */
    unsigned queueForCpu(const hw::CpuExecutor &cpu_ctx) const;

    /**
     * DEVICE_NEEDS_RESET recovery: fail every outstanding request
     * with VIRTIO_BLK_S_IOERR (each callback fires exactly once)
     * and bring the device back up through the full virtio init
     * dance on fresh rings. The bounce arenas are reused.
     */
    void resetAndReinit();

    std::vector<Slot> slots_;
    std::vector<std::uint16_t> freeSlots_;
    /** Per-queue head -> slot map. */
    std::vector<std::vector<std::uint16_t>> slotOfHead_;
    unsigned activeQueues_ = 1;
    Bytes maxIo_ = 0;
    std::uint64_t wanted_ = 0;
    std::uint16_t queueSize_ = 0;
    Counter done_;
    Counter errors_;
    Counter resets_;
    Counter difDetects_;
    Counter difRetries_;
    bool integrity_ = false;
};

} // namespace guest
} // namespace bmhive

#endif // BMHIVE_GUEST_BLK_DRIVER_HH

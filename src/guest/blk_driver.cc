#include "guest/blk_driver.hh"

#include "base/logging.hh"
#include "cloud/dif.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

BlkDriver::BlkDriver(GuestOs &os, int slot) : VirtioDriver(os, slot)
{
}

void
BlkDriver::start(std::uint16_t queue_size, Bytes max_io)
{
    wanted_ = VIRTIO_BLK_F_SEG_MAX | VIRTIO_BLK_F_FLUSH |
              VIRTIO_BLK_F_MQ | VIRTIO_RING_F_INDIRECT_DESC;
    queueSize_ = queue_size;
    initialize(wanted_, queue_size);
    maxIo_ = max_io;

    // blk-mq: use every submission queue the device exposes (the
    // config field is authoritative when F_MQ is negotiated).
    activeQueues_ = 1;
    if (features_ & VIRTIO_BLK_F_MQ) {
        activeQueues_ = cfgRead(
            deviceCfgOffset + VirtioBlkConfig::numQueuesOffset, 2);
        activeQueues_ =
            std::max(1u, std::min(activeQueues_, numQueues()));
    }

    std::uint16_t n = queue(0).layout().size();
    // Keep the in-flight window modest so the bounce arena stays
    // small; 64 concurrent requests far exceeds fio's 8 jobs.
    std::uint16_t inflight = std::min<std::uint16_t>(n, 64);
    slots_.resize(inflight);
    slotOfHead_.assign(activeQueues_, {});
    for (unsigned q = 0; q < activeQueues_; ++q) {
        slotOfHead_[q].assign(queue(q).layout().size(), 0);
        onQueueInterrupt(q,
                         [this, q] { completionInterrupt(q); });
    }
    for (std::uint16_t i = 0; i < inflight; ++i) {
        slots_[i].hdr = os_.allocator().alloc(
            VirtioBlkReqHdr::wireSize, 16);
        // Headroom for DIF tags so integrity can be toggled
        // without reshaping the arena.
        slots_[i].data = os_.allocator().alloc(
            cloud::difWireBytes(max_io), 512);
        slots_[i].status = os_.allocator().alloc(1, 1);
        freeSlots_.push_back(i);
    }
}

std::uint64_t
BlkDriver::capacitySectors()
{
    std::uint64_t lo = cfgRead(
        deviceCfgOffset + VirtioBlkConfig::capacityOffset, 4);
    std::uint64_t hi = cfgRead(
        deviceCfgOffset + VirtioBlkConfig::capacityOffset + 4, 4);
    return lo | (hi << 32);
}

bool
BlkDriver::read(std::uint64_t sector, Bytes len,
                hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    return submitIo(VIRTIO_BLK_T_IN, sector, len, nullptr, cpu_ctx,
                    std::move(cb));
}

bool
BlkDriver::write(std::uint64_t sector, Bytes len,
                 const std::vector<std::uint8_t> *data,
                 hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    return submitIo(VIRTIO_BLK_T_OUT, sector, len, data, cpu_ctx,
                    std::move(cb));
}

unsigned
BlkDriver::queueForCpu(const hw::CpuExecutor &cpu_ctx) const
{
    if (activeQueues_ <= 1)
        return 0;
    // The issuing vCPU owns a queue (vCPU index mod queue count),
    // the blk-mq software->hardware context map.
    for (unsigned i = 0; i < os_.cpuCount(); ++i) {
        if (&os_.cpu(i) == &cpu_ctx)
            return i % activeQueues_;
    }
    return 0; // non-vCPU context (firmware, tests): queue 0
}

bool
BlkDriver::submitIo(std::uint32_t type, std::uint64_t sector,
                    Bytes len, const std::vector<std::uint8_t> *data,
                    hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    panic_if(len > maxIo_, "I/O larger than the arena: ", len);
    panic_if(len % blkSectorSize != 0,
             "I/O must be sector-aligned: ", len);
    if (freeSlots_.empty())
        return false;
    std::uint16_t slot = freeSlots_.back();
    Slot &s = slots_[slot];

    VirtioBlkReqHdr hdr;
    hdr.type = type;
    hdr.sector = sector;
    hdr.writeTo(os_.memory(), s.hdr);
    if (type == VIRTIO_BLK_T_OUT && data != nullptr) {
        panic_if(data->size() > len, "write data exceeds length");
        os_.memory().writeBlob(s.data, *data);
    }
    if (integrity_ && type == VIRTIO_BLK_T_OUT && len > 0) {
        // Seal the payload: per-sector guard/ref tags appended
        // after it, verified by the backend before persisting.
        auto payload = os_.memory().readBlob(s.data, len);
        os_.memory().writeBlob(
            s.data + len, cloud::difBuildTags(payload, sector));
    }

    s.type = type;
    s.sector = sector;
    s.len = len;
    s.retries = 0;
    s.q = queueForCpu(cpu_ctx);

    if (!resubmit(slot))
        return false;
    freeSlots_.pop_back();
    s.cb = std::move(cb);

    if (queue(s.q).shouldKick())
        kick(s.q, cpu_ctx);
    return true;
}

bool
BlkDriver::resubmit(std::uint16_t slot)
{
    Slot &s = slots_[slot];
    // Poison the status byte before every attempt: a completion
    // whose status still reads as the sentinel means the device
    // never wrote it (lost or malformed on the device side), which
    // must surface as an error — the arena's initial zero would
    // otherwise read as a stale VIRTIO_BLK_S_OK.
    os_.memory().write8(s.status, statusUnwritten);
    bool is_write = (s.type == VIRTIO_BLK_T_OUT);
    auto data_len = std::uint32_t(
        integrity_ ? cloud::difWireBytes(s.len) : s.len);
    std::vector<Segment> out = {
        {s.hdr, std::uint32_t(VirtioBlkReqHdr::wireSize), false}};
    std::vector<Segment> in;
    if (s.len > 0) {
        Segment dataseg{s.data, data_len, !is_write};
        if (is_write)
            out.push_back(dataseg);
        else
            in.push_back(dataseg);
    }
    in.push_back({s.status, 1, true});

    auto head = queue(s.q).submit(out, in, slot);
    if (!head)
        return false;
    slotOfHead_[s.q][*head] = slot;
    return true;
}

void
BlkDriver::resetAndReinit()
{
    // Whatever was in flight on the old ring is gone. Reinitialize
    // first so the failure callbacks fired below can resubmit onto
    // the fresh ring.
    std::vector<std::pair<IoCallback, Addr>> failed;
    for (auto &s : slots_) {
        if (s.cb) {
            failed.emplace_back(std::move(s.cb), s.data);
            s.cb = nullptr;
        }
    }
    teardownForReset();
    initialize(wanted_, queueSize_);
    slotOfHead_.assign(activeQueues_, {});
    for (unsigned q = 0; q < activeQueues_; ++q)
        slotOfHead_[q].assign(queue(q).layout().size(), 0);
    freeSlots_.clear();
    for (std::uint16_t i = 0; i < slots_.size(); ++i)
        freeSlots_.push_back(i);
    resets_.inc();
    for (auto &[cb, data] : failed) {
        errors_.inc();
        done_.inc();
        cb(VIRTIO_BLK_S_IOERR, data);
    }
}

void
BlkDriver::completionInterrupt(unsigned q)
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    bool resubmitted = false;
    for (const auto &c : queue(q).collectUsed()) {
        std::uint16_t slot = slotOfHead_[q][c.head];
        Slot &s = slots_[slot];
        std::uint8_t status = os_.memory().read8(s.status);
        if (status == statusUnwritten)
            status = VIRTIO_BLK_S_IOERR;
        if (integrity_ && status == VIRTIO_BLK_S_OK &&
            s.type == VIRTIO_BLK_T_IN && s.len > 0) {
            // Verify the returned payload against its tags: a
            // corruption on the completion path (shadow ring, DMA
            // back to us) surfaces here instead of in the data.
            auto buf = os_.memory().readBlob(
                s.data, cloud::difWireBytes(s.len));
            if (cloud::difCheck(buf, s.sector) >= 0) {
                difDetects_.inc();
                status = VIRTIO_BLK_S_IOERR;
            }
        }
        if (integrity_ && status != VIRTIO_BLK_S_OK &&
            s.retries < maxIntegrityRetries) {
            // Heal before the caller sees anything: the bounce
            // buffer still holds the pristine payload (writes),
            // and storage still holds the good copy (reads).
            ++s.retries;
            difRetries_.inc();
            if (resubmit(slot)) {
                resubmitted = true;
                continue;
            }
            // Ring full: fall through and report the error.
        }
        done_.inc();
        if (status != VIRTIO_BLK_S_OK)
            errors_.inc();
        IoCallback cb = std::move(s.cb);
        s.cb = nullptr;
        freeSlots_.push_back(slot);
        if (cb)
            cb(status, s.data);
    }
    if (resubmitted && queue(q).shouldKick())
        kick(q, os_.cpu(0));
}

} // namespace guest
} // namespace bmhive

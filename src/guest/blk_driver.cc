#include "guest/blk_driver.hh"

#include "base/logging.hh"

namespace bmhive {
namespace guest {

using namespace virtio;

BlkDriver::BlkDriver(GuestOs &os, int slot) : VirtioDriver(os, slot)
{
}

void
BlkDriver::start(std::uint16_t queue_size, Bytes max_io)
{
    wanted_ = VIRTIO_BLK_F_SEG_MAX | VIRTIO_BLK_F_FLUSH |
              VIRTIO_RING_F_INDIRECT_DESC;
    queueSize_ = queue_size;
    initialize(wanted_, queue_size);
    maxIo_ = max_io;

    std::uint16_t n = queue(0).layout().size();
    // Keep the in-flight window modest so the bounce arena stays
    // small; 64 concurrent requests far exceeds fio's 8 jobs.
    std::uint16_t inflight = std::min<std::uint16_t>(n, 64);
    slots_.resize(inflight);
    slotOfHead_.assign(n, 0);
    for (std::uint16_t i = 0; i < inflight; ++i) {
        slots_[i].hdr = os_.allocator().alloc(
            VirtioBlkReqHdr::wireSize, 16);
        slots_[i].data = os_.allocator().alloc(max_io, 512);
        slots_[i].status = os_.allocator().alloc(1, 1);
        freeSlots_.push_back(i);
    }
    onQueueInterrupt(0, [this] { completionInterrupt(); });
}

std::uint64_t
BlkDriver::capacitySectors()
{
    std::uint64_t lo = cfgRead(
        deviceCfgOffset + VirtioBlkConfig::capacityOffset, 4);
    std::uint64_t hi = cfgRead(
        deviceCfgOffset + VirtioBlkConfig::capacityOffset + 4, 4);
    return lo | (hi << 32);
}

bool
BlkDriver::read(std::uint64_t sector, Bytes len,
                hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    return submitIo(VIRTIO_BLK_T_IN, sector, len, nullptr, cpu_ctx,
                    std::move(cb));
}

bool
BlkDriver::write(std::uint64_t sector, Bytes len,
                 const std::vector<std::uint8_t> *data,
                 hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    return submitIo(VIRTIO_BLK_T_OUT, sector, len, data, cpu_ctx,
                    std::move(cb));
}

bool
BlkDriver::submitIo(std::uint32_t type, std::uint64_t sector,
                    Bytes len, const std::vector<std::uint8_t> *data,
                    hw::CpuExecutor &cpu_ctx, IoCallback cb)
{
    panic_if(len > maxIo_, "I/O larger than the arena: ", len);
    panic_if(len % blkSectorSize != 0,
             "I/O must be sector-aligned: ", len);
    if (freeSlots_.empty())
        return false;
    std::uint16_t slot = freeSlots_.back();
    Slot &s = slots_[slot];

    VirtioBlkReqHdr hdr;
    hdr.type = type;
    hdr.sector = sector;
    hdr.writeTo(os_.memory(), s.hdr);
    if (type == VIRTIO_BLK_T_OUT && data != nullptr) {
        panic_if(data->size() > len, "write data exceeds length");
        os_.memory().writeBlob(s.data, *data);
    }

    bool is_write = (type == VIRTIO_BLK_T_OUT);
    std::vector<Segment> out = {
        {s.hdr, std::uint32_t(VirtioBlkReqHdr::wireSize), false}};
    std::vector<Segment> in;
    if (len > 0) {
        Segment dataseg{s.data, std::uint32_t(len), !is_write};
        if (is_write)
            out.push_back(dataseg);
        else
            in.push_back(dataseg);
    }
    in.push_back({s.status, 1, true});

    auto head = queue(0).submit(out, in, slot);
    if (!head)
        return false;
    freeSlots_.pop_back();
    s.cb = std::move(cb);
    slotOfHead_[*head] = slot;

    if (queue(0).shouldKick())
        kick(0, cpu_ctx);
    return true;
}

void
BlkDriver::resetAndReinit()
{
    // Whatever was in flight on the old ring is gone. Reinitialize
    // first so the failure callbacks fired below can resubmit onto
    // the fresh ring.
    std::vector<std::pair<IoCallback, Addr>> failed;
    for (auto &s : slots_) {
        if (s.cb) {
            failed.emplace_back(std::move(s.cb), s.data);
            s.cb = nullptr;
        }
    }
    teardownForReset();
    initialize(wanted_, queueSize_);
    slotOfHead_.assign(queue(0).layout().size(), 0);
    freeSlots_.clear();
    for (std::uint16_t i = 0; i < slots_.size(); ++i)
        freeSlots_.push_back(i);
    resets_.inc();
    for (auto &[cb, data] : failed) {
        errors_.inc();
        done_.inc();
        cb(VIRTIO_BLK_S_IOERR, data);
    }
}

void
BlkDriver::completionInterrupt()
{
    if (deviceNeedsReset()) {
        resetAndReinit();
        return;
    }
    for (const auto &c : queue(0).collectUsed()) {
        std::uint16_t slot = slotOfHead_[c.head];
        Slot &s = slots_[slot];
        std::uint8_t status = os_.memory().read8(s.status);
        if (status != VIRTIO_BLK_S_OK)
            errors_.inc();
        done_.inc();
        IoCallback cb = std::move(s.cb);
        s.cb = nullptr;
        freeSlots_.push_back(slot);
        if (cb)
            cb(status, s.data);
    }
}

} // namespace guest
} // namespace bmhive

/**
 * @file
 * Umbrella header: everything a downstream user of the BM-Hive
 * library needs. Include this and link against the `bmhive`
 * CMake target.
 *
 *   #include "bmhive.hh"
 *
 *   bmhive::Simulation sim(42);
 *   bmhive::cloud::VSwitch vswitch(sim, "vswitch");
 *   bmhive::cloud::BlockService storage(sim, "storage");
 *   bmhive::core::BmHiveServer server(sim, "srv", vswitch,
 *                                     &storage);
 *   auto &guest = server.provision(
 *       bmhive::core::InstanceCatalog::evaluated(), 0xA11CE);
 *
 * Individual module headers remain available for finer-grained
 * includes; see README.md for the module map.
 */

#ifndef BMHIVE_BMHIVE_HH
#define BMHIVE_BMHIVE_HH

// Foundations.
#include "base/logging.hh"
#include "base/paper_constants.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/token_bucket.hh"
#include "base/units.hh"
#include "sim/eventq.hh"
#include "sim/sim_object.hh"

// Memory and interconnect substrates.
#include "mem/dma_engine.hh"
#include "mem/guest_memory.hh"
#include "mem/pool_allocator.hh"
#include "pci/config_space.hh"
#include "pci/pci_device.hh"

// Virtio.
#include "virtio/virtio_blk.hh"
#include "virtio/virtio_net.hh"
#include "virtio/virtio_pci.hh"
#include "virtio/virtqueue.hh"
#include "virtio/vring.hh"

// Cloud services.
#include "cloud/block_service.hh"
#include "cloud/packet.hh"
#include "cloud/rate_limiter.hh"
#include "cloud/vswitch.hh"

// Guest software stack.
#include "guest/blk_driver.hh"
#include "guest/console_driver.hh"
#include "guest/firmware.hh"
#include "guest/guest_os.hh"
#include "guest/net_driver.hh"

// The BM-Hive platform and the KVM baseline.
#include "core/bmhive_server.hh"
#include "core/cost_model.hh"
#include "core/instance_catalog.hh"
#include "hv/bm_hypervisor.hh"
#include "hw/compute_board.hh"
#include "hw/cpu_model.hh"
#include "hw/power.hh"
#include "iobond/iobond.hh"
#include "vmsim/nested.hh"
#include "vmsim/vm_guest.hh"

// Fleet and workload tooling.
#include "fleet/fleet_sim.hh"
#include "workloads/app_server.hh"
#include "workloads/fio.hh"
#include "workloads/guest_iface.hh"
#include "workloads/net_perf.hh"
#include "workloads/spec.hh"

#endif // BMHIVE_BMHIVE_HH

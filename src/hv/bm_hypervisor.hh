/**
 * @file
 * BmHypervisor: the user-space bare-metal hypervisor process.
 * One process per bm-guest (paper section 3.2: "Every
 * bm-hypervisor process provides service to one bm-guest only for
 * better isolation of back-end virtio resource").
 *
 * Unlike a vm-hypervisor it virtualizes nothing: it manages the
 * guest's life cycle through the PCIe interface (power, firmware
 * verification) and runs the poll-mode virtio backend over
 * IO-Bond's shadow vrings, bridging to the cloud vSwitch and block
 * service.
 */

#ifndef BMHIVE_HV_BM_HYPERVISOR_HH
#define BMHIVE_HV_BM_HYPERVISOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/block_service.hh"
#include "cloud/vswitch.hh"
#include "hv/io_service.hh"
#include "hw/compute_board.hh"
#include "iobond/iobond.hh"
#include "mq/queue_pollable.hh"
#include "obs/request_tracer.hh"
#include "sched/poll_scheduler.hh"

namespace bmhive {
namespace hv {

class BmHypervisor : public SimObject
{
  public:
    /**
     * @param board    the guest's compute board
     * @param bond     the IO-Bond bridging the board to the base
     * @param core     base-board core running this process's PMD
     * @param vswitch  the server's DPDK vSwitch
     * @param mac      the guest NIC's MAC (vSwitch port address)
     * @param storage  cloud storage (may be null: no blk function)
     * @param volume   the guest's volume (when storage given)
     * @param rate_limited  apply the section 4.1 instance limits
     */
    BmHypervisor(Simulation &sim, std::string name,
                 hw::ComputeBoard &board, iobond::IoBond &bond,
                 hw::CpuExecutor &core, cloud::VSwitch &vswitch,
                 cloud::MacAddr mac,
                 cloud::BlockService *storage = nullptr,
                 cloud::Volume *volume = nullptr,
                 bool rate_limited = true);
    ~BmHypervisor() override;

    /** Power the compute board on (PCIe power control). */
    void powerOnGuest();
    /** Power the board off and stop the backend. */
    void powerOffGuest();

    /**
     * Wire the backend to the shadow vrings. Call after the guest
     * driver has completed initialization (DRIVER_OK); returns
     * false if no shadow queue is ready yet.
     */
    bool connectBackends();

    /**
     * Run this process's backend under a shared poll scheduler on
     * @p core_index instead of a dedicated busy-poll loop. Must be
     * called before connectBackends(); every service generation
     * (respawn, live upgrade) re-registers itself, and IO-Bond
     * doorbells post wakes toward the scheduler.
     */
    void useScheduler(sched::PollScheduler &s, unsigned core_index);

    /**
     * Containment lever forwarded to the scheduler: 1.0 normal,
     * fractional deprioritized (Suspect), 0 starved (Quarantined).
     * No-op under dedicated polling.
     */
    void setPollWeight(double w);

    /**
     * Shared-mode liveness: work is posted but the scheduler has
     * not visited this backend for @p window — the per-pollable
     * progress signal the watchdog consumes.
     */
    bool pollWedged(Tick window) const;

    /** Scheduler core this guest's backend is bound to (shared
     *  mode only; meaningless under dedicated polling). */
    unsigned schedCore() const { return schedCore_; }
    bool scheduled() const { return sched_ != nullptr; }

    /**
     * Negotiated passthrough queue mode: each net pair / blk queue
     * binds 1:1 to a dedicated backend poller with no shared DWRR
     * dispatch stage in between (IO-Bond shadow-sync and copyv
     * batching still apply). Takes effect when the queues register
     * (connect, respawn, migration); deprioritizing the guest below
     * full weight — Suspect or Quarantined — demotes the queues
     * back to shared scheduling, and restoring full weight
     * re-promotes them. Shared-scheduler mode only.
     */
    void setMqPassthrough(bool on);
    bool mqPassthrough() const { return passthroughWanted_; }
    /** Queue units currently bound to dedicated pollers. */
    unsigned passthroughQueues() const;
    /** Per-queue scheduling in effect (MQ device under a shared
     *  scheduler). */
    bool perQueueScheduled() const { return !queueRegs_.empty(); }

    /**
     * Apply a guest firmware update; refused unless signed by the
     * provider key.
     */
    bool updateGuestFirmware(const hw::FirmwareImage &fw);

    /**
     * Orthus-style live upgrade (paper section 6): replace this
     * process's backend with a freshly constructed one while the
     * guest keeps running. New work is held while in-flight block
     * I/O quiesces, then the new service adopts all ring state and
     * buffered traffic. @p done receives the service downtime.
     */
    void liveUpgrade(std::function<void(Tick downtime)> done);

    /** Guest console output is delivered to @p sink. */
    void setConsoleSink(
        std::function<void(const std::string &)> sink)
    {
        consoleSink_ = std::move(sink);
    }

    /** Send input to the guest console. */
    void consoleInput(const std::string &text)
    {
        service_->consoleInput(text);
    }

    /**
     * Trace every request through the full Fig. 6 path: doorbell,
     * shadow sync, poll pickup, service, completion DMA, MSI.
     * Spans land in per-stage latency recorders under
     * "<name>.net.stage.*" / "<name>.blk.stage.*" and, when the
     * simulation's TraceSink is enabled, as Chrome trace events.
     * Cheap enough to leave on; off by default anyway.
     */
    void enableIoTracing();

    /** Per-stage tracers; null until enableIoTracing(). */
    obs::RequestTracer *netTracer() { return netTracer_.get(); }
    obs::RequestTracer *blkTracer() { return blkTracer_.get(); }

    /**
     * Attach the guest's flight recorder. Wires the current shared
     * scheduler registration for SchedVisit events (and re-wires on
     * every respawn); respawn itself records a Respawn event.
     */
    void setFlightRecorder(obs::FlightRecorder *fr);

    /**
     * The bm-hypervisor process dies: polling stops and everything
     * it had in flight is invalidated. Per-guest blast radius only
     * — other guests' processes are untouched (the paper's
     * one-process-per-guest isolation argument).
     */
    void crash();

    /**
     * Start a replacement process after a crash: republish the
     * dead process's unfinished shadow-vring work via IO-Bond's
     * recovery path, then attach a fresh service whose device
     * views resume from the rings' live indices. The watchdog in
     * BmHiveServer calls this when a guest's heartbeat stops.
     */
    void respawn();

    /**
     * Stop taking new work (migration drain). In-flight block I/O
     * keeps completing; the service restarts via migrateTo() on
     * the target server, or respawn() rolls it back on the source
     * if the migration aborts.
     */
    void quiesce() { service_->stop(); }

    /**
     * Re-home this process onto another base server: respawn minus
     * the recoverQueue (IoBond::rebase already republished the
     * in-flight window into the target's memory). The same
     * BmHypervisor object survives — its vSwitch port, tracers,
     * and retired service generations ride along — but the PMD
     * now runs on @p core and the fresh service generation's
     * device views resume from the rebased shadow rings. Pass a
     * null @p sched for a dedicated poll loop on the target.
     */
    void migrateTo(hw::CpuExecutor &core,
                   sched::PollScheduler *sched, unsigned core_index);

    /**
     * Move this guest's NIC port onto another server's vSwitch
     * (per-server-switch fleets: migration re-homes the port along
     * with the PMD). The old port is detached, its MAC forgotten,
     * and a fresh port with the same MAC is added to @p sw. No-op
     * when already attached to @p sw.
     */
    void rebindVSwitch(cloud::VSwitch &sw);

    bool crashed() const { return crashed_; }
    unsigned respawns() const { return respawnCount_; }
    /** Completed migrateTo() re-homings. */
    unsigned migrations() const { return migrations_; }
    /** When the last crash happened (recovery-time accounting). */
    Tick crashedAt() const { return crashedAt_; }

    /** Completed live upgrades. */
    unsigned upgrades() const { return upgrades_; }

    VirtioIoService &service() { return *service_; }
    cloud::PortId port() const { return port_; }
    bool connected() const { return connected_; }

    /**
     * DIF protection on the blk backend: applied to the current
     * service generation and to every future one (respawn,
     * migration, live upgrade), so a crash can't silently drop
     * the protection.
     */
    void setBlkIntegrity(bool on);
    bool blkIntegrity() const { return blkIntegrity_; }

    /** Provider firmware-signing key (shared by the fleet). */
    static constexpr std::uint64_t providerKey = 0xa11baba;

  private:
    hw::ComputeBoard &board_;
    iobond::IoBond &bond_;
    cloud::VSwitch *vswitch_;
    cloud::MacAddr mac_;
    cloud::BlockService *storage_;
    cloud::Volume *volume_;
    bool rateLimited_;
    cloud::PortId port_;
    std::unique_ptr<VirtioIoService> service_;
    std::vector<std::unique_ptr<VirtioIoService>> retired_;
    std::function<void(const std::string &)> consoleSink_;
    hw::CpuExecutor *core_ = nullptr;
    IoServiceParams serviceParams_;
    sched::PollScheduler *sched_ = nullptr;
    unsigned schedCore_ = 0;
    sched::PollScheduler::Handle handle_;
    double pollWeight_ = 1.0;

    /**
     * One per-queue scheduling unit: a net pair or blk submission
     * queue registered with the shared scheduler (DWRR schedules
     * queues, not guests) or bound 1:1 to a passthrough poller.
     */
    struct QueueReg
    {
        std::unique_ptr<mq::QueuePollable> pollable;
        sched::PollScheduler::Handle handle; ///< shared mode
        std::unique_ptr<mq::PassthroughPoller> pass;
        unsigned core = 0; ///< scheduler core index
        bool net = false;  ///< net pair vs blk queue
        unsigned idx = 0;  ///< pair / queue index
    };
    std::vector<QueueReg> queueRegs_;
    /** Console as its own small unit on the home core. */
    sched::PollScheduler::Handle conHandle_;
    std::unique_ptr<mq::QueuePollable> conPollable_;
    bool passthroughWanted_ = false;
    bool passthroughActive_ = false;
    bool connected_ = false;
    bool blkIntegrity_ = false;
    unsigned upgrades_ = 0;
    unsigned migrations_ = 0;
    bool crashed_ = false;
    Tick crashedAt_ = 0;
    unsigned respawnCount_ = 0;
    Counter &faultInjected_;
    Counter &respawns_;
    Counter &mqQueueRegs_;
    Counter &mqPassBinds_;
    Counter &mqPassDemotions_;

    // Request tracing (enableIoTracing).
    std::unique_ptr<obs::RequestTracer> netTracer_;
    std::unique_ptr<obs::RequestTracer> blkTracer_;
    obs::FlightRecorder *flight_ = nullptr;
    int netFn_ = -1; ///< IO-Bond function index of the NIC
    int blkFn_ = -1; ///< IO-Bond function index of the disk
    bool traceIo_ = false;

    /** Finish a live upgrade once block I/O has drained. */
    void finishUpgrade(Tick t0,
                       std::function<void(Tick)> done);

    /** Point bond and service at the tracers (post-connect). */
    void wireTracers();

    /** Start the current service generation: dedicated poll loop,
     *  or registration with the shared scheduler. */
    void startService();
    /** Per-queue registration (MQ under a shared scheduler):
     *  spread the queue units across the scheduler's cores. */
    void registerQueueUnits();
    void unregisterQueueUnits();
    /** Route an IO-Bond (fn, q) doorbell to its queue unit. */
    void wakeQueue(unsigned fn, unsigned q);
    /** Retire service_ and attach a fresh generation named
     *  "<name>.svc.<suffix>" on core_; shared by respawn (after
     *  recoverQueue) and migrateTo (after IoBond::rebase). */
    void replaceService(const std::string &suffix);
    /** Drop the current service's scheduler registration. */
    void unregisterService();

    /** Attach one function's role to service_ if its shadow
     *  vrings are ready. */
    bool attachFunction(unsigned fn);

    /** A guest driver (re)initialized function @p fn: rebuild the
     *  backend's views on the new shadow layouts. */
    void onFunctionReady(unsigned fn);

    bool injectFault(const fault::FaultSpec &spec);
};

} // namespace hv
} // namespace bmhive

#endif // BMHIVE_HV_BM_HYPERVISOR_HH

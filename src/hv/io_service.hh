/**
 * @file
 * VirtioIoService: the user-space, poll-mode virtio backend (paper
 * section 3.4.2). One service instance runs per guest on a
 * dedicated base-board core, polling the guest's queues, pushing
 * network frames into the DPDK-style vSwitch, and executing block
 * I/O against the SPDK-style cloud storage.
 *
 * The same service implements both platforms' backends:
 *  - BM-Hive: queues are IO-Bond *shadow* vrings in base memory;
 *    each poll iteration pays the mailbox register read and each
 *    completion batch pays the tail-register write (0.8 us each).
 *  - KVM baseline: queues are the guest's own vrings (shared
 *    memory, vhost-user style); the service additionally performs
 *    the CPU data copies a software backend must do, and it
 *    suppresses guest doorbells while polling (NO_NOTIFY), which
 *    IO-Bond's hardware front-end cannot do.
 *
 * Multi-queue: the net role holds a vector of rx/tx queue pairs
 * and the blk role a vector of submission queues. Pair/queue 0 is
 * attached through the classic attachNet/attachBlk entry points;
 * further queues through attachNetPair/attachBlkQueue. Each queue
 * can be serviced independently via servicePollNetPair /
 * servicePollBlkQueue with an explicit executor, so a shared DWRR
 * scheduler (or a dedicated passthrough poller) can spread one
 * guest's queues across poll cores — the costs charge to the core
 * actually doing the work, which is what makes multi-queue PPS
 * scale past a single poller.
 */

#ifndef BMHIVE_HV_IO_SERVICE_HH
#define BMHIVE_HV_IO_SERVICE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/paper_constants.hh"
#include "base/stats.hh"
#include "cloud/block_service.hh"
#include "cloud/rate_limiter.hh"
#include "cloud/vswitch.hh"
#include "hw/cpu_executor.hh"
#include "mem/guest_memory.hh"
#include "obs/request_tracer.hh"
#include "sched/pollable.hh"
#include "sim/sim_object.hh"
#include "virtio/virtqueue.hh"

namespace bmhive {
namespace hv {

/** Timing knobs distinguishing the two backend flavours. */
struct IoServiceParams
{
    /** Poll period of the PMD loop. */
    Tick pollPeriod = paper::backendPollPeriod;
    /** Register read at the top of each poll (bm: mailbox). */
    Tick pollRegisterCost = 0;
    /** Register write per completion batch (bm: tail register). */
    Tick completionRegisterCost = 0;
    /** CPU cost to process one packet (parse + switch handoff). */
    Tick perPacketCost = paper::backendPerPacketCost;
    /** CPU copy cost per packet payload (vm backend only; the
     *  bm path is copied by IO-Bond's DMA engine instead). */
    Tick perPacketCopyCost = 0;
    /** CPU cost to submit/complete one block I/O. */
    Tick blkTouchCost = usToTicks(1.0);
    /** Extra host-side cost per block I/O (vm: the extra memory
     *  copies and the longer software path, section 4.3). */
    Tick blkExtraCost = 0;
    /** CPU copy rate for block payloads (0 = no copy; the bm path
     *  moves data with IO-Bond's DMA engine instead). */
    double blkCopyBytesPerSec = 0.0;
    /** Suppress guest doorbells while polling (vhost only). */
    bool suppressGuestNotify = false;
    /** Backend rx buffering (socket backlog analog), per queue. */
    std::size_t rxPendingMax = 4096;
    /**
     * Block-fabric request timeout: a request not completed within
     * this window is resubmitted with exponential backoff (each
     * attempt doubles the wait). 0 disables the timeout path.
     */
    Tick blkTimeout = msToTicks(10.0);
    /** Resubmissions before a request fails with IOERR. */
    unsigned blkMaxRetries = 4;
};

/**
 * Completion barrier: invoked after the service pushed used
 * elements so the platform can propagate them to the guest
 * (IO-Bond tail write, or a direct MSI for the vhost case).
 */
using CompletionBarrier = std::function<void()>;

class VirtioIoService : public SimObject, public sched::Pollable
{
  public:
    VirtioIoService(Simulation &sim, std::string name,
                    hw::CpuExecutor &core, IoServiceParams params);
    ~VirtioIoService() override;

    /**
     * Attach the network role: device views of the guest's rx/tx
     * rings (queue pair 0) plus the vSwitch port this guest owns.
     * Drops any previously attached extra pairs.
     */
    void attachNet(GuestMemory &ring_mem,
                   const virtio::VringLayout &rx,
                   const virtio::VringLayout &tx,
                   CompletionBarrier rx_done, CompletionBarrier tx_done,
                   cloud::VSwitch &vswitch, cloud::PortId port,
                   cloud::DualRateLimiter limiter);

    /**
     * Attach one additional rx/tx queue pair (VIRTIO_NET_F_MQ).
     * attachNet must have attached pair 0 first; pairs may be
     * attached in any order after that.
     */
    void attachNetPair(unsigned pair,
                       const virtio::VringLayout &rx,
                       const virtio::VringLayout &tx,
                       CompletionBarrier rx_done,
                       CompletionBarrier tx_done);

    /**
     * Attach the console role: queue 0 carries host->guest input,
     * queue 1 guest->host output; output text reaches @p sink.
     */
    void attachConsole(GuestMemory &ring_mem,
                       const virtio::VringLayout &rx,
                       const virtio::VringLayout &tx,
                       CompletionBarrier rx_done,
                       CompletionBarrier tx_done,
                       std::function<void(const std::string &)>
                           sink);

    /** Queue text toward the guest console (host->guest). */
    void consoleInput(const std::string &text);

    /** Attach the storage role (submission queue 0). Drops any
     *  previously attached extra queues. */
    void attachBlk(GuestMemory &ring_mem,
                   const virtio::VringLayout &vq,
                   CompletionBarrier done, cloud::BlockService &svc,
                   cloud::Volume &vol,
                   cloud::DualRateLimiter limiter);

    /** Attach one additional blk submission queue
     *  (VIRTIO_BLK_F_MQ); attachBlk must have run first. */
    void attachBlkQueue(unsigned q, const virtio::VringLayout &vq,
                        CompletionBarrier done);

    /** Frames from the vSwitch destined to this guest (pair 0). */
    void enqueueRx(const cloud::Packet &pkt);
    /** RSS-steered delivery onto a specific rx queue pair. */
    void enqueueRx(const cloud::Packet &pkt, unsigned pair);

    /** Resize the rx backlog (socket-backlog analog). */
    void setRxBacklog(std::size_t n) { params_.rxPendingMax = n; }

    /** Per-packet processing cost (PMD burst mode amortizes it). */
    void setPerPacketCost(Tick t) { params_.perPacketCost = t; }

    /** Poll period of the PMD loop (ablation studies). */
    void setPollPeriod(Tick t) { params_.pollPeriod = t; }

    /**
     * Run block completions on @p core instead of the main poll
     * core (the vm baseline uses a separate, preemptible
     * iothread; see paper section 2.1 on host I/O contention).
     */
    void setBlkCore(hw::CpuExecutor *core) { blkCore_ = core; }

    /** Begin the poll loop. */
    void start();

    /**
     * Hand the poll loop to an external driver (the shared
     * PollScheduler): start()/stall() stop scheduling the
     * dedicated poll event and the driver calls servicePoll()
     * instead. Must be set before start().
     */
    void setExternallyDriven(bool b) { externallyDriven_ = b; }
    bool externallyDriven() const { return externallyDriven_; }

    /**
     * Called whenever backend-side work arrives outside the guest
     * doorbell path (vSwitch rx delivery, console input) so an
     * external driver can wake a sleeping poll core.
     */
    void setWakeHook(std::function<void()> hook)
    {
        wakeHook_ = std::move(hook);
    }

    /**
     * Per-pair variant for multi-queue backends: rx delivery onto
     * pair @p k wakes only that pair's pollable. When set it
     * replaces the coarse hook for steered deliveries.
     */
    void setRxWakeHook(std::function<void(unsigned)> hook)
    {
        rxWakeHook_ = std::move(hook);
    }

    // --- sched::Pollable ---
    /**
     * One budget-capped scheduler visit: passes over every
     * attached role (all queue pairs) until the budget is spent or
     * a full pass finds no work, draining each role as a batch —
     * one used-ring publish, one completion-register charge, and
     * one completion barrier per role per drained pass, never per
     * chain.
     */
    unsigned servicePoll(unsigned budget) override;
    bool pollAlive() const override { return running_; }
    Tick pollBlockedUntil() const override { return stallUntil_; }
    const std::string &pollableName() const override
    {
        return name();
    }

    /**
     * Per-queue scheduling units: service exactly one net queue
     * pair (tx then rx) or one blk submission queue, charging CPU
     * costs to @p core (defaults to the service's own core). These
     * are what per-queue QueuePollables and passthrough pollers
     * call, so one guest's queues can burn different poll cores in
     * parallel.
     */
    unsigned servicePollNetPair(unsigned pair, unsigned budget,
                                hw::CpuExecutor *core = nullptr);
    unsigned servicePollBlkQueue(unsigned q, unsigned budget,
                                 hw::CpuExecutor *core = nullptr);
    /** Console-only visit (per-queue mode leaves the console as
     *  its own small scheduling unit on the home core). */
    unsigned servicePollConsole(unsigned budget);

    unsigned netPairCount() const
    {
        return unsigned(netPairs_.size());
    }
    unsigned blkQueueCount() const
    {
        return unsigned(blkQueues_.size());
    }

    /**
     * Adopt all attached roles, ring positions, limiter state, and
     * buffered traffic from @p old (which must be stopped). Used
     * by the Orthus-style live upgrade (paper section 6).
     */
    void adoptFrom(VirtioIoService &old);

    /** Block I/Os submitted but not yet completed. */
    std::uint64_t blkInflight() const { return blkInflight_; }
    /** Stop polling (guest powered off / destroyed). */
    void stop();

    /**
     * The poll core is preempted (bm-hypervisor stall fault): no
     * poll iteration runs until @p duration elapses. Stalls extend
     * monotonically; in-flight timers keep running, so a stall long
     * enough trips the block timeout path.
     */
    void stall(Tick duration);

    /**
     * The backend process died (bm-hypervisor crash fault): polling
     * stops and everything in flight is invalidated — late storage
     * completions carry a stale generation and never reach the
     * guest, so the respawned service can re-serve those requests
     * without double completion.
     */
    void markDead();

    bool alive() const { return running_; }

    std::uint64_t blkTimeouts() const { return blkTimeouts_.value(); }
    std::uint64_t blkRetries() const { return blkRetries_.value(); }
    std::uint64_t
    blkDupCompletions() const
    {
        return blkDupDone_.value();
    }
    std::uint64_t
    blkIoFailures() const
    {
        return blkFailures_.value();
    }
    /** Guest-authored LBA/length outside the volume (contained
     *  as VIRTIO_BLK_S_IOERR toward the guest). */
    std::uint64_t
    blkRangeErrors() const
    {
        return blkRangeErrors_.value();
    }

    /**
     * T10-DIF-style protection on the block path: expect tagged
     * writes from the guest (verified before persisting) and
     * return tagged reads, verified against fabric corruption with
     * a bounded resubmit through the sequence-tagged retry path.
     * Must match the guest driver's setting.
     */
    void setIntegrity(bool on) { blkIntegrity_ = on; }
    bool integrityEnabled() const { return blkIntegrity_; }

    /** DIF mismatches detected (either direction). */
    std::uint64_t difDetects() const { return difDetects_.value(); }
    /** Read attempts resubmitted after a DIF mismatch. */
    std::uint64_t difRetries() const { return difRetries_.value(); }
    /** Requests failed toward the guest on persistent mismatch. */
    std::uint64_t difFailures() const { return difFails_.value(); }

    std::uint64_t txPackets() const { return txPkts_.value(); }
    std::uint64_t rxPackets() const { return rxPkts_.value(); }
    std::uint64_t blkIos() const { return blkIos_.value(); }
    std::uint64_t rxDropped() const { return rxDropped_.value(); }

    /** Poll-loop utilization (DPDK telemetry style): iterations
     *  that found work vs. ran empty. */
    std::uint64_t pollsTotal() const { return pollsTotal_.value(); }
    std::uint64_t pollsBusy() const { return pollsBusy_.value(); }
    double
    pollBusyRatio() const
    {
        return pollsTotal_.value()
                   ? double(pollsBusy_.value()) /
                         double(pollsTotal_.value())
                   : 0.0;
    }

    /**
     * Stamp PollPickup/Service spans on guest tx packets. Keys are
     * @p key_base | chain head; the base carries the (fn, queue)
     * the platform glue knows and this service does not. Applies
     * to pair 0; per-pair bases via setNetTxKeyBase.
     */
    void
    setNetTxTracer(obs::RequestTracer *t, std::uint64_t key_base)
    {
        netTracer_ = t;
        if (!netPairs_.empty())
            netPairs_[0].txKeyBase = key_base;
    }

    /** Key base for pair @p k tx spans (multi-queue tracing). */
    void setNetTxKeyBase(unsigned pair, std::uint64_t key_base);

    /** Same for block requests (Service spans the storage trip). */
    void
    setBlkTracer(obs::RequestTracer *t, std::uint64_t key_base)
    {
        blkTracer_ = t;
        if (!blkQueues_.empty())
            blkQueues_[0].keyBase = key_base;
    }

    /** Key base for blk queue @p q spans (multi-queue tracing). */
    void setBlkKeyBase(unsigned q, std::uint64_t key_base);

    virtio::VirtQueueDevice *netTxQueue()
    {
        return netPairs_.empty() ? nullptr : netPairs_[0].tx.get();
    }
    virtio::VirtQueueDevice *netRxQueue()
    {
        return netPairs_.empty() ? nullptr : netPairs_[0].rx.get();
    }
    virtio::VirtQueueDevice *blkQueue()
    {
        return blkQueues_.empty() ? nullptr
                                  : blkQueues_[0].vq.get();
    }

  private:
    /** One rx/tx queue pair of the net role. */
    struct NetPair
    {
        std::unique_ptr<virtio::VirtQueueDevice> rx;
        std::unique_ptr<virtio::VirtQueueDevice> tx;
        CompletionBarrier rxDone;
        CompletionBarrier txDone;
        std::deque<cloud::Packet> rxPending;
        std::uint64_t txKeyBase = 0;
    };

    /** One blk submission queue. */
    struct BlkQueue
    {
        std::unique_ptr<virtio::VirtQueueDevice> vq;
        CompletionBarrier done;
        std::uint64_t keyBase = 0;
        /** Executor of the latest poll visit; completions charge
         *  it so per-queue work stays on the queue's core. */
        hw::CpuExecutor *core = nullptr;
    };

    /**
     * One guest block request, tracked from poll pickup until its
     * exactly-once completion toward the guest. Keyed by a sequence
     * tag; retries share the tag, so whichever attempt finishes
     * first completes the request and later arrivals are recognized
     * as duplicates and dropped.
     */
    struct PendingBlk
    {
        bool write = false;
        std::uint64_t lba = 0;
        Bytes len = 0;        ///< data segment (wire) length
        Bytes payloadLen = 0; ///< len minus DIF tags
        Addr dataAddr = 0;
        Addr statusAddr = 0;
        std::uint16_t head = 0;
        unsigned q = 0; ///< submission queue it arrived on
        unsigned attempt = 0;
    };

    void poll();
    unsigned pollNetTx(NetPair &np, unsigned max,
                       hw::CpuExecutor &core);
    unsigned pollNetRx(NetPair &np, unsigned max,
                       hw::CpuExecutor &core);
    unsigned pollBlk(unsigned q, unsigned max,
                     hw::CpuExecutor &core);
    unsigned pollConsole(unsigned max);
    void scheduleNext();
    void submitBlkAttempt(std::uint64_t seq, Tick copy_cost);
    void onBlkServiceDone(std::uint64_t seq, std::uint64_t gen,
                          bool wire_corrupt);
    void onBlkTimeout(std::uint64_t seq, std::uint64_t gen,
                      unsigned attempt);
    /** Push an IOERR completion for @p p toward the guest. */
    void failBlkToGuest(const PendingBlk &p, std::uint64_t gen);
    /** Executor blk completions for queue @p q charge. */
    hw::CpuExecutor &blkExecutor(unsigned q);

    hw::CpuExecutor &core_;
    hw::CpuExecutor *blkCore_ = nullptr; ///< defaults to &core_
    IoServiceParams params_;

    // Net role.
    GuestMemory *netMem_ = nullptr;
    std::vector<NetPair> netPairs_;
    cloud::VSwitch *vswitch_ = nullptr;
    cloud::PortId port_ = 0;
    cloud::DualRateLimiter netLimiter_ =
        cloud::DualRateLimiter::unlimited();

    // Console role.
    GuestMemory *conMem_ = nullptr;
    std::unique_ptr<virtio::VirtQueueDevice> conRx_;
    std::unique_ptr<virtio::VirtQueueDevice> conTx_;
    CompletionBarrier conRxDone_;
    CompletionBarrier conTxDone_;
    std::function<void(const std::string &)> consoleSink_;
    std::deque<std::string> conPending_;

    // Blk role.
    GuestMemory *blkMem_ = nullptr;
    std::vector<BlkQueue> blkQueues_;
    cloud::BlockService *blkSvc_ = nullptr;
    cloud::Volume *vol_ = nullptr;
    cloud::DualRateLimiter blkLimiter_ =
        cloud::DualRateLimiter::unlimited();

    bool running_ = false;
    bool externallyDriven_ = false;
    bool blkIntegrity_ = false;
    std::function<void()> wakeHook_;
    std::function<void(unsigned)> rxWakeHook_;
    std::uint64_t blkInflight_ = 0;
    std::map<std::uint64_t, PendingBlk> blkPending_;
    std::uint64_t blkNextSeq_ = 0;
    /** Bumped on every (re)attach and on markDead: completions and
     *  timers carrying an older generation are ignored. */
    std::uint64_t blkGen_ = 0;
    Tick stallUntil_ = 0;
    EventFunctionWrapper pollEvent_;
    /** Registry-backed: accessors and exports read the same cell. */
    Counter &txPkts_;
    Counter &rxPkts_;
    Counter &blkIos_;
    Counter &rxDropped_;
    Counter &pollsTotal_;
    Counter &pollsBusy_;
    Counter &blkTimeouts_;
    Counter &blkRetries_;
    Counter &blkDupDone_;
    Counter &blkFailures_;
    Counter &blkRangeErrors_;
    Counter &difDetects_;
    Counter &difRetries_;
    Counter &difFails_;
    Histogram &pollBatch_; ///< work items per poll iteration

    // Request tracing (optional, wired by the platform glue).
    obs::RequestTracer *netTracer_ = nullptr;
    obs::RequestTracer *blkTracer_ = nullptr;
};

} // namespace hv
} // namespace bmhive

#endif // BMHIVE_HV_IO_SERVICE_HH

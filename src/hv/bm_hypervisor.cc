#include "hv/bm_hypervisor.hh"

#include <utility>

#include "base/logging.hh"
#include "virtio/virtio_net.hh"

namespace bmhive {
namespace hv {

BmHypervisor::BmHypervisor(Simulation &sim, std::string name,
                           hw::ComputeBoard &board,
                           iobond::IoBond &bond,
                           hw::CpuExecutor &core,
                           cloud::VSwitch &vswitch,
                           cloud::MacAddr mac,
                           cloud::BlockService *storage,
                           cloud::Volume *volume, bool rate_limited)
    : SimObject(sim, std::move(name)), board_(board), bond_(bond),
      vswitch_(&vswitch), mac_(mac), storage_(storage),
      volume_(volume), rateLimited_(rate_limited),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      respawns_(metrics().counter(this->name() + ".respawns")),
      mqQueueRegs_(
          metrics().counter(this->name() + ".mq.queue_regs")),
      mqPassBinds_(metrics().counter(this->name() +
                                     ".mq.passthrough_binds")),
      mqPassDemotions_(metrics().counter(
          this->name() + ".mq.passthrough_demotions"))
{
    IoServiceParams params;
    params.pollPeriod = paper::bmPollPeriod;
    // Each poll reads the IO-Bond mailbox over PCIe; each
    // completion batch writes the tail register (0.8 us, paper
    // section 3.4.3). Payload copies are IO-Bond DMA, not CPU.
    params.pollRegisterCost = bond.params().mailboxAccess;
    params.completionRegisterCost = bond.params().mailboxAccess;
    params.perPacketCopyCost = 0;
    params.suppressGuestNotify = false; // the doorbell is hardware

    core_ = &core;
    serviceParams_ = params;
    service_ = std::make_unique<VirtioIoService>(
        sim, this->name() + ".svc", core, params);

    port_ = vswitch_->addPort(mac, [this](const cloud::Packet &pkt) {
        service_->enqueueRx(pkt);
    });

    bond_.setReadyCallback(
        [this](unsigned fn) { onFunctionReady(fn); });
    // Guest set-queue-pairs commits reshape the vSwitch RSS spread
    // (a no-op until the port is in RSS mode).
    bond_.setQueuePairsCallback([this](unsigned fn,
                                       unsigned pairs) {
        if (connected_ && int(fn) == netFn_)
            vswitch_->setPortRssQueues(port_, pairs);
    });
    sim_.faults().add(this->name(),
                      [this](const fault::FaultSpec &s) {
                          return injectFault(s);
                      });
}

BmHypervisor::~BmHypervisor()
{
    unregisterService();
    sim_.faults().remove(name());
    bond_.setReadyCallback(nullptr);
    bond_.setDoorbellWake(nullptr);
    bond_.setQueueWake(nullptr);
    bond_.setQueuePairsCallback(nullptr);
}

void
BmHypervisor::useScheduler(sched::PollScheduler &s,
                           unsigned core_index)
{
    panic_if(connected_, name(),
             ": useScheduler after backends connected");
    panic_if(&s.coreExecutor(core_index) != core_, name(),
             ": scheduler core does not back this process's PMD");
    sched_ = &s;
    schedCore_ = core_index;
    // The doorbell mailbox write is what wakes a sleeping poll
    // core; handle_ tracks the current service generation.
    bond_.setDoorbellWake([this] {
        if (handle_.valid())
            sched_->wake(handle_);
    });
    // MQ doorbells carry (fn, q) so only the queue's own unit
    // spins up; falls back to the whole-service handle when the
    // guest runs single-queue.
    bond_.setQueueWake(
        [this](unsigned fn, unsigned q) { wakeQueue(fn, q); });
}

void
BmHypervisor::setPollWeight(double w)
{
    pollWeight_ = w;
    if (!sched_)
        return;
    if (handle_.valid())
        sched_->setWeight(handle_, w);
    if (queueRegs_.empty())
        return;
    bool want_pass = passthroughWanted_ && w >= 1.0;
    if (want_pass != passthroughActive_) {
        // Quarantine/Suspect demotes a passthrough guest back
        // under the shared scheduler, where a fractional weight
        // actually bites; full weight re-promotes.
        if (!want_pass)
            mqPassDemotions_.inc();
        unregisterQueueUnits();
        registerQueueUnits();
        return;
    }
    for (auto &r : queueRegs_) {
        if (r.handle.valid())
            sched_->setWeight(r.handle, w);
    }
    if (conHandle_.valid())
        sched_->setWeight(conHandle_, w);
}

void
BmHypervisor::setMqPassthrough(bool on)
{
    passthroughWanted_ = on;
    if (!sched_ || queueRegs_.empty())
        return;
    if ((passthroughWanted_ && pollWeight_ >= 1.0) !=
        passthroughActive_) {
        unregisterQueueUnits();
        registerQueueUnits();
    }
}

unsigned
BmHypervisor::passthroughQueues() const
{
    unsigned n = 0;
    for (const auto &r : queueRegs_)
        n += r.pass && r.pass->bound() ? 1 : 0;
    return n;
}

bool
BmHypervisor::pollWedged(Tick window) const
{
    if (!sched_)
        return false;
    if (handle_.valid() && sched_->wedged(handle_, window))
        return true;
    for (const auto &r : queueRegs_) {
        // Passthrough units self-schedule; they cannot be starved
        // by the shared scheduler, so they have no wedge signal.
        if (r.handle.valid() && sched_->wedged(r.handle, window))
            return true;
    }
    return conHandle_.valid() && sched_->wedged(conHandle_, window);
}

void
BmHypervisor::startService()
{
    if (!sched_) {
        service_->start();
        return;
    }
    service_->setExternallyDriven(true);
    service_->start();
    if (service_->netPairCount() > 1 ||
        service_->blkQueueCount() > 1) {
        // Multi-queue: the DWRR scheduler (or a passthrough
        // poller) owns each queue individually — registering the
        // whole service as well would double-serve every ring.
        registerQueueUnits();
        return;
    }
    handle_ = sched_->add(schedCore_, *service_, pollWeight_);
    if (flight_)
        sched_->setFlightRecorder(handle_, flight_);
    // Backend-side arrivals (vSwitch rx, console input) wake the
    // core the same way guest doorbells do.
    service_->setWakeHook([this] {
        if (handle_.valid())
            sched_->wake(handle_);
    });
}

void
BmHypervisor::registerQueueUnits()
{
    VirtioIoService *svc = service_.get();
    bool pass = passthroughWanted_ && pollWeight_ >= 1.0;
    unsigned ncores = sched_->coreCount();
    unsigned k = 0;
    auto add = [&](bool net, unsigned idx) {
        QueueReg r;
        r.net = net;
        r.idx = idx;
        // Round-robin outward from the home core: one guest's
        // queues burn different poll cores in parallel.
        r.core = (schedCore_ + k++) % ncores;
        hw::CpuExecutor *exec = &sched_->coreExecutor(r.core);
        std::string qn = name() +
                         (net ? ".mq.netp" : ".mq.blkq") +
                         std::to_string(idx);
        mq::QueuePollable::PollFn poll;
        if (net) {
            poll = [svc, idx, exec](unsigned b) {
                return svc->servicePollNetPair(idx, b, exec);
            };
        } else {
            poll = [svc, idx, exec](unsigned b) {
                return svc->servicePollBlkQueue(idx, b, exec);
            };
        }
        r.pollable = std::make_unique<mq::QueuePollable>(
            qn, std::move(poll));
        r.pollable->setAlive([svc] { return svc->alive(); });
        r.pollable->setBlockedUntil(
            [svc] { return svc->pollBlockedUntil(); });
        if (pass) {
            // Generation-independent poller name: metric cells
            // are get-or-create, so counters accumulate across
            // respawns and demote/promote cycles.
            r.pass = std::make_unique<mq::PassthroughPoller>(
                sim_,
                name() + (net ? ".mq.pass.netp" : ".mq.pass.blkq") +
                    std::to_string(idx),
                *exec);
            r.pass->bind([p = r.pollable.get()](unsigned b) {
                return p->servicePoll(b);
            });
            mqPassBinds_.inc();
        } else {
            r.handle =
                sched_->add(r.core, *r.pollable, pollWeight_);
            if (flight_)
                sched_->setFlightRecorder(r.handle, flight_);
        }
        mqQueueRegs_.inc();
        queueRegs_.push_back(std::move(r));
    };
    for (unsigned p = 0; p < svc->netPairCount(); ++p)
        add(true, p);
    for (unsigned q = 0; q < svc->blkQueueCount(); ++q)
        add(false, q);
    passthroughActive_ = pass;

    // The console stays a small shared unit on the home core even
    // under passthrough — it is never the fast path.
    conPollable_ = std::make_unique<mq::QueuePollable>(
        name() + ".mq.con", [svc](unsigned b) {
            return svc->servicePollConsole(b);
        });
    conPollable_->setAlive([svc] { return svc->alive(); });
    conPollable_->setBlockedUntil(
        [svc] { return svc->pollBlockedUntil(); });
    conHandle_ = sched_->add(schedCore_, *conPollable_,
                             pollWeight_);
    if (flight_)
        sched_->setFlightRecorder(conHandle_, flight_);

    // Steered rx wakes only the target pair's unit; everything
    // else backend-side (console input) wakes the home unit.
    service_->setRxWakeHook([this](unsigned pair) {
        for (auto &r : queueRegs_) {
            if (r.net && r.idx == pair) {
                if (r.pass)
                    r.pass->wake();
                else if (r.handle.valid())
                    sched_->wake(r.handle);
                return;
            }
        }
    });
    service_->setWakeHook([this] {
        if (conHandle_.valid())
            sched_->wake(conHandle_);
    });
}

void
BmHypervisor::unregisterQueueUnits()
{
    for (auto &r : queueRegs_) {
        if (r.handle.valid())
            sched_->remove(r.handle);
        if (r.pass)
            r.pass->unbind();
    }
    queueRegs_.clear();
    if (conHandle_.valid()) {
        sched_->remove(conHandle_);
        conHandle_ = {};
    }
    conPollable_.reset();
    passthroughActive_ = false;
}

void
BmHypervisor::wakeQueue(unsigned fn, unsigned q)
{
    if (!queueRegs_.empty()) {
        bool net = int(fn) == netFn_;
        bool blk = int(fn) == blkFn_;
        if (net || blk) {
            // Net shadow queues interleave rx0,tx0,rx1,tx1: both
            // directions of pair q/2 land on the same unit.
            unsigned idx = net ? q / 2 : q;
            for (auto &r : queueRegs_) {
                if (r.net == net && r.idx == idx) {
                    if (r.pass)
                        r.pass->wake();
                    else if (r.handle.valid())
                        sched_->wake(r.handle);
                    return;
                }
            }
        }
        // Console function (or a pair beyond what registered).
        if (conHandle_.valid())
            sched_->wake(conHandle_);
        return;
    }
    if (handle_.valid())
        sched_->wake(handle_);
}

void
BmHypervisor::setFlightRecorder(obs::FlightRecorder *fr)
{
    flight_ = fr;
    if (!sched_)
        return;
    if (handle_.valid())
        sched_->setFlightRecorder(handle_, fr);
    for (auto &r : queueRegs_) {
        if (r.handle.valid())
            sched_->setFlightRecorder(r.handle, fr);
    }
    if (conHandle_.valid())
        sched_->setFlightRecorder(conHandle_, fr);
}

void
BmHypervisor::unregisterService()
{
    if (!sched_)
        return;
    if (handle_.valid()) {
        sched_->remove(handle_);
        handle_ = {};
    }
    unregisterQueueUnits();
}

bool
BmHypervisor::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::HvStall:
        service_->stall(spec.duration ? spec.duration
                                      : usToTicks(200));
        faultInjected_.inc();
        return true;
      case fault::FaultKind::HvCrash:
        crash();
        faultInjected_.inc();
        return true;
      default:
        return false;
    }
}

void
BmHypervisor::crash()
{
    service_->markDead();
    crashed_ = true;
    crashedAt_ = curTick();
    logDebug("bm-hypervisor process crashed");
}

void
BmHypervisor::replaceService(const std::string &suffix)
{
    if (service_->alive())
        service_->markDead();
    unregisterService();
    // Respawn and migration are triggered from the control
    // partition (watchdog, fleet controller); the fresh generation
    // must still home in this guest's partition, sharing its cell
    // so a later migration re-homes it too.
    psim::PartitionScope scope(sim_, partitionCell(), partition());
    auto next = std::make_unique<VirtioIoService>(
        sim_, name() + ".svc." + suffix, *core_, serviceParams_);
    next->setIntegrity(blkIntegrity_);
    // The old process stays allocated until teardown so any event
    // still holding it unwinds against a dead service, not freed
    // memory.
    retired_.push_back(std::move(service_));
    service_ = std::move(next);
    netFn_ = -1;
    blkFn_ = -1;
    for (unsigned fn = 0; fn < bond_.numFunctions(); ++fn)
        attachFunction(fn);
    wireTracers();
    startService();
    crashed_ = false;
}

void
BmHypervisor::setBlkIntegrity(bool on)
{
    blkIntegrity_ = on;
    service_->setIntegrity(on);
}

void
BmHypervisor::respawn()
{
    panic_if(!connected_, name(), ": respawn before first connect");
    if (service_->alive())
        service_->markDead();
    // Republish whatever the dead process had picked up but not
    // completed, in original submission order; the fresh device
    // views below resume from the rings' live indices and re-serve
    // exactly those chains.
    for (unsigned fn = 0; fn < bond_.numFunctions(); ++fn) {
        for (unsigned q = 0; q < bond_.function(fn).numQueues();
             ++q) {
            if (bond_.shadowReady(fn, q))
                bond_.recoverQueue(fn, q);
        }
    }
    ++respawnCount_;
    replaceService("r" + std::to_string(respawnCount_));
    respawns_.inc();
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::Respawn, 0, 0,
                        respawnCount_);
    logDebug("bm-hypervisor respawned (generation ",
             respawnCount_, ")");
}

void
BmHypervisor::migrateTo(hw::CpuExecutor &core,
                        sched::PollScheduler *sched,
                        unsigned core_index)
{
    panic_if(!connected_, name(), ": migrate before first connect");
    if (service_->alive())
        service_->markDead();
    // Drop the registration with the *source* scheduler before the
    // member is re-pointed at the target's.
    unregisterService();
    core_ = &core;
    sched_ = sched;
    schedCore_ = core_index;
    // Doorbell wakes must target the *new* scheduler (or nothing,
    // under a dedicated loop on the target).
    if (sched_) {
        bond_.setDoorbellWake([this] {
            if (handle_.valid())
                sched_->wake(handle_);
        });
        bond_.setQueueWake(
            [this](unsigned fn, unsigned q) { wakeQueue(fn, q); });
    } else {
        bond_.setDoorbellWake(nullptr);
        bond_.setQueueWake(nullptr);
    }
    ++migrations_;
    // No recoverQueue here: IoBond::rebase already republished the
    // in-flight window into the target server's memory; the fresh
    // views attach to the rebased layouts and resume mid-stream.
    replaceService("m" + std::to_string(migrations_));
    logDebug("bm-hypervisor migrated onto ", core.name(),
             " (migration ", migrations_, ")");
}

void
BmHypervisor::rebindVSwitch(cloud::VSwitch &sw)
{
    if (&sw == vswitch_)
        return; // same server switch: the port stays put
    vswitch_->removePort(port_);
    vswitch_ = &sw;
    port_ = vswitch_->addPort(mac_,
                              [this](const cloud::Packet &pkt) {
                                  service_->enqueueRx(pkt);
                              });
    // RSS (if the guest runs multi-queue) is re-established by the
    // attachFunction pass of the migration's replaceService, which
    // runs after this rebind and sees the fresh port id.
}

void
BmHypervisor::powerOnGuest()
{
    board_.powerOn();
}

void
BmHypervisor::powerOffGuest()
{
    unregisterService();
    service_->stop();
    connected_ = false;
    board_.powerOff();
}

bool
BmHypervisor::attachFunction(unsigned fn)
{
    auto type = bond_.function(fn).deviceType();
    if (type == virtio::DeviceType::Net) {
        if (!bond_.shadowReady(fn, virtio::NET_RXQ) ||
            !bond_.shadowReady(fn, virtio::NET_TXQ))
            return false;
        auto limiter =
            rateLimited_
                ? cloud::InstanceLimits::cloudNetwork()
                : cloud::DualRateLimiter::unlimited();
        service_->attachNet(
            bond_.baseMemory(),
            bond_.shadowLayout(fn, virtio::NET_RXQ),
            bond_.shadowLayout(fn, virtio::NET_TXQ),
            [this, fn] {
                bond_.backendCompleted(fn, virtio::NET_RXQ);
            },
            [this, fn] {
                bond_.backendCompleted(fn, virtio::NET_TXQ);
            },
            *vswitch_, port_, limiter);
        netFn_ = int(fn);
        // Every further pair whose shadow rings the guest driver
        // enabled (VIRTIO_NET_F_MQ). The device serves all live
        // rings; the set-queue-pairs commitment governs only how
        // wide RSS spreads arriving traffic.
        auto &f = bond_.function(fn);
        for (unsigned p = 1; p < f.maxQueuePairs(); ++p) {
            if (!bond_.shadowReady(fn, virtio::netRxQueue(p)) ||
                !bond_.shadowReady(fn, virtio::netTxQueue(p)))
                continue;
            service_->attachNetPair(
                p, bond_.shadowLayout(fn, virtio::netRxQueue(p)),
                bond_.shadowLayout(fn, virtio::netTxQueue(p)),
                [this, fn, p] {
                    bond_.backendCompleted(fn,
                                           virtio::netRxQueue(p));
                },
                [this, fn, p] {
                    bond_.backendCompleted(fn,
                                           virtio::netTxQueue(p));
                });
        }
        if (service_->netPairCount() > 1) {
            vswitch_->setPortRss(
                port_, f.activeQueuePairs(),
                [this](const cloud::Packet &pkt, unsigned q) {
                    service_->enqueueRx(pkt, q);
                });
        }
        return true;
    }
    if (type == virtio::DeviceType::Console) {
        if (!bond_.shadowReady(fn, 0) || !bond_.shadowReady(fn, 1))
            return false;
        service_->attachConsole(
            bond_.baseMemory(), bond_.shadowLayout(fn, 0),
            bond_.shadowLayout(fn, 1),
            [this, fn] { bond_.backendCompleted(fn, 0); },
            [this, fn] { bond_.backendCompleted(fn, 1); },
            [this](const std::string &text) {
                if (consoleSink_)
                    consoleSink_(text);
            });
        return true;
    }
    if (type == virtio::DeviceType::Block) {
        if (!bond_.shadowReady(fn, 0))
            return false;
        panic_if(storage_ == nullptr || volume_ == nullptr,
                 name(), ": blk function without storage backing");
        auto limiter =
            rateLimited_
                ? cloud::InstanceLimits::cloudStorage()
                : cloud::DualRateLimiter::unlimited();
        service_->attachBlk(
            bond_.baseMemory(), bond_.shadowLayout(fn, 0),
            [this, fn] { bond_.backendCompleted(fn, 0); },
            *storage_, *volume_, limiter);
        blkFn_ = int(fn);
        // Further submission queues (VIRTIO_BLK_F_MQ).
        for (unsigned q = 1; q < bond_.function(fn).maxQueuePairs();
             ++q) {
            if (!bond_.shadowReady(fn, q))
                continue;
            service_->attachBlkQueue(
                q, bond_.shadowLayout(fn, q),
                [this, fn, q] { bond_.backendCompleted(fn, q); });
        }
        return true;
    }
    return false;
}

void
BmHypervisor::onFunctionReady(unsigned fn)
{
    // Initial bring-up goes through connectBackends, and a dead
    // process cannot react (respawn re-attaches everything).
    if (!connected_ || !service_->alive())
        return;
    // The guest driver reinitialized after DEVICE_NEEDS_RESET: its
    // rings moved, so the backend views must be rebuilt on the new
    // shadow layouts.
    if (attachFunction(fn))
        wireTracers();
}

bool
BmHypervisor::connectBackends()
{
    panic_if(connected_, name(), ": backends already connected");
    bool any = false;
    for (unsigned fn = 0; fn < bond_.numFunctions(); ++fn)
        any = attachFunction(fn) || any;
    if (any) {
        connected_ = true;
        wireTracers();
        startService();
    }
    return any;
}

void
BmHypervisor::enableIoTracing()
{
    if (!netTracer_) {
        netTracer_ = std::make_unique<obs::RequestTracer>(
            name() + ".net", metrics(), &traceSink());
        // The guest's net driver suppresses tx completion MSIs and
        // reclaims used buffers from its xmit path, so a tx flow's
        // last observable event is the completion DMA.
        netTracer_->setFinalStage(obs::Stage::CompleteDma);
    }
    if (!blkTracer_)
        blkTracer_ = std::make_unique<obs::RequestTracer>(
            name() + ".blk", metrics(), &traceSink());
    traceIo_ = true;
    if (connected_)
        wireTracers();
}

void
BmHypervisor::wireTracers()
{
    if (!traceIo_)
        return;
    // Only guest-initiated directions carry request spans; the rx
    // ring's buffer turnaround is not a request latency.
    if (netFn_ >= 0) {
        bond_.setQueueTracer(unsigned(netFn_), virtio::NET_TXQ,
                             netTracer_.get());
        service_->setNetTxTracer(
            netTracer_.get(),
            obs::RequestTracer::flowKey(unsigned(netFn_),
                                        virtio::NET_TXQ, 0));
        // Per-pair key bases keep MQ spans distinct: the flow key
        // carries the pair's tx shadow-queue index.
        for (unsigned p = 1; p < service_->netPairCount(); ++p) {
            bond_.setQueueTracer(unsigned(netFn_),
                                 virtio::netTxQueue(p),
                                 netTracer_.get());
            service_->setNetTxKeyBase(
                p, obs::RequestTracer::flowKey(
                       unsigned(netFn_), virtio::netTxQueue(p),
                       0));
        }
    }
    if (blkFn_ >= 0) {
        bond_.setQueueTracer(unsigned(blkFn_), 0, blkTracer_.get());
        service_->setBlkTracer(
            blkTracer_.get(),
            obs::RequestTracer::flowKey(unsigned(blkFn_), 0, 0));
        for (unsigned q = 1; q < service_->blkQueueCount(); ++q) {
            bond_.setQueueTracer(unsigned(blkFn_), q,
                                 blkTracer_.get());
            service_->setBlkKeyBase(
                q, obs::RequestTracer::flowKey(unsigned(blkFn_), q,
                                               0));
        }
    }
}

bool
BmHypervisor::updateGuestFirmware(const hw::FirmwareImage &fw)
{
    return board_.updateFirmware(fw, providerKey);
}

void
BmHypervisor::liveUpgrade(std::function<void(Tick)> done)
{
    panic_if(!connected_, name(), ": live upgrade while detached");
    Tick t0 = curTick();
    // Stop taking new work; in-flight block I/O keeps completing.
    service_->stop();
    finishUpgrade(t0, std::move(done));
}

void
BmHypervisor::finishUpgrade(Tick t0, std::function<void(Tick)> done)
{
    if (service_->blkInflight() > 0) {
        auto *ev = new OneShotEvent(
            [this, t0, done] { finishUpgrade(t0, done); },
            name() + ".quiesce");
        scheduleIn(ev, usToTicks(10));
        return;
    }
    ++upgrades_;
    unregisterService();
    auto next = std::make_unique<VirtioIoService>(
        sim_, name() + ".svc.v" + std::to_string(upgrades_ + 1),
        *core_, serviceParams_);
    next->adoptFrom(*service_);
    // The old process stays allocated until teardown (its
    // in-flight lambdas are gone once quiesced).
    retired_.push_back(std::move(service_));
    service_ = std::move(next);
    startService();
    if (done)
        done(curTick() - t0);
}

} // namespace hv
} // namespace bmhive

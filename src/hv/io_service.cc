#include "hv/io_service.hh"

#include <limits>
#include <utility>

#include "base/logging.hh"
#include "cloud/dif.hh"
#include "guest/packet_wire.hh"
#include "virtio/virtio_blk.hh"

namespace bmhive {
namespace hv {

using namespace virtio;

VirtioIoService::VirtioIoService(Simulation &sim, std::string name,
                                 hw::CpuExecutor &core,
                                 IoServiceParams params)
    : SimObject(sim, std::move(name)), core_(core), params_(params),
      pollEvent_([this] { poll(); }, this->name() + ".poll",
                 Event::pollPri),
      txPkts_(metrics().counter(this->name() + ".tx_pkts")),
      rxPkts_(metrics().counter(this->name() + ".rx_pkts")),
      blkIos_(metrics().counter(this->name() + ".blk_ios")),
      rxDropped_(metrics().counter(this->name() + ".rx_dropped")),
      pollsTotal_(metrics().counter(this->name() + ".poll.total")),
      pollsBusy_(metrics().counter(this->name() + ".poll.busy")),
      blkTimeouts_(
          metrics().counter(this->name() + ".blk.timeouts")),
      blkRetries_(metrics().counter(this->name() + ".blk.retries")),
      blkDupDone_(
          metrics().counter(this->name() + ".blk.dup_completions")),
      blkFailures_(
          metrics().counter(this->name() + ".blk.io_failures")),
      blkRangeErrors_(
          metrics().counter(this->name() + ".blk.range_errors")),
      difDetects_(metrics().counter(
          this->name() + ".integrity.dif_detects")),
      difRetries_(metrics().counter(
          this->name() + ".integrity.dif_retries")),
      difFails_(metrics().counter(
          this->name() + ".integrity.dif_failures")),
      pollBatch_(
          metrics().histogram(this->name() + ".poll.batch", 0, 1024,
                              32))
{
}

VirtioIoService::~VirtioIoService()
{
    if (pollEvent_.scheduled())
        eventq().deschedule(&pollEvent_);
}

void
VirtioIoService::attachNet(GuestMemory &ring_mem,
                           const VringLayout &rx,
                           const VringLayout &tx,
                           CompletionBarrier rx_done,
                           CompletionBarrier tx_done,
                           cloud::VSwitch &vswitch, cloud::PortId port,
                           cloud::DualRateLimiter limiter)
{
    netMem_ = &ring_mem;
    netPairs_.clear();
    netPairs_.resize(1);
    NetPair &np = netPairs_[0];
    np.rx = std::make_unique<VirtQueueDevice>(ring_mem, rx);
    np.tx = std::make_unique<VirtQueueDevice>(ring_mem, tx);
    np.rxDone = std::move(rx_done);
    np.txDone = std::move(tx_done);
    vswitch_ = &vswitch;
    port_ = port;
    netLimiter_ = limiter;
    if (params_.suppressGuestNotify) {
        np.rx->setNoNotify(true);
        np.tx->setNoNotify(true);
    }
}

void
VirtioIoService::attachNetPair(unsigned pair, const VringLayout &rx,
                               const VringLayout &tx,
                               CompletionBarrier rx_done,
                               CompletionBarrier tx_done)
{
    panic_if(netMem_ == nullptr,
             name(), ": attachNetPair before attachNet");
    panic_if(pair == 0, name(), ": pair 0 belongs to attachNet");
    if (pair >= netPairs_.size())
        netPairs_.resize(pair + 1);
    NetPair &np = netPairs_[pair];
    np.rx = std::make_unique<VirtQueueDevice>(*netMem_, rx);
    np.tx = std::make_unique<VirtQueueDevice>(*netMem_, tx);
    np.rxDone = std::move(rx_done);
    np.txDone = std::move(tx_done);
    np.rxPending.clear();
    if (params_.suppressGuestNotify) {
        np.rx->setNoNotify(true);
        np.tx->setNoNotify(true);
    }
}

void
VirtioIoService::attachBlk(GuestMemory &ring_mem,
                           const VringLayout &vq,
                           CompletionBarrier done,
                           cloud::BlockService &svc, cloud::Volume &vol,
                           cloud::DualRateLimiter limiter)
{
    blkMem_ = &ring_mem;
    blkQueues_.clear();
    blkQueues_.resize(1);
    BlkQueue &bq = blkQueues_[0];
    bq.vq = std::make_unique<VirtQueueDevice>(ring_mem, vq);
    bq.done = std::move(done);
    blkSvc_ = &svc;
    vol_ = &vol;
    blkLimiter_ = limiter;
    if (params_.suppressGuestNotify)
        bq.vq->setNoNotify(true);
    // A (re)attach invalidates anything the previous incarnation of
    // these rings had in flight: completions and timers carrying an
    // older generation are ignored.
    ++blkGen_;
    blkPending_.clear();
    blkInflight_ = 0;
}

void
VirtioIoService::attachBlkQueue(unsigned q, const VringLayout &vq,
                                CompletionBarrier done)
{
    panic_if(blkMem_ == nullptr,
             name(), ": attachBlkQueue before attachBlk");
    panic_if(q == 0, name(), ": queue 0 belongs to attachBlk");
    if (q >= blkQueues_.size())
        blkQueues_.resize(q + 1);
    BlkQueue &bq = blkQueues_[q];
    bq.vq = std::make_unique<VirtQueueDevice>(*blkMem_, vq);
    bq.done = std::move(done);
    bq.core = nullptr;
    if (params_.suppressGuestNotify)
        bq.vq->setNoNotify(true);
}

void
VirtioIoService::attachConsole(
    GuestMemory &ring_mem, const VringLayout &rx,
    const VringLayout &tx, CompletionBarrier rx_done,
    CompletionBarrier tx_done,
    std::function<void(const std::string &)> sink)
{
    conMem_ = &ring_mem;
    conRx_ = std::make_unique<VirtQueueDevice>(ring_mem, rx);
    conTx_ = std::make_unique<VirtQueueDevice>(ring_mem, tx);
    conRxDone_ = std::move(rx_done);
    conTxDone_ = std::move(tx_done);
    consoleSink_ = std::move(sink);
    if (params_.suppressGuestNotify) {
        conRx_->setNoNotify(true);
        conTx_->setNoNotify(true);
    }
}

void
VirtioIoService::consoleInput(const std::string &text)
{
    conPending_.push_back(text);
    if (wakeHook_)
        wakeHook_();
}

void
VirtioIoService::setNetTxKeyBase(unsigned pair,
                                 std::uint64_t key_base)
{
    if (pair < netPairs_.size())
        netPairs_[pair].txKeyBase = key_base;
}

void
VirtioIoService::setBlkKeyBase(unsigned q, std::uint64_t key_base)
{
    if (q < blkQueues_.size())
        blkQueues_[q].keyBase = key_base;
}

void
VirtioIoService::adoptFrom(VirtioIoService &old)
{
    panic_if(running_, name(), ": adopt into a running service");
    panic_if(old.running_, name(), ": adopt from a running service");
    panic_if(old.blkInflight_ != 0,
             name(), ": adopt with block I/O in flight");
    netMem_ = old.netMem_;
    netPairs_ = std::move(old.netPairs_);
    vswitch_ = old.vswitch_;
    port_ = old.port_;
    netLimiter_ = old.netLimiter_;
    conMem_ = old.conMem_;
    conRx_ = std::move(old.conRx_);
    conTx_ = std::move(old.conTx_);
    conRxDone_ = std::move(old.conRxDone_);
    conTxDone_ = std::move(old.conTxDone_);
    consoleSink_ = std::move(old.consoleSink_);
    conPending_ = std::move(old.conPending_);
    blkMem_ = old.blkMem_;
    blkQueues_ = std::move(old.blkQueues_);
    blkSvc_ = old.blkSvc_;
    vol_ = old.vol_;
    blkLimiter_ = old.blkLimiter_;
    netTracer_ = old.netTracer_;
    blkTracer_ = old.blkTracer_;
    // The old service's queue->core bindings belonged to its
    // scheduler registration; the new incarnation re-records them
    // on its own first visits.
    for (auto &bq : blkQueues_)
        bq.core = nullptr;
    // Traffic counters continue across the generation swap so
    // per-guest rollups don't restart at zero on a live upgrade.
    txPkts_.inc(old.txPkts_.value());
    rxPkts_.inc(old.rxPkts_.value());
    blkIos_.inc(old.blkIos_.value());
    rxDropped_.inc(old.rxDropped_.value());
    blkTimeouts_.inc(old.blkTimeouts_.value());
    blkRetries_.inc(old.blkRetries_.value());
    blkDupDone_.inc(old.blkDupDone_.value());
    blkFailures_.inc(old.blkFailures_.value());
    blkRangeErrors_.inc(old.blkRangeErrors_.value());
    difDetects_.inc(old.difDetects_.value());
    difRetries_.inc(old.difRetries_.value());
    difFails_.inc(old.difFails_.value());
    blkIntegrity_ = old.blkIntegrity_;
    // Suppression flags follow the new flavour.
    if (params_.suppressGuestNotify) {
        for (auto &np : netPairs_) {
            if (np.rx)
                np.rx->setNoNotify(true);
            if (np.tx)
                np.tx->setNoNotify(true);
        }
        for (auto &bq : blkQueues_) {
            if (bq.vq)
                bq.vq->setNoNotify(true);
        }
    }
}

void
VirtioIoService::enqueueRx(const cloud::Packet &pkt)
{
    enqueueRx(pkt, 0);
}

void
VirtioIoService::enqueueRx(const cloud::Packet &pkt, unsigned pair)
{
    if (pair >= netPairs_.size() || !netPairs_[pair].rx) {
        // Steered toward a queue the guest never set up (stale RSS
        // table during a pair-count change): fall back to pair 0.
        pair = 0;
        if (netPairs_.empty())
            return;
    }
    NetPair &np = netPairs_[pair];
    if (np.rxPending.size() >= params_.rxPendingMax) {
        rxDropped_.inc();
        return;
    }
    np.rxPending.push_back(pkt);
    if (rxWakeHook_)
        rxWakeHook_(pair);
    else if (wakeHook_)
        wakeHook_();
}

void
VirtioIoService::start()
{
    panic_if(running_, name(), ": started twice");
    running_ = true;
    if (!externallyDriven_)
        scheduleNext();
}

void
VirtioIoService::stop()
{
    running_ = false;
    if (pollEvent_.scheduled())
        eventq().deschedule(&pollEvent_);
}

void
VirtioIoService::stall(Tick duration)
{
    stallUntil_ = std::max(stallUntil_, curTick() + duration);
    if (running_ && !externallyDriven_)
        eventq().reschedule(&pollEvent_, stallUntil_);
}

void
VirtioIoService::markDead()
{
    stop();
    ++blkGen_;
    blkPending_.clear();
    blkInflight_ = 0;
}

void
VirtioIoService::scheduleNext()
{
    if (!running_)
        return;
    Tick next = curTick() + params_.pollPeriod;
    if (core_.busyUntil() > next)
        next = core_.busyUntil();
    if (stallUntil_ > next)
        next = stallUntil_;
    eventq().reschedule(&pollEvent_, next);
}

void
VirtioIoService::poll()
{
    servicePoll(std::numeric_limits<unsigned>::max());
    scheduleNext();
}

unsigned
VirtioIoService::servicePoll(unsigned budget)
{
    if (params_.pollRegisterCost > 0)
        core_.charge(params_.pollRegisterCost);
    // Drain until the budget is spent or a full pass over every
    // role (and every queue of each role) finds nothing: work that
    // appears mid-visit (rx buffers replenished, a burst published
    // while a role was draining) is picked up now rather than
    // waiting out a poll period. Each queue signals its completion
    // barrier once per drained pass, not once per chain.
    unsigned work = 0;
    while (work < budget) {
        unsigned pass = 0;
        for (auto &np : netPairs_) {
            if (np.tx && work + pass < budget)
                pass += pollNetTx(np, budget - work - pass, core_);
            if (np.rx && work + pass < budget)
                pass += pollNetRx(np, budget - work - pass, core_);
        }
        for (unsigned q = 0; q < blkQueues_.size(); ++q) {
            if (blkQueues_[q].vq && work + pass < budget)
                pass += pollBlk(q, budget - work - pass, core_);
        }
        if (conTx_ && work + pass < budget)
            pass += pollConsole(budget - work - pass);
        work += pass;
        if (pass == 0)
            break;
    }
    pollsTotal_.inc();
    if (work > 0)
        pollsBusy_.inc();
    pollBatch_.record(double(work));
    return work;
}

unsigned
VirtioIoService::servicePollNetPair(unsigned pair, unsigned budget,
                                    hw::CpuExecutor *core)
{
    if (pair >= netPairs_.size() || !netPairs_[pair].tx)
        return 0;
    hw::CpuExecutor &exec = core ? *core : core_;
    if (params_.pollRegisterCost > 0)
        exec.charge(params_.pollRegisterCost);
    NetPair &np = netPairs_[pair];
    unsigned work = 0;
    while (work < budget) {
        unsigned pass = 0;
        pass += pollNetTx(np, budget - work - pass, exec);
        if (work + pass < budget)
            pass += pollNetRx(np, budget - work - pass, exec);
        work += pass;
        if (pass == 0)
            break;
    }
    pollsTotal_.inc();
    if (work > 0)
        pollsBusy_.inc();
    pollBatch_.record(double(work));
    return work;
}

unsigned
VirtioIoService::servicePollBlkQueue(unsigned q, unsigned budget,
                                     hw::CpuExecutor *core)
{
    if (q >= blkQueues_.size() || !blkQueues_[q].vq)
        return 0;
    hw::CpuExecutor &exec = core ? *core : core_;
    if (params_.pollRegisterCost > 0)
        exec.charge(params_.pollRegisterCost);
    unsigned work = 0;
    while (work < budget) {
        unsigned served = pollBlk(q, budget - work, exec);
        work += served;
        if (served == 0)
            break;
    }
    pollsTotal_.inc();
    if (work > 0)
        pollsBusy_.inc();
    pollBatch_.record(double(work));
    return work;
}

unsigned
VirtioIoService::servicePollConsole(unsigned budget)
{
    if (!conTx_)
        return 0;
    unsigned work = 0;
    while (work < budget) {
        unsigned served = pollConsole(budget - work);
        work += served;
        if (served == 0)
            break;
    }
    pollsTotal_.inc();
    if (work > 0)
        pollsBusy_.inc();
    return work;
}

unsigned
VirtioIoService::pollNetTx(NetPair &np, unsigned max,
                           hw::CpuExecutor &core)
{
    // One batched drain: every chain available at this visit is
    // popped, processed, and completed together; one used-index
    // publish and one tail write (the barrier) close the batch.
    auto chains = np.tx->popBatch(max);
    if (chains.empty())
        return 0;
    Tick cost = 0;
    std::vector<VringUsedElem> used;
    used.reserve(chains.size());
    for (const auto &chain : chains) {
        if (netTracer_) {
            // Under a shared scheduler the wait for a poll visit
            // is its own stage; dedicated polling never stamps it
            // and the pickup span carries the whole wait.
            if (externallyDriven_)
                netTracer_->stamp(np.txKeyBase | chain.head,
                                  obs::Stage::SchedDelay,
                                  curTick());
            netTracer_->stamp(np.txKeyBase | chain.head,
                              obs::Stage::PollPickup, curTick());
        }
        auto ext = guest::readPacketFromTxChain(*netMem_, chain);
        cost += params_.perPacketCost + params_.perPacketCopyCost;
        if (ext.ok) {
            Tick when = netLimiter_.admit(curTick(), ext.pkt.len);
            cloud::Packet pkt = ext.pkt;
            cloud::VSwitch *sw = vswitch_;
            cloud::PortId port = port_;
            if (sim().partitioned() &&
                sw->partition() != partition()) {
                // The backend posts to a switch homed in another
                // partition (a guest mid-migration still bound to
                // its old server's switch): cross the PCIe hop via
                // the mailbox.
                sim().post(sw->partition(),
                           std::max(when, curTick()) +
                               sim().lookahead(),
                           [sw, port, pkt] { sw->send(port, pkt); },
                           Event::defaultPri,
                           name() + ".paced_tx");
            } else if (when <= curTick()) {
                sw->send(port, pkt);
            } else {
                auto *ev = new OneShotEvent(
                    [sw, port, pkt] { sw->send(port, pkt); },
                    name() + ".paced_tx");
                eventq().schedule(ev, when);
            }
            txPkts_.inc();
        }
        used.push_back(VringUsedElem{chain.head, 0});
        if (netTracer_)
            netTracer_->stamp(np.txKeyBase | chain.head,
                              obs::Stage::Service, curTick());
    }
    np.tx->pushUsedBatch(used);
    if (params_.completionRegisterCost > 0)
        cost += params_.completionRegisterCost;
    core.charge(cost);
    if (np.txDone)
        np.txDone();
    return unsigned(chains.size());
}

unsigned
VirtioIoService::pollNetRx(NetPair &np, unsigned max,
                           hw::CpuExecutor &core)
{
    Tick cost = 0;
    unsigned completed = 0;
    std::vector<VringUsedElem> used;
    while (completed < max && !np.rxPending.empty()) {
        if (!np.rx->hasWork())
            break; // guest has not replenished rx buffers
        auto chain = np.rx->pop();
        if (!chain)
            continue; // malformed buffer consumed
        const cloud::Packet &pkt = np.rxPending.front();
        std::uint32_t written =
            guest::writePacketToRxChain(*netMem_, *chain, pkt);
        np.rxPending.pop_front();
        cost += params_.perPacketCost + params_.perPacketCopyCost;
        used.push_back(VringUsedElem{chain->head, written});
        rxPkts_.inc();
        ++completed;
    }
    np.rx->pushUsedBatch(used);
    if (completed > 0) {
        if (params_.completionRegisterCost > 0)
            cost += params_.completionRegisterCost;
        core.charge(cost);
        if (np.rxDone)
            np.rxDone();
    } else if (cost > 0) {
        core.charge(cost);
    }
    return completed;
}

unsigned
VirtioIoService::pollConsole(unsigned max)
{
    // Guest output: drain the tx queue into the sink.
    unsigned out = 0;
    while (out < max) {
        auto chain = conTx_->pop();
        if (!chain)
            break;
        std::string text;
        for (const auto &seg : chain->segs) {
            if (seg.deviceWrites || seg.len == 0)
                continue;
            auto blob = conMem_->readBlob(seg.addr, seg.len);
            text.append(blob.begin(), blob.end());
        }
        conTx_->pushUsed(chain->head, 0);
        core_.charge(usToTicks(0.5));
        if (consoleSink_)
            consoleSink_(text);
        ++out;
    }
    if (out > 0) {
        if (params_.completionRegisterCost > 0)
            core_.charge(params_.completionRegisterCost);
        if (conTxDone_)
            conTxDone_();
    }

    // Host input: copy pending strings into posted rx buffers.
    unsigned in = 0;
    while (out + in < max && !conPending_.empty() &&
           conRx_->hasWork()) {
        auto chain = conRx_->pop();
        if (!chain)
            continue;
        const std::string &text = conPending_.front();
        std::uint32_t written = 0;
        for (const auto &seg : chain->segs) {
            if (!seg.deviceWrites)
                continue;
            Bytes n = std::min<Bytes>(seg.len, text.size());
            std::vector<std::uint8_t> bytes(text.begin(),
                                            text.begin() + long(n));
            conMem_->writeBlob(seg.addr, bytes);
            written = std::uint32_t(n);
            break;
        }
        conRx_->pushUsed(chain->head, written);
        conPending_.pop_front();
        ++in;
    }
    if (in > 0) {
        if (params_.completionRegisterCost > 0)
            core_.charge(params_.completionRegisterCost);
        if (conRxDone_)
            conRxDone_();
    }
    return out + in;
}

hw::CpuExecutor &
VirtioIoService::blkExecutor(unsigned q)
{
    if (q < blkQueues_.size() && blkQueues_[q].core)
        return *blkQueues_[q].core;
    return blkCore_ ? *blkCore_ : core_;
}

unsigned
VirtioIoService::pollBlk(unsigned q, unsigned max,
                         hw::CpuExecutor &core)
{
    BlkQueue &bq = blkQueues_[q];
    // Completions for this queue follow the core that polls it, so
    // a per-queue poller keeps its whole submit/complete path on
    // its own executor.
    bq.core = &core;
    unsigned picked = 0;
    // Requests completed without a storage round trip (flush,
    // unsupported ops, range errors, malformed chains) batch into
    // one used-ring publish and one barrier at the end of the
    // drain; real reads/writes complete asynchronously from
    // onBlkServiceDone.
    std::vector<VringUsedElem> done_now;
    while (picked < max) {
        auto chain = bq.vq->pop();
        if (!chain)
            break;
        ++picked;
        if (blkTracer_) {
            if (externallyDriven_)
                blkTracer_->stamp(bq.keyBase | chain->head,
                                  obs::Stage::SchedDelay,
                                  curTick());
            blkTracer_->stamp(bq.keyBase | chain->head,
                              obs::Stage::PollPickup, curTick());
        }
        // Chain: [hdr 16B out] [data in|out]? [status 1B in].
        if (chain->segs.size() < 2 ||
            chain->segs.front().deviceWrites ||
            chain->segs.front().len < VirtioBlkReqHdr::wireSize ||
            !chain->segs.back().deviceWrites ||
            chain->segs.back().len != 1) {
            done_now.push_back(VringUsedElem{chain->head, 0});
            continue;
        }
        VirtioBlkReqHdr hdr = VirtioBlkReqHdr::readFrom(
            *blkMem_, chain->segs.front().addr);
        Segment status = chain->segs.back();
        bool has_data = chain->segs.size() >= 3;
        Segment data{0, 0, false};
        if (has_data)
            data = chain->segs[1];

        if (hdr.type == VIRTIO_BLK_T_FLUSH ||
            (hdr.type == VIRTIO_BLK_T_IN && !has_data) ||
            (hdr.type == VIRTIO_BLK_T_OUT && !has_data)) {
            // Flush (or degenerate zero-length op): complete OK.
            blkMem_->write8(status.addr, VIRTIO_BLK_S_OK);
            done_now.push_back(VringUsedElem{chain->head, 1});
            blkIos_.inc();
            continue;
        }
        if (hdr.type != VIRTIO_BLK_T_IN &&
            hdr.type != VIRTIO_BLK_T_OUT) {
            blkMem_->write8(status.addr, VIRTIO_BLK_S_UNSUPP);
            done_now.push_back(VringUsedElem{chain->head, 1});
            continue;
        }
        // The data descriptor's direction must agree with the
        // header: a read needs a device-writable buffer, a write a
        // device-readable one. A disagreement means the header and
        // the chain describe different requests — a zeroed/rotted
        // header in front of a write chain would otherwise read
        // back as a well-formed IN and falsely ack the guest's
        // write. Shape error, contained as IOERR.
        if (has_data &&
            (hdr.type == VIRTIO_BLK_T_IN) != data.deviceWrites) {
            blkMem_->write8(status.addr, VIRTIO_BLK_S_IOERR);
            done_now.push_back(VringUsedElem{chain->head, 1});
            blkRangeErrors_.inc();
            continue;
        }

        // With DIF protection on, the data segment carries an
        // 8-byte tag per 512-byte sector after the payload.
        Bytes payload_len = data.len;
        if (blkIntegrity_ && has_data) {
            if (data.len % cloud::difProtectedSectorBytes != 0) {
                // Untagged request on a protected path.
                blkMem_->write8(status.addr, VIRTIO_BLK_S_IOERR);
                done_now.push_back(VringUsedElem{chain->head, 1});
                difFails_.inc();
                continue;
            }
            payload_len = cloud::difPayloadBytes(data.len);
        }

        // The header content is guest-authored (IO-Bond shadows it
        // verbatim): a hostile sector/length must become an I/O
        // error toward the guest, never a storage-fabric panic.
        if (hdr.sector > vol_->capacity() / 512 ||
            payload_len >
                vol_->capacity() - hdr.sector * 512) {
            blkMem_->write8(status.addr, VIRTIO_BLK_S_IOERR);
            done_now.push_back(VringUsedElem{chain->head, 1});
            blkRangeErrors_.inc();
            continue;
        }

        bool is_write = hdr.type == VIRTIO_BLK_T_OUT;

        if (is_write) {
            // Data already sits in ring memory; persist it now.
            auto buf = blkMem_->readBlob(data.addr, data.len);
            if (blkIntegrity_) {
                // Verify the guest's tags before persisting: a
                // payload corrupted between the guest and here
                // (shadow ring, DMA residue) must never become
                // durable. IOERR sends the guest back to its
                // pristine bounce buffer for a fresh attempt.
                if (cloud::difCheck(buf, hdr.sector) >= 0) {
                    difDetects_.inc();
                    blkMem_->write8(status.addr,
                                    VIRTIO_BLK_S_IOERR);
                    done_now.push_back(
                        VringUsedElem{chain->head, 1});
                    continue;
                }
                vol_->writeData(
                    hdr.sector,
                    {buf.begin(), buf.begin() + long(payload_len)});
                vol_->writeTags(
                    hdr.sector,
                    {buf.begin() + long(payload_len), buf.end()});
            } else {
                vol_->writeData(hdr.sector, buf);
            }
        }

        PendingBlk p;
        p.write = is_write;
        p.lba = hdr.sector;
        p.len = data.len;
        p.payloadLen = payload_len;
        p.dataAddr = data.addr;
        p.statusAddr = status.addr;
        p.head = chain->head;
        p.q = q;
        std::uint64_t seq = blkNextSeq_++;
        blkPending_.emplace(seq, p);
        ++blkInflight_;

        Tick copy_cost = 0;
        if (is_write && params_.blkCopyBytesPerSec > 0.0) {
            copy_cost = Tick(double(data.len) /
                             params_.blkCopyBytesPerSec *
                             double(tickSec));
        }
        submitBlkAttempt(seq, copy_cost);
    }
    if (!done_now.empty()) {
        bq.vq->pushUsedBatch(done_now);
        if (params_.completionRegisterCost > 0)
            core.charge(params_.completionRegisterCost);
        if (bq.done)
            bq.done();
    }
    return picked;
}

void
VirtioIoService::submitBlkAttempt(std::uint64_t seq, Tick copy_cost)
{
    const PendingBlk &p = blkPending_.at(seq);
    std::uint64_t gen = blkGen_;

    cloud::BlockIo io;
    io.write = p.write;
    io.lba = p.lba;
    io.len = p.len;
    io.done = [this, seq, gen](bool wire) {
        onBlkServiceDone(seq, gen, wire);
    };
    io.wantCorruption = blkIntegrity_ && !p.write;
    io.srcPartition = partition();
    auto io_box = std::make_shared<cloud::BlockIo>(std::move(io));

    if (params_.blkTimeout > 0) {
        // Bounded exponential backoff: every resubmission doubles
        // the wait before the next one.
        Tick wait = params_.blkTimeout << p.attempt;
        auto *tev = new OneShotEvent(
            [this, seq, gen, attempt = p.attempt] {
                onBlkTimeout(seq, gen, attempt);
            },
            name() + ".blk_timeout");
        eventq().schedule(tev, curTick() + wait);
    }

    // The submission path: CPU work (touch + payload copy)
    // occupies the iothread — a preempted or copy-saturated
    // iothread throttles every I/O behind it — while the rest
    // of the host software path (blkExtraCost) adds latency
    // without consuming the thread.
    hw::CpuExecutor *score = &blkExecutor(p.q);
    Bytes len = p.len;
    score->run(
        params_.blkTouchCost + copy_cost,
        [this, io_box, len, gen] {
            if (gen != blkGen_)
                return; // rings torn down since submission
            Tick when = blkLimiter_.admit(
                curTick() + params_.blkExtraCost, len);
            auto *svc = blkSvc_;
            auto *vol = vol_;
            Tick at = std::max(when, curTick() +
                                         params_.blkExtraCost);
            if (sim().partitioned() &&
                svc->partition() != partition()) {
                // The request leaves this server partition for the
                // storage cluster: model the network request leg as
                // the mailbox delay instead of letting the service
                // add it on arrival. The 140 us fabric latency
                // dwarfs the PCIe-hop lookahead, so the post is
                // always causally safe.
                io_box->submittedAt = at;
                sim().post(svc->partition(),
                           at + svc->requestDelay(*io_box),
                           [svc, vol, io_box] {
                               svc->submitArrived(
                                   *vol, std::move(*io_box));
                           },
                           Event::defaultPri,
                           name() + ".blk_submit");
                return;
            }
            auto *ev = new OneShotEvent(
                [svc, vol, io_box] {
                    svc->submit(*vol, std::move(*io_box));
                },
                name() + ".blk_submit");
            eventq().schedule(ev, at);
        });
}

void
VirtioIoService::onBlkServiceDone(std::uint64_t seq,
                                  std::uint64_t gen,
                                  bool wire_corrupt)
{
    if (gen != blkGen_)
        return; // completion from before a reattach or crash
    auto it = blkPending_.find(seq);
    if (it == blkPending_.end()) {
        // A timed-out attempt we already retried (or failed) came
        // back after all. The sequence tag makes completion
        // idempotent: the guest never sees a request twice.
        blkDupDone_.inc();
        return;
    }

    // Read payloads cross the storage fabric here; with DIF on,
    // assemble and verify the tagged buffer before it reaches the
    // guest-facing path. A mismatch (injected fabric flip) heals
    // through the same sequence-tagged resubmit the timeout path
    // uses, so completion toward the guest stays exactly-once.
    std::vector<std::uint8_t> rbuf;
    if (blkIntegrity_ && !it->second.write) {
        const PendingBlk &q = it->second;
        rbuf = vol_->readData(q.lba, q.payloadLen);
        auto tags = vol_->readTags(q.lba, q.payloadLen);
        rbuf.insert(rbuf.end(), tags.begin(), tags.end());
        // Partitioned mode claims the corruption budget at the
        // service (arrival order, deterministic across threads) and
        // ships the verdict with the completion; classic mode keeps
        // the historical claim-at-completion ordering.
        bool corrupt = sim().partitioned()
                           ? wire_corrupt
                           : blkSvc_->takeCorruption();
        if (corrupt && !rbuf.empty())
            rbuf[0] ^= 0xA5;
        if (cloud::difCheck(rbuf, q.lba) >= 0) {
            difDetects_.inc();
            if (it->second.attempt < params_.blkMaxRetries) {
                ++it->second.attempt;
                difRetries_.inc();
                blkRetries_.inc();
                submitBlkAttempt(seq, 0);
                return;
            }
            // Persistent mismatch: fail, never deliver garbage.
            PendingBlk bad = it->second;
            blkPending_.erase(it);
            difFails_.inc();
            blkFailures_.inc();
            failBlkToGuest(bad, gen);
            return;
        }
    }

    PendingBlk p = it->second;
    blkPending_.erase(it);

    // The storage round trip ends here: everything from poll
    // pickup until now is the Service span.
    if (blkTracer_)
        blkTracer_->stamp(blkQueues_[p.q].keyBase | p.head,
                          obs::Stage::Service, curTick());
    // Completion handling runs on the iothread; if that thread is
    // preempted, every in-flight I/O behind it waits — the
    // mechanism behind the vm's latency tail.
    hw::CpuExecutor *core = &blkExecutor(p.q);
    Tick cost =
        params_.blkTouchCost + params_.completionRegisterCost;
    if (!p.write && params_.blkCopyBytesPerSec > 0.0) {
        cost += Tick(double(p.len) / params_.blkCopyBytesPerSec *
                     double(tickSec));
    }
    core->run(cost, [this, p, gen, rbuf = std::move(rbuf)] {
        if (gen != blkGen_)
            return; // the rings this head refers to are gone
        if (!p.write) {
            if (blkIntegrity_)
                blkMem_->writeBlob(p.dataAddr, rbuf);
            else
                blkMem_->writeBlob(p.dataAddr,
                                   vol_->readData(p.lba, p.len));
        }
        blkMem_->write8(p.statusAddr, VIRTIO_BLK_S_OK);
        BlkQueue &bq = blkQueues_[p.q];
        bq.vq->pushUsed(p.head,
                        p.write ? 1 : std::uint32_t(p.len) + 1);
        blkIos_.inc();
        panic_if(blkInflight_ == 0, name(), ": inflight underflow");
        --blkInflight_;
        if (bq.done)
            bq.done();
    });
}

void
VirtioIoService::onBlkTimeout(std::uint64_t seq, std::uint64_t gen,
                              unsigned attempt)
{
    if (gen != blkGen_)
        return;
    auto it = blkPending_.find(seq);
    if (it == blkPending_.end())
        return; // completed in time
    if (it->second.attempt != attempt)
        return; // superseded by a newer attempt's timer
    blkTimeouts_.inc();
    if (it->second.attempt >= params_.blkMaxRetries) {
        // Retries exhausted: fail toward the guest, exactly once.
        PendingBlk p = it->second;
        blkPending_.erase(it);
        blkFailures_.inc();
        failBlkToGuest(p, gen);
        return;
    }
    ++it->second.attempt;
    blkRetries_.inc();
    submitBlkAttempt(seq, 0);
}

void
VirtioIoService::failBlkToGuest(const PendingBlk &p,
                                std::uint64_t gen)
{
    hw::CpuExecutor *core = &blkExecutor(p.q);
    core->run(
        params_.blkTouchCost + params_.completionRegisterCost,
        [this, p, gen] {
            if (gen != blkGen_)
                return;
            blkMem_->write8(p.statusAddr, VIRTIO_BLK_S_IOERR);
            BlkQueue &bq = blkQueues_[p.q];
            bq.vq->pushUsed(p.head, 1);
            panic_if(blkInflight_ == 0,
                     name(), ": inflight underflow");
            --blkInflight_;
            if (bq.done)
                bq.done();
        });
}

} // namespace hv
} // namespace bmhive

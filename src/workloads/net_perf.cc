#include "workloads/net_perf.hh"

#include <cmath>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "cloud/packet.hh"

namespace bmhive {
namespace workloads {

Tick
stackCost(NetStack stack)
{
    switch (stack) {
      case NetStack::Kernel:
        return paper::kernelUdpPathCost;
      case NetStack::Dpdk:
        return paper::dpdkPathCost;
      case NetStack::Icmp:
        // ICMP is handled in the kernel without a socket wakeup;
        // slightly cheaper than the UDP socket path.
        return Tick(double(paper::kernelUdpPathCost) * 0.8);
    }
    return paper::kernelUdpPathCost;
}

PacketFlood::PacketFlood(Simulation &sim, std::string name,
                         GuestContext src, GuestContext dst,
                         PacketFloodParams params)
    : SimObject(sim, std::move(name)), src_(src), dst_(dst),
      params_(params)
{
}

void
PacketFlood::start()
{
    t0_ = curTick() + params_.warmup;
    t1_ = t0_ + params_.window;

    // Receive-side accounting, bucketed per millisecond for the
    // jitter estimate.
    std::size_t buckets = std::size_t(params_.window / msToTicks(1));
    if (buckets == 0)
        buckets = 1;
    perMs_.assign(buckets, 0);
    inWindow_ = 0;
    bytesInWindow_ = 0;

    dst_.net->setRxProcessing(stackCost(params_.stack),
                              params_.flows);
    dst_.net->setRxHandler([this](const cloud::Packet &p) {
        ++received_;
        Tick now = curTick();
        if (now >= t0_ && now < t1_) {
            ++inWindow_;
            // netperf reports goodput: payload only.
            Bytes hdrs = cloud::ethHeaderBytes +
                         cloud::ipUdpHeaderBytes;
            bytesInWindow_ += p.len > hdrs ? p.len - hdrs : 0;
            auto b = std::size_t((now - t0_) / msToTicks(1));
            if (b < perMs_.size())
                ++perMs_[b];
        }
    });

    for (unsigned f = 0; f < params_.flows; ++f)
        senderLoop(f);

    // Stop the senders at t1; collect() allows the pipe to drain
    // for the extra doneAt() slack.
    auto *stopper =
        new OneShotEvent([this] { stop_ = true; }, name() + ".stop");
    eventq().schedule(stopper, t1_);
}

PacketFloodResult
PacketFlood::collect()
{
    stop_ = true;
    dst_.net->setRxHandler(nullptr);
    dst_.net->setRxProcessing(0, 1);

    PacketFloodResult r;
    r.sent = sent_;
    r.received = received_;
    double secs = ticksToSec(params_.window);
    r.pps = double(inWindow_) / secs;
    r.gbps = double(bytesInWindow_) * 8.0 / secs / 1e9;
    // Jitter across 1 ms intervals (drop first and last, which are
    // partial with respect to packet flight time).
    if (perMs_.size() > 4) {
        SummaryStats s;
        for (std::size_t i = 1; i + 1 < perMs_.size(); ++i)
            s.record(double(perMs_[i]));
        r.jitterPct =
            s.mean() > 0 ? 100.0 * s.stddev() / s.mean() : 0.0;
    }
    return r;
}

PacketFloodResult
PacketFlood::run()
{
    start();
    sim_.run(doneAt());
    return collect();
}

void
PacketFlood::senderLoop(unsigned flow)
{
    if (stop_)
        return;
    hw::CpuExecutor &cpu = src_.cpu(flow + 1);
    // The guest stack prepares a batch of datagrams, then the
    // driver publishes them and rings the doorbell once.
    Tick batch_cost =
        Tick(params_.batch) * stackCost(params_.stack);
    cpu.run(batch_cost, [this, flow] {
        if (stop_)
            return;
        unsigned pushed = 0;
        for (unsigned i = 0; i < params_.batch; ++i) {
            cloud::Packet p;
            p.src = src_.net->mac();
            p.dst = dst_.net->mac();
            p.len = cloud::udpFrameBytes(params_.payloadBytes);
            p.created = curTick();
            p.seq = seq_++;
            // Flow identity (UDP source port analog): keeps RSS
            // and XPS steering per-flow-stable on MQ devices.
            p.flow = flow;
            if (!src_.net->sendPacket(p, false, src_.cpu(flow + 1)))
                break; // ring full: completions will free slots
            ++pushed;
        }
        sent_ += pushed;
        if (pushed > 0)
            src_.net->kickTx(src_.cpu(flow + 1));
        if (pushed == 0) {
            // Ring full: back off one poll period and retry.
            auto *ev = new OneShotEvent(
                [this, flow] { senderLoop(flow); },
                name() + ".retry");
            scheduleIn(ev, paper::backendPollPeriod);
            return;
        }
        senderLoop(flow);
    });
}

PingPong::PingPong(Simulation &sim, std::string name, GuestContext a,
                   GuestContext b, PingPongParams params)
    : SimObject(sim, std::move(name)), a_(a), b_(b), params_(params)
{
}

PingPongResult
PingPong::run()
{
    remaining_ = params_.samples;

    // DPDK mode: the guest polls its rx ring in user space — no
    // interrupt cost, packets are picked up by the PMD spin loop.
    Tick a_irq = a_.os->irqCost();
    Tick b_irq = b_.os->irqCost();
    Tick a_msi = a_.os->bus().msiLatency();
    Tick b_msi = b_.os->bus().msiLatency();
    if (params_.stack == NetStack::Dpdk) {
        // The guest PMD polls its rx ring directly: no interrupt
        // cost, pickup within the spin-loop granularity.
        a_.os->setIrqCost(nsToTicks(100));
        b_.os->setIrqCost(nsToTicks(100));
        a_.os->bus().setMsiLatency(nsToTicks(200));
        b_.os->bus().setMsiLatency(nsToTicks(200));
    }

    // Responder: bounce every message back after the stack cost.
    b_.net->setRxHandler([this](const cloud::Packet &p) {
        b_.cpu(0).run(stackCost(params_.stack), [this, p] {
            cloud::Packet r;
            r.src = b_.net->mac();
            r.dst = a_.net->mac();
            r.len = p.len;
            r.seq = p.seq;
            r.created = curTick();
            b_.net->sendPacket(r, true, b_.cpu(0));
        });
    });

    // Initiator: record RTT, fire the next sample.
    a_.net->setRxHandler([this](const cloud::Packet &) {
        rtt_.record(curTick() - sentAt_);
        if (remaining_ > 0)
            fire();
    });

    fire();
    // Step the simulation until all samples are collected (the
    // backend poll loops never drain the event queue, so run in
    // bounded slices rather than to quiescence).
    Tick deadline = curTick() + secToTicks(10);
    while (rtt_.count() < params_.samples && curTick() < deadline)
        sim_.run(curTick() + msToTicks(1));

    a_.net->setRxHandler(nullptr);
    b_.net->setRxHandler(nullptr);
    a_.os->setIrqCost(a_irq);
    b_.os->setIrqCost(b_irq);
    a_.os->bus().setMsiLatency(a_msi);
    b_.os->bus().setMsiLatency(b_msi);

    PingPongResult r;
    // sockperf reports one-way latency = RTT / 2.
    r.avgUs = rtt_.meanUs() / 2.0;
    r.p50Us = rtt_.p50Us() / 2.0;
    r.p99Us = rtt_.p99Us() / 2.0;
    r.maxUs = rtt_.maxUs() / 2.0;
    return r;
}

void
PingPong::fire()
{
    --remaining_;
    a_.cpu(0).run(stackCost(params_.stack), [this] {
        sentAt_ = curTick();
        cloud::Packet p;
        p.src = a_.net->mac();
        p.dst = b_.net->mac();
        p.len = cloud::udpFrameBytes(params_.payloadBytes);
        p.created = sentAt_;
        p.seq = seq_++;
        a_.net->sendPacket(p, true, a_.cpu(0));
    });
}

} // namespace workloads
} // namespace bmhive

/**
 * @file
 * Application benchmarks (paper section 4.4): NGINX under Apache
 * HTTP benchmark (Fig. 12), MariaDB under sysbench (Figs. 13/14),
 * and Redis under redis-benchmark (Figs. 15/16).
 *
 * The server application is a queueing model executed on the
 * guest's vCPUs: each request costs per-request CPU work plus a
 * number of exit-causing events (interrupt delivery, timer and
 * syscall side effects) that are free on a bm-guest and cost
 * ~10 us each on a vm-guest, plus optional async block I/O. The
 * client side is a zero-cost closed-loop load generator attached
 * directly to the vSwitch, mirroring a dedicated load-generation
 * box.
 */

#ifndef BMHIVE_WORKLOADS_APP_SERVER_HH
#define BMHIVE_WORKLOADS_APP_SERVER_HH

#include <deque>
#include <map>
#include <string>

#include "base/stats.hh"
#include "cloud/vswitch.hh"
#include "sim/sim_object.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace workloads {

/** What one request costs the server. */
struct AppProfile
{
    std::string name;
    /** Native CPU work per request. */
    Tick cpuPerRequest = usToTicks(20);
    /** Exit-causing events per request (may be fractional;
     *  charged only under a VM execution model). */
    double exitsPerRequest = 1.0;
    /** Memory intensity (scales the EPT stretch effect). */
    double memIntensity = 0.3;
    Bytes requestBytes = 200;
    Bytes responseBytes = 600;
    /** Server worker contexts (vCPUs used). */
    unsigned workers = 8;
    /** Async block writes issued per request (log flushes). */
    double blkWritesPerRequest = 0.0;
    Bytes blkWriteBytes = 16 * KiB;

    // --- Presets calibrated to the paper's reported ratios ---

    /** NGINX serving a small static page, KeepAlive off. */
    static AppProfile nginx();
    /** MariaDB sysbench read-only (16 tables x 1M rows). */
    static AppProfile mariadbReadOnly();
    /** MariaDB sysbench read/write mixed. */
    static AppProfile mariadbReadWrite();
    /** MariaDB sysbench write-only. */
    static AppProfile mariadbWriteOnly();
    /** Redis GET/SET with @p value_bytes values. */
    static AppProfile redis(Bytes value_bytes);
};

struct AppBenchParams
{
    unsigned clients = 128;
    Tick warmup = msToTicks(10);
    Tick window = msToTicks(200);
};

struct AppBenchResult
{
    double rps = 0.0;     ///< responses per second in the window
    double avgMs = 0.0;   ///< mean client-observed latency
    double p99Ms = 0.0;
    std::uint64_t completed = 0;
    std::uint64_t timedOut = 0;
};

/**
 * Closed-loop client swarm driving the server application on a
 * guest. The swarm owns a vSwitch port of its own (the load
 * generator box).
 */
class AppServerBench : public SimObject
{
  public:
    AppServerBench(Simulation &sim, std::string name,
                   GuestContext server, cloud::VSwitch &vswitch,
                   cloud::MacAddr client_mac, AppProfile profile,
                   AppBenchParams params);

    AppBenchResult run();

  private:
    void clientSend(unsigned client);
    void serveRequest(const cloud::Packet &req);
    void respond(std::uint64_t seq, Bytes resp_len);

    GuestContext server_;
    cloud::VSwitch &vswitch_;
    cloud::MacAddr clientMac_;
    AppProfile profile_;
    AppBenchParams params_;
    cloud::PortId clientPort_ = 0;

    std::map<std::uint64_t, Tick> inflight_; ///< seq -> sent tick
    LatencyRecorder lat_;
    std::uint64_t seq_ = 0;
    std::uint64_t completedInWindow_ = 0;
    std::uint64_t timeouts_ = 0;
    double exitDebt_ = 0.0; ///< fractional exits accumulator
    double blkDebt_ = 0.0;  ///< fractional block writes
    unsigned nextWorker_ = 0;
    Tick measureStart_ = 0;
    Tick measureEnd_ = 0;
    bool stop_ = false;
};

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_APP_SERVER_HH

#include "workloads/spec.hh"

#include "base/paper_constants.hh"

namespace bmhive {
namespace workloads {

const std::vector<SpecComponent> &
specCint2006()
{
    // Native scores approximate published E5-2682 v4 class results;
    // memory intensity / exit profiles follow the benchmarks'
    // well-known characterization (mcf/omnetpp pointer-chasing and
    // memory-bound; perlbench/gobmk core-bound).
    static const std::vector<SpecComponent> components = {
        {"400.perlbench", 35.0, 0.15, 300},
        {"401.bzip2", 24.0, 0.30, 200},
        {"403.gcc", 32.0, 0.45, 600},
        {"429.mcf", 26.0, 0.95, 1500},
        {"445.gobmk", 27.0, 0.10, 150},
        {"456.hmmer", 28.0, 0.20, 120},
        {"458.sjeng", 30.0, 0.15, 150},
        {"462.libquantum", 52.0, 0.85, 900},
        {"464.h264ref", 42.0, 0.25, 250},
        {"471.omnetpp", 23.0, 0.90, 1200},
        {"473.astar", 25.0, 0.60, 700},
        {"483.xalancbmk", 36.0, 0.70, 1000},
    };
    return components;
}

double
specScore(const SpecComponent &comp, Platform platform, Rng &rng)
{
    double noise = 1.0 + rng.uniform(-0.005, 0.005);
    switch (platform) {
      case Platform::Physical:
        return comp.nativeScore * noise;
      case Platform::BareMetal:
        // Paper section 4.2: the bm-guest measured ~4% faster than
        // the (differently configured) physical reference.
        return comp.nativeScore * 1.04 * noise;
      case Platform::Vm: {
        // EPT: two-level walks tax memory-bound code; exits add
        // hypervisor time.
        double ept_tax = 1.0 + 0.075 * comp.memIntensity;
        double exit_tax =
            1.0 + comp.exitsPerSec * ticksToSec(paper::vmExitCost);
        return comp.nativeScore / (ept_tax * exit_tax) * noise;
      }
    }
    return 0.0;
}

std::vector<StreamResult>
streamBandwidth(Rng &rng)
{
    struct Kernel
    {
        const char *name;
        double efficiency; ///< fraction of channel peak achieved
    };
    // Copy moves 16B/iter, Triad 24B/iter + FMA; efficiencies match
    // the usual STREAM results on quad-channel Broadwell.
    static const Kernel kernels[] = {
        {"Copy", 0.82},
        {"Scale", 0.81},
        {"Add", 0.86},
        {"Triad", 0.85},
    };
    std::vector<StreamResult> out;
    for (const auto &k : kernels) {
        double base = memChannelPeakGBs * k.efficiency;
        StreamResult r;
        r.kernel = k.name;
        r.physicalGBs = base * (1.0 + rng.uniform(-0.004, 0.004));
        // bm == physical: memory is accessed natively.
        r.bareMetalGBs = base * (1.0 + rng.uniform(-0.004, 0.004));
        // vm: EPT/TLB pressure under 16-thread load (paper: best
        // case ~98% of the bm-guest).
        r.vmGBs = base * 0.978 * (1.0 + rng.uniform(-0.006, 0.006));
        out.push_back(r);
    }
    return out;
}

} // namespace workloads
} // namespace bmhive

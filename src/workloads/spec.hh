/**
 * @file
 * CPU and memory benchmark models: SPEC CINT2006 (paper Fig. 7)
 * and STREAM (Fig. 8).
 *
 * Each SPEC component carries a profile (memory intensity, native
 * exit rate when run inside a VM); the platform result is the
 * native score divided by the platform's stretch on that profile.
 * STREAM bandwidth is bounded by the memory channels; the vm pays
 * the EPT/TLB tax under load (the paper measures ~98% of bm).
 */

#ifndef BMHIVE_WORKLOADS_SPEC_HH
#define BMHIVE_WORKLOADS_SPEC_HH

#include <string>
#include <vector>

#include "base/random.hh"
#include "base/units.hh"

namespace bmhive {
namespace workloads {

/** Which platform executes the benchmark. */
enum class Platform { Physical, BareMetal, Vm };

struct SpecComponent
{
    std::string name;
    double nativeScore;    ///< SPEC ratio on the physical machine
    double memIntensity;   ///< 0 = core-bound, 1 = memory-bound
    double exitsPerSec;    ///< exit rate when run inside a VM
};

/** The 12 components of SPEC CINT2006. */
const std::vector<SpecComponent> &specCint2006();

/**
 * Score of @p comp on @p platform.
 *
 * The bm-guest runs ~4% faster than the reference physical
 * machine (different board/BIOS/memory vendor, paper section
 * 4.2); the vm-guest pays exit handling plus an EPT walk tax that
 * grows with memory intensity.
 *
 * @param rng  adds small run-to-run variation (+-0.5%)
 */
double specScore(const SpecComponent &comp, Platform platform,
                 Rng &rng);

struct StreamResult
{
    std::string kernel;
    double physicalGBs;
    double bareMetalGBs;
    double vmGBs;
};

/**
 * STREAM with 16 threads, 200M x 8B elements per array (paper
 * configuration: 1.5 GB per array, 4.5 GB total).
 */
std::vector<StreamResult> streamBandwidth(Rng &rng);

/** Peak bandwidth of the four DDR4-2400 channels (GB/s). */
constexpr double memChannelPeakGBs = 4 * 19.2;

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_SPEC_HH

/**
 * @file
 * GuestContext: the uniform handle workloads use to drive a guest,
 * regardless of whether it is a bm-guest (compute board + IO-Bond)
 * or a vm-guest (vCPUs + vhost). This mirrors the paper's
 * interoperability property: the benchmark binaries are identical
 * on both platforms; only the platform underneath changes.
 */

#ifndef BMHIVE_WORKLOADS_GUEST_IFACE_HH
#define BMHIVE_WORKLOADS_GUEST_IFACE_HH

#include "core/bmhive_server.hh"
#include "guest/blk_driver.hh"
#include "guest/guest_os.hh"
#include "guest/net_driver.hh"
#include "vmsim/vm_guest.hh"

namespace bmhive {
namespace workloads {

struct GuestContext
{
    guest::GuestOs *os = nullptr;
    guest::NetDriver *net = nullptr;
    guest::BlkDriver *blk = nullptr;      ///< may be null
    hv::VirtioIoService *svc = nullptr;   ///< this guest's backend

    static GuestContext
    of(core::BmGuest &g)
    {
        return {&g.os(), &g.net(), g.blk(),
                &g.hypervisor().service()};
    }

    static GuestContext
    of(vmsim::VmGuest &g)
    {
        return {&g.os(), &g.net(), g.blk(), &g.service()};
    }

    hw::CpuExecutor &
    cpu(unsigned i) const
    {
        return os->cpu(i % os->cpuCount());
    }
};

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_GUEST_IFACE_HH

#include "workloads/adversarial.hh"

#include <utility>

#include "pci/config_space.hh"
#include "virtio/virtio_pci.hh"
#include "virtio/vring.hh"

namespace bmhive {
namespace workloads {

using namespace virtio;

namespace {

/** The standard bm-guest function slots (see BmHiveServer). */
constexpr int netSlot = 3;
constexpr int consoleSlot = 5;

} // namespace

AdversarialGuest::AdversarialGuest(Simulation &sim, std::string name,
                                   hw::ComputeBoard &board,
                                   AdversarialGuestParams params)
    : SimObject(sim, std::move(name)), board_(board),
      params_(params), rng_(params.seed),
      attacks_(metrics().counter(this->name() + ".attacks"))
{
}

void
AdversarialGuest::start()
{
    stopped_ = false;
    auto *ev = new OneShotEvent([this] { step(); },
                                name() + ".step");
    scheduleIn(ev, params_.period);
}

Addr
AdversarialGuest::bar0(int slot)
{
    auto &bus = board_.pciBus();
    if (bus.configRead(slot, pci::REG_VENDOR_ID, 2) == 0xffff)
        return 0;
    return bus.configRead(slot, pci::REG_BAR0, 4) &
           ~std::uint32_t(0xf);
}

AdversarialGuest::RingInfo
AdversarialGuest::ringInfo(Addr bar, unsigned q)
{
    auto &bus = board_.pciBus();
    bus.memWrite(bar + COMMON_Q_SELECT, q, 2);
    RingInfo ri;
    ri.size = std::uint16_t(bus.memRead(bar + COMMON_Q_SIZE, 2));
    bool enabled = bus.memRead(bar + COMMON_Q_ENABLE, 2) != 0;
    ri.desc = Addr(bus.memRead(bar + COMMON_Q_DESCLO, 4)) |
              Addr(bus.memRead(bar + COMMON_Q_DESCHI, 4)) << 32;
    ri.avail = Addr(bus.memRead(bar + COMMON_Q_AVAILLO, 4)) |
               Addr(bus.memRead(bar + COMMON_Q_AVAILHI, 4)) << 32;
    // The attacker must not crash its own simulation: only
    // scribble rings that really live in this board's memory.
    Bytes msize = board_.memory().size();
    ri.ok = enabled && ri.size > 0 &&
            ri.desc + Bytes(ri.size) * vringDescSize <= msize &&
            ri.avail + 6 + 2 * Bytes(ri.size) <= msize;
    return ri;
}

void
AdversarialGuest::scribbleDesc(const RingInfo &ri, std::uint16_t i,
                               std::uint64_t addr,
                               std::uint32_t len,
                               std::uint16_t flags,
                               std::uint16_t next)
{
    GuestMemory &m = board_.memory();
    Addr a = ri.desc + Addr(i % ri.size) * vringDescSize;
    m.write64(a, addr);
    m.write32(a + 8, len);
    m.write16(a + 12, flags);
    m.write16(a + 14, next);
}

void
AdversarialGuest::publish(Addr bar, const RingInfo &ri, unsigned q,
                          std::uint16_t head)
{
    GuestMemory &m = board_.memory();
    std::uint16_t idx = m.read16(ri.avail + 2);
    m.write16(ri.avail + 4 + 2 * Addr(idx % ri.size), head);
    m.write16(ri.avail + 2, std::uint16_t(idx + 1));
    board_.pciBus().memWrite(bar + notifyRegionOffset, q, 4);
}

void
AdversarialGuest::attack(unsigned kind)
{
    auto &bus = board_.pciBus();
    Addr bar = bar0(netSlot);
    if (bar == 0)
        return;
    unsigned q = unsigned(rng_.uniformInt(0, 1));
    attacks_.inc();

    switch (kind % attackKinds) {
      case 0: {
        // Doorbell with an out-of-range queue index.
        unsigned bogus = unsigned(rng_.uniformInt(8, 0xffff));
        bus.memWrite(bar + notifyRegionOffset, bogus, 4);
        break;
      }
      case 1: {
        // Doorbell storm: hammer a valid doorbell far beyond any
        // honest batching.
        for (int i = 0; i < 64; ++i)
            bus.memWrite(bar + notifyRegionOffset, q, 4);
        break;
      }
      case 2: {
        // Avail-index jump wider than the ring.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        GuestMemory &m = board_.memory();
        std::uint16_t idx = m.read16(ri.avail + 2);
        m.write16(ri.avail + 2,
                  std::uint16_t(idx + 2 * ri.size + 3));
        bus.memWrite(bar + notifyRegionOffset, q, 4);
        break;
      }
      case 3: {
        // Publish a head index past the descriptor table.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        publish(bar, ri, q,
                std::uint16_t(rng_.uniformInt(ri.size, 0xfffe)));
        break;
      }
      case 4: {
        // Descriptor pointing outside guest memory.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 1));
        scribbleDesc(ri, i, board_.memory().size() + 0x10000, 512,
                     0, 0);
        publish(bar, ri, q, i);
        break;
      }
      case 5: {
        // Zero-length descriptor.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 1));
        scribbleDesc(ri, i, 0x1000, 0, 0, 0);
        publish(bar, ri, q, i);
        break;
      }
      case 6: {
        // Self-referencing descriptor chain.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 1));
        scribbleDesc(ri, i, 0x1000, 64, VRING_DESC_F_NEXT, i);
        publish(bar, ri, q, i);
        break;
      }
      case 7: {
        // Device-writable segment before a device-readable one.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok || ri.size < 2)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 2));
        auto j = std::uint16_t(i + 1);
        scribbleDesc(ri, i, 0x1000, 64,
                     VRING_DESC_F_WRITE | VRING_DESC_F_NEXT, j);
        scribbleDesc(ri, j, 0x2000, 64, 0, 0);
        publish(bar, ri, q, i);
        break;
      }
      case 8: {
        // INDIRECT combined with NEXT (forbidden by the spec).
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 1));
        scribbleDesc(ri, i, 0x1000, 16 * 8,
                     VRING_DESC_F_INDIRECT | VRING_DESC_F_NEXT, 0);
        publish(bar, ri, q, i);
        break;
      }
      case 9: {
        // Arithmetically valid but absurdly large buffer.
        RingInfo ri = ringInfo(bar, q);
        if (!ri.ok)
            break;
        auto i = std::uint16_t(rng_.uniformInt(0, ri.size - 1));
        Bytes msize = board_.memory().size();
        std::uint32_t len = std::uint32_t(
            std::min<Bytes>(msize, 8 * MiB));
        scribbleDesc(ri, i, 0, len, 0, 0);
        publish(bar, ri, q, i);
        break;
      }
      case 10: {
        // MSI vector past the table.
        bus.memWrite(bar + COMMON_Q_SELECT, q, 2);
        bus.memWrite(bar + COMMON_Q_MSIX,
                     unsigned(rng_.uniformInt(8, 0xffff)), 2);
        break;
      }
      case 11: {
        // Per-queue register write behind a bad queue selector.
        bus.memWrite(bar + COMMON_Q_SELECT,
                     unsigned(rng_.uniformInt(4, 0xff)), 2);
        bus.memWrite(bar + COMMON_Q_SIZE, 64, 2);
        bus.memWrite(bar + COMMON_Q_SELECT, q, 2);
        break;
      }
      case 12: {
        // Feature renegotiation after FEATURES_OK.
        std::uint32_t st = bus.memRead(bar + COMMON_STATUS, 1);
        if (st & STATUS_FEATURES_OK) {
            bus.memWrite(bar + COMMON_GFSELECT, 0, 4);
            bus.memWrite(bar + COMMON_GF,
                         std::uint32_t(rng_.uniformInt(0, 0xffff)),
                         4);
        }
        break;
      }
      case 13: {
        // Config-space accesses off the end / with a bad size.
        bus.configRead(netSlot, 0xfe, 4);
        bus.configWrite(netSlot, 0xff, 0xff, 4);
        bus.configRead(netSlot, 0x10, 3);
        break;
      }
      case 14: {
        // Renegotiate the console function onto rings far outside
        // guest memory (sacrifices the attacker's own console).
        Addr cbar = bar0(consoleSlot);
        if (cbar == 0)
            break;
        bus.memWrite(cbar + COMMON_STATUS, 0, 1);
        bus.memWrite(cbar + COMMON_STATUS,
                     STATUS_ACKNOWLEDGE | STATUS_DRIVER, 1);
        bus.memWrite(cbar + COMMON_GFSELECT, 1, 4);
        bus.memWrite(cbar + COMMON_GF,
                     std::uint32_t(VIRTIO_F_VERSION_1 >> 32), 4);
        bus.memWrite(cbar + COMMON_STATUS,
                     STATUS_ACKNOWLEDGE | STATUS_DRIVER |
                         STATUS_FEATURES_OK,
                     1);
        bus.memWrite(cbar + COMMON_Q_SELECT, 0, 2);
        bus.memWrite(cbar + COMMON_Q_SIZE, 64, 2);
        bus.memWrite(cbar + COMMON_Q_DESCLO, 0xffff0000u, 4);
        bus.memWrite(cbar + COMMON_Q_DESCHI, 0xffu, 4);
        bus.memWrite(cbar + COMMON_Q_AVAILLO, 0x1000, 4);
        bus.memWrite(cbar + COMMON_Q_USEDLO, 0x2000, 4);
        bus.memWrite(cbar + COMMON_Q_ENABLE, 1, 2);
        bus.memWrite(cbar + COMMON_STATUS,
                     STATUS_ACKNOWLEDGE | STATUS_DRIVER |
                         STATUS_FEATURES_OK | STATUS_DRIVER_OK,
                     1);
        break;
      }
      default:
        break;
    }
}

void
AdversarialGuest::step()
{
    if (stopped_)
        return;
    attack(unsigned(rng_.uniformInt(0, attackKinds - 1)));
    ++steps_;
    if (params_.iterations > 0 && steps_ >= params_.iterations) {
        stopped_ = true;
        return;
    }
    auto *ev = new OneShotEvent([this] { step(); },
                                name() + ".step");
    scheduleIn(ev, params_.period);
}

} // namespace workloads
} // namespace bmhive

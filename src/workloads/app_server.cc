#include "workloads/app_server.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"
#include "base/paper_constants.hh"
#include "cloud/packet.hh"

namespace bmhive {
namespace workloads {

AppProfile
AppProfile::nginx()
{
    AppProfile p;
    p.name = "nginx";
    p.cpuPerRequest = usToTicks(55);
    p.exitsPerRequest = 3.0;
    p.memIntensity = 0.25;
    p.requestBytes = 180;
    p.responseBytes = 900;
    p.workers = 8;
    return p;
}

AppProfile
AppProfile::mariadbReadOnly()
{
    AppProfile p;
    p.name = "mariadb-ro";
    p.cpuPerRequest = usToTicks(82);
    p.exitsPerRequest = 1.0;
    p.memIntensity = 0.5;
    p.requestBytes = 250;
    p.responseBytes = 1200;
    p.workers = 16;
    return p;
}

AppProfile
AppProfile::mariadbReadWrite()
{
    AppProfile p;
    p.name = "mariadb-rdwr";
    p.cpuPerRequest = usToTicks(90);
    p.exitsPerRequest = 4.8;
    p.memIntensity = 0.5;
    p.requestBytes = 300;
    p.responseBytes = 900;
    p.workers = 16;
    p.blkWritesPerRequest = 0.05;
    return p;
}

AppProfile
AppProfile::mariadbWriteOnly()
{
    AppProfile p;
    p.name = "mariadb-wr";
    p.cpuPerRequest = usToTicks(95);
    p.exitsPerRequest = 3.5;
    p.memIntensity = 0.5;
    p.requestBytes = 350;
    p.responseBytes = 400;
    p.workers = 16;
    p.blkWritesPerRequest = 0.1;
    return p;
}

AppProfile
AppProfile::redis(Bytes value_bytes)
{
    AppProfile p;
    p.name = "redis";
    // Redis is single-threaded; per-op cost grows with the value
    // size (memcpy + protocol encoding).
    p.cpuPerRequest =
        usToTicks(6.5) + Tick(double(value_bytes) * 0.35e3);
    p.exitsPerRequest = 0.28;
    p.memIntensity = 0.7;
    p.requestBytes = 64 + value_bytes / 2;
    p.responseBytes = 64 + value_bytes;
    p.workers = 1;
    return p;
}

AppServerBench::AppServerBench(Simulation &sim, std::string name,
                               GuestContext server,
                               cloud::VSwitch &vswitch,
                               cloud::MacAddr client_mac,
                               AppProfile profile,
                               AppBenchParams params)
    : SimObject(sim, std::move(name)), server_(server),
      vswitch_(vswitch), clientMac_(client_mac), profile_(profile),
      params_(params)
{
    // The load-generator box: a raw vSwitch port, no guest stack.
    clientPort_ = vswitch_.addPort(
        clientMac_, [this](const cloud::Packet &resp) {
            auto it = inflight_.find(resp.seq);
            if (it == inflight_.end())
                return; // late duplicate after a retry
            Tick sent = it->second;
            unsigned client = unsigned(resp.seq % params_.clients);
            inflight_.erase(it);
            if (curTick() >= measureStart_ &&
                curTick() < measureEnd_) {
                lat_.record(curTick() - sent);
                ++completedInWindow_;
            }
            if (!stop_)
                clientSend(client);
        });
}

AppBenchResult
AppServerBench::run()
{
    measureStart_ = curTick() + params_.warmup;
    measureEnd_ = measureStart_ + params_.window;

    // Absorb bursts: the server's listen backlog scales with the
    // client count (as a tuned production server would).
    if (server_.svc)
        server_.svc->setRxBacklog(
            std::max<std::size_t>(4096, params_.clients * 2));

    server_.net->setRxHandler(
        [this](const cloud::Packet &req) { serveRequest(req); });

    for (unsigned c = 0; c < params_.clients; ++c)
        clientSend(c);

    sim_.run(measureEnd_ + msToTicks(5));
    stop_ = true;
    server_.net->setRxHandler(nullptr);

    AppBenchResult r;
    r.completed = completedInWindow_;
    r.rps = double(completedInWindow_) / ticksToSec(params_.window);
    r.avgMs = lat_.meanUs() / 1000.0;
    r.p99Ms = lat_.p99Us() / 1000.0;
    r.timedOut = timeouts_;
    return r;
}

void
AppServerBench::clientSend(unsigned client)
{
    if (stop_ || curTick() >= measureEnd_)
        return;
    std::uint64_t seq = seq_ * params_.clients + client;
    ++seq_;
    inflight_[seq] = curTick();

    cloud::Packet req;
    req.src = clientMac_;
    req.dst = server_.net->mac();
    req.len = cloud::udpFrameBytes(profile_.requestBytes);
    req.created = curTick();
    req.seq = seq;
    vswitch_.send(clientPort_, req);

    // Retransmit on loss (server backlog overflow under extreme
    // client counts), as a real load generator's TCP stack would.
    auto *timeout = new OneShotEvent(
        [this, seq, client] {
            auto it = inflight_.find(seq);
            if (it == inflight_.end() || stop_)
                return;
            inflight_.erase(it);
            ++timeouts_;
            clientSend(client);
        },
        name() + ".rto");
    scheduleIn(timeout, msToTicks(250));
}

void
AppServerBench::serveRequest(const cloud::Packet &req)
{
    // Dispatch to a worker context; vCPU 0 is the interrupt CPU,
    // workers start at 1.
    unsigned w = 1 + (nextWorker_++ % profile_.workers);
    hw::CpuExecutor &cpu = server_.cpu(w);

    exitDebt_ += profile_.exitsPerRequest;
    unsigned exits = unsigned(exitDebt_);
    exitDebt_ -= exits;

    std::uint64_t seq = req.seq;
    Bytes resp_len = profile_.responseBytes;
    cpu.run(
        profile_.cpuPerRequest,
        [this, seq, resp_len, w] {
            // Async log flush (MariaDB write paths).
            blkDebt_ += profile_.blkWritesPerRequest;
            if (blkDebt_ >= 1.0 && server_.blk != nullptr) {
                blkDebt_ -= 1.0;
                server_.blk->write(
                    8 + (seq % 1024) *
                            (profile_.blkWriteBytes / 512),
                    profile_.blkWriteBytes, nullptr, server_.cpu(w),
                    [](std::uint8_t, Addr) {});
            }
            respond(seq, resp_len);
        },
        exits);
}

void
AppServerBench::respond(std::uint64_t seq, Bytes resp_len)
{
    cloud::Packet resp;
    resp.src = server_.net->mac();
    resp.dst = clientMac_;
    resp.len = cloud::udpFrameBytes(resp_len);
    resp.created = curTick();
    resp.seq = seq;
    unsigned w = 1 + unsigned(seq % profile_.workers);
    if (!server_.net->sendPacket(resp, true, server_.cpu(w))) {
        // Tx ring momentarily full; retry shortly.
        auto *ev = new OneShotEvent(
            [this, seq, resp_len] { respond(seq, resp_len); },
            name() + ".resp_retry");
        scheduleIn(ev, usToTicks(20));
    }
}

} // namespace workloads
} // namespace bmhive

#include "workloads/fio.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace workloads {

FioRunner::FioRunner(Simulation &sim, std::string name,
                     GuestContext guest, FioParams params)
    : SimObject(sim, std::move(name)), guest_(guest),
      params_(params)
{
    panic_if(guest_.blk == nullptr,
             this->name(), ": guest has no block device");
}

void
FioRunner::start()
{
    measureStart_ = curTick() + params_.warmup;
    measureEnd_ = measureStart_ + params_.window;

    for (unsigned j = 0; j < params_.jobs; ++j)
        jobLoop(j);
}

FioResult
FioRunner::collect()
{
    stop_ = true;

    FioResult r;
    r.completed = completed_;
    r.iops = double(lat_.count()) / ticksToSec(params_.window);
    r.avgUs = lat_.meanUs();
    r.p99Us = lat_.p99Us();
    r.p999Us = lat_.p999Us();
    return r;
}

FioResult
FioRunner::run()
{
    start();
    sim_.run(doneAt());
    return collect();
}

void
FioRunner::jobLoop(unsigned job)
{
    if (stop_ || curTick() >= measureEnd_)
        return;
    hw::CpuExecutor &cpu = guest_.cpu(job);
    // fio sync engine: issue, wait, repeat. The submission costs a
    // syscall plus the driver path.
    cpu.run(usToTicks(1.2), [this, job] {
        if (stop_ || curTick() >= measureEnd_)
            return;
        std::uint64_t max_lba =
            params_.volumeSectors -
            params_.blockBytes / 512;
        std::uint64_t lba =
            rng().uniformInt(0, max_lba) & ~std::uint64_t(7);
        Tick issued = curTick();
        auto done = [this, job, issued](std::uint8_t status,
                                        Addr) {
            if (status == virtio::VIRTIO_BLK_S_OK &&
                issued >= measureStart_ &&
                curTick() < measureEnd_ + msToTicks(20)) {
                if (issued >= measureStart_ &&
                    issued < measureEnd_)
                    lat_.record(curTick() - issued);
            }
            ++completed_;
            jobLoop(job);
        };
        bool ok;
        if (params_.write) {
            ok = guest_.blk->write(lba, params_.blockBytes, nullptr,
                                   guest_.cpu(job), done);
        } else {
            ok = guest_.blk->read(lba, params_.blockBytes,
                                  guest_.cpu(job), done);
        }
        if (!ok) {
            // Ring busy: retry shortly.
            auto *ev = new OneShotEvent(
                [this, job] { jobLoop(job); }, name() + ".retry");
            scheduleIn(ev, usToTicks(10));
        }
    });
}

} // namespace workloads
} // namespace bmhive

/**
 * @file
 * AdversarialGuest: a hostile tenant driver model. Instead of a
 * well-behaved virtio driver it fires a seeded, deterministic
 * stream of attacks at the guest-visible surface of its own
 * IO-Bond functions — out-of-range doorbells, avail-index jumps,
 * malformed descriptor chains, register and config-space abuse.
 *
 * Every attack must be *contained*: classified as a GuestFault,
 * counted, and at worst costing the attacker its own device. The
 * hostile_test suite and bench_hostile drive this model to verify
 * the bridge never panics and neighbours keep their throughput.
 */

#ifndef BMHIVE_WORKLOADS_ADVERSARIAL_HH
#define BMHIVE_WORKLOADS_ADVERSARIAL_HH

#include <cstdint>
#include <string>

#include "base/random.hh"
#include "base/stats.hh"
#include "base/units.hh"
#include "hw/compute_board.hh"
#include "sim/sim_object.hh"

namespace bmhive {
namespace workloads {

struct AdversarialGuestParams
{
    /** Attack-stream seed; the sequence is a pure function of it. */
    std::uint64_t seed = 1;
    /** Gap between attack steps. */
    Tick period = usToTicks(0.5);
    /** Stop after this many steps (0 = run until stop()). */
    std::uint64_t iterations = 0;
};

/**
 * Drives attacks against the PCI functions on @p board (the
 * standard bm-guest slots: net at 3, blk at 4, console at 5).
 * The attacker only ever touches its own board's bus and memory —
 * the isolation claim under test is that this is ALL it can touch.
 */
class AdversarialGuest : public SimObject
{
  public:
    AdversarialGuest(Simulation &sim, std::string name,
                     hw::ComputeBoard &board,
                     AdversarialGuestParams params = {});

    /** Begin the attack stream (schedules the first step). */
    void start();
    void stop() { stopped_ = true; }

    std::uint64_t attacks() const { return attacks_.value(); }
    std::uint64_t steps() const { return steps_; }
    bool done() const { return stopped_; }

    /** Distinct attack shapes in the catalogue. */
    static constexpr unsigned attackKinds = 15;

    /** Run one specific attack immediately (tests). */
    void attack(unsigned kind);

  private:
    /** Programmed, decoded BAR0 base of @p slot; 0 if absent. */
    Addr bar0(int slot);

    /** Snapshot of the rings the (honest) driver programmed. */
    struct RingInfo
    {
        bool ok = false; ///< enabled, sane size, areas in memory
        std::uint16_t size = 0;
        Addr desc = 0;
        Addr avail = 0;
    };
    RingInfo ringInfo(Addr bar, unsigned q);

    /** Scribble one descriptor table entry (bounds-checked). */
    void scribbleDesc(const RingInfo &ri, std::uint16_t i,
                      std::uint64_t addr, std::uint32_t len,
                      std::uint16_t flags, std::uint16_t next);
    /** Publish @p head on the avail ring and ring the doorbell. */
    void publish(Addr bar, const RingInfo &ri, unsigned q,
                 std::uint16_t head);

    void step();

    hw::ComputeBoard &board_;
    AdversarialGuestParams params_;
    Rng rng_;
    bool stopped_ = false;
    std::uint64_t steps_ = 0;
    Counter &attacks_;
};

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_ADVERSARIAL_HH

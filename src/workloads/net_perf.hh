/**
 * @file
 * Network microbenchmarks reproducing the paper's netperf /
 * sockperf / DPDK measurements (section 4.3):
 *
 *  - PacketFlood: netperf-style small-UDP blast between two
 *    guests, reporting receive PPS (Fig. 9) or throughput for
 *    large TCP-like frames (the 9.6 Gbit/s test).
 *  - PingPong: sockperf-style request/response latency in kernel,
 *    DPDK, and ICMP modes (Fig. 10).
 */

#ifndef BMHIVE_WORKLOADS_NET_PERF_HH
#define BMHIVE_WORKLOADS_NET_PERF_HH

#include <functional>
#include <string>
#include <vector>

#include "base/paper_constants.hh"
#include "base/stats.hh"
#include "sim/sim_object.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace workloads {

/** Guest network-stack flavour for a workload. */
enum class NetStack { Kernel, Dpdk, Icmp };

/** Per-packet guest CPU cost of the chosen stack. */
Tick stackCost(NetStack stack);

struct PacketFloodParams
{
    Bytes payloadBytes = 1; ///< netperf: headers + 1 byte of data
    unsigned flows = 8;     ///< sender contexts (vCPUs used)
    unsigned batch = 32;    ///< tx submissions per doorbell
    NetStack stack = NetStack::Kernel;
    Tick warmup = msToTicks(5);
    Tick window = msToTicks(50); ///< measurement window
};

struct PacketFloodResult
{
    double pps = 0.0;        ///< received packets per second
    double gbps = 0.0;       ///< received payload throughput
    double jitterPct = 0.0;  ///< stddev of per-interval PPS / mean
    std::uint64_t received = 0;
    std::uint64_t sent = 0;
};

/**
 * Closed-loop packet blaster: @p flows sender contexts on the
 * source guest each keep the tx ring fed; the sink guest counts
 * arrivals. PPS jitter is computed over 1 ms sub-intervals.
 */
class PacketFlood : public SimObject
{
  public:
    PacketFlood(Simulation &sim, std::string name, GuestContext src,
                GuestContext dst, PacketFloodParams params);

    /** Run to completion (blocks the event loop). */
    PacketFloodResult run();

    /**
     * Split-phase interface for concurrent workloads (density
     * sweeps run many floods at once): start() arms the flood,
     * the caller steps the simulation to doneAt(), collect()
     * detaches and reports.
     */
    void start();
    Tick doneAt() const { return t1_ + msToTicks(2); }
    PacketFloodResult collect();

  private:
    void senderLoop(unsigned flow);

    GuestContext src_;
    GuestContext dst_;
    PacketFloodParams params_;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
    std::uint64_t seq_ = 0;
    bool stop_ = false;
    Tick t0_ = 0;
    Tick t1_ = 0;
    std::vector<std::uint64_t> perMs_;
    std::uint64_t inWindow_ = 0;
    Bytes bytesInWindow_ = 0;
};

struct PingPongParams
{
    Bytes payloadBytes = 64;
    unsigned samples = 2000;
    NetStack stack = NetStack::Kernel;
};

struct PingPongResult
{
    double avgUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double maxUs = 0.0;
};

/**
 * Request/response latency: one in-flight message bounced between
 * the two guests; reports one-way latency (RTT/2), matching
 * sockperf's report.
 */
class PingPong : public SimObject
{
  public:
    PingPong(Simulation &sim, std::string name, GuestContext a,
             GuestContext b, PingPongParams params);

    PingPongResult run();

  private:
    void fire();

    GuestContext a_;
    GuestContext b_;
    PingPongParams params_;
    LatencyRecorder rtt_;
    Tick sentAt_ = 0;
    unsigned remaining_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_NET_PERF_HH

/**
 * @file
 * fio-style storage benchmark (paper Fig. 11): N jobs issue 4 KiB
 * random reads or writes against the guest's cloud volume, each
 * job keeping one I/O in flight (fio's default sync engine).
 * Reports IOPS, average latency, and the 99.9th percentile.
 */

#ifndef BMHIVE_WORKLOADS_FIO_HH
#define BMHIVE_WORKLOADS_FIO_HH

#include <string>

#include "base/stats.hh"
#include "sim/sim_object.hh"
#include "workloads/guest_iface.hh"

namespace bmhive {
namespace workloads {

struct FioParams
{
    bool write = false;
    Bytes blockBytes = 4 * KiB;
    unsigned jobs = 8;
    std::uint64_t volumeSectors = 64 * MiB / 512;
    Tick warmup = msToTicks(20);
    Tick window = msToTicks(400);
};

struct FioResult
{
    double iops = 0.0;
    double avgUs = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    std::uint64_t completed = 0;
};

class FioRunner : public SimObject
{
  public:
    FioRunner(Simulation &sim, std::string name, GuestContext guest,
              FioParams params);

    FioResult run();

    /** Split-phase interface (see PacketFlood): start() launches
     *  the jobs, the caller steps to doneAt(), collect() reports. */
    void start();
    Tick doneAt() const { return measureEnd_ + msToTicks(20); }
    FioResult collect();

  private:
    void jobLoop(unsigned job);

    GuestContext guest_;
    FioParams params_;
    LatencyRecorder lat_;
    std::uint64_t completed_ = 0;
    bool stop_ = false;
    Tick measureStart_ = 0;
    Tick measureEnd_ = 0;
};

} // namespace workloads
} // namespace bmhive

#endif // BMHIVE_WORKLOADS_FIO_HH

/**
 * @file
 * GuestMemory: a flat simulated physical memory.
 *
 * In BM-Hive the bm-guest (compute board) and the bm-hypervisor
 * (base board) have *separate* physical memories — the property
 * that forces IO-Bond's shadow-vring design (paper section 3.4.1).
 * Each board therefore owns its own GuestMemory instance; nothing
 * in the simulator can alias them.
 *
 * Addresses are guest-physical. Multi-byte accessors are
 * little-endian, matching the virtio 1.0 wire format.
 */

#ifndef BMHIVE_MEM_GUEST_MEMORY_HH
#define BMHIVE_MEM_GUEST_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/units.hh"

namespace bmhive {

class GuestMemory
{
  public:
    /**
     * @param name human-readable label for diagnostics
     * @param size memory size in bytes
     */
    GuestMemory(std::string name, Bytes size)
        : name_(std::move(name)), data_(size, 0) {}

    GuestMemory(const GuestMemory &) = delete;
    GuestMemory &operator=(const GuestMemory &) = delete;

    const std::string &name() const { return name_; }
    Bytes size() const { return data_.size(); }

    /** Raw byte access. */
    void read(Addr addr, void *dst, Bytes len) const;
    void write(Addr addr, const void *src, Bytes len);

    /** Typed little-endian accessors. */
    std::uint8_t read8(Addr addr) const { return readT<std::uint8_t>(addr); }
    std::uint16_t read16(Addr addr) const { return readT<std::uint16_t>(addr); }
    std::uint32_t read32(Addr addr) const { return readT<std::uint32_t>(addr); }
    std::uint64_t read64(Addr addr) const { return readT<std::uint64_t>(addr); }

    void write8(Addr addr, std::uint8_t v) { writeT(addr, v); }
    void write16(Addr addr, std::uint16_t v) { writeT(addr, v); }
    void write32(Addr addr, std::uint32_t v) { writeT(addr, v); }
    void write64(Addr addr, std::uint64_t v) { writeT(addr, v); }

    /** Fill a region with a byte value. */
    void fill(Addr addr, Bytes len, std::uint8_t value);

    /** Read a region into a fresh vector. */
    std::vector<std::uint8_t> readBlob(Addr addr, Bytes len) const;

    /** Write a vector into memory. */
    void writeBlob(Addr addr, const std::vector<std::uint8_t> &blob);

  private:
    template <typename T>
    T
    readT(Addr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(Addr addr, T v)
    {
        write(addr, &v, sizeof(T));
    }

    std::string name_;
    std::vector<std::uint8_t> data_;
};

/**
 * Trivial first-fit bump allocator over a GuestMemory, used by
 * tests and guest models to lay out rings and buffers without a
 * full memory manager. Allocations are aligned and never freed
 * individually (reset() releases everything).
 */
class BumpAllocator
{
  public:
    BumpAllocator(GuestMemory &mem, Addr base = 0)
        : mem_(&mem), base_(base), next_(base) {}

    /** Allocate @p len bytes aligned to @p align. */
    Addr alloc(Bytes len, Bytes align = 16);

    /** Release everything. */
    void reset() { next_ = base_; }

    /**
     * Re-point the allocator at a different memory/region and
     * release everything — used when a shadow region migrates to
     * another base server's memory.
     */
    void
    reseat(GuestMemory &mem, Addr base)
    {
        mem_ = &mem;
        base_ = base;
        next_ = base;
    }

    Bytes used() const { return next_ - base_; }

  private:
    GuestMemory *mem_;
    Addr base_;
    Addr next_;
};

} // namespace bmhive

#endif // BMHIVE_MEM_GUEST_MEMORY_HH

#include "mem/pool_allocator.hh"

#include "base/logging.hh"

namespace bmhive {

PoolAllocator::PoolAllocator(Addr base, Bytes size)
    : base_(base), size_(size), free_(size)
{
    panic_if(size == 0, "empty pool");
    extents_[base] = size;
}

Addr
PoolAllocator::alloc(Bytes len, Bytes align)
{
    panic_if(len == 0, "zero-length allocation");
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "bad alignment: ", align);
    for (auto it = extents_.begin(); it != extents_.end(); ++it) {
        Addr start = it->first;
        Bytes ext_len = it->second;
        Addr aligned = (start + align - 1) & ~(align - 1);
        Bytes waste = aligned - start;
        if (ext_len < waste + len)
            continue;
        // Carve [aligned, aligned+len) out of the extent. The
        // pre-waste and the tail go back to the free map.
        extents_.erase(it);
        if (waste > 0)
            extents_[start] = waste;
        Bytes tail = ext_len - waste - len;
        if (tail > 0)
            extents_[aligned + len] = tail;
        // Record the full carved span so free() returns the waste.
        live_[aligned] = {aligned, len};
        free_ -= len;
        return aligned;
    }
    return nullAddr;
}

void
PoolAllocator::free(Addr addr)
{
    auto it = live_.find(addr);
    panic_if(it == live_.end(), "freeing unknown address ", addr);
    Addr start = it->second.first;
    Bytes len = it->second.second;
    live_.erase(it);
    free_ += len;

    // Insert and coalesce with the previous and next extents.
    auto ins = extents_.emplace(start, len).first;
    if (ins != extents_.begin()) {
        auto prev = std::prev(ins);
        if (prev->first + prev->second == ins->first) {
            prev->second += ins->second;
            extents_.erase(ins);
            ins = prev;
        }
    }
    auto next = std::next(ins);
    if (next != extents_.end() &&
        ins->first + ins->second == next->first) {
        ins->second += next->second;
        extents_.erase(next);
    }
}

} // namespace bmhive

/**
 * @file
 * DmaEngine: bandwidth- and latency-modelled copies between two
 * GuestMemory instances (or within one).
 *
 * IO-Bond's internal DMA engine moves descriptor tables and data
 * buffers between the compute board's memory and the base board's
 * memory at ~50 Gbps (paper section 3.4.3). The engine serializes
 * transfers: a copy issued while another is in flight queues behind
 * it, which is what bounds a bm-guest to 50 Gbps total.
 */

#ifndef BMHIVE_MEM_DMA_ENGINE_HH
#define BMHIVE_MEM_DMA_ENGINE_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/units.hh"
#include "mem/guest_memory.hh"
#include "obs/flight_recorder.hh"
#include "sim/sim_object.hh"

namespace bmhive {

/**
 * Event-driven DMA engine. Each transfer completes after
 * startup latency + size / bandwidth; transfers are FIFO-serialized
 * on the engine.
 *
 * A transfer is one or more scatter-gather segments moved as a
 * unit: one startup cost, one completion, bandwidth charged on the
 * summed length. Submissions made from inside a completion
 * callback (including the error handler) are well-defined: they
 * queue behind whatever is already queued and never start until
 * the completing transfer's callbacks have fully unwound.
 */
class DmaEngine : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * One scatter-gather segment. @c src may be null for an
     * account-only segment: its length is charged against the
     * engine's bandwidth without touching memory (ring metadata
     * whose bytes are modelled elsewhere).
     */
    struct CopySeg
    {
        const GuestMemory *src = nullptr;
        Addr srcAddr = 0;
        GuestMemory *dst = nullptr;
        Addr dstAddr = 0;
        Bytes len = 0;
    };

    /**
     * @param bandwidth  sustained copy bandwidth
     * @param startup    fixed per-transfer setup latency
     */
    DmaEngine(Simulation &sim, std::string name, Bandwidth bandwidth,
              Tick startup = 0);
    ~DmaEngine() override;

    /**
     * Copy @p len bytes from @p src_addr in @p src to @p dst_addr in
     * @p dst. @p done runs when the data is visible at the
     * destination.
     */
    void copy(const GuestMemory &src, Addr src_addr, GuestMemory &dst,
              Addr dst_addr, Bytes len, Callback done);

    /**
     * Model-only transfer: accounts time for @p len bytes without
     * touching memory (e.g. payload already represented elsewhere).
     */
    void accountOnly(Bytes len, Callback done);

    /**
     * Scatter-gather transfer: move every segment as one engine
     * transfer — one startup cost, bandwidth charged on the summed
     * length, one completion callback when all segments have
     * landed. An injected fault (fail/corrupt) applies to the
     * whole transfer, matching real descriptors that complete or
     * abort as a unit.
     */
    void copyv(std::vector<CopySeg> segs, Callback done);

    Bandwidth bandwidth() const { return bandwidth_; }
    bool busy() const { return busy_; }
    std::size_t queued() const { return queue_.size(); }

    /** Total bytes moved since construction. */
    std::uint64_t bytesMoved() const { return bytesMoved_.value(); }
    /** Total transfers completed. */
    std::uint64_t transfers() const { return transfers_.value(); }
    /** Total scatter-gather segments carried by those transfers. */
    std::uint64_t batchedSegments() const
    {
        return batchedSegments_.value();
    }

    /**
     * Called when an injected DmaFail drops a transfer, after the
     * (data-less) completion ran. The owner decides what a failed
     * internal transfer means (IO-Bond fails the active function).
     */
    void setErrorHandler(Callback h) { errorHandler_ = std::move(h); }

    /**
     * PCIe ECRC-style end-to-end protection: every data transfer is
     * checksummed at the source and verified before it lands. A
     * mismatch is never delivered — the transfer retries (link-level
     * replay re-reads the clean source), and after ecrcMaxRetries
     * consecutive mismatches the integrity handler fires so the
     * owner can escalate (IO-Bond resets the active function).
     */
    void setIntegrity(bool on) { integrity_ = on; }
    bool integrity() const { return integrity_; }

    /** Called after a transfer exhausts its ECRC retries (the
     *  data-less completion has run, like the DmaFail path). */
    void setIntegrityHandler(Callback h)
    {
        integrityHandler_ = std::move(h);
    }

    std::uint64_t ecrcDetected() const
    {
        return ecrcDetected_.value();
    }
    std::uint64_t ecrcHealed() const { return ecrcHealed_.value(); }
    std::uint64_t ecrcEscalations() const
    {
        return ecrcEscalations_.value();
    }

    /** Injected faults consumed so far (corruptions + failures). */
    std::uint64_t faultsInjected() const
    {
        return faultInjected_.value();
    }

    /**
     * True iff the completion currently unwinding (or the most
     * recent one) actually landed its bytes at the destination.
     * False for DmaFail drops and exhausted-ECRC escalations, whose
     * completion callbacks run data-less: an owner that publishes
     * shared state from @c done must check this first, or it hands
     * downstream consumers a destination that was never written.
     */
    bool lastDelivered() const { return lastDelivered_; }

    /** Attach the owning guest's flight recorder: every transfer
     *  records CopyvSubmit/CopyvComplete (a=segs, b=bytes). */
    void setFlightRecorder(obs::FlightRecorder *fr) { flight_ = fr; }

  private:
    struct Transfer
    {
        std::vector<CopySeg> segs;
        Bytes len = 0; ///< summed over segs
        Callback done;
        /** ECRC replay state: attempts burned and when the first
         *  mismatch was seen (for the healed-retry latency). */
        unsigned retries = 0;
        Tick firstDetect = 0;
    };

    /** Queue a transfer; starts it unless serialized behind
     *  in-flight work or a completion still unwinding. */
    void enqueue(Transfer t);
    /** Start the transfer at the queue head. */
    void startNext();
    /** Finish the in-flight transfer. */
    void complete();
    /** Fault hook: arm corruption/failure budgets. */
    bool injectFault(const fault::FaultSpec &spec);

    Bandwidth bandwidth_;
    Tick startup_;
    std::deque<Transfer> queue_;
    bool busy_ = false;
    /** A completion is unwinding: submissions from its callbacks
     *  must queue, not start, so the error handler always observes
     *  the failed transfer before anything new begins. */
    bool inCompletion_ = false;
    /** Injected-fault budgets: the next N data transfers are
     *  corrupted / dropped. Account-only transfers (pure ring
     *  bookkeeping) are never faulted. */
    std::uint64_t corruptBudget_ = 0;
    std::uint64_t failBudget_ = 0;
    Callback errorHandler_;
    Callback integrityHandler_;
    bool integrity_ = false;
    /** Whether the unwinding completion delivered its data. */
    bool lastDelivered_ = true;
    /** Consecutive mismatches tolerated before escalation. */
    static constexpr unsigned ecrcMaxRetries = 2;
    obs::FlightRecorder *flight_ = nullptr;
    /** Registry-backed so exports and accessors read one cell. */
    Counter &bytesMoved_;
    Counter &transfers_;
    Counter &batchedSegments_;
    Counter &faultInjected_;
    Counter &ecrcChecked_;
    Counter &ecrcDetected_;
    Counter &ecrcHealed_;
    Counter &ecrcEscalations_;
    LatencyRecorder &retryLatency_;
    Gauge &queueDepth_;
    Histogram &batchSegs_;
    EventFunctionWrapper completeEvent_;
};

} // namespace bmhive

#endif // BMHIVE_MEM_DMA_ENGINE_HH

#include "mem/dma_engine.hh"

#include <utility>

#include "base/checksum.hh"
#include "base/logging.hh"

namespace bmhive {

DmaEngine::DmaEngine(Simulation &sim, std::string name,
                     Bandwidth bandwidth, Tick startup)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth),
      startup_(startup),
      bytesMoved_(metrics().counter(this->name() + ".bytes_moved")),
      transfers_(metrics().counter(this->name() + ".transfers")),
      batchedSegments_(
          metrics().counter(this->name() + ".batched_segments")),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      ecrcChecked_(
          metrics().counter(this->name() + ".integrity.ecrc_checked")),
      ecrcDetected_(metrics().counter(
          this->name() + ".integrity.ecrc_detected")),
      ecrcHealed_(
          metrics().counter(this->name() + ".integrity.ecrc_healed")),
      ecrcEscalations_(metrics().counter(
          this->name() + ".integrity.ecrc_escalations")),
      retryLatency_(
          metrics().latency(this->name() + ".integrity.retry")),
      queueDepth_(metrics().gauge(this->name() + ".queue_depth")),
      batchSegs_(
          metrics().histogram(this->name() + ".batch_segs", 0, 256,
                              32)),
      completeEvent_([this] { complete(); }, this->name() + ".complete")
{
    panic_if(!bandwidth.valid(), "DMA engine needs positive bandwidth");
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
}

DmaEngine::~DmaEngine()
{
    sim_.faults().remove(name());
    if (completeEvent_.scheduled())
        eventq().deschedule(&completeEvent_);
}

bool
DmaEngine::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::DmaCorrupt:
        corruptBudget_ += spec.count ? spec.count : 1;
        return true;
      case fault::FaultKind::DmaFail:
        failBudget_ += spec.count ? spec.count : 1;
        return true;
      default:
        return false;
    }
}

void
DmaEngine::copy(const GuestMemory &src, Addr src_addr, GuestMemory &dst,
                Addr dst_addr, Bytes len, Callback done)
{
    Transfer t;
    t.segs.push_back(CopySeg{&src, src_addr, &dst, dst_addr, len});
    t.len = len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::accountOnly(Bytes len, Callback done)
{
    Transfer t;
    t.segs.push_back(CopySeg{nullptr, 0, nullptr, 0, len});
    t.len = len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::copyv(std::vector<CopySeg> segs, Callback done)
{
    panic_if(segs.empty(), "empty scatter-gather transfer");
    Transfer t;
    t.segs = std::move(segs);
    for (const auto &s : t.segs)
        t.len += s.len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::enqueue(Transfer t)
{
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::CopyvSubmit, 0,
                        0, t.segs.size(), t.len);
    queue_.push_back(std::move(t));
    queueDepth_.set(double(queue_.size()));
    // Submissions from a completion callback queue behind the
    // unwinding completion; it resumes the engine itself.
    if (!busy_ && !inCompletion_)
        startNext();
}

void
DmaEngine::startNext()
{
    panic_if(busy_, "DMA engine started while busy");
    if (queue_.empty())
        return;
    busy_ = true;
    const Transfer &t = queue_.front();
    Tick duration = startup_ + bandwidth_.transferTime(t.len);
    scheduleIn(&completeEvent_, duration);
}

void
DmaEngine::complete()
{
    panic_if(queue_.empty(), "DMA completion with empty queue");
    inCompletion_ = true;
    Transfer t = std::move(queue_.front());
    queue_.pop_front();
    queueDepth_.set(double(queue_.size()));
    busy_ = false;

    // An account-only segment (null src) or a zero-length real
    // segment carries no bytes an injected corruption could touch;
    // budgets must only burn on transfers whose flip is observable.
    bool moves_data = false;
    for (const auto &s : t.segs)
        moves_data = moves_data || (s.src != nullptr && s.len > 0);

    // A fault budget unit consumes the whole transfer: the
    // hardware's descriptor either completes or aborts as a unit.
    bool failed = false;
    bool corrupted = false;
    if (moves_data) {
        if (failBudget_ > 0) {
            --failBudget_;
            failed = true;
        } else if (corruptBudget_ > 0) {
            --corruptBudget_;
            corrupted = true;
        }
        if (failed || corrupted)
            faultInjected_.inc();
    }
    bool mismatch = false;
    if (!failed) {
        // Stage every segment and checksum both ends: the reference
        // ECRC over the source bytes as read now (the TX side of
        // the link computes it per transfer, so a source the guest
        // legitimately rewrote since submit is not a mismatch) and
        // the landing CRC over what would actually be written.
        std::vector<std::vector<std::uint8_t>> blobs(t.segs.size());
        std::uint32_t ref = 0, landed = 0;
        for (std::size_t n = 0; n < t.segs.size(); ++n) {
            const auto &s = t.segs[n];
            if (s.src == nullptr)
                continue;
            // Perform the actual copy at completion time so readers
            // never observe half-finished transfers.
            blobs[n] = s.src->readBlob(s.srcAddr, s.len);
            ref = crc32c(blobs[n].data(), blobs[n].size(), ref);
            if (corrupted) {
                // Deterministic bit rot: every 64th byte flipped.
                auto &blob = blobs[n];
                for (std::size_t i = 0; i < blob.size(); i += 64)
                    blob[i] ^= 0xA5;
            }
            landed = crc32c(blobs[n].data(), blobs[n].size(),
                            landed);
        }
        if (integrity_ && moves_data) {
            ecrcChecked_.inc();
            mismatch = landed != ref;
        }
        if (!mismatch) {
            for (std::size_t n = 0; n < t.segs.size(); ++n) {
                const auto &s = t.segs[n];
                if (s.src != nullptr)
                    s.dst->writeBlob(s.dstAddr, blobs[n]);
            }
        }
    }
    bytesMoved_.inc(t.len);
    transfers_.inc();
    batchedSegments_.inc(t.segs.size());
    batchSegs_.record(double(t.segs.size()));
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::CopyvComplete,
                        0, 0, t.segs.size(), t.len);

    if (mismatch) {
        ecrcDetected_.inc();
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::IntegrityDetect, 0, 0,
                            /*where=*/0, t.len);
        if (t.retries < ecrcMaxRetries) {
            // Link-level replay: requeue at the head (the engine
            // retries before anything younger), re-reading a clean
            // source. The transfer pays startup + bandwidth again,
            // so the healed latency is SLO-visible.
            Transfer retry = std::move(t);
            if (retry.retries++ == 0)
                retry.firstDetect = curTick();
            queue_.push_front(std::move(retry));
            queueDepth_.set(double(queue_.size()));
            inCompletion_ = false;
            if (!busy_ && !queue_.empty())
                startNext();
            return;
        }
        // Retries exhausted: complete data-less (like DmaFail) and
        // let the owner escalate to a queue reset. The done callback
        // must observe lastDelivered() == false — the destination
        // was never written.
        ecrcEscalations_.inc();
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::IntegrityEscalate, 0,
                            0, t.retries, t.len);
        lastDelivered_ = false;
        if (t.done)
            t.done();
        if (integrityHandler_)
            integrityHandler_();
        else if (errorHandler_)
            errorHandler_();
        inCompletion_ = false;
        if (!busy_ && !queue_.empty())
            startNext();
        return;
    }
    if (t.retries > 0 && !failed) {
        // A detected corruption healed by replay: record how long
        // the data was held off the destination.
        ecrcHealed_.inc();
        retryLatency_.record(curTick() - t.firstDetect);
        if (flight_)
            flight_->record(curTick(),
                            obs::FlightEvent::IntegrityRetry, 0, 0,
                            t.retries, t.len);
    }

    // The completion callback still runs on failure: the engine's
    // timing pipeline is unaffected, only the data never landed.
    // Callbacks run before the next transfer starts, so a retry
    // issued from `done` cannot begin before the error handler has
    // seen this transfer fail.
    lastDelivered_ = !failed;
    if (t.done)
        t.done();
    if (failed && errorHandler_)
        errorHandler_();
    inCompletion_ = false;
    if (!busy_ && !queue_.empty())
        startNext();
}

} // namespace bmhive

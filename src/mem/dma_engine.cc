#include "mem/dma_engine.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {

DmaEngine::DmaEngine(Simulation &sim, std::string name,
                     Bandwidth bandwidth, Tick startup)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth),
      startup_(startup),
      bytesMoved_(metrics().counter(this->name() + ".bytes_moved")),
      transfers_(metrics().counter(this->name() + ".transfers")),
      batchedSegments_(
          metrics().counter(this->name() + ".batched_segments")),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      queueDepth_(metrics().gauge(this->name() + ".queue_depth")),
      batchSegs_(
          metrics().histogram(this->name() + ".batch_segs", 0, 256,
                              32)),
      completeEvent_([this] { complete(); }, this->name() + ".complete")
{
    panic_if(!bandwidth.valid(), "DMA engine needs positive bandwidth");
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
}

DmaEngine::~DmaEngine()
{
    sim_.faults().remove(name());
    if (completeEvent_.scheduled())
        eventq().deschedule(&completeEvent_);
}

bool
DmaEngine::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::DmaCorrupt:
        corruptBudget_ += spec.count ? spec.count : 1;
        return true;
      case fault::FaultKind::DmaFail:
        failBudget_ += spec.count ? spec.count : 1;
        return true;
      default:
        return false;
    }
}

void
DmaEngine::copy(const GuestMemory &src, Addr src_addr, GuestMemory &dst,
                Addr dst_addr, Bytes len, Callback done)
{
    Transfer t;
    t.segs.push_back(CopySeg{&src, src_addr, &dst, dst_addr, len});
    t.len = len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::accountOnly(Bytes len, Callback done)
{
    Transfer t;
    t.segs.push_back(CopySeg{nullptr, 0, nullptr, 0, len});
    t.len = len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::copyv(std::vector<CopySeg> segs, Callback done)
{
    panic_if(segs.empty(), "empty scatter-gather transfer");
    Transfer t;
    t.segs = std::move(segs);
    for (const auto &s : t.segs)
        t.len += s.len;
    t.done = std::move(done);
    enqueue(std::move(t));
}

void
DmaEngine::enqueue(Transfer t)
{
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::CopyvSubmit, 0,
                        0, t.segs.size(), t.len);
    queue_.push_back(std::move(t));
    queueDepth_.set(double(queue_.size()));
    // Submissions from a completion callback queue behind the
    // unwinding completion; it resumes the engine itself.
    if (!busy_ && !inCompletion_)
        startNext();
}

void
DmaEngine::startNext()
{
    panic_if(busy_, "DMA engine started while busy");
    if (queue_.empty())
        return;
    busy_ = true;
    const Transfer &t = queue_.front();
    Tick duration = startup_ + bandwidth_.transferTime(t.len);
    scheduleIn(&completeEvent_, duration);
}

void
DmaEngine::complete()
{
    panic_if(queue_.empty(), "DMA completion with empty queue");
    inCompletion_ = true;
    Transfer t = std::move(queue_.front());
    queue_.pop_front();
    queueDepth_.set(double(queue_.size()));
    busy_ = false;

    bool moves_data = false;
    for (const auto &s : t.segs)
        moves_data = moves_data || s.src != nullptr;

    // A fault budget unit consumes the whole transfer: the
    // hardware's descriptor either completes or aborts as a unit.
    bool failed = false;
    bool corrupted = false;
    if (moves_data) {
        if (failBudget_ > 0) {
            --failBudget_;
            failed = true;
        } else if (corruptBudget_ > 0) {
            --corruptBudget_;
            corrupted = true;
        }
        if (failed || corrupted)
            faultInjected_.inc();
    }
    if (!failed) {
        for (const auto &s : t.segs) {
            if (s.src == nullptr)
                continue;
            // Perform the actual copy at completion time so readers
            // never observe half-finished transfers.
            auto blob = s.src->readBlob(s.srcAddr, s.len);
            if (corrupted) {
                // Deterministic bit rot: every 64th byte flipped.
                for (std::size_t i = 0; i < blob.size(); i += 64)
                    blob[i] ^= 0xA5;
            }
            s.dst->writeBlob(s.dstAddr, blob);
        }
    }
    bytesMoved_.inc(t.len);
    transfers_.inc();
    batchedSegments_.inc(t.segs.size());
    batchSegs_.record(double(t.segs.size()));
    if (flight_)
        flight_->record(curTick(), obs::FlightEvent::CopyvComplete,
                        0, 0, t.segs.size(), t.len);

    // The completion callback still runs on failure: the engine's
    // timing pipeline is unaffected, only the data never landed.
    // Callbacks run before the next transfer starts, so a retry
    // issued from `done` cannot begin before the error handler has
    // seen this transfer fail.
    if (t.done)
        t.done();
    if (failed && errorHandler_)
        errorHandler_();
    inCompletion_ = false;
    if (!busy_ && !queue_.empty())
        startNext();
}

} // namespace bmhive

#include "mem/dma_engine.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {

DmaEngine::DmaEngine(Simulation &sim, std::string name,
                     Bandwidth bandwidth, Tick startup)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth),
      startup_(startup),
      bytesMoved_(metrics().counter(this->name() + ".bytes_moved")),
      transfers_(metrics().counter(this->name() + ".transfers")),
      faultInjected_(
          metrics().counter(this->name() + ".fault.injected")),
      queueDepth_(metrics().gauge(this->name() + ".queue_depth")),
      completeEvent_([this] { complete(); }, this->name() + ".complete")
{
    panic_if(!bandwidth.valid(), "DMA engine needs positive bandwidth");
    sim_.faults().add(this->name(), [this](const fault::FaultSpec &s) {
        return injectFault(s);
    });
}

DmaEngine::~DmaEngine()
{
    sim_.faults().remove(name());
    if (completeEvent_.scheduled())
        eventq().deschedule(&completeEvent_);
}

bool
DmaEngine::injectFault(const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::DmaCorrupt:
        corruptBudget_ += spec.count ? spec.count : 1;
        return true;
      case fault::FaultKind::DmaFail:
        failBudget_ += spec.count ? spec.count : 1;
        return true;
      default:
        return false;
    }
}

void
DmaEngine::copy(const GuestMemory &src, Addr src_addr, GuestMemory &dst,
                Addr dst_addr, Bytes len, Callback done)
{
    queue_.push_back(
        Transfer{&src, src_addr, &dst, dst_addr, len, std::move(done)});
    queueDepth_.set(double(queue_.size()));
    if (!busy_)
        startNext();
}

void
DmaEngine::accountOnly(Bytes len, Callback done)
{
    queue_.push_back(
        Transfer{nullptr, 0, nullptr, 0, len, std::move(done)});
    queueDepth_.set(double(queue_.size()));
    if (!busy_)
        startNext();
}

void
DmaEngine::startNext()
{
    panic_if(busy_, "DMA engine started while busy");
    if (queue_.empty())
        return;
    busy_ = true;
    const Transfer &t = queue_.front();
    Tick duration = startup_ + bandwidth_.transferTime(t.len);
    scheduleIn(&completeEvent_, duration);
}

void
DmaEngine::complete()
{
    panic_if(queue_.empty(), "DMA completion with empty queue");
    Transfer t = std::move(queue_.front());
    queue_.pop_front();
    queueDepth_.set(double(queue_.size()));
    busy_ = false;

    bool failed = false;
    if (t.src != nullptr) {
        bool corrupted = false;
        if (failBudget_ > 0) {
            --failBudget_;
            failed = true;
        } else if (corruptBudget_ > 0) {
            --corruptBudget_;
            corrupted = true;
        }
        if (!failed) {
            // Perform the actual copy at completion time so readers
            // never observe half-finished transfers.
            auto blob = t.src->readBlob(t.srcAddr, t.len);
            if (corrupted) {
                // Deterministic bit rot: every 64th byte flipped.
                for (std::size_t i = 0; i < blob.size(); i += 64)
                    blob[i] ^= 0xA5;
            }
            t.dst->writeBlob(t.dstAddr, blob);
        }
        if (failed || corrupted)
            faultInjected_.inc();
    }
    bytesMoved_.inc(t.len);
    transfers_.inc();

    if (!queue_.empty())
        startNext();

    // The completion callback still runs on failure: the engine's
    // timing pipeline is unaffected, only the data never landed.
    if (t.done)
        t.done();
    if (failed && errorHandler_)
        errorHandler_();
}

} // namespace bmhive

#include "mem/dma_engine.hh"

#include <utility>

#include "base/logging.hh"

namespace bmhive {

DmaEngine::DmaEngine(Simulation &sim, std::string name,
                     Bandwidth bandwidth, Tick startup)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth),
      startup_(startup),
      bytesMoved_(metrics().counter(this->name() + ".bytes_moved")),
      transfers_(metrics().counter(this->name() + ".transfers")),
      queueDepth_(metrics().gauge(this->name() + ".queue_depth")),
      completeEvent_([this] { complete(); }, this->name() + ".complete")
{
    panic_if(!bandwidth.valid(), "DMA engine needs positive bandwidth");
}

DmaEngine::~DmaEngine()
{
    if (completeEvent_.scheduled())
        eventq().deschedule(&completeEvent_);
}

void
DmaEngine::copy(const GuestMemory &src, Addr src_addr, GuestMemory &dst,
                Addr dst_addr, Bytes len, Callback done)
{
    queue_.push_back(
        Transfer{&src, src_addr, &dst, dst_addr, len, std::move(done)});
    queueDepth_.set(double(queue_.size()));
    if (!busy_)
        startNext();
}

void
DmaEngine::accountOnly(Bytes len, Callback done)
{
    queue_.push_back(
        Transfer{nullptr, 0, nullptr, 0, len, std::move(done)});
    queueDepth_.set(double(queue_.size()));
    if (!busy_)
        startNext();
}

void
DmaEngine::startNext()
{
    panic_if(busy_, "DMA engine started while busy");
    if (queue_.empty())
        return;
    busy_ = true;
    const Transfer &t = queue_.front();
    Tick duration = startup_ + bandwidth_.transferTime(t.len);
    scheduleIn(&completeEvent_, duration);
}

void
DmaEngine::complete()
{
    panic_if(queue_.empty(), "DMA completion with empty queue");
    Transfer t = std::move(queue_.front());
    queue_.pop_front();
    queueDepth_.set(double(queue_.size()));
    busy_ = false;

    if (t.src != nullptr) {
        // Perform the actual copy at completion time so readers
        // never observe half-finished transfers.
        auto blob = t.src->readBlob(t.srcAddr, t.len);
        t.dst->writeBlob(t.dstAddr, blob);
    }
    bytesMoved_.inc(t.len);
    transfers_.inc();

    if (!queue_.empty())
        startNext();

    if (t.done)
        t.done();
}

} // namespace bmhive

/**
 * @file
 * First-fit free-list allocator with coalescing over a region of a
 * GuestMemory. IO-Bond uses one to manage its shadow-buffer arena
 * in base-board memory: every in-flight descriptor chain borrows
 * shadow buffers for the duration of the request.
 */

#ifndef BMHIVE_MEM_POOL_ALLOCATOR_HH
#define BMHIVE_MEM_POOL_ALLOCATOR_HH

#include <cstdint>
#include <map>

#include "base/units.hh"

namespace bmhive {

class PoolAllocator
{
  public:
    /** Manage [base, base+size) (addresses, no memory touched). */
    PoolAllocator(Addr base, Bytes size);

    /**
     * Allocate @p len bytes (aligned to @p align).
     * @return address, or nullAddr on exhaustion/fragmentation.
     */
    Addr alloc(Bytes len, Bytes align = 16);

    /** Return a block from alloc(); coalesces with neighbours. */
    void free(Addr addr);

    Bytes bytesFree() const { return free_; }
    Bytes bytesTotal() const { return size_; }
    std::size_t liveAllocations() const { return live_.size(); }

    static constexpr Addr nullAddr = ~Addr(0);

  private:
    Addr base_;
    Bytes size_;
    Bytes free_;
    /** start -> length of each free extent, sorted. */
    std::map<Addr, Bytes> extents_;
    /** returned address -> (extent start, extent length). */
    std::map<Addr, std::pair<Addr, Bytes>> live_;
};

} // namespace bmhive

#endif // BMHIVE_MEM_POOL_ALLOCATOR_HH

#include "mem/guest_memory.hh"

namespace bmhive {

void
GuestMemory::read(Addr addr, void *dst, Bytes len) const
{
    panic_if(addr + len > data_.size() || addr + len < addr,
             name_, ": out-of-bounds read [", addr, ", ", addr + len,
             ") of ", data_.size(), " bytes");
    std::memcpy(dst, data_.data() + addr, len);
}

void
GuestMemory::write(Addr addr, const void *src, Bytes len)
{
    panic_if(addr + len > data_.size() || addr + len < addr,
             name_, ": out-of-bounds write [", addr, ", ", addr + len,
             ") of ", data_.size(), " bytes");
    std::memcpy(data_.data() + addr, src, len);
}

void
GuestMemory::fill(Addr addr, Bytes len, std::uint8_t value)
{
    panic_if(addr + len > data_.size() || addr + len < addr,
             name_, ": out-of-bounds fill");
    std::memset(data_.data() + addr, value, len);
}

std::vector<std::uint8_t>
GuestMemory::readBlob(Addr addr, Bytes len) const
{
    std::vector<std::uint8_t> blob(len);
    read(addr, blob.data(), len);
    return blob;
}

void
GuestMemory::writeBlob(Addr addr, const std::vector<std::uint8_t> &blob)
{
    write(addr, blob.data(), blob.size());
}

Addr
BumpAllocator::alloc(Bytes len, Bytes align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "alignment must be a power of two: ", align);
    Addr aligned = (next_ + align - 1) & ~(align - 1);
    panic_if(aligned + len > mem_->size(),
             mem_->name(), ": bump allocator exhausted (",
             aligned + len, " > ", mem_->size(), ")");
    next_ = aligned + len;
    return aligned;
}

} // namespace bmhive

/**
 * @file
 * FleetSim: statistical simulation of a virtualization fleet, used
 * to reproduce the paper's production telemetry:
 *
 *  - Table 2: fraction of VMs exceeding 10K/50K/100K VM exits per
 *    second per vCPU, measured over a 5-minute window across
 *    300,000 VMs.
 *  - Fig. 1: the 99th / 99.9th percentile VM preemption rate
 *    (percent of CPU time taken by the hypervisor/host OS) across
 *    20,000 VMs over 24 hours, for shared vs. exclusive VMs.
 *
 * Per-VM behaviour is drawn from heavy-tailed distributions (a
 * lognormal body plus a pathological tail); within a VM,
 * preemption is a compound-Poisson process of host-task
 * interruptions, the same mechanism vmsim::VmExecutionModel
 * applies to individual work items.
 */

#ifndef BMHIVE_FLEET_FLEET_SIM_HH
#define BMHIVE_FLEET_FLEET_SIM_HH

#include <vector>

#include "base/random.hh"
#include "base/units.hh"

namespace bmhive {
namespace fleet {

struct ExitRateFleetParams
{
    unsigned numVms = 300000;
    double windowSeconds = 300.0; ///< the paper's 5-minute count
    /** Lognormal body of the per-VM exit rate (exits/s/vCPU). */
    double bodyMedian = 600.0;
    double bodySigma = 1.56;
    /** Pathological VMs: device-storming / timer-heavy guests. */
    double pathologicalFraction = 0.0016;
    double pathologicalLo = 2.0e4;
    double pathologicalHi = 3.0e5;
};

struct ExitRateSummary
{
    double pctAbove10k = 0.0;
    double pctAbove50k = 0.0;
    double pctAbove100k = 0.0;
    double medianRate = 0.0;
};

/** Reproduce Table 2. */
ExitRateSummary measureExitRates(Rng &rng,
                                 const ExitRateFleetParams &p);

struct PreemptionFleetParams
{
    unsigned numVms = 20000;
    unsigned hours = 24;
    bool exclusive = false;
    /** Per-VM preemption-rate distribution (events/s). */
    double rateMedian = 8.0;
    double rateSigma = 0.45;
    /** Per-VM mean stolen time per event (us). */
    double durMedianUs = 1100.0;
    double durSigma = 0.30;

    static PreemptionFleetParams
    sharedFleet()
    {
        return {};
    }

    static PreemptionFleetParams
    exclusiveFleet()
    {
        PreemptionFleetParams p;
        p.exclusive = true;
        p.rateMedian = 0.60;
        p.rateSigma = 0.55;
        p.durMedianUs = 800.0;
        p.durSigma = 0.40;
        return p;
    }
};

struct PreemptionSeries
{
    /** One entry per hour. */
    std::vector<double> p99Pct;
    std::vector<double> p999Pct;
};

/** Reproduce one pair of Fig. 1 curves. */
PreemptionSeries measurePreemption(Rng &rng,
                                   const PreemptionFleetParams &p);

/** Diurnal host-load factor for hour h (0..23). */
double diurnalLoad(unsigned hour);

} // namespace fleet
} // namespace bmhive

#endif // BMHIVE_FLEET_FLEET_SIM_HH

#include "fleet/fleet_controller.hh"

#include <algorithm>
#include <utility>

#include "base/logging.hh"

namespace bmhive {
namespace fleet {

FleetController::FleetController(Simulation &sim, std::string name,
                                 cloud::VSwitch &vswitch,
                                 cloud::BlockService *storage,
                                 FleetParams params)
    : SimObject(sim, std::move(name)), params_(params),
      vswitch_(vswitch), storage_(storage),
      placements_(metrics().counter(this->name() + ".placements")),
      migrationStarts_(
          metrics().counter(this->name() + ".migration_starts")),
      migrationsDone_(
          metrics().counter(this->name() + ".migrations")),
      migrationAborts_(
          metrics().counter(this->name() + ".migration_aborts")),
      failovers_(metrics().counter(this->name() + ".failovers")),
      fences_(metrics().counter(this->name() + ".fences")),
      boardFailures_(
          metrics().counter(this->name() + ".board_failures")),
      hotSwaps_(metrics().counter(this->name() + ".hot_swaps")),
      lostGuests_(metrics().counter(this->name() + ".lost_guests")),
      integrityDrains_(
          metrics().counter(this->name() + ".integrity.drains")),
      blackout_(metrics().latency(
          this->name() + ".migration.blackout")),
      blackoutHist_(metrics().histogram(
          this->name() + ".migration.blackout_hist_us", 0.0,
          params.blackoutHistMaxUs, params.blackoutHistBuckets)),
      healthEvent_([this] { healthSweep(); },
                   this->name() + ".health_sweep")
{
    fatal_if(params_.servers == 0,
             this->name(), ": a fleet needs at least one server");
    fatal_if(sim.partitioned() && !params_.perServerVswitch,
             this->name(),
             ": a partitioned simulation needs perServerVswitch"
             " (a shared switch would couple every partition)");
    if (params_.perServerVswitch) {
        // The rack fabric (like the controller itself) lives in the
        // control partition; each server's own switch is built in
        // that server's partition below so its events run there.
        fabric_ = std::make_unique<cloud::NetFabric>(
            sim, this->name() + ".fabric");
    }
    for (unsigned s = 0; s < params_.servers; ++s) {
        // Everything belonging to server s — its switch, the base
        // board, and every guest it later provisions — homes in
        // partitionFor(s).
        psim::PartitionScope pscope(sim, partitionFor(s));
        if (fabric_) {
            switches_.push_back(std::make_unique<cloud::VSwitch>(
                sim,
                this->name() + ".vswitch" + std::to_string(s)));
            fabric_->attach(*switches_.back());
        }
        servers_.push_back(std::make_unique<core::BmHiveServer>(
            sim, this->name() + ".s" + std::to_string(s),
            switchFor(s), storage_, params_.server));
        dead_.push_back(false);
        partitionedUntil_.push_back(0);
        missedBeats_.push_back(0);
        reserved_.push_back(0);
        core::BmHiveServer &srv = *servers_.back();
        // A crash the source watchdog sees on a drained guest is a
        // rollback cue, never a respawn (the double-adoption race
        // the watchdog guard exists for). The watchdog runs in the
        // server's partition; fleet state is control-partition
        // only, so the signal crosses through the mailbox.
        srv.setMigrationAbortCallback([this, s](unsigned idx) {
            if (sim_.partitioned()) {
                sim_.post(0, sim_.now() + sim_.lookahead(),
                          [this, s, idx] { onAbortSignal(s, idx); },
                          Event::defaultPri,
                          this->name() + ".abort_signal");
                return;
            }
            onAbortSignal(s, idx);
        });
        // Top of the integrity escalation ladder: a server whose
        // corruption persisted past per-queue resets is evacuated
        // proactively while its guests are still live, instead of
        // waiting for it to fail outright. Deferred one event: the
        // signal fires from deep inside a poll/completion path.
        srv.setServerUnhealthyCallback([this, s] {
            // The whole body defers: the signal fires from deep
            // inside a poll/completion path in the server's
            // partition, and both the counter and drainServer are
            // control-partition state.
            auto fire = [this, s] {
                integrityDrains_.inc();
                warn(this->name(), ": s", s,
                     " integrity-unhealthy; draining its guests");
                drainServer(s);
            };
            if (sim_.partitioned()) {
                sim_.post(0, sim_.now() + sim_.lookahead(),
                          std::move(fire), Event::defaultPri,
                          this->name() + ".integrity_drain");
                return;
            }
            auto *ev = new OneShotEvent(
                std::move(fire), this->name() + ".integrity_drain");
            scheduleIn(ev, 0);
        });
        // Server-level fault surface: power, boards, fabric.
        faults().add(srv.name(),
                     [this, s](const fault::FaultSpec &spec) {
                         return serverFault(s, spec);
                     });
        if (params_.watchdogPeriod > 0)
            srv.startWatchdog(params_.watchdogPeriod);
    }
    if (params_.healthPeriod > 0)
        startHealthSweep(params_.healthPeriod);
}

FleetController::~FleetController()
{
    for (auto &srv : servers_)
        faults().remove(srv->name());
    if (healthEvent_.scheduled())
        eventq().deschedule(&healthEvent_);
}

GuestId
FleetController::place(const core::InstanceType &type,
                       cloud::MacAddr mac, cloud::Volume *vol,
                       bool rate_limited)
{
    std::vector<bool> tried(servers_.size(), false);
    for (int s = pickTarget(&type, unsigned(servers_.size()),
                            &tried);
         s >= 0; s = pickTarget(&type, unsigned(servers_.size()),
                                &tried)) {
        tried[s] = true;
        core::BmGuest *g = servers_[s]->tryProvision(
            type, mac, vol, rate_limited);
        if (g == nullptr)
            continue; // bring-up failed; try the next-best server
        unsigned idx = 0;
        for (; idx < servers_[s]->guestCount(); ++idx)
            if (servers_[s]->hasGuest(idx) &&
                &servers_[s]->guest(idx) == g)
                break;
        GuestId id = nextId_++;
        locs_[id] = {unsigned(s), idx};
        // Per-server switches: the fabric learns which switch the
        // guest's MAC lives behind, so cross-server frames route.
        if (fabric_)
            fabric_->learn(mac, *switches_[s]);
        placements_.inc();
        logDebug("guest ", id, " placed on s", s, " slot ", idx);
        return id;
    }
    warn(name(), ": no server could host a '", type.name,
         "' guest");
    return invalidGuest;
}

bool
FleetController::alive(GuestId id) const
{
    return locs_.count(id) != 0 || migrations_.count(id) != 0;
}

core::BmGuest &
FleetController::guest(GuestId id)
{
    auto it = locs_.find(id);
    panic_if(it == locs_.end(), name(), ": guest ", id,
             migrations_.count(id) ? " is in transit"
                                   : " is not hosted");
    return servers_[it->second.server]->guest(it->second.idx);
}

unsigned
FleetController::serverOf(GuestId id) const
{
    auto it = locs_.find(id);
    if (it != locs_.end())
        return it->second.server;
    auto mt = migrations_.find(id);
    panic_if(mt == migrations_.end(), name(), ": unknown guest ",
             id);
    return mt->second.src;
}

unsigned
FleetController::indexOf(GuestId id) const
{
    auto it = locs_.find(id);
    panic_if(it == locs_.end(), name(), ": guest ", id,
             " is not hosted");
    return it->second.idx;
}

unsigned
FleetController::partitionFor(unsigned s) const
{
    if (!sim_.partitioned())
        return 0;
    unsigned workers = sim_.partitions() - 1;
    return 1 + (s % workers);
}

int
FleetController::pickTarget(const core::InstanceType *type,
                            unsigned exclude,
                            const std::vector<bool> *skip) const
{
    int best = -1;
    long best_score = 0;
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (s == exclude || dead_[s] || (skip && (*skip)[s]))
            continue;
        unsigned free = servers_[s]->freeSlots();
        if (free <= reserved_[s])
            continue;
        free -= reserved_[s];
        // Free slots dominate; guests of the same instance
        // (rate-limit) class repel each other so one server never
        // concentrates a whole limit class; poll load (live guest
        // count) breaks the remaining ties.
        long same_class = 0, live = 0;
        for (const auto &kv : locs_) {
            if (kv.second.server != s)
                continue;
            ++live;
            if (type != nullptr &&
                servers_[s]
                        ->guest(kv.second.idx)
                        .instance()
                        .name == type->name)
                ++same_class;
        }
        long score = long(free) * 1000 - same_class * 10 - live;
        if (best < 0 || score > best_score) {
            best = int(s);
            best_score = score;
        }
    }
    return best;
}

GuestId
FleetController::guestAt(unsigned s, unsigned idx) const
{
    for (const auto &kv : locs_)
        if (kv.second.server == s && kv.second.idx == idx)
            return kv.first;
    return invalidGuest;
}

// --- migration state machine -------------------------------------

bool
FleetController::migrate(GuestId id, unsigned target,
                         std::function<void(bool)> done)
{
    auto it = locs_.find(id);
    if (it == locs_.end() || migrations_.count(id))
        return false;
    const Loc &l = it->second;
    if (target >= servers_.size() || target == l.server ||
        dead_[target] ||
        servers_[target]->freeSlots() <= reserved_[target])
        return false;
    Migration m;
    m.id = id;
    m.src = l.server;
    m.dst = target;
    m.srcIdx = l.idx;
    m.failover = dead_[l.server];
    m.done = std::move(done);
    beginMigration(std::move(m));
    return true;
}

unsigned
FleetController::drainServer(unsigned s)
{
    // Snapshot first: migrations mutate locs_.
    std::vector<GuestId> ids;
    for (const auto &kv : locs_)
        if (kv.second.server == s)
            ids.push_back(kv.first);
    unsigned moved = 0;
    for (GuestId id : ids) {
        int t = pickTarget(&guest(id).instance(), s);
        if (t >= 0 && migrate(id, unsigned(t)))
            ++moved;
    }
    return moved;
}

bool
FleetController::hotSwapBoard(GuestId id,
                              std::function<void(bool)> done)
{
    auto it = locs_.find(id);
    if (it == locs_.end() || migrations_.count(id))
        return false;
    int t = pickTarget(&guest(id).instance(), it->second.server);
    if (t < 0)
        return false;
    Migration m;
    m.id = id;
    m.src = it->second.server;
    m.dst = unsigned(t);
    m.srcIdx = it->second.idx;
    m.hotSwap = true;
    m.done = std::move(done);
    beginMigration(std::move(m));
    return true;
}

void
FleetController::beginMigration(Migration m)
{
    core::BmHiveServer &src = *servers_[m.src];
    core::BmGuest &g = src.guest(m.srcIdx);
    src.setMigrating(m.srcIdx, true);
    ++reserved_[m.dst];
    m.drainStart = curTick();
    // Drain: the bond defers doorbells, the backend stops taking
    // new work. In-flight block I/O keeps completing (live case)
    // or is generation-fenced (failover case); DMA the bond already
    // accepted finishes either way — IO-Bond rides the board's
    // power domain, not the base server's.
    g.bond().setDrained(true);
    g.hypervisor().quiesce();
    if (m.failover)
        g.bond().drainCompletions();
    if (g.flight()) {
        g.flight()->record(curTick(), obs::FlightEvent::MigrateStart,
                           0, 0, m.dst, m.failover ? 1 : 0);
        if (m.failover)
            g.flight()->record(curTick(),
                               obs::FlightEvent::Failover, 0, 0,
                               m.src);
    }
    migrationStarts_.inc();
    if (m.failover)
        failovers_.inc();
    GuestId id = m.id;
    logDebug("guest ", id, ": s", m.src, " -> s", m.dst,
             m.failover ? " (failover)"
                        : (m.hotSwap ? " (hot-swap)" : ""));
    migrations_[id] = std::move(m);
    settle(id);
}

void
FleetController::settle(GuestId id)
{
    auto it = migrations_.find(id);
    if (it == migrations_.end())
        return; // aborted while the retry event was pending
    Migration &m = it->second;
    m.phase = Phase::Settle;
    core::BmGuest &g = servers_[m.src]->guest(m.srcIdx);
    hv::BmHypervisor &hv = g.hypervisor();
    if (!m.failover && hv.crashed()) {
        // A planned migration's source backend crashed mid-drain.
        // The settle poll can observe this before the watchdog
        // does (or with watchdogs off) — same race, same answer:
        // abort and roll back; never commit a crashed source as if
        // it had drained.
        abortMigration(id, /*reason=*/1);
        return;
    }
    bool settled =
        g.bond().dmaIdle() &&
        (m.failover || hv.service().blkInflight() == 0);
    if (!settled) {
        if (!m.failover &&
            curTick() - m.drainStart >= params_.settleTimeout) {
            // Stuck block I/O (e.g. an injected lost request):
            // roll back rather than hold the guest dark forever —
            // the rollback respawn's recovery republish re-serves
            // whatever was stuck.
            abortMigration(id, /*reason=*/2);
            return;
        }
        auto *ev = new OneShotEvent([this, id] { settle(id); },
                                    name() + ".settle");
        scheduleIn(ev, params_.settleRetry);
        return;
    }
    commit(id);
}

void
FleetController::commit(GuestId id)
{
    Migration &m = migrations_.at(id);
    m.phase = Phase::Commit;
    core::BmHiveServer &src = *servers_[m.src];
    core::BmHiveServer &dst = *servers_[m.dst];
    core::BmGuest &g = src.guest(m.srcIdx);
    if (g.flight())
        g.flight()->record(curTick(),
                           obs::FlightEvent::MigrateCommit, 0, 0,
                           m.dst);
    // Point of no return: the source forgets the guest (tombstone
    // slot, region freed) and the target owns the assembly.
    locs_.erase(id);
    core::BmHiveServer::ExportedGuest eg =
        src.exportGuest(m.srcIdx);
    m.phase = Phase::Adopt;
    --reserved_[m.dst]; // the adoption physically takes the slot
    unsigned nidx = dst.adoptGuest(
        std::move(eg), [this, id](unsigned new_idx) {
            // The rebase replay completes inside the target
            // partition's parallel phase; fleet bookkeeping (and
            // the drain lift) must run serially in the control
            // partition, one lookahead later.
            if (sim_.partitioned() && sim_.currentPartition() != 0) {
                sim_.post(0, sim_.now() + sim_.lookahead(),
                          [this, id, new_idx] {
                              finish(id, new_idx);
                          },
                          Event::defaultPri,
                          this->name() + ".finish");
            } else {
                finish(id, new_idx);
            }
        });
    // Until the rebase replay lands and the PMD is re-homed, the
    // target's watchdog must treat the (still quiesced) adoptee
    // exactly like a mid-migration source guest. Guard against an
    // adoption that completed synchronously.
    if (migrations_.count(id))
        dst.setMigrating(nidx, true);
}

void
FleetController::finish(GuestId id, unsigned new_idx)
{
    auto it = migrations_.find(id);
    if (it == migrations_.end())
        return;
    Migration m = std::move(it->second);
    migrations_.erase(it);
    core::BmHiveServer &dst = *servers_[m.dst];
    if (!dst.hasGuest(new_idx))
        return; // lost while adopting (e.g. target board fault)
    core::BmGuest &g = dst.guest(new_idx);
    dst.setMigrating(new_idx, false);
    // The guest's port moved to the target's switch during
    // adoption; the fabric re-learns the MAC so frames in flight
    // from other servers follow it.
    if (fabric_)
        fabric_->learn(g.mac(), *switches_[m.dst]);
    // Resume: lifting the drain sweeps every doorbell deferred
    // since drainStart into the freshly rebased rings.
    g.bond().setDrained(false);
    locs_[id] = {m.dst, new_idx};
    Tick blackout = curTick() - m.drainStart;
    blackout_.record(blackout);
    blackoutHist_.record(ticksToUs(blackout));
    migrationsDone_.inc();
    if (m.hotSwap)
        hotSwaps_.inc();
    if (g.flight())
        g.flight()->record(curTick(), obs::FlightEvent::MigrateDone,
                           0, 0,
                           std::uint64_t(ticksToUs(blackout)));
    logDebug("guest ", id, " resumed on s", m.dst, " slot ",
             new_idx, " (blackout ", ticksToUs(blackout), " us)");
    if (m.done)
        m.done(true);
}

void
FleetController::onAbortSignal(unsigned s, unsigned idx)
{
    for (auto &kv : migrations_) {
        Migration &m = kv.second;
        if (m.src != s || m.srcIdx != idx || m.failover)
            continue;
        if (m.phase != Phase::Drain && m.phase != Phase::Settle)
            return;
        if (dead_[s]) {
            // The whole source died mid-drain: there is nothing to
            // roll back onto, so the planned migration completes
            // as a failover (the settle condition relaxes to
            // DMA-idle, exactly as a from-scratch failover would).
            m.failover = true;
            failovers_.inc();
            return;
        }
        abortMigration(kv.first, /*reason=*/1);
        return;
    }
}

void
FleetController::abortMigration(GuestId id, unsigned reason)
{
    auto it = migrations_.find(id);
    if (it == migrations_.end())
        return;
    Migration m = std::move(it->second);
    migrations_.erase(it);
    panic_if(m.phase != Phase::Drain && m.phase != Phase::Settle,
             name(), ": abort past the commit point");
    --reserved_[m.dst];
    core::BmHiveServer &src = *servers_[m.src];
    core::BmGuest &g = src.guest(m.srcIdx);
    // Rollback: the guest never left the source. Respawn the
    // backend (republishing the in-flight window right here — the
    // target never saw it, so exactly-once holds), then lift the
    // drain to sweep the deferred doorbells.
    g.hypervisor().respawn();
    g.bond().setDrained(false);
    src.setMigrating(m.srcIdx, false);
    migrationAborts_.inc();
    if (g.flight())
        g.flight()->record(curTick(), obs::FlightEvent::MigrateAbort,
                           0, 0, reason);
    src.triggerFlightDump(m.srcIdx, "migrate_abort");
    warn(name(), ": guest ", id, " migration s", m.src, " -> s",
         m.dst, " aborted; rolled back");
    if (m.done)
        m.done(false);
}

// --- server health / fault surface -------------------------------

void
FleetController::startHealthSweep(Tick period)
{
    panic_if(period == 0, name(), ": health sweep needs a period");
    healthPeriod_ = period;
    eventq().reschedule(&healthEvent_, curTick() + period);
}

void
FleetController::stopHealthSweep()
{
    healthPeriod_ = 0;
    if (healthEvent_.scheduled())
        eventq().deschedule(&healthEvent_);
}

void
FleetController::healthSweep()
{
    for (unsigned s = 0; s < servers_.size(); ++s) {
        if (dead_[s])
            continue;
        if (curTick() < partitionedUntil_[s]) {
            if (++missedBeats_[s] >= params_.missedBeatsToFence)
                fence(s);
        } else {
            missedBeats_[s] = 0; // heal: the partition lifted
        }
    }
    if (healthPeriod_ > 0)
        scheduleIn(&healthEvent_, healthPeriod_);
}

bool
FleetController::serverFault(unsigned s,
                             const fault::FaultSpec &spec)
{
    switch (spec.kind) {
      case fault::FaultKind::ServerPowerLoss:
        powerLoss(s);
        return true;
      case fault::FaultKind::BoardFail:
        boardFail(s, unsigned(spec.magnitude));
        return true;
      case fault::FaultKind::FabricPartition:
        partitionedUntil_[s] =
            std::max(partitionedUntil_[s],
                     curTick() + spec.duration);
        return true;
      default:
        return false;
    }
}

void
FleetController::powerLoss(unsigned s)
{
    if (dead_[s])
        return;
    warn(name(), ": s", s, " lost power; failing its guests over");
    dead_[s] = true;
    // The power cut kills every base-side process instantly. DMA
    // the IO-Bonds already accepted still completes (the bonds sit
    // in the boards' power domain) — the settle phase of each
    // failover waits for exactly that.
    for (const auto &kv : locs_) {
        if (kv.second.server != s)
            continue;
        hv::BmHypervisor &hv =
            servers_[s]->guest(kv.second.idx).hypervisor();
        if (!hv.crashed())
            hv.crash();
    }
    failoverServer(s);
}

void
FleetController::fence(unsigned s)
{
    if (dead_[s])
        return;
    warn(name(), ": s", s, " missed ", missedBeats_[s],
         " heartbeats; fencing (STONITH) and failing over");
    fences_.inc();
    dead_[s] = true;
    // STONITH before failover: a partitioned-but-alive server must
    // never keep serving a guest whose replacement is coming up
    // elsewhere — that would be split-brain, not redundancy.
    for (const auto &kv : locs_) {
        if (kv.second.server != s)
            continue;
        hv::BmHypervisor &hv =
            servers_[s]->guest(kv.second.idx).hypervisor();
        if (!hv.crashed())
            hv.crash();
    }
    failoverServer(s);
}

void
FleetController::failoverServer(unsigned s)
{
    std::vector<GuestId> ids;
    for (const auto &kv : locs_)
        if (kv.second.server == s)
            ids.push_back(kv.first);
    for (GuestId id : ids) {
        if (migrations_.count(id)) {
            // Already in transit off this server: a pre-commit
            // migration's source just died, so it completes as a
            // failover would; past commit it no longer lives here.
            continue;
        }
        int t = pickTarget(&guest(id).instance(), s);
        if (t < 0) {
            warn(name(), ": guest ", id,
                 " lost — no failover capacity");
            lostGuests_.inc();
            locs_.erase(id);
            continue;
        }
        migrate(id, unsigned(t));
    }
}

void
FleetController::boardFail(unsigned s, unsigned idx)
{
    GuestId id = guestAt(s, idx);
    if (id == invalidGuest || migrations_.count(id))
        return;
    warn(name(), ": s", s, " board ", idx,
         " failed; guest ", id, " lost");
    core::BmGuest &g = servers_[s]->guest(idx);
    if (!g.hypervisor().crashed())
        g.hypervisor().crash();
    servers_[s]->release(g);
    boardFailures_.inc();
    lostGuests_.inc();
    locs_.erase(id);
}

} // namespace fleet
} // namespace bmhive

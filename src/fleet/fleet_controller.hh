/**
 * @file
 * FleetController: the rack-scale control plane over N BmHiveServer
 * base servers (DESIGN.md section 15). It owns placement (rate-limit
 * class anti-affinity + free-slot scoring), per-server health
 * (fabric heartbeats on top of each server's own watchdog), and the
 * guest mobility machinery the paper's density story needs once a
 * base server itself becomes the failure domain:
 *
 *  - live migration: drain a guest's IO-Bond (doorbells deferred,
 *    backend quiesced), settle in-flight DMA and block I/O, export
 *    the board+bond+hv assembly from the source, and adopt it on
 *    the target — IoBond::rebase replays the published-but-
 *    unfinished window into the target's base memory with the same
 *    exactly-once guarantee as crash recovery, and
 *    BmHypervisor::migrateTo re-homes the PMD. Blackout is the
 *    drain-to-resume interval, recorded per migration.
 *
 *  - reactive failover: server-level faults (power loss, fabric
 *    partition past the fencing threshold) turn into fence +
 *    failover of every hosted guest. A fenced server's processes
 *    are crashed first (STONITH), so a partitioned-but-alive server
 *    can never double-serve a guest that moved.
 *
 *  - planned board hot-swap: drain, migrate the board's functions
 *    to another server, detach, reattach — an operator action, not
 *    a fault reaction.
 */

#ifndef BMHIVE_FLEET_FLEET_CONTROLLER_HH
#define BMHIVE_FLEET_FLEET_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bmhive_server.hh"

namespace bmhive {
namespace fleet {

/** Fleet-wide stable guest handle; survives migrations (the
 *  per-server slot index does not). */
using GuestId = std::uint64_t;
constexpr GuestId invalidGuest = ~GuestId(0);

struct FleetParams
{
    /** Base servers under this controller. */
    unsigned servers = 2;
    /** Shared per-server configuration. */
    core::BmServerParams server = {};
    /** Per-server watchdog period (0 = caller starts watchdogs). */
    Tick watchdogPeriod = usToTicks(100);
    /** Fabric heartbeat sweep period (0 = no health sweep). */
    Tick healthPeriod = usToTicks(100);
    /** Consecutive missed fabric heartbeats before a server is
     *  fenced and its guests failed over. */
    unsigned missedBeatsToFence = 3;
    /** Settle-poll retry while waiting for DMA + block I/O. */
    Tick settleRetry = usToTicks(10);
    /** A planned migration whose block I/O will not settle (e.g. a
     *  lost request) aborts and rolls back after this long; the
     *  respawn's recovery republish re-serves the stuck I/O. */
    Tick settleTimeout = msToTicks(2.0);
    /** Blackout histogram range (us) and bucket count. */
    double blackoutHistMaxUs = 2000.0;
    std::size_t blackoutHistBuckets = 40;
    /**
     * Give every base server its own vSwitch, joined by a NetFabric
     * (the real rack topology), instead of sharing the single
     * switch passed to the constructor. Required for a partitioned
     * simulation — per-server switches are what lets each server's
     * events run in its own partition — and valid (topology-
     * visible: cross-server traffic crosses the fabric) in classic
     * mode too.
     */
    bool perServerVswitch = false;
};

class FleetController : public SimObject
{
  public:
    FleetController(Simulation &sim, std::string name,
                    cloud::VSwitch &vswitch,
                    cloud::BlockService *storage = nullptr,
                    FleetParams params = {});
    ~FleetController() override;

    unsigned serverCount() const
    {
        return unsigned(servers_.size());
    }
    core::BmHiveServer &server(unsigned s) { return *servers_[s]; }
    /** The switch server @p s's guests attach to: its own switch
     *  under perServerVswitch, else the shared one. */
    cloud::VSwitch &switchFor(unsigned s)
    {
        return s < switches_.size() ? *switches_[s] : vswitch_;
    }
    /** Rack fabric joining per-server switches (null otherwise). */
    cloud::NetFabric *fabric() { return fabric_.get(); }
    /** Fenced or power-lost; never a placement target again. */
    bool serverDead(unsigned s) const { return dead_[s]; }
    bool
    serverPartitioned(unsigned s) const
    {
        return curTick() < partitionedUntil_[s];
    }

    /**
     * Provision a guest on the best-scoring live server: most free
     * slots, spreading guests of the same instance (rate-limit)
     * class apart. Returns invalidGuest when no server has a slot
     * or the backend connection fails everywhere.
     */
    GuestId place(const core::InstanceType &type, cloud::MacAddr mac,
                  cloud::Volume *vol = nullptr,
                  bool rate_limited = true);

    /** Known and currently hosted (false after a lost board, true
     *  mid-migration — the guest exists, it is just in transit). */
    bool alive(GuestId id) const;
    /** Panics unless alive and not between export and adoption. */
    core::BmGuest &guest(GuestId id);
    /** Server currently (or last) hosting @p id. */
    unsigned serverOf(GuestId id) const;
    unsigned indexOf(GuestId id) const;
    bool migrating(GuestId id) const
    {
        return migrations_.count(id) != 0;
    }
    unsigned
    migrationsInFlight() const
    {
        return unsigned(migrations_.size());
    }

    /**
     * Start a live migration of @p id to @p target. Returns false
     * (nothing started) on an unknown guest, a dead or full target,
     * or a migration already in flight for this guest. @p done
     * fires with true on resume, false on abort-and-rollback.
     */
    bool migrate(GuestId id, unsigned target,
                 std::function<void(bool)> done = nullptr);

    /**
     * Planned maintenance: migrate every guest off server @p s
     * (each to its own best target). Returns the number of
     * migrations started; the server is NOT marked dead — after the
     * drain it is an empty, healthy placement target again.
     */
    unsigned drainServer(unsigned s);

    /**
     * Planned board hot-swap: drain the guest, migrate its board's
     * functions to the best other server, detach the board from the
     * source chassis and reattach it in the target (the board+bond
     * assembly travels with the export). Counted separately from
     * reactive failovers.
     */
    bool hotSwapBoard(GuestId id,
                      std::function<void(bool)> done = nullptr);

    void startHealthSweep(Tick period);
    void stopHealthSweep();

    // --- fleet metrics accessors (names: "<name>.*") ---
    std::uint64_t placements() const { return placements_.value(); }
    std::uint64_t
    migrationsDone() const
    {
        return migrationsDone_.value();
    }
    std::uint64_t
    migrationAborts() const
    {
        return migrationAborts_.value();
    }
    std::uint64_t failovers() const { return failovers_.value(); }
    std::uint64_t fences() const { return fences_.value(); }
    std::uint64_t
    boardFailures() const
    {
        return boardFailures_.value();
    }
    std::uint64_t hotSwaps() const { return hotSwaps_.value(); }
    std::uint64_t lostGuests() const { return lostGuests_.value(); }
    /** Proactive evacuations of integrity-unhealthy servers. */
    std::uint64_t
    integrityDrains() const
    {
        return integrityDrains_.value();
    }
    /** Drain-to-resume interval of every completed migration. */
    const LatencyRecorder &blackout() const { return blackout_; }

  private:
    /** Where a guest currently lives. */
    struct Loc
    {
        unsigned server = 0;
        unsigned idx = 0;
    };

    /** Migration protocol state (DESIGN.md section 15.2):
     *  Drain -> Settle -> Commit -> Adopt -> (resume). Abort and
     *  rollback are only possible before Commit — the export is
     *  the point of no return. */
    enum class Phase { Drain, Settle, Commit, Adopt };

    struct Migration
    {
        GuestId id = invalidGuest;
        unsigned src = 0;
        unsigned dst = 0;
        unsigned srcIdx = 0;
        Tick drainStart = 0;
        Phase phase = Phase::Drain;
        /** Reactive (source fenced/dead): no rollback possible and
         *  the settle condition drops the block-drain term (a dead
         *  service's in-flight I/O is generation-fenced, not
         *  completed). */
        bool failover = false;
        bool hotSwap = false;
        std::function<void(bool)> done;
    };

    void beginMigration(Migration m);
    void settle(GuestId id);
    void commit(GuestId id);
    void finish(GuestId id, unsigned new_idx);
    /** Source watchdog saw the drained guest's hv crash. */
    void onAbortSignal(unsigned s, unsigned idx);
    void abortMigration(GuestId id, unsigned reason);

    void healthSweep();
    bool serverFault(unsigned s, const fault::FaultSpec &spec);
    void powerLoss(unsigned s);
    void boardFail(unsigned s, unsigned idx);
    /** STONITH: crash every process on @p s, mark it dead, then
     *  fail its guests over. */
    void fence(unsigned s);
    void failoverServer(unsigned s);

    /** Event partition hosting server @p s (round-robin over the
     *  worker partitions; 0 when the simulation is classic). */
    unsigned partitionFor(unsigned s) const;

    /** Best placement target (-1: none). @p type drives the
     *  class-anti-affinity term; @p exclude skips one server and
     *  @p skip (optional) a set of already-tried ones. In-flight
     *  migration reservations count against a server's capacity. */
    int pickTarget(const core::InstanceType *type, unsigned exclude,
                   const std::vector<bool> *skip = nullptr) const;
    GuestId guestAt(unsigned s, unsigned idx) const;

    FleetParams params_;
    cloud::VSwitch &vswitch_;
    cloud::BlockService *storage_;
    /** perServerVswitch topology: one switch per server, joined by
     *  the fabric. Declared before servers_ so ports outlive the
     *  hypervisors that hold them. */
    std::unique_ptr<cloud::NetFabric> fabric_;
    std::vector<std::unique_ptr<cloud::VSwitch>> switches_;
    std::vector<std::unique_ptr<core::BmHiveServer>> servers_;
    std::vector<bool> dead_;
    std::vector<Tick> partitionedUntil_;
    std::vector<unsigned> missedBeats_;
    /** Per-server slots promised to in-flight migrations; a slot
     *  is only physically consumed at adoption, so without this,
     *  parallel failovers would over-commit a target. */
    std::vector<unsigned> reserved_;
    std::map<GuestId, Loc> locs_;
    std::map<GuestId, Migration> migrations_;
    GuestId nextId_ = 0;
    Tick healthPeriod_ = 0;

    Counter &placements_;
    Counter &migrationStarts_;
    Counter &migrationsDone_;
    Counter &migrationAborts_;
    Counter &failovers_;
    Counter &fences_;
    Counter &boardFailures_;
    Counter &hotSwaps_;
    Counter &lostGuests_;
    Counter &integrityDrains_;
    LatencyRecorder &blackout_;
    Histogram &blackoutHist_;
    EventFunctionWrapper healthEvent_;
};

} // namespace fleet
} // namespace bmhive

#endif // BMHIVE_FLEET_FLEET_CONTROLLER_HH
